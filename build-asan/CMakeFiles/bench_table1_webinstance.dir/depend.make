# Empty dependencies file for bench_table1_webinstance.
# This may be replaced when dependencies are built.
