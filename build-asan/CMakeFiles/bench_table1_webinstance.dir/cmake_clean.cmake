file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_webinstance.dir/bench/bench_table1_webinstance.cc.o"
  "CMakeFiles/bench_table1_webinstance.dir/bench/bench_table1_webinstance.cc.o.d"
  "bench_table1_webinstance"
  "bench_table1_webinstance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_webinstance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
