# Empty dependencies file for bench_fig2_schema_init.
# This may be replaced when dependencies are built.
