file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2_schema_init.dir/bench/bench_fig2_schema_init.cc.o"
  "CMakeFiles/bench_fig2_schema_init.dir/bench/bench_fig2_schema_init.cc.o.d"
  "bench_fig2_schema_init"
  "bench_fig2_schema_init.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2_schema_init.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
