file(REMOVE_RECURSE
  "CMakeFiles/global_schema_test.dir/tests/global_schema_test.cc.o"
  "CMakeFiles/global_schema_test.dir/tests/global_schema_test.cc.o.d"
  "global_schema_test"
  "global_schema_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/global_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
