# Empty dependencies file for global_schema_test.
# This may be replaced when dependencies are built.
