file(REMOVE_RECURSE
  "CMakeFiles/dedup_test.dir/tests/dedup_test.cc.o"
  "CMakeFiles/dedup_test.dir/tests/dedup_test.cc.o.d"
  "dedup_test"
  "dedup_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dedup_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
