file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_pipeline.dir/bench/bench_fig1_pipeline.cc.o"
  "CMakeFiles/bench_fig1_pipeline.dir/bench/bench_fig1_pipeline.cc.o.d"
  "bench_fig1_pipeline"
  "bench_fig1_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
