file(REMOVE_RECURSE
  "CMakeFiles/bench_classifier_cv.dir/bench/bench_classifier_cv.cc.o"
  "CMakeFiles/bench_classifier_cv.dir/bench/bench_classifier_cv.cc.o.d"
  "bench_classifier_cv"
  "bench_classifier_cv.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_classifier_cv.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
