# Empty dependencies file for bench_classifier_cv.
# This may be replaced when dependencies are built.
