file(REMOVE_RECURSE
  "CMakeFiles/storage_stress_test.dir/tests/storage_stress_test.cc.o"
  "CMakeFiles/storage_stress_test.dir/tests/storage_stress_test.cc.o.d"
  "storage_stress_test"
  "storage_stress_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
