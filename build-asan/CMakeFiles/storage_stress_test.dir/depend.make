# Empty dependencies file for storage_stress_test.
# This may be replaced when dependencies are built.
