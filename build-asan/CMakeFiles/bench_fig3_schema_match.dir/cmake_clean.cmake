file(REMOVE_RECURSE
  "CMakeFiles/bench_fig3_schema_match.dir/bench/bench_fig3_schema_match.cc.o"
  "CMakeFiles/bench_fig3_schema_match.dir/bench/bench_fig3_schema_match.cc.o.d"
  "bench_fig3_schema_match"
  "bench_fig3_schema_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig3_schema_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
