# Empty dependencies file for bench_fig3_schema_match.
# This may be replaced when dependencies are built.
