file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_entity_types.dir/bench/bench_table3_entity_types.cc.o"
  "CMakeFiles/bench_table3_entity_types.dir/bench/bench_table3_entity_types.cc.o.d"
  "bench_table3_entity_types"
  "bench_table3_entity_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_entity_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
