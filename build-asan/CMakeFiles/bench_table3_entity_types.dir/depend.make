# Empty dependencies file for bench_table3_entity_types.
# This may be replaced when dependencies are built.
