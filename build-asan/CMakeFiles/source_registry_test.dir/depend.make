# Empty dependencies file for source_registry_test.
# This may be replaced when dependencies are built.
