file(REMOVE_RECURSE
  "CMakeFiles/source_registry_test.dir/tests/source_registry_test.cc.o"
  "CMakeFiles/source_registry_test.dir/tests/source_registry_test.cc.o.d"
  "source_registry_test"
  "source_registry_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_registry_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
