file(REMOVE_RECURSE
  "CMakeFiles/gazetteer_test.dir/tests/gazetteer_test.cc.o"
  "CMakeFiles/gazetteer_test.dir/tests/gazetteer_test.cc.o.d"
  "gazetteer_test"
  "gazetteer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gazetteer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
