file(REMOVE_RECURSE
  "CMakeFiles/example_snapshot_roundtrip.dir/examples/snapshot_roundtrip.cpp.o"
  "CMakeFiles/example_snapshot_roundtrip.dir/examples/snapshot_roundtrip.cpp.o.d"
  "example_snapshot_roundtrip"
  "example_snapshot_roundtrip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_snapshot_roundtrip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
