# Empty dependencies file for example_snapshot_roundtrip.
# This may be replaced when dependencies are built.
