# Empty dependencies file for mention_cleaner_test.
# This may be replaced when dependencies are built.
