file(REMOVE_RECURSE
  "CMakeFiles/mention_cleaner_test.dir/tests/mention_cleaner_test.cc.o"
  "CMakeFiles/mention_cleaner_test.dir/tests/mention_cleaner_test.cc.o.d"
  "mention_cleaner_test"
  "mention_cleaner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mention_cleaner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
