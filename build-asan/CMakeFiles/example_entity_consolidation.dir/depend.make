# Empty dependencies file for example_entity_consolidation.
# This may be replaced when dependencies are built.
