file(REMOVE_RECURSE
  "CMakeFiles/example_entity_consolidation.dir/examples/entity_consolidation.cpp.o"
  "CMakeFiles/example_entity_consolidation.dir/examples/entity_consolidation.cpp.o.d"
  "example_entity_consolidation"
  "example_entity_consolidation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_entity_consolidation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
