file(REMOVE_RECURSE
  "CMakeFiles/clean_test.dir/tests/clean_test.cc.o"
  "CMakeFiles/clean_test.dir/tests/clean_test.cc.o.d"
  "clean_test"
  "clean_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/clean_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
