# Empty dependencies file for fellegi_sunter_test.
# This may be replaced when dependencies are built.
