# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fellegi_sunter_test.
