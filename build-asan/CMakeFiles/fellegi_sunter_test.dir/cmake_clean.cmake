file(REMOVE_RECURSE
  "CMakeFiles/fellegi_sunter_test.dir/tests/fellegi_sunter_test.cc.o"
  "CMakeFiles/fellegi_sunter_test.dir/tests/fellegi_sunter_test.cc.o.d"
  "fellegi_sunter_test"
  "fellegi_sunter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fellegi_sunter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
