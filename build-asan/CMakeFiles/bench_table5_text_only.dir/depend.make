# Empty dependencies file for bench_table5_text_only.
# This may be replaced when dependencies are built.
