file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_text_only.dir/bench/bench_table5_text_only.cc.o"
  "CMakeFiles/bench_table5_text_only.dir/bench/bench_table5_text_only.cc.o.d"
  "bench_table5_text_only"
  "bench_table5_text_only.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_text_only.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
