file(REMOVE_RECURSE
  "CMakeFiles/threshold_tuner_test.dir/tests/threshold_tuner_test.cc.o"
  "CMakeFiles/threshold_tuner_test.dir/tests/threshold_tuner_test.cc.o.d"
  "threshold_tuner_test"
  "threshold_tuner_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/threshold_tuner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
