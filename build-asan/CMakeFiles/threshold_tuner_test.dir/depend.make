# Empty dependencies file for threshold_tuner_test.
# This may be replaced when dependencies are built.
