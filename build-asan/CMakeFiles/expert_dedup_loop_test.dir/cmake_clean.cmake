file(REMOVE_RECURSE
  "CMakeFiles/expert_dedup_loop_test.dir/tests/expert_dedup_loop_test.cc.o"
  "CMakeFiles/expert_dedup_loop_test.dir/tests/expert_dedup_loop_test.cc.o.d"
  "expert_dedup_loop_test"
  "expert_dedup_loop_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expert_dedup_loop_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
