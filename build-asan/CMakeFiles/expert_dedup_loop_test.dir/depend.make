# Empty dependencies file for expert_dedup_loop_test.
# This may be replaced when dependencies are built.
