# Empty dependencies file for name_matcher_test.
# This may be replaced when dependencies are built.
