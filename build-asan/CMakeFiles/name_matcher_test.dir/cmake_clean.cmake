file(REMOVE_RECURSE
  "CMakeFiles/name_matcher_test.dir/tests/name_matcher_test.cc.o"
  "CMakeFiles/name_matcher_test.dir/tests/name_matcher_test.cc.o.d"
  "name_matcher_test"
  "name_matcher_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/name_matcher_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
