file(REMOVE_RECURSE
  "CMakeFiles/expert_test.dir/tests/expert_test.cc.o"
  "CMakeFiles/expert_test.dir/tests/expert_test.cc.o.d"
  "expert_test"
  "expert_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expert_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
