# Empty dependencies file for bench_table6_fused.
# This may be replaced when dependencies are built.
