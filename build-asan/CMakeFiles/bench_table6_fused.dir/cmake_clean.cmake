file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_fused.dir/bench/bench_table6_fused.cc.o"
  "CMakeFiles/bench_table6_fused.dir/bench/bench_table6_fused.cc.o.d"
  "bench_table6_fused"
  "bench_table6_fused.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_fused.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
