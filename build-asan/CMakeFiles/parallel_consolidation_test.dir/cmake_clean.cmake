file(REMOVE_RECURSE
  "CMakeFiles/parallel_consolidation_test.dir/tests/parallel_consolidation_test.cc.o"
  "CMakeFiles/parallel_consolidation_test.dir/tests/parallel_consolidation_test.cc.o.d"
  "parallel_consolidation_test"
  "parallel_consolidation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parallel_consolidation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
