# Empty dependencies file for parallel_consolidation_test.
# This may be replaced when dependencies are built.
