# Empty dependencies file for text_search_test.
# This may be replaced when dependencies are built.
