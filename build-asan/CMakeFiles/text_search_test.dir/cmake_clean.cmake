file(REMOVE_RECURSE
  "CMakeFiles/text_search_test.dir/tests/text_search_test.cc.o"
  "CMakeFiles/text_search_test.dir/tests/text_search_test.cc.o.d"
  "text_search_test"
  "text_search_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/text_search_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
