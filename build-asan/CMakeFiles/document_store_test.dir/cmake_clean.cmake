file(REMOVE_RECURSE
  "CMakeFiles/document_store_test.dir/tests/document_store_test.cc.o"
  "CMakeFiles/document_store_test.dir/tests/document_store_test.cc.o.d"
  "document_store_test"
  "document_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/document_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
