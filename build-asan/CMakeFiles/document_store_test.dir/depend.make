# Empty dependencies file for document_store_test.
# This may be replaced when dependencies are built.
