file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_top10.dir/bench/bench_table4_top10.cc.o"
  "CMakeFiles/bench_table4_top10.dir/bench/bench_table4_top10.cc.o.d"
  "bench_table4_top10"
  "bench_table4_top10.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_top10.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
