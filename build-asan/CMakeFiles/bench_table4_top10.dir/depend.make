# Empty dependencies file for bench_table4_top10.
# This may be replaced when dependencies are built.
