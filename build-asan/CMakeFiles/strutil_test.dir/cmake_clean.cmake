file(REMOVE_RECURSE
  "CMakeFiles/strutil_test.dir/tests/strutil_test.cc.o"
  "CMakeFiles/strutil_test.dir/tests/strutil_test.cc.o.d"
  "strutil_test"
  "strutil_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strutil_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
