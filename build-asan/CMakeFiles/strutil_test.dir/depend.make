# Empty dependencies file for strutil_test.
# This may be replaced when dependencies are built.
