# Empty dependencies file for dt.
# This may be replaced when dependencies are built.
