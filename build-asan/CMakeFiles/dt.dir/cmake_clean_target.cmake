file(REMOVE_RECURSE
  "libdt.a"
)
