
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/clean/cleaning.cc" "CMakeFiles/dt.dir/src/clean/cleaning.cc.o" "gcc" "CMakeFiles/dt.dir/src/clean/cleaning.cc.o.d"
  "/root/repo/src/clean/mention_cleaner.cc" "CMakeFiles/dt.dir/src/clean/mention_cleaner.cc.o" "gcc" "CMakeFiles/dt.dir/src/clean/mention_cleaner.cc.o.d"
  "/root/repo/src/clean/transforms.cc" "CMakeFiles/dt.dir/src/clean/transforms.cc.o" "gcc" "CMakeFiles/dt.dir/src/clean/transforms.cc.o.d"
  "/root/repo/src/common/logging.cc" "CMakeFiles/dt.dir/src/common/logging.cc.o" "gcc" "CMakeFiles/dt.dir/src/common/logging.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/dt.dir/src/common/status.cc.o" "gcc" "CMakeFiles/dt.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/strutil.cc" "CMakeFiles/dt.dir/src/common/strutil.cc.o" "gcc" "CMakeFiles/dt.dir/src/common/strutil.cc.o.d"
  "/root/repo/src/common/thread_pool.cc" "CMakeFiles/dt.dir/src/common/thread_pool.cc.o" "gcc" "CMakeFiles/dt.dir/src/common/thread_pool.cc.o.d"
  "/root/repo/src/datagen/dedup_labels.cc" "CMakeFiles/dt.dir/src/datagen/dedup_labels.cc.o" "gcc" "CMakeFiles/dt.dir/src/datagen/dedup_labels.cc.o.d"
  "/root/repo/src/datagen/ftables_gen.cc" "CMakeFiles/dt.dir/src/datagen/ftables_gen.cc.o" "gcc" "CMakeFiles/dt.dir/src/datagen/ftables_gen.cc.o.d"
  "/root/repo/src/datagen/mention_labels.cc" "CMakeFiles/dt.dir/src/datagen/mention_labels.cc.o" "gcc" "CMakeFiles/dt.dir/src/datagen/mention_labels.cc.o.d"
  "/root/repo/src/datagen/vocab.cc" "CMakeFiles/dt.dir/src/datagen/vocab.cc.o" "gcc" "CMakeFiles/dt.dir/src/datagen/vocab.cc.o.d"
  "/root/repo/src/datagen/webtext_gen.cc" "CMakeFiles/dt.dir/src/datagen/webtext_gen.cc.o" "gcc" "CMakeFiles/dt.dir/src/datagen/webtext_gen.cc.o.d"
  "/root/repo/src/dedup/blocking.cc" "CMakeFiles/dt.dir/src/dedup/blocking.cc.o" "gcc" "CMakeFiles/dt.dir/src/dedup/blocking.cc.o.d"
  "/root/repo/src/dedup/clustering.cc" "CMakeFiles/dt.dir/src/dedup/clustering.cc.o" "gcc" "CMakeFiles/dt.dir/src/dedup/clustering.cc.o.d"
  "/root/repo/src/dedup/consolidation.cc" "CMakeFiles/dt.dir/src/dedup/consolidation.cc.o" "gcc" "CMakeFiles/dt.dir/src/dedup/consolidation.cc.o.d"
  "/root/repo/src/dedup/fellegi_sunter.cc" "CMakeFiles/dt.dir/src/dedup/fellegi_sunter.cc.o" "gcc" "CMakeFiles/dt.dir/src/dedup/fellegi_sunter.cc.o.d"
  "/root/repo/src/dedup/pair_features.cc" "CMakeFiles/dt.dir/src/dedup/pair_features.cc.o" "gcc" "CMakeFiles/dt.dir/src/dedup/pair_features.cc.o.d"
  "/root/repo/src/dedup/record.cc" "CMakeFiles/dt.dir/src/dedup/record.cc.o" "gcc" "CMakeFiles/dt.dir/src/dedup/record.cc.o.d"
  "/root/repo/src/expert/expert.cc" "CMakeFiles/dt.dir/src/expert/expert.cc.o" "gcc" "CMakeFiles/dt.dir/src/expert/expert.cc.o.d"
  "/root/repo/src/fusion/data_tamer.cc" "CMakeFiles/dt.dir/src/fusion/data_tamer.cc.o" "gcc" "CMakeFiles/dt.dir/src/fusion/data_tamer.cc.o.d"
  "/root/repo/src/ingest/csv.cc" "CMakeFiles/dt.dir/src/ingest/csv.cc.o" "gcc" "CMakeFiles/dt.dir/src/ingest/csv.cc.o.d"
  "/root/repo/src/ingest/flatten.cc" "CMakeFiles/dt.dir/src/ingest/flatten.cc.o" "gcc" "CMakeFiles/dt.dir/src/ingest/flatten.cc.o.d"
  "/root/repo/src/ingest/json.cc" "CMakeFiles/dt.dir/src/ingest/json.cc.o" "gcc" "CMakeFiles/dt.dir/src/ingest/json.cc.o.d"
  "/root/repo/src/ingest/source_registry.cc" "CMakeFiles/dt.dir/src/ingest/source_registry.cc.o" "gcc" "CMakeFiles/dt.dir/src/ingest/source_registry.cc.o.d"
  "/root/repo/src/ingest/type_infer.cc" "CMakeFiles/dt.dir/src/ingest/type_infer.cc.o" "gcc" "CMakeFiles/dt.dir/src/ingest/type_infer.cc.o.d"
  "/root/repo/src/match/column_profile.cc" "CMakeFiles/dt.dir/src/match/column_profile.cc.o" "gcc" "CMakeFiles/dt.dir/src/match/column_profile.cc.o.d"
  "/root/repo/src/match/composite_matcher.cc" "CMakeFiles/dt.dir/src/match/composite_matcher.cc.o" "gcc" "CMakeFiles/dt.dir/src/match/composite_matcher.cc.o.d"
  "/root/repo/src/match/global_schema.cc" "CMakeFiles/dt.dir/src/match/global_schema.cc.o" "gcc" "CMakeFiles/dt.dir/src/match/global_schema.cc.o.d"
  "/root/repo/src/match/name_matcher.cc" "CMakeFiles/dt.dir/src/match/name_matcher.cc.o" "gcc" "CMakeFiles/dt.dir/src/match/name_matcher.cc.o.d"
  "/root/repo/src/match/synonyms.cc" "CMakeFiles/dt.dir/src/match/synonyms.cc.o" "gcc" "CMakeFiles/dt.dir/src/match/synonyms.cc.o.d"
  "/root/repo/src/match/threshold_tuner.cc" "CMakeFiles/dt.dir/src/match/threshold_tuner.cc.o" "gcc" "CMakeFiles/dt.dir/src/match/threshold_tuner.cc.o.d"
  "/root/repo/src/ml/classifier.cc" "CMakeFiles/dt.dir/src/ml/classifier.cc.o" "gcc" "CMakeFiles/dt.dir/src/ml/classifier.cc.o.d"
  "/root/repo/src/ml/evaluation.cc" "CMakeFiles/dt.dir/src/ml/evaluation.cc.o" "gcc" "CMakeFiles/dt.dir/src/ml/evaluation.cc.o.d"
  "/root/repo/src/ml/features.cc" "CMakeFiles/dt.dir/src/ml/features.cc.o" "gcc" "CMakeFiles/dt.dir/src/ml/features.cc.o.d"
  "/root/repo/src/query/query.cc" "CMakeFiles/dt.dir/src/query/query.cc.o" "gcc" "CMakeFiles/dt.dir/src/query/query.cc.o.d"
  "/root/repo/src/query/text_search.cc" "CMakeFiles/dt.dir/src/query/text_search.cc.o" "gcc" "CMakeFiles/dt.dir/src/query/text_search.cc.o.d"
  "/root/repo/src/relational/catalog.cc" "CMakeFiles/dt.dir/src/relational/catalog.cc.o" "gcc" "CMakeFiles/dt.dir/src/relational/catalog.cc.o.d"
  "/root/repo/src/relational/schema.cc" "CMakeFiles/dt.dir/src/relational/schema.cc.o" "gcc" "CMakeFiles/dt.dir/src/relational/schema.cc.o.d"
  "/root/repo/src/relational/table.cc" "CMakeFiles/dt.dir/src/relational/table.cc.o" "gcc" "CMakeFiles/dt.dir/src/relational/table.cc.o.d"
  "/root/repo/src/relational/value.cc" "CMakeFiles/dt.dir/src/relational/value.cc.o" "gcc" "CMakeFiles/dt.dir/src/relational/value.cc.o.d"
  "/root/repo/src/storage/codec.cc" "CMakeFiles/dt.dir/src/storage/codec.cc.o" "gcc" "CMakeFiles/dt.dir/src/storage/codec.cc.o.d"
  "/root/repo/src/storage/collection.cc" "CMakeFiles/dt.dir/src/storage/collection.cc.o" "gcc" "CMakeFiles/dt.dir/src/storage/collection.cc.o.d"
  "/root/repo/src/storage/document_store.cc" "CMakeFiles/dt.dir/src/storage/document_store.cc.o" "gcc" "CMakeFiles/dt.dir/src/storage/document_store.cc.o.d"
  "/root/repo/src/storage/docvalue.cc" "CMakeFiles/dt.dir/src/storage/docvalue.cc.o" "gcc" "CMakeFiles/dt.dir/src/storage/docvalue.cc.o.d"
  "/root/repo/src/storage/index.cc" "CMakeFiles/dt.dir/src/storage/index.cc.o" "gcc" "CMakeFiles/dt.dir/src/storage/index.cc.o.d"
  "/root/repo/src/storage/snapshot.cc" "CMakeFiles/dt.dir/src/storage/snapshot.cc.o" "gcc" "CMakeFiles/dt.dir/src/storage/snapshot.cc.o.d"
  "/root/repo/src/textparse/domain_parser.cc" "CMakeFiles/dt.dir/src/textparse/domain_parser.cc.o" "gcc" "CMakeFiles/dt.dir/src/textparse/domain_parser.cc.o.d"
  "/root/repo/src/textparse/entity_types.cc" "CMakeFiles/dt.dir/src/textparse/entity_types.cc.o" "gcc" "CMakeFiles/dt.dir/src/textparse/entity_types.cc.o.d"
  "/root/repo/src/textparse/gazetteer.cc" "CMakeFiles/dt.dir/src/textparse/gazetteer.cc.o" "gcc" "CMakeFiles/dt.dir/src/textparse/gazetteer.cc.o.d"
  "/root/repo/src/textparse/tokenizer.cc" "CMakeFiles/dt.dir/src/textparse/tokenizer.cc.o" "gcc" "CMakeFiles/dt.dir/src/textparse/tokenizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
