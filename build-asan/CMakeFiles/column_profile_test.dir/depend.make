# Empty dependencies file for column_profile_test.
# This may be replaced when dependencies are built.
