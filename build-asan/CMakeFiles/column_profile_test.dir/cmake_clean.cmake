file(REMOVE_RECURSE
  "CMakeFiles/column_profile_test.dir/tests/column_profile_test.cc.o"
  "CMakeFiles/column_profile_test.dir/tests/column_profile_test.cc.o.d"
  "column_profile_test"
  "column_profile_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/column_profile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
