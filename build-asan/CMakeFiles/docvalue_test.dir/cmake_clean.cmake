file(REMOVE_RECURSE
  "CMakeFiles/docvalue_test.dir/tests/docvalue_test.cc.o"
  "CMakeFiles/docvalue_test.dir/tests/docvalue_test.cc.o.d"
  "docvalue_test"
  "docvalue_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/docvalue_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
