# Empty dependencies file for docvalue_test.
# This may be replaced when dependencies are built.
