# Empty dependencies file for roundtrip_fuzz_test.
# This may be replaced when dependencies are built.
