file(REMOVE_RECURSE
  "CMakeFiles/roundtrip_fuzz_test.dir/tests/roundtrip_fuzz_test.cc.o"
  "CMakeFiles/roundtrip_fuzz_test.dir/tests/roundtrip_fuzz_test.cc.o.d"
  "roundtrip_fuzz_test"
  "roundtrip_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/roundtrip_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
