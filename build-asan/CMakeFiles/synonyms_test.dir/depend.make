# Empty dependencies file for synonyms_test.
# This may be replaced when dependencies are built.
