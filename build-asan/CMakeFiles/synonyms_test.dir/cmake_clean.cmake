file(REMOVE_RECURSE
  "CMakeFiles/synonyms_test.dir/tests/synonyms_test.cc.o"
  "CMakeFiles/synonyms_test.dir/tests/synonyms_test.cc.o.d"
  "synonyms_test"
  "synonyms_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synonyms_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
