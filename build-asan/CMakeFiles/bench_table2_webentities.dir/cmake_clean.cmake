file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_webentities.dir/bench/bench_table2_webentities.cc.o"
  "CMakeFiles/bench_table2_webentities.dir/bench/bench_table2_webentities.cc.o.d"
  "bench_table2_webentities"
  "bench_table2_webentities.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_webentities.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
