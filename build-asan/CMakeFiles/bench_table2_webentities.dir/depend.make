# Empty dependencies file for bench_table2_webentities.
# This may be replaced when dependencies are built.
