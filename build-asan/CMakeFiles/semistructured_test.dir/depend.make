# Empty dependencies file for semistructured_test.
# This may be replaced when dependencies are built.
