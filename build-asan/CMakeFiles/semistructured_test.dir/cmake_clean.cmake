file(REMOVE_RECURSE
  "CMakeFiles/semistructured_test.dir/tests/semistructured_test.cc.o"
  "CMakeFiles/semistructured_test.dir/tests/semistructured_test.cc.o.d"
  "semistructured_test"
  "semistructured_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semistructured_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
