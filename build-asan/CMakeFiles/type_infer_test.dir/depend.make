# Empty dependencies file for type_infer_test.
# This may be replaced when dependencies are built.
