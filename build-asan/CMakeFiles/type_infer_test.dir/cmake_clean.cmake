file(REMOVE_RECURSE
  "CMakeFiles/type_infer_test.dir/tests/type_infer_test.cc.o"
  "CMakeFiles/type_infer_test.dir/tests/type_infer_test.cc.o.d"
  "type_infer_test"
  "type_infer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/type_infer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
