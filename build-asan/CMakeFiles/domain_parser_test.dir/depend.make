# Empty dependencies file for domain_parser_test.
# This may be replaced when dependencies are built.
