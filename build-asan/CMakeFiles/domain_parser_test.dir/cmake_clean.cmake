file(REMOVE_RECURSE
  "CMakeFiles/domain_parser_test.dir/tests/domain_parser_test.cc.o"
  "CMakeFiles/domain_parser_test.dir/tests/domain_parser_test.cc.o.d"
  "domain_parser_test"
  "domain_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
