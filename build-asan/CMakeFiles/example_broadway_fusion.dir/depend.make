# Empty dependencies file for example_broadway_fusion.
# This may be replaced when dependencies are built.
