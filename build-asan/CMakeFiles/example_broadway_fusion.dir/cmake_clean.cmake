file(REMOVE_RECURSE
  "CMakeFiles/example_broadway_fusion.dir/examples/broadway_fusion.cpp.o"
  "CMakeFiles/example_broadway_fusion.dir/examples/broadway_fusion.cpp.o.d"
  "example_broadway_fusion"
  "example_broadway_fusion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_broadway_fusion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
