/// \file dtctl.cpp
/// \brief The serving layer end to end on one machine: boots a
/// `DtServer` over a synthetic corpus on a loopback socket, then
/// drives it exactly like a remote operator's control tool would —
/// every query below travels the DTW1 wire protocol as a serialized
/// `QueryRequest`, never an in-process call.
///
///   dtctl [num_fragments]
///
/// Shows: top-discussed over RPC, a planner explain fetched remotely
/// (both the rendered string and the machine-readable plan), a paged
/// find walked via continuation tokens across *separate connections*
/// (sessions are stateless — the token is the cursor), and the
/// server's own traffic counters.

#include <cstdio>
#include <cstdlib>

#include "datagen/webtext_gen.h"
#include "fusion/data_tamer.h"
#include "query/request.h"
#include "server/client.h"
#include "server/server.h"

using namespace dt;

namespace {

bool Fail(const Status& st) {
  std::fprintf(stderr, "dtctl: %s\n", st.ToString().c_str());
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  int64_t num_fragments = 5000;
  if (argc > 1) num_fragments = std::max(500L, std::atol(argv[1]));

  std::printf("== boot: ingesting %lld fragments, starting server ==\n",
              static_cast<long long>(num_fragments));
  datagen::WebTextGenOptions wopts;
  wopts.num_fragments = num_fragments;
  datagen::WebTextGenerator webgen(wopts);
  auto gazetteer = webgen.BuildGazetteer();
  fusion::DataTamer tamer;
  tamer.SetGazetteer(&gazetteer);
  for (const auto& frag : webgen.Generate()) {
    auto r = tamer.IngestTextFragment(frag.text, frag.feed, frag.timestamp);
    if (!r.ok()) return Fail(r.status()), 1;
  }
  Status st = tamer.CreateStandardIndexes();
  if (!st.ok()) return Fail(st), 1;

  server::DtServer srv(&tamer);
  st = srv.Start();
  if (!st.ok()) return Fail(st), 1;
  std::printf("serving on 127.0.0.1:%u\n\n", srv.port());

  auto conn = server::DtClient::Connect("127.0.0.1", srv.port());
  if (!conn.ok()) return Fail(conn.status()), 1;
  server::DtClient& cli = **conn;

  // -- top-discussed over the wire (the Table IV demo query) --
  query::QueryRequest req;
  req.op = query::QueryOp::kTopDiscussed;
  req.entity_type = "Movie";
  req.k = 5;
  auto top = cli.Call(req);
  if (!top.ok()) return Fail(top.status()), 1;
  std::printf("== top 5 discussed movies (RPC top_discussed) ==\n");
  for (const auto& row : top->groups) {
    std::printf("  %-24s %lld\n", row.key.c_str(),
                static_cast<long long>(row.count));
  }

  // -- remote explain: rendered string + machine-readable plan --
  req = {};
  req.op = query::QueryOp::kExplain;
  req.collection = "entity";
  req.predicate = query::Predicate::Eq("type", storage::DocValue::Str("Movie"));
  req.order_by = "name";
  req.limit = 25;
  auto explain = cli.Call(req);
  if (!explain.ok()) return Fail(explain.status()), 1;
  std::printf("\n== remote explain ==\n  %s\n  (plan doc: %s)\n",
              explain->explain.c_str(), explain->plan.ToJson().c_str());

  // -- one-shot find, then the same stream paged over fresh
  //    connections: the continuation token is the only cursor state --
  req.op = query::QueryOp::kFind;
  auto oneshot = cli.Call(req);
  if (!oneshot.ok()) return Fail(oneshot.status()), 1;

  req.op = query::QueryOp::kFindPage;
  req.page_size = 8;
  std::vector<storage::DocId> stitched;
  int pages = 0;
  while (true) {
    auto page_conn = server::DtClient::Connect("127.0.0.1", srv.port());
    if (!page_conn.ok()) return Fail(page_conn.status()), 1;
    auto page = (*page_conn)->Call(req);
    if (!page.ok()) return Fail(page.status()), 1;
    stitched.insert(stitched.end(), page->ids.begin(), page->ids.end());
    ++pages;
    if (page->next_token.empty()) break;
    req.resume_token = page->next_token;
  }
  bool identical = stitched == oneshot->ids;
  std::printf(
      "\n== paged find (one connection per page) ==\n"
      "  %zu ids over %d pages; stitched %s one-shot result\n",
      stitched.size(), pages, identical ? "==" : "!=");
  if (!identical) return 1;

  // -- group counts over the wire --
  req = {};
  req.op = query::QueryOp::kCount;
  req.collection = "entity";
  req.group_path = "type";
  auto counts = cli.Call(req);
  if (!counts.ok()) return Fail(counts.status()), 1;
  std::printf("\n== entity counts by type (RPC count) ==\n");
  for (const auto& row : counts->groups) {
    std::printf("  %-24s %lld\n", row.key.c_str(),
                static_cast<long long>(row.count));
  }

  server::ServerStats stats = srv.stats();
  std::printf(
      "\n== server counters ==\n"
      "  sessions=%llu executed=%llu rejected=%llu corrupt=%llu\n",
      static_cast<unsigned long long>(stats.sessions_accepted),
      static_cast<unsigned long long>(stats.requests_executed),
      static_cast<unsigned long long>(stats.requests_rejected),
      static_cast<unsigned long long>(stats.corrupt_frames));
  srv.Stop();
  std::printf("\nOK\n");
  return 0;
}
