/// \file schema_evolution.cpp
/// \brief Bottom-up global-schema evolution with an expert in the loop
/// (the Fig. 2 workflow as an interactive-style walkthrough).
///
/// Integrates heterogeneous Broadway sources one at a time, printing
/// the matcher's routing per attribute and letting a simulated expert
/// settle the review band. Shows how the acceptance threshold shifts
/// work between the machine and the human.

#include <cstdio>

#include "datagen/ftables_gen.h"
#include "expert/expert.h"
#include "match/global_schema.h"

int main() {
  using namespace dt;

  datagen::FTablesGenOptions fopts;
  fopts.num_sources = 8;
  datagen::FusionTablesGenerator gen(fopts);
  auto sources = gen.Generate();

  auto synonyms = match::SynonymDictionary::Default();
  match::GlobalSchemaOptions opts;
  opts.accept_threshold = 0.80;  // strict curator
  match::GlobalSchema schema(opts, &synonyms);

  expert::ExpertPool pool;
  pool.AddExpert({"curator", 0.97, 1.0});
  Rng rng(7);

  for (const auto& src : sources) {
    std::printf("=== integrating %s (%d attributes) ===\n",
                src.table.name().c_str(),
                src.table.schema().num_attributes());
    auto results = schema.MatchTable(src.table);
    std::map<std::string, match::GlobalSchema::ReviewResolution> res;
    for (const auto& r : results) {
      switch (r.decision) {
        case match::MatchDecision::kAutoAccept:
          std::printf("  %-18s -> %-18s  auto (%.2f)\n",
                      r.source_attr.c_str(),
                      schema.attribute(r.suggestions[0].global_index)
                          .name.c_str(),
                      r.top_score());
          break;
        case match::MatchDecision::kNeedsReview: {
          // Ask the expert; ground truth from the generator.
          expert::ReviewTask task;
          task.subject = r.source_attr;
          for (const auto& sug : r.suggestions) {
            task.options.push_back(schema.attribute(sug.global_index).name);
          }
          task.options.push_back("<new attribute>");
          task.machine_confidence = r.top_score();
          const std::string& truth_concept =
              src.attr_concept.at(r.source_attr);
          int truth = static_cast<int>(task.options.size()) - 1;
          for (size_t i = 0; i < r.suggestions.size(); ++i) {
            if (schema.attribute(r.suggestions[i].global_index).name ==
                truth_concept) {
              truth = static_cast<int>(i);
            }
          }
          auto answer = pool.Resolve(task, truth, 1, &rng);
          if (answer.ok() &&
              answer->option < static_cast<int>(r.suggestions.size())) {
            res[r.source_attr] = {
                r.suggestions[answer->option].global_index};
            std::printf("  %-18s -> %-18s  expert (machine said %.2f)\n",
                        r.source_attr.c_str(),
                        task.options[answer->option].c_str(), r.top_score());
          } else {
            std::printf("  %-18s -> %-18s  expert: new attribute\n",
                        r.source_attr.c_str(), "<new>");
          }
          break;
        }
        case match::MatchDecision::kNewAttribute:
          std::printf("  %-18s -> %-18s  no counterpart (add to global "
                      "schema)\n",
                      r.source_attr.c_str(), "<new>");
          break;
      }
    }
    auto mapping = schema.IntegrateTable(src.table, results, res);
    if (!mapping.ok()) {
      std::fprintf(stderr, "%s\n", mapping.status().ToString().c_str());
      return 1;
    }
    std::printf("  global schema now has %d attributes\n\n",
                schema.num_attributes());
  }

  std::printf("=== final global schema ===\n");
  for (int g = 0; g < schema.num_attributes(); ++g) {
    const auto& attr = schema.attribute(g);
    std::printf("  %-18s  merged from %zu source attributes\n",
                attr.name.c_str(), attr.provenance.size());
  }
  std::printf("\nexpert effort: %lld tasks, %.0f cost units, %.0f%% "
              "correct\n",
              static_cast<long long>(pool.tasks_resolved()),
              pool.total_cost(),
              pool.tasks_resolved()
                  ? 100.0 * pool.correct_resolutions() / pool.tasks_resolved()
                  : 0.0);
  return 0;
}
