/// \file broadway_fusion.cpp
/// \brief The paper's §V demo end to end: "Consider someone who is
/// interested in watching a recent popular award-winning movie or a
/// Broadway show for the best price possible."
///
/// Runs the full scenario against the synthetic corpus: (1) top-10
/// most-discussed query over web text, (2) the user picks Matilda,
/// (3) pre-fusion query shows text only, (4) FTABLES are imported and
/// schema-matched, (5) the fused query returns theaters, schedule and
/// best price.

#include <cstdio>

#include "datagen/ftables_gen.h"
#include "datagen/webtext_gen.h"
#include "fusion/data_tamer.h"

int main(int argc, char** argv) {
  using namespace dt;

  int64_t num_fragments = 10000;
  if (argc > 1) num_fragments = std::max(1000L, std::atol(argv[1]));

  std::printf("Step 0: generating + ingesting %lld web-text fragments...\n",
              static_cast<long long>(num_fragments));
  datagen::WebTextGenOptions wopts;
  wopts.num_fragments = num_fragments;
  datagen::WebTextGenerator webgen(wopts);
  auto gazetteer = webgen.BuildGazetteer();

  fusion::DataTamer tamer;
  tamer.SetGazetteer(&gazetteer);
  for (const auto& frag : webgen.Generate()) {
    auto r = tamer.IngestTextFragment(frag.text, frag.feed, frag.timestamp);
    if (!r.ok()) {
      std::fprintf(stderr, "%s\n", r.status().ToString().c_str());
      return 1;
    }
  }
  (void)tamer.CreateStandardIndexes();
  std::printf("        dt.instance: %lld docs, dt.entity: %lld docs\n\n",
              static_cast<long long>(tamer.instance_collection()->count()),
              static_cast<long long>(tamer.entity_collection()->count()));

  // Step 1 — the user asks for the top 10 most discussed award winners.
  std::printf("Step 1: top 10 most discussed award-winning movies/shows\n");
  auto top = tamer.TopDiscussed("Movie", 10, /*award_winning_only=*/true);
  for (size_t i = 0; i < top.size(); ++i) {
    std::printf("        %2zu. %-28s (%lld mentions)\n", i + 1,
                top[i].key.c_str(), static_cast<long long>(top[i].count));
  }

  // Step 2 — the user picks Matilda; query web text only (Table V).
  std::printf("\nStep 2: the user picks \"Matilda\" — web text only:\n");
  auto before = tamer.QueryEntity("Movie", "Matilda", false);
  if (!before.ok()) {
    std::fprintf(stderr, "%s\n", before.status().ToString().c_str());
    return 1;
  }
  for (int64_t r = 0; r < before->num_rows(); ++r) {
    std::string v = before->at(r, "VALUE").string_value();
    if (v.size() > 90) v = v.substr(0, 87) + "...";
    std::printf("        %-16s %s\n",
                before->at(r, "ATTRIBUTE").string_value().c_str(), v.c_str());
  }
  std::printf("        (no theaters, pricing or schedules — the user is "
              "stuck)\n");

  // Step 3 — import the 20 Google-Fusion-Tables Broadway sources.
  std::printf("\nStep 3: importing 20 FTABLES structured sources + schema "
              "matching\n");
  datagen::FusionTablesGenerator ftgen;
  for (auto& src : ftgen.Generate()) {
    auto report = tamer.IngestStructuredTable(std::move(src.table));
    if (!report.ok()) {
      std::fprintf(stderr, "%s\n", report.status().ToString().c_str());
      return 1;
    }
    std::printf("        %-12s auto=%d review=%d new=%d\n",
                report->source_name.c_str(), report->auto_accepted,
                report->sent_to_review, report->new_attributes);
  }
  std::printf("        global schema: %d attributes\n",
              tamer.global_schema().num_attributes());

  // Step 4 — the fused query (Table VI).
  std::printf("\nStep 4: the same query after fusion:\n");
  auto after = tamer.QueryEntity("Movie", "Matilda", true);
  if (!after.ok()) {
    std::fprintf(stderr, "%s\n", after.status().ToString().c_str());
    return 1;
  }
  for (int64_t r = 0; r < after->num_rows(); ++r) {
    std::string v = after->at(r, "VALUE").string_value();
    if (v.size() > 90) v = v.substr(0, 87) + "...";
    std::printf("        %-16s %s\n",
                after->at(r, "ATTRIBUTE").string_value().c_str(), v.c_str());
  }
  std::printf("\n        The user has the theater, the schedule and the "
              "best price\n        without any manual search — the value "
              "of fusion.\n");
  return 0;
}
