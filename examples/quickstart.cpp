/// \file quickstart.cpp
/// \brief Five-minute tour of the Data Tamer public API.
///
/// Builds a tiny gazetteer, ingests three text fragments and one
/// structured CSV source, and runs the fused point query — the whole
/// Fig. 1 pipeline in ~80 lines. Start here.

#include <cstdio>

#include "fusion/data_tamer.h"
#include "ingest/csv.h"
#include "textparse/gazetteer.h"

int main() {
  using namespace dt;

  // 1. A domain dictionary: the user-defined parser module's knowledge.
  textparse::Gazetteer gazetteer;
  {
    textparse::GazetteerEntry matilda;
    matilda.phrase = "Matilda";
    matilda.type = textparse::EntityType::kMovie;
    matilda.attrs = {{"award_winning", "true"}};
    gazetteer.Add(matilda);
    gazetteer.Add("Wicked", textparse::EntityType::kMovie);
    gazetteer.Add("Shubert", textparse::EntityType::kFacility);
    gazetteer.Add("London", textparse::EntityType::kCity);
  }

  // 2. The system facade.
  fusion::DataTamer tamer;
  tamer.SetGazetteer(&gazetteer);

  // 3. Unstructured input: web text fragments.
  const char* fragments[] = {
      "..which began previews on Tuesday, grossed 659,391, or...And "
      "Matilda an award-winning import from London, grossed 960,998, or "
      "93 percent of the maximum.",
      "Matilda drew another standing ovation at the Shubert last night.",
      "Wicked fans lined the block; scalpers asked double.",
  };
  int64_t ts = 1362355200;
  for (const char* text : fragments) {
    auto id = tamer.IngestTextFragment(text, "newsfeed", ts++);
    if (!id.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   id.status().ToString().c_str());
      return 1;
    }
  }
  (void)tamer.CreateStandardIndexes();

  // 4. Structured input: a curated table (CSV in the wild).
  const char* csv =
      "SHOW_NAME,THEATER,PERFORMANCE,CHEAPEST_PRICE,FIRST\n"
      "Matilda,\"Shubert 225 W. 44th St between 7th and 8th\","
      "\"Tues at 7pm Wed at 8pm Thurs at 7pm Fri-Sat at 8pm Wed, Sat at "
      "2pm Sun at 3pm\",$27,3/4/2013\n"
      "Wicked,\"Gershwin 222 W. 51st St\",\"Tue-Sat at 8pm\",$89,"
      "10/30/2003\n";
  auto table = ingest::CsvToTable("broadway_guide", csv);
  if (!table.ok()) {
    std::fprintf(stderr, "CSV parse failed: %s\n",
                 table.status().ToString().c_str());
    return 1;
  }
  auto report = tamer.IngestStructuredTable(std::move(table).ValueOrDie());
  if (!report.ok()) {
    std::fprintf(stderr, "structured ingest failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  std::printf("schema integration: %d auto-accepted, %d review, %d new\n\n",
              report->auto_accepted, report->sent_to_review,
              report->new_attributes);

  // 5. Query before fusion (Table V shape) and after (Table VI shape).
  for (bool fused : {false, true}) {
    auto result = tamer.QueryEntity("Movie", "Matilda", fused);
    if (!result.ok()) {
      std::fprintf(stderr, "query failed: %s\n",
                   result.status().ToString().c_str());
      return 1;
    }
    std::printf("=== Matilda, %s ===\n",
                fused ? "fused (text + structured)" : "web text only");
    for (int64_t r = 0; r < result->num_rows(); ++r) {
      std::string value = result->at(r, "VALUE").string_value();
      if (value.size() > 100) value = value.substr(0, 97) + "...";
      std::printf("  %-16s %s\n",
                  result->at(r, "ATTRIBUTE").string_value().c_str(),
                  value.c_str());
    }
    std::printf("\n");
  }
  return 0;
}
