/// \file snapshot_roundtrip.cpp
/// \brief Snapshot persistence walkthrough: ingest once, then cold-
/// start from a binary snapshot instead of re-parsing the corpus.
///
/// Builds a 10k-fragment store with the synthetic web-text generator,
/// saves it to one snapshot file, loads it into a fresh facade, and
/// shows (a) the loaded store answers the same queries and (b) loading
/// is much faster than re-ingesting. Run with a fragment count to
/// scale: `example_snapshot_roundtrip 50000`.

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <string>

#include "common/strutil.h"
#include "datagen/webtext_gen.h"
#include "fusion/data_tamer.h"

namespace {

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main(int argc, char** argv) {
  using namespace dt;

  int64_t num_fragments = 10000;
  if (argc > 1) {
    int64_t v;
    if (ParseInt64(argv[1], &v) && v > 0) num_fragments = v;
  }
  // Per-process path so concurrent runs (or other users' leftovers on
  // a shared machine) cannot collide; removed before exit.
  const std::string path =
      "/tmp/dt_example_snapshot." + std::to_string(::getpid()) + ".bin";

  // 1. Ingest: parse every fragment, extract entities, build indexes.
  datagen::WebTextGenOptions topts;
  topts.num_fragments = num_fragments;
  datagen::WebTextGenerator webgen(topts);
  textparse::Gazetteer gazetteer = webgen.BuildGazetteer();

  fusion::DataTamer tamer;
  tamer.SetGazetteer(&gazetteer);
  auto t0 = std::chrono::steady_clock::now();
  for (const auto& frag : webgen.Generate()) {
    auto r = tamer.IngestTextFragment(frag.text, frag.feed, frag.timestamp);
    if (!r.ok()) {
      std::fprintf(stderr, "ingest failed: %s\n",
                   r.status().ToString().c_str());
      return 1;
    }
  }
  (void)tamer.CreateStandardIndexes();
  double ingest_s = SecondsSince(t0);
  std::printf("ingested   %s fragments -> %s entity docs in %.2fs\n",
              WithThousandsSep(tamer.stats().fragments_ingested).c_str(),
              WithThousandsSep(tamer.stats().entities_extracted).c_str(),
              ingest_s);

  // 2. Save one binary snapshot of the whole document store.
  t0 = std::chrono::steady_clock::now();
  if (Status st = tamer.SaveSnapshot(path); !st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("saved      %s in %.2fs\n", path.c_str(), SecondsSince(t0));

  // 3. Cold start: a fresh facade opens the snapshot instead of
  //    re-running the parser over the corpus.
  fusion::DataTamer restored;
  restored.SetGazetteer(&gazetteer);
  t0 = std::chrono::steady_clock::now();
  if (Status st = restored.LoadSnapshot(path); !st.ok()) {
    std::fprintf(stderr, "load failed: %s\n", st.ToString().c_str());
    std::remove(path.c_str());
    return 1;
  }
  double load_s = SecondsSince(t0);
  std::remove(path.c_str());
  std::printf("loaded     %s fragments in %.2fs (%.1fx faster than "
              "re-ingest)\n",
              WithThousandsSep(restored.stats().fragments_ingested).c_str(),
              load_s, load_s > 0 ? ingest_s / load_s : 0.0);

  // 4. The loaded store serves the same queries.
  auto before = tamer.TopDiscussed("Movie", 3, false);
  auto after = restored.TopDiscussed("Movie", 3, false);
  if (before.size() != after.size()) {
    std::fprintf(stderr, "FAIL: query results differ after load\n");
    return 1;
  }
  std::printf("\ntop discussed movies (identical before/after load):\n");
  for (size_t i = 0; i < after.size(); ++i) {
    if (before[i].key != after[i].key || before[i].count != after[i].count) {
      std::fprintf(stderr, "FAIL: row %zu differs\n", i);
      return 1;
    }
    std::printf("  %-24s %s mentions\n", after[i].key.c_str(),
                WithThousandsSep(after[i].count).c_str());
  }
  auto hits = restored.SearchFragments("standing ovation", 3);
  std::printf("full-text search over the loaded store: %zu hits\n",
              hits.size());
  std::printf("\nOK: snapshot round trip verified\n");
  return 0;
}
