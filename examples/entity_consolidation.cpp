/// \file entity_consolidation.cpp
/// \brief Entity consolidation on a dirty multi-source catalog:
/// blocking, ML-scored matching, clustering and composite-record
/// construction — the paper's "finding records from different data
/// sources which describe the same entity and then consolidating these
/// records into a composite entity record".
///
/// Three simulated feeds describe overlapping companies with typos,
/// abbreviations and conflicting fields. A classifier trained on the
/// generator's labeled pairs scores candidates; composites merge under
/// the source-priority policy.

#include <cstdio>

#include "datagen/dedup_labels.h"
#include "dedup/consolidation.h"
#include "ml/classifier.h"
#include "ml/evaluation.h"

int main() {
  using namespace dt;

  // 1. Train the dedup classifier on labeled pairs (ground truth from
  //    the corruption model — in production this is expert-sourced).
  std::printf("Step 1: training the dedup classifier...\n");
  datagen::DedupLabelOptions lopts;
  lopts.num_pairs = 4000;
  auto labeled =
      datagen::GenerateLabeledPairs(textparse::EntityType::kCompany, lopts);
  ml::FeatureDictionary dict;
  std::vector<ml::Example> examples;
  for (const auto& p : labeled) {
    ml::Example ex;
    ex.features = dedup::PairSignalsToFeatures(
        dedup::ComputePairSignals(p.a, p.b), &dict, true);
    ex.label = p.label;
    examples.push_back(std::move(ex));
  }
  auto cv = ml::CrossValidate(
      [] { return std::make_unique<ml::LogisticRegression>(); }, examples,
      10);
  if (!cv.ok()) {
    std::fprintf(stderr, "%s\n", cv.status().ToString().c_str());
    return 1;
  }
  std::printf("        10-fold CV: P=%.1f%% R=%.1f%%\n",
              100 * cv->mean_precision(), 100 * cv->mean_recall());
  ml::LogisticRegression classifier;
  if (auto s = classifier.Train(examples); !s.ok()) {
    std::fprintf(stderr, "%s\n", s.ToString().c_str());
    return 1;
  }

  // 2. A dirty three-source catalog.
  std::printf("\nStep 2: three feeds describe overlapping companies:\n");
  auto rec = [](int64_t id, const char* name, const char* src, int trust,
                std::initializer_list<std::pair<const char*, const char*>>
                    fields) {
    dedup::DedupRecord r;
    r.id = id;
    r.entity_type = "Company";
    r.fields["name"] = name;
    for (auto& [k, v] : fields) r.fields[k] = v;
    r.source_id = src;
    r.trust_priority = trust;
    return r;
  };
  std::vector<dedup::DedupRecord> records = {
      rec(1, "Recorded Future", "crm", 10,
          {{"hq", "Cambridge"}, {"sector", "web intelligence"}}),
      rec(2, "Recorded Future Inc", "web-crawl", 2,
          {{"hq", "cambridge"}, {"employees", "400"}}),
      rec(3, "recorded futur", "user-upload", 1, {{"hq", "Boston"}}),
      rec(4, "Vertica Systems", "crm", 10, {{"sector", "databases"}}),
      rec(5, "Vertica Systems LLC", "web-crawl", 2,
          {{"employees", "150"}, {"sector", "databases"}}),
      rec(6, "Stonebridge Media", "crm", 10, {{"sector", "media"}}),
  };
  for (const auto& r : records) {
    std::printf("        [%s] %s\n", r.source_id.c_str(),
                r.DisplayName().c_str());
  }

  // 3. Consolidate with the trained classifier.
  dedup::ConsolidationOptions copts;
  copts.classifier = &classifier;
  copts.feature_dict = &dict;
  copts.match_threshold = 0.5;
  copts.blocking.qgram_size = 3;  // catch "recorded futur"
  dedup::ConsolidationStats stats;
  auto composites = dedup::Consolidate(records, copts, &stats);
  if (!composites.ok()) {
    std::fprintf(stderr, "%s\n", composites.status().ToString().c_str());
    return 1;
  }

  std::printf("\nStep 3: consolidation (%lld candidates scored, %lld "
              "matched, %lld clusters):\n",
              static_cast<long long>(stats.pairs_scored),
              static_cast<long long>(stats.pairs_matched),
              static_cast<long long>(stats.clusters));
  for (const auto& e : *composites) {
    std::printf("        composite #%lld: %s\n",
                static_cast<long long>(e.cluster_id),
                e.fields.count("name") ? e.fields.at("name").c_str() : "?");
    for (const auto& [field, value] : e.fields) {
      if (field != "name") {
        std::printf("            %-10s = %s\n", field.c_str(),
                    value.c_str());
      }
    }
    std::printf("            sources: ");
    for (const auto& s : e.contributing_sources) std::printf("%s ", s.c_str());
    std::printf("(%zu records)\n", e.member_record_ids.size());
  }
  std::printf("\n        Note the composite keeps the curated CRM spelling "
              "and HQ while\n        gaining the employee count only the "
              "crawl knew.\n");
  return 0;
}
