/// \file features.h
/// \brief Sparse feature representation and text featurization for the
/// dedup/cleaning classifiers.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dt::ml {

/// Sparse feature vector: feature id -> value.
using FeatureVector = std::unordered_map<int, double>;

/// \brief One labeled training/eval example (binary labels).
struct Example {
  FeatureVector features;
  int label = 0;  ///< 0 or 1
};

/// \brief Bidirectional feature-name <-> id dictionary.
class FeatureDictionary {
 public:
  /// Id of `name`; assigns a fresh id when `add` and unseen, else -1.
  int IdOf(std::string_view name, bool add);

  /// Name of `id` ("" for out-of-range).
  const std::string& NameOf(int id) const;

  int size() const { return static_cast<int>(names_.size()); }

 private:
  std::unordered_map<std::string, int> ids_;
  std::vector<std::string> names_;
};

/// Featurization knobs.
struct TextFeaturizerOptions {
  bool unigrams = true;
  bool bigrams = true;
  /// Character q-grams of each token (robust to typos/dirt); 0 = off.
  int char_qgrams = 3;
  /// Cap on features added per text (guards adversarially long inputs).
  int max_features_per_text = 4096;
};

/// \brief Bag-of-words/bigrams/char-qgrams featurizer over a shared
/// dictionary.
class TextFeaturizer {
 public:
  /// The dictionary must outlive the featurizer.
  explicit TextFeaturizer(FeatureDictionary* dict,
                          TextFeaturizerOptions opts = {})
      : dict_(dict), opts_(opts) {}

  /// Features of `text`. With `add_features` false (inference time),
  /// unseen features are dropped instead of registered.
  FeatureVector Featurize(std::string_view text, bool add_features) const;

 private:
  void Bump(const std::string& name, bool add, FeatureVector* out) const;

  FeatureDictionary* dict_;
  TextFeaturizerOptions opts_;
};

}  // namespace dt::ml
