#include "ml/evaluation.h"

#include "common/rng.h"
#include "common/strutil.h"

namespace dt::ml {

std::string BinaryMetrics::ToString() const {
  return "P=" + FormatDouble(precision(), 4) +
         " R=" + FormatDouble(recall(), 4) + " F1=" + FormatDouble(f1(), 4) +
         " acc=" + FormatDouble(accuracy(), 4) + " (tp=" + std::to_string(tp) +
         " fp=" + std::to_string(fp) + " tn=" + std::to_string(tn) +
         " fn=" + std::to_string(fn) + ")";
}

BinaryMetrics Evaluate(const Classifier& model,
                       const std::vector<Example>& examples,
                       double threshold) {
  BinaryMetrics m;
  for (const auto& ex : examples) {
    int pred = model.Predict(ex.features, threshold);
    if (pred == 1 && ex.label == 1) ++m.tp;
    if (pred == 1 && ex.label == 0) ++m.fp;
    if (pred == 0 && ex.label == 0) ++m.tn;
    if (pred == 0 && ex.label == 1) ++m.fn;
  }
  return m;
}

double CrossValidationResult::mean_precision() const {
  if (folds.empty()) return 0;
  double s = 0;
  for (const auto& f : folds) s += f.precision();
  return s / folds.size();
}

double CrossValidationResult::mean_recall() const {
  if (folds.empty()) return 0;
  double s = 0;
  for (const auto& f : folds) s += f.recall();
  return s / folds.size();
}

double CrossValidationResult::mean_f1() const {
  if (folds.empty()) return 0;
  double s = 0;
  for (const auto& f : folds) s += f.f1();
  return s / folds.size();
}

Result<CrossValidationResult> CrossValidate(
    const ClassifierFactory& factory, const std::vector<Example>& examples,
    int k, uint64_t seed, double threshold) {
  if (k < 2) {
    return Status::InvalidArgument("k must be >= 2, got " + std::to_string(k));
  }
  // Stratify: shuffle within each class, then deal round-robin.
  std::vector<size_t> pos, neg;
  for (size_t i = 0; i < examples.size(); ++i) {
    (examples[i].label == 1 ? pos : neg).push_back(i);
  }
  if (static_cast<int>(pos.size()) < k || static_cast<int>(neg.size()) < k) {
    return Status::InvalidArgument(
        "each class needs at least k examples for stratified " +
        std::to_string(k) + "-fold CV (pos=" + std::to_string(pos.size()) +
        ", neg=" + std::to_string(neg.size()) + ")");
  }
  Rng rng(seed);
  rng.Shuffle(&pos);
  rng.Shuffle(&neg);
  std::vector<int> fold_of(examples.size());
  for (size_t i = 0; i < pos.size(); ++i) fold_of[pos[i]] = static_cast<int>(i % k);
  for (size_t i = 0; i < neg.size(); ++i) fold_of[neg[i]] = static_cast<int>(i % k);

  CrossValidationResult result;
  for (int fold = 0; fold < k; ++fold) {
    std::vector<Example> train, test;
    for (size_t i = 0; i < examples.size(); ++i) {
      (fold_of[i] == fold ? test : train).push_back(examples[i]);
    }
    auto model = factory();
    DT_RETURN_NOT_OK(model->Train(train));
    BinaryMetrics m = Evaluate(*model, test, threshold);
    result.pooled.Add(m);
    result.folds.push_back(m);
  }
  return result;
}

}  // namespace dt::ml
