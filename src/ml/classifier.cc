#include "ml/classifier.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace dt::ml {

Status NaiveBayesClassifier::Train(const std::vector<Example>& examples) {
  if (examples.empty()) {
    return Status::InvalidArgument("cannot train NaiveBayes on no examples");
  }
  int max_id = -1;
  int64_t class_n[2] = {0, 0};
  for (const auto& ex : examples) {
    if (ex.label != 0 && ex.label != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    ++class_n[ex.label];
    for (const auto& [id, _] : ex.features) max_id = std::max(max_id, id);
  }
  if (class_n[0] == 0 || class_n[1] == 0) {
    return Status::InvalidArgument(
        "NaiveBayes needs examples of both classes");
  }
  num_features_ = max_id + 1;

  // Per-class feature mass.
  std::vector<double> mass[2];
  mass[0].assign(num_features_, 0.0);
  mass[1].assign(num_features_, 0.0);
  double total_mass[2] = {0, 0};
  for (const auto& ex : examples) {
    for (const auto& [id, v] : ex.features) {
      mass[ex.label][id] += v;
      total_mass[ex.label] += v;
    }
  }
  double n = static_cast<double>(examples.size());
  for (int c = 0; c < 2; ++c) {
    log_prior_[c] = std::log(class_n[c] / n);
    double denom = total_mass[c] + alpha_ * (num_features_ + 1);
    log_likelihood_[c].assign(num_features_, 0.0);
    for (int f = 0; f < num_features_; ++f) {
      log_likelihood_[c][f] = std::log((mass[c][f] + alpha_) / denom);
    }
    log_unseen_[c] = std::log(alpha_ / denom);
  }
  trained_ = true;
  return Status::OK();
}

double NaiveBayesClassifier::PredictProb(const FeatureVector& features) const {
  if (!trained_) return 0.5;
  double score[2] = {log_prior_[0], log_prior_[1]};
  for (const auto& [id, v] : features) {
    for (int c = 0; c < 2; ++c) {
      double ll = (id >= 0 && id < num_features_) ? log_likelihood_[c][id]
                                                  : log_unseen_[c];
      score[c] += v * ll;
    }
  }
  // Softmax over the two log scores, numerically stable.
  double mx = std::max(score[0], score[1]);
  double e0 = std::exp(score[0] - mx), e1 = std::exp(score[1] - mx);
  return e1 / (e0 + e1);
}

Status LogisticRegression::Train(const std::vector<Example>& examples) {
  if (examples.empty()) {
    return Status::InvalidArgument(
        "cannot train LogisticRegression on no examples");
  }
  int max_id = -1;
  for (const auto& ex : examples) {
    if (ex.label != 0 && ex.label != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    for (const auto& [id, _] : ex.features) max_id = std::max(max_id, id);
  }
  weights_.assign(max_id + 1, 0.0);
  bias_ = 0;

  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  Rng rng(opts_.shuffle_seed);

  for (int epoch = 0; epoch < opts_.epochs; ++epoch) {
    rng.Shuffle(&order);
    double lr = opts_.learning_rate / (1.0 + 0.1 * epoch);
    for (size_t idx : order) {
      const Example& ex = examples[idx];
      double z = bias_;
      for (const auto& [id, v] : ex.features) z += weights_[id] * v;
      double p = 1.0 / (1.0 + std::exp(-z));
      double g = p - ex.label;
      bias_ -= lr * g;
      for (const auto& [id, v] : ex.features) {
        weights_[id] -= lr * (g * v + opts_.l2 * weights_[id]);
      }
    }
  }
  trained_ = true;
  return Status::OK();
}

double LogisticRegression::PredictProb(const FeatureVector& features) const {
  if (!trained_) return 0.5;
  double z = bias_;
  for (const auto& [id, v] : features) {
    if (id >= 0 && id < static_cast<int>(weights_.size())) {
      z += weights_[id] * v;
    }
  }
  return 1.0 / (1.0 + std::exp(-z));
}

}  // namespace dt::ml
