/// \file classifier.h
/// \brief Binary classifiers for text dedup and data cleaning (§IV:
/// "we trained a machine-learning classifier on a large-scale web-text
/// and used it for deduplication and data cleaning").

#pragma once

#include <memory>
#include <vector>

#include "common/status.h"
#include "ml/features.h"

namespace dt::ml {

/// \brief Interface all binary classifiers implement.
class Classifier {
 public:
  virtual ~Classifier() = default;

  /// Fits the model to `examples`. Retraining replaces prior state.
  virtual Status Train(const std::vector<Example>& examples) = 0;

  /// P(label == 1 | features), in [0, 1].
  virtual double PredictProb(const FeatureVector& features) const = 0;

  /// Hard decision at `threshold`.
  int Predict(const FeatureVector& features, double threshold = 0.5) const {
    return PredictProb(features) >= threshold ? 1 : 0;
  }
};

/// \brief Multinomial Naive Bayes with Laplace smoothing.
///
/// The workhorse for web-scale text: training is one counting pass,
/// prediction is a sparse dot product in log space.
class NaiveBayesClassifier : public Classifier {
 public:
  explicit NaiveBayesClassifier(double alpha = 1.0) : alpha_(alpha) {}

  Status Train(const std::vector<Example>& examples) override;
  double PredictProb(const FeatureVector& features) const override;

 private:
  double alpha_;  // Laplace smoothing
  double log_prior_[2] = {0, 0};
  std::vector<double> log_likelihood_[2];  // per feature id
  double log_unseen_[2] = {0, 0};          // smoothing mass for unseen ids
  int num_features_ = 0;
  bool trained_ = false;
};

/// Logistic-regression hyperparameters.
struct LogisticRegressionOptions {
  double learning_rate = 0.1;
  double l2 = 1e-4;
  int epochs = 20;
  uint64_t shuffle_seed = 42;
};

/// \brief L2-regularized logistic regression trained with SGD.
class LogisticRegression : public Classifier {
 public:
  explicit LogisticRegression(LogisticRegressionOptions opts = {})
      : opts_(opts) {}

  Status Train(const std::vector<Example>& examples) override;
  double PredictProb(const FeatureVector& features) const override;

  const std::vector<double>& weights() const { return weights_; }
  double bias() const { return bias_; }

 private:
  LogisticRegressionOptions opts_;
  std::vector<double> weights_;
  double bias_ = 0;
  bool trained_ = false;
};

}  // namespace dt::ml
