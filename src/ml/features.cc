#include "ml/features.h"

#include "common/strutil.h"

namespace dt::ml {

int FeatureDictionary::IdOf(std::string_view name, bool add) {
  std::string key(name);
  auto it = ids_.find(key);
  if (it != ids_.end()) return it->second;
  if (!add) return -1;
  int id = size();
  ids_.emplace(std::move(key), id);
  names_.push_back(std::string(name));
  return id;
}

const std::string& FeatureDictionary::NameOf(int id) const {
  static const std::string kEmpty;
  if (id < 0 || id >= size()) return kEmpty;
  return names_[id];
}

void TextFeaturizer::Bump(const std::string& name, bool add,
                          FeatureVector* out) const {
  if (static_cast<int>(out->size()) >= opts_.max_features_per_text) return;
  int id = dict_->IdOf(name, add);
  if (id >= 0) (*out)[id] += 1.0;
}

FeatureVector TextFeaturizer::Featurize(std::string_view text,
                                        bool add_features) const {
  FeatureVector out;
  std::vector<std::string> tokens = WordTokens(text);
  if (opts_.unigrams) {
    for (const auto& t : tokens) Bump("u:" + t, add_features, &out);
  }
  if (opts_.bigrams) {
    for (size_t i = 1; i < tokens.size(); ++i) {
      Bump("b:" + tokens[i - 1] + "_" + tokens[i], add_features, &out);
    }
  }
  if (opts_.char_qgrams > 0) {
    for (const auto& t : tokens) {
      for (const auto& g : QGrams(t, opts_.char_qgrams)) {
        Bump("q:" + g, add_features, &out);
      }
    }
  }
  return out;
}

}  // namespace dt::ml
