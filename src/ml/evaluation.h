/// \file evaluation.h
/// \brief Binary-classification metrics and k-fold cross-validation —
/// the methodology behind the paper's "89/90% precision/recall by
/// 10-fold crossvalidation" claim.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ml/classifier.h"

namespace dt::ml {

/// \brief Confusion-matrix counts with derived rates.
struct BinaryMetrics {
  int64_t tp = 0, fp = 0, tn = 0, fn = 0;

  double precision() const {
    return (tp + fp) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fp);
  }
  double recall() const {
    return (tp + fn) == 0 ? 0.0 : static_cast<double>(tp) / (tp + fn);
  }
  double f1() const {
    double p = precision(), r = recall();
    return (p + r) == 0 ? 0.0 : 2 * p * r / (p + r);
  }
  double accuracy() const {
    int64_t n = tp + fp + tn + fn;
    return n == 0 ? 0.0 : static_cast<double>(tp + tn) / n;
  }

  /// Accumulates another confusion matrix.
  void Add(const BinaryMetrics& other) {
    tp += other.tp;
    fp += other.fp;
    tn += other.tn;
    fn += other.fn;
  }

  std::string ToString() const;
};

/// Evaluates a trained classifier on a labeled set.
BinaryMetrics Evaluate(const Classifier& model,
                       const std::vector<Example>& examples,
                       double threshold = 0.5);

/// Builds a fresh, untrained classifier for one CV fold.
using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

/// \brief Result of a k-fold cross-validation run.
struct CrossValidationResult {
  std::vector<BinaryMetrics> folds;
  /// Micro-averaged (pooled confusion matrix) metrics.
  BinaryMetrics pooled;

  double mean_precision() const;
  double mean_recall() const;
  double mean_f1() const;
};

/// \brief Stratified k-fold cross-validation.
///
/// Examples are shuffled deterministically by `seed` and split into k
/// folds preserving the class ratio; each fold is evaluated by a model
/// trained on the remaining k-1. Fails when k < 2 or either class has
/// fewer than k examples.
Result<CrossValidationResult> CrossValidate(
    const ClassifierFactory& factory, const std::vector<Example>& examples,
    int k = 10, uint64_t seed = 42, double threshold = 0.5);

}  // namespace dt::ml
