/// \file document_store.h
/// \brief Named registry of sharded document collections (the "dt"
/// database of the paper: dt.instance, dt.entity, ...).
///
/// The registry itself (create/drop/lookup) is not synchronized —
/// establish the collection set before going multi-threaded. The
/// collections it hands out are: readers take epoch-pinned
/// `CollectionView` handles (see collection.h) and may run
/// concurrently with each collection's internally serialized writers.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/collection.h"

namespace dt::storage {

/// \brief A database holding named collections.
class DocumentStore {
 public:
  /// \param db_name Prefix used to build collection namespaces
  ///        ("dt" -> "dt.instance").
  explicit DocumentStore(std::string db_name = "dt")
      : db_name_(std::move(db_name)) {}

  /// Creates a collection; fails with AlreadyExists on a name clash.
  Result<Collection*> CreateCollection(const std::string& name,
                                       CollectionOptions opts = {});

  /// Returns the collection, or NotFound.
  Result<Collection*> GetCollection(const std::string& name);
  Result<const Collection*> GetCollection(const std::string& name) const;

  /// Installs an externally constructed collection under `name`
  /// (snapshot loading keeps the collection's original ns/options this
  /// way); AlreadyExists on a name clash.
  Status AdoptCollection(const std::string& name,
                         std::unique_ptr<Collection> coll);

  /// Returns the collection if present, else creates it.
  Collection* GetOrCreateCollection(const std::string& name,
                                    CollectionOptions opts = {});

  /// Drops a collection; NotFound if absent.
  Status DropCollection(const std::string& name);

  /// Names of all collections, sorted.
  std::vector<std::string> CollectionNames() const;

  const std::string& db_name() const { return db_name_; }

  // ---- Snapshot persistence (implemented in storage/snapshot.cc) ----

  /// Writes the whole store (every collection: documents, options,
  /// index metadata) as one binary snapshot file.
  Status Save(const std::string& path, const SnapshotOptions& opts) const;
  Status Save(const std::string& path) const;

  /// Reads a store snapshot written by `Save`. Collections come back
  /// with their original options, documents, ids and (rebuilt)
  /// secondary indexes; queries run unchanged against the result.
  static Result<std::unique_ptr<DocumentStore>> Open(
      const std::string& path, const SnapshotOptions& opts);
  static Result<std::unique_ptr<DocumentStore>> Open(const std::string& path);

 private:
  std::string db_name_;
  std::map<std::string, std::unique_ptr<Collection>> collections_;
};

}  // namespace dt::storage
