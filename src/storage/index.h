/// \file index.h
/// \brief Secondary indexes over a document collection.
///
/// An index maps the values found at one or more dotted field paths to
/// the ids of documents holding those values, in composite-key order
/// (a B-tree stand-in). A single-field index is the width-1 case of a
/// compound index: entries are `CompositeKey`s — one `IndexKey` per
/// component — ordered lexicographically, so an index on `(type, name)`
/// serves equality on `type`, equality on `type` plus a range or order
/// on `name`, and an ordered walk of `name` within each `type`. Per
/// entry byte accounting feeds `totalIndexSize` in collection stats,
/// matching the shape of the `db.entity.stats()` numbers in Table II of
/// the paper.
///
/// Each index also carries an `IndexStats` bundle (histogram +
/// distinct sketches, see stats.h) maintained incrementally by
/// `Insert`/`Remove`. Because the index object is the copy-on-write
/// granule of versioned storage, the stats a reader sees are always
/// consistent with the entries of the version its view pins.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "storage/docvalue.h"
#include "storage/index_key.h"
#include "storage/stats.h"

namespace dt::storage {

/// \brief Ordered secondary index on one or more field paths.
class SecondaryIndex {
 public:
  /// Per-entry overhead charged on top of key bytes: B-tree pointer,
  /// record id and page amortization (tuned so int-keyed indexes cost
  /// ~40 B/entry like the production numbers behind Tables I/II).
  static constexpr int64_t kEntryOverheadBytes = 33;

  /// `EstimateScan` counts exactly by walking up to this many entries;
  /// beyond it the histogram/sketch estimate answers instead. This is
  /// the constant that makes planning O(1) in hit count.
  static constexpr int64_t kExactCountThreshold = 128;

  explicit SecondaryIndex(std::string field_path)
      : SecondaryIndex(std::vector<std::string>{std::move(field_path)}) {}

  /// Compound constructor; `field_paths` must be non-empty.
  explicit SecondaryIndex(std::vector<std::string> field_paths);

  /// Canonical name: the single path for width 1, components joined by
  /// ',' for compound indexes (e.g. "type,award_winning").
  const std::string& field_path() const { return canonical_name_; }

  /// Component paths in index order.
  const std::vector<std::string>& field_paths() const { return field_paths_; }

  bool is_compound() const { return field_paths_.size() > 1; }
  int width() const { return static_cast<int>(field_paths_.size()); }

  /// Indexes `id` under the values at the field paths (null if absent).
  void Insert(DocId id, const DocValue& doc);

  /// Removes the entry for `id` given the document previously indexed.
  void Remove(DocId id, const DocValue& doc);

  /// Ids of documents whose *leading* component equals the key of
  /// `value` (for a width-1 index: whose key equals it).
  std::vector<DocId> Lookup(const DocValue& value) const;

  /// Ids with leading components in [lo, hi] inclusive, in key order.
  std::vector<DocId> Range(const DocValue& lo, const DocValue& hi) const;

  // ---- Ordered iteration (the executor's access paths) ----

  /// \brief Visits each distinct leading key component with its entry
  /// count, in key order. Powers index-only group-by-count aggregation:
  /// the query layer can answer CountByField without touching a single
  /// document.
  void VisitKeyCounts(
      const std::function<void(const IndexKey&, int64_t)>& visit) const;

  /// Number of entries whose leading component equals the key of
  /// `value` (exact; O(hits), not O(n)).
  int64_t CountEqual(const DocValue& value) const;

  /// Number of entries with leading components in [lo, hi] inclusive
  /// (exact; O(hits)).
  int64_t CountRange(const DocValue& lo, const DocValue& hi) const;

  /// \brief Pull-based ordered iterator over a bounds-delimited portion
  /// of the index — the storage half of the executor's `IxScanCursor`.
  /// Yields entries in key order (reversed when constructed
  /// descending); the returned key pointer stays valid while the
  /// index object is alive and unmutated. Indexes reached through a
  /// `CollectionView` are immutable version members, so a scan is
  /// valid for the lifetime of the view that produced it no matter
  /// what writers do concurrently.
  class Scan {
   public:
    /// Pulls the next entry; false at end of scan.
    bool Next(const CompositeKey** key, DocId* id);
    bool Next(DocId* id) {
      const CompositeKey* ignored;
      return Next(&ignored, id);
    }

    /// \brief Repositions the scan strictly after a prior position so
    /// it need not re-walk the consumed prefix: iteration restarts at
    /// the first entry (in scan direction) whose leading
    /// `prefix.width()` components compare at-or-after `prefix`, and
    /// entries tying `prefix` exactly with id <= `last_id` are
    /// suppressed — under the run contract (prefix-tying entries are
    /// consumed in ascending id order) those are exactly the entries
    /// already emitted. `prefix` must be a position this scan's bounds
    /// contain (resume tokens guarantee that: they pin the storage
    /// version — and thus the exact index state — they were minted
    /// against).
    void SeekAfter(const CompositeKey& prefix, DocId last_id);

   private:
    friend class SecondaryIndex;
    using Iter = std::multimap<CompositeKey, DocId>::const_iterator;
    Scan(const std::multimap<CompositeKey, DocId>* entries, Iter first,
         Iter last, bool descending, size_t key_width, CompositeKey lo_probe,
         CompositeKey hi_probe, bool empty);

    /// Next() minus the SeekAfter suppression filter.
    bool RawNext(const CompositeKey** key, DocId* id);

    const std::multimap<CompositeKey, DocId>* entries_;
    size_t key_width_;
    Iter it_, end_;
    std::multimap<CompositeKey, DocId>::const_reverse_iterator rit_, rend_;
    bool descending_;
    // The probe keys that delimited [first, last): SeekAfter clamps
    // its reposition into them, so a short resume prefix (fewer
    // components than the bounds) cannot escape the scanned range.
    CompositeKey lo_probe_, hi_probe_;
    bool empty_;
    // SeekAfter suppression: active until iteration leaves the
    // prefix-tying group that contained the prior position.
    bool skip_active_ = false;
    CompositeKey skip_prefix_;
    DocId skip_id_ = 0;
  };

  /// \brief Ordered scan over the entries whose first
  /// `eq_prefix.size()` components equal the keys of `eq_prefix`, with
  /// an optional inclusive [range_lo, range_hi] bound on the next
  /// component (either side may be null for half-open; an inverted
  /// range selects nothing). An empty prefix with no bounds scans the
  /// whole index. `descending` reverses the key order. The constrained
  /// component count must not exceed the index width.
  Scan ScanPrefix(const std::vector<DocValue>& eq_prefix,
                  const DocValue* range_lo, const DocValue* range_hi,
                  bool descending) const;

  /// Entry count `ScanPrefix` with the same constraints would visit
  /// (exact; O(hits) — planning uses `EstimateScan` instead).
  int64_t CountScan(const std::vector<DocValue>& eq_prefix,
                    const DocValue* range_lo, const DocValue* range_hi) const;

  /// \brief The planner's cardinality estimate for a `ScanPrefix` with
  /// the same constraints. Walks at most `kExactCountThreshold + 1`
  /// entries: selective scans come back exact (`exact == true`, and
  /// `entries_counted` says what the walk cost); anything larger is
  /// answered from the histogram/sketches, clamped to the walked lower
  /// bound and `entry_count()`. `force_exact` falls through to a full
  /// O(hits) count — the knob the plan-quality differential harness
  /// and the bench baseline use to reconstruct pre-statistics
  /// planning.
  struct ScanEstimate {
    double rows = 0;
    bool exact = true;
    int64_t entries_counted = 0;  ///< entries the bounded walk touched
  };
  ScanEstimate EstimateScan(const std::vector<DocValue>& eq_prefix,
                            const DocValue* range_lo, const DocValue* range_hi,
                            bool force_exact = false) const;

  /// The statistics bundle consistent with the current entries.
  const IndexStats& stats() const { return stats_; }

  /// Discards the incremental stats and rebuilds them from the entry
  /// map (deterministic).
  void RebuildStats();

  /// Snapshot adoption: replaces the stats wholesale with a persisted
  /// record so a save -> load -> save cycle is byte-identical.
  void RestoreStats(IndexStats stats) { stats_ = std::move(stats); }

  int64_t entry_count() const { return static_cast<int64_t>(entries_.size()); }

  /// Estimated on-disk size of the index.
  int64_t SizeBytes() const { return size_bytes_; }

 private:
  using EntryMap = std::multimap<CompositeKey, DocId>;

  /// Bounds for the ScanPrefix constraints: the [first, last) iterator
  /// range plus the probe keys that produced it (which `Scan::SeekAfter`
  /// clamps against). `empty` for an inverted range.
  struct ScanBounds {
    EntryMap::const_iterator first, last;
    CompositeKey lo_probe, hi_probe;
    bool empty = false;
  };
  ScanBounds BoundsFor(const std::vector<DocValue>& eq_prefix,
                       const DocValue* range_lo,
                       const DocValue* range_hi) const;

  std::vector<std::string> field_paths_;
  std::string canonical_name_;
  EntryMap entries_;
  int64_t size_bytes_ = 0;
  IndexStats stats_;
};

}  // namespace dt::storage
