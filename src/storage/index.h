/// \file index.h
/// \brief Secondary indexes over a document collection.
///
/// An index maps the value found at a dotted field path to the ids of
/// documents holding that value, in key order (a B-tree stand-in). Per
/// entry byte accounting feeds `totalIndexSize` in collection stats,
/// matching the shape of the `db.entity.stats()` numbers in Table II of
/// the paper.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "storage/docvalue.h"

namespace dt::storage {

/// Document id within a collection (monotonically assigned on insert).
using DocId = uint64_t;

/// \brief Totally ordered key extracted from a document field.
///
/// Ordering: nulls < bools < numbers (int and double compared as a
/// common numeric domain) < strings. Arrays/objects are not indexable;
/// documents lacking the field index under a null key.
class IndexKey {
 public:
  IndexKey() : tag_(Tag::kNull) {}

  static IndexKey FromValue(const DocValue& v);

  bool operator<(const IndexKey& other) const;
  bool operator==(const IndexKey& other) const;

  /// True for the null key: absent fields, explicit nulls and
  /// non-indexable values (arrays/objects) all collapse here.
  bool is_null() const { return tag_ == Tag::kNull; }

  /// Serialized footprint of the key itself (B-tree leaf estimate).
  int64_t SizeBytes() const;

  std::string ToString() const;

 private:
  enum class Tag : uint8_t { kNull = 0, kBool = 1, kNumber = 2, kString = 3 };

  Tag tag_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
};

/// \brief Ordered secondary index on one field path.
class SecondaryIndex {
 public:
  /// Per-entry overhead charged on top of key bytes: B-tree pointer,
  /// record id and page amortization (tuned so int-keyed indexes cost
  /// ~40 B/entry like the production numbers behind Tables I/II).
  static constexpr int64_t kEntryOverheadBytes = 33;

  explicit SecondaryIndex(std::string field_path)
      : field_path_(std::move(field_path)) {}

  const std::string& field_path() const { return field_path_; }

  /// Indexes `id` under the value at the field path (null if absent).
  void Insert(DocId id, const DocValue& doc);

  /// Removes the entry for `id` given the document previously indexed.
  void Remove(DocId id, const DocValue& doc);

  /// Ids of documents whose key equals the key of `value`.
  std::vector<DocId> Lookup(const DocValue& value) const;

  /// Ids with keys in [lo, hi] inclusive, in key order.
  std::vector<DocId> Range(const DocValue& lo, const DocValue& hi) const;

  // ---- Ordered iteration (the planner's access paths) ----

  /// Visitor over (key, id) entries; return false to stop the scan.
  using EntryVisitor = std::function<bool(const IndexKey&, DocId)>;

  /// \brief Point-lookup iteration: visits every entry whose key equals
  /// the key of `value`, in entry order, without materializing a vector.
  void VisitEqual(const DocValue& value, const EntryVisitor& visit) const;

  /// \brief Ordered range scan over keys in [lo, hi] inclusive. Entries
  /// arrive in key order (B-tree leaf order); `visit` returning false
  /// ends the scan early.
  void VisitRange(const DocValue& lo, const DocValue& hi,
                  const EntryVisitor& visit) const;

  /// \brief Visits each distinct key with its entry count, in key
  /// order. Powers index-only group-by-count aggregation: the query
  /// layer can answer CountByField without touching a single document.
  void VisitKeyCounts(
      const std::function<void(const IndexKey&, int64_t)>& visit) const;

  /// Number of entries whose key equals the key of `value` (planner
  /// selectivity estimate; O(hits), not O(n)).
  int64_t CountEqual(const DocValue& value) const;

  /// Number of entries with keys in [lo, hi] inclusive (O(hits)).
  int64_t CountRange(const DocValue& lo, const DocValue& hi) const;

  int64_t entry_count() const { return static_cast<int64_t>(entries_.size()); }

  /// Estimated on-disk size of the index.
  int64_t SizeBytes() const { return size_bytes_; }

 private:
  std::string field_path_;
  std::multimap<IndexKey, DocId> entries_;
  int64_t size_bytes_ = 0;
};

}  // namespace dt::storage
