/// \file index.h
/// \brief Secondary indexes over a document collection.
///
/// An index maps the values found at one or more dotted field paths to
/// the ids of documents holding those values, in composite-key order
/// (a B-tree stand-in). A single-field index is the width-1 case of a
/// compound index: entries are `CompositeKey`s — one `IndexKey` per
/// component — ordered lexicographically, so an index on `(type, name)`
/// serves equality on `type`, equality on `type` plus a range or order
/// on `name`, and an ordered walk of `name` within each `type`. Per
/// entry byte accounting feeds `totalIndexSize` in collection stats,
/// matching the shape of the `db.entity.stats()` numbers in Table II of
/// the paper.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "storage/docvalue.h"

namespace dt::storage {

/// Document id within a collection (monotonically assigned on insert).
using DocId = uint64_t;

/// \brief Totally ordered key extracted from a document field.
///
/// Ordering: nulls < bools < numbers (int and double compared as a
/// common numeric domain) < strings. Arrays/objects are not indexable;
/// documents lacking the field index under a null key.
class IndexKey {
 public:
  IndexKey() : tag_(Tag::kNull) {}

  static IndexKey FromValue(const DocValue& v);

  /// \brief Probe sentinel ordering after every real key. Never stored
  /// in an index; scan bound computation uses it to close a key-prefix
  /// range ("everything extending this prefix").
  static IndexKey Max();

  bool operator<(const IndexKey& other) const;
  bool operator==(const IndexKey& other) const;

  /// True for the null key: absent fields, explicit nulls and
  /// non-indexable values (arrays/objects) all collapse here.
  bool is_null() const { return tag_ == Tag::kNull; }

  /// The key as a plain `DocValue` (null/bool/double/string) such that
  /// `FromValue(ToDocValue()) == *this` — how resume tokens persist a
  /// scan position. The probe-only Max sentinel is never serialized
  /// and maps to null.
  DocValue ToDocValue() const;

  /// Serialized footprint of the key itself (B-tree leaf estimate).
  int64_t SizeBytes() const;

  std::string ToString() const;

 private:
  enum class Tag : uint8_t {
    kNull = 0,
    kBool = 1,
    kNumber = 2,
    kString = 3,
    kMax = 255  // probe-only sentinel, greater than every real key
  };

  Tag tag_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
};

/// \brief Lexicographically ordered tuple of `IndexKey`s — the entry
/// key of a (possibly compound) secondary index. Component comparison
/// reuses the `IndexKey` semantics, so scans and predicate evaluation
/// agree per component by construction.
class CompositeKey {
 public:
  CompositeKey() = default;
  explicit CompositeKey(std::vector<IndexKey> parts)
      : parts_(std::move(parts)) {}

  /// Key of `doc` under `paths`: one component per path, each extracted
  /// exactly as a single-field index would (missing/non-indexable
  /// collapse to the null key).
  static CompositeKey FromDoc(const std::vector<std::string>& paths,
                              const DocValue& doc);

  bool operator<(const CompositeKey& other) const {
    return parts_ < other.parts_;
  }
  bool operator==(const CompositeKey& other) const;

  /// Equality with `other` on the first `n` components, clamped to
  /// both widths — the run-grouping / resume-suppression comparison
  /// shared by `Scan::SeekAfter` and the executor's `IxScanCursor`.
  bool PrefixEquals(const CompositeKey& other, size_t n) const;

  const std::vector<IndexKey>& parts() const { return parts_; }
  const IndexKey& part(size_t i) const { return parts_[i]; }
  size_t width() const { return parts_.size(); }

  int64_t SizeBytes() const;

  /// `(Movie, Matilda)` for compound keys, `Movie` for width 1.
  std::string ToString() const;

 private:
  std::vector<IndexKey> parts_;
};

/// \brief Ordered secondary index on one or more field paths.
class SecondaryIndex {
 public:
  /// Per-entry overhead charged on top of key bytes: B-tree pointer,
  /// record id and page amortization (tuned so int-keyed indexes cost
  /// ~40 B/entry like the production numbers behind Tables I/II).
  static constexpr int64_t kEntryOverheadBytes = 33;

  explicit SecondaryIndex(std::string field_path)
      : SecondaryIndex(std::vector<std::string>{std::move(field_path)}) {}

  /// Compound constructor; `field_paths` must be non-empty.
  explicit SecondaryIndex(std::vector<std::string> field_paths);

  /// Canonical name: the single path for width 1, components joined by
  /// ',' for compound indexes (e.g. "type,award_winning").
  const std::string& field_path() const { return canonical_name_; }

  /// Component paths in index order.
  const std::vector<std::string>& field_paths() const { return field_paths_; }

  bool is_compound() const { return field_paths_.size() > 1; }
  int width() const { return static_cast<int>(field_paths_.size()); }

  /// Indexes `id` under the values at the field paths (null if absent).
  void Insert(DocId id, const DocValue& doc);

  /// Removes the entry for `id` given the document previously indexed.
  void Remove(DocId id, const DocValue& doc);

  /// Ids of documents whose *leading* component equals the key of
  /// `value` (for a width-1 index: whose key equals it).
  std::vector<DocId> Lookup(const DocValue& value) const;

  /// Ids with leading components in [lo, hi] inclusive, in key order.
  std::vector<DocId> Range(const DocValue& lo, const DocValue& hi) const;

  // ---- Ordered iteration (the executor's access paths) ----

  /// \brief Visits each distinct leading key component with its entry
  /// count, in key order. Powers index-only group-by-count aggregation:
  /// the query layer can answer CountByField without touching a single
  /// document.
  void VisitKeyCounts(
      const std::function<void(const IndexKey&, int64_t)>& visit) const;

  /// Number of entries whose leading component equals the key of
  /// `value` (planner selectivity estimate; O(hits), not O(n)).
  int64_t CountEqual(const DocValue& value) const;

  /// Number of entries with leading components in [lo, hi] inclusive
  /// (O(hits)).
  int64_t CountRange(const DocValue& lo, const DocValue& hi) const;

  /// \brief Pull-based ordered iterator over a bounds-delimited portion
  /// of the index — the storage half of the executor's `IxScanCursor`.
  /// Yields entries in key order (reversed when constructed
  /// descending); the returned key pointer stays valid while the
  /// index object is alive and unmutated. Indexes reached through a
  /// `CollectionView` are immutable version members, so a scan is
  /// valid for the lifetime of the view that produced it no matter
  /// what writers do concurrently.
  class Scan {
   public:
    /// Pulls the next entry; false at end of scan.
    bool Next(const CompositeKey** key, DocId* id);
    bool Next(DocId* id) {
      const CompositeKey* ignored;
      return Next(&ignored, id);
    }

    /// \brief Repositions the scan strictly after a prior position so
    /// it need not re-walk the consumed prefix: iteration restarts at
    /// the first entry (in scan direction) whose leading
    /// `prefix.width()` components compare at-or-after `prefix`, and
    /// entries tying `prefix` exactly with id <= `last_id` are
    /// suppressed — under the run contract (prefix-tying entries are
    /// consumed in ascending id order) those are exactly the entries
    /// already emitted. `prefix` must be a position this scan's bounds
    /// contain (resume tokens guarantee that: they pin the storage
    /// version — and thus the exact index state — they were minted
    /// against).
    void SeekAfter(const CompositeKey& prefix, DocId last_id);

   private:
    friend class SecondaryIndex;
    using Iter = std::multimap<CompositeKey, DocId>::const_iterator;
    Scan(const std::multimap<CompositeKey, DocId>* entries, Iter first,
         Iter last, bool descending, size_t key_width, CompositeKey lo_probe,
         CompositeKey hi_probe, bool empty);

    /// Next() minus the SeekAfter suppression filter.
    bool RawNext(const CompositeKey** key, DocId* id);

    const std::multimap<CompositeKey, DocId>* entries_;
    size_t key_width_;
    Iter it_, end_;
    std::multimap<CompositeKey, DocId>::const_reverse_iterator rit_, rend_;
    bool descending_;
    // The probe keys that delimited [first, last): SeekAfter clamps
    // its reposition into them, so a short resume prefix (fewer
    // components than the bounds) cannot escape the scanned range.
    CompositeKey lo_probe_, hi_probe_;
    bool empty_;
    // SeekAfter suppression: active until iteration leaves the
    // prefix-tying group that contained the prior position.
    bool skip_active_ = false;
    CompositeKey skip_prefix_;
    DocId skip_id_ = 0;
  };

  /// \brief Ordered scan over the entries whose first
  /// `eq_prefix.size()` components equal the keys of `eq_prefix`, with
  /// an optional inclusive [range_lo, range_hi] bound on the next
  /// component (either side may be null for half-open; an inverted
  /// range selects nothing). An empty prefix with no bounds scans the
  /// whole index. `descending` reverses the key order. The constrained
  /// component count must not exceed the index width.
  Scan ScanPrefix(const std::vector<DocValue>& eq_prefix,
                  const DocValue* range_lo, const DocValue* range_hi,
                  bool descending) const;

  /// Entry count `ScanPrefix` with the same constraints would visit
  /// (planner selectivity estimate; O(hits)).
  int64_t CountScan(const std::vector<DocValue>& eq_prefix,
                    const DocValue* range_lo, const DocValue* range_hi) const;

  int64_t entry_count() const { return static_cast<int64_t>(entries_.size()); }

  /// Estimated on-disk size of the index.
  int64_t SizeBytes() const { return size_bytes_; }

 private:
  using EntryMap = std::multimap<CompositeKey, DocId>;

  /// Bounds for the ScanPrefix constraints: the [first, last) iterator
  /// range plus the probe keys that produced it (which `Scan::SeekAfter`
  /// clamps against). `empty` for an inverted range.
  struct ScanBounds {
    EntryMap::const_iterator first, last;
    CompositeKey lo_probe, hi_probe;
    bool empty = false;
  };
  ScanBounds BoundsFor(const std::vector<DocValue>& eq_prefix,
                       const DocValue* range_lo,
                       const DocValue* range_hi) const;

  std::vector<std::string> field_paths_;
  std::string canonical_name_;
  EntryMap entries_;
  int64_t size_bytes_ = 0;
};

}  // namespace dt::storage
