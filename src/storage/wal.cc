#include "storage/wal.h"

#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/hash.h"
#include "storage/codec.h"
#include "storage/snapshot.h"

namespace dt::storage {

namespace crashpoint {

std::atomic<int64_t> g_crash_after_bytes{-1};

ssize_t CrashAwareWrite(int fd, const void* buf, size_t n) {
  int64_t budget = g_crash_after_bytes.load(std::memory_order_relaxed);
  if (budget < 0) return ::write(fd, buf, n);
  // Burn the budget atomically so concurrent writers cannot both claim
  // the crashing write.
  int64_t before = g_crash_after_bytes.fetch_sub(static_cast<int64_t>(n),
                                                 std::memory_order_relaxed);
  if (before >= static_cast<int64_t>(n)) return ::write(fd, buf, n);
  // This write crosses the crash point: land the partial prefix (a
  // torn record for recovery to truncate), then die like kill -9.
  size_t partial = before > 0 ? static_cast<size_t>(before) : 0;
  if (partial > 0) {
    size_t done = 0;
    while (done < partial) {
      ssize_t w = ::write(fd, static_cast<const char*>(buf) + done,
                          partial - done);
      if (w < 0) {
        if (errno == EINTR) continue;
        break;
      }
      done += static_cast<size_t>(w);
    }
  }
  raise(SIGKILL);
  // Unreachable in practice; keep the contract if SIGKILL is blocked
  // by a debugger.
  errno = EIO;
  return -1;
}

}  // namespace crashpoint

const char* DurabilityName(Durability d) {
  switch (d) {
    case Durability::kNone:
      return "none";
    case Durability::kAsync:
      return "async";
    case Durability::kGroup:
      return "group";
    case Durability::kStrict:
      return "strict";
  }
  return "unknown";
}

uint64_t WalChecksum(std::string_view payload) {
  return HashCombine(Fnv1a64("DTL1v1"), Fnv1a64(payload));
}

// ---- record codec ------------------------------------------------------

Status EncodeWalRecord(const WalRecord& rec, std::string* payload) {
  BinaryWriter w(payload);
  w.PutU8(static_cast<uint8_t>(rec.op));
  w.PutString(rec.collection);
  w.PutU64(rec.incarnation);
  w.PutU64(rec.epoch);
  switch (rec.op) {
    case WalRecord::Op::kInsert:
    case WalRecord::Op::kUpdate:
      w.PutU64(rec.id);
      DT_RETURN_NOT_OK(EncodeDocValue(rec.doc, payload));
      break;
    case WalRecord::Op::kRemove:
      w.PutU64(rec.id);
      break;
    case WalRecord::Op::kCreateIndex:
      w.PutU32(static_cast<uint32_t>(rec.index_paths.size()));
      for (const std::string& p : rec.index_paths) w.PutString(p);
      break;
    case WalRecord::Op::kCreateCollection:
      w.PutString(rec.ns);
      w.PutU32(rec.num_shards);
      w.PutU64(rec.initial_extent_size_bytes);
      w.PutU64(rec.max_extent_size_bytes);
      break;
    case WalRecord::Op::kDropCollection:
      break;
  }
  return Status::OK();
}

Status DecodeWalRecord(std::string_view payload, WalRecord* out) {
  *out = WalRecord{};
  BinaryReader r(payload);
  uint8_t op = 0;
  DT_RETURN_NOT_OK(r.ReadU8(&op));
  if (op < static_cast<uint8_t>(WalRecord::Op::kInsert) ||
      op > static_cast<uint8_t>(WalRecord::Op::kDropCollection)) {
    return Status::Corruption("unknown WAL op " + std::to_string(op));
  }
  out->op = static_cast<WalRecord::Op>(op);
  DT_RETURN_NOT_OK(r.ReadString(&out->collection));
  DT_RETURN_NOT_OK(r.ReadU64(&out->incarnation));
  DT_RETURN_NOT_OK(r.ReadU64(&out->epoch));
  switch (out->op) {
    case WalRecord::Op::kInsert:
    case WalRecord::Op::kUpdate: {
      uint64_t id = 0;
      DT_RETURN_NOT_OK(r.ReadU64(&id));
      if (id == 0 || id >= (1ull << 63)) {
        return Status::Corruption("implausible document id " +
                                  std::to_string(id));
      }
      out->id = static_cast<DocId>(id);
      DT_RETURN_NOT_OK(DecodeDocValue(&r, &out->doc));
      break;
    }
    case WalRecord::Op::kRemove: {
      uint64_t id = 0;
      DT_RETURN_NOT_OK(r.ReadU64(&id));
      if (id == 0 || id >= (1ull << 63)) {
        return Status::Corruption("implausible document id " +
                                  std::to_string(id));
      }
      out->id = static_cast<DocId>(id);
      break;
    }
    case WalRecord::Op::kCreateIndex: {
      uint32_t count = 0;
      DT_RETURN_NOT_OK(r.ReadU32(&count));
      // Each path costs >= 4 bytes (its length prefix).
      if (count == 0 || count > r.remaining() / 4) {
        return Status::Corruption("implausible index component count " +
                                  std::to_string(count));
      }
      out->index_paths.reserve(count);
      for (uint32_t i = 0; i < count; ++i) {
        std::string p;
        DT_RETURN_NOT_OK(r.ReadString(&p));
        out->index_paths.push_back(std::move(p));
      }
      break;
    }
    case WalRecord::Op::kCreateCollection: {
      DT_RETURN_NOT_OK(r.ReadString(&out->ns));
      DT_RETURN_NOT_OK(r.ReadU32(&out->num_shards));
      DT_RETURN_NOT_OK(r.ReadU64(&out->initial_extent_size_bytes));
      DT_RETURN_NOT_OK(r.ReadU64(&out->max_extent_size_bytes));
      // Same plausibility bounds as the snapshot section reader.
      if (out->num_shards == 0 || out->num_shards > (1u << 20)) {
        return Status::Corruption("implausible shard count " +
                                  std::to_string(out->num_shards));
      }
      if (out->initial_extent_size_bytes >= (1ull << 63) ||
          out->max_extent_size_bytes >= (1ull << 63)) {
        return Status::Corruption("implausible extent sizes");
      }
      break;
    }
    case WalRecord::Op::kDropCollection:
      break;
  }
  if (r.remaining() != 0) {
    return Status::Corruption(std::to_string(r.remaining()) +
                              " trailing bytes in WAL record");
  }
  return Status::OK();
}

void AppendWalFrame(std::string_view payload, std::string* out) {
  BinaryWriter w(out);
  w.PutU32(static_cast<uint32_t>(payload.size()));
  w.PutU64(WalChecksum(payload));
  out->append(payload.data(), payload.size());
}

void AppendWalFileHeader(std::string* out) {
  BinaryWriter w(out);
  w.PutU32(kWalMagic);
  w.PutU16(kWalVersion);
  w.PutU16(0);  // flags
}

// ---- segment reading ---------------------------------------------------

Status ReadWalSegment(std::string_view file, std::vector<WalRecord>* out,
                      WalReadStats* stats) {
  *stats = WalReadStats{};
  BinaryReader r(file);
  uint32_t magic = 0;
  uint16_t version = 0, flags = 0;
  // A header that does not parse at all means this is not a WAL
  // segment — that is corruption, not a torn tail (the header is
  // written and synced before the first record can exist).
  Status hdr = r.ReadU32(&magic);
  if (hdr.ok()) hdr = r.ReadU16(&version);
  if (hdr.ok()) hdr = r.ReadU16(&flags);
  if (!hdr.ok() || magic != kWalMagic) {
    return Status::Corruption("not a WAL segment (bad header)");
  }
  if (version == 0 || version > kWalVersion) {
    return Status::Corruption("unsupported WAL segment version " +
                              std::to_string(version));
  }
  stats->valid_bytes = kWalFileHeaderSize;
  while (r.remaining() > 0) {
    size_t record_start = r.offset();
    uint32_t len = 0;
    uint64_t checksum = 0;
    std::string_view payload;
    bool torn = r.remaining() < kWalRecordHeaderSize;
    if (!torn) {
      (void)r.ReadU32(&len);
      (void)r.ReadU64(&checksum);
      torn = len > kMaxWalRecordSize || len > r.remaining();
    }
    if (!torn) {
      (void)r.ReadSpan(len, &payload);
      torn = WalChecksum(payload) != checksum;
    }
    WalRecord rec;
    if (!torn) torn = !DecodeWalRecord(payload, &rec).ok();
    if (torn) {
      // Torn tail: everything from this record on is the residue of a
      // write the crash interrupted. Keep the valid prefix.
      stats->torn_bytes = file.size() - record_start;
      break;
    }
    out->push_back(std::move(rec));
    ++stats->records;
    stats->valid_bytes = r.offset();
  }
  return Status::OK();
}

Status ReadWalSegmentFile(const std::string& path,
                          std::vector<WalRecord>* out, WalReadStats* stats) {
  std::string buf;
  DT_RETURN_NOT_OK(ReadFileToString(path, &buf));
  return ReadWalSegment(buf, out, stats);
}

// ---- WalWriter ---------------------------------------------------------

WalWriter::WalWriter(std::string path, int fd, Durability mode)
    : path_(std::move(path)), fd_(fd), mode_(mode) {}

WalWriter::~WalWriter() {
  if (fd_ >= 0) {
    // Final durability point for kAsync; the other modes are already
    // synced through their Append contract.
    (void)::fsync(fd_);
    ::close(fd_);
  }
}

Result<std::unique_ptr<WalWriter>> WalWriter::Create(const std::string& path,
                                                     Durability mode) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IOError("cannot open WAL segment " + path + ": " +
                           std::string(strerror(errno)));
  }
  std::string header;
  AppendWalFileHeader(&header);
  size_t done = 0;
  while (done < header.size()) {
    ssize_t n = crashpoint::CrashAwareWrite(fd, header.data() + done,
                                            header.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status::IOError("cannot write WAL header to " + path);
    }
    done += static_cast<size_t>(n);
  }
  // The header must be durable before any record: recovery treats a
  // bad header as corruption, not a torn tail.
  if (::fsync(fd) != 0) {
    ::close(fd);
    return Status::IOError("cannot sync WAL header to " + path);
  }
  auto writer =
      std::unique_ptr<WalWriter>(new WalWriter(path, fd, mode));
  writer->bytes_.store(header.size(), std::memory_order_relaxed);
  return writer;
}

Status WalWriter::Append(std::string_view payload) {
  if (payload.size() > kMaxWalRecordSize) {
    return Status::OutOfRange("WAL record of " +
                              std::to_string(payload.size()) +
                              " bytes exceeds the frame limit");
  }
  std::string frame;
  frame.reserve(kWalRecordHeaderSize + payload.size());
  AppendWalFrame(payload, &frame);

  std::unique_lock<std::mutex> lock(mu_);
  if (!health_.ok()) return health_;
  size_t done = 0;
  while (done < frame.size()) {
    ssize_t n = crashpoint::CrashAwareWrite(fd_, frame.data() + done,
                                            frame.size() - done);
    if (n < 0) {
      if (errno == EINTR) continue;
      health_ = Status::IOError("WAL append to " + path_ + " failed: " +
                                std::string(strerror(errno)));
      cv_.notify_all();
      return health_;
    }
    done += static_cast<size_t>(n);
  }
  const uint64_t my_seq = ++written_seq_;
  ++stats_.appends;
  stats_.bytes += frame.size();
  bytes_.fetch_add(frame.size(), std::memory_order_relaxed);

  switch (mode_) {
    case Durability::kNone:
    case Durability::kAsync:
      return Status::OK();
    case Durability::kStrict: {
      if (::fsync(fd_) != 0) {
        health_ = Status::IOError("WAL fsync of " + path_ + " failed");
        cv_.notify_all();
        return health_;
      }
      ++stats_.syncs;
      synced_seq_ = written_seq_;
      return Status::OK();
    }
    case Durability::kGroup:
      break;
  }

  // Leader-based group commit: whoever finds no sync in flight syncs
  // on behalf of every append written so far; the rest wait on the
  // condvar until a completed sync covers their sequence number.
  while (synced_seq_ < my_seq) {
    if (!health_.ok()) return health_;
    if (!sync_in_flight_) {
      sync_in_flight_ = true;
      const uint64_t target = written_seq_;
      lock.unlock();
      int rc = ::fsync(fd_);
      lock.lock();
      sync_in_flight_ = false;
      if (rc != 0) {
        health_ = Status::IOError("WAL fsync of " + path_ + " failed");
        cv_.notify_all();
        return health_;
      }
      ++stats_.syncs;
      if (target - synced_seq_ > 1) ++stats_.group_batches;
      synced_seq_ = std::max(synced_seq_, target);
      cv_.notify_all();
    } else {
      cv_.wait(lock);
    }
  }
  return Status::OK();
}

Status WalWriter::Sync() {
  std::unique_lock<std::mutex> lock(mu_);
  if (!health_.ok()) return health_;
  const uint64_t target = written_seq_;
  lock.unlock();
  int rc = ::fsync(fd_);
  lock.lock();
  if (rc != 0) {
    health_ = Status::IOError("WAL fsync of " + path_ + " failed");
    cv_.notify_all();
    return health_;
  }
  ++stats_.syncs;
  synced_seq_ = std::max(synced_seq_, target);
  cv_.notify_all();
  return Status::OK();
}

WalWriterStats WalWriter::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dt::storage
