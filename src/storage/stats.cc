#include "storage/stats.h"

#include <algorithm>
#include <cmath>

namespace dt::storage {

namespace {

/// The sketch hash domain is [0, 2^64); the estimator normalizes the
/// k-th smallest hash against it.
constexpr double kHashDomain = 18446744073709551616.0;  // 2^64

bool NumericKey(const IndexKey& k, double* out) {
  DocValue v = k.ToDocValue();
  if (v.type() != DocType::kDouble) return false;
  *out = v.double_value();
  return true;
}

Status DecodeIndexKey(BinaryReader* r, IndexKey* out) {
  DocValue v;
  DT_RETURN_NOT_OK(DecodeDocValue(r, &v));
  *out = IndexKey::FromValue(v);
  return Status::OK();
}

}  // namespace

// ---------------------------------------------------------------------------
// DistinctSketch

void DistinctSketch::Add(uint64_t hash) {
  auto it = kmin_.find(hash);
  if (it != kmin_.end()) {
    ++it->second;
    return;
  }
  if (kmin_.size() < k_) {
    kmin_.emplace(hash, 1);
    return;
  }
  auto last = std::prev(kmin_.end());
  if (hash >= last->first) {
    saturated_ = true;  // evicted on arrival
    return;
  }
  kmin_.erase(last);
  kmin_.emplace(hash, 1);
  saturated_ = true;
}

void DistinctSketch::Remove(uint64_t hash) {
  auto it = kmin_.find(hash);
  if (it == kmin_.end()) return;  // evicted while saturated: unobservable
  if (--it->second <= 0) kmin_.erase(it);
}

void DistinctSketch::Merge(const DistinctSketch& other) {
  saturated_ = saturated_ || other.saturated_;
  for (const auto& [hash, count] : other.kmin_) kmin_[hash] += count;
  while (kmin_.size() > k_) {
    kmin_.erase(std::prev(kmin_.end()));
    saturated_ = true;
  }
}

double DistinctSketch::Estimate() const {
  if (!saturated_ || kmin_.size() < k_) {
    return static_cast<double>(kmin_.size());
  }
  // k distinct hashes occupy a fraction max/2^64 of the hash domain.
  const uint64_t kth = std::prev(kmin_.end())->first;
  const double fraction = static_cast<double>(kth) / kHashDomain;
  if (fraction <= 0) return static_cast<double>(kmin_.size());
  return static_cast<double>(k_ - 1) / fraction;
}

void DistinctSketch::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU32(static_cast<uint32_t>(k_));
  w.PutU8(saturated_ ? 1 : 0);
  w.PutU32(static_cast<uint32_t>(kmin_.size()));
  for (const auto& [hash, count] : kmin_) {
    w.PutU64(hash);
    w.PutI64(count);
  }
}

Status DistinctSketch::DecodeFrom(BinaryReader* r, DistinctSketch* out) {
  uint32_t k = 0, n = 0;
  uint8_t saturated = 0;
  DT_RETURN_NOT_OK(r->ReadU32(&k));
  DT_RETURN_NOT_OK(r->ReadU8(&saturated));
  DT_RETURN_NOT_OK(r->ReadU32(&n));
  DistinctSketch s(k);
  s.saturated_ = saturated != 0;
  for (uint32_t i = 0; i < n; ++i) {
    uint64_t hash = 0;
    int64_t count = 0;
    DT_RETURN_NOT_OK(r->ReadU64(&hash));
    DT_RETURN_NOT_OK(r->ReadI64(&count));
    if (count <= 0 || n > k) {
      return Status::Corruption("malformed distinct sketch entry");
    }
    s.kmin_.emplace(hash, count);
  }
  *out = std::move(s);
  return Status::OK();
}

// ---------------------------------------------------------------------------
// KeyHistogram

KeyHistogram::Builder::Builder(int64_t total_rows, int target_buckets) {
  depth_ = std::max<int64_t>(1, (total_rows + target_buckets - 1) /
                                    std::max(1, target_buckets));
}

void KeyHistogram::Builder::Add(const IndexKey& key, int64_t rows) {
  total_rows_ += rows;
  ++total_distinct_;
  // A run larger than the target depth gets a bucket of its own (heavy
  // hitter: distinct == 1 makes EstimateEq exact at build time), so
  // first close any open bucket it would otherwise distort.
  const bool heavy = rows >= depth_;
  if (heavy && !buckets_.empty() && buckets_.back().rows < depth_ &&
      buckets_.back().distinct > 0) {
    // Close the open bucket by starting a new one for the heavy key.
    buckets_.push_back(HistogramBucket{});
  }
  if (buckets_.empty() || buckets_.back().rows >= depth_) {
    buckets_.push_back(HistogramBucket{});
  }
  HistogramBucket& b = buckets_.back();
  b.upper = key;
  b.rows += rows;
  b.distinct += 1;
}

KeyHistogram KeyHistogram::Builder::Finish() {
  KeyHistogram h;
  h.buckets_ = std::move(buckets_);
  h.total_rows_ = total_rows_;
  h.total_distinct_ = total_distinct_;
  return h;
}

size_t KeyHistogram::BucketFor(const IndexKey& key) const {
  size_t lo = 0, hi = buckets_.size();
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (buckets_[mid].upper < key) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

double KeyHistogram::EstimateEq(const IndexKey& key) const {
  if (buckets_.empty()) return 0;
  size_t i = BucketFor(key);
  if (i >= buckets_.size()) {
    // Past every build-time key: assume global average depth.
    return static_cast<double>(total_rows_) /
           std::max<int64_t>(1, total_distinct_);
  }
  const HistogramBucket& b = buckets_[i];
  return static_cast<double>(b.rows) / std::max<int64_t>(1, b.distinct);
}

double KeyHistogram::EstimateRange(const IndexKey* lo,
                                   const IndexKey* hi) const {
  if (buckets_.empty()) return 0;
  double est = 0;
  for (size_t i = 0; i < buckets_.size(); ++i) {
    const HistogramBucket& b = buckets_[i];
    // Bucket i covers (lower_i, upper_i] where lower_i is bucket i-1's
    // upper bound (open below for the first bucket).
    const IndexKey* bucket_lo = i > 0 ? &buckets_[i - 1].upper : nullptr;
    const bool lo_cuts =
        lo != nullptr && (bucket_lo == nullptr || *bucket_lo < *lo);
    const bool hi_cuts = hi != nullptr && *hi < b.upper;
    if (lo != nullptr && b.upper < *lo) continue;     // wholly below
    if (hi != nullptr && bucket_lo != nullptr && *hi < *bucket_lo) break;
    if (!lo_cuts && !hi_cuts) {
      est += static_cast<double>(b.rows);
      continue;
    }
    // Partial overlap: interpolate numerically when possible, else
    // charge half the bucket.
    double blo = 0, bhi = 0, vlo = 0, vhi = 0;
    const bool numeric = bucket_lo != nullptr &&
                         NumericKey(*bucket_lo, &blo) &&
                         NumericKey(b.upper, &bhi) && bhi > blo &&
                         (!lo_cuts || NumericKey(*lo, &vlo)) &&
                         (!hi_cuts || NumericKey(*hi, &vhi));
    if (numeric) {
      const double from = lo_cuts ? std::max(blo, std::min(vlo, bhi)) : blo;
      const double to = hi_cuts ? std::max(blo, std::min(vhi, bhi)) : bhi;
      est += static_cast<double>(b.rows) * std::max(0.0, to - from) /
             (bhi - blo);
    } else {
      est += static_cast<double>(b.rows) * 0.5;
    }
  }
  return std::min(est, static_cast<double>(total_rows_));
}

void KeyHistogram::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutI64(total_rows_);
  w.PutI64(total_distinct_);
  w.PutU32(static_cast<uint32_t>(buckets_.size()));
  for (const HistogramBucket& b : buckets_) {
    (void)EncodeDocValue(b.upper.ToDocValue(), out);
    BinaryWriter wb(out);
    wb.PutI64(b.rows);
    wb.PutI64(b.distinct);
  }
}

Status KeyHistogram::DecodeFrom(BinaryReader* r, KeyHistogram* out) {
  KeyHistogram h;
  uint32_t n = 0;
  DT_RETURN_NOT_OK(r->ReadI64(&h.total_rows_));
  DT_RETURN_NOT_OK(r->ReadI64(&h.total_distinct_));
  DT_RETURN_NOT_OK(r->ReadU32(&n));
  h.buckets_.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    HistogramBucket b;
    DT_RETURN_NOT_OK(DecodeIndexKey(r, &b.upper));
    DT_RETURN_NOT_OK(r->ReadI64(&b.rows));
    DT_RETURN_NOT_OK(r->ReadI64(&b.distinct));
    if (b.rows < 0 || b.distinct < 0) {
      return Status::Corruption("malformed histogram bucket");
    }
    h.buckets_.push_back(std::move(b));
  }
  *out = std::move(h);
  return Status::OK();
}

bool KeyHistogram::operator==(const KeyHistogram& other) const {
  if (total_rows_ != other.total_rows_ ||
      total_distinct_ != other.total_distinct_ ||
      buckets_.size() != other.buckets_.size()) {
    return false;
  }
  for (size_t i = 0; i < buckets_.size(); ++i) {
    if (!(buckets_[i].upper == other.buckets_[i].upper) ||
        buckets_[i].rows != other.buckets_[i].rows ||
        buckets_[i].distinct != other.buckets_[i].distinct) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// IndexStats

IndexStats::IndexStats(int width) : width_(width) {
  sketches_.assign(static_cast<size_t>(width), DistinctSketch());
}

void IndexStats::OnInsert(const CompositeKey& key) {
  ++total_rows_;
  ++mutations_since_build_;
  for (size_t i = 0; i < sketches_.size() && i < key.width(); ++i) {
    sketches_[i].Add(key.part(i).Hash64());
  }
}

void IndexStats::OnRemove(const CompositeKey& key) {
  --total_rows_;
  ++mutations_since_build_;
  for (size_t i = 0; i < sketches_.size() && i < key.width(); ++i) {
    sketches_[i].Remove(key.part(i).Hash64());
  }
}

IndexStats::Rebuilder::Rebuilder(IndexStats* stats, int64_t row_count)
    : stats_(stats), rows_(row_count), hist_(row_count) {
  sketches_.assign(static_cast<size_t>(stats->width_), DistinctSketch());
}

void IndexStats::Rebuilder::Add(const CompositeKey& key) {
  for (size_t i = 0; i < sketches_.size() && i < key.width(); ++i) {
    sketches_[i].Add(key.part(i).Hash64());
  }
  const IndexKey& lead = key.part(0);
  if (have_run_ && run_key_ == lead) {
    ++run_rows_;
    return;
  }
  if (have_run_) hist_.Add(run_key_, run_rows_);
  have_run_ = true;
  run_key_ = lead;
  run_rows_ = 1;
}

void IndexStats::Rebuilder::Finish() {
  if (have_run_) hist_.Add(run_key_, run_rows_);
  stats_->hist_ = hist_.Finish();
  stats_->sketches_ = std::move(sketches_);
  stats_->total_rows_ = rows_;
  stats_->rows_at_build_ = rows_;
  stats_->mutations_since_build_ = 0;
}

double IndexStats::EstimateDistinct(size_t component) const {
  if (component >= sketches_.size()) return 0;
  return sketches_[component].Estimate();
}

double IndexStats::EstimateScan(size_t eq_width, const IndexKey& lead,
                                const IndexKey* range_lo,
                                const IndexKey* range_hi) const {
  if (total_rows_ <= 0) return 0;
  // Scale histogram figures (frozen at build time) by the drift since.
  const double drift =
      hist_.total_rows() > 0
          ? static_cast<double>(total_rows_) /
                static_cast<double>(hist_.total_rows())
          : 1.0;
  double est;
  if (eq_width == 0) {
    est = hist_.empty() ? static_cast<double>(total_rows_)
                        : hist_.EstimateRange(range_lo, range_hi) * drift;
  } else {
    est = hist_.empty() ? static_cast<double>(total_rows_)
                        : hist_.EstimateEq(lead) * drift;
    // Deeper equality components: independence, 1/distinct each.
    for (size_t i = 1; i < eq_width; ++i) {
      est /= std::max(1.0, EstimateDistinct(i));
    }
    // A range on the component after the equality prefix has no
    // conditioned histogram; classic fixed selectivity.
    if (range_lo != nullptr || range_hi != nullptr) est /= 3.0;
  }
  return std::clamp(est, 0.0, static_cast<double>(total_rows_));
}

void IndexStats::EncodeTo(std::string* out) const {
  BinaryWriter w(out);
  w.PutU32(static_cast<uint32_t>(width_));
  w.PutI64(total_rows_);
  w.PutI64(rows_at_build_);
  w.PutI64(mutations_since_build_);
  hist_.EncodeTo(out);
  BinaryWriter w2(out);
  w2.PutU32(static_cast<uint32_t>(sketches_.size()));
  for (const DistinctSketch& s : sketches_) s.EncodeTo(out);
}

Status IndexStats::DecodeFrom(BinaryReader* r, IndexStats* out) {
  IndexStats s;
  uint32_t width = 0, nsketch = 0;
  DT_RETURN_NOT_OK(r->ReadU32(&width));
  DT_RETURN_NOT_OK(r->ReadI64(&s.total_rows_));
  DT_RETURN_NOT_OK(r->ReadI64(&s.rows_at_build_));
  DT_RETURN_NOT_OK(r->ReadI64(&s.mutations_since_build_));
  DT_RETURN_NOT_OK(KeyHistogram::DecodeFrom(r, &s.hist_));
  DT_RETURN_NOT_OK(r->ReadU32(&nsketch));
  if (width > 64 || nsketch != width) {
    return Status::Corruption("malformed index stats record");
  }
  s.width_ = static_cast<int>(width);
  s.sketches_.reserve(nsketch);
  for (uint32_t i = 0; i < nsketch; ++i) {
    DistinctSketch sk;
    DT_RETURN_NOT_OK(DistinctSketch::DecodeFrom(r, &sk));
    s.sketches_.push_back(std::move(sk));
  }
  *out = std::move(s);
  return Status::OK();
}

bool IndexStats::operator==(const IndexStats& other) const {
  return width_ == other.width_ && total_rows_ == other.total_rows_ &&
         rows_at_build_ == other.rows_at_build_ &&
         mutations_since_build_ == other.mutations_since_build_ &&
         hist_ == other.hist_ && sketches_ == other.sketches_;
}

}  // namespace dt::storage
