/// \file wal.h
/// \brief Write-ahead log: length-prefixed, checksummed mutation
/// records with group-commit batched fsyncs.
///
/// The WAL is the durability path between incremental checkpoints
/// (see storage/recovery.h): every collection mutation appends one
/// record, so a crash loses at most the torn tail of the last write
/// instead of everything since the last snapshot.
///
/// Segment file layout (little-endian, the "DTB1"/"DTW1" framing
/// discipline):
///
///   u32 magic "DTL1" | u16 version | u16 flags (0)
///   per record:
///     u32 payload length
///     u64 checksum = HashCombine(Fnv1a64("DTL1v1"), Fnv1a64(payload))
///     payload bytes
///
/// Record payload (via storage/codec.h BinaryWriter):
///
///   u8 op | string collection | u64 incarnation | u64 epoch | op args
///     kInsert/kUpdate: u64 doc id + encoded DocValue
///     kRemove:         u64 doc id
///     kCreateIndex:    u32 count + count path strings
///     kCreateCollection: ns string + u32 num_shards +
///                        u64 initial/max extent bytes
///     kDropCollection: (none)
///
/// Reading never trusts the input: every length is bounds-checked, a
/// record whose frame or payload does not validate ends the read as a
/// *torn tail* — the valid prefix is returned and the junk suffix
/// reported in `WalReadStats`, never an error and never a crash. (A
/// bad file header, by contrast, is kCorruption: the file is not a
/// WAL segment at all.)
///
/// Durability of an append is governed by `Durability`:
///
///   kNone    WAL disabled entirely (the manager never opens one)
///   kAsync   write() per append, fsync only on Sync()/Close()
///   kGroup   every append is fsynced before returning, but one
///            leader thread syncs for every append written at the
///            moment it enters the kernel — N concurrent writers pay
///            ~1 fsync, not N (leader-based group commit)
///   kStrict  fsync per append while holding the writer mutex
///
/// Note kill -9 (the crash-fuzz harness) never loses write()n bytes —
/// the page cache belongs to the kernel — so fsync placement is a
/// power-loss guarantee; the torn-tail codepath is what process
/// crashes exercise.

#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include <sys/types.h>

#include "common/status.h"
#include "storage/docvalue.h"
#include "storage/index.h"

namespace dt::storage {

/// When does an acknowledged mutation survive power loss?
enum class Durability : uint8_t {
  kNone = 0,    ///< no WAL: only checkpoints/snapshots persist
  kAsync = 1,   ///< after the kernel flushes (no fsync per append)
  kGroup = 2,   ///< on return (group-commit batched fsync)
  kStrict = 3,  ///< on return (one fsync per append)
};

const char* DurabilityName(Durability d);

/// First bytes of a WAL segment: "DTL1" read as a little-endian u32.
inline constexpr uint32_t kWalMagic = 0x314C5444u;
inline constexpr uint16_t kWalVersion = 1;
/// u32 magic + u16 version + u16 flags.
inline constexpr size_t kWalFileHeaderSize = 8;
/// u32 payload length + u64 checksum.
inline constexpr size_t kWalRecordHeaderSize = 12;
/// Payloads past this cannot be legitimate (one document tops out at
/// the codec's u32 framing); treating bigger claims as torn garbage
/// bounds what a crafted length can make the reader buffer.
inline constexpr uint32_t kMaxWalRecordSize = 1u << 30;

/// Salted FNV over the payload — same discipline as the wire frame's
/// "DTW1v1" checksum, under the log's own salt so a WAL record can
/// never masquerade as a wire frame or vice versa.
uint64_t WalChecksum(std::string_view payload);

/// One logged mutation. `epoch` is the collection's post-mutation
/// epoch: replay applies a record iff it is the next epoch of the
/// named (collection, incarnation) lineage, which makes replay
/// idempotent against whatever prefix a checkpoint already captured.
struct WalRecord {
  enum class Op : uint8_t {
    kInsert = 1,
    kUpdate = 2,
    kRemove = 3,
    kCreateIndex = 4,
    kCreateCollection = 5,
    kDropCollection = 6,
  };

  Op op = Op::kInsert;
  std::string collection;   ///< registry name in the DocumentStore
  uint64_t incarnation = 0; ///< lineage id of the mutated collection
  uint64_t epoch = 0;       ///< post-mutation epoch (0 for create/drop)
  DocId id = 0;             ///< insert/update/remove
  DocValue doc;             ///< insert/update payload
  std::vector<std::string> index_paths;  ///< create_index components
  // create_collection arguments (the persisted CollectionOptions
  // subset, mirroring the snapshot section):
  std::string ns;
  uint32_t num_shards = 0;
  uint64_t initial_extent_size_bytes = 0;
  uint64_t max_extent_size_bytes = 0;
};

/// Serializes `rec` into a record payload (no frame).
Status EncodeWalRecord(const WalRecord& rec, std::string* payload);

/// Inverse of `EncodeWalRecord`; bounds-checked, trailing bytes are
/// kCorruption.
Status DecodeWalRecord(std::string_view payload, WalRecord* out);

/// Appends the framed form (length + checksum + payload) to `out`.
void AppendWalFrame(std::string_view payload, std::string* out);

/// Appends the segment file header to `out`.
void AppendWalFileHeader(std::string* out);

struct WalReadStats {
  uint64_t records = 0;     ///< valid records decoded
  uint64_t torn_bytes = 0;  ///< junk suffix dropped (0 = clean tail)
  uint64_t valid_bytes = 0; ///< file prefix holding header + records
};

/// Decodes every valid record of a segment image. A frame or payload
/// that does not validate ends the read: the records before it are
/// returned and the suffix is counted as torn. Only a bad *file
/// header* is an error.
Status ReadWalSegment(std::string_view file, std::vector<WalRecord>* out,
                      WalReadStats* stats);
Status ReadWalSegmentFile(const std::string& path,
                          std::vector<WalRecord>* out, WalReadStats* stats);

struct WalWriterStats {
  uint64_t appends = 0;
  uint64_t bytes = 0;          ///< file bytes including the header
  uint64_t syncs = 0;          ///< fsync calls issued
  uint64_t group_batches = 0;  ///< syncs that covered > 1 append
};

/// \brief Single segment file appender. Thread-safe; `Append` returns
/// with the record durable per the segment's durability mode.
class WalWriter {
 public:
  /// Creates (truncating) the segment at `path`, writes and syncs the
  /// file header.
  static Result<std::unique_ptr<WalWriter>> Create(const std::string& path,
                                                   Durability mode);
  ~WalWriter();
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  /// Frames and appends one record payload. On return the record is
  /// durable per the mode (see Durability). An I/O failure makes the
  /// writer sticky-unhealthy: every later Append fails with the same
  /// status, so one lost record can never be silently followed by
  /// acknowledged ones.
  Status Append(std::string_view payload);

  /// Forces everything appended so far to disk (any mode).
  Status Sync();

  const std::string& path() const { return path_; }
  uint64_t bytes_written() const {
    return bytes_.load(std::memory_order_relaxed);
  }
  WalWriterStats stats() const;

 private:
  WalWriter(std::string path, int fd, Durability mode);

  std::string path_;
  int fd_;
  Durability mode_;
  std::atomic<uint64_t> bytes_{0};

  mutable std::mutex mu_;
  std::condition_variable cv_;
  Status health_;            // sticky first I/O failure
  uint64_t written_seq_ = 0; // appends that hit write()
  uint64_t synced_seq_ = 0;  // appends covered by a completed fsync
  bool sync_in_flight_ = false;
  WalWriterStats stats_;
};

namespace crashpoint {

/// Crash-point hook for the recovery fuzz harness: when >= 0, every
/// byte the WAL writer and the atomic snapshot writer push through
/// write() decrements this budget, and the write that would cross
/// zero is cut short at the boundary before the process raises
/// SIGKILL — a deterministic torn write at an arbitrary byte offset.
/// Negative (the default) disables the hook.
extern std::atomic<int64_t> g_crash_after_bytes;

/// write() wrapper honoring `g_crash_after_bytes` (loops on EINTR is
/// the caller's job, exactly as with raw write()).
ssize_t CrashAwareWrite(int fd, const void* buf, size_t n);

}  // namespace crashpoint

}  // namespace dt::storage
