#include "storage/snapshot.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cctype>
#include <cerrno>
#include <cstdio>
#include <fstream>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "storage/codec.h"
#include "storage/wal.h"

namespace dt::storage {

namespace {

constexpr uint8_t kKindStore = 1;
constexpr uint8_t kKindCollection = 2;

// ---- index metadata records -------------------------------------------
//
// A single-field index persists as its raw field path — byte-identical
// to the pre-compound snapshot format, so old snapshots load unchanged
// and snapshots holding only single-field indexes keep their old bytes.
// A compound index persists as a versioned record whose leading control
// byte can never begin a valid field path (Collection::CreateIndex
// rejects control characters and ',' in paths). One caveat: a
// pre-compound snapshot whose index path contains one of those
// now-reserved bytes (creatable through the old unvalidated
// CreateIndex, never produced by this codebase's pipelines or tests)
// is rejected at load as kCorruption rather than silently risking a
// canonical-name collision.

constexpr char kIndexRecordMagic = '\x01';    // compound record marker
constexpr char kIndexRecordKind = 'C';        // compound
constexpr char kIndexRecordVersion = '\x01';  // record format version
constexpr char kIndexPathSeparator = '\x1f';  // joins component paths

std::string EncodeIndexRecord(const std::vector<std::string>& paths) {
  if (paths.size() == 1) return paths[0];
  std::string out;
  out.push_back(kIndexRecordMagic);
  out.push_back(kIndexRecordKind);
  out.push_back(kIndexRecordVersion);
  for (size_t i = 0; i < paths.size(); ++i) {
    if (i > 0) out.push_back(kIndexPathSeparator);
    out += paths[i];
  }
  return out;
}

Status DecodeIndexRecord(const std::string& record,
                         std::vector<std::string>* paths) {
  paths->clear();
  if (record.empty()) {
    return Status::Corruption("empty index metadata record");
  }
  if (record[0] != kIndexRecordMagic) {
    paths->push_back(record);  // pre-compound format: the path itself
    return Status::OK();
  }
  if (record.size() < 4 || record[1] != kIndexRecordKind ||
      record[2] != kIndexRecordVersion) {
    return Status::Corruption("unrecognized index metadata record version");
  }
  size_t at = 3;
  while (true) {
    size_t sep = record.find(kIndexPathSeparator, at);
    paths->push_back(record.substr(at, sep == std::string::npos
                                           ? std::string::npos
                                           : sep - at));
    if (sep == std::string::npos) break;
    at = sep + 1;
  }
  for (const std::string& p : *paths) {
    if (p.empty()) {
      return Status::Corruption("empty component in compound index record");
    }
  }
  if (paths->size() < 2) {
    return Status::Corruption("compound index record with one component");
  }
  return Status::OK();
}

/// Directory component of `path` ("" when it has none — the cwd).
std::string DirOf(const std::string& path) {
  size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// True when `name` matches the `AtomicWriteFile` temp pattern
/// `<base>.tmp.<pid>.<n>`; fills the embedded pid.
bool ParseTempFilePid(const std::string& name, pid_t* pid) {
  size_t at = name.rfind(".tmp.");
  if (at == std::string::npos) return false;
  size_t p = at + 5;
  uint64_t v = 0;
  size_t digits = 0;
  while (p < name.size() &&
         std::isdigit(static_cast<unsigned char>(name[p]))) {
    v = v * 10 + static_cast<uint64_t>(name[p] - '0');
    if (v > (1ull << 31)) return false;
    ++p;
    ++digits;
  }
  if (digits == 0 || p >= name.size() || name[p] != '.') return false;
  ++p;
  if (p >= name.size()) return false;
  while (p < name.size()) {
    if (!std::isdigit(static_cast<unsigned char>(name[p]))) return false;
    ++p;
  }
  *pid = static_cast<pid_t>(v);
  return true;
}

// ---- chunking ---------------------------------------------------------

struct ChunkSpec {
  size_t begin = 0;  // first doc index
  size_t end = 0;    // one past last doc index
};

std::vector<ChunkSpec> MakeChunks(size_t num_docs, int docs_per_chunk) {
  size_t per = docs_per_chunk > 0 ? static_cast<size_t>(docs_per_chunk) : 512;
  std::vector<ChunkSpec> chunks;
  for (size_t at = 0; at < num_docs; at += per) {
    chunks.push_back({at, std::min(num_docs, at + per)});
  }
  return chunks;
}

/// Runs `body(i)` for i in [0, n) on the pool when it has workers,
/// inline otherwise (a 1-thread pool spawns nothing, but routing the
/// serial case around ParallelFor keeps the hot loop allocation-free).
Status ForEachChunk(ThreadPool* pool, size_t n,
                    const std::function<Status(size_t)>& body) {
  if (pool != nullptr && pool->num_threads() > 1) {
    return pool->ParallelFor(0, n, body);
  }
  for (size_t i = 0; i < n; ++i) DT_RETURN_NOT_OK(body(i));
  return Status::OK();
}

// ---- collection section -----------------------------------------------

Status WriteCollectionSection(const CollectionView& coll, ThreadPool* pool,
                              int docs_per_chunk, std::string* out) {
  BinaryWriter w(out);
  w.PutString(coll.ns());
  const CollectionOptions& copts = coll.options();
  w.PutU32(static_cast<uint32_t>(copts.num_shards));
  w.PutU64(static_cast<uint64_t>(copts.initial_extent_size_bytes));
  w.PutU64(static_cast<uint64_t>(copts.max_extent_size_bytes));
  w.PutU64(coll.next_id());
  // v2 epoch lineage: the incarnation id and mutation epoch ride the
  // snapshot so a reloaded collection keeps its lineage (and re-saving
  // an untouched load stays byte-identical), while resume tokens
  // minted before the save can never be accepted after a restart —
  // the loaded collection publishes under a fresh random version id.
  w.PutU64(coll.incarnation());
  w.PutU64(coll.mutation_epoch());
  std::vector<std::vector<std::string>> index_specs = coll.IndexSpecs();
  w.PutU32(static_cast<uint32_t>(index_specs.size()));
  for (const auto& spec : index_specs) w.PutString(EncodeIndexRecord(spec));
  // v3 per-index statistics: one full-state record per index in
  // Indexes() order ("_id" first, then creation order). The load path
  // adopts these after rebuilding the indexes — the writer's stats
  // reflect its whole mutation history, which an id-order reinsertion
  // cannot reproduce — so save -> load -> save stays byte-identical.
  std::vector<const SecondaryIndex*> indexes = coll.Indexes();
  w.PutU32(static_cast<uint32_t>(indexes.size()));
  for (const SecondaryIndex* idx : indexes) {
    std::string blob;
    idx->stats().EncodeTo(&blob);
    w.PutString(blob);
  }

  // Snapshot (id, doc) in id order; chunk boundaries depend only on
  // the order and docs_per_chunk, so output bytes are identical for
  // every thread count.
  std::vector<std::pair<DocId, const DocValue*>> docs;
  docs.reserve(static_cast<size_t>(coll.count()));
  coll.ForEach(
      [&docs](DocId id, const DocValue& doc) { docs.emplace_back(id, &doc); });
  w.PutU64(static_cast<uint64_t>(docs.size()));

  std::vector<ChunkSpec> chunks = MakeChunks(docs.size(), docs_per_chunk);
  std::vector<std::string> payloads(chunks.size());
  DT_RETURN_NOT_OK(ForEachChunk(pool, chunks.size(), [&](size_t c) {
    std::string& buf = payloads[c];
    BinaryWriter cw(&buf);
    for (size_t i = chunks[c].begin; i < chunks[c].end; ++i) {
      cw.PutU64(docs[i].first);
      DT_RETURN_NOT_OK(EncodeDocValue(*docs[i].second, &buf));
    }
    return Status::OK();
  }));

  w.PutU32(static_cast<uint32_t>(chunks.size()));
  for (size_t c = 0; c < chunks.size(); ++c) {
    w.PutU32(static_cast<uint32_t>(chunks[c].end - chunks[c].begin));
    w.PutU64(payloads[c].size());
  }
  // Free each payload as it lands so peak memory stays near one copy
  // of the snapshot, not two.
  for (std::string& p : payloads) {
    out->append(p);
    std::string().swap(p);
  }
  return Status::OK();
}

/// Reads one collection section at the reader's cursor into a fresh
/// collection constructed from the persisted ns/options. Secondary
/// indexes are rebuilt from the persisted field paths. `codec_version`
/// selects the section layout: v2 sections carry epoch lineage
/// (incarnation + mutation epoch) after next_id, v1 sections do not
/// (the loaded collection keeps its fresh random incarnation).
Result<std::unique_ptr<Collection>> ReadCollectionSection(
    BinaryReader* r, ThreadPool* pool, uint16_t codec_version) {
  std::string ns;
  DT_RETURN_NOT_OK(r->ReadString(&ns));
  CollectionOptions copts;
  uint32_t num_shards = 0;
  uint64_t init_extent = 0, max_extent = 0, next_id = 0, doc_count = 0;
  uint64_t incarnation = 0, epoch = 0;
  DT_RETURN_NOT_OK(r->ReadU32(&num_shards));
  DT_RETURN_NOT_OK(r->ReadU64(&init_extent));
  DT_RETURN_NOT_OK(r->ReadU64(&max_extent));
  DT_RETURN_NOT_OK(r->ReadU64(&next_id));
  if (codec_version >= 2) {
    DT_RETURN_NOT_OK(r->ReadU64(&incarnation));
    DT_RETURN_NOT_OK(r->ReadU64(&epoch));
  }
  if (num_shards == 0 || num_shards > (1u << 20)) {
    return Status::Corruption("implausible shard count " +
                              std::to_string(num_shards));
  }
  // Extent sizes are written from positive int64s; a u64 that would
  // cast negative can only come from a bad file.
  if (init_extent >= (1ull << 63) || max_extent >= (1ull << 63)) {
    return Status::Corruption("implausible extent sizes");
  }
  copts.num_shards = static_cast<int>(num_shards);
  copts.initial_extent_size_bytes = static_cast<int64_t>(init_extent);
  copts.max_extent_size_bytes = static_cast<int64_t>(max_extent);

  uint32_t index_count = 0;
  DT_RETURN_NOT_OK(r->ReadU32(&index_count));
  // Each path costs >= 4 bytes (its length prefix) in the file.
  if (index_count > r->remaining() / 4) {
    return Status::Corruption("index count " + std::to_string(index_count) +
                              " exceeds remaining bytes");
  }
  std::vector<std::vector<std::string>> index_specs;
  // Clamped reserve: growth past it is paid only as entries really read.
  index_specs.reserve(std::min<uint32_t>(index_count, 1u << 10));
  for (uint32_t i = 0; i < index_count; ++i) {
    std::string record;
    DT_RETURN_NOT_OK(r->ReadString(&record));
    std::vector<std::string> paths;
    DT_RETURN_NOT_OK(DecodeIndexRecord(record, &paths));
    index_specs.push_back(std::move(paths));
  }

  // v3 per-index statistics records; adopted after the index rebuild
  // below. Older sections leave the vector empty and keep the stats
  // the restore inserts build incrementally (deterministic, just not
  // the saving writer's history).
  std::vector<IndexStats> index_stats;
  if (codec_version >= 3) {
    uint32_t stats_count = 0;
    DT_RETURN_NOT_OK(r->ReadU32(&stats_count));
    if (stats_count != index_count + 1) {
      return Status::Corruption("stats record count " +
                                std::to_string(stats_count) + " for " +
                                std::to_string(index_count + 1) + " indexes");
    }
    index_stats.reserve(stats_count);
    for (uint32_t i = 0; i < stats_count; ++i) {
      std::string blob;
      DT_RETURN_NOT_OK(r->ReadString(&blob));
      BinaryReader sr(blob);
      IndexStats s;
      DT_RETURN_NOT_OK(IndexStats::DecodeFrom(&sr, &s));
      if (sr.remaining() != 0) {
        return Status::Corruption("trailing bytes in index stats record");
      }
      index_stats.push_back(std::move(s));
    }
  }

  DT_RETURN_NOT_OK(r->ReadU64(&doc_count));

  uint32_t chunk_count = 0;
  DT_RETURN_NOT_OK(r->ReadU32(&chunk_count));
  // Each directory entry costs 12 bytes in the file, so this bounds the
  // dir/decoded pre-allocations below to ~2x the input size.
  if (chunk_count > r->remaining() / 12) {
    return Status::Corruption("chunk count " + std::to_string(chunk_count) +
                              " exceeds remaining bytes");
  }
  struct ChunkDir {
    uint32_t ndocs = 0;
    uint64_t nbytes = 0;
    size_t offset = 0;  // into the payload region
  };
  std::vector<ChunkDir> dir(chunk_count);
  uint64_t total_docs = 0, total_bytes = 0;
  for (auto& d : dir) {
    DT_RETURN_NOT_OK(r->ReadU32(&d.ndocs));
    DT_RETURN_NOT_OK(r->ReadU64(&d.nbytes));
    d.offset = static_cast<size_t>(total_bytes);
    // Each document costs >= 9 bytes (u64 id + type tag); a directory
    // entry claiming more docs than its bytes allow would otherwise
    // drive a huge reserve() below.
    if (d.nbytes > r->remaining() ||
        static_cast<uint64_t>(d.ndocs) * 9 > d.nbytes) {
      return Status::Corruption("implausible chunk directory entry (" +
                                std::to_string(d.ndocs) + " docs, " +
                                std::to_string(d.nbytes) + " bytes)");
    }
    total_docs += d.ndocs;
    total_bytes += d.nbytes;
    // The second clause catches u64 wraparound from crafted sizes.
    if (total_bytes > r->remaining() || total_bytes < d.nbytes) {
      return Status::Corruption(
          "chunk payloads (" + std::to_string(total_bytes) +
          " bytes) exceed remaining " + std::to_string(r->remaining()));
    }
  }
  if (total_docs != doc_count) {
    return Status::Corruption("chunk directory docs " +
                              std::to_string(total_docs) +
                              " != declared count " + std::to_string(doc_count));
  }
  // An id space this large can only come from a bad file; accepting it
  // would let post-load Inserts wrap the id counter to 0.
  if (next_id >= (1ull << 63)) {
    return Status::Corruption("implausible next_id " +
                              std::to_string(next_id));
  }

  std::string_view payload_region;
  DT_RETURN_NOT_OK(r->ReadSpan(static_cast<size_t>(total_bytes),
                               &payload_region));

  // Decode chunks in parallel into per-chunk slots, then restore
  // serially in id order (RestoreDocument mutates shared state).
  std::vector<std::vector<std::pair<DocId, DocValue>>> decoded(chunk_count);
  DT_RETURN_NOT_OK(ForEachChunk(pool, chunk_count, [&](size_t c) -> Status {
    const ChunkDir& d = dir[c];
    BinaryReader cr(payload_region.substr(d.offset,
                                          static_cast<size_t>(d.nbytes)));
    auto& slot = decoded[c];
    // Clamped like the codec's container reserves: a crafted directory
    // could otherwise force a many-times-file-size allocation up front.
    slot.reserve(std::min<uint32_t>(d.ndocs, 1u << 12));
    for (uint32_t i = 0; i < d.ndocs; ++i) {
      uint64_t id = 0;
      DT_RETURN_NOT_OK(cr.ReadU64(&id));
      // Ids this large can only come from a bad file; `id + 1` in the
      // collection's next_id maintenance must never wrap.
      if (id == 0 || id >= (1ull << 63)) {
        return Status::Corruption("implausible document id " +
                                  std::to_string(id));
      }
      DocValue doc;
      DT_RETURN_NOT_OK(DecodeDocValue(&cr, &doc));
      slot.emplace_back(static_cast<DocId>(id), std::move(doc));
    }
    if (cr.remaining() != 0) {
      return Status::Corruption("chunk " + std::to_string(c) + " has " +
                                std::to_string(cr.remaining()) +
                                " trailing bytes");
    }
    return Status::OK();
  }));

  auto coll = std::make_unique<Collection>(ns, copts);
  for (auto& chunk : decoded) {
    for (auto& [id, doc] : chunk) {
      // Duplicate or zero ids surface as AlreadyExists/InvalidArgument
      // from the collection; to a snapshot reader they mean the file
      // is bad, so re-code them as the documented kCorruption.
      Status st = coll->RestoreDocument(id, std::move(doc));
      if (!st.ok()) {
        return Status::Corruption("invalid snapshot: " + st.ToString());
      }
    }
  }
  coll->RestoreNextId(static_cast<DocId>(next_id));
  for (const std::vector<std::string>& spec : index_specs) {
    Status st = coll->CreateIndex(spec);
    if (!st.ok()) {
      return Status::Corruption("invalid snapshot index metadata: " +
                                st.ToString());
    }
  }
  if (!index_stats.empty()) {
    Status st = coll->RestoreIndexStats(std::move(index_stats));
    if (!st.ok()) {
      return Status::Corruption("invalid snapshot index stats: " +
                                st.ToString());
    }
  }
  // Adopt the persisted lineage last: restore/CreateIndex above bump
  // the mutation epoch, and the loaded collection must report exactly
  // the persisted (incarnation, epoch) so save -> load -> save is
  // byte-identical. The version id stays this process's fresh random
  // draw, which is what rejects pre-save resume tokens after a load.
  if (codec_version >= 2) coll->RestoreLineage(incarnation, epoch);
  return coll;
}

Status WriteHeader(uint8_t kind, std::string* out) {
  AppendCodecHeader(out);
  BinaryWriter w(out);
  w.PutU8(kind);
  return Status::OK();
}

Status ReadHeader(BinaryReader* r, uint8_t expected_kind,
                  uint16_t* codec_version) {
  DT_RETURN_NOT_OK(ReadCodecHeader(r, codec_version));
  uint8_t kind = 0;
  DT_RETURN_NOT_OK(r->ReadU8(&kind));
  if (kind != expected_kind) {
    return Status::Corruption(
        "snapshot kind " + std::to_string(kind) + " (wanted " +
        std::to_string(expected_kind) +
        "): store and collection snapshots are distinct files");
  }
  return Status::OK();
}

ThreadPool* MakePool(const SnapshotOptions& opts,
                     std::unique_ptr<ThreadPool>* holder) {
  // A caller-provided pool carries the work (the facade shares one
  // pool across planner and snapshot calls); only without one does the
  // num_threads knob spin up a transient pool.
  if (opts.pool != nullptr) {
    return opts.pool->num_threads() > 1 ? opts.pool : nullptr;
  }
  int n = ResolveNumThreads(opts.num_threads);
  if (n <= 1) return nullptr;
  *holder = std::make_unique<ThreadPool>(n);
  return holder->get();
}

}  // namespace

// ---- file utilities ----------------------------------------------------

Status ReadFileToString(const std::string& path, std::string* out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) return Status::IOError("cannot open " + path + " for reading");
  std::streamsize size = in.tellg();
  if (size < 0) return Status::IOError("cannot stat " + path);
  out->resize(static_cast<size_t>(size));
  in.seekg(0);
  if (size > 0 && !in.read(&(*out)[0], size)) {
    return Status::IOError("short read from " + path);
  }
  return Status::OK();
}

Status AtomicWriteFile(const std::string& path, std::string_view data) {
  // Unique temp file + fsync + rename: a crash mid-write leaves any
  // previous file at `path` intact, the data is on disk before the
  // rename can replace it, and concurrent saves to the same path
  // cannot interleave into one temp file (last rename wins whole).
  static std::atomic<uint64_t> counter{0};
  const std::string tmp = path + ".tmp." + std::to_string(::getpid()) + "." +
                          std::to_string(counter.fetch_add(1));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) return Status::IOError("cannot open " + tmp + " for writing");
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = crashpoint::CrashAwareWrite(fd, data.data() + written,
                                            data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;  // signal mid-write is not a failure
      ::close(fd);
      std::remove(tmp.c_str());
      return Status::IOError("short write to " + tmp);
    }
    written += static_cast<size_t>(n);
  }
  bool synced = ::fsync(fd) == 0;
  if (::close(fd) != 0) synced = false;  // close must run even if fsync failed
  if (!synced) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot sync " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status::IOError("cannot rename " + tmp + " to " + path);
  }
  // Make the rename itself durable (best-effort: some filesystems do
  // not support fsync on directories).
  std::string dir = DirOf(path);
  if (dir.empty()) dir = ".";
  int dfd = ::open(dir.c_str(), O_RDONLY);
  if (dfd >= 0) {
    (void)::fsync(dfd);
    ::close(dfd);
  }
  return Status::OK();
}

int SweepStaleTempFiles(const std::string& dir) {
  DIR* d = ::opendir(dir.empty() ? "." : dir.c_str());
  if (d == nullptr) return 0;
  std::vector<std::string> victims;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    pid_t pid = 0;
    if (!ParseTempFilePid(name, &pid)) continue;
    // kill(pid, 0) probes liveness without signaling; EPERM still
    // means "alive, just not ours". Only a provably dead owner makes
    // the temp file garbage — a live pid may be a saver whose rename
    // has not landed yet (including this very process).
    if (::kill(pid, 0) == 0 || errno == EPERM) continue;
    victims.push_back(dir.empty() ? name : dir + "/" + name);
  }
  ::closedir(d);
  int removed = 0;
  for (const std::string& path : victims) {
    if (std::remove(path.c_str()) == 0) ++removed;
  }
  return removed;
}

// ---- whole-store snapshots --------------------------------------------

Status EncodeStoreSnapshot(const DocumentStore& store,
                           const SnapshotOptions& opts, std::string* out) {
  std::unique_ptr<ThreadPool> pool_holder;
  ThreadPool* pool = MakePool(opts, &pool_holder);
  DT_RETURN_NOT_OK(WriteHeader(kKindStore, out));
  BinaryWriter w(out);
  w.PutString(store.db_name());
  std::vector<std::string> names = store.CollectionNames();
  w.PutU32(static_cast<uint32_t>(names.size()));
  // CollectionNames() is sorted, so the layout is deterministic.
  for (const std::string& name : names) {
    const Collection* coll = store.GetCollection(name).ValueOrDie();
    w.PutString(name);
    // Snapshot through a view: the write walks one immutable version,
    // consistent even if a writer publishes mid-save.
    DT_RETURN_NOT_OK(WriteCollectionSection(coll->GetView(), pool,
                                            opts.docs_per_chunk, out));
  }
  return Status::OK();
}

Result<std::unique_ptr<DocumentStore>> DecodeStoreSnapshot(
    std::string_view buf, const SnapshotOptions& opts) {
  std::unique_ptr<ThreadPool> pool_holder;
  ThreadPool* pool = MakePool(opts, &pool_holder);
  BinaryReader r(buf);
  uint16_t codec_version = 0;
  DT_RETURN_NOT_OK(ReadHeader(&r, kKindStore, &codec_version));
  std::string db_name;
  DT_RETURN_NOT_OK(r.ReadString(&db_name));
  uint32_t count = 0;
  DT_RETURN_NOT_OK(r.ReadU32(&count));
  if (count > r.remaining()) {
    return Status::Corruption("collection count " + std::to_string(count) +
                              " exceeds remaining bytes");
  }
  auto store = std::make_unique<DocumentStore>(db_name);
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    DT_RETURN_NOT_OK(r.ReadString(&name));
    DT_ASSIGN_OR_RETURN(std::unique_ptr<Collection> coll,
                        ReadCollectionSection(&r, pool, codec_version));
    Status st = store->AdoptCollection(name, std::move(coll));
    if (!st.ok()) {
      // A duplicate collection name means the file is bad.
      return Status::Corruption("invalid snapshot: " + st.ToString());
    }
  }
  if (r.remaining() != 0) {
    return Status::Corruption(std::to_string(r.remaining()) +
                              " trailing bytes after last collection");
  }
  return store;
}

Status SaveSnapshot(const DocumentStore& store, const std::string& path,
                    const SnapshotOptions& opts) {
  SweepStaleTempFiles(DirOf(path));
  std::string buf;
  DT_RETURN_NOT_OK(EncodeStoreSnapshot(store, opts, &buf));
  return AtomicWriteFile(path, buf);
}

Result<std::unique_ptr<DocumentStore>> LoadSnapshot(
    const std::string& path, const SnapshotOptions& opts) {
  SweepStaleTempFiles(DirOf(path));
  std::string buf;
  DT_RETURN_NOT_OK(ReadFileToString(path, &buf));
  return DecodeStoreSnapshot(buf, opts);
}

// ---- single-collection snapshots --------------------------------------

Status EncodeCollectionSnapshot(const CollectionView& view,
                                const SnapshotOptions& opts,
                                std::string* out) {
  std::unique_ptr<ThreadPool> pool_holder;
  ThreadPool* pool = MakePool(opts, &pool_holder);
  DT_RETURN_NOT_OK(WriteHeader(kKindCollection, out));
  return WriteCollectionSection(view, pool, opts.docs_per_chunk, out);
}

Status SaveSnapshot(const Collection& coll, const std::string& path,
                    const SnapshotOptions& opts) {
  SweepStaleTempFiles(DirOf(path));
  std::string buf;
  DT_RETURN_NOT_OK(EncodeCollectionSnapshot(coll.GetView(), opts, &buf));
  return AtomicWriteFile(path, buf);
}

Result<std::unique_ptr<Collection>> LoadCollectionSnapshot(
    const std::string& path, const SnapshotOptions& opts) {
  SweepStaleTempFiles(DirOf(path));
  std::unique_ptr<ThreadPool> pool_holder;
  ThreadPool* pool = MakePool(opts, &pool_holder);
  std::string buf;
  DT_RETURN_NOT_OK(ReadFileToString(path, &buf));
  BinaryReader r(buf);
  uint16_t codec_version = 0;
  DT_RETURN_NOT_OK(ReadHeader(&r, kKindCollection, &codec_version));
  DT_ASSIGN_OR_RETURN(std::unique_ptr<Collection> coll,
                      ReadCollectionSection(&r, pool, codec_version));
  if (r.remaining() != 0) {
    return Status::Corruption(std::to_string(r.remaining()) +
                              " trailing bytes after collection");
  }
  return coll;
}

// ---- member wrappers ---------------------------------------------------

Status DocumentStore::Save(const std::string& path,
                           const SnapshotOptions& opts) const {
  return SaveSnapshot(*this, path, opts);
}
Status DocumentStore::Save(const std::string& path) const {
  return SaveSnapshot(*this, path, SnapshotOptions{});
}

Result<std::unique_ptr<DocumentStore>> DocumentStore::Open(
    const std::string& path, const SnapshotOptions& opts) {
  return LoadSnapshot(path, opts);
}
Result<std::unique_ptr<DocumentStore>> DocumentStore::Open(
    const std::string& path) {
  return LoadSnapshot(path, SnapshotOptions{});
}

Status Collection::Save(const std::string& path,
                        const SnapshotOptions& opts) const {
  return SaveSnapshot(*this, path, opts);
}
Status Collection::Save(const std::string& path) const {
  return SaveSnapshot(*this, path, SnapshotOptions{});
}

Result<std::unique_ptr<Collection>> Collection::Open(
    const std::string& path, const SnapshotOptions& opts) {
  return LoadCollectionSnapshot(path, opts);
}
Result<std::unique_ptr<Collection>> Collection::Open(const std::string& path) {
  return LoadCollectionSnapshot(path, SnapshotOptions{});
}

}  // namespace dt::storage
