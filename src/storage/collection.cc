#include "storage/collection.h"

#include <algorithm>

#include "common/hash.h"
#include "common/strutil.h"

namespace dt::storage {

void ExtentChain::Append(int64_t bytes) {
  if (extents_.empty() ||
      extents_.back().used + bytes > extents_.back().capacity) {
    int64_t cap = extents_.empty()
                      ? opts_.initial_extent_size_bytes
                      : std::min(opts_.max_extent_size_bytes,
                                 extents_.back().capacity * 2);
    cap = std::max(cap, bytes);  // oversized documents get a fitted extent
    extents_.push_back(Extent{cap, 0});
    storage_size_ += cap;
    if (epoch_counter_ != nullptr) last_alloc_epoch_ = ++*epoch_counter_;
  }
  extents_.back().used += bytes;
}

Collection::Collection(std::string ns, CollectionOptions opts)
    : ns_(std::move(ns)), opts_(opts) {
  shards_.reserve(opts_.num_shards);
  for (int i = 0; i < opts_.num_shards; ++i) {
    shards_.emplace_back(opts_);
    shards_.back().set_epoch_counter(&alloc_epoch_);
  }
  // Default _id index, as in the production store behind Table I
  // (nindexes == 1 for a collection with no user indexes).
  indexes_.push_back(std::make_unique<SecondaryIndex>("_id"));
}

int Collection::ShardOf(DocId id) const {
  return static_cast<int>(Mix64(id) % static_cast<uint64_t>(opts_.num_shards));
}

void Collection::InsertUnchecked(DocId id, DocValue doc) {
  if (doc.is_object() && doc.Find("_id") == nullptr) {
    doc.Add("_id", DocValue::Int(static_cast<int64_t>(id)));
  }
  int64_t bytes = doc.SerializedSize();
  shards_[ShardOf(id)].Append(bytes);
  data_size_ += bytes;
  for (auto& idx : indexes_) idx->Insert(id, doc);
  docs_.emplace(id, std::move(doc));
  if (id >= next_id_) next_id_ = id + 1;
  ++mutation_epoch_;
}

DocId Collection::Insert(DocValue doc) {
  DocId id = next_id_;  // never live and never 0
  InsertUnchecked(id, std::move(doc));
  return id;
}

Status Collection::RestoreDocument(DocId id, DocValue doc) {
  if (id == 0) {
    return Status::InvalidArgument("document id 0 is not assignable");
  }
  if (docs_.count(id) != 0) {
    return Status::AlreadyExists("document id " + std::to_string(id) +
                                 " already live in " + ns_);
  }
  InsertUnchecked(id, std::move(doc));
  return Status::OK();
}

const DocValue* Collection::Get(DocId id) const {
  auto it = docs_.find(id);
  return it == docs_.end() ? nullptr : &it->second;
}

Status Collection::Update(DocId id, DocValue doc) {
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return Status::NotFound("no document with id " + std::to_string(id) +
                            " in " + ns_);
  }
  if (doc.is_object() && doc.Find("_id") == nullptr) {
    doc.Add("_id", DocValue::Int(static_cast<int64_t>(id)));
  }
  for (auto& idx : indexes_) {
    idx->Remove(id, it->second);
    idx->Insert(id, doc);
  }
  data_size_ += doc.SerializedSize() - it->second.SerializedSize();
  // In-place update: extent accounting models append-only allocation,
  // so updated bytes stay attributed to the original extent.
  it->second = std::move(doc);
  ++mutation_epoch_;
  return Status::OK();
}

Status Collection::Remove(DocId id) {
  auto it = docs_.find(id);
  if (it == docs_.end()) {
    return Status::NotFound("no document with id " + std::to_string(id) +
                            " in " + ns_);
  }
  for (auto& idx : indexes_) idx->Remove(id, it->second);
  data_size_ -= it->second.SerializedSize();
  docs_.erase(it);
  ++mutation_epoch_;
  return Status::OK();
}

void Collection::ForEach(
    const std::function<void(DocId, const DocValue&)>& fn) const {
  for (const auto& [id, doc] : docs_) fn(id, doc);
}

bool Collection::DocCursor::Next(DocId* id, const DocValue** doc) {
  if (it_ == end_) return false;
  *id = it_->first;
  *doc = &it_->second;
  ++it_;
  return true;
}

Status Collection::CreateIndex(const char* field_path) {
  return CreateIndex(std::vector<std::string>{field_path});
}

Status Collection::CreateIndex(const std::vector<std::string>& field_paths) {
  if (field_paths.empty()) {
    return Status::InvalidArgument("an index needs at least one field path");
  }
  for (const std::string& path : field_paths) {
    if (path.empty()) {
      return Status::InvalidArgument("empty index field path");
    }
    for (char c : path) {
      // Control characters are reserved by the snapshot index-record
      // encoding, ',' by the canonical compound name ("type,name") —
      // neither makes sense in a dotted path anyway, and allowing them
      // would let two distinct indexes collide on one canonical name.
      if (static_cast<unsigned char>(c) < 0x20 || c == ',') {
        return Status::InvalidArgument(
            "index field path contains a reserved character");
      }
    }
    if (static_cast<size_t>(std::count(field_paths.begin(), field_paths.end(),
                                       path)) > 1) {
      return Status::InvalidArgument("duplicate component " + path +
                                     " in compound index");
    }
  }
  auto idx = std::make_unique<SecondaryIndex>(field_paths);
  if (HasIndex(idx->field_path())) {
    return Status::AlreadyExists("index on " + idx->field_path() +
                                 " already exists");
  }
  for (const auto& [id, doc] : docs_) idx->Insert(id, doc);
  indexes_.push_back(std::move(idx));
  ++mutation_epoch_;
  return Status::OK();
}

std::vector<std::vector<std::string>> Collection::IndexSpecs() const {
  std::vector<std::vector<std::string>> out;
  for (const auto& idx : indexes_) {
    if (idx->field_path() != "_id") out.push_back(idx->field_paths());
  }
  return out;
}

std::vector<const SecondaryIndex*> Collection::Indexes() const {
  std::vector<const SecondaryIndex*> out;
  out.reserve(indexes_.size());
  for (const auto& idx : indexes_) out.push_back(idx.get());
  return out;
}

bool Collection::HasIndex(const std::string& field_path) const {
  return IndexOn(field_path) != nullptr;
}

const SecondaryIndex* Collection::IndexOn(const std::string& field_path) const {
  for (const auto& idx : indexes_) {
    if (idx->field_path() == field_path) return idx.get();
  }
  return nullptr;
}

std::vector<DocId> Collection::FindEqual(const std::string& field_path,
                                         const DocValue& value) const {
  for (const auto& idx : indexes_) {
    if (idx->field_path() == field_path) return idx->Lookup(value);
  }
  std::vector<DocId> out;
  for (const auto& [id, doc] : docs_) {
    const DocValue* v = doc.FindPath(field_path);
    if (v != nullptr && v->Equals(value)) out.push_back(id);
  }
  return out;
}

std::vector<DocId> Collection::FindRange(const std::string& field_path,
                                         const DocValue& lo,
                                         const DocValue& hi) const {
  for (const auto& idx : indexes_) {
    if (idx->field_path() == field_path) return idx->Range(lo, hi);
  }
  std::vector<DocId> out;
  IndexKey klo = IndexKey::FromValue(lo), khi = IndexKey::FromValue(hi);
  for (const auto& [id, doc] : docs_) {
    const DocValue* v = doc.FindPath(field_path);
    if (v == nullptr) continue;
    IndexKey k = IndexKey::FromValue(*v);
    if (!(k < klo) && !(khi < k)) out.push_back(id);
  }
  return out;
}

CollectionStats Collection::Stats() const {
  CollectionStats st;
  st.ns = ns_;
  st.count = count();
  st.nindexes = static_cast<int64_t>(indexes_.size());
  st.num_shards = opts_.num_shards;
  uint64_t best_epoch = 0;
  for (const auto& shard : shards_) {
    st.num_extents += shard.num_extents();
    st.storage_size += shard.storage_size();
    if (shard.last_alloc_epoch() >= best_epoch && shard.num_extents() > 0) {
      best_epoch = shard.last_alloc_epoch();
      st.last_extent_size = shard.last_extent_size();
    }
  }
  for (const auto& idx : indexes_) st.total_index_size += idx->SizeBytes();
  st.data_size = data_size_;
  st.avg_obj_size = st.count > 0 ? st.data_size / st.count : 0;
  st.index_scans = index_scans_;
  st.coll_scans = coll_scans_;
  return st;
}

std::string CollectionStats::ToString() const {
  std::string out;
  out += "{\n";
  out += "  \"ns\" : \"" + ns + "\",\n";
  out += "  \"count\" : " + std::to_string(count) + ",\n";
  out += "  \"numExtents\" : " + std::to_string(num_extents) + ",\n";
  out += "  \"nindexes\" : " + std::to_string(nindexes) + ",\n";
  out += "  \"lastExtentSize\" : " + std::to_string(last_extent_size) + ",\n";
  out += "  \"totalIndexSize\" : " + std::to_string(total_index_size) + ",\n";
  out += "  \"dataSize\" : " + std::to_string(data_size) + ",\n";
  out += "  \"storageSize\" : " + std::to_string(storage_size) + ",\n";
  out += "  \"avgObjSize\" : " + std::to_string(avg_obj_size) + ",\n";
  out += "  \"numShards\" : " + std::to_string(num_shards) + ",\n";
  out += "  \"indexScans\" : " + std::to_string(index_scans) + ",\n";
  out += "  \"collScans\" : " + std::to_string(coll_scans) + "\n";
  out += "}";
  return out;
}

}  // namespace dt::storage
