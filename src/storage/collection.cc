#include "storage/collection.h"

#include <algorithm>
#include <chrono>
#include <random>

#include "common/hash.h"
#include "common/strutil.h"

namespace dt::storage {

void ExtentChain::Append(int64_t bytes, uint64_t* alloc_epoch) {
  if (extents_.empty() ||
      extents_.back().used + bytes > extents_.back().capacity) {
    int64_t cap = extents_.empty()
                      ? opts_.initial_extent_size_bytes
                      : std::min(opts_.max_extent_size_bytes,
                                 extents_.back().capacity * 2);
    cap = std::max(cap, bytes);  // oversized documents get a fitted extent
    extents_.push_back(Extent{cap, 0});
    storage_size_ += cap;
    if (alloc_epoch != nullptr) last_alloc_epoch_ = ++*alloc_epoch;
  }
  extents_.back().used += bytes;
}

namespace internal {

StorageVersion::StorageVersion(const StorageVersion& other)
    : ns(other.ns),
      opts(other.opts),
      next_id(other.next_id),
      alloc_epoch(other.alloc_epoch),
      chunks(other.chunks),
      shards(other.shards),
      indexes(other.indexes),
      data_size(other.data_size),
      doc_count(other.doc_count),
      epoch(other.epoch),
      version_id(other.version_id) {}

size_t StorageVersion::ChunkLowerBound(DocId id) const {
  auto it = std::partition_point(
      chunks.begin(), chunks.end(),
      [id](const std::shared_ptr<DocChunk>& c) {
        return c->docs.back().first < id;
      });
  return static_cast<size_t>(it - chunks.begin());
}

namespace {

/// Position of `id` within a chunk's sorted doc run.
std::vector<std::pair<DocId, DocValue>>::const_iterator LowerBoundIn(
    const DocChunk& chunk, DocId id) {
  return std::partition_point(
      chunk.docs.begin(), chunk.docs.end(),
      [id](const std::pair<DocId, DocValue>& e) { return e.first < id; });
}

}  // namespace

const DocValue* StorageVersion::Get(DocId id) const {
  size_t ci = ChunkLowerBound(id);
  if (ci == chunks.size()) return nullptr;
  auto it = LowerBoundIn(*chunks[ci], id);
  if (it == chunks[ci]->docs.end() || it->first != id) return nullptr;
  return &it->second;
}

void StorageVersion::ForEach(
    const std::function<void(DocId, const DocValue&)>& fn) const {
  for (const auto& chunk : chunks) {
    for (const auto& [id, doc] : chunk->docs) fn(id, doc);
  }
}

const SecondaryIndex* StorageVersion::IndexOn(
    const std::string& field_path) const {
  for (const auto& idx : indexes) {
    if (idx->field_path() == field_path) return idx.get();
  }
  return nullptr;
}

DocChunk* StorageVersion::MutableChunk(size_t i) {
  if (chunks[i].use_count() != 1) {
    chunks[i] = std::make_shared<DocChunk>(*chunks[i]);
  }
  return chunks[i].get();
}

SecondaryIndex* StorageVersion::MutableIndex(size_t i) {
  if (indexes[i].use_count() != 1) {
    indexes[i] = std::make_shared<SecondaryIndex>(*indexes[i]);
  }
  return indexes[i].get();
}

void StorageVersion::InsertDocSorted(DocId id, DocValue doc) {
  size_t ci = ChunkLowerBound(id);
  if (ci == chunks.size()) {
    // Append path (the common case: ids are assigned ascending).
    if (chunks.empty() || chunks.back()->docs.size() >= kDocChunkCapacity) {
      chunks.push_back(std::make_shared<DocChunk>());
    }
    MutableChunk(chunks.size() - 1)
        ->docs.emplace_back(id, std::move(doc));
    return;
  }
  DocChunk* chunk = MutableChunk(ci);
  auto it = LowerBoundIn(*chunk, id);
  chunk->docs.emplace(chunk->docs.begin() + (it - chunk->docs.cbegin()), id,
                      std::move(doc));
  if (chunk->docs.size() > kDocChunkCapacity) {
    // Split in half so mid-directory inserts stay O(chunk), not O(n).
    auto right = std::make_shared<DocChunk>();
    size_t half = chunk->docs.size() / 2;
    right->docs.assign(std::make_move_iterator(chunk->docs.begin() + half),
                       std::make_move_iterator(chunk->docs.end()));
    chunk->docs.resize(half);
    chunks.insert(chunks.begin() + ci + 1, std::move(right));
  }
}

bool StorageVersion::EraseDoc(DocId id, DocValue* removed) {
  size_t ci = ChunkLowerBound(id);
  if (ci == chunks.size()) return false;
  {
    auto it = LowerBoundIn(*chunks[ci], id);
    if (it == chunks[ci]->docs.end() || it->first != id) return false;
  }
  DocChunk* chunk = MutableChunk(ci);
  auto it = chunk->docs.begin() +
            (LowerBoundIn(*chunk, id) - chunk->docs.cbegin());
  *removed = std::move(it->second);
  chunk->docs.erase(it);
  if (chunk->docs.empty()) chunks.erase(chunks.begin() + ci);
  return true;
}

DocValue* StorageVersion::FindMutableDoc(DocId id) {
  size_t ci = ChunkLowerBound(id);
  if (ci == chunks.size()) return nullptr;
  {
    auto it = LowerBoundIn(*chunks[ci], id);
    if (it == chunks[ci]->docs.end() || it->first != id) return nullptr;
  }
  DocChunk* chunk = MutableChunk(ci);
  auto it = chunk->docs.begin() +
            (LowerBoundIn(*chunk, id) - chunk->docs.cbegin());
  return &it->second;
}

void CollectionShared::TrimRetainedLocked() {
  const size_t budget =
      opts.retained_versions < 0 ? 0
                                 : static_cast<size_t>(opts.retained_versions);
  while (retained.size() > budget) {
    const std::shared_ptr<const StorageVersion>& victim = retained.front();
    if (victim->epoch < epochs.MinPinned()) {
      victim->in_retained = false;
      retained.pop_front();
      continue;
    }
    // A pinned reader could still resume against this version: defer
    // the eviction until the pinned epochs drain.
    if (!victim->retire_pending) {
      victim->retire_pending = true;
      epochs.Retire(victim->epoch, [this, vid = victim->version_id] {
        std::lock_guard<std::mutex> lock(version_mu);
        for (auto it = retained.begin(); it != retained.end(); ++it) {
          if ((*it)->version_id == vid) {
            (*it)->in_retained = false;
            retained.erase(it);
            break;
          }
        }
      });
    }
    break;  // everything behind the front is at least as recent
  }
}

namespace {

/// Non-deterministic writer-RNG seed: collection identity (version
/// ids, incarnations) must differ across processes, unlike the
/// repository's reproducible experiment seeds.
uint64_t EntropySeed() {
  std::random_device rd;
  uint64_t seed = (static_cast<uint64_t>(rd()) << 32) ^ rd();
  seed ^= static_cast<uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
  return Mix64(seed);
}

}  // namespace

}  // namespace internal

// ---- CollectionView ----

std::vector<const SecondaryIndex*> CollectionView::Indexes() const {
  std::vector<const SecondaryIndex*> out;
  out.reserve(core_->indexes.size());
  for (const auto& idx : core_->indexes) out.push_back(idx.get());
  return out;
}

std::vector<std::vector<std::string>> CollectionView::IndexSpecs() const {
  std::vector<std::vector<std::string>> out;
  for (const auto& idx : core_->indexes) {
    if (idx->field_path() != "_id") out.push_back(idx->field_paths());
  }
  return out;
}

void CollectionView::RetainForResume() const {
  internal::CollectionShared& st = *state_;
  std::lock_guard<std::mutex> lock(st.version_mu);
  if (core_->in_retained) return;
  core_->in_retained = true;
  st.retained.push_back(core_);
}

Result<CollectionView> CollectionView::At(uint64_t version_id) const {
  if (version_id == core_->version_id) return *this;
  internal::CollectionShared& st = *state_;
  std::shared_ptr<const internal::StorageVersion> found;
  uint64_t epoch = 0;
  {
    std::lock_guard<std::mutex> lock(st.version_mu);
    if (st.published->version_id == version_id) {
      found = st.published;
    } else {
      for (const auto& v : st.retained) {
        if (v->version_id == version_id) {
          found = v;
          break;
        }
      }
    }
    if (found != nullptr) {
      epoch = found->epoch;
      st.epochs.Pin(epoch);
    }
  }
  if (found == nullptr) {
    return Status::InvalidArgument(
        "stale resume token: the version of " + core_->ns +
        " it was minted against is no longer retained");
  }
  auto pin = std::make_shared<const internal::VersionPin>(state_, epoch);
  return CollectionView(state_, std::move(found), std::move(pin));
}

// ---- DocCursor ----

bool DocCursor::Next(DocId* id, const DocValue** doc) {
  const auto& chunks = core_->chunks;
  while (chunk_ < chunks.size()) {
    const auto& docs = chunks[chunk_]->docs;
    if (pos_ < docs.size()) {
      *id = docs[pos_].first;
      *doc = &docs[pos_].second;
      ++pos_;
      return true;
    }
    ++chunk_;
    pos_ = 0;
  }
  return false;
}

void DocCursor::SeekAfter(DocId id) {
  // Land on the chunk that would hold `id`, then take the first
  // element strictly greater (spilling into the next chunk when `id`
  // was that chunk's last element).
  const auto& chunks = core_->chunks;
  chunk_ = core_->ChunkLowerBound(id);
  pos_ = 0;
  if (chunk_ >= chunks.size()) return;
  const auto& docs = chunks[chunk_]->docs;
  pos_ = static_cast<size_t>(
      std::partition_point(docs.begin(), docs.end(),
                           [id](const std::pair<DocId, DocValue>& e) {
                             return e.first <= id;
                           }) -
      docs.begin());
  if (pos_ >= docs.size()) {
    ++chunk_;
    pos_ = 0;
  }
}

// ---- Collection ----

Collection::Collection(std::string ns, CollectionOptions opts)
    : state_(std::make_shared<internal::CollectionShared>()) {
  internal::CollectionShared& st = *state_;
  st.ns = ns;
  st.opts = opts;
  st.rng.Seed(internal::EntropySeed());
  st.incarnation = st.rng.Next();
  auto v = std::make_shared<internal::StorageVersion>();
  v->ns = std::move(ns);
  v->opts = opts;
  v->shards.reserve(opts.num_shards);
  for (int i = 0; i < opts.num_shards; ++i) v->shards.emplace_back(opts);
  // Default _id index, as in the production store behind Table I
  // (nindexes == 1 for a collection with no user indexes).
  v->indexes.push_back(std::make_shared<SecondaryIndex>("_id"));
  v->version_id = st.rng.Next();
  st.published = std::move(v);
}

std::shared_ptr<const internal::StorageVersion> Collection::CurrentCore()
    const {
  std::lock_guard<std::mutex> lock(state_->version_mu);
  return state_->published;
}

CollectionView Collection::GetView() const {
  internal::CollectionShared& st = *state_;
  std::shared_ptr<const internal::StorageVersion> core;
  uint64_t epoch;
  {
    std::lock_guard<std::mutex> lock(st.version_mu);
    core = st.published;
    epoch = core->epoch;
    st.epochs.Pin(epoch);
  }
  auto pin = std::make_shared<const internal::VersionPin>(state_, epoch);
  return CollectionView(state_, std::move(core), std::move(pin));
}

void Collection::Mutate(
    const std::function<void(internal::StorageVersion&)>& fn) {
  internal::CollectionShared& st = *state_;
  std::unique_lock<std::mutex> vlock(st.version_mu);
  if (st.published.use_count() == 1) {
    // No view, cursor or retained entry can reach this version, and
    // none can be acquired while we hold version_mu: mutate in place
    // (granules shared with older versions still get cloned).
    internal::StorageVersion& v = *st.published;
    fn(v);
    ++v.epoch;
    v.version_id = st.rng.Next();
    st.TrimRetainedLocked();
    vlock.unlock();
  } else {
    std::shared_ptr<const internal::StorageVersion> base = st.published;
    vlock.unlock();
    // Copy-on-write off the lock: readers keep traversing `base`
    // while the successor is assembled against shared granules.
    auto next = std::make_shared<internal::StorageVersion>(*base);
    fn(*next);
    ++next->epoch;
    next->version_id = st.rng.Next();
    vlock.lock();
    st.published = std::move(next);
    st.TrimRetainedLocked();
    vlock.unlock();
    base.reset();
  }
  st.epochs.Reclaim();
}

int Collection::ShardOf(const CollectionOptions& opts, DocId id) {
  return static_cast<int>(Mix64(id) % static_cast<uint64_t>(opts.num_shards));
}

void Collection::InsertUnchecked(internal::StorageVersion& v, DocId id,
                                 DocValue doc) {
  if (doc.is_object() && doc.Find("_id") == nullptr) {
    doc.Add("_id", DocValue::Int(static_cast<int64_t>(id)));
  }
  int64_t bytes = doc.SerializedSize();
  v.shards[ShardOf(v.opts, id)].Append(bytes, &v.alloc_epoch);
  v.data_size += bytes;
  for (size_t i = 0; i < v.indexes.size(); ++i) {
    v.MutableIndex(i)->Insert(id, doc);
  }
  v.InsertDocSorted(id, std::move(doc));
  ++v.doc_count;
  if (id >= v.next_id) v.next_id = id + 1;
}

DocId Collection::Insert(DocValue doc) {
  std::lock_guard<std::mutex> wlock(state_->writer_mu);
  DocId id = state_->published->next_id;  // never live and never 0
  Mutate([&](internal::StorageVersion& v) {
    InsertUnchecked(v, id, std::move(doc));
  });
  if (state_->observer) {
    // The pinned core keeps the borrowed document alive across the
    // callback even if a concurrent trim retires this version.
    auto core = CurrentCore();
    MutationEvent ev;
    ev.op = MutationEvent::Op::kInsert;
    ev.epoch = core->epoch;
    ev.id = id;
    ev.doc = core->Get(id);
    state_->observer(ev);
  }
  return id;
}

Status Collection::RestoreDocument(DocId id, DocValue doc) {
  std::lock_guard<std::mutex> wlock(state_->writer_mu);
  if (id == 0) {
    return Status::InvalidArgument("document id 0 is not assignable");
  }
  if (state_->published->Get(id) != nullptr) {
    return Status::AlreadyExists("document id " + std::to_string(id) +
                                 " already live in " + state_->ns);
  }
  Mutate([&](internal::StorageVersion& v) {
    InsertUnchecked(v, id, std::move(doc));
  });
  return Status::OK();
}

const DocValue* Collection::Get(DocId id) const {
  std::lock_guard<std::mutex> lock(state_->version_mu);
  return state_->published->Get(id);
}

Status Collection::Update(DocId id, DocValue doc) {
  std::lock_guard<std::mutex> wlock(state_->writer_mu);
  if (state_->published->Get(id) == nullptr) {
    return Status::NotFound("no document with id " + std::to_string(id) +
                            " in " + state_->ns);
  }
  if (doc.is_object() && doc.Find("_id") == nullptr) {
    doc.Add("_id", DocValue::Int(static_cast<int64_t>(id)));
  }
  Mutate([&](internal::StorageVersion& v) {
    DocValue* slot = v.FindMutableDoc(id);
    for (size_t i = 0; i < v.indexes.size(); ++i) {
      SecondaryIndex* idx = v.MutableIndex(i);
      idx->Remove(id, *slot);
      idx->Insert(id, doc);
    }
    v.data_size += doc.SerializedSize() - slot->SerializedSize();
    // In-place update: extent accounting models append-only
    // allocation, so updated bytes stay attributed to the original
    // extent.
    *slot = std::move(doc);
  });
  if (state_->observer) {
    auto core = CurrentCore();
    MutationEvent ev;
    ev.op = MutationEvent::Op::kUpdate;
    ev.epoch = core->epoch;
    ev.id = id;
    ev.doc = core->Get(id);
    state_->observer(ev);
  }
  return Status::OK();
}

Status Collection::Remove(DocId id) {
  std::lock_guard<std::mutex> wlock(state_->writer_mu);
  if (state_->published->Get(id) == nullptr) {
    return Status::NotFound("no document with id " + std::to_string(id) +
                            " in " + state_->ns);
  }
  Mutate([&](internal::StorageVersion& v) {
    DocValue removed;
    v.EraseDoc(id, &removed);
    for (size_t i = 0; i < v.indexes.size(); ++i) {
      v.MutableIndex(i)->Remove(id, removed);
    }
    v.data_size -= removed.SerializedSize();
    --v.doc_count;
  });
  if (state_->observer) {
    MutationEvent ev;
    ev.op = MutationEvent::Op::kRemove;
    ev.epoch = CurrentCore()->epoch;
    ev.id = id;
    state_->observer(ev);
  }
  return Status::OK();
}

void Collection::ForEach(
    const std::function<void(DocId, const DocValue&)>& fn) const {
  CurrentCore()->ForEach(fn);
}

storage::DocCursor Collection::ScanDocs() const {
  return GetView().ScanDocs();
}

Status Collection::CreateIndex(const char* field_path) {
  return CreateIndex(std::vector<std::string>{field_path});
}

Status Collection::CreateIndex(const std::vector<std::string>& field_paths) {
  std::lock_guard<std::mutex> wlock(state_->writer_mu);
  if (field_paths.empty()) {
    return Status::InvalidArgument("an index needs at least one field path");
  }
  for (const std::string& path : field_paths) {
    if (path.empty()) {
      return Status::InvalidArgument("empty index field path");
    }
    for (char c : path) {
      // Control characters are reserved by the snapshot index-record
      // encoding, ',' by the canonical compound name ("type,name") —
      // neither makes sense in a dotted path anyway, and allowing them
      // would let two distinct indexes collide on one canonical name.
      if (static_cast<unsigned char>(c) < 0x20 || c == ',') {
        return Status::InvalidArgument(
            "index field path contains a reserved character");
      }
    }
    if (static_cast<size_t>(std::count(field_paths.begin(), field_paths.end(),
                                       path)) > 1) {
      return Status::InvalidArgument("duplicate component " + path +
                                     " in compound index");
    }
  }
  auto idx = std::make_shared<SecondaryIndex>(field_paths);
  if (state_->published->IndexOn(idx->field_path()) != nullptr) {
    return Status::AlreadyExists("index on " + idx->field_path() +
                                 " already exists");
  }
  Mutate([&](internal::StorageVersion& v) {
    v.ForEach([&](DocId id, const DocValue& doc) { idx->Insert(id, doc); });
    v.indexes.push_back(std::move(idx));
  });
  if (state_->observer) {
    MutationEvent ev;
    ev.op = MutationEvent::Op::kCreateIndex;
    ev.epoch = CurrentCore()->epoch;
    ev.index_paths = &field_paths;
    state_->observer(ev);
  }
  return Status::OK();
}

void Collection::SetMutationObserver(MutationObserver observer) {
  std::lock_guard<std::mutex> wlock(state_->writer_mu);
  state_->observer = std::move(observer);
}

std::vector<std::vector<std::string>> Collection::IndexSpecs() const {
  auto core = CurrentCore();
  std::vector<std::vector<std::string>> out;
  for (const auto& idx : core->indexes) {
    if (idx->field_path() != "_id") out.push_back(idx->field_paths());
  }
  return out;
}

std::vector<const SecondaryIndex*> Collection::Indexes() const {
  auto core = CurrentCore();
  std::vector<const SecondaryIndex*> out;
  out.reserve(core->indexes.size());
  for (const auto& idx : core->indexes) out.push_back(idx.get());
  return out;
}

bool Collection::HasIndex(const std::string& field_path) const {
  return IndexOn(field_path) != nullptr;
}

const SecondaryIndex* Collection::IndexOn(const std::string& field_path) const {
  std::lock_guard<std::mutex> lock(state_->version_mu);
  return state_->published->IndexOn(field_path);
}

std::vector<DocId> Collection::FindEqual(const std::string& field_path,
                                         const DocValue& value) const {
  auto core = CurrentCore();
  if (const SecondaryIndex* idx = core->IndexOn(field_path)) {
    return idx->Lookup(value);
  }
  std::vector<DocId> out;
  core->ForEach([&](DocId id, const DocValue& doc) {
    const DocValue* v = doc.FindPath(field_path);
    if (v != nullptr && v->Equals(value)) out.push_back(id);
  });
  return out;
}

std::vector<DocId> Collection::FindRange(const std::string& field_path,
                                         const DocValue& lo,
                                         const DocValue& hi) const {
  auto core = CurrentCore();
  if (const SecondaryIndex* idx = core->IndexOn(field_path)) {
    return idx->Range(lo, hi);
  }
  std::vector<DocId> out;
  IndexKey klo = IndexKey::FromValue(lo), khi = IndexKey::FromValue(hi);
  core->ForEach([&](DocId id, const DocValue& doc) {
    const DocValue* v = doc.FindPath(field_path);
    if (v == nullptr) return;
    IndexKey k = IndexKey::FromValue(*v);
    if (!(k < klo) && !(khi < k)) out.push_back(id);
  });
  return out;
}

int64_t Collection::count() const { return CurrentCore()->doc_count; }

uint64_t Collection::mutation_epoch() const { return CurrentCore()->epoch; }

uint64_t Collection::version_id() const { return CurrentCore()->version_id; }

size_t Collection::retained_version_count() const {
  std::lock_guard<std::mutex> lock(state_->version_mu);
  return state_->retained.size();
}

DocId Collection::next_id() const { return CurrentCore()->next_id; }

void Collection::RestoreNextId(DocId next_id) {
  std::lock_guard<std::mutex> wlock(state_->writer_mu);
  std::lock_guard<std::mutex> vlock(state_->version_mu);
  // Loading is single-threaded and the version unobserved; adjust in
  // place without minting a new version.
  if (next_id > state_->published->next_id) {
    state_->published->next_id = next_id;
  }
}

void Collection::RestoreLineage(uint64_t incarnation, uint64_t epoch) {
  std::lock_guard<std::mutex> wlock(state_->writer_mu);
  std::lock_guard<std::mutex> vlock(state_->version_mu);
  state_->incarnation = incarnation;
  state_->published->epoch = epoch;
}

Status Collection::RestoreIndexStats(std::vector<IndexStats> stats) {
  std::lock_guard<std::mutex> wlock(state_->writer_mu);
  std::lock_guard<std::mutex> vlock(state_->version_mu);
  internal::StorageVersion& v = *state_->published;
  if (stats.size() != v.indexes.size()) {
    return Status::InvalidArgument(
        std::to_string(stats.size()) + " stats records for " +
        std::to_string(v.indexes.size()) + " indexes in " + state_->ns);
  }
  for (size_t i = 0; i < stats.size(); ++i) {
    v.MutableIndex(i)->RestoreStats(std::move(stats[i]));
  }
  return Status::OK();
}

CollectionStats Collection::Stats() const {
  auto core = CurrentCore();
  CollectionStats st;
  st.ns = core->ns;
  st.count = core->doc_count;
  st.nindexes = static_cast<int64_t>(core->indexes.size());
  st.num_shards = core->opts.num_shards;
  uint64_t best_epoch = 0;
  for (const auto& shard : core->shards) {
    st.num_extents += shard.num_extents();
    st.storage_size += shard.storage_size();
    if (shard.last_alloc_epoch() >= best_epoch && shard.num_extents() > 0) {
      best_epoch = shard.last_alloc_epoch();
      st.last_extent_size = shard.last_extent_size();
    }
  }
  for (const auto& idx : core->indexes) st.total_index_size += idx->SizeBytes();
  st.data_size = core->data_size;
  st.avg_obj_size = st.count > 0 ? st.data_size / st.count : 0;
  st.index_scans = index_scans();
  st.coll_scans = coll_scans();
  return st;
}

std::string CollectionStats::ToString() const {
  std::string out;
  out += "{\n";
  out += "  \"ns\" : \"" + ns + "\",\n";
  out += "  \"count\" : " + std::to_string(count) + ",\n";
  out += "  \"numExtents\" : " + std::to_string(num_extents) + ",\n";
  out += "  \"nindexes\" : " + std::to_string(nindexes) + ",\n";
  out += "  \"lastExtentSize\" : " + std::to_string(last_extent_size) + ",\n";
  out += "  \"totalIndexSize\" : " + std::to_string(total_index_size) + ",\n";
  out += "  \"dataSize\" : " + std::to_string(data_size) + ",\n";
  out += "  \"storageSize\" : " + std::to_string(storage_size) + ",\n";
  out += "  \"avgObjSize\" : " + std::to_string(avg_obj_size) + ",\n";
  out += "  \"numShards\" : " + std::to_string(num_shards) + ",\n";
  out += "  \"indexScans\" : " + std::to_string(index_scans) + ",\n";
  out += "  \"collScans\" : " + std::to_string(coll_scans) + "\n";
  out += "}";
  return out;
}

}  // namespace dt::storage
