/// \file docvalue.h
/// \brief Semi-structured (hierarchical) document model.
///
/// `DocValue` is a BSON-like tagged value: null, bool, int64, double,
/// string, array, or object. Objects preserve insertion order (like
/// MongoDB documents) and offer by-name lookup. The serialized size is
/// computed with BSON's framing rules so extent/index byte accounting
/// in `storage::Collection` behaves like the system the paper measured
/// in Tables I and II.

#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/status.h"

namespace dt::storage {

class DocValue;

/// Ordered key/value fields of an object.
using DocFields = std::vector<std::pair<std::string, DocValue>>;
/// Elements of an array.
using DocArray = std::vector<DocValue>;

/// Type tag of a `DocValue`.
enum class DocType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt64 = 2,
  kDouble = 3,
  kString = 4,
  kArray = 5,
  kObject = 6,
};

const char* DocTypeName(DocType t);

/// \brief A hierarchical value (the unit stored in a document collection).
class DocValue {
 public:
  /// Null value.
  DocValue() : type_(DocType::kNull) {}

  static DocValue Null() { return DocValue(); }
  static DocValue Bool(bool b) {
    DocValue v;
    v.type_ = DocType::kBool;
    v.bool_ = b;
    return v;
  }
  static DocValue Int(int64_t i) {
    DocValue v;
    v.type_ = DocType::kInt64;
    v.int_ = i;
    return v;
  }
  static DocValue Double(double d) {
    DocValue v;
    v.type_ = DocType::kDouble;
    v.double_ = d;
    return v;
  }
  static DocValue Str(std::string s) {
    DocValue v;
    v.type_ = DocType::kString;
    v.str_ = std::move(s);
    return v;
  }
  static DocValue Array(DocArray items = {}) {
    DocValue v;
    v.type_ = DocType::kArray;
    v.array_ = std::make_shared<DocArray>(std::move(items));
    return v;
  }
  static DocValue Object(DocFields fields = {}) {
    DocValue v;
    v.type_ = DocType::kObject;
    v.fields_ = std::make_shared<DocFields>(std::move(fields));
    return v;
  }

  DocType type() const { return type_; }
  bool is_null() const { return type_ == DocType::kNull; }
  bool is_bool() const { return type_ == DocType::kBool; }
  bool is_int() const { return type_ == DocType::kInt64; }
  bool is_double() const { return type_ == DocType::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == DocType::kString; }
  bool is_array() const { return type_ == DocType::kArray; }
  bool is_object() const { return type_ == DocType::kObject; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  /// Numeric value as double regardless of int/double storage.
  double as_double() const {
    return is_int() ? static_cast<double>(int_) : double_;
  }
  const std::string& string_value() const { return str_; }

  const DocArray& array_items() const { return *array_; }
  DocArray& mutable_array() { return *array_; }
  const DocFields& fields() const { return *fields_; }
  DocFields& mutable_fields() { return *fields_; }

  /// Appends a field to an object (no uniqueness check; callers own key
  /// discipline like MongoDB does).
  void Add(std::string key, DocValue value) {
    fields_->emplace_back(std::move(key), std::move(value));
  }

  /// Appends an element to an array.
  void Push(DocValue value) { array_->push_back(std::move(value)); }

  /// Pointer to the first field named `key`, or nullptr. Object only.
  const DocValue* Find(std::string_view key) const;

  /// Dotted-path navigation: "payload.entities.0.type". A numeric path
  /// segment indexes into an array. Returns nullptr when the path does
  /// not resolve.
  const DocValue* FindPath(std::string_view dotted_path) const;

  /// Replaces (or appends) the field `key` on an object.
  void Set(std::string_view key, DocValue value);

  /// BSON-style serialized size in bytes of this value when stored as a
  /// top-level document (objects/arrays include the 4-byte length prefix
  /// and trailing NUL; strings include length prefix and NUL; each
  /// element carries a type byte and a NUL-terminated key).
  int64_t SerializedSize() const;

  /// Compact JSON rendering (stable field order; doubles via
  /// `FormatDouble`; strings escaped).
  std::string ToJson() const;

  /// Deep structural equality (int 2 != double 2.0).
  bool Equals(const DocValue& other) const;

 private:
  int64_t ElementValueSize() const;
  void AppendJson(std::string* out) const;

  DocType type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
  // Shared pointers keep DocValue cheap to copy in pipelines that fan a
  // parsed document into several collections; mutation via mutable_*
  // affects all copies by design (copy-on-write is not needed because
  // pipeline stages construct fresh objects).
  std::shared_ptr<DocArray> array_;
  std::shared_ptr<DocFields> fields_;
};

/// Convenience builder for object documents:
///   DocBuilder().Set("a", 1).Set("b", "x").Build()
class DocBuilder {
 public:
  DocBuilder() : doc_(DocValue::Object()) {}

  DocBuilder& Set(std::string key, DocValue v) {
    doc_.Add(std::move(key), std::move(v));
    return *this;
  }
  DocBuilder& Set(std::string key, const char* s) {
    return Set(std::move(key), DocValue::Str(s));
  }
  DocBuilder& Set(std::string key, std::string s) {
    return Set(std::move(key), DocValue::Str(std::move(s)));
  }
  DocBuilder& Set(std::string key, int64_t i) {
    return Set(std::move(key), DocValue::Int(i));
  }
  DocBuilder& Set(std::string key, int i) {
    return Set(std::move(key), DocValue::Int(i));
  }
  DocBuilder& Set(std::string key, double d) {
    return Set(std::move(key), DocValue::Double(d));
  }
  DocBuilder& Set(std::string key, bool b) {
    return Set(std::move(key), DocValue::Bool(b));
  }

  DocValue Build() { return std::move(doc_); }

 private:
  DocValue doc_;
};

}  // namespace dt::storage
