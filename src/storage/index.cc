#include "storage/index.h"

#include <iterator>

#include "common/strutil.h"

namespace dt::storage {

IndexKey IndexKey::FromValue(const DocValue& v) {
  IndexKey k;
  switch (v.type()) {
    case DocType::kBool:
      k.tag_ = Tag::kBool;
      k.bool_ = v.bool_value();
      break;
    case DocType::kInt64:
      k.tag_ = Tag::kNumber;
      k.num_ = static_cast<double>(v.int_value());
      break;
    case DocType::kDouble:
      k.tag_ = Tag::kNumber;
      k.num_ = v.double_value();
      break;
    case DocType::kString:
      k.tag_ = Tag::kString;
      k.str_ = v.string_value();
      break;
    default:
      k.tag_ = Tag::kNull;  // null, array, object index as null
      break;
  }
  return k;
}

bool IndexKey::operator<(const IndexKey& other) const {
  if (tag_ != other.tag_) return tag_ < other.tag_;
  switch (tag_) {
    case Tag::kNull:
      return false;
    case Tag::kBool:
      return bool_ < other.bool_;
    case Tag::kNumber:
      return num_ < other.num_;
    case Tag::kString:
      return str_ < other.str_;
  }
  return false;
}

bool IndexKey::operator==(const IndexKey& other) const {
  return !(*this < other) && !(other < *this);
}

int64_t IndexKey::SizeBytes() const {
  switch (tag_) {
    case Tag::kNull:
      return 1;
    case Tag::kBool:
      return 1;
    case Tag::kNumber:
      return 8;
    case Tag::kString:
      return static_cast<int64_t>(str_.size()) + 5;
  }
  return 1;
}

std::string IndexKey::ToString() const {
  switch (tag_) {
    case Tag::kNull:
      return "null";
    case Tag::kBool:
      return bool_ ? "true" : "false";
    case Tag::kNumber:
      return FormatDouble(num_, 10);
    case Tag::kString:
      return str_;
  }
  return "?";
}

namespace {
IndexKey KeyAt(const std::string& path, const DocValue& doc) {
  const DocValue* v = doc.FindPath(path);
  return v == nullptr ? IndexKey() : IndexKey::FromValue(*v);
}
}  // namespace

void SecondaryIndex::Insert(DocId id, const DocValue& doc) {
  IndexKey key = KeyAt(field_path_, doc);
  size_bytes_ += key.SizeBytes() + kEntryOverheadBytes;
  entries_.emplace(std::move(key), id);
}

void SecondaryIndex::Remove(DocId id, const DocValue& doc) {
  IndexKey key = KeyAt(field_path_, doc);
  auto [lo, hi] = entries_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == id) {
      size_bytes_ -= key.SizeBytes() + kEntryOverheadBytes;
      entries_.erase(it);
      return;
    }
  }
}

std::vector<DocId> SecondaryIndex::Lookup(const DocValue& value) const {
  std::vector<DocId> out;
  auto [lo, hi] = entries_.equal_range(IndexKey::FromValue(value));
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

std::vector<DocId> SecondaryIndex::Range(const DocValue& lo_v,
                                         const DocValue& hi_v) const {
  std::vector<DocId> out;
  IndexKey klo = IndexKey::FromValue(lo_v), khi = IndexKey::FromValue(hi_v);
  // Inverted bounds select nothing — and would put lower_bound(lo)
  // after upper_bound(hi), walking the iteration off the container.
  if (khi < klo) return out;
  auto lo = entries_.lower_bound(klo);
  auto hi = entries_.upper_bound(khi);
  for (auto it = lo; it != hi; ++it) out.push_back(it->second);
  return out;
}

void SecondaryIndex::VisitEqual(const DocValue& value,
                                const EntryVisitor& visit) const {
  auto [lo, hi] = entries_.equal_range(IndexKey::FromValue(value));
  for (auto it = lo; it != hi; ++it) {
    if (!visit(it->first, it->second)) return;
  }
}

void SecondaryIndex::VisitRange(const DocValue& lo_v, const DocValue& hi_v,
                                const EntryVisitor& visit) const {
  IndexKey klo = IndexKey::FromValue(lo_v), khi = IndexKey::FromValue(hi_v);
  if (khi < klo) return;  // empty range; see Range()
  auto lo = entries_.lower_bound(klo);
  auto hi = entries_.upper_bound(khi);
  for (auto it = lo; it != hi; ++it) {
    if (!visit(it->first, it->second)) return;
  }
}

void SecondaryIndex::VisitKeyCounts(
    const std::function<void(const IndexKey&, int64_t)>& visit) const {
  auto it = entries_.begin();
  while (it != entries_.end()) {
    auto next = entries_.upper_bound(it->first);
    visit(it->first, static_cast<int64_t>(std::distance(it, next)));
    it = next;
  }
}

int64_t SecondaryIndex::CountEqual(const DocValue& value) const {
  auto [lo, hi] = entries_.equal_range(IndexKey::FromValue(value));
  return static_cast<int64_t>(std::distance(lo, hi));
}

int64_t SecondaryIndex::CountRange(const DocValue& lo_v,
                                   const DocValue& hi_v) const {
  IndexKey klo = IndexKey::FromValue(lo_v), khi = IndexKey::FromValue(hi_v);
  if (khi < klo) return 0;  // empty range; see Range()
  auto lo = entries_.lower_bound(klo);
  auto hi = entries_.upper_bound(khi);
  return static_cast<int64_t>(std::distance(lo, hi));
}

}  // namespace dt::storage
