#include "storage/index.h"

#include <algorithm>
#include <iterator>
#include <utility>

#include "common/strutil.h"

namespace dt::storage {

IndexKey IndexKey::FromValue(const DocValue& v) {
  IndexKey k;
  switch (v.type()) {
    case DocType::kBool:
      k.tag_ = Tag::kBool;
      k.bool_ = v.bool_value();
      break;
    case DocType::kInt64:
      k.tag_ = Tag::kNumber;
      k.num_ = static_cast<double>(v.int_value());
      break;
    case DocType::kDouble:
      k.tag_ = Tag::kNumber;
      k.num_ = v.double_value();
      break;
    case DocType::kString:
      k.tag_ = Tag::kString;
      k.str_ = v.string_value();
      break;
    default:
      k.tag_ = Tag::kNull;  // null, array, object index as null
      break;
  }
  return k;
}

IndexKey IndexKey::Max() {
  IndexKey k;
  k.tag_ = Tag::kMax;
  return k;
}

DocValue IndexKey::ToDocValue() const {
  switch (tag_) {
    case Tag::kBool:
      return DocValue::Bool(bool_);
    case Tag::kNumber:
      return DocValue::Double(num_);
    case Tag::kString:
      return DocValue::Str(str_);
    case Tag::kNull:
    case Tag::kMax:
      break;
  }
  return DocValue::Null();
}

bool IndexKey::operator<(const IndexKey& other) const {
  if (tag_ != other.tag_) return tag_ < other.tag_;
  switch (tag_) {
    case Tag::kNull:
    case Tag::kMax:
      return false;
    case Tag::kBool:
      return bool_ < other.bool_;
    case Tag::kNumber:
      return num_ < other.num_;
    case Tag::kString:
      return str_ < other.str_;
  }
  return false;
}

bool IndexKey::operator==(const IndexKey& other) const {
  return !(*this < other) && !(other < *this);
}

int64_t IndexKey::SizeBytes() const {
  switch (tag_) {
    case Tag::kNull:
    case Tag::kMax:
      return 1;
    case Tag::kBool:
      return 1;
    case Tag::kNumber:
      return 8;
    case Tag::kString:
      return static_cast<int64_t>(str_.size()) + 5;
  }
  return 1;
}

uint64_t IndexKey::Hash64() const {
  // FNV-1a, unseeded: sketch state must be reproducible across runs
  // (it persists in snapshots and replays through crash recovery).
  uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](const void* p, size_t n) {
    const auto* bytes = static_cast<const unsigned char*>(p);
    for (size_t i = 0; i < n; ++i) {
      h ^= bytes[i];
      h *= 1099511628211ull;
    }
  };
  const uint8_t tag = static_cast<uint8_t>(tag_);
  mix(&tag, 1);
  switch (tag_) {
    case Tag::kNull:
    case Tag::kMax:
      break;
    case Tag::kBool: {
      const uint8_t b = bool_ ? 1 : 0;
      mix(&b, 1);
      break;
    }
    case Tag::kNumber:
      mix(&num_, sizeof num_);
      break;
    case Tag::kString:
      mix(str_.data(), str_.size());
      break;
  }
  return h;
}

std::string IndexKey::ToString() const {
  switch (tag_) {
    case Tag::kNull:
      return "null";
    case Tag::kMax:
      return "MaxKey";
    case Tag::kBool:
      return bool_ ? "true" : "false";
    case Tag::kNumber:
      return FormatDouble(num_, 10);
    case Tag::kString:
      return str_;
  }
  return "?";
}

CompositeKey CompositeKey::FromDoc(const std::vector<std::string>& paths,
                                   const DocValue& doc) {
  std::vector<IndexKey> parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    const DocValue* v = doc.FindPath(path);
    parts.push_back(v == nullptr ? IndexKey() : IndexKey::FromValue(*v));
  }
  return CompositeKey(std::move(parts));
}

bool CompositeKey::operator==(const CompositeKey& other) const {
  if (parts_.size() != other.parts_.size()) return false;
  return PrefixEquals(other, parts_.size());
}

bool CompositeKey::PrefixEquals(const CompositeKey& other, size_t n) const {
  n = std::min({n, parts_.size(), other.parts_.size()});
  for (size_t i = 0; i < n; ++i) {
    if (!(parts_[i] == other.parts_[i])) return false;
  }
  return true;
}

int64_t CompositeKey::SizeBytes() const {
  int64_t total = 0;
  for (const IndexKey& k : parts_) total += k.SizeBytes();
  return total;
}

std::string CompositeKey::ToString() const {
  if (parts_.size() == 1) return parts_[0].ToString();
  std::string out = "(";
  for (size_t i = 0; i < parts_.size(); ++i) {
    if (i > 0) out += ", ";
    out += parts_[i].ToString();
  }
  out += ")";
  return out;
}

SecondaryIndex::SecondaryIndex(std::vector<std::string> field_paths)
    : field_paths_(std::move(field_paths)),
      stats_(static_cast<int>(field_paths_.size())) {
  for (size_t i = 0; i < field_paths_.size(); ++i) {
    if (i > 0) canonical_name_ += ',';
    canonical_name_ += field_paths_[i];
  }
}

void SecondaryIndex::Insert(DocId id, const DocValue& doc) {
  CompositeKey key = CompositeKey::FromDoc(field_paths_, doc);
  size_bytes_ += key.SizeBytes() + kEntryOverheadBytes;
  stats_.OnInsert(key);
  entries_.emplace(std::move(key), id);
  if (stats_.NeedsRebuild()) RebuildStats();
}

void SecondaryIndex::Remove(DocId id, const DocValue& doc) {
  CompositeKey key = CompositeKey::FromDoc(field_paths_, doc);
  auto [lo, hi] = entries_.equal_range(key);
  for (auto it = lo; it != hi; ++it) {
    if (it->second == id) {
      size_bytes_ -= key.SizeBytes() + kEntryOverheadBytes;
      stats_.OnRemove(key);
      entries_.erase(it);
      if (stats_.NeedsRebuild()) RebuildStats();
      return;
    }
  }
}

void SecondaryIndex::RebuildStats() {
  IndexStats::Rebuilder rb(&stats_, entry_count());
  for (const auto& [key, id] : entries_) rb.Add(key);
  rb.Finish();
}

std::vector<DocId> SecondaryIndex::Lookup(const DocValue& value) const {
  std::vector<DocId> out;
  Scan scan = ScanPrefix({value}, nullptr, nullptr, /*descending=*/false);
  DocId id;
  while (scan.Next(&id)) out.push_back(id);
  return out;
}

std::vector<DocId> SecondaryIndex::Range(const DocValue& lo_v,
                                         const DocValue& hi_v) const {
  std::vector<DocId> out;
  Scan scan = ScanPrefix({}, &lo_v, &hi_v, /*descending=*/false);
  DocId id;
  while (scan.Next(&id)) out.push_back(id);
  return out;
}

void SecondaryIndex::VisitKeyCounts(
    const std::function<void(const IndexKey&, int64_t)>& visit) const {
  // Equal leading components are contiguous under lexicographic order,
  // so one forward walk groups them even in a compound index.
  auto it = entries_.begin();
  while (it != entries_.end()) {
    const IndexKey& lead = it->first.part(0);
    int64_t n = 0;
    auto run = it;
    while (run != entries_.end() && run->first.part(0) == lead) {
      ++run;
      ++n;
    }
    visit(lead, n);
    it = run;
  }
}

int64_t SecondaryIndex::CountEqual(const DocValue& value) const {
  return CountScan({value}, nullptr, nullptr);
}

int64_t SecondaryIndex::CountRange(const DocValue& lo_v,
                                   const DocValue& hi_v) const {
  return CountScan({}, &lo_v, &hi_v);
}

SecondaryIndex::ScanBounds SecondaryIndex::BoundsFor(
    const std::vector<DocValue>& eq_prefix, const DocValue* range_lo,
    const DocValue* range_hi) const {
  ScanBounds out;
  std::vector<IndexKey> lo_parts, hi_parts;
  lo_parts.reserve(field_paths_.size());
  hi_parts.reserve(field_paths_.size());
  for (const DocValue& v : eq_prefix) {
    IndexKey k = IndexKey::FromValue(v);
    lo_parts.push_back(k);
    hi_parts.push_back(std::move(k));
  }
  if (range_lo != nullptr && range_hi != nullptr) {
    // An inverted range selects nothing — and would put the lower bound
    // after the upper one, walking the iteration off the container.
    if (IndexKey::FromValue(*range_hi) < IndexKey::FromValue(*range_lo)) {
      out.first = out.last = entries_.end();
      out.empty = true;
      return out;
    }
  }
  if (range_lo != nullptr) lo_parts.push_back(IndexKey::FromValue(*range_lo));
  if (range_hi != nullptr) hi_parts.push_back(IndexKey::FromValue(*range_hi));
  // Close the upper probe with Max sentinels: every stored key
  // extending the constrained components compares below it.
  while (hi_parts.size() < field_paths_.size()) {
    hi_parts.push_back(IndexKey::Max());
  }
  out.lo_probe = CompositeKey(std::move(lo_parts));
  out.hi_probe = CompositeKey(std::move(hi_parts));
  out.first = entries_.lower_bound(out.lo_probe);
  out.last = entries_.upper_bound(out.hi_probe);
  return out;
}

SecondaryIndex::Scan::Scan(const std::multimap<CompositeKey, DocId>* entries,
                           Iter first, Iter last, bool descending,
                           size_t key_width, CompositeKey lo_probe,
                           CompositeKey hi_probe, bool empty)
    : entries_(entries),
      key_width_(key_width),
      it_(first),
      end_(last),
      rit_(std::make_reverse_iterator(last)),
      rend_(std::make_reverse_iterator(first)),
      descending_(descending),
      lo_probe_(std::move(lo_probe)),
      hi_probe_(std::move(hi_probe)),
      empty_(empty) {}

bool SecondaryIndex::Scan::RawNext(const CompositeKey** key, DocId* id) {
  if (descending_) {
    if (rit_ == rend_) return false;
    *key = &rit_->first;
    *id = rit_->second;
    ++rit_;
    return true;
  }
  if (it_ == end_) return false;
  *key = &it_->first;
  *id = it_->second;
  ++it_;
  return true;
}

bool SecondaryIndex::Scan::Next(const CompositeKey** key, DocId* id) {
  while (RawNext(key, id)) {
    if (skip_active_) {
      if ((*key)->PrefixEquals(skip_prefix_, skip_prefix_.width())) {
        if (*id <= skip_id_) continue;  // consumed before the checkpoint
      } else {
        // Prefix-tying entries are contiguous; once past them the
        // suppression can never fire again.
        skip_active_ = false;
      }
    }
    return true;
  }
  return false;
}

void SecondaryIndex::Scan::SeekAfter(const CompositeKey& prefix,
                                     DocId last_id) {
  skip_active_ = true;
  skip_prefix_ = prefix;
  skip_id_ = last_id;
  if (empty_) return;  // inverted range: nothing to position into
  // The prior position may lie outside THIS scan's bounds (a merge
  // union checkpoints one global position across branches with
  // different ranges), so the reposition clamps both ways: a prefix
  // before the scanned range keeps the original start (suppression
  // skips nothing there), and one past it exhausts the scan — seeking
  // beyond the end iterator would otherwise walk out of bounds.
  if (descending_) {
    // Start at the last entry (forward order) still extending the
    // prefix: reverse from the first entry past every extension of it
    // (Max-padded probe, like the upper scan bound computation).
    std::vector<IndexKey> padded = prefix.parts();
    while (padded.size() < key_width_) padded.push_back(IndexKey::Max());
    CompositeKey probe(std::move(padded));
    if (hi_probe_ < probe) return;
    if (probe < lo_probe_) {
      rit_ = rend_;
      return;
    }
    rit_ = std::make_reverse_iterator(entries_->upper_bound(probe));
  } else {
    if (prefix < lo_probe_) return;
    if (hi_probe_ < prefix) {
      it_ = end_;
      return;
    }
    it_ = entries_->lower_bound(prefix);
  }
}

SecondaryIndex::Scan SecondaryIndex::ScanPrefix(
    const std::vector<DocValue>& eq_prefix, const DocValue* range_lo,
    const DocValue* range_hi, bool descending) const {
  ScanBounds b = BoundsFor(eq_prefix, range_lo, range_hi);
  return Scan(&entries_, b.first, b.last, descending, field_paths_.size(),
              std::move(b.lo_probe), std::move(b.hi_probe), b.empty);
}

int64_t SecondaryIndex::CountScan(const std::vector<DocValue>& eq_prefix,
                                  const DocValue* range_lo,
                                  const DocValue* range_hi) const {
  ScanBounds b = BoundsFor(eq_prefix, range_lo, range_hi);
  return static_cast<int64_t>(std::distance(b.first, b.last));
}

SecondaryIndex::ScanEstimate SecondaryIndex::EstimateScan(
    const std::vector<DocValue>& eq_prefix, const DocValue* range_lo,
    const DocValue* range_hi, bool force_exact) const {
  ScanEstimate out;
  ScanBounds b = BoundsFor(eq_prefix, range_lo, range_hi);
  if (b.empty) return out;
  // Bounded exact pass: a selective scan (the common case for point
  // predicates) gets a precise answer for a constant-bounded walk.
  int64_t walked = 0;
  auto it = b.first;
  while (it != b.last && walked <= kExactCountThreshold) {
    ++it;
    ++walked;
  }
  if (it == b.last) {
    out.rows = static_cast<double>(walked);
    out.exact = true;
    out.entries_counted = walked;
    return out;
  }
  if (force_exact) {
    const int64_t n = walked + static_cast<int64_t>(std::distance(it, b.last));
    out.rows = static_cast<double>(n);
    out.exact = true;
    out.entries_counted = n;
    return out;
  }
  IndexKey lo_k, hi_k;
  const IndexKey* lo_p = nullptr;
  const IndexKey* hi_p = nullptr;
  if (range_lo != nullptr) {
    lo_k = IndexKey::FromValue(*range_lo);
    lo_p = &lo_k;
  }
  if (range_hi != nullptr) {
    hi_k = IndexKey::FromValue(*range_hi);
    hi_p = &hi_k;
  }
  const IndexKey lead =
      eq_prefix.empty() ? IndexKey() : IndexKey::FromValue(eq_prefix[0]);
  const double est = stats_.EstimateScan(eq_prefix.size(), lead, lo_p, hi_p);
  // The walk proved at least walked + 1 rows exist; the estimate can
  // never contradict that, nor exceed the index.
  out.rows = std::min(std::max(est, static_cast<double>(walked + 1)),
                      static_cast<double>(entry_count()));
  out.exact = false;
  out.entries_counted = walked;
  return out;
}

}  // namespace dt::storage
