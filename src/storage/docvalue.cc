#include "storage/docvalue.h"

#include <cmath>

#include "common/strutil.h"

namespace dt::storage {

const char* DocTypeName(DocType t) {
  switch (t) {
    case DocType::kNull:
      return "null";
    case DocType::kBool:
      return "bool";
    case DocType::kInt64:
      return "int64";
    case DocType::kDouble:
      return "double";
    case DocType::kString:
      return "string";
    case DocType::kArray:
      return "array";
    case DocType::kObject:
      return "object";
  }
  return "?";
}

const DocValue* DocValue::Find(std::string_view key) const {
  if (!is_object()) return nullptr;
  for (const auto& [k, v] : *fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const DocValue* DocValue::FindPath(std::string_view dotted_path) const {
  const DocValue* cur = this;
  size_t start = 0;
  while (start <= dotted_path.size()) {
    size_t dot = dotted_path.find('.', start);
    std::string_view seg = (dot == std::string_view::npos)
                               ? dotted_path.substr(start)
                               : dotted_path.substr(start, dot - start);
    if (seg.empty()) return nullptr;
    if (cur->is_object()) {
      cur = cur->Find(seg);
    } else if (cur->is_array() && IsDigits(seg)) {
      int64_t idx = 0;
      if (!ParseInt64(seg, &idx)) return nullptr;
      const auto& items = cur->array_items();
      if (idx < 0 || static_cast<size_t>(idx) >= items.size()) return nullptr;
      cur = &items[static_cast<size_t>(idx)];
    } else {
      return nullptr;
    }
    if (cur == nullptr) return nullptr;
    if (dot == std::string_view::npos) break;
    start = dot + 1;
  }
  return cur;
}

void DocValue::Set(std::string_view key, DocValue value) {
  if (!is_object()) return;
  for (auto& [k, v] : *fields_) {
    if (k == key) {
      v = std::move(value);
      return;
    }
  }
  fields_->emplace_back(std::string(key), std::move(value));
}

int64_t DocValue::ElementValueSize() const {
  switch (type_) {
    case DocType::kNull:
      return 0;
    case DocType::kBool:
      return 1;
    case DocType::kInt64:
    case DocType::kDouble:
      return 8;
    case DocType::kString:
      // 4-byte length prefix + bytes + NUL
      return 4 + static_cast<int64_t>(str_.size()) + 1;
    case DocType::kArray: {
      int64_t sz = 4 + 1;  // length prefix + terminator
      int idx = 0;
      for (const auto& item : *array_) {
        // type byte + decimal index key + NUL
        sz += 1 + static_cast<int64_t>(std::to_string(idx).size()) + 1 +
              item.ElementValueSize();
        ++idx;
      }
      return sz;
    }
    case DocType::kObject: {
      int64_t sz = 4 + 1;
      for (const auto& [k, v] : *fields_) {
        sz += 1 + static_cast<int64_t>(k.size()) + 1 + v.ElementValueSize();
      }
      return sz;
    }
  }
  return 0;
}

int64_t DocValue::SerializedSize() const { return ElementValueSize(); }

namespace {
void AppendEscaped(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        out->append("\\\"");
        break;
      case '\\':
        out->append("\\\\");
        break;
      case '\n':
        out->append("\\n");
        break;
      case '\t':
        out->append("\\t");
        break;
      case '\r':
        out->append("\\r");
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out->append(buf);
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}
}  // namespace

void DocValue::AppendJson(std::string* out) const {
  switch (type_) {
    case DocType::kNull:
      out->append("null");
      break;
    case DocType::kBool:
      out->append(bool_ ? "true" : "false");
      break;
    case DocType::kInt64:
      out->append(std::to_string(int_));
      break;
    case DocType::kDouble:
      out->append(FormatDouble(double_, 10));
      break;
    case DocType::kString:
      AppendEscaped(str_, out);
      break;
    case DocType::kArray: {
      out->push_back('[');
      bool first = true;
      for (const auto& item : *array_) {
        if (!first) out->push_back(',');
        first = false;
        item.AppendJson(out);
      }
      out->push_back(']');
      break;
    }
    case DocType::kObject: {
      out->push_back('{');
      bool first = true;
      for (const auto& [k, v] : *fields_) {
        if (!first) out->push_back(',');
        first = false;
        AppendEscaped(k, out);
        out->push_back(':');
        v.AppendJson(out);
      }
      out->push_back('}');
      break;
    }
  }
}

std::string DocValue::ToJson() const {
  std::string out;
  AppendJson(&out);
  return out;
}

bool DocValue::Equals(const DocValue& other) const {
  if (type_ != other.type_) return false;
  switch (type_) {
    case DocType::kNull:
      return true;
    case DocType::kBool:
      return bool_ == other.bool_;
    case DocType::kInt64:
      return int_ == other.int_;
    case DocType::kDouble:
      return double_ == other.double_;
    case DocType::kString:
      return str_ == other.str_;
    case DocType::kArray: {
      if (array_->size() != other.array_->size()) return false;
      for (size_t i = 0; i < array_->size(); ++i) {
        if (!(*array_)[i].Equals((*other.array_)[i])) return false;
      }
      return true;
    }
    case DocType::kObject: {
      if (fields_->size() != other.fields_->size()) return false;
      for (size_t i = 0; i < fields_->size(); ++i) {
        if ((*fields_)[i].first != (*other.fields_)[i].first) return false;
        if (!(*fields_)[i].second.Equals((*other.fields_)[i].second))
          return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace dt::storage
