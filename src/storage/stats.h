/// \file stats.h
/// \brief Incremental cardinality statistics for secondary indexes.
///
/// Each `SecondaryIndex` owns an `IndexStats`: an equi-depth histogram
/// over the leading key component plus one KMV distinct-count sketch
/// per component. The sketches are maintained incrementally on every
/// `Insert`/`Remove`; the histogram is rebuilt wholesale whenever the
/// mutation count since the last build crosses half the rows it was
/// built over (amortized O(1) per write). Because the stats live
/// inside the index object — the copy-on-write granule of
/// `StorageVersion` — every published version carries a stats view
/// consistent with its entries, and readers pin it with their
/// `CollectionView` at zero extra synchronization.
///
/// Everything here is deterministic: no clocks, no randomness, and the
/// rebuild trigger is a pure function of persisted state. That is what
/// lets snapshots round-trip byte-identically and crash recovery
/// replay to the same stats the uninterrupted writer would hold.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/codec.h"
#include "storage/index_key.h"

namespace dt::storage {

/// \brief KMV (k-minimum-values) distinct-count sketch with
/// multiplicity counts, bounded to the `k` smallest key hashes.
///
/// While fewer than `k` distinct hashes have ever been seen the sketch
/// is an exact distinct counter. Once saturated, the estimate is the
/// classic (k-1)/max_hash_fraction KMV estimator with relative error
/// ~1/sqrt(k-2) (~7% at k=192). `Remove` decrements the multiplicity
/// of a tracked hash; removals of hashes evicted while saturated are
/// necessarily unobserved, degrading the estimate by at most the
/// removed fraction until the next histogram rebuild reconstructs the
/// sketch from scratch.
class DistinctSketch {
 public:
  static constexpr size_t kDefaultK = 192;

  explicit DistinctSketch(size_t k = kDefaultK) : k_(k) {}

  void Add(uint64_t hash);
  void Remove(uint64_t hash);

  /// Union with `other` (same-stream semantics: multiplicities of a
  /// shared hash add). The result keeps the k smallest hashes of the
  /// union and is saturated if either input was or the union overflows.
  void Merge(const DistinctSketch& other);

  /// Estimated number of distinct values; exact while `!saturated()`.
  double Estimate() const;

  bool saturated() const { return saturated_; }
  size_t size() const { return kmin_.size(); }
  size_t k() const { return k_; }

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(BinaryReader* r, DistinctSketch* out);

  bool operator==(const DistinctSketch& other) const {
    return k_ == other.k_ && saturated_ == other.saturated_ &&
           kmin_ == other.kmin_;
  }

 private:
  size_t k_;
  bool saturated_ = false;  ///< ever evicted a hash: estimate, not exact
  std::map<uint64_t, int64_t> kmin_;  ///< k smallest hashes -> multiplicity
};

/// One equi-depth histogram bucket: the inclusive upper-bound key, the
/// number of index rows in the bucket and the number of distinct
/// leading keys among them. A run of one key larger than the target
/// depth becomes a singleton bucket (`distinct == 1`), so heavy
/// hitters are estimated from their own exact build-time count.
struct HistogramBucket {
  IndexKey upper;
  int64_t rows = 0;
  int64_t distinct = 0;
};

/// \brief Equi-depth histogram over the leading key component of an
/// index, built from one ordered walk of its entries.
class KeyHistogram {
 public:
  static constexpr int kTargetBuckets = 64;

  /// Feed `(key, run_length)` pairs in ascending key order — exactly
  /// what `SecondaryIndex::VisitKeyCounts` yields — then `Finish`.
  class Builder {
   public:
    explicit Builder(int64_t total_rows, int target_buckets = kTargetBuckets);
    void Add(const IndexKey& key, int64_t rows);
    KeyHistogram Finish();

   private:
    int64_t depth_;  ///< target rows per bucket
    std::vector<HistogramBucket> buckets_;
    int64_t total_rows_ = 0;
    int64_t total_distinct_ = 0;
  };

  /// Estimated rows whose leading key equals `key`: the containing
  /// bucket's rows/distinct (exact for singleton buckets). Keys past
  /// the last bucket (inserted after the build) estimate at the global
  /// average depth.
  double EstimateEq(const IndexKey& key) const;

  /// Estimated rows with leading key in [lo, hi] (either side null for
  /// half-open). Fully covered buckets contribute their rows; a
  /// partially covered bucket contributes linearly interpolated rows
  /// for numeric bounds and half its rows otherwise.
  double EstimateRange(const IndexKey* lo, const IndexKey* hi) const;

  int64_t total_rows() const { return total_rows_; }
  int64_t total_distinct() const { return total_distinct_; }
  const std::vector<HistogramBucket>& buckets() const { return buckets_; }
  bool empty() const { return buckets_.empty(); }

  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(BinaryReader* r, KeyHistogram* out);

  bool operator==(const KeyHistogram& other) const;

 private:
  /// Index of the bucket covering `key` (buckets partition the key
  /// space at their upper bounds), or buckets_.size() when past the
  /// last upper bound.
  size_t BucketFor(const IndexKey& key) const;

  std::vector<HistogramBucket> buckets_;
  int64_t total_rows_ = 0;
  int64_t total_distinct_ = 0;
};

/// \brief The per-index statistics bundle: leading-component histogram
/// + per-component distinct sketches + the counters that drive the
/// deterministic rebuild schedule. Owned by `SecondaryIndex`, cloned
/// with it on copy-on-write publication.
class IndexStats {
 public:
  IndexStats() = default;
  explicit IndexStats(int width);

  /// Incremental maintenance, called by the index on every mutation.
  void OnInsert(const CompositeKey& key);
  void OnRemove(const CompositeKey& key);

  /// True when accumulated drift warrants a histogram rebuild:
  /// mutations since the last build exceed half the rows it was built
  /// over, plus a constant so tiny indexes don't rebuild every write.
  /// Deterministic in (rows_at_build_, mutations_since_build_) only.
  bool NeedsRebuild() const {
    return 2 * mutations_since_build_ >= rows_at_build_ + 64;
  }

  /// \brief One-pass rebuild: stream every key of the index in
  /// ascending order through `Add`, then `Finish` installs the new
  /// histogram and freshly counted sketches and zeroes the mutation
  /// counter.
  class Rebuilder {
   public:
    Rebuilder(IndexStats* stats, int64_t row_count);
    void Add(const CompositeKey& key);
    void Finish();

   private:
    IndexStats* stats_;
    int64_t rows_;
    KeyHistogram::Builder hist_;
    std::vector<DistinctSketch> sketches_;
    bool have_run_ = false;
    IndexKey run_key_;
    int64_t run_rows_ = 0;
  };

  /// Estimated rows for a `ScanPrefix` with `eq_width` leading
  /// equality components (component 0's key passed as `lead`, deeper
  /// ones estimated at 1/distinct under independence) and an optional
  /// [lo, hi] range on the next component. The result is clamped to
  /// [0, total_rows].
  double EstimateScan(size_t eq_width, const IndexKey& lead,
                      const IndexKey* range_lo, const IndexKey* range_hi) const;

  int64_t total_rows() const { return total_rows_; }
  int64_t mutations_since_build() const { return mutations_since_build_; }
  int64_t rows_at_build() const { return rows_at_build_; }
  const KeyHistogram& histogram() const { return hist_; }
  const std::vector<DistinctSketch>& sketches() const { return sketches_; }

  /// Estimated distinct leading keys (CountByField/TopKByCount group
  /// cardinality without a key walk).
  double EstimateDistinct(size_t component) const;

  /// Full-state serialization — everything that influences future
  /// evolution (counters included), so an adopted snapshot record
  /// continues exactly where the writer that saved it left off.
  void EncodeTo(std::string* out) const;
  static Status DecodeFrom(BinaryReader* r, IndexStats* out);

  bool operator==(const IndexStats& other) const;

 private:
  int width_ = 0;
  int64_t total_rows_ = 0;
  int64_t rows_at_build_ = 0;
  int64_t mutations_since_build_ = 0;
  KeyHistogram hist_;
  std::vector<DistinctSketch> sketches_;  ///< one per key component
};

}  // namespace dt::storage
