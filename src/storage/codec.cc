#include "storage/codec.h"

#include <algorithm>
#include <limits>

namespace dt::storage {

namespace {

constexpr uint64_t kMaxU32 = std::numeric_limits<uint32_t>::max();

Status CorruptAt(size_t offset, const std::string& what) {
  return Status::Corruption(what + " at offset " + std::to_string(offset));
}

/// The wire format frames strings, keys and container payloads with
/// u32 lengths; anything larger must fail the encode (silent mod-2^32
/// truncation would write a file the decoder refuses).
Status PutCheckedString(BinaryWriter* w, const std::string& s) {
  if (s.size() > kMaxU32) {
    return Status::OutOfRange("string of " + std::to_string(s.size()) +
                              " bytes exceeds the u32 length prefix");
  }
  w->PutString(s);
  return Status::OK();
}

Status EncodeValue(const DocValue& v, BinaryWriter* w, int depth) {
  if (depth > kMaxDecodeDepth) {
    return Status::OutOfRange(
        "nesting deeper than " + std::to_string(kMaxDecodeDepth) +
        " cannot be encoded (the decoder would reject it)");
  }
  w->PutU8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case DocType::kNull:
      break;
    case DocType::kBool:
      w->PutU8(v.bool_value() ? 1 : 0);
      break;
    case DocType::kInt64:
      w->PutI64(v.int_value());
      break;
    case DocType::kDouble:
      w->PutDouble(v.double_value());
      break;
    case DocType::kString:
      DT_RETURN_NOT_OK(PutCheckedString(w, v.string_value()));
      break;
    case DocType::kArray: {
      if (v.array_items().size() > kMaxU32) {
        return Status::OutOfRange("array element count exceeds u32");
      }
      size_t prefix = w->BeginLengthPrefix();
      w->PutU32(static_cast<uint32_t>(v.array_items().size()));
      for (const DocValue& item : v.array_items()) {
        DT_RETURN_NOT_OK(EncodeValue(item, w, depth + 1));
      }
      if (w->size() - prefix - sizeof(uint32_t) > kMaxU32) {
        return Status::OutOfRange("array payload exceeds the u32 prefix");
      }
      w->EndLengthPrefix(prefix);
      break;
    }
    case DocType::kObject: {
      if (v.fields().size() > kMaxU32) {
        return Status::OutOfRange("object field count exceeds u32");
      }
      size_t prefix = w->BeginLengthPrefix();
      w->PutU32(static_cast<uint32_t>(v.fields().size()));
      for (const auto& [key, value] : v.fields()) {
        DT_RETURN_NOT_OK(PutCheckedString(w, key));
        DT_RETURN_NOT_OK(EncodeValue(value, w, depth + 1));
      }
      if (w->size() - prefix - sizeof(uint32_t) > kMaxU32) {
        return Status::OutOfRange("object payload exceeds the u32 prefix");
      }
      w->EndLengthPrefix(prefix);
      break;
    }
  }
  return Status::OK();
}

Status DecodeValue(BinaryReader* r, int depth, DocValue* out);

/// Reads a container's length prefix and element count, validating that
/// the declared payload actually fits in the remaining buffer (a lying
/// length would otherwise let a later read appear in-bounds) and that
/// the count cannot exceed the payload (each element costs >= 1 byte).
Status ReadContainerHeader(BinaryReader* r, uint32_t* payload_len,
                           uint32_t* count, size_t* end_offset) {
  size_t at = r->offset();
  DT_RETURN_NOT_OK(r->ReadU32(payload_len));
  if (*payload_len > r->remaining()) {
    return CorruptAt(at, "container length " + std::to_string(*payload_len) +
                             " exceeds remaining " +
                             std::to_string(r->remaining()));
  }
  *end_offset = r->offset() + *payload_len;
  DT_RETURN_NOT_OK(r->ReadU32(count));
  if (static_cast<uint64_t>(*count) + sizeof(uint32_t) >
      static_cast<uint64_t>(*payload_len)) {
    return CorruptAt(at, "container count " + std::to_string(*count) +
                             " impossible for payload of " +
                             std::to_string(*payload_len) + " bytes");
  }
  return Status::OK();
}

Status DecodeValue(BinaryReader* r, int depth, DocValue* out) {
  if (depth > kMaxDecodeDepth) {
    return CorruptAt(r->offset(), "nesting deeper than " +
                                      std::to_string(kMaxDecodeDepth));
  }
  size_t at = r->offset();
  uint8_t tag = 0;
  DT_RETURN_NOT_OK(r->ReadU8(&tag));
  switch (static_cast<DocType>(tag)) {
    case DocType::kNull:
      *out = DocValue::Null();
      return Status::OK();
    case DocType::kBool: {
      uint8_t b = 0;
      DT_RETURN_NOT_OK(r->ReadU8(&b));
      if (b > 1) return CorruptAt(at, "bool byte " + std::to_string(b));
      *out = DocValue::Bool(b == 1);
      return Status::OK();
    }
    case DocType::kInt64: {
      int64_t i = 0;
      DT_RETURN_NOT_OK(r->ReadI64(&i));
      *out = DocValue::Int(i);
      return Status::OK();
    }
    case DocType::kDouble: {
      double d = 0;
      DT_RETURN_NOT_OK(r->ReadDouble(&d));
      *out = DocValue::Double(d);
      return Status::OK();
    }
    case DocType::kString: {
      std::string s;
      DT_RETURN_NOT_OK(r->ReadString(&s));
      *out = DocValue::Str(std::move(s));
      return Status::OK();
    }
    case DocType::kArray: {
      uint32_t payload_len = 0, count = 0;
      size_t end = 0;
      DT_RETURN_NOT_OK(ReadContainerHeader(r, &payload_len, &count, &end));
      DocValue arr = DocValue::Array();
      // Clamped: a crafted count passing the 1-byte-per-element header
      // check could otherwise force an ~88x-amplified allocation before
      // any element decode fails. Past the clamp, amortized growth is
      // paid only as real elements actually decode.
      arr.mutable_array().reserve(std::min<uint32_t>(count, 1u << 12));
      for (uint32_t i = 0; i < count; ++i) {
        DocValue item;
        DT_RETURN_NOT_OK(DecodeValue(r, depth + 1, &item));
        arr.Push(std::move(item));
      }
      if (r->offset() != end) {
        return CorruptAt(at, "array payload length mismatch (declared end " +
                                 std::to_string(end) + ", decoded to " +
                                 std::to_string(r->offset()) + ")");
      }
      *out = std::move(arr);
      return Status::OK();
    }
    case DocType::kObject: {
      uint32_t payload_len = 0, count = 0;
      size_t end = 0;
      DT_RETURN_NOT_OK(ReadContainerHeader(r, &payload_len, &count, &end));
      DocValue obj = DocValue::Object();
      // Clamped for the same reason as the array case above.
      obj.mutable_fields().reserve(std::min<uint32_t>(count, 1u << 12));
      for (uint32_t i = 0; i < count; ++i) {
        std::string key;
        DT_RETURN_NOT_OK(r->ReadString(&key));
        DocValue value;
        DT_RETURN_NOT_OK(DecodeValue(r, depth + 1, &value));
        obj.Add(std::move(key), std::move(value));
      }
      if (r->offset() != end) {
        return CorruptAt(at, "object payload length mismatch (declared end " +
                                 std::to_string(end) + ", decoded to " +
                                 std::to_string(r->offset()) + ")");
      }
      *out = std::move(obj);
      return Status::OK();
    }
  }
  return CorruptAt(at, "unknown type tag " + std::to_string(tag));
}

}  // namespace

Status BinaryReader::ReadString(std::string* out) {
  size_t at = pos_;
  uint32_t len = 0;
  DT_RETURN_NOT_OK(ReadU32(&len));
  if (len > remaining()) {
    pos_ = at;
    return Status::Corruption("string length " + std::to_string(len) +
                              " exceeds remaining " +
                              std::to_string(remaining()) + " at offset " +
                              std::to_string(at));
  }
  out->assign(reinterpret_cast<const char*>(data_ + pos_), len);
  pos_ += len;
  return Status::OK();
}

Status EncodeDocValue(const DocValue& v, std::string* out) {
  BinaryWriter w(out);
  return EncodeValue(v, &w, 0);
}

Status DecodeDocValue(BinaryReader* reader, DocValue* out) {
  return DecodeValue(reader, 0, out);
}

Status DecodeDocValue(std::string_view buf, DocValue* out) {
  BinaryReader r(buf);
  DT_RETURN_NOT_OK(DecodeValue(&r, 0, out));
  if (r.remaining() != 0) {
    return CorruptAt(r.offset(), std::to_string(r.remaining()) +
                                     " trailing bytes after value");
  }
  return Status::OK();
}

void AppendCodecHeader(std::string* out) {
  BinaryWriter w(out);
  w.PutU32(kCodecMagic);
  w.PutU16(kCodecVersion);
  w.PutU16(0);  // flags, reserved
}

Status ReadCodecHeader(BinaryReader* reader, uint16_t* version_out) {
  uint32_t magic = 0;
  uint16_t version = 0, flags = 0;
  DT_RETURN_NOT_OK(reader->ReadU32(&magic));
  if (magic != kCodecMagic) {
    return Status::Corruption("bad magic: not a dt binary stream");
  }
  DT_RETURN_NOT_OK(reader->ReadU16(&version));
  if (version < kMinCodecVersion || version > kCodecVersion) {
    return Status::Corruption(
        "unsupported codec version " + std::to_string(version) +
        " (this build reads " + std::to_string(kMinCodecVersion) + ".." +
        std::to_string(kCodecVersion) + ")");
  }
  if (version_out != nullptr) *version_out = version;
  DT_RETURN_NOT_OK(reader->ReadU16(&flags));
  if (flags != 0) {
    return Status::Corruption("unknown codec flags " + std::to_string(flags));
  }
  return Status::OK();
}

}  // namespace dt::storage
