#include "storage/recovery.h"

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <set>
#include <utility>

#include "common/logging.h"
#include "storage/codec.h"

namespace dt::storage {

namespace {

/// MANIFEST kind byte (store snapshots are 1, collections 2).
constexpr uint8_t kKindManifest = 3;
constexpr const char* kManifestName = "MANIFEST";

std::string JoinPath(const std::string& dir, const std::string& name) {
  return dir.empty() ? name : dir + "/" + name;
}

std::string SegmentName(uint64_t seq) {
  return "wal-" + std::to_string(seq) + ".log";
}

/// True for "wal-<digits>.log"; fills the sequence number.
bool ParseSegmentName(const std::string& name, uint64_t* seq) {
  if (name.size() < 9 || name.compare(0, 4, "wal-") != 0 ||
      name.compare(name.size() - 4, 4, ".log") != 0) {
    return false;
  }
  uint64_t v = 0;
  size_t digits = 0;
  for (size_t i = 4; i + 4 < name.size(); ++i) {
    char c = name[i];
    if (c < '0' || c > '9') return false;
    if (v > (1ull << 60)) return false;
    v = v * 10 + static_cast<uint64_t>(c - '0');
    ++digits;
  }
  if (digits == 0) return false;
  *seq = v;
  return true;
}

/// True for "coll-*.dtb" (a checkpoint snapshot this manager wrote).
bool IsCheckpointName(const std::string& name) {
  return name.size() > 9 && name.compare(0, 5, "coll-") == 0 &&
         name.compare(name.size() - 4, 4, ".dtb") == 0;
}

/// Directory entries of `dir` (regular names only; empty on error —
/// recovery treats an unreadable directory as empty and fails later
/// on the file that matters).
std::vector<std::string> ListDir(const std::string& dir) {
  std::vector<std::string> out;
  DIR* d = ::opendir(dir.empty() ? "." : dir.c_str());
  if (d == nullptr) return out;
  while (struct dirent* e = ::readdir(d)) {
    std::string name = e->d_name;
    if (name != "." && name != "..") out.push_back(std::move(name));
  }
  ::closedir(d);
  return out;
}

/// Encodes the WAL payload for a committed mutation straight from the
/// observer event — same byte layout as `EncodeWalRecord`, minus the
/// DocValue copy a `WalRecord` would force.
Status EncodeMutationPayload(const std::string& collection,
                             uint64_t incarnation, const MutationEvent& ev,
                             std::string* payload) {
  BinaryWriter w(payload);
  switch (ev.op) {
    case MutationEvent::Op::kInsert:
      w.PutU8(static_cast<uint8_t>(WalRecord::Op::kInsert));
      break;
    case MutationEvent::Op::kUpdate:
      w.PutU8(static_cast<uint8_t>(WalRecord::Op::kUpdate));
      break;
    case MutationEvent::Op::kRemove:
      w.PutU8(static_cast<uint8_t>(WalRecord::Op::kRemove));
      break;
    case MutationEvent::Op::kCreateIndex:
      w.PutU8(static_cast<uint8_t>(WalRecord::Op::kCreateIndex));
      break;
  }
  w.PutString(collection);
  w.PutU64(incarnation);
  w.PutU64(ev.epoch);
  switch (ev.op) {
    case MutationEvent::Op::kInsert:
    case MutationEvent::Op::kUpdate:
      w.PutU64(ev.id);
      DT_RETURN_NOT_OK(EncodeDocValue(*ev.doc, payload));
      break;
    case MutationEvent::Op::kRemove:
      w.PutU64(ev.id);
      break;
    case MutationEvent::Op::kCreateIndex:
      w.PutU32(static_cast<uint32_t>(ev.index_paths->size()));
      for (const std::string& p : *ev.index_paths) w.PutString(p);
      break;
  }
  return Status::OK();
}

}  // namespace

WalManager::WalManager(DurabilityOptions opts, std::string db_name)
    : opts_(std::move(opts)), db_name_(std::move(db_name)) {}

Result<std::unique_ptr<WalManager>> WalManager::Open(
    const DurabilityOptions& opts, const std::string& db_name,
    std::unique_ptr<DocumentStore>* recovered) {
  recovered->reset();
  if (opts.dir.empty() || opts.durability == Durability::kNone) {
    return Status::InvalidArgument(
        "durability is disabled (empty dir or mode none); do not open a "
        "WalManager");
  }
  auto mgr =
      std::unique_ptr<WalManager>(new WalManager(opts, db_name));
  DT_RETURN_NOT_OK(mgr->Recover(recovered));
  mgr->StartCheckpointThread();
  return mgr;
}

WalManager::~WalManager() {
  {
    std::lock_guard<std::mutex> lock(ckpt_thread_mu_);
    stop_ = true;
  }
  ckpt_cv_.notify_all();
  if (ckpt_thread_.joinable()) ckpt_thread_.join();
  DetachAll();
  // Final durability point (matters for kAsync); failures here have
  // no caller to report to.
  Status st = Flush();
  if (!st.ok()) {
    DT_LOG(Error) << "WAL flush on shutdown failed: " << st.ToString();
  }
}

// ---- manifest ----------------------------------------------------------

Status WalManager::WriteManifestLocked() {
  std::string buf;
  AppendCodecHeader(&buf);
  BinaryWriter w(&buf);
  w.PutU8(kKindManifest);
  w.PutString(db_name_);
  w.PutU64(manifest_floor_);
  w.PutU32(static_cast<uint32_t>(manifest_.size()));
  for (const auto& [name, e] : manifest_) {
    w.PutString(name);
    w.PutString(e.file);
    w.PutU64(e.incarnation);
    w.PutU64(e.epoch);
  }
  return AtomicWriteFile(JoinPath(opts_.dir, kManifestName), buf);
}

Status WalManager::ReadManifestIfPresent(bool* found) {
  *found = false;
  const std::string path = JoinPath(opts_.dir, kManifestName);
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return Status::OK();  // fresh dir
  std::string buf;
  DT_RETURN_NOT_OK(ReadFileToString(path, &buf));
  BinaryReader r(buf);
  DT_RETURN_NOT_OK(ReadCodecHeader(&r));
  uint8_t kind = 0;
  DT_RETURN_NOT_OK(r.ReadU8(&kind));
  if (kind != kKindManifest) {
    return Status::Corruption("not a durability MANIFEST (kind " +
                              std::to_string(kind) + ")");
  }
  DT_RETURN_NOT_OK(r.ReadString(&db_name_));
  DT_RETURN_NOT_OK(r.ReadU64(&manifest_floor_));
  uint32_t count = 0;
  DT_RETURN_NOT_OK(r.ReadU32(&count));
  // Each entry costs >= 2 string length prefixes + 16 bytes.
  if (count > r.remaining() / 24) {
    return Status::Corruption("implausible MANIFEST entry count " +
                              std::to_string(count));
  }
  for (uint32_t i = 0; i < count; ++i) {
    std::string name;
    ManifestEntry e;
    DT_RETURN_NOT_OK(r.ReadString(&name));
    DT_RETURN_NOT_OK(r.ReadString(&e.file));
    DT_RETURN_NOT_OK(r.ReadU64(&e.incarnation));
    DT_RETURN_NOT_OK(r.ReadU64(&e.epoch));
    // A checkpoint filename is always a plain name inside the
    // durability dir; a path component means the file is bad.
    if (e.file.empty() || e.file.find('/') != std::string::npos) {
      return Status::Corruption("implausible checkpoint filename '" +
                                e.file + "' in MANIFEST");
    }
    manifest_[name] = std::move(e);
  }
  if (r.remaining() != 0) {
    return Status::Corruption("trailing bytes in MANIFEST");
  }
  *found = true;
  return Status::OK();
}

// ---- recovery ----------------------------------------------------------

Status WalManager::Recover(std::unique_ptr<DocumentStore>* recovered) {
  std::lock_guard<std::mutex> lock(state_mu_);
  if (::mkdir(opts_.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IOError("cannot create durability dir " + opts_.dir +
                           ": " + std::string(strerror(errno)));
  }
  // A saver (checkpoint or manifest write) that died mid-flight leaves
  // temp files behind; they are unreferenced garbage by construction
  // (the rename never landed).
  SweepStaleTempFiles(opts_.dir);

  bool have_manifest = false;
  DT_RETURN_NOT_OK(ReadManifestIfPresent(&have_manifest));

  std::vector<uint64_t> segs;
  for (const std::string& name : ListDir(opts_.dir)) {
    uint64_t s = 0;
    if (ParseSegmentName(name, &s)) segs.push_back(s);
  }
  std::sort(segs.begin(), segs.end());
  const bool have_state = have_manifest || !segs.empty();

  auto store = std::make_unique<DocumentStore>(db_name_);
  for (const auto& [name, e] : manifest_) {
    DT_ASSIGN_OR_RETURN(
        std::unique_ptr<Collection> coll,
        LoadCollectionSnapshot(JoinPath(opts_.dir, e.file),
                               opts_.snapshot_options));
    if (coll->incarnation() != e.incarnation ||
        coll->mutation_epoch() != e.epoch) {
      return Status::Corruption("checkpoint " + e.file +
                                " disagrees with its MANIFEST entry for " +
                                name);
    }
    Status st = store->AdoptCollection(name, std::move(coll));
    if (!st.ok()) {
      return Status::Corruption("invalid MANIFEST: " + st.ToString());
    }
    known_lineage_[name] = e.incarnation;
  }

  // Replay every segment at or past the floor, in sequence order.
  // Records below a collection's current epoch are the prefix its
  // checkpoint already folded in; the one exactly above applies; a
  // gap means un-synced log bytes were lost (power loss under
  // kAsync) — replay stops at the last consistent prefix.
  bool stopped = false;
  for (uint64_t s : segs) {
    if (s < manifest_floor_) continue;  // folded; pruned next checkpoint
    std::vector<WalRecord> recs;
    WalReadStats rstats;
    Status read = ReadWalSegmentFile(JoinPath(opts_.dir, SegmentName(s)),
                                     &recs, &rstats);
    if (!read.ok()) {
      // A bad *file header* is normally corruption — but the newest
      // segment is the one a crash can cut short mid-header (the
      // header write precedes its fsync), so there it is just a torn
      // tail holding zero records.
      if (s != segs.back()) return read;
      std::string img;
      recovered_torn_bytes_ +=
          ReadFileToString(JoinPath(opts_.dir, SegmentName(s)), &img).ok()
              ? img.size()
              : 0;
      DT_LOG(Warning) << "WAL segment " << SegmentName(s)
                      << " has a torn file header; treating as empty";
      ++recovered_segments_;
      continue;
    }
    ++recovered_segments_;
    recovered_torn_bytes_ += rstats.torn_bytes;
    if (stopped) {
      recovered_skipped_ += recs.size();
      continue;
    }
    for (size_t i = 0; i < recs.size(); ++i) {
      WalRecord& rec = recs[i];
      if (rec.op == WalRecord::Op::kCreateCollection) {
        if (store->GetCollection(rec.collection).ok()) {
          // The checkpoint already captured this collection (or a
          // successor lineage took the name); the record is stale.
          ++recovered_skipped_;
          continue;
        }
        CollectionOptions copts;
        copts.num_shards = static_cast<int>(rec.num_shards);
        copts.initial_extent_size_bytes =
            static_cast<int64_t>(rec.initial_extent_size_bytes);
        copts.max_extent_size_bytes =
            static_cast<int64_t>(rec.max_extent_size_bytes);
        auto coll = std::make_unique<Collection>(rec.ns, copts);
        coll->RestoreLineage(rec.incarnation, 0);
        Status st = store->AdoptCollection(rec.collection, std::move(coll));
        if (!st.ok()) {
          return Status::Corruption("WAL create-collection replay: " +
                                    st.ToString());
        }
        known_lineage_[rec.collection] = rec.incarnation;
        ++recovered_records_;
        continue;
      }
      if (rec.op == WalRecord::Op::kDropCollection) {
        auto res = store->GetCollection(rec.collection);
        if (!res.ok() || res.ValueOrDie()->incarnation() != rec.incarnation) {
          ++recovered_skipped_;
          continue;
        }
        (void)store->DropCollection(rec.collection);
        known_lineage_.erase(rec.collection);
        ++recovered_records_;
        continue;
      }
      // Document/index mutations.
      auto res = store->GetCollection(rec.collection);
      if (!res.ok() ||
          res.ValueOrDie()->incarnation() != rec.incarnation) {
        ++recovered_skipped_;  // stale lineage (dropped/re-created)
        continue;
      }
      Collection* coll = res.ValueOrDie();
      const uint64_t cur = coll->mutation_epoch();
      if (rec.epoch <= cur) {
        ++recovered_skipped_;  // already inside the checkpoint
        continue;
      }
      if (rec.epoch != cur + 1) {
        recovery_gap_ = true;
        stopped = true;
        recovered_skipped_ += recs.size() - i;
        DT_LOG(Warning) << "WAL replay stopped at an epoch gap in "
                        << rec.collection << " (have " << cur << ", record "
                        << rec.epoch << "); recovering the prefix";
        break;
      }
      Status st;
      switch (rec.op) {
        case WalRecord::Op::kInsert:
          st = coll->RestoreDocument(rec.id, std::move(rec.doc));
          break;
        case WalRecord::Op::kUpdate:
          st = coll->Update(rec.id, std::move(rec.doc));
          break;
        case WalRecord::Op::kRemove:
          st = coll->Remove(rec.id);
          break;
        case WalRecord::Op::kCreateIndex:
          st = coll->CreateIndex(rec.index_paths);
          break;
        default:
          st = Status::Corruption("unexpected WAL op");
          break;
      }
      if (!st.ok() || coll->mutation_epoch() != rec.epoch) {
        // A checksummed record that does not apply means checkpoint
        // and log disagree — that is corruption, not a torn tail.
        return Status::Corruption(
            "WAL record (epoch " + std::to_string(rec.epoch) + " of " +
            rec.collection + ") failed to apply: " +
            (st.ok() ? "epoch mismatch after apply" : st.ToString()));
      }
      ++recovered_records_;
    }
  }

  // Open the live segment past everything seen.
  seq_ = std::max<uint64_t>(segs.empty() ? 0 : segs.back() + 1,
                            std::max<uint64_t>(manifest_floor_, 1));
  DT_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> w,
      WalWriter::Create(JoinPath(opts_.dir, SegmentName(seq_)),
                        opts_.durability));
  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    writer_ = std::move(w);
  }
  if (!have_manifest) {
    // Baseline manifest: replay next time must still start at the
    // oldest surviving segment.
    manifest_floor_ = segs.empty() ? seq_ : std::min(segs.front(), seq_);
    DT_RETURN_NOT_OK(WriteManifestLocked());
  }
  if (have_state) {
    *recovered = std::move(store);
  }
  return Status::OK();
}

// ---- attach / observers ------------------------------------------------

void WalManager::DetachAllLocked() {
  for (auto& [name, coll] : attached_) {
    coll->SetMutationObserver({});
  }
  attached_.clear();
}

void WalManager::DetachAll() {
  std::lock_guard<std::mutex> lock(state_mu_);
  DetachAllLocked();
}

Status WalManager::Attach(DocumentStore* store) {
  std::lock_guard<std::mutex> lock(state_mu_);
  DetachAllLocked();
  bool needs_checkpoint = false;
  for (const std::string& name : store->CollectionNames()) {
    Collection* coll = store->GetCollection(name).ValueOrDie();
    auto it = known_lineage_.find(name);
    const bool known =
        it != known_lineage_.end() && it->second == coll->incarnation();
    if (!known) {
      if (coll->mutation_epoch() == 0) {
        // Fresh collection: one create record enrolls the lineage.
        WalRecord rec;
        rec.op = WalRecord::Op::kCreateCollection;
        rec.collection = name;
        rec.incarnation = coll->incarnation();
        rec.ns = coll->ns();
        const CollectionOptions& copts = coll->options();
        rec.num_shards = static_cast<uint32_t>(copts.num_shards);
        rec.initial_extent_size_bytes =
            static_cast<uint64_t>(copts.initial_extent_size_bytes);
        rec.max_extent_size_bytes =
            static_cast<uint64_t>(copts.max_extent_size_bytes);
        std::string payload;
        DT_RETURN_NOT_OK(EncodeWalRecord(rec, &payload));
        DT_RETURN_NOT_OK(AppendPayload(payload));
        known_lineage_[name] = coll->incarnation();
      } else {
        // A collection with history the log knows nothing about (a
        // snapshot loaded over this durable store): it needs a full
        // baseline checkpoint below.
        needs_checkpoint = true;
      }
    }
    attached_[name] = coll;
  }
  // Lineages the durable state still tracks but the store no longer
  // has: log their drop so recovery does not resurrect them.
  std::vector<std::pair<std::string, uint64_t>> dropped;
  for (const auto& [name, inc] : known_lineage_) {
    if (attached_.find(name) == attached_.end()) dropped.push_back({name, inc});
  }
  for (const auto& [name, inc] : dropped) {
    WalRecord rec;
    rec.op = WalRecord::Op::kDropCollection;
    rec.collection = name;
    rec.incarnation = inc;
    std::string payload;
    DT_RETURN_NOT_OK(EncodeWalRecord(rec, &payload));
    DT_RETURN_NOT_OK(AppendPayload(payload));
    known_lineage_.erase(name);
  }
  for (auto& [name, coll] : attached_) {
    const std::string coll_name = name;
    const uint64_t incarnation = coll->incarnation();
    coll->SetMutationObserver([this, coll_name,
                               incarnation](const MutationEvent& ev) {
      std::string payload;
      Status st = EncodeMutationPayload(coll_name, incarnation, ev, &payload);
      if (st.ok()) st = AppendPayload(payload);
      if (!st.ok()) SetUnhealthy(st);
    });
  }
  if (needs_checkpoint) DT_RETURN_NOT_OK(CheckpointLocked());
  return health();
}

Status WalManager::AppendPayload(std::string_view payload) {
  std::shared_ptr<WalWriter> w;
  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    w = writer_;
  }
  if (w == nullptr) {
    return Status::Internal("WAL manager has no live segment");
  }
  Status st = w->Append(payload);
  if (!st.ok()) {
    SetUnhealthy(st);
    return st;
  }
  if (opts_.checkpoint_wal_bytes > 0 &&
      w->bytes_written() >= opts_.checkpoint_wal_bytes) {
    ckpt_cv_.notify_one();
  }
  return st;
}

void WalManager::SetUnhealthy(const Status& st) {
  std::lock_guard<std::mutex> lock(health_mu_);
  if (health_.ok()) {
    health_ = st;
    DT_LOG(Error) << "durability lost: " << st.ToString();
  }
}

Status WalManager::health() const {
  std::lock_guard<std::mutex> lock(health_mu_);
  return health_;
}

// ---- checkpoints -------------------------------------------------------

Status WalManager::RotateSegmentLocked() {
  const uint64_t next_seq = seq_ + 1;
  DT_ASSIGN_OR_RETURN(
      std::unique_ptr<WalWriter> fresh,
      WalWriter::Create(JoinPath(opts_.dir, SegmentName(next_seq)),
                        opts_.durability));
  std::shared_ptr<WalWriter> retired;
  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    retired = std::move(writer_);
    writer_ = std::move(fresh);
  }
  seq_ = next_seq;
  if (retired != nullptr) {
    // The retiring segment stays replay-relevant until the manifest
    // floor passes it; make its tail durable now.
    DT_RETURN_NOT_OK(retired->Sync());
    WalWriterStats s = retired->stats();
    retired_writer_stats_.appends += s.appends;
    retired_writer_stats_.bytes += s.bytes;
    retired_writer_stats_.syncs += s.syncs;
    retired_writer_stats_.group_batches += s.group_batches;
  }
  return Status::OK();
}

Status WalManager::CheckpointLocked() {
  DT_RETURN_NOT_OK(health());
  // Rotate FIRST: every record appended from here on lands in (or
  // after) the new floor segment, so a mutation racing the snapshot
  // encodes below is either inside the snapshot (epoch <= the view's)
  // or replayable from a surviving segment — never only in a segment
  // this checkpoint prunes.
  DT_RETURN_NOT_OK(RotateSegmentLocked());
  const uint64_t new_floor = seq_;
  std::map<std::string, ManifestEntry> next;
  for (auto& [name, coll] : attached_) {
    CollectionView view = coll->GetView();
    auto it = manifest_.find(name);
    if (it != manifest_.end() &&
        it->second.incarnation == view.incarnation() &&
        it->second.epoch == view.mutation_epoch()) {
      // Clean since its last checkpoint: reuse the file, zero I/O —
      // this is what keeps checkpoint cost proportional to the write
      // rate instead of the corpus size.
      next[name] = it->second;
      ++ckpt_reused_;
      continue;
    }
    ManifestEntry e;
    e.incarnation = view.incarnation();
    e.epoch = view.mutation_epoch();
    e.file = "coll-" + std::to_string(new_floor) + "-" +
             std::to_string(next.size()) + ".dtb";
    std::string buf;
    DT_RETURN_NOT_OK(EncodeCollectionSnapshot(view, opts_.snapshot_options,
                                              &buf));
    DT_RETURN_NOT_OK(AtomicWriteFile(JoinPath(opts_.dir, e.file), buf));
    next[name] = std::move(e);
    ++ckpt_written_;
  }
  // The manifest swap is the commit point: a crash before the rename
  // leaves the previous manifest + all segments, which replays to the
  // same state.
  manifest_ = std::move(next);
  manifest_floor_ = new_floor;
  for (const auto& [name, e] : manifest_) {
    known_lineage_[name] = e.incarnation;
  }
  DT_RETURN_NOT_OK(WriteManifestLocked());
  PruneLocked();
  ++checkpoints_;
  return Status::OK();
}

Status WalManager::Checkpoint() {
  std::lock_guard<std::mutex> lock(state_mu_);
  return CheckpointLocked();
}

void WalManager::PruneLocked() {
  std::set<std::string> live;
  for (const auto& [name, e] : manifest_) live.insert(e.file);
  for (const std::string& name : ListDir(opts_.dir)) {
    uint64_t s = 0;
    if (ParseSegmentName(name, &s)) {
      if (s < manifest_floor_) {
        (void)std::remove(JoinPath(opts_.dir, name).c_str());
      }
    } else if (IsCheckpointName(name) && live.find(name) == live.end()) {
      (void)std::remove(JoinPath(opts_.dir, name).c_str());
    }
  }
}

// ---- flush / stats -----------------------------------------------------

Status WalManager::Flush() {
  std::shared_ptr<WalWriter> w;
  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    w = writer_;
  }
  if (w == nullptr) return health();
  Status st = w->Sync();
  if (!st.ok()) SetUnhealthy(st);
  return st;
}

uint64_t WalManager::wal_bytes() const {
  std::lock_guard<std::mutex> lk(writer_mu_);
  return writer_ != nullptr ? writer_->bytes_written() : 0;
}

DurabilityStats WalManager::stats() const {
  DurabilityStats out;
  out.enabled = true;
  out.mode = opts_.durability;
  std::lock_guard<std::mutex> lock(state_mu_);
  WalWriterStats w = retired_writer_stats_;
  std::shared_ptr<WalWriter> cur;
  {
    std::lock_guard<std::mutex> lk(writer_mu_);
    cur = writer_;
  }
  if (cur != nullptr) {
    WalWriterStats c = cur->stats();
    w.appends += c.appends;
    w.bytes += c.bytes;
    w.syncs += c.syncs;
    w.group_batches += c.group_batches;
  }
  out.wal_appends = w.appends;
  out.wal_bytes = w.bytes;
  out.wal_syncs = w.syncs;
  out.wal_group_batches = w.group_batches;
  out.checkpoints = checkpoints_;
  out.checkpoint_collections_written = ckpt_written_;
  out.checkpoint_collections_reused = ckpt_reused_;
  out.recovered_segments = recovered_segments_;
  out.recovered_records = recovered_records_;
  out.recovered_skipped = recovered_skipped_;
  out.recovered_torn_bytes = recovered_torn_bytes_;
  out.recovery_gap = recovery_gap_;
  return out;
}

void WalManager::StartCheckpointThread() {
  if (opts_.checkpoint_wal_bytes == 0) return;
  ckpt_thread_ = std::thread([this] {
    std::unique_lock<std::mutex> lk(ckpt_thread_mu_);
    while (!stop_) {
      // The condvar is a hint (AppendPayload pokes it past the
      // high-water mark); the timeout bounds how stale the hint can
      // get without one.
      ckpt_cv_.wait_for(lk, std::chrono::milliseconds(200));
      if (stop_) break;
      if (wal_bytes() < opts_.checkpoint_wal_bytes) continue;
      lk.unlock();
      Status st = Checkpoint();
      if (!st.ok()) {
        DT_LOG(Warning) << "background checkpoint failed: " << st.ToString();
      }
      lk.lock();
    }
  });
}

}  // namespace dt::storage
