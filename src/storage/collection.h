/// \file collection.h
/// \brief Sharded document collection with extent-based storage accounting.
///
/// Mirrors the storage engine the paper runs on: a collection is split
/// across shards; each shard appends documents into fixed-capacity
/// extents, allocated with doubling sizes up to a 2 GB cap (the
/// allocation policy that produces the `numExtents`/`lastExtentSize`
/// figures of Tables I and II). A default `_id` index always exists;
/// secondary indexes can be added and are maintained on insert/update/
/// remove.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/docvalue.h"
#include "storage/index.h"

namespace dt::storage {

struct SnapshotOptions;

/// Tuning knobs for a collection. The defaults reproduce the paper's
/// production configuration; benches scale `max_extent_size_bytes`
/// down proportionally with the data scale factor.
struct CollectionOptions {
  /// Number of shards the collection is distributed over.
  int num_shards = 8;
  /// First extent allocated per shard.
  int64_t initial_extent_size_bytes = 1 << 16;  // 64 KiB
  /// Extent allocation doubles until reaching this cap (2 GB in the
  /// paper's deployment).
  int64_t max_extent_size_bytes = 2LL * 1024 * 1024 * 1024;
};

/// Snapshot of collection statistics — the `db.<coll>.stats()` call
/// whose output the paper prints as Tables I and II.
struct CollectionStats {
  std::string ns;             ///< namespace, e.g. "dt.instance"
  int64_t count = 0;          ///< number of documents
  int64_t num_extents = 0;    ///< total extents across shards
  int64_t nindexes = 0;       ///< including the default _id index
  int64_t last_extent_size = 0;  ///< capacity of the most recent extent
  int64_t total_index_size = 0;  ///< bytes across all indexes
  int64_t data_size = 0;      ///< serialized bytes of live documents
  int64_t storage_size = 0;   ///< sum of extent capacities
  int64_t avg_obj_size = 0;   ///< data_size / count
  int num_shards = 0;
  /// Queries served through a secondary-index access path vs a full
  /// collection scan since this collection was created (the planner's
  /// contribution to the `db.entity.stats()` shape; not persisted by
  /// snapshots — a loaded collection starts both at zero).
  int64_t index_scans = 0;
  int64_t coll_scans = 0;

  /// Renders in the mongo-shell style of the paper's tables.
  std::string ToString() const;
};

/// \brief One shard's extent chain (byte bookkeeping only; documents
/// live in the collection's id map).
class ExtentChain {
 public:
  explicit ExtentChain(const CollectionOptions& opts) : opts_(opts) {}

  /// Accounts for a document of `bytes`; allocates a new extent when
  /// the current one cannot fit it.
  void Append(int64_t bytes);

  int64_t num_extents() const { return static_cast<int64_t>(extents_.size()); }
  int64_t last_extent_size() const {
    return extents_.empty() ? 0 : extents_.back().capacity;
  }
  int64_t storage_size() const { return storage_size_; }
  /// Epoch counter of the most recent allocation (for cross-shard
  /// "latest extent" resolution).
  uint64_t last_alloc_epoch() const { return last_alloc_epoch_; }

  /// Sets the allocation epoch source shared by all shards.
  void set_epoch_counter(uint64_t* counter) { epoch_counter_ = counter; }

 private:
  struct Extent {
    int64_t capacity = 0;
    int64_t used = 0;
  };

  CollectionOptions opts_;
  std::vector<Extent> extents_;
  int64_t storage_size_ = 0;
  uint64_t* epoch_counter_ = nullptr;
  uint64_t last_alloc_epoch_ = 0;
};

/// \brief A sharded document collection.
class Collection {
 public:
  Collection(std::string ns, CollectionOptions opts = {});

  const std::string& ns() const { return ns_; }

  /// Inserts a document, assigning and returning its id. The document
  /// gains an "_id" field if absent.
  DocId Insert(DocValue doc);

  /// Returns the document with `id`, or nullptr.
  const DocValue* Get(DocId id) const;

  /// Replaces the document with `id`. Indexes are maintained.
  Status Update(DocId id, DocValue doc);

  /// Removes the document with `id`. Indexes are maintained.
  Status Remove(DocId id);

  /// Invokes `fn` for every live document in id order.
  void ForEach(const std::function<void(DocId, const DocValue&)>& fn) const;

  /// \brief Pull-based iteration over live documents in id order — the
  /// executor's collection-scan access path (`ForEach` remains the push
  /// form). Valid while the collection is not mutated.
  class DocCursor {
   public:
    /// Pulls the next (id, document); false at end.
    bool Next(DocId* id, const DocValue** doc);

    /// Repositions the cursor at the first live document with id
    /// strictly greater than `id` (O(log n)) — how a resumed
    /// collection scan restarts after a prior page without re-walking
    /// the consumed prefix.
    void SeekAfter(DocId id) { it_ = docs_->upper_bound(id); }

   private:
    friend class Collection;
    explicit DocCursor(const std::map<DocId, DocValue>* docs)
        : docs_(docs), it_(docs->begin()), end_(docs->end()) {}

    const std::map<DocId, DocValue>* docs_;
    std::map<DocId, DocValue>::const_iterator it_, end_;
  };

  DocCursor ScanDocs() const { return DocCursor(&docs_); }

  /// Creates a secondary index on `field_path`, backfilling existing
  /// documents. Fails with AlreadyExists if one exists on that path.
  /// (Takes const char* rather than std::string so a braced list of
  /// literals unambiguously selects the compound overload below.)
  Status CreateIndex(const char* field_path);

  /// \brief Creates a compound secondary index on `field_paths` in the
  /// given component order, backfilling existing documents. Components
  /// must be non-empty, free of control characters and ',' (reserved
  /// by the snapshot record encoding and the canonical name) and
  /// distinct within the index; AlreadyExists if an index with the
  /// same canonical name exists.
  Status CreateIndex(const std::vector<std::string>& field_paths);

  /// True if a secondary index exists on `field_path` (the canonical
  /// name: comma-joined component paths for compound indexes).
  bool HasIndex(const std::string& field_path) const;

  /// The index whose canonical name is `field_path` (including "_id"),
  /// or nullptr. The planner uses this to iterate/count without copying
  /// id vectors.
  const SecondaryIndex* IndexOn(const std::string& field_path) const;

  /// Every index (the "_id" index first, then user indexes in creation
  /// order) — the planner's candidate set for access-path selection.
  std::vector<const SecondaryIndex*> Indexes() const;

  /// Ids of documents whose `field_path` equals `value`; uses the index
  /// when present, otherwise falls back to a full scan.
  std::vector<DocId> FindEqual(const std::string& field_path,
                               const DocValue& value) const;

  /// Ids with `field_path` in [lo, hi]; index-backed when possible.
  std::vector<DocId> FindRange(const std::string& field_path,
                               const DocValue& lo, const DocValue& hi) const;

  int64_t count() const { return static_cast<int64_t>(docs_.size()); }

  /// \brief Counts structural mutations (inserts, updates, removes,
  /// index creation) since this in-memory collection was constructed.
  /// Resume tokens pin the epoch they were minted at, so a resumed
  /// query after any mutation is rejected instead of silently skipping
  /// or duplicating documents. Not persisted: a loaded collection's
  /// epoch reflects its restore inserts, which invalidates pre-save
  /// tokens by construction.
  uint64_t mutation_epoch() const { return mutation_epoch_; }

  const CollectionOptions& options() const { return opts_; }

  /// Component path lists of the user-created secondary indexes, in
  /// creation order (snapshot persistence; "_id" excluded).
  std::vector<std::vector<std::string>> IndexSpecs() const;

  /// Id that the next `Insert` will assign.
  DocId next_id() const { return next_id_; }

  // ---- Snapshot persistence (implemented in storage/snapshot.cc) ----

  /// Writes this collection as a standalone binary snapshot file.
  Status Save(const std::string& path, const SnapshotOptions& opts) const;
  Status Save(const std::string& path) const;

  /// Reads a collection snapshot written by `Save`. Secondary indexes
  /// are rebuilt from their persisted field paths.
  static Result<std::unique_ptr<Collection>> Open(const std::string& path,
                                                  const SnapshotOptions& opts);
  static Result<std::unique_ptr<Collection>> Open(const std::string& path);

  /// \brief Inserts a document under an explicit id (snapshot loading;
  /// not a general API). Extent accounting and indexes are maintained
  /// exactly as `Insert` would, and `next_id` advances past `id`.
  /// Fails with InvalidArgument for id 0 and AlreadyExists for a live
  /// id.
  Status RestoreDocument(DocId id, DocValue doc);

  /// Raises `next_id` to at least `next_id` (restores ids burned by
  /// removed documents so save -> load -> save is byte-identical).
  void RestoreNextId(DocId next_id) {
    if (next_id > next_id_) next_id_ = next_id;
  }

  /// The `db.<coll>.stats()` snapshot.
  CollectionStats Stats() const;

  // ---- Query-path accounting (filled by query::planner) ----

  /// Records that a query was served via an index access path / via a
  /// full scan. Counters are observational (mutable): recording against
  /// a const collection is expected. Not thread-safe; concurrent
  /// queries may undercount, which stats consumers tolerate.
  void NoteIndexScan() const { ++index_scans_; }
  void NoteCollScan() const { ++coll_scans_; }
  int64_t index_scans() const { return index_scans_; }
  int64_t coll_scans() const { return coll_scans_; }

 private:
  int ShardOf(DocId id) const;
  /// Shared mutation core of Insert/RestoreDocument: no liveness check
  /// (callers guarantee `id` is fresh), maintains extents, indexes and
  /// next_id_.
  void InsertUnchecked(DocId id, DocValue doc);

  std::string ns_;
  CollectionOptions opts_;
  DocId next_id_ = 1;
  uint64_t alloc_epoch_ = 0;
  // Id-ordered storage. A std::map keeps ForEach deterministic in id
  // order, which the query layer and tests rely on.
  std::map<DocId, DocValue> docs_;
  std::vector<ExtentChain> shards_;
  std::vector<std::unique_ptr<SecondaryIndex>> indexes_;  // [0] is _id
  int64_t data_size_ = 0;
  uint64_t mutation_epoch_ = 0;
  mutable int64_t index_scans_ = 0;
  mutable int64_t coll_scans_ = 0;
};

}  // namespace dt::storage
