/// \file collection.h
/// \brief Sharded document collection with extent-based storage
/// accounting and epoch-protected, versioned reads.
///
/// Mirrors the storage engine the paper runs on: a collection is split
/// across shards; each shard appends documents into fixed-capacity
/// extents, allocated with doubling sizes up to a 2 GB cap (the
/// allocation policy that produces the `numExtents`/`lastExtentSize`
/// figures of Tables I and II). A default `_id` index always exists;
/// secondary indexes can be added and are maintained on insert/update/
/// remove.
///
/// Concurrency model (the "heavy traffic from millions of users"
/// serving path):
///
///   * All reachable document/index state lives in an immutable
///     `StorageVersion`. Writers (serialized by an internal writer
///     mutex) either mutate the published version in place when no
///     reader holds it, or build the next version copy-on-write —
///     sharing untouched doc chunks and index shards with the previous
///     version and cloning only what the mutation touches — and swap
///     it in atomically.
///   * Readers call `GetView()` to obtain a `CollectionView`: a
///     version handle that pins the version's epoch in an
///     `EpochManager` and keeps the version alive by `shared_ptr`.
///     Everything reached through a view (cursors, index scans,
///     borrowed documents) is immutable and stays valid for the
///     view's lifetime, no matter what writers do concurrently.
///   * Versions that resume tokens reference are parked in a retained
///     set (`RetainForResume`). Publication trims the set to
///     `CollectionOptions::retained_versions`, but eviction of a
///     version whose epoch is still pinned is deferred through
///     `EpochManager::Retire` until the pinned epochs drain.
///
/// Direct reads on `Collection` (Get/ForEach/IndexOn/...) remain for
/// single-threaded callers and borrow from the currently published
/// version: they are valid until the next mutation and must not run
/// concurrently with writers — concurrent readers go through views.

#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/epoch.h"
#include "common/rng.h"
#include "common/status.h"
#include "storage/docvalue.h"
#include "storage/index.h"

namespace dt::storage {

struct SnapshotOptions;
class Collection;
class CollectionView;

/// Tuning knobs for a collection. The defaults reproduce the paper's
/// production configuration; benches scale `max_extent_size_bytes`
/// down proportionally with the data scale factor.
struct CollectionOptions {
  /// Number of shards the collection is distributed over.
  int num_shards = 8;
  /// First extent allocated per shard.
  int64_t initial_extent_size_bytes = 1 << 16;  // 64 KiB
  /// Extent allocation doubles until reaching this cap (2 GB in the
  /// paper's deployment).
  int64_t max_extent_size_bytes = 2LL * 1024 * 1024 * 1024;
  /// How many superseded versions the collection keeps resumable for
  /// page tokens (the retained set). 0 makes every token die on the
  /// next write; the budget is an in-memory serving knob and is not
  /// persisted by snapshots.
  int retained_versions = 8;
};

/// Snapshot of collection statistics — the `db.<coll>.stats()` call
/// whose output the paper prints as Tables I and II.
struct CollectionStats {
  std::string ns;             ///< namespace, e.g. "dt.instance"
  int64_t count = 0;          ///< number of documents
  int64_t num_extents = 0;    ///< total extents across shards
  int64_t nindexes = 0;       ///< including the default _id index
  int64_t last_extent_size = 0;  ///< capacity of the most recent extent
  int64_t total_index_size = 0;  ///< bytes across all indexes
  int64_t data_size = 0;      ///< serialized bytes of live documents
  int64_t storage_size = 0;   ///< sum of extent capacities
  int64_t avg_obj_size = 0;   ///< data_size / count
  int num_shards = 0;
  /// Queries served through a secondary-index access path vs a full
  /// collection scan since this collection was created (the planner's
  /// contribution to the `db.entity.stats()` shape; not persisted by
  /// snapshots — a loaded collection starts both at zero).
  int64_t index_scans = 0;
  int64_t coll_scans = 0;

  /// Renders in the mongo-shell style of the paper's tables.
  std::string ToString() const;
};

/// \brief One shard's extent chain (byte bookkeeping only; documents
/// live in the version's doc chunks).
class ExtentChain {
 public:
  explicit ExtentChain(const CollectionOptions& opts) : opts_(opts) {}

  /// Accounts for a document of `bytes`; allocates a new extent when
  /// the current one cannot fit it. `alloc_epoch` is the owning
  /// version's allocation counter, bumped per extent allocation (a
  /// per-call parameter rather than a stored pointer so chains stay
  /// plainly copyable when a version is cloned).
  void Append(int64_t bytes, uint64_t* alloc_epoch);

  int64_t num_extents() const { return static_cast<int64_t>(extents_.size()); }
  int64_t last_extent_size() const {
    return extents_.empty() ? 0 : extents_.back().capacity;
  }
  int64_t storage_size() const { return storage_size_; }
  /// Epoch counter of the most recent allocation (for cross-shard
  /// "latest extent" resolution).
  uint64_t last_alloc_epoch() const { return last_alloc_epoch_; }

 private:
  struct Extent {
    int64_t capacity = 0;
    int64_t used = 0;
  };

  CollectionOptions opts_;
  std::vector<Extent> extents_;
  int64_t storage_size_ = 0;
  uint64_t last_alloc_epoch_ = 0;
};

/// \brief Post-commit mutation notification — the hook the write-ahead
/// log hangs off (see storage/wal.h). Invoked synchronously at the end
/// of Insert/Update/Remove/CreateIndex with the collection's writer
/// mutex held, after the mutation has published: `epoch` is the
/// post-mutation epoch, and the borrowed pointers are valid only for
/// the duration of the callback. `RestoreDocument`/`RestoreLineage`
/// (snapshot/WAL replay paths) never notify — replay must not re-log.
struct MutationEvent {
  enum class Op : uint8_t { kInsert, kUpdate, kRemove, kCreateIndex };
  Op op = Op::kInsert;
  uint64_t epoch = 0;  ///< the collection's post-mutation epoch
  DocId id = 0;        ///< insert/update/remove
  /// Stored document after the mutation (insert/update: includes the
  /// auto-added "_id" field); nullptr otherwise.
  const DocValue* doc = nullptr;
  /// Component paths of the created index (create_index only).
  const std::vector<std::string>* index_paths = nullptr;
};

/// Observer of committed mutations. Runs under the writer mutex, so it
/// must not call back into the collection's write surface.
using MutationObserver = std::function<void(const MutationEvent&)>;

namespace internal {

/// Sorted run of (id, document) pairs — the copy-on-write granule of
/// document storage. Chunks within a version are disjoint and
/// ascending, so iterating the chunk directory yields id order.
struct DocChunk {
  std::vector<std::pair<DocId, DocValue>> docs;
};

/// Splitting threshold for a doc chunk. Small enough that cloning the
/// one touched chunk per write is cheap, large enough that the chunk
/// directory stays shallow.
inline constexpr size_t kDocChunkCapacity = 256;

/// \brief One immutable published state of a collection. Everything a
/// reader traverses hangs off a version; writers publish a new one
/// (or mutate the current one in place when provably unobserved).
struct StorageVersion {
  StorageVersion() = default;
  /// Copy shares doc chunks and indexes structurally (shared_ptr) —
  /// the writer clones a granule before first touching it. Retention
  /// bookkeeping does not carry over to the copy.
  StorageVersion(const StorageVersion& other);
  StorageVersion& operator=(const StorageVersion&) = delete;

  std::string ns;
  CollectionOptions opts;
  DocId next_id = 1;
  uint64_t alloc_epoch = 0;
  std::vector<std::shared_ptr<DocChunk>> chunks;
  std::vector<ExtentChain> shards;
  std::vector<std::shared_ptr<SecondaryIndex>> indexes;  // [0] is _id
  int64_t data_size = 0;
  int64_t doc_count = 0;
  /// Ordinal mutation counter: exactly one bump per insert/update/
  /// remove/index creation, continued across snapshot save/load (the
  /// persisted epoch lineage).
  uint64_t epoch = 0;
  /// Random identity of this exact version; what page tokens pin.
  /// Regenerated on every publication and on snapshot load, so a
  /// token can never falsely match a state it was not minted against.
  uint64_t version_id = 0;

  // Retention bookkeeping, guarded by CollectionShared::version_mu.
  mutable bool in_retained = false;
  mutable bool retire_pending = false;

  // ---- Read accessors (safe on a published version) ----
  const DocValue* Get(DocId id) const;
  void ForEach(const std::function<void(DocId, const DocValue&)>& fn) const;
  const SecondaryIndex* IndexOn(const std::string& field_path) const;
  /// Index of the first chunk whose last id is >= `id` (chunks.size()
  /// if none) — the chunk `id` would live in.
  size_t ChunkLowerBound(DocId id) const;

  // ---- Mutators (writer-only: callers guarantee exclusive access
  // to *this; shared granules are cloned before mutation) ----
  DocChunk* MutableChunk(size_t i);
  SecondaryIndex* MutableIndex(size_t i);
  /// Inserts into the chunk directory (no index/extent bookkeeping).
  void InsertDocSorted(DocId id, DocValue doc);
  /// Removes `id` from the chunk directory, moving the removed
  /// document into `removed`; false if not present.
  bool EraseDoc(DocId id, DocValue* removed);
  /// Mutable slot of a live document (clones its chunk first), or
  /// nullptr.
  DocValue* FindMutableDoc(DocId id);
};

/// State shared between a Collection, its views and its cursors.
/// Behind one shared_ptr so Collection stays movable and a view can
/// structurally outlive the Collection that minted it.
struct CollectionShared {
  std::string ns;
  CollectionOptions opts;
  /// Random lineage id minted when the collection is first created
  /// and persisted by snapshots: tokens carry it, so a token can name
  /// which lineage it belongs to across process restarts.
  uint64_t incarnation = 0;

  /// Serializes writers (Insert/Update/Remove/CreateIndex/Restore*).
  std::mutex writer_mu;
  /// Guards `published`, `retained` and the per-version retention
  /// flags. Ordering: version_mu may be taken before the epoch
  /// manager's internal lock, never the other way around.
  mutable std::mutex version_mu;
  EpochManager epochs;
  std::shared_ptr<StorageVersion> published;
  std::deque<std::shared_ptr<const StorageVersion>> retained;

  /// Writer-side RNG for version ids (guarded by writer_mu).
  Rng rng;

  /// Committed-mutation observer (guarded by writer_mu; empty = none).
  MutationObserver observer;

  // Query-path accounting; atomics so concurrent readers may record.
  mutable std::atomic<int64_t> index_scans{0};
  mutable std::atomic<int64_t> coll_scans{0};

  /// Evicts over-budget retained versions; defers (via
  /// EpochManager::Retire) the ones whose epoch is still pinned.
  /// Requires version_mu.
  void TrimRetainedLocked();
};

/// Epoch pin tied to an object lifetime: shared by every view/cursor
/// that reads the pinned version; unpins on destruction of the last.
struct VersionPin {
  VersionPin(std::shared_ptr<CollectionShared> s, uint64_t e)
      : state(std::move(s)), epoch(e) {}
  ~VersionPin() { state->epochs.Unpin(epoch); }
  VersionPin(const VersionPin&) = delete;
  VersionPin& operator=(const VersionPin&) = delete;

  std::shared_ptr<CollectionShared> state;
  uint64_t epoch;
};

}  // namespace internal

/// \brief Pull-based iteration over the live documents of one storage
/// version, in id order. The cursor co-owns the version (and holds
/// its epoch pin), so it is structurally impossible for it to outlive
/// the documents it yields — concurrent writers publish new versions
/// and never touch this one.
class DocCursor {
 public:
  /// Pulls the next (id, document); false at end. The document
  /// pointer stays valid for the cursor's lifetime.
  bool Next(DocId* id, const DocValue** doc);

  /// Repositions the cursor at the first live document with id
  /// strictly greater than `id` (O(log n)) — how a resumed
  /// collection scan restarts after a prior page without re-walking
  /// the consumed prefix.
  void SeekAfter(DocId id);

 private:
  friend class Collection;
  friend class CollectionView;
  DocCursor(std::shared_ptr<const internal::StorageVersion> core,
            std::shared_ptr<const internal::VersionPin> pin)
      : core_(std::move(core)), pin_(std::move(pin)) {}

  std::shared_ptr<const internal::StorageVersion> core_;
  std::shared_ptr<const internal::VersionPin> pin_;
  size_t chunk_ = 0;
  size_t pos_ = 0;
};

/// \brief An epoch-pinned, immutable handle on one published state of
/// a collection — the unit the query layer reads through. Copyable
/// (copies share the pin); cheap to pass by value. Everything
/// borrowed from a view (documents, index scans, cursors) is valid
/// for as long as any copy of the view or cursor lives.
class CollectionView {
 public:
  const std::string& ns() const { return core_->ns; }
  const CollectionOptions& options() const { return core_->opts; }
  int64_t count() const { return core_->doc_count; }
  DocId next_id() const { return core_->next_id; }
  /// Ordinal mutation epoch of this version (see StorageVersion).
  uint64_t mutation_epoch() const { return core_->epoch; }
  /// Random identity of this version — what resume tokens pin.
  uint64_t version_id() const { return core_->version_id; }
  /// Lineage id of the owning collection (persisted by snapshots).
  uint64_t incarnation() const { return state_->incarnation; }

  /// Document with `id`, or nullptr; valid for the view's lifetime.
  const DocValue* Get(DocId id) const { return core_->Get(id); }

  /// Invokes `fn` for every live document in id order.
  void ForEach(const std::function<void(DocId, const DocValue&)>& fn) const {
    core_->ForEach(fn);
  }

  DocCursor ScanDocs() const { return DocCursor(core_, pin_); }

  bool HasIndex(const std::string& field_path) const {
    return IndexOn(field_path) != nullptr;
  }
  const SecondaryIndex* IndexOn(const std::string& field_path) const {
    return core_->IndexOn(field_path);
  }
  std::vector<const SecondaryIndex*> Indexes() const;
  std::vector<std::vector<std::string>> IndexSpecs() const;

  void NoteIndexScan() const {
    state_->index_scans.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteCollScan() const {
    state_->coll_scans.fetch_add(1, std::memory_order_relaxed);
  }

  /// Parks this view's version in the collection's retained set so a
  /// resume token minted against it stays serviceable after writers
  /// publish newer versions (until the retention budget or epoch
  /// drain evicts it). Idempotent.
  void RetainForResume() const;

  /// Resolves `version_id` to a view: this view or the live published
  /// version if they match, else a still-retained version; otherwise
  /// InvalidArgument ("stale resume token": the version was
  /// reclaimed, so the token cannot be honored without skipping or
  /// duplicating documents).
  Result<CollectionView> At(uint64_t version_id) const;

 private:
  friend class Collection;
  CollectionView(std::shared_ptr<internal::CollectionShared> state,
                 std::shared_ptr<const internal::StorageVersion> core,
                 std::shared_ptr<const internal::VersionPin> pin)
      : state_(std::move(state)), core_(std::move(core)),
        pin_(std::move(pin)) {}

  std::shared_ptr<internal::CollectionShared> state_;
  std::shared_ptr<const internal::StorageVersion> core_;
  std::shared_ptr<const internal::VersionPin> pin_;
};

/// \brief A sharded document collection.
///
/// Writers are internally serialized and may run concurrently with
/// any number of `GetView()` readers. The borrowing read accessors on
/// Collection itself (Get/ForEach/IndexOn/Indexes/ScanDocs) are the
/// legacy single-threaded surface: their results are only guaranteed
/// stable until the next mutation.
class Collection {
 public:
  Collection(std::string ns, CollectionOptions opts = {});

  Collection(Collection&&) = default;
  Collection& operator=(Collection&&) = default;
  Collection(const Collection&) = delete;
  Collection& operator=(const Collection&) = delete;

  const std::string& ns() const { return state_->ns; }

  /// Pins and returns the currently published version. The preferred
  /// read path — and the only safe one under concurrent writers.
  CollectionView GetView() const;

  /// Inserts a document, assigning and returning its id. The document
  /// gains an "_id" field if absent.
  DocId Insert(DocValue doc);

  /// Returns the document with `id`, or nullptr (legacy borrow:
  /// valid until the next mutation).
  const DocValue* Get(DocId id) const;

  /// Replaces the document with `id`. Indexes are maintained.
  Status Update(DocId id, DocValue doc);

  /// Removes the document with `id`. Indexes are maintained.
  Status Remove(DocId id);

  /// Invokes `fn` for every live document in id order (one consistent
  /// version: a concurrent writer cannot tear the iteration).
  void ForEach(const std::function<void(DocId, const DocValue&)>& fn) const;

  /// Nested-name compatibility: the cursor type predates views.
  using DocCursor = storage::DocCursor;

  /// Pull-based scan over the currently published version. The cursor
  /// owns its version: it stays valid (and yields that version's
  /// documents) even if the collection is mutated or destroyed.
  storage::DocCursor ScanDocs() const;

  /// Creates a secondary index on `field_path`, backfilling existing
  /// documents. Fails with AlreadyExists if one exists on that path.
  /// (Takes const char* rather than std::string so a braced list of
  /// literals unambiguously selects the compound overload below.)
  Status CreateIndex(const char* field_path);

  /// \brief Creates a compound secondary index on `field_paths` in the
  /// given component order, backfilling existing documents. Components
  /// must be non-empty, free of control characters and ',' (reserved
  /// by the snapshot record encoding and the canonical name) and
  /// distinct within the index; AlreadyExists if an index with the
  /// same canonical name exists.
  Status CreateIndex(const std::vector<std::string>& field_paths);

  /// True if a secondary index exists on `field_path` (the canonical
  /// name: comma-joined component paths for compound indexes).
  bool HasIndex(const std::string& field_path) const;

  /// The index whose canonical name is `field_path` (including "_id"),
  /// or nullptr (legacy borrow: stable until the next mutation).
  const SecondaryIndex* IndexOn(const std::string& field_path) const;

  /// Every index (the "_id" index first, then user indexes in creation
  /// order) — the planner's candidate set for access-path selection.
  std::vector<const SecondaryIndex*> Indexes() const;

  /// Ids of documents whose `field_path` equals `value`; uses the index
  /// when present, otherwise falls back to a full scan.
  std::vector<DocId> FindEqual(const std::string& field_path,
                               const DocValue& value) const;

  /// Ids with `field_path` in [lo, hi]; index-backed when possible.
  std::vector<DocId> FindRange(const std::string& field_path,
                               const DocValue& lo, const DocValue& hi) const;

  int64_t count() const;

  /// \brief Ordinal count of structural mutations (inserts, updates,
  /// removes, index creation) over the collection's whole lineage:
  /// snapshots persist it, so a loaded collection continues from the
  /// saved value instead of wrapping back to its restore-insert
  /// count. Resume-token validation pins the random `version_id()`
  /// rather than this counter.
  uint64_t mutation_epoch() const;

  /// Random identity of the currently published version.
  uint64_t version_id() const;

  /// Random lineage id (persisted by snapshots; folded into resume
  /// tokens so cross-lineage tokens are rejected by name).
  uint64_t incarnation() const { return state_->incarnation; }

  /// Superseded versions currently kept resumable (test hook).
  size_t retained_version_count() const;

  const CollectionOptions& options() const { return state_->opts; }

  /// Component path lists of the user-created secondary indexes, in
  /// creation order (snapshot persistence; "_id" excluded).
  std::vector<std::vector<std::string>> IndexSpecs() const;

  /// Id that the next `Insert` will assign.
  DocId next_id() const;

  // ---- Snapshot persistence (implemented in storage/snapshot.cc) ----

  /// Writes this collection as a standalone binary snapshot file.
  Status Save(const std::string& path, const SnapshotOptions& opts) const;
  Status Save(const std::string& path) const;

  /// Reads a collection snapshot written by `Save`. Secondary indexes
  /// are rebuilt from their persisted field paths.
  static Result<std::unique_ptr<Collection>> Open(const std::string& path,
                                                  const SnapshotOptions& opts);
  static Result<std::unique_ptr<Collection>> Open(const std::string& path);

  /// \brief Inserts a document under an explicit id (snapshot loading;
  /// not a general API). Extent accounting and indexes are maintained
  /// exactly as `Insert` would, and `next_id` advances past `id`.
  /// Fails with InvalidArgument for id 0 and AlreadyExists for a live
  /// id.
  Status RestoreDocument(DocId id, DocValue doc);

  /// Raises `next_id` to at least `next_id` (restores ids burned by
  /// removed documents so save -> load -> save is byte-identical).
  void RestoreNextId(DocId next_id);

  /// \brief Adopts a persisted epoch lineage (snapshot loading): the
  /// saving collection's incarnation id and exact mutation epoch.
  /// Overwrites whatever the restore inserts accumulated, so
  /// save -> load -> save round-trips the lineage byte-identically.
  /// The published version keeps its fresh random `version_id`, so
  /// tokens minted before the save never validate after a load.
  void RestoreLineage(uint64_t incarnation, uint64_t epoch);

  /// \brief Adopts persisted per-index statistics (snapshot loading),
  /// one record per index in `Indexes()` order ("_id" first, then user
  /// indexes in creation order). Replaces the stats the restore
  /// inserts built incrementally — the saving writer's stats reflect
  /// its full mutation history, not an id-order reinsertion — so
  /// save -> load -> save round-trips them byte-identically.
  /// InvalidArgument when the record count does not match the index
  /// count.
  Status RestoreIndexStats(std::vector<IndexStats> stats);

  /// \brief Installs (or, with an empty function, removes) the
  /// committed-mutation observer — the WAL's append hook. At most one
  /// observer exists; it runs under the writer mutex (see
  /// MutationEvent for the contract). Safe to call concurrently with
  /// writers.
  void SetMutationObserver(MutationObserver observer);

  /// The `db.<coll>.stats()` snapshot.
  CollectionStats Stats() const;

  // ---- Query-path accounting (filled by query::planner) ----

  /// Records that a query was served via an index access path / via a
  /// full scan. Counters are observational (mutable): recording against
  /// a const collection is expected.
  void NoteIndexScan() const {
    state_->index_scans.fetch_add(1, std::memory_order_relaxed);
  }
  void NoteCollScan() const {
    state_->coll_scans.fetch_add(1, std::memory_order_relaxed);
  }
  int64_t index_scans() const {
    return state_->index_scans.load(std::memory_order_relaxed);
  }
  int64_t coll_scans() const {
    return state_->coll_scans.load(std::memory_order_relaxed);
  }

 private:
  static int ShardOf(const CollectionOptions& opts, DocId id);
  /// Shared mutation core of Insert/RestoreDocument: no liveness check
  /// (callers guarantee `id` is fresh), maintains extents, indexes and
  /// next_id.
  static void InsertUnchecked(internal::StorageVersion& v, DocId id,
                              DocValue doc);

  /// Runs `fn` against the next version under the publication
  /// protocol: in place when the published version is unobserved
  /// (holding version_mu throughout, so no reader can acquire it
  /// mid-mutation), else copy-on-write + atomic swap. Bumps the epoch,
  /// mints a fresh version_id and trims the retained set. Callers
  /// hold writer_mu.
  void Mutate(const std::function<void(internal::StorageVersion&)>& fn);

  /// Published version under version_mu (stable while writer_mu is
  /// held, since publication requires both).
  std::shared_ptr<const internal::StorageVersion> CurrentCore() const;

  std::shared_ptr<internal::CollectionShared> state_;
};

}  // namespace dt::storage
