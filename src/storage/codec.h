/// \file codec.h
/// \brief Length-prefixed binary encoding of `DocValue` trees.
///
/// The wire format follows BSON's framing discipline (every variable-
/// length payload is preceded by its byte length, so a reader can skip
/// or validate without parsing children) but keeps the repository's own
/// type tags. All multi-byte integers are little-endian and read/written
/// via `memcpy`, so the codec is safe on alignment-strict targets and
/// independent of host byte order on the platforms we support.
///
/// Value encoding (one type byte, then the payload):
///
///   kNull    (empty)
///   kBool    u8 (0 or 1)
///   kInt64   i64 little-endian
///   kDouble  IEEE-754 bits, little-endian
///   kString  u32 byte length + bytes (no terminator)
///   kArray   u32 payload byte length + u32 element count + elements
///   kObject  u32 payload byte length + u32 field count +
///            (u32 key length + key bytes + value)*
///
/// Streams of encoded values are framed by a versioned header
/// (`AppendCodecHeader` / `ReadCodecHeader`): magic "DTB1", a format
/// version that readers must match, and a flags word reserved for
/// future compression/checksum bits. Decoding NEVER crashes on corrupt
/// or truncated input: every read is bounds-checked and failures come
/// back as `Status::Corruption` carrying the byte offset.

#pragma once

#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/docvalue.h"

namespace dt::storage {

/// First bytes of any codec-framed stream: "DTB1" read as a
/// little-endian u32.
inline constexpr uint32_t kCodecMagic = 0x31425444u;

/// Bumped on any incompatible change to the value encoding, and on
/// additive stream-layout changes readers branch on (writers always
/// emit the current version). Version history:
///   1  original format
///   2  collection sections carry epoch lineage (incarnation + epoch)
///      after next_id
///   3  collection sections carry one per-index statistics record
///      (histogram + distinct sketches, see storage/stats.h) after the
///      index specs; older sections load with stats rebuilt from the
///      restored documents
/// Readers accept [kMinCodecVersion, kCodecVersion] and reject
/// anything else with kCorruption (forward compatibility is a policy
/// decision left to callers, not silently guessed here).
inline constexpr uint16_t kCodecVersion = 3;

/// Oldest stream version this build still reads.
inline constexpr uint16_t kMinCodecVersion = 1;

/// Both directions refuse trees nested deeper than this: decode
/// because a 4-byte-per-level crafted input could otherwise overflow
/// the stack, encode so that a save can never produce a file the
/// decoder would refuse.
inline constexpr int kMaxDecodeDepth = 128;

/// \brief Append-only little-endian writer over a caller-owned string.
class BinaryWriter {
 public:
  explicit BinaryWriter(std::string* out) : out_(out) {}

  void PutU8(uint8_t v) { out_->push_back(static_cast<char>(v)); }
  void PutU16(uint16_t v) { PutRaw(&v, sizeof v); }
  void PutU32(uint32_t v) { PutRaw(&v, sizeof v); }
  void PutU64(uint64_t v) { PutRaw(&v, sizeof v); }
  void PutI64(int64_t v) { PutRaw(&v, sizeof v); }
  void PutDouble(double v) { PutRaw(&v, sizeof v); }

  /// u32 length prefix + raw bytes.
  void PutString(std::string_view s) {
    PutU32(static_cast<uint32_t>(s.size()));
    out_->append(s.data(), s.size());
  }

  /// Reserves a u32 slot to be patched by `EndLengthPrefix` with the
  /// number of bytes written in between. Nests (patch inner first is
  /// not required; positions are absolute).
  size_t BeginLengthPrefix() {
    size_t pos = out_->size();
    PutU32(0);
    return pos;
  }
  void EndLengthPrefix(size_t pos) {
    uint32_t len = static_cast<uint32_t>(out_->size() - pos - sizeof(uint32_t));
    std::memcpy(&(*out_)[pos], &len, sizeof len);
  }

  size_t size() const { return out_->size(); }

 private:
  void PutRaw(const void* p, size_t n) {
    out_->append(reinterpret_cast<const char*>(p), n);
  }

  std::string* out_;
};

/// \brief Bounds-checked little-endian reader over a borrowed buffer.
///
/// Every accessor returns `Status::Corruption` (with the offending
/// offset) instead of reading past the end; the cursor does not advance
/// on failure.
class BinaryReader {
 public:
  BinaryReader(const void* data, size_t size)
      : data_(static_cast<const uint8_t*>(data)), size_(size) {}
  explicit BinaryReader(std::string_view buf)
      : BinaryReader(buf.data(), buf.size()) {}

  size_t offset() const { return pos_; }
  size_t remaining() const { return size_ - pos_; }

  Status ReadU8(uint8_t* v) { return ReadRaw(v, sizeof *v); }
  Status ReadU16(uint16_t* v) { return ReadRaw(v, sizeof *v); }
  Status ReadU32(uint32_t* v) { return ReadRaw(v, sizeof *v); }
  Status ReadU64(uint64_t* v) { return ReadRaw(v, sizeof *v); }
  Status ReadI64(int64_t* v) { return ReadRaw(v, sizeof *v); }
  Status ReadDouble(double* v) { return ReadRaw(v, sizeof *v); }

  /// u32 length prefix + raw bytes (the inverse of
  /// `BinaryWriter::PutString`).
  Status ReadString(std::string* out);

  /// Borrows the next `n` bytes as a view into the underlying buffer
  /// (no copy) and advances past them. The view is only valid while
  /// the buffer outlives the reader.
  Status ReadSpan(size_t n, std::string_view* out) {
    DT_RETURN_NOT_OK(Need(n));
    *out = std::string_view(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return Status::OK();
  }

  Status Skip(size_t n) {
    DT_RETURN_NOT_OK(Need(n));
    pos_ += n;
    return Status::OK();
  }

 private:
  Status Need(size_t n) const {
    if (n > remaining()) {
      return Status::Corruption("truncated input: need " + std::to_string(n) +
                                " bytes at offset " + std::to_string(pos_) +
                                ", have " + std::to_string(remaining()));
    }
    return Status::OK();
  }
  Status ReadRaw(void* out, size_t n) {
    DT_RETURN_NOT_OK(Need(n));
    std::memcpy(out, data_ + pos_, n);
    pos_ += n;
    return Status::OK();
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
};

/// Appends the binary encoding of `v` (type byte + payload) to `out`.
/// Nesting beyond `kMaxDecodeDepth` and strings/containers whose
/// length overflows the u32 framing are kOutOfRange (the decoder
/// would reject such a stream, so it must not be writable); on any
/// error the partial bytes appended to `out` are unspecified —
/// discard them.
Status EncodeDocValue(const DocValue& v, std::string* out);

/// Decodes one value from the reader's cursor. On success the cursor
/// sits just past the value; on failure it is unspecified and the
/// status is kCorruption. Nesting beyond `kMaxDecodeDepth` is rejected.
Status DecodeDocValue(BinaryReader* reader, DocValue* out);

/// Convenience: decodes exactly one value spanning the whole buffer
/// (trailing bytes are kCorruption).
Status DecodeDocValue(std::string_view buf, DocValue* out);

/// Appends the stream header: magic, version, flags (0).
void AppendCodecHeader(std::string* out);

/// Validates magic and version at the reader's cursor and advances past
/// the header. Wrong magic, or a version outside
/// [kMinCodecVersion, kCodecVersion], is kCorruption. When `version`
/// is non-null it receives the stream's version so callers can branch
/// on layout differences.
Status ReadCodecHeader(BinaryReader* reader, uint16_t* version = nullptr);

}  // namespace dt::storage
