/// \file snapshot.h
/// \brief Binary snapshot persistence for collections and stores.
///
/// A snapshot makes cold start O(read) instead of O(re-ingest +
/// re-index): the file carries every live document (in the
/// storage/codec.h binary format), each collection's options and
/// `next_id`, and the field paths of its secondary indexes. On open
/// the documents are decoded and the indexes are rebuilt from their
/// persisted metadata, so `query`/`text_search` run unchanged against
/// the loaded store.
///
/// File layout (all framing via storage/codec.h, little-endian):
///
///   codec header ("DTB1", version, flags)
///   u8 kind              1 = DocumentStore snapshot, 2 = Collection
///   [store only]         db_name string, u32 collection count
///   per collection:
///     [store only]       registry name string
///     ns string
///     options            u32 num_shards, u64 initial/max extent bytes
///     u64 next_id
///     epoch lineage      u64 incarnation + u64 mutation epoch (codec
///                        version >= 2 only; v1 sections omit both and
///                        load with a fresh incarnation). Loading
///                        adopts the lineage, so save -> load -> save
///                        is byte-identical — but resume tokens minted
///                        before the save are still rejected after a
///                        load, because token validity is keyed on the
///                        never-persisted random version id.
///     index metadata     u32 count + one record string per index:
///                        a single-field index is its raw field path
///                        (the pre-compound format, unchanged byte for
///                        byte); a compound index is a versioned record
///                        `0x01 'C' 0x01` + component paths joined by
///                        0x1f. Field paths cannot contain control
///                        characters (Collection::CreateIndex rejects
///                        them), so the leading byte disambiguates and
///                        old snapshots load unchanged.
///     u64 doc_count
///     chunk directory    u32 chunk count, then per chunk
///                        u32 doc count + u64 payload bytes
///     chunk payloads     per document: u64 id + encoded DocValue
///
/// Documents are grouped into fixed-size chunks (`docs_per_chunk`)
/// that encode and decode in parallel on a thread pool. Chunk
/// boundaries depend only on document order and the chunk size, never
/// on thread scheduling, so the bytes written are identical for every
/// `num_threads` and save -> load -> save is byte-identical.
///
/// Load never trusts the input: every length is bounds-checked and a
/// truncated or corrupt file comes back as `Status::Corruption` (file
/// system failures as `Status::IOError`), never a crash.

#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/document_store.h"

namespace dt {
class ThreadPool;
}

namespace dt::storage {

/// Knobs for snapshot save/load.
struct SnapshotOptions {
  /// Threads for chunk encode/decode: 1 = serial, <= 0 = all hardware
  /// threads. Output bytes are identical for every value.
  int num_threads = 1;
  /// Documents per encode/decode chunk (the parallelism grain).
  int docs_per_chunk = 512;
  /// Borrowed worker pool; when set it carries the chunk work and
  /// `num_threads` is ignored (the facade shares one cached pool across
  /// planner and snapshot calls instead of constructing per operation).
  dt::ThreadPool* pool = nullptr;
};

// ---- Whole-store snapshots ----

/// Writes `store` to `path` (via a temp file + rename, so a crash
/// mid-save cannot truncate an existing snapshot).
Status SaveSnapshot(const DocumentStore& store, const std::string& path,
                    const SnapshotOptions& opts = {});

/// Reads a store snapshot written by `SaveSnapshot`.
Result<std::unique_ptr<DocumentStore>> LoadSnapshot(
    const std::string& path, const SnapshotOptions& opts = {});

// ---- Single-collection snapshots ----

Status SaveSnapshot(const Collection& coll, const std::string& path,
                    const SnapshotOptions& opts = {});

Result<std::unique_ptr<Collection>> LoadCollectionSnapshot(
    const std::string& path, const SnapshotOptions& opts = {});

/// Encodes a single-collection snapshot of one immutable `view` — the
/// unit an incremental checkpoint writes per dirty collection (the
/// view pins a consistent version, so a checkpoint never freezes
/// writers). Bytes are identical to `SaveSnapshot(coll, ...)` taken at
/// the same version.
Status EncodeCollectionSnapshot(const CollectionView& view,
                                const SnapshotOptions& opts,
                                std::string* out);

// ---- In-memory variants (testing; embedding in other streams) ----

Status EncodeStoreSnapshot(const DocumentStore& store,
                           const SnapshotOptions& opts, std::string* out);

Result<std::unique_ptr<DocumentStore>> DecodeStoreSnapshot(
    std::string_view buf, const SnapshotOptions& opts = {});

// ---- File utilities (shared with the WAL/recovery layer) ----

/// Reads the whole file at `path` into `out` (kIOError on failure).
Status ReadFileToString(const std::string& path, std::string* out);

/// Writes `data` to `path` atomically: unique temp file
/// (`<path>.tmp.<pid>.<n>`) + fsync + rename + directory fsync, so a
/// crash mid-write can never truncate or tear an existing file.
Status AtomicWriteFile(const std::string& path, std::string_view data);

/// Deletes stale `*.tmp.<pid>.<n>` files under `dir` ("" = cwd) left
/// behind by an `AtomicWriteFile` whose process crashed between
/// temp-create and rename. A temp file whose embedded pid is still a
/// live process is a concurrent saver's work in progress and is left
/// alone (which also protects this process's own in-flight saves).
/// Best-effort: I/O errors are swallowed — sweeping is hygiene, not
/// correctness. Returns the number of files removed.
int SweepStaleTempFiles(const std::string& dir);

}  // namespace dt::storage
