/// \file index_key.h
/// \brief Ordered key domain shared by secondary indexes and the
/// statistics subsystem: `IndexKey` (one totally ordered component
/// extracted from a document field) and `CompositeKey` (the
/// lexicographic tuple a compound index stores). Split out of
/// `index.h` so `stats.h` can depend on the key types without a
/// circular include.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "storage/docvalue.h"

namespace dt::storage {

/// Document id within a collection (monotonically assigned on insert).
using DocId = uint64_t;

/// \brief Totally ordered key extracted from a document field.
///
/// Ordering: nulls < bools < numbers (int and double compared as a
/// common numeric domain) < strings. Arrays/objects are not indexable;
/// documents lacking the field index under a null key.
class IndexKey {
 public:
  IndexKey() : tag_(Tag::kNull) {}

  static IndexKey FromValue(const DocValue& v);

  /// \brief Probe sentinel ordering after every real key. Never stored
  /// in an index; scan bound computation uses it to close a key-prefix
  /// range ("everything extending this prefix").
  static IndexKey Max();

  bool operator<(const IndexKey& other) const;
  bool operator==(const IndexKey& other) const;

  /// True for the null key: absent fields, explicit nulls and
  /// non-indexable values (arrays/objects) all collapse here.
  bool is_null() const { return tag_ == Tag::kNull; }

  /// The key as a plain `DocValue` (null/bool/double/string) such that
  /// `FromValue(ToDocValue()) == *this` — how resume tokens persist a
  /// scan position. The probe-only Max sentinel is never serialized
  /// and maps to null.
  DocValue ToDocValue() const;

  /// Serialized footprint of the key itself (B-tree leaf estimate).
  int64_t SizeBytes() const;

  /// Deterministic 64-bit hash of the key (FNV-1a over tag + payload;
  /// no per-process seed) — the distinct-sketch domain. Determinism
  /// across runs is load-bearing: sketches persist in snapshots and
  /// must evolve identically under crash-recovery replay.
  uint64_t Hash64() const;

  std::string ToString() const;

 private:
  enum class Tag : uint8_t {
    kNull = 0,
    kBool = 1,
    kNumber = 2,
    kString = 3,
    kMax = 255  // probe-only sentinel, greater than every real key
  };

  Tag tag_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
};

/// \brief Lexicographically ordered tuple of `IndexKey`s — the entry
/// key of a (possibly compound) secondary index, and the executor's
/// order-by sort key. Component comparison reuses the `IndexKey`
/// semantics, so scans and predicate evaluation agree per component by
/// construction.
class CompositeKey {
 public:
  CompositeKey() = default;
  explicit CompositeKey(std::vector<IndexKey> parts)
      : parts_(std::move(parts)) {}

  /// Key of `doc` under `paths`: one component per path, each extracted
  /// exactly as a single-field index would (missing/non-indexable
  /// collapse to the null key).
  static CompositeKey FromDoc(const std::vector<std::string>& paths,
                              const DocValue& doc);

  bool operator<(const CompositeKey& other) const {
    return parts_ < other.parts_;
  }
  bool operator==(const CompositeKey& other) const;

  /// Equality with `other` on the first `n` components, clamped to
  /// both widths — the run-grouping / resume-suppression comparison
  /// shared by `Scan::SeekAfter` and the executor's `IxScanCursor`.
  bool PrefixEquals(const CompositeKey& other, size_t n) const;

  const std::vector<IndexKey>& parts() const { return parts_; }
  const IndexKey& part(size_t i) const { return parts_[i]; }
  size_t width() const { return parts_.size(); }

  int64_t SizeBytes() const;

  /// `(Movie, Matilda)` for compound keys, `Movie` for width 1.
  std::string ToString() const;

 private:
  std::vector<IndexKey> parts_;
};

}  // namespace dt::storage
