#include "storage/document_store.h"

namespace dt::storage {

Result<Collection*> DocumentStore::CreateCollection(const std::string& name,
                                                    CollectionOptions opts) {
  if (collections_.count(name) > 0) {
    return Status::AlreadyExists("collection " + name + " already exists");
  }
  auto coll = std::make_unique<Collection>(db_name_ + "." + name, opts);
  Collection* ptr = coll.get();
  collections_.emplace(name, std::move(coll));
  return ptr;
}

Result<Collection*> DocumentStore::GetCollection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection " + name + " does not exist");
  }
  return it->second.get();
}

Result<const Collection*> DocumentStore::GetCollection(
    const std::string& name) const {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection " + name + " does not exist");
  }
  return static_cast<const Collection*>(it->second.get());
}

Status DocumentStore::AdoptCollection(const std::string& name,
                                      std::unique_ptr<Collection> coll) {
  if (coll == nullptr) {
    return Status::InvalidArgument("cannot adopt a null collection");
  }
  if (collections_.count(name) > 0) {
    return Status::AlreadyExists("collection " + name + " already exists");
  }
  collections_.emplace(name, std::move(coll));
  return Status::OK();
}

Collection* DocumentStore::GetOrCreateCollection(const std::string& name,
                                                 CollectionOptions opts) {
  auto it = collections_.find(name);
  if (it != collections_.end()) return it->second.get();
  return CreateCollection(name, opts).ValueOrDie();
}

Status DocumentStore::DropCollection(const std::string& name) {
  auto it = collections_.find(name);
  if (it == collections_.end()) {
    return Status::NotFound("collection " + name + " does not exist");
  }
  collections_.erase(it);
  return Status::OK();
}

std::vector<std::string> DocumentStore::CollectionNames() const {
  std::vector<std::string> out;
  out.reserve(collections_.size());
  for (const auto& [name, _] : collections_) out.push_back(name);
  return out;
}

}  // namespace dt::storage
