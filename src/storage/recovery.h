/// \file recovery.h
/// \brief Crash recovery: incremental checkpoints + WAL replay.
///
/// `WalManager` owns one durability directory:
///
///   MANIFEST            which checkpoint files are current and which
///                       WAL segment replay starts from (atomic
///                       temp+rename swap, codec-framed)
///   coll-<seq>-<k>.dtb  per-collection checkpoint snapshots (the
///                       standalone collection snapshot format of
///                       storage/snapshot.h, epoch lineage included)
///   wal-<seq>.log       WAL segments (storage/wal.h)
///
/// Life cycle:
///
///   1. `Open` recovers: sweep stale temp files, load the MANIFEST's
///      checkpoint snapshots into a fresh store, then replay every WAL
///      segment >= the manifest floor in sequence order. A record
///      applies iff it names a known (collection, incarnation) lineage
///      AND its epoch is exactly the collection's epoch + 1; records
///      at or below the current epoch are the prefix the checkpoint
///      already folded in and are skipped. Torn segment tails are
///      truncated, never errors.
///   2. `Attach` hooks every collection of the live store with a
///      mutation observer that encodes + appends one WAL record per
///      committed mutation (durability per `DurabilityOptions`).
///   3. `Checkpoint` folds the log: rotate to a fresh segment first,
///      then re-encode ONLY the collections whose (incarnation, epoch)
///      moved since their manifest entry — checkpoint cost is
///      proportional to what changed, not to the corpus — swap the
///      MANIFEST, and prune dead segments/snapshots. Mutations may
///      race a checkpoint freely: each collection snapshot is one
///      immutable view taken after the rotation, so any record a
///      pruned segment carried is covered by a snapshot, and any
///      uncovered record lands in the surviving segment (the epoch
///      filter makes double-application impossible).
///
/// The manager's write path can fail only on I/O errors; since
/// `Collection::Insert` cannot surface a status, the first failure
/// makes the manager sticky-unhealthy (`health()`), after which no
/// further mutation is acknowledged as durable.

#pragma once

#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "storage/document_store.h"
#include "storage/snapshot.h"
#include "storage/wal.h"

namespace dt::storage {

/// Configuration of the durability subsystem.
struct DurabilityOptions {
  /// Directory holding MANIFEST / checkpoints / WAL segments. Empty
  /// disables durability entirely (as does `Durability::kNone`).
  std::string dir;
  /// When is an acknowledged mutation on disk (see storage/wal.h).
  Durability durability = Durability::kGroup;
  /// Auto-checkpoint once the live WAL segment exceeds this many
  /// bytes (a background thread watches the high-water mark).
  /// 0 = manual checkpoints only.
  uint64_t checkpoint_wal_bytes = 64ull << 20;
  /// Encode/decode parallelism for checkpoint snapshots.
  SnapshotOptions snapshot_options;
};

/// Counters surfaced through `DataTamer::durability_stats()` and
/// `ServerStats`.
struct DurabilityStats {
  bool enabled = false;
  Durability mode = Durability::kNone;
  uint64_t wal_appends = 0;
  uint64_t wal_bytes = 0;
  uint64_t wal_syncs = 0;
  uint64_t wal_group_batches = 0;  ///< fsyncs that covered > 1 append
  uint64_t checkpoints = 0;
  /// Collections re-encoded across all checkpoints vs reused clean
  /// from their previous checkpoint file (the incremental win).
  uint64_t checkpoint_collections_written = 0;
  uint64_t checkpoint_collections_reused = 0;
  // What `Open` recovered:
  uint64_t recovered_segments = 0;
  uint64_t recovered_records = 0;  ///< records applied by replay
  uint64_t recovered_skipped = 0;  ///< stale / unknown-lineage records
  uint64_t recovered_torn_bytes = 0;
  /// Replay hit an epoch gap (a record further ahead than the state
  /// it applies to — only possible when un-synced log bytes were lost,
  /// e.g. power loss under kAsync) and stopped at the consistent
  /// prefix before it.
  bool recovery_gap = false;
};

/// \brief The durability subsystem: recovery at open, WAL appends per
/// mutation while attached, incremental checkpoints on demand or by
/// log size.
class WalManager {
 public:
  /// Recovers the durable state under `opts.dir` (creating the
  /// directory if needed) and opens a fresh WAL segment. When a prior
  /// state existed, `*recovered` receives the store rebuilt from
  /// checkpoints + replay; otherwise it is reset to null (fresh
  /// directory). The manager is not yet attached to any store.
  static Result<std::unique_ptr<WalManager>> Open(
      const DurabilityOptions& opts, const std::string& db_name,
      std::unique_ptr<DocumentStore>* recovered);

  /// Stops the checkpoint thread, syncs the log and detaches.
  ~WalManager();
  WalManager(const WalManager&) = delete;
  WalManager& operator=(const WalManager&) = delete;

  /// \brief Attaches the mutation observers to every collection of
  /// `store` (detaching from a previously attached store first — call
  /// before destroying that store). Collections whose lineage the
  /// durable state does not know yet are enrolled: a fresh (epoch 0)
  /// collection costs one create-collection record; a collection with
  /// history (a snapshot loaded over a durable store) forces an
  /// immediate checkpoint so its baseline is on disk. Must not run
  /// concurrently with writers — attach during single-threaded setup.
  /// Dropping a collection from an attached store destroys it under
  /// the manager's observers: `DetachAll` first, drop, then re-attach
  /// (the lineage diff logs the drop durably).
  Status Attach(DocumentStore* store);

  /// Removes the observers from the attached store's collections.
  /// Must be called before the attached store is destroyed/replaced.
  void DetachAll();

  /// Folds the log into per-collection checkpoint snapshots (only
  /// dirty collections are re-encoded) and prunes dead segments.
  Status Checkpoint();

  /// Forces every acknowledged append onto disk (any mode — this is
  /// how kAsync callers bound their loss window manually).
  Status Flush();

  /// First WAL I/O failure, sticky; OK while healthy.
  Status health() const;

  DurabilityStats stats() const;

  const DurabilityOptions& options() const { return opts_; }

  /// Live WAL segment bytes since the last checkpoint (test hook).
  uint64_t wal_bytes() const;

 private:
  /// One durable collection lineage: the checkpoint file capturing it
  /// (empty = none yet) and the (incarnation, epoch) that file holds.
  struct ManifestEntry {
    std::string file;
    uint64_t incarnation = 0;
    uint64_t epoch = 0;
  };

  WalManager(DurabilityOptions opts, std::string db_name);

  Status Recover(std::unique_ptr<DocumentStore>* recovered);
  Status ReadManifestIfPresent(bool* found);
  Status WriteManifestLocked();
  Status CheckpointLocked();
  Status RotateSegmentLocked();
  void PruneLocked();
  void DetachAllLocked();
  /// Appends one already-encoded record payload to the live segment;
  /// pokes the checkpoint thread past the high-water mark.
  Status AppendPayload(std::string_view payload);
  void SetUnhealthy(const Status& st);
  void StartCheckpointThread();

  const DurabilityOptions opts_;
  std::string db_name_;

  /// Serializes checkpoints, attach/detach and manifest state.
  mutable std::mutex state_mu_;
  std::map<std::string, ManifestEntry> manifest_;
  std::map<std::string, Collection*> attached_;
  /// Lineages the durable state tracks (manifest entries + create
  /// records already in the log), keyed by registry name.
  std::map<std::string, uint64_t> known_lineage_;
  uint64_t seq_ = 1;  ///< sequence number of the live segment
  uint64_t manifest_floor_ = 1;

  /// Guards the writer pointer swap; appenders copy the shared_ptr
  /// and append outside this lock so group commit can batch them.
  /// Order: state_mu_ before writer_mu_; never a collection lock
  /// while holding writer_mu_.
  mutable std::mutex writer_mu_;
  std::shared_ptr<WalWriter> writer_;

  mutable std::mutex health_mu_;
  Status health_;

  // Accumulated counters (stats from rotated-away writers fold in
  // here; state_mu_).
  WalWriterStats retired_writer_stats_;
  uint64_t checkpoints_ = 0;
  uint64_t ckpt_written_ = 0;
  uint64_t ckpt_reused_ = 0;
  uint64_t recovered_segments_ = 0;
  uint64_t recovered_records_ = 0;
  uint64_t recovered_skipped_ = 0;
  uint64_t recovered_torn_bytes_ = 0;
  bool recovery_gap_ = false;

  // Background checkpoint trigger (see checkpoint_wal_bytes).
  std::mutex ckpt_thread_mu_;
  std::condition_variable ckpt_cv_;
  bool stop_ = false;
  std::thread ckpt_thread_;
};

}  // namespace dt::storage
