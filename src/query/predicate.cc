#include "query/predicate.h"

#include <algorithm>

#include "common/strutil.h"

namespace dt::query {

using storage::DocValue;
using storage::IndexKey;

PredicatePtr Predicate::Eq(std::string path, DocValue value) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = PredicateKind::kEq;
  p->path_ = std::move(path);
  p->value_ = std::move(value);
  return p;
}

PredicatePtr Predicate::Range(std::string path, DocValue lo, DocValue hi) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = PredicateKind::kRange;
  p->path_ = std::move(path);
  p->value_ = std::move(lo);
  p->hi_ = std::move(hi);
  return p;
}

PredicatePtr Predicate::And(std::vector<PredicatePtr> children) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = PredicateKind::kAnd;
  p->children_ = std::move(children);
  return p;
}

PredicatePtr Predicate::Or(std::vector<PredicatePtr> children) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = PredicateKind::kOr;
  p->children_ = std::move(children);
  return p;
}

PredicatePtr Predicate::TextContains(std::string path, std::string keywords) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = PredicateKind::kTextContains;
  p->path_ = std::move(path);
  p->tokens_ = WordTokens(keywords);
  std::sort(p->tokens_.begin(), p->tokens_.end());
  p->tokens_.erase(std::unique(p->tokens_.begin(), p->tokens_.end()),
                   p->tokens_.end());
  return p;
}

namespace {

/// Key of the value at `path`, with missing/non-indexable collapsing to
/// the null key — the exact rule SecondaryIndex::Insert applies.
IndexKey KeyAt(const DocValue& doc, const std::string& path) {
  const DocValue* v = doc.FindPath(path);
  return v == nullptr ? IndexKey() : IndexKey::FromValue(*v);
}

}  // namespace

bool Predicate::Matches(const DocValue& doc) const {
  switch (kind_) {
    case PredicateKind::kEq:
      return KeyAt(doc, path_) == IndexKey::FromValue(value_);
    case PredicateKind::kRange: {
      IndexKey k = KeyAt(doc, path_);
      IndexKey klo = IndexKey::FromValue(value_);
      IndexKey khi = IndexKey::FromValue(hi_);
      return !(k < klo) && !(khi < k);
    }
    case PredicateKind::kAnd:
      for (const auto& c : children_) {
        if (!c->Matches(doc)) return false;
      }
      return true;
    case PredicateKind::kOr:
      for (const auto& c : children_) {
        if (c->Matches(doc)) return true;
      }
      return false;
    case PredicateKind::kTextContains: {
      const DocValue* v = doc.FindPath(path_);
      if (v == nullptr || !v->is_string()) return false;
      // Tokenize once; the token lists are tiny compared to the text.
      std::vector<std::string> words = WordTokens(v->string_value());
      std::sort(words.begin(), words.end());
      for (const auto& t : tokens_) {
        if (!std::binary_search(words.begin(), words.end(), t)) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

std::string RenderValue(const DocValue& v) {
  return v.is_string() ? "\"" + v.string_value() + "\"" : v.ToJson();
}

}  // namespace

std::string Predicate::ToString() const {
  switch (kind_) {
    case PredicateKind::kEq:
      return path_ + " == " + RenderValue(value_);
    case PredicateKind::kRange:
      return path_ + " in [" + RenderValue(value_) + ", " + RenderValue(hi_) +
             "]";
    case PredicateKind::kAnd:
    case PredicateKind::kOr: {
      if (children_.empty()) {
        return kind_ == PredicateKind::kAnd ? "TRUE" : "FALSE";
      }
      const char* sep = kind_ == PredicateKind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      out += ")";
      return out;
    }
    case PredicateKind::kTextContains: {
      std::string out = path_ + " contains {";
      for (size_t i = 0; i < tokens_.size(); ++i) {
        if (i > 0) out += ", ";
        out += tokens_[i];
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

}  // namespace dt::query
