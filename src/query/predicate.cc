#include "query/predicate.h"

#include <algorithm>

#include "common/strutil.h"
#include "storage/codec.h"

namespace dt::query {

using storage::DocValue;
using storage::IndexKey;

PredicatePtr Predicate::Eq(std::string path, DocValue value) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = PredicateKind::kEq;
  p->path_ = std::move(path);
  p->value_ = std::move(value);
  return p;
}

PredicatePtr Predicate::Range(std::string path, DocValue lo, DocValue hi) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = PredicateKind::kRange;
  p->path_ = std::move(path);
  p->value_ = std::move(lo);
  p->hi_ = std::move(hi);
  return p;
}

PredicatePtr Predicate::And(std::vector<PredicatePtr> children) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = PredicateKind::kAnd;
  p->children_ = std::move(children);
  return p;
}

PredicatePtr Predicate::Or(std::vector<PredicatePtr> children) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = PredicateKind::kOr;
  p->children_ = std::move(children);
  return p;
}

PredicatePtr Predicate::TextContains(std::string path, std::string keywords) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = PredicateKind::kTextContains;
  p->path_ = std::move(path);
  p->tokens_ = WordTokens(keywords);
  std::sort(p->tokens_.begin(), p->tokens_.end());
  p->tokens_.erase(std::unique(p->tokens_.begin(), p->tokens_.end()),
                   p->tokens_.end());
  return p;
}

namespace {

/// Key of the value at `path`, with missing/non-indexable collapsing to
/// the null key — the exact rule SecondaryIndex::Insert applies.
IndexKey KeyAt(const DocValue& doc, const std::string& path) {
  const DocValue* v = doc.FindPath(path);
  return v == nullptr ? IndexKey() : IndexKey::FromValue(*v);
}

}  // namespace

bool Predicate::Matches(const DocValue& doc) const {
  switch (kind_) {
    case PredicateKind::kEq:
      return KeyAt(doc, path_) == IndexKey::FromValue(value_);
    case PredicateKind::kRange: {
      IndexKey k = KeyAt(doc, path_);
      IndexKey klo = IndexKey::FromValue(value_);
      IndexKey khi = IndexKey::FromValue(hi_);
      return !(k < klo) && !(khi < k);
    }
    case PredicateKind::kAnd:
      for (const auto& c : children_) {
        if (!c->Matches(doc)) return false;
      }
      return true;
    case PredicateKind::kOr:
      for (const auto& c : children_) {
        if (c->Matches(doc)) return true;
      }
      return false;
    case PredicateKind::kTextContains: {
      const DocValue* v = doc.FindPath(path_);
      if (v == nullptr || !v->is_string()) return false;
      // Tokenize once; the token lists are tiny compared to the text.
      std::vector<std::string> words = WordTokens(v->string_value());
      std::sort(words.begin(), words.end());
      for (const auto& t : tokens_) {
        if (!std::binary_search(words.begin(), words.end(), t)) return false;
      }
      return true;
    }
  }
  return false;
}

namespace {

std::string RenderValue(const DocValue& v) {
  return v.is_string() ? "\"" + v.string_value() + "\"" : v.ToJson();
}

}  // namespace

std::string Predicate::ToString() const {
  switch (kind_) {
    case PredicateKind::kEq:
      return path_ + " == " + RenderValue(value_);
    case PredicateKind::kRange:
      return path_ + " in [" + RenderValue(value_) + ", " + RenderValue(hi_) +
             "]";
    case PredicateKind::kAnd:
    case PredicateKind::kOr: {
      if (children_.empty()) {
        return kind_ == PredicateKind::kAnd ? "TRUE" : "FALSE";
      }
      const char* sep = kind_ == PredicateKind::kAnd ? " AND " : " OR ";
      std::string out = "(";
      for (size_t i = 0; i < children_.size(); ++i) {
        if (i > 0) out += sep;
        out += children_[i]->ToString();
      }
      out += ")";
      return out;
    }
    case PredicateKind::kTextContains: {
      std::string out = path_ + " contains {";
      for (size_t i = 0; i < tokens_.size(); ++i) {
        if (i > 0) out += ", ";
        out += tokens_[i];
      }
      out += "}";
      return out;
    }
  }
  return "?";
}

// ---- wire serialization ------------------------------------------------

DocValue Predicate::ToDocValue() const {
  DocValue out = DocValue::Array();
  switch (kind_) {
    case PredicateKind::kEq:
      out.Push(DocValue::Str("eq"));
      out.Push(DocValue::Str(path_));
      out.Push(value_);
      break;
    case PredicateKind::kRange:
      out.Push(DocValue::Str("range"));
      out.Push(DocValue::Str(path_));
      out.Push(value_);
      out.Push(hi_);
      break;
    case PredicateKind::kAnd:
    case PredicateKind::kOr:
      out.Push(DocValue::Str(kind_ == PredicateKind::kAnd ? "and" : "or"));
      for (const auto& c : children_) out.Push(c->ToDocValue());
      break;
    case PredicateKind::kTextContains: {
      out.Push(DocValue::Str("text"));
      out.Push(DocValue::Str(path_));
      DocValue toks = DocValue::Array();
      for (const auto& t : tokens_) toks.Push(DocValue::Str(t));
      out.Push(std::move(toks));
      break;
    }
  }
  return out;
}

namespace {

Result<PredicatePtr> FromDocValueImpl(const DocValue& v, int depth) {
  if (depth > storage::kMaxDecodeDepth) {
    return Status::InvalidArgument("predicate nesting too deep");
  }
  if (!v.is_array() || v.array_items().empty() ||
      !v.array_items()[0].is_string()) {
    return Status::InvalidArgument(
        "predicate node must be a tagged array [\"tag\", ...]");
  }
  const auto& items = v.array_items();
  const std::string& tag = items[0].string_value();
  if (tag == "eq") {
    if (items.size() != 3 || !items[1].is_string()) {
      return Status::InvalidArgument("eq node wants [\"eq\", path, value]");
    }
    return Predicate::Eq(items[1].string_value(), items[2]);
  }
  if (tag == "range") {
    if (items.size() != 4 || !items[1].is_string()) {
      return Status::InvalidArgument(
          "range node wants [\"range\", path, lo, hi]");
    }
    return Predicate::Range(items[1].string_value(), items[2], items[3]);
  }
  if (tag == "and" || tag == "or") {
    std::vector<PredicatePtr> children;
    children.reserve(items.size() - 1);
    for (size_t i = 1; i < items.size(); ++i) {
      DT_ASSIGN_OR_RETURN(PredicatePtr child,
                          FromDocValueImpl(items[i], depth + 1));
      children.push_back(std::move(child));
    }
    return tag == "and" ? Predicate::And(std::move(children))
                        : Predicate::Or(std::move(children));
  }
  if (tag == "text") {
    if (items.size() != 3 || !items[1].is_string() || !items[2].is_array()) {
      return Status::InvalidArgument(
          "text node wants [\"text\", path, [token...]]");
    }
    // Rejoin the tokens and route through the TextContains constructor:
    // its tokenize/sort/dedup pass canonicalizes whatever a remote
    // client sent, so Matches semantics never depend on the sender.
    std::string keywords;
    for (const auto& t : items[2].array_items()) {
      if (!t.is_string()) {
        return Status::InvalidArgument("text tokens must be strings");
      }
      if (!keywords.empty()) keywords += ' ';
      keywords += t.string_value();
    }
    return Predicate::TextContains(items[1].string_value(),
                                   std::move(keywords));
  }
  return Status::InvalidArgument("unknown predicate tag: " + tag);
}

}  // namespace

Result<PredicatePtr> Predicate::FromDocValue(const DocValue& v) {
  return FromDocValueImpl(v, 0);
}

}  // namespace dt::query
