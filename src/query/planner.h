/// \file planner.h
/// \brief Cost-aware query planner for document collections — the
/// index-routed read path behind `Find` (execution lives in
/// executor.h's cursor operators).
///
/// Given a predicate tree, the planner picks the cheapest access path:
///
///   IXSCAN       Eq/Range predicates over a `SecondaryIndex` — single
///                field or a compound index prefix: an And's equality
///                children bind leading components, one range child
///                binds the next, and an `order_by` on the following
///                component rides the scan order (sort push-down).
///   TEXT         TextContains predicates via `InvertedIndex` postings
///                intersection (smallest posting list first).
///   UNION        Or whose branches are all individually
///                index-routable (ascending-id streaming merge).
///   MERGE_UNION  Or under an `order_by` all of whose branches are
///                order-covering index scans: a k-way (order key,
///                id-asc) merge, so the ordered Or executes SORT-free
///                and a limit early-terminates the branch walks.
///   COLLSCAN     everything else: a full scan, chunked over the
///                thread pool when `num_threads > 1`.
///
/// The access path is then decorated into an operator pipeline —
/// FILTER for residual re-checks, SORT / TOPK (fused sort+limit) when
/// no index covers the requested order, LIMIT — and executed as a
/// pull-based cursor tree, so an order-covering indexed `limit` query
/// early-terminates after ~limit index entries instead of scanning,
/// materializing and sorting everything. Whatever the path, the result
/// is exactly the documents the predicate matches, ordered by
/// `order_by` (ties ascending id; ascending id overall when unset) —
/// index execution and full scans agree by construction, a property
/// the differential fuzz harness asserts over randomized predicate
/// trees, orders and limits.
///
/// Every execution bumps the collection's `index_scans`/`coll_scans`
/// counters (surfaced in `db.<coll>.stats()`), and `ExplainFind`
/// renders the chosen operator tree without running it, e.g.
/// `IXSCAN(type,award_winning) { type == "Movie", award_winning ==
/// "true" } est=12 -> LIMIT(10)`.

#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/executor.h"
#include "query/predicate.h"
#include "query/text_search.h"
#include "storage/collection.h"

namespace dt::query {

/// Execution knobs for `Find`.
struct FindOptions {
  /// Threads for the full-scan fallback: 1 = serial, <= 0 = all
  /// hardware threads. Results are identical for every value.
  int num_threads = 1;
  /// Keep only the first `limit` results (in the requested order);
  /// -1 = unlimited. Honored inside execution: an order-covering index
  /// scan stops after ~limit entries.
  int64_t limit = -1;
  /// Order results by the index keys of the values at these dotted
  /// paths — one path, or several comma-separated ("type,name") for a
  /// lexicographic multi-field order (paths cannot contain ',', so the
  /// separator is unambiguous). Missing fields and non-indexable
  /// values sort as the null key, first ascending; ties across all
  /// paths break by ascending id. Empty = ascending id. An index whose
  /// components cover the paths in sequence (after any equality-bound
  /// prefix) serves the order scan-free.
  std::string order_by;
  /// Flips the `order_by` key comparison (ties stay ascending by id).
  bool order_desc = false;
  /// Inverted index serving TextContains predicates. Only consulted
  /// when its `field_path()` matches the predicate's path; the caller
  /// is responsible for it being current w.r.t. the collection.
  const InvertedIndex* text_index = nullptr;
  /// Planner escape hatch: false forces COLLSCAN (differential tests;
  /// measuring raw scan cost).
  bool use_indexes = true;
  /// Debug/testing knob (never serialized): true reproduces the
  /// pre-statistics planner — candidates cost with full O(hits) exact
  /// counts instead of the O(1) bounded-walk + histogram estimates,
  /// and the stats-driven filtered order-walk switch stays off. The
  /// plan-quality differential harness and the bench baselines compare
  /// against this.
  bool debug_exact_count_planning = false;
  /// \brief Page size for resumable execution: `FindPage` returns at
  /// most this many ids plus an opaque continuation token when more
  /// remain. -1 = unpaged (the whole result in one shot, no token);
  /// 0 and other negatives are invalid. Orthogonal to `limit`, which
  /// bounds the *total* across all pages.
  int64_t page_size = -1;
  /// \brief Opaque continuation token from a prior page's
  /// `FindResult::next_token`. Execution restarts strictly after the
  /// last id that page returned, against the *same immutable storage
  /// version* the token was minted on — stitched pages are
  /// byte-identical to the one-shot result even when writers mutate
  /// the collection between pages, because minting a token retains
  /// that version for resumption. Rejected with `kInvalidArgument`
  /// when malformed/tampered, when the token belongs to a different
  /// collection incarnation (e.g. a pre-restart lineage), when the
  /// version it pins has been reclaimed (the error message contains
  /// "stale"), or when the re-planned query fingerprint (predicate,
  /// index bounds, order, limit) differs.
  std::string resume_token;
  /// Borrowed worker pool for parallel scans; null = construct a
  /// transient pool when `num_threads` resolves past 1 (the facade
  /// shares its cached pool through this).
  ThreadPool* pool = nullptr;
  /// Out-param: reset and filled by `Find` with what the execution
  /// actually touched (push-down observability). May be null.
  ExecStats* stats = nullptr;
};

/// How a (sub)plan accesses the collection.
enum class AccessPath : uint8_t {
  kIndexEq = 0,    ///< secondary-index point lookup (equality bounds only)
  kIndexRange = 1, ///< secondary-index ordered range / prefix scan
  kTextIndex = 2,  ///< inverted-index postings intersection
  kUnion = 3,      ///< union of index-routable Or branches
  kCollScan = 4,   ///< full scan (parallel-chunked fallback)
  kMergeUnion = 5  ///< ordered k-way merge of order-covering Or branches
};

const char* AccessPathName(AccessPath access);

/// \brief The chosen execution strategy for one predicate (tree): an
/// access path plus its operator-pipeline decoration (residual filter,
/// order, limit).
struct QueryPlan {
  AccessPath access = AccessPath::kCollScan;
  /// Predicate this plan answers exactly.
  PredicatePtr node;
  /// kIndexEq/kIndexRange/kTextIndex: a representative driving leaf
  /// (the first equality child for compound scans; null for a pure
  /// order-driven scan).
  PredicatePtr driver;
  /// True when the driving scan over-approximates `node`: fetched
  /// documents are re-checked with `node->Matches` (FILTER operator).
  bool residual = false;
  /// Driver cardinality estimate from the index (COLLSCAN: doc count).
  int64_t estimated_rows = 0;
  /// True when `estimated_rows` (and every branch's) came from exact
  /// bounded counts; false when a histogram/sketch estimate was
  /// involved — rendered as `est=N (exact)` vs `est=~N (hist)`.
  bool est_exact = true;
  /// kUnion: one exact sub-plan per Or branch.
  std::vector<QueryPlan> branches;

  // ---- IXSCAN access detail ----

  /// Index driving a kIndexEq/kIndexRange scan. Borrowed from the
  /// collection: valid while the collection outlives the plan and the
  /// index is not dropped.
  const storage::SecondaryIndex* index = nullptr;
  /// Equality bounds on the index's leading components, in component
  /// order.
  std::vector<storage::DocValue> eq_values;
  /// Optional inclusive range bound on the next component.
  bool has_range = false;
  storage::DocValue range_lo, range_hi;

  // ---- Pipeline decoration (from FindOptions at plan time) ----

  std::string order_by;
  bool order_desc = false;
  int64_t limit = -1;
  /// True when the index scan already streams in the requested order
  /// (no SORT/TOPK operator; a limit becomes an early-terminating
  /// LIMIT over the scan).
  bool order_covered = false;

  /// Operator-tree rendering, e.g.
  ///   `IXSCAN(type,name) { type == "Movie" } est=12 -> LIMIT(10)`.
  /// Implemented as `RenderPlan(ToDocValue())`, so the human string and
  /// the structured wire form can never drift apart.
  std::string ToString() const;

  /// \brief Structured machine-readable form of the plan (what
  /// `Explain` ships to remote clients): access tag, predicates in
  /// `Predicate::ToDocValue` form, index bounds and the pipeline
  /// decoration, with `branches` recursing.
  storage::DocValue ToDocValue() const;
};

/// \brief Formats a `QueryPlan::ToDocValue` document back into the
/// exact `QueryPlan::ToString` rendering. Tolerant of malformed input
/// (missing/mistyped fields render as placeholders, never crash) so a
/// client can safely pretty-print whatever a server sent.
std::string RenderPlan(const storage::DocValue& plan);

/// \brief Chooses the cheapest access path for `pred` over the storage
/// version behind `view` (does not execute). A null `pred` plans as a
/// match-all COLLSCAN. The plan's `index` pointer borrows from that
/// version, so the plan is valid while `view` (or a copy) is alive.
QueryPlan PlanFind(const storage::CollectionView& view,
                   const PredicatePtr& pred, const FindOptions& opts = {});

/// Convenience overload planning against the currently published
/// version; the plan's `index` borrows from it, so writers publishing
/// new versions do not invalidate the plan.
QueryPlan PlanFind(const storage::Collection& coll, const PredicatePtr& pred,
                   const FindOptions& opts = {});

/// \brief One page of a resumable `Find`: the ids plus the opaque
/// token that continues the stream (empty when exhausted or unpaged).
struct FindResult {
  std::vector<storage::DocId> ids;
  std::string next_token;
};

/// \brief Plans and executes one page: exactly the documents matching
/// `pred` in the requested order, `opts.page_size` at a time, resumed
/// strictly after `opts.resume_token`'s position. Execution runs
/// against `view`'s immutable storage version; when a continuation
/// token is minted that version is retained so the next page resumes
/// against the exact same data — stitching pages yields byte-identical
/// output to the one-shot call even under concurrent writers, and
/// resuming an order-covering indexed query examines O(page_size)
/// index entries — not O(consumed offset). A token whose version has
/// since been reclaimed (the collection retains a bounded window of
/// versions) is rejected with `kInvalidArgument` whose message
/// contains "stale". Every page bumps the collection's index-scan /
/// coll-scan counter once. Errors on invalid arguments (null
/// predicate, bad page size, rejected token) or a scan body failure
/// (thread-pool propagated).
Result<FindResult> FindPage(const storage::CollectionView& view,
                            const PredicatePtr& pred,
                            const FindOptions& opts = {});

/// Convenience overload executing against the currently published
/// version (`coll.GetView()`).
Result<FindResult> FindPage(const storage::Collection& coll,
                            const PredicatePtr& pred,
                            const FindOptions& opts = {});

/// \brief Plans and executes: returns the ids of exactly the documents
/// matching `pred` in the requested order (ascending id by default),
/// truncated to `limit` inside execution, and bumps the collection's
/// index-scan / coll-scan counter. Pagination options are honored
/// (one page's ids come back) but the continuation token is dropped —
/// use `FindPage` to paginate. Errors only on invalid arguments or a
/// scan body failure (thread-pool propagated).
Result<std::vector<storage::DocId>> Find(const storage::CollectionView& view,
                                         const PredicatePtr& pred,
                                         const FindOptions& opts = {});

/// Convenience overload executing against the currently published
/// version (`coll.GetView()`).
Result<std::vector<storage::DocId>> Find(const storage::Collection& coll,
                                         const PredicatePtr& pred,
                                         const FindOptions& opts = {});

/// \brief Streaming execution: invokes `fn` for every matching id in
/// the requested order without materializing the id vector — the
/// aggregation fold behind `CountByField`/`TopKByCount`. Pagination
/// options are ignored.
Status FindFold(const storage::CollectionView& view, const PredicatePtr& pred,
                const FindOptions& opts,
                const std::function<void(storage::DocId)>& fn);

/// Convenience overload executing against the currently published
/// version (`coll.GetView()`).
Status FindFold(const storage::Collection& coll, const PredicatePtr& pred,
                const FindOptions& opts,
                const std::function<void(storage::DocId)>& fn);

/// The plan `Find` would run, rendered for humans (the shape of the
/// mongo shell's `explain()` next to the paper's `stats()` calls).
/// With a resume token set, appends where the resumed execution would
/// restart: `resume=<checkpoint json>` against the current version,
/// `resume=RETAINED <checkpoint json>` against a retained older
/// version, or why the token would be rejected (`resume=INVALID`,
/// `resume=STALE(...)`, `resume=PLAN_MISMATCH`).
std::string ExplainFind(const storage::CollectionView& view,
                        const PredicatePtr& pred,
                        const FindOptions& opts = {});

/// Convenience overload rendering against the currently published
/// version (`coll.GetView()`).
std::string ExplainFind(const storage::Collection& coll,
                        const PredicatePtr& pred,
                        const FindOptions& opts = {});

}  // namespace dt::query
