/// \file planner.h
/// \brief Cost-aware query planner and executor for document
/// collections — the index-routed read path behind `Find`.
///
/// Given a predicate tree, the planner picks the cheapest access path:
///
///   IXSCAN    Eq/Range predicates over a `SecondaryIndex` field (the
///             B-tree stand-in's ordered point/range iteration).
///   TEXT      TextContains predicates via `InvertedIndex` postings
///             intersection (smallest posting list first).
///   UNION     Or whose branches are all individually index-routable.
///   COLLSCAN  everything else: a full scan, chunked over the PR-1
///             thread pool when `num_threads > 1`.
///
/// An And picks its most selective indexable child as the driving scan
/// (estimated row counts come from the index itself) and re-checks the
/// full predicate on the fetched documents (residual filter). Whatever
/// the path, the result is the ascending-id set of exactly the
/// documents the predicate matches — index execution and full scans
/// agree by construction, a property the differential fuzz harness
/// asserts over randomized predicate trees.
///
/// Every execution bumps the collection's `index_scans`/`coll_scans`
/// counters (surfaced in `db.<coll>.stats()`), and `ExplainFind`
/// renders the chosen plan without running it.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "query/text_search.h"
#include "storage/collection.h"

namespace dt::query {

/// Execution knobs for `Find`.
struct FindOptions {
  /// Threads for the full-scan fallback: 1 = serial, <= 0 = all
  /// hardware threads. Results are identical for every value.
  int num_threads = 1;
  /// Keep only the first `limit` ids (ascending); -1 = unlimited.
  int64_t limit = -1;
  /// Inverted index serving TextContains predicates. Only consulted
  /// when its `field_path()` matches the predicate's path; the caller
  /// is responsible for it being current w.r.t. the collection.
  const InvertedIndex* text_index = nullptr;
  /// Planner escape hatch: false forces COLLSCAN (differential tests;
  /// measuring raw scan cost).
  bool use_indexes = true;
};

/// How a (sub)plan accesses the collection.
enum class AccessPath : uint8_t {
  kIndexEq = 0,    ///< secondary-index point lookup
  kIndexRange = 1, ///< secondary-index ordered range scan
  kTextIndex = 2,  ///< inverted-index postings intersection
  kUnion = 3,      ///< union of index-routable Or branches
  kCollScan = 4    ///< full scan (parallel-chunked fallback)
};

const char* AccessPathName(AccessPath access);

/// \brief The chosen execution strategy for one predicate (tree).
struct QueryPlan {
  AccessPath access = AccessPath::kCollScan;
  /// Predicate this plan answers exactly.
  PredicatePtr node;
  /// kIndexEq/kIndexRange/kTextIndex: the Eq/Range/TextContains node
  /// driving the access (== `node` unless `node` is an And).
  PredicatePtr driver;
  /// True when the driving scan over-approximates `node`: fetched
  /// documents are re-checked with `node->Matches`.
  bool residual = false;
  /// Driver cardinality estimate from the index (COLLSCAN: doc count).
  int64_t estimated_rows = 0;
  /// kUnion: one exact sub-plan per Or branch.
  std::vector<QueryPlan> branches;

  /// One-line rendering, e.g.
  ///   `IXSCAN { name == "Matilda" } est=12 | residual (type == ...)`.
  std::string ToString() const;
};

/// \brief Chooses the cheapest access path for `pred` over `coll`
/// (does not execute). `pred` must be non-null.
QueryPlan PlanFind(const storage::Collection& coll, const PredicatePtr& pred,
                   const FindOptions& opts = {});

/// \brief Plans and executes: returns the ascending ids of exactly the
/// documents matching `pred`, and bumps the collection's index-scan /
/// coll-scan counter. Errors only on invalid arguments or a scan body
/// failure (thread-pool propagated).
Result<std::vector<storage::DocId>> Find(const storage::Collection& coll,
                                         const PredicatePtr& pred,
                                         const FindOptions& opts = {});

/// The plan `Find` would run, rendered for humans (the shape of the
/// mongo shell's `explain()` next to the paper's `stats()` calls).
std::string ExplainFind(const storage::Collection& coll,
                        const PredicatePtr& pred,
                        const FindOptions& opts = {});

}  // namespace dt::query
