/// \file predicate.h
/// \brief Structured query predicates over document collections.
///
/// A `Predicate` is an immutable tree of `Eq` / `Range` / `And` / `Or`
/// / `TextContains` nodes — the filter language behind the planner's
/// `Find`. Comparison semantics are deliberately those of the
/// secondary-index key space (storage::IndexKey): numbers compare as a
/// common numeric domain, and missing fields, explicit nulls and
/// non-indexable values (arrays/objects) all collapse to the null key.
/// That makes a full-scan evaluation of a predicate agree *exactly*
/// with an index-backed one, which the differential planner/oracle
/// tests assert over randomized trees.

#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/docvalue.h"
#include "storage/index.h"

namespace dt::query {

class Predicate;
/// Predicates are shared immutable trees; subtrees can be reused across
/// queries (and across threads — evaluation is const).
using PredicatePtr = std::shared_ptr<const Predicate>;

/// Node type of a predicate tree.
enum class PredicateKind : uint8_t {
  kEq = 0,           ///< field key == value key
  kRange = 1,        ///< lo key <= field key <= hi key (inclusive)
  kAnd = 2,          ///< all children match
  kOr = 3,           ///< at least one child matches
  kTextContains = 4  ///< string field contains every keyword token
};

/// \brief One node of an immutable predicate tree.
class Predicate {
 public:
  // ---- Constructors (the only way to build nodes) ----

  /// Field at `path` equals `value` under index-key comparison.
  static PredicatePtr Eq(std::string path, storage::DocValue value);

  /// Field at `path` lies in [lo, hi] inclusive under index-key order.
  static PredicatePtr Range(std::string path, storage::DocValue lo,
                            storage::DocValue hi);

  /// Conjunction. An empty conjunction matches everything.
  static PredicatePtr And(std::vector<PredicatePtr> children);

  /// Disjunction. An empty disjunction matches nothing.
  static PredicatePtr Or(std::vector<PredicatePtr> children);

  /// \brief The string field at `path` contains every word token of
  /// `keywords` (tokenization identical to the inverted index: lower-
  /// cased alphanumeric runs). With zero tokens the node matches any
  /// document whose `path` holds a string.
  static PredicatePtr TextContains(std::string path, std::string keywords);

  // ---- Introspection ----

  PredicateKind kind() const { return kind_; }
  /// Field path (kEq / kRange / kTextContains nodes).
  const std::string& path() const { return path_; }
  /// Comparison value (kEq).
  const storage::DocValue& value() const { return value_; }
  /// Range bounds (kRange).
  const storage::DocValue& lo() const { return value_; }
  const storage::DocValue& hi() const { return hi_; }
  /// Children (kAnd / kOr).
  const std::vector<PredicatePtr>& children() const { return children_; }
  /// Deduplicated lower-cased query tokens (kTextContains).
  const std::vector<std::string>& tokens() const { return tokens_; }

  /// \brief Evaluates the predicate against one document. This is the
  /// scan fallback *and* the differential oracle: index execution must
  /// (and does) return exactly the ids whose documents satisfy this.
  bool Matches(const storage::DocValue& doc) const;

  /// Compact rendering, e.g. `(type == "Movie" AND year in [1990, 1999])`.
  std::string ToString() const;

  /// \brief Serializes the tree as a tagged `DocValue` array — the
  /// predicate half of the wire-serializable `QueryRequest`:
  ///
  ///   ["eq", path, value]
  ///   ["range", path, lo, hi]
  ///   ["and", child...]            ["or", child...]
  ///   ["text", path, [token...]]
  ///
  /// `FromDocValue(ToDocValue())` reconstructs a tree with identical
  /// `Matches` semantics, and re-encoding it is byte-identical under
  /// the storage codec (TextContains carries its canonical sorted
  /// deduplicated token list, which retokenizes to itself).
  storage::DocValue ToDocValue() const;

  /// \brief Rebuilds a predicate tree from `ToDocValue` form. Every
  /// shape error (wrong tag, arity, element type, nesting past
  /// `storage::kMaxDecodeDepth`) is `kInvalidArgument` — malformed
  /// remote input never crashes and never builds a half-formed tree.
  static Result<PredicatePtr> FromDocValue(const storage::DocValue& v);

 private:
  Predicate() = default;

  PredicateKind kind_ = PredicateKind::kAnd;
  std::string path_;
  storage::DocValue value_;  // Eq value; Range lo
  storage::DocValue hi_;     // Range hi
  std::vector<PredicatePtr> children_;
  std::vector<std::string> tokens_;
};

}  // namespace dt::query
