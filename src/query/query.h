/// \file query.h
/// \brief Query operators over document collections and relational
/// tables — enough algebra for the paper's demo queries (top-k most
/// discussed, point lookups, projections, joins).

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "relational/table.h"
#include "storage/collection.h"

namespace dt::query {

/// \brief One group of a count aggregation.
struct CountRow {
  std::string key;
  int64_t count = 0;
};

/// Optional document predicate.
using DocFilter = std::function<bool(const storage::DocValue&)>;

/// \brief Group-by-count of the values at `path`: one row per distinct
/// index key (missing fields, nulls and non-indexable arrays/objects
/// are skipped), rendered through the key's string form. Results are
/// sorted by descending count, ties by key.
///
/// Documents are restricted to those matching `pred` (null = all),
/// routed through the planner: an indexable predicate drives an index
/// scan, and the unfiltered form over an indexed `path` is answered
/// straight off the index's key counts without touching any document.
std::vector<CountRow> CountByField(const storage::Collection& coll,
                                   const std::string& path,
                                   const PredicatePtr& pred,
                                   const FindOptions& opts = {});

/// Arbitrary-code filter variant (not plannable: always scans).
std::vector<CountRow> CountByField(const storage::Collection& coll,
                                   const std::string& path,
                                   const DocFilter& filter = nullptr);

/// \brief First `k` groups of CountByField — the Table IV "top 10 most
/// discussed" query shape. Selection keeps a bounded k-element heap
/// over the group counts instead of sorting every group.
std::vector<CountRow> TopKByCount(const storage::Collection& coll,
                                  const std::string& path, int k,
                                  const PredicatePtr& pred,
                                  const FindOptions& opts = {});

/// Arbitrary-code filter variant (not plannable: always scans).
std::vector<CountRow> TopKByCount(const storage::Collection& coll,
                                  const std::string& path, int k,
                                  const DocFilter& filter = nullptr);

/// \brief Projection: keeps `attrs` in the given order. Unknown
/// attributes are an error.
Result<relational::Table> Project(const relational::Table& table,
                                  const std::vector<std::string>& attrs);

/// \brief Sorts by one attribute (stable); `descending` flips order.
Result<relational::Table> OrderBy(const relational::Table& table,
                                  const std::string& attr, bool descending);

/// \brief Keeps the first `n` rows.
relational::Table Limit(const relational::Table& table, int64_t n);

/// \brief Hash equi-join on string-rendered key equality. Output schema
/// is left's attributes followed by right's (right-side name clashes
/// get a "right_" prefix).
Result<relational::Table> HashJoin(const relational::Table& left,
                                   const std::string& left_attr,
                                   const relational::Table& right,
                                   const std::string& right_attr);

}  // namespace dt::query
