#include "query/query.h"

#include <algorithm>
#include <unordered_map>

namespace dt::query {

using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;

std::vector<CountRow> CountByField(const storage::Collection& coll,
                                   const std::string& path,
                                   const DocFilter& filter) {
  std::unordered_map<std::string, int64_t> counts;
  coll.ForEach([&](storage::DocId, const storage::DocValue& doc) {
    if (filter != nullptr && !filter(doc)) return;
    const storage::DocValue* v = doc.FindPath(path);
    if (v == nullptr || v->is_null()) return;
    std::string key = v->is_string() ? v->string_value() : v->ToJson();
    ++counts[key];
  });
  std::vector<CountRow> out;
  out.reserve(counts.size());
  for (const auto& [key, count] : counts) out.push_back({key, count});
  std::sort(out.begin(), out.end(), [](const CountRow& a, const CountRow& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.key < b.key;
  });
  return out;
}

std::vector<CountRow> TopKByCount(const storage::Collection& coll,
                                  const std::string& path, int k,
                                  const DocFilter& filter) {
  auto all = CountByField(coll, path, filter);
  if (static_cast<int>(all.size()) > k) all.resize(k);
  return all;
}

Result<Table> Project(const Table& table,
                      const std::vector<std::string>& attrs) {
  Schema schema;
  std::vector<int> indexes;
  for (const auto& name : attrs) {
    auto idx = table.schema().IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound("attribute " + name + " not in table " +
                              table.name());
    }
    indexes.push_back(*idx);
    DT_RETURN_NOT_OK(schema.AddAttribute(table.schema().attribute(*idx)));
  }
  Table out(table.name() + "_proj", schema);
  out.set_source_id(table.source_id());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    Row row;
    row.reserve(indexes.size());
    for (int idx : indexes) row.push_back(table.row(r)[idx]);
    DT_RETURN_NOT_OK(out.Append(std::move(row)));
  }
  return out;
}

Result<Table> OrderBy(const Table& table, const std::string& attr,
                      bool descending) {
  auto idx = table.schema().IndexOf(attr);
  if (!idx.has_value()) {
    return Status::NotFound("attribute " + attr + " not in table " +
                            table.name());
  }
  std::vector<int64_t> order(table.num_rows());
  for (int64_t i = 0; i < table.num_rows(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    int cmp = table.row(a)[*idx].Compare(table.row(b)[*idx]);
    return descending ? cmp > 0 : cmp < 0;
  });
  Table out(table.name() + "_sorted", table.schema());
  out.set_source_id(table.source_id());
  for (int64_t i : order) {
    DT_RETURN_NOT_OK(out.Append(table.row(i)));
  }
  return out;
}

Table Limit(const Table& table, int64_t n) {
  Table out(table.name() + "_limit", table.schema());
  out.set_source_id(table.source_id());
  for (int64_t r = 0; r < std::min(n, table.num_rows()); ++r) {
    (void)out.Append(table.row(r));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const std::string& left_attr,
                       const Table& right, const std::string& right_attr) {
  auto li = left.schema().IndexOf(left_attr);
  auto ri = right.schema().IndexOf(right_attr);
  if (!li.has_value()) {
    return Status::NotFound("attribute " + left_attr + " not in " +
                            left.name());
  }
  if (!ri.has_value()) {
    return Status::NotFound("attribute " + right_attr + " not in " +
                            right.name());
  }
  Schema schema;
  for (const auto& a : left.schema().attributes()) {
    DT_RETURN_NOT_OK(schema.AddAttribute(a));
  }
  for (const auto& a : right.schema().attributes()) {
    relational::Attribute attr = a;
    if (schema.Contains(attr.name)) attr.name = "right_" + attr.name;
    DT_RETURN_NOT_OK(schema.AddAttribute(attr));
  }
  // Build on the smaller side conceptually; keep it simple and build on
  // right.
  std::unordered_map<std::string, std::vector<int64_t>> index;
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    const Value& v = right.row(r)[*ri];
    if (v.is_null()) continue;
    index[v.ToString()].push_back(r);
  }
  Table out(left.name() + "_join_" + right.name(), schema);
  for (int64_t l = 0; l < left.num_rows(); ++l) {
    const Value& v = left.row(l)[*li];
    if (v.is_null()) continue;
    auto it = index.find(v.ToString());
    if (it == index.end()) continue;
    for (int64_t r : it->second) {
      Row row = left.row(l);
      for (const auto& cell : right.row(r)) row.push_back(cell);
      DT_RETURN_NOT_OK(out.Append(std::move(row)));
    }
  }
  return out;
}

}  // namespace dt::query
