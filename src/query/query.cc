#include "query/query.h"

#include <algorithm>
#include <unordered_map>

#include "common/thread_pool.h"

namespace dt::query {

using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;
using storage::DocValue;
using storage::IndexKey;

namespace {

/// Group-key rendering shared by every counting path: the index key's
/// string form. Null keys (missing fields, explicit nulls and
/// non-indexable arrays/objects) are not countable — the same rule the
/// index-only aggregation applies, so scan and index counting agree.
bool CountKeyOf(const DocValue* v, std::string* key) {
  if (v == nullptr) return false;
  IndexKey k = IndexKey::FromValue(*v);
  if (k.is_null()) return false;
  *key = k.ToString();
  return true;
}

/// Descending count, ties broken by ascending key.
bool BetterRow(const CountRow& a, const CountRow& b) {
  if (a.count != b.count) return a.count > b.count;
  return a.key < b.key;
}

using GroupCounts = std::unordered_map<std::string, int64_t>;

/// Streams an index's per-key counts straight into rows — the visit
/// itself is already the whole aggregation for an unfiltered count, so
/// no hash-map intermediate and no second pass over the entries. The
/// reservation comes from the index's distinct-count sketch. Distinct
/// index keys can render to the same string (Str("true") vs
/// Bool(true)), so rows merge adjacent-after-sort before returning.
std::vector<CountRow> IndexGroupRows(const storage::CollectionView& view,
                                     const storage::SecondaryIndex& idx) {
  std::vector<CountRow> rows;
  rows.reserve(static_cast<size_t>(idx.stats().EstimateDistinct(0)));
  idx.VisitKeyCounts([&](const IndexKey& k, int64_t n) {
    if (!k.is_null()) rows.push_back({k.ToString(), n});
  });
  std::sort(rows.begin(), rows.end(),
            [](const CountRow& a, const CountRow& b) { return a.key < b.key; });
  size_t w = 0;
  for (size_t r = 0; r < rows.size(); ++r) {
    if (w > 0 && rows[w - 1].key == rows[r].key) {
      rows[w - 1].count += rows[r].count;
    } else {
      if (w != r) rows[w] = std::move(rows[r]);
      ++w;
    }
  }
  rows.resize(w);
  view.NoteIndexScan();
  return rows;
}

/// The unfiltered-over-an-indexed-path fast path both aggregations
/// share: non-null when the index's key counts are the whole answer.
const storage::SecondaryIndex* AggIndex(const storage::CollectionView& view,
                                        const std::string& path,
                                        const PredicatePtr& pred,
                                        const FindOptions& opts) {
  if (pred != nullptr || !opts.use_indexes) return nullptr;
  return view.IndexOn(path);
}

/// Group counts of `path` over the documents matching `pred` (null =
/// all). The unfiltered indexed form goes through `IndexGroupRows`
/// instead (the callers dispatch), so this always scans or folds.
GroupCounts CountGroups(const storage::CollectionView& view,
                        const std::string& path, const PredicatePtr& pred,
                        const FindOptions& opts) {
  GroupCounts counts;
  if (pred == nullptr) {
    view.ForEach([&](storage::DocId, const DocValue& doc) {
      std::string key;
      if (CountKeyOf(doc.FindPath(path), &key)) ++counts[key];
    });
    view.NoteCollScan();
    return counts;
  }
  // Counting needs every matching document: a leftover limit, order or
  // page decoration from a reused FindOptions must not truncate the
  // group counts (or pay for an ordering the hash aggregation
  // ignores). The fold streams ids straight off the cursor tree — no
  // intermediate id vector however large the match set.
  FindOptions find_opts = opts;
  find_opts.limit = -1;
  find_opts.order_by.clear();
  find_opts.page_size = -1;
  find_opts.resume_token.clear();
  Status st = FindFold(view, pred, find_opts, [&](storage::DocId id) {
    const DocValue* doc = view.Get(id);
    if (doc == nullptr) return;
    std::string key;
    if (CountKeyOf(doc->FindPath(path), &key)) ++counts[key];
  });
  RethrowIfError(st);  // scan bodies cannot fail short of OOM
  return counts;
}

/// Scan-and-count for the arbitrary-code DocFilter overloads (not
/// plannable; always a full scan).
GroupCounts CountGroupsByFilter(const storage::Collection& coll,
                                const std::string& path,
                                const DocFilter& filter) {
  storage::CollectionView view = coll.GetView();
  GroupCounts counts;
  view.ForEach([&](storage::DocId, const DocValue& doc) {
    if (!filter(doc)) return;
    std::string key;
    if (CountKeyOf(doc.FindPath(path), &key)) ++counts[key];
  });
  view.NoteCollScan();
  return counts;
}

std::vector<CountRow> SortAllGroups(const GroupCounts& counts) {
  std::vector<CountRow> out;
  out.reserve(counts.size());
  for (const auto& [key, count] : counts) out.push_back({key, count});
  std::sort(out.begin(), out.end(), BetterRow);
  return out;
}

/// Bounded selection — the same k-element-heap machinery as the
/// executor's TopKCursor, applied to group counts instead of sort
/// keys: O(groups * log k) instead of sorting every group.
std::vector<CountRow> TopKGroups(const GroupCounts& counts, int k) {
  BoundedTopK<CountRow, bool (*)(const CountRow&, const CountRow&)> top(
      k, BetterRow);
  for (const auto& [key, count] : counts) top.Offer({key, count});
  return top.TakeSorted();
}

}  // namespace

std::vector<CountRow> CountByField(const storage::Collection& coll,
                                   const std::string& path,
                                   const PredicatePtr& pred,
                                   const FindOptions& opts) {
  // One view per aggregation: every read below — index key counts,
  // full scans, the filtered fold and its document fetches — touches
  // the same immutable storage version, so the counts are consistent
  // even with writers publishing new versions mid-aggregation.
  storage::CollectionView view = coll.GetView();
  if (const storage::SecondaryIndex* idx = AggIndex(view, path, pred, opts)) {
    std::vector<CountRow> rows = IndexGroupRows(view, *idx);
    std::sort(rows.begin(), rows.end(), BetterRow);
    return rows;
  }
  return SortAllGroups(CountGroups(view, path, pred, opts));
}

std::vector<CountRow> CountByField(const storage::Collection& coll,
                                   const std::string& path,
                                   const DocFilter& filter) {
  if (filter == nullptr) {
    // No filter = plannable: the indexed form aggregates off the index.
    return CountByField(coll, path, PredicatePtr(), FindOptions{});
  }
  return SortAllGroups(CountGroupsByFilter(coll, path, filter));
}

std::vector<CountRow> TopKByCount(const storage::Collection& coll,
                                  const std::string& path, int k,
                                  const PredicatePtr& pred,
                                  const FindOptions& opts) {
  storage::CollectionView view = coll.GetView();
  if (const storage::SecondaryIndex* idx = AggIndex(view, path, pred, opts)) {
    BoundedTopK<CountRow, bool (*)(const CountRow&, const CountRow&)> top(
        k, BetterRow);
    for (CountRow& row : IndexGroupRows(view, *idx)) top.Offer(std::move(row));
    return top.TakeSorted();
  }
  return TopKGroups(CountGroups(view, path, pred, opts), k);
}

std::vector<CountRow> TopKByCount(const storage::Collection& coll,
                                  const std::string& path, int k,
                                  const DocFilter& filter) {
  if (filter == nullptr) {
    return TopKByCount(coll, path, k, PredicatePtr(), FindOptions{});
  }
  return TopKGroups(CountGroupsByFilter(coll, path, filter), k);
}

Result<Table> Project(const Table& table,
                      const std::vector<std::string>& attrs) {
  Schema schema;
  std::vector<int> indexes;
  for (const auto& name : attrs) {
    auto idx = table.schema().IndexOf(name);
    if (!idx.has_value()) {
      return Status::NotFound("attribute " + name + " not in table " +
                              table.name());
    }
    indexes.push_back(*idx);
    DT_RETURN_NOT_OK(schema.AddAttribute(table.schema().attribute(*idx)));
  }
  Table out(table.name() + "_proj", schema);
  out.set_source_id(table.source_id());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    Row row;
    row.reserve(indexes.size());
    for (int idx : indexes) row.push_back(table.row(r)[idx]);
    DT_RETURN_NOT_OK(out.Append(std::move(row)));
  }
  return out;
}

Result<Table> OrderBy(const Table& table, const std::string& attr,
                      bool descending) {
  auto idx = table.schema().IndexOf(attr);
  if (!idx.has_value()) {
    return Status::NotFound("attribute " + attr + " not in table " +
                            table.name());
  }
  std::vector<int64_t> order(table.num_rows());
  for (int64_t i = 0; i < table.num_rows(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](int64_t a, int64_t b) {
    int cmp = table.row(a)[*idx].Compare(table.row(b)[*idx]);
    return descending ? cmp > 0 : cmp < 0;
  });
  Table out(table.name() + "_sorted", table.schema());
  out.set_source_id(table.source_id());
  for (int64_t i : order) {
    DT_RETURN_NOT_OK(out.Append(table.row(i)));
  }
  return out;
}

Table Limit(const Table& table, int64_t n) {
  Table out(table.name() + "_limit", table.schema());
  out.set_source_id(table.source_id());
  for (int64_t r = 0; r < std::min(n, table.num_rows()); ++r) {
    (void)out.Append(table.row(r));
  }
  return out;
}

Result<Table> HashJoin(const Table& left, const std::string& left_attr,
                       const Table& right, const std::string& right_attr) {
  auto li = left.schema().IndexOf(left_attr);
  auto ri = right.schema().IndexOf(right_attr);
  if (!li.has_value()) {
    return Status::NotFound("attribute " + left_attr + " not in " +
                            left.name());
  }
  if (!ri.has_value()) {
    return Status::NotFound("attribute " + right_attr + " not in " +
                            right.name());
  }
  Schema schema;
  for (const auto& a : left.schema().attributes()) {
    DT_RETURN_NOT_OK(schema.AddAttribute(a));
  }
  for (const auto& a : right.schema().attributes()) {
    relational::Attribute attr = a;
    if (schema.Contains(attr.name)) attr.name = "right_" + attr.name;
    DT_RETURN_NOT_OK(schema.AddAttribute(attr));
  }
  // Build on the smaller side conceptually; keep it simple and build on
  // right.
  std::unordered_map<std::string, std::vector<int64_t>> index;
  for (int64_t r = 0; r < right.num_rows(); ++r) {
    const Value& v = right.row(r)[*ri];
    if (v.is_null()) continue;
    index[v.ToString()].push_back(r);
  }
  Table out(left.name() + "_join_" + right.name(), schema);
  for (int64_t l = 0; l < left.num_rows(); ++l) {
    const Value& v = left.row(l)[*li];
    if (v.is_null()) continue;
    auto it = index.find(v.ToString());
    if (it == index.end()) continue;
    for (int64_t r : it->second) {
      Row row = left.row(l);
      for (const auto& cell : right.row(r)) row.push_back(cell);
      DT_RETURN_NOT_OK(out.Append(std::move(row)));
    }
  }
  return out;
}

}  // namespace dt::query
