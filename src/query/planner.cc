#include "query/planner.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/thread_pool.h"

namespace dt::query {

using storage::Collection;
using storage::DocId;
using storage::DocValue;
using storage::SecondaryIndex;

const char* AccessPathName(AccessPath access) {
  switch (access) {
    case AccessPath::kIndexEq:
    case AccessPath::kIndexRange:
      return "IXSCAN";
    case AccessPath::kTextIndex:
      return "TEXT";
    case AccessPath::kUnion:
      return "UNION";
    case AccessPath::kCollScan:
      return "COLLSCAN";
  }
  return "?";
}

namespace {

/// A vacuous conjunction needs no residual re-check: it matches every
/// document a scan can produce.
bool TriviallyTrue(const PredicatePtr& pred) {
  return pred == nullptr ||
         (pred->kind() == PredicateKind::kAnd && pred->children().empty());
}

/// \brief One way an index (or the text index) could drive the query:
/// which conjunction children it consumes and at what estimated
/// cardinality. The planner generates one per matchable index and
/// picks the best.
struct Candidate {
  AccessPath access = AccessPath::kCollScan;
  const SecondaryIndex* index = nullptr;  // null for kTextIndex
  std::vector<size_t> covered_children;   // indices into the child list
  std::vector<DocValue> eq_values;        // equality bounds, component order
  int range_child = -1;                   // child bounding the next component
  int64_t est = 0;
  bool covers_order = false;
  PredicatePtr driver;
};

/// Matches `idx` against conjunction `children`: equality children
/// bind leading components greedily, then one range child may bind the
/// next component. Returns false when no component binds.
bool MatchIndex(const SecondaryIndex& idx,
                const std::vector<PredicatePtr>& children,
                const FindOptions& opts, Candidate* out) {
  const std::vector<std::string>& paths = idx.field_paths();
  std::vector<bool> used(children.size(), false);
  for (const std::string& comp : paths) {
    int eq_j = -1, range_j = -1;
    for (size_t j = 0; j < children.size(); ++j) {
      if (used[j] || children[j]->path() != comp) continue;
      if (children[j]->kind() == PredicateKind::kEq && eq_j < 0) {
        eq_j = static_cast<int>(j);
      }
      if (children[j]->kind() == PredicateKind::kRange && range_j < 0) {
        range_j = static_cast<int>(j);
      }
    }
    if (eq_j >= 0) {
      used[eq_j] = true;
      out->covered_children.push_back(static_cast<size_t>(eq_j));
      out->eq_values.push_back(children[eq_j]->value());
      continue;
    }
    if (range_j >= 0) {
      out->range_child = range_j;
      out->covered_children.push_back(static_cast<size_t>(range_j));
    }
    break;  // this component is unbound (or range-bound, which is last)
  }
  if (out->eq_values.empty() && out->range_child < 0) return false;
  out->index = &idx;
  const DocValue* lo = nullptr;
  const DocValue* hi = nullptr;
  if (out->range_child >= 0) {
    lo = &children[out->range_child]->lo();
    hi = &children[out->range_child]->hi();
  }
  out->est = idx.CountScan(out->eq_values, lo, hi);
  out->access = (out->range_child >= 0 || out->eq_values.empty())
                    ? AccessPath::kIndexRange
                    : AccessPath::kIndexEq;
  out->driver = out->eq_values.empty()
                    ? children[out->range_child]
                    : children[out->covered_children.front()];
  // The scan streams in the requested order when the order-by path is
  // equality-bound (every result ties, so order degenerates to the
  // ascending-id tie break) or is exactly the next scanned component.
  if (!opts.order_by.empty()) {
    const size_t m = out->eq_values.size();
    for (size_t i = 0; i < m; ++i) {
      if (paths[i] == opts.order_by) out->covers_order = true;
    }
    if (m < paths.size() && paths[m] == opts.order_by) {
      out->covers_order = true;
    }
  }
  return true;
}

/// Probes the text index for a TextContains child.
bool MatchText(const PredicatePtr& p, size_t child_index,
               const FindOptions& opts, Candidate* out) {
  if (p->kind() != PredicateKind::kTextContains) return false;
  if (opts.text_index == nullptr || p->tokens().empty()) return false;
  if (opts.text_index->field_path() != p->path()) return false;
  // Conjunctive: the rarest term bounds the result size.
  int64_t best = std::numeric_limits<int64_t>::max();
  for (const auto& tok : p->tokens()) {
    best = std::min(best, opts.text_index->DocFrequency(tok));
  }
  out->access = AccessPath::kTextIndex;
  out->covered_children.push_back(child_index);
  out->est = best;
  out->driver = p;
  return true;
}

/// Candidate preference: when an order-by plus limit is in play, an
/// order-covering scan early-terminates and beats raw selectivity;
/// otherwise the most selective driver wins. Ties go to the candidate
/// whose bounds pin more conjunction children (fewer residual document
/// fetches — this is where a compound index beats its single-field
/// prefix), then to order coverage, then to the narrower index.
bool BetterCandidate(const Candidate& a, const Candidate& b,
                     const FindOptions& opts) {
  const bool prefer_covered = !opts.order_by.empty() && opts.limit >= 0;
  if (prefer_covered && a.covers_order != b.covers_order) {
    return a.covers_order;
  }
  if (a.est != b.est) return a.est < b.est;
  if (a.covered_children.size() != b.covered_children.size()) {
    return a.covered_children.size() > b.covered_children.size();
  }
  if (a.covers_order != b.covers_order) return a.covers_order;
  const int wa = a.index != nullptr ? a.index->width() : 1;
  const int wb = b.index != nullptr ? b.index->width() : 1;
  return wa < wb;
}

QueryPlan CollScanPlan(const Collection& coll, const PredicatePtr& pred) {
  QueryPlan plan;
  plan.access = AccessPath::kCollScan;
  plan.node = pred;
  plan.estimated_rows = coll.count();
  return plan;
}

/// Builds the access-path half of the plan (no pipeline decoration).
/// `children` views `pred` as a conjunction: the predicate itself for
/// leaves, its child list for an And.
QueryPlan PlanConjunction(const Collection& coll, const PredicatePtr& pred,
                          const std::vector<PredicatePtr>& children,
                          bool is_and, const FindOptions& opts) {
  Candidate best;
  bool found = false;
  for (const SecondaryIndex* idx : coll.Indexes()) {
    Candidate cand;
    if (!MatchIndex(*idx, children, opts, &cand)) continue;
    if (!found || BetterCandidate(cand, best, opts)) {
      best = std::move(cand);
      found = true;
    }
  }
  for (size_t j = 0; j < children.size(); ++j) {
    Candidate cand;
    if (!MatchText(children[j], j, opts, &cand)) continue;
    if (!found || BetterCandidate(cand, best, opts)) {
      best = std::move(cand);
      found = true;
    }
  }
  if (!found) return CollScanPlan(coll, pred);
  // A residual scan that visits as many rows as the collection holds
  // saves nothing over the straight scan it complicates — unless the
  // scan order itself is the point (order-covering with a limit).
  const bool keep_for_order =
      best.covers_order && !opts.order_by.empty() && opts.limit >= 0;
  if (is_and && best.est >= coll.count() && !keep_for_order) {
    return CollScanPlan(coll, pred);
  }
  QueryPlan plan;
  plan.access = best.access;
  plan.node = pred;
  plan.driver = best.driver;
  plan.estimated_rows = best.est;
  plan.residual = best.covered_children.size() < children.size();
  plan.index = best.index;
  plan.eq_values = std::move(best.eq_values);
  if (best.range_child >= 0) {
    plan.has_range = true;
    plan.range_lo = children[best.range_child]->lo();
    plan.range_hi = children[best.range_child]->hi();
  }
  plan.order_covered = best.covers_order;
  return plan;
}

/// The access-path chooser (pre-decoration); see PlanFind.
QueryPlan PlanAccess(const Collection& coll, const PredicatePtr& pred,
                     const FindOptions& opts) {
  if (pred == nullptr || !opts.use_indexes) return CollScanPlan(coll, pred);

  switch (pred->kind()) {
    case PredicateKind::kEq:
    case PredicateKind::kRange:
    case PredicateKind::kTextContains:
      return PlanConjunction(coll, pred, {pred}, /*is_and=*/false, opts);
    case PredicateKind::kAnd:
      return PlanConjunction(coll, pred, pred->children(), /*is_and=*/true,
                             opts);
    case PredicateKind::kOr: {
      // Union only when every branch is index-routable on its own; one
      // non-routable branch means one full scan answers the whole Or.
      QueryPlan plan;
      plan.access = AccessPath::kUnion;
      plan.node = pred;
      plan.estimated_rows = 0;
      // Branches are planned without order/limit decoration: the union
      // merge re-establishes ascending ids and the pipeline operators
      // apply on top.
      FindOptions branch_opts = opts;
      branch_opts.order_by.clear();
      branch_opts.limit = -1;
      for (const auto& child : pred->children()) {
        QueryPlan branch = PlanAccess(coll, child, branch_opts);
        if (branch.access == AccessPath::kCollScan) {
          return CollScanPlan(coll, pred);
        }
        plan.estimated_rows += branch.estimated_rows;
        plan.branches.push_back(std::move(branch));
      }
      if (plan.estimated_rows < coll.count() || plan.branches.empty()) {
        return plan;
      }
      return CollScanPlan(coll, pred);
    }
  }
  return CollScanPlan(coll, pred);
}

}  // namespace

QueryPlan PlanFind(const Collection& coll, const PredicatePtr& pred,
                   const FindOptions& opts) {
  QueryPlan plan = PlanAccess(coll, pred, opts);
  // Sort push-down fallback for the match-everything case: an index
  // leads with the order-by field and a limit bounds the walk, so
  // stream off the index order and stop after ~limit entries instead
  // of scanning, materializing and sorting everything. Restricted to
  // trivially-true predicates: with a residual filter in between, the
  // walk visits limit/selectivity entries plus a document fetch each,
  // which loses to COLLSCAN+TOPK for selective predicates — and
  // without cardinality stats the planner cannot tell those apart.
  if (plan.access == AccessPath::kCollScan && opts.use_indexes &&
      TriviallyTrue(pred) && !opts.order_by.empty() && opts.limit >= 0) {
    const SecondaryIndex* order_idx = nullptr;
    for (const SecondaryIndex* idx : coll.Indexes()) {
      if (idx->field_paths().front() != opts.order_by) continue;
      if (order_idx == nullptr || idx->width() < order_idx->width()) {
        order_idx = idx;
      }
    }
    if (order_idx != nullptr) {
      QueryPlan scan;
      scan.access = AccessPath::kIndexRange;
      scan.node = pred;
      scan.estimated_rows = order_idx->entry_count();
      scan.index = order_idx;
      scan.order_covered = true;
      plan = std::move(scan);
    }
  }
  plan.order_by = opts.order_by;
  plan.order_desc = opts.order_desc;
  plan.limit = opts.limit;
  if (plan.access == AccessPath::kCollScan || plan.access == AccessPath::kUnion ||
      plan.access == AccessPath::kTextIndex) {
    plan.order_covered = false;
  }
  if (opts.order_by.empty()) plan.order_covered = false;
  return plan;
}

// ---- execution ---------------------------------------------------------

namespace {

/// Postings intersection for a TEXT access: smallest list first, all
/// lists sorted ascending by id (so the result is too).
Result<CursorPtr> BuildTextCursor(const QueryPlan& plan,
                                  const FindOptions& opts, ExecStats* stats) {
  const Predicate& driver = *plan.driver;
  if (opts.text_index == nullptr) {
    return Status::Internal("TEXT plan without a text index");
  }
  std::vector<std::vector<DocId>> lists;
  lists.reserve(driver.tokens().size());
  for (const auto& tok : driver.tokens()) {
    lists.push_back(opts.text_index->Postings(tok));
    if (stats != nullptr) {
      stats->index_entries_examined +=
          static_cast<int64_t>(lists.back().size());
    }
    if (lists.back().empty()) {  // conjunction fails
      return CursorPtr(std::make_unique<VectorCursor>(std::vector<DocId>{}));
    }
  }
  std::sort(lists.begin(), lists.end(),
            [](const std::vector<DocId>& a, const std::vector<DocId>& b) {
              return a.size() < b.size();
            });
  std::vector<DocId> ids = std::move(lists[0]);
  for (size_t i = 1; i < lists.size() && !ids.empty(); ++i) {
    std::vector<DocId> next;
    std::set_intersection(ids.begin(), ids.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    ids.swap(next);
  }
  return CursorPtr(std::make_unique<VectorCursor>(std::move(ids)));
}

/// Builds the access-path cursor for `plan` (no pipeline operators).
Result<CursorPtr> BuildAccessCursor(const Collection& coll,
                                    const QueryPlan& plan,
                                    const FindOptions& opts,
                                    ExecStats* stats) {
  switch (plan.access) {
    case AccessPath::kCollScan: {
      const int threads = opts.pool != nullptr
                              ? opts.pool->num_threads()
                              : ResolveNumThreads(opts.num_threads);
      if (threads > 1 && coll.count() >= 2) {
        return CollScanCursor::Parallel(coll, plan.node, opts.num_threads,
                                        opts.pool, stats);
      }
      return CursorPtr(
          std::make_unique<CollScanCursor>(coll, plan.node, stats));
    }
    case AccessPath::kIndexEq:
    case AccessPath::kIndexRange: {
      const SecondaryIndex* idx = plan.index;
      if (idx == nullptr) {
        return Status::Internal("IXSCAN plan without an index");
      }
      // Runs group on the equality-bound components, plus the order-by
      // component when it is the next one scanned — see IxScanCursor.
      size_t run_len = plan.eq_values.size();
      bool scan_desc = false;
      if (plan.order_covered) {
        const std::vector<std::string>& paths = idx->field_paths();
        const size_t m = plan.eq_values.size();
        if (m < paths.size() && paths[m] == plan.order_by) {
          run_len = m + 1;
          scan_desc = plan.order_desc;
        }
      }
      SecondaryIndex::Scan scan = idx->ScanPrefix(
          plan.eq_values, plan.has_range ? &plan.range_lo : nullptr,
          plan.has_range ? &plan.range_hi : nullptr, scan_desc);
      return CursorPtr(
          std::make_unique<IxScanCursor>(scan, run_len, stats));
    }
    case AccessPath::kTextIndex:
      return BuildTextCursor(plan, opts, stats);
    case AccessPath::kUnion: {
      std::vector<CursorPtr> branches;
      branches.reserve(plan.branches.size());
      for (const QueryPlan& branch : plan.branches) {
        DT_ASSIGN_OR_RETURN(CursorPtr cur,
                            BuildAccessCursor(coll, branch, opts, stats));
        if (branch.residual) {
          cur = std::make_unique<FilterCursor>(coll, std::move(cur),
                                               branch.node, stats);
        }
        branches.push_back(std::move(cur));
      }
      return CursorPtr(std::make_unique<UnionCursor>(std::move(branches)));
    }
  }
  return Status::Internal("unknown access path");
}

/// Builds the full operator tree: access path, residual FILTER, then
/// SORT / TOPK / LIMIT as the decoration demands.
Result<CursorPtr> BuildCursor(const Collection& coll, const QueryPlan& plan,
                              const FindOptions& opts, ExecStats* stats) {
  DT_ASSIGN_OR_RETURN(CursorPtr cur,
                      BuildAccessCursor(coll, plan, opts, stats));
  if (plan.residual && plan.access != AccessPath::kCollScan) {
    cur = std::make_unique<FilterCursor>(coll, std::move(cur), plan.node,
                                         stats);
  }
  bool limit_pending = plan.limit >= 0;
  if (!plan.order_by.empty() && !plan.order_covered) {
    if (limit_pending) {
      cur = std::make_unique<TopKCursor>(coll, std::move(cur), plan.order_by,
                                         plan.order_desc, plan.limit, stats);
      limit_pending = false;
    } else {
      cur = std::make_unique<SortCursor>(coll, std::move(cur), plan.order_by,
                                         plan.order_desc, stats);
    }
  }
  if (limit_pending) {
    cur = std::make_unique<LimitCursor>(std::move(cur), plan.limit);
  }
  return cur;
}

}  // namespace

Result<std::vector<DocId>> Find(const Collection& coll,
                                const PredicatePtr& pred,
                                const FindOptions& opts) {
  if (pred == nullptr) {
    return Status::InvalidArgument("Find requires a predicate");
  }
  if (opts.stats != nullptr) *opts.stats = ExecStats{};
  QueryPlan plan = PlanFind(coll, pred, opts);
  DT_ASSIGN_OR_RETURN(CursorPtr root,
                      BuildCursor(coll, plan, opts, opts.stats));
  std::vector<DocId> out;
  DT_RETURN_NOT_OK(DrainCursor(root.get(), opts.stats, &out));
  if (plan.access == AccessPath::kCollScan) {
    coll.NoteCollScan();
  } else {
    coll.NoteIndexScan();
  }
  return out;
}

// ---- rendering ---------------------------------------------------------

namespace {

std::string RenderDocValue(const DocValue& v) {
  return v.is_string() ? "\"" + v.string_value() + "\"" : v.ToJson();
}

}  // namespace

std::string QueryPlan::ToString() const {
  std::string out = AccessPathName(access);
  switch (access) {
    case AccessPath::kCollScan:
      out += " { " + (node != nullptr ? node->ToString() : "TRUE") +
             " } docs=" + std::to_string(estimated_rows);
      break;
    case AccessPath::kUnion: {
      out += " [ ";
      for (size_t i = 0; i < branches.size(); ++i) {
        if (i > 0) out += " , ";
        out += branches[i].ToString();
      }
      out += " ] est=" + std::to_string(estimated_rows);
      break;
    }
    case AccessPath::kTextIndex:
      out += " { " + driver->ToString() +
             " } est=" + std::to_string(estimated_rows);
      break;
    case AccessPath::kIndexEq:
    case AccessPath::kIndexRange: {
      const std::vector<std::string> paths =
          index != nullptr ? index->field_paths() : std::vector<std::string>{};
      const size_t m = eq_values.size();
      size_t shown = m + (has_range ? 1 : 0);
      if (shown == 0) shown = std::min<size_t>(1, paths.size());
      out += "(";
      for (size_t i = 0; i < shown && i < paths.size(); ++i) {
        if (i > 0) out += ",";
        out += paths[i];
      }
      out += ") { ";
      if (shown == 0 || paths.empty()) {
        out += "all";
      } else {
        for (size_t i = 0; i < m && i < paths.size(); ++i) {
          if (i > 0) out += ", ";
          out += paths[i] + " == " + RenderDocValue(eq_values[i]);
        }
        if (has_range && m < paths.size()) {
          if (m > 0) out += ", ";
          out += paths[m] + " in [" + RenderDocValue(range_lo) + ", " +
                 RenderDocValue(range_hi) + "]";
        }
        if (m == 0 && !has_range) out += "all";
      }
      out += " }";
      if (order_covered && !order_by.empty()) {
        out += " order=" + order_by + (order_desc ? " desc" : "");
      }
      out += " est=" + std::to_string(estimated_rows);
      break;
    }
  }
  if (residual && access != AccessPath::kCollScan) {
    out += " -> FILTER { " +
           (node != nullptr ? node->ToString() : "TRUE") + " }";
  }
  bool limit_pending = limit >= 0;
  if (!order_by.empty() && !order_covered) {
    if (limit_pending) {
      out += " -> TOPK(" + order_by + (order_desc ? " desc" : "") +
             ", k=" + std::to_string(limit) + ")";
      limit_pending = false;
    } else {
      out += " -> SORT(" + order_by + (order_desc ? " desc" : "") + ")";
    }
  }
  if (limit_pending) out += " -> LIMIT(" + std::to_string(limit) + ")";
  return out;
}

std::string ExplainFind(const Collection& coll, const PredicatePtr& pred,
                        const FindOptions& opts) {
  return PlanFind(coll, pred, opts).ToString();
}

}  // namespace dt::query
