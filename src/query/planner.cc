#include "query/planner.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <limits>
#include <utility>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "query/page_token.h"

namespace dt::query {

using storage::Collection;
using storage::CollectionView;
using storage::DocId;
using storage::DocValue;
using storage::SecondaryIndex;

const char* AccessPathName(AccessPath access) {
  switch (access) {
    case AccessPath::kIndexEq:
    case AccessPath::kIndexRange:
      return "IXSCAN";
    case AccessPath::kTextIndex:
      return "TEXT";
    case AccessPath::kUnion:
      return "UNION";
    case AccessPath::kMergeUnion:
      return "MERGE_UNION";
    case AccessPath::kCollScan:
      return "COLLSCAN";
  }
  return "?";
}

namespace {

/// A vacuous conjunction needs no residual re-check: it matches every
/// document a scan can produce.
bool TriviallyTrue(const PredicatePtr& pred) {
  return pred == nullptr ||
         (pred->kind() == PredicateKind::kAnd && pred->children().empty());
}

/// \brief One way an index (or the text index) could drive the query:
/// which conjunction children it consumes and at what estimated
/// cardinality. The planner generates one per matchable index and
/// picks the best.
struct Candidate {
  AccessPath access = AccessPath::kCollScan;
  const SecondaryIndex* index = nullptr;  // null for kTextIndex
  std::vector<size_t> covered_children;   // indices into the child list
  std::vector<DocValue> eq_values;        // equality bounds, component order
  int range_child = -1;                   // child bounding the next component
  int64_t est = 0;
  bool est_exact = true;       // false once a histogram estimate answered
  int64_t entries_counted = 0; // entries the bounded exact-count walk cost
  bool covers_order = false;
  PredicatePtr driver;
};

/// True when `idx`'s components serve every order path: each path is
/// either equality-bound (every result ties on it, so it degenerates
/// to the tie break) or rides the next scanned component in sequence.
bool CoversOrder(const std::vector<std::string>& paths, size_t eq_width,
                 const std::vector<std::string>& order_paths) {
  size_t next = eq_width;  // next scanned component an order path may ride
  for (const std::string& op : order_paths) {
    bool eq_bound = false;
    for (size_t i = 0; i < eq_width && i < paths.size(); ++i) {
      if (paths[i] == op) {
        eq_bound = true;
        break;
      }
    }
    if (eq_bound) continue;
    if (next < paths.size() && paths[next] == op) {
      ++next;
      continue;
    }
    return false;
  }
  return true;
}

/// Matches `idx` against conjunction `children`: equality children
/// bind leading components greedily, then one range child may bind the
/// next component. Returns false when no component binds.
bool MatchIndex(const SecondaryIndex& idx,
                const std::vector<PredicatePtr>& children,
                const FindOptions& opts,
                const std::vector<std::string>& order_paths, Candidate* out) {
  const std::vector<std::string>& paths = idx.field_paths();
  std::vector<bool> used(children.size(), false);
  for (const std::string& comp : paths) {
    int eq_j = -1, range_j = -1;
    for (size_t j = 0; j < children.size(); ++j) {
      if (used[j] || children[j]->path() != comp) continue;
      if (children[j]->kind() == PredicateKind::kEq && eq_j < 0) {
        eq_j = static_cast<int>(j);
      }
      if (children[j]->kind() == PredicateKind::kRange && range_j < 0) {
        range_j = static_cast<int>(j);
      }
    }
    if (eq_j >= 0) {
      used[eq_j] = true;
      out->covered_children.push_back(static_cast<size_t>(eq_j));
      out->eq_values.push_back(children[eq_j]->value());
      continue;
    }
    if (range_j >= 0) {
      out->range_child = range_j;
      out->covered_children.push_back(static_cast<size_t>(range_j));
    }
    break;  // this component is unbound (or range-bound, which is last)
  }
  if (out->eq_values.empty() && out->range_child < 0) return false;
  out->index = &idx;
  const DocValue* lo = nullptr;
  const DocValue* hi = nullptr;
  if (out->range_child >= 0) {
    lo = &children[out->range_child]->lo();
    hi = &children[out->range_child]->hi();
  }
  const SecondaryIndex::ScanEstimate se =
      idx.EstimateScan(out->eq_values, lo, hi, opts.debug_exact_count_planning);
  out->est = static_cast<int64_t>(std::llround(se.rows));
  out->est_exact = se.exact;
  out->entries_counted = se.entries_counted;
  out->access = (out->range_child >= 0 || out->eq_values.empty())
                    ? AccessPath::kIndexRange
                    : AccessPath::kIndexEq;
  out->driver = out->eq_values.empty()
                    ? children[out->range_child]
                    : children[out->covered_children.front()];
  if (!order_paths.empty()) {
    out->covers_order = CoversOrder(paths, out->eq_values.size(), order_paths);
  }
  return true;
}

/// Probes the text index for a TextContains child.
bool MatchText(const PredicatePtr& p, size_t child_index,
               const FindOptions& opts, Candidate* out) {
  if (p->kind() != PredicateKind::kTextContains) return false;
  if (opts.text_index == nullptr || p->tokens().empty()) return false;
  if (opts.text_index->field_path() != p->path()) return false;
  // Conjunctive: the rarest term bounds the result size.
  int64_t best = std::numeric_limits<int64_t>::max();
  for (const auto& tok : p->tokens()) {
    best = std::min(best, opts.text_index->DocFrequency(tok));
  }
  out->access = AccessPath::kTextIndex;
  out->covered_children.push_back(child_index);
  out->est = best;
  out->driver = p;
  return true;
}

/// Candidate preference: when an order-by plus limit is in play, an
/// order-covering scan early-terminates and beats raw selectivity;
/// otherwise the most selective driver wins. Ties go to the candidate
/// whose bounds pin more conjunction children (fewer residual document
/// fetches — this is where a compound index beats its single-field
/// prefix), then to order coverage, then to the narrower index.
bool BetterCandidate(const Candidate& a, const Candidate& b,
                     const FindOptions& opts) {
  const bool prefer_covered = !opts.order_by.empty() && opts.limit >= 0;
  if (prefer_covered && a.covers_order != b.covers_order) {
    return a.covers_order;
  }
  if (a.est != b.est) return a.est < b.est;
  if (a.covered_children.size() != b.covered_children.size()) {
    return a.covered_children.size() > b.covered_children.size();
  }
  if (a.covers_order != b.covers_order) return a.covers_order;
  const int wa = a.index != nullptr ? a.index->width() : 1;
  const int wb = b.index != nullptr ? b.index->width() : 1;
  return wa < wb;
}

QueryPlan CollScanPlan(const CollectionView& coll, const PredicatePtr& pred) {
  QueryPlan plan;
  plan.access = AccessPath::kCollScan;
  plan.node = pred;
  plan.estimated_rows = coll.count();
  return plan;
}

/// Builds the access-path half of the plan (no pipeline decoration).
/// `children` views `pred` as a conjunction: the predicate itself for
/// leaves, its child list for an And.
QueryPlan PlanConjunction(const CollectionView& coll, const PredicatePtr& pred,
                          const std::vector<PredicatePtr>& children,
                          bool is_and, const FindOptions& opts,
                          const std::vector<std::string>& order_paths,
                          int64_t* entries_counted) {
  Candidate best;
  bool found = false;
  for (const SecondaryIndex* idx : coll.Indexes()) {
    Candidate cand;
    if (!MatchIndex(*idx, children, opts, order_paths, &cand)) continue;
    *entries_counted += cand.entries_counted;
    if (!found || BetterCandidate(cand, best, opts)) {
      best = std::move(cand);
      found = true;
    }
  }
  for (size_t j = 0; j < children.size(); ++j) {
    Candidate cand;
    if (!MatchText(children[j], j, opts, &cand)) continue;
    if (!found || BetterCandidate(cand, best, opts)) {
      best = std::move(cand);
      found = true;
    }
  }
  if (!found) return CollScanPlan(coll, pred);
  // A residual scan that visits as many rows as the collection holds
  // saves nothing over the straight scan it complicates — unless the
  // scan order itself is the point (order-covering with a limit).
  const bool keep_for_order =
      best.covers_order && !opts.order_by.empty() && opts.limit >= 0;
  if (is_and && best.est >= coll.count() && !keep_for_order) {
    return CollScanPlan(coll, pred);
  }
  QueryPlan plan;
  plan.access = best.access;
  plan.node = pred;
  plan.driver = best.driver;
  plan.estimated_rows = best.est;
  plan.est_exact = best.est_exact;
  plan.residual = best.covered_children.size() < children.size();
  plan.index = best.index;
  plan.eq_values = std::move(best.eq_values);
  if (best.range_child >= 0) {
    plan.has_range = true;
    plan.range_lo = children[best.range_child]->lo();
    plan.range_hi = children[best.range_child]->hi();
  }
  plan.order_covered = best.covers_order;
  return plan;
}

/// The access-path chooser (pre-decoration); see PlanFind.
QueryPlan PlanAccess(const CollectionView& coll, const PredicatePtr& pred,
                     const FindOptions& opts,
                     const std::vector<std::string>& order_paths,
                     int64_t* entries_counted) {
  if (pred == nullptr || !opts.use_indexes) return CollScanPlan(coll, pred);

  switch (pred->kind()) {
    case PredicateKind::kEq:
    case PredicateKind::kRange:
    case PredicateKind::kTextContains:
      return PlanConjunction(coll, pred, {pred}, /*is_and=*/false, opts,
                             order_paths, entries_counted);
    case PredicateKind::kAnd:
      return PlanConjunction(coll, pred, pred->children(), /*is_and=*/true,
                             opts, order_paths, entries_counted);
    case PredicateKind::kOr: {
      // Ordered-merge attempt first: when an order is requested and
      // every branch plans as an order-covering index scan, the union
      // executes as a SORT-free k-way merge of the branch streams
      // (MERGE_UNION) — under a limit the branch walks early-terminate
      // like single-index sort push-down does. Two free pre-gates keep
      // a doomed attempt from paying the O(hits) estimate counting
      // twice (once here, once re-planning the unordered branches):
      // only Eq/Range/And children can yield covering IXSCANs, and no
      // index can cover an order path it does not even contain.
      bool merge_conceivable =
          !opts.order_by.empty() && !pred->children().empty();
      if (merge_conceivable) {
        for (const auto& child : pred->children()) {
          if (child->kind() != PredicateKind::kEq &&
              child->kind() != PredicateKind::kRange &&
              child->kind() != PredicateKind::kAnd) {
            merge_conceivable = false;
            break;
          }
        }
      }
      if (merge_conceivable && !order_paths.empty()) {
        bool order_indexed = false;
        for (const SecondaryIndex* idx : coll.Indexes()) {
          const std::vector<std::string>& paths = idx->field_paths();
          if (std::find(paths.begin(), paths.end(), order_paths.front()) !=
              paths.end()) {
            order_indexed = true;
            break;
          }
        }
        merge_conceivable = order_indexed;
      }
      if (merge_conceivable) {
        QueryPlan merged;
        merged.access = AccessPath::kMergeUnion;
        merged.node = pred;
        merged.order_covered = true;
        bool all_covered = true;
        for (const auto& child : pred->children()) {
          QueryPlan branch =
              PlanAccess(coll, child, opts, order_paths, entries_counted);
          if ((branch.access != AccessPath::kIndexEq &&
               branch.access != AccessPath::kIndexRange) ||
              !branch.order_covered) {
            all_covered = false;
            break;
          }
          // Branches carry the order decoration so the executor opens
          // them with order-grouped runs (and Explain annotates them).
          branch.order_by = opts.order_by;
          branch.order_desc = opts.order_desc;
          merged.estimated_rows += branch.estimated_rows;
          merged.est_exact = merged.est_exact && branch.est_exact;
          merged.branches.push_back(std::move(branch));
        }
        // Without a limit the merge must still visit every branch
        // entry, so it only pays off when it beats the straight scan's
        // cardinality; with a limit the early termination is the point.
        if (all_covered &&
            (opts.limit >= 0 || merged.estimated_rows < coll.count())) {
          return merged;
        }
      }
      // Union only when every branch is index-routable on its own; one
      // non-routable branch means one full scan answers the whole Or.
      QueryPlan plan;
      plan.access = AccessPath::kUnion;
      plan.node = pred;
      plan.estimated_rows = 0;
      // Branches are planned without order/limit decoration: the union
      // merge re-establishes ascending ids and the pipeline operators
      // apply on top.
      FindOptions branch_opts = opts;
      branch_opts.order_by.clear();
      branch_opts.limit = -1;
      const std::vector<std::string> no_order;
      for (const auto& child : pred->children()) {
        QueryPlan branch =
            PlanAccess(coll, child, branch_opts, no_order, entries_counted);
        if (branch.access == AccessPath::kCollScan) {
          return CollScanPlan(coll, pred);
        }
        plan.estimated_rows += branch.estimated_rows;
        plan.est_exact = plan.est_exact && branch.est_exact;
        plan.branches.push_back(std::move(branch));
      }
      if (plan.estimated_rows < coll.count() || plan.branches.empty()) {
        return plan;
      }
      return CollScanPlan(coll, pred);
    }
  }
  return CollScanPlan(coll, pred);
}

// Relative operator costs for pipeline-alternative decisions: stepping
// one index entry vs fetching + re-checking one document.
constexpr double kEntryCost = 1.0;
constexpr double kDocCost = 4.0;

/// The narrowest index whose leading components are exactly
/// `order_paths` in sequence — the index a pure order-driven walk can
/// stream from. Null when none qualifies.
const SecondaryIndex* OrderWalkIndex(
    const CollectionView& coll, const std::vector<std::string>& order_paths) {
  const SecondaryIndex* best = nullptr;
  for (const SecondaryIndex* idx : coll.Indexes()) {
    const std::vector<std::string>& paths = idx->field_paths();
    if (paths.size() < order_paths.size()) continue;
    bool leads = true;
    for (size_t i = 0; i < order_paths.size(); ++i) {
      if (paths[i] != order_paths[i]) {
        leads = false;
        break;
      }
    }
    if (!leads) continue;
    if (best == nullptr || idx->width() < best->width()) best = idx;
  }
  return best;
}

/// Rough match cardinality of `pred`, for costing pipeline
/// alternatives (not access paths): leaves ask the narrowest index
/// leading with their path, And multiplies child selectivities, Or
/// adds child estimates (clamped), and anything unestimable
/// (TextContains, unindexed leaves) pessimistically estimates the
/// whole collection. Accumulates walked entries into
/// `*entries_counted` and clears `*exact` when a histogram answered.
double EstimatePredicateRows(const CollectionView& coll,
                             const PredicatePtr& pred, bool force_exact,
                             int64_t* entries_counted, bool* exact) {
  const double n = static_cast<double>(coll.count());
  if (pred == nullptr) return n;
  switch (pred->kind()) {
    case PredicateKind::kEq:
    case PredicateKind::kRange: {
      const SecondaryIndex* best = nullptr;
      for (const SecondaryIndex* idx : coll.Indexes()) {
        if (idx->field_paths().front() != pred->path()) continue;
        if (best == nullptr || idx->width() < best->width()) best = idx;
      }
      if (best == nullptr) return n;
      std::vector<DocValue> eq;
      const DocValue* lo = nullptr;
      const DocValue* hi = nullptr;
      if (pred->kind() == PredicateKind::kEq) {
        eq.push_back(pred->value());
      } else {
        lo = &pred->lo();
        hi = &pred->hi();
      }
      const SecondaryIndex::ScanEstimate se =
          best->EstimateScan(eq, lo, hi, force_exact);
      *entries_counted += se.entries_counted;
      *exact = *exact && se.exact;
      return se.rows;
    }
    case PredicateKind::kTextContains:
      return n;
    case PredicateKind::kAnd: {
      double sel = 1.0;
      for (const auto& c : pred->children()) {
        sel *= n > 0 ? EstimatePredicateRows(coll, c, force_exact,
                                             entries_counted, exact) /
                           n
                     : 0.0;
      }
      return n * sel;
    }
    case PredicateKind::kOr: {
      double sum = 0;
      for (const auto& c : pred->children()) {
        sum += EstimatePredicateRows(coll, c, force_exact, entries_counted,
                                     exact);
      }
      return std::min(sum, n);
    }
  }
  return n;
}

}  // namespace

QueryPlan PlanFind(const CollectionView& coll, const PredicatePtr& pred,
                   const FindOptions& opts) {
  const auto t0 = std::chrono::steady_clock::now();
  const std::vector<std::string> order_paths = SplitOrderPaths(opts.order_by);
  int64_t entries_counted = 0;
  QueryPlan plan = PlanAccess(coll, pred, opts, order_paths, &entries_counted);
  // Sort push-down fallback for the match-everything case: an index
  // leads with the order paths and a limit bounds the walk, so stream
  // off the index order and stop after ~limit entries instead of
  // scanning, materializing and sorting everything.
  if (plan.access == AccessPath::kCollScan && opts.use_indexes &&
      TriviallyTrue(pred) && !order_paths.empty() && opts.limit >= 0) {
    const SecondaryIndex* order_idx = OrderWalkIndex(coll, order_paths);
    if (order_idx != nullptr) {
      QueryPlan scan;
      scan.access = AccessPath::kIndexRange;
      scan.node = pred;
      scan.estimated_rows = order_idx->entry_count();
      scan.index = order_idx;
      scan.order_covered = true;
      plan = std::move(scan);
    }
  }
  // Filtered order-walk: when no chosen path streams the requested
  // order but an index leads with it, walking that index in order and
  // filtering — stopping once the limit fills — beats materializing
  // and sorting, provided the predicate passes rows often enough that
  // the walk stays short. The statistics make that call: expected walk
  // length is limit / selectivity, and the switch demands a 2x cost
  // advantage as a margin against estimation error (PR 4 punted this
  // decision precisely because exact counting made it O(hits)).
  // `debug_exact_count_planning` disables the switch along with the
  // estimates: the knob reproduces the whole pre-statistics planner,
  // not just its counting.
  if (!plan.order_covered && plan.access != AccessPath::kTextIndex &&
      opts.use_indexes && !opts.debug_exact_count_planning &&
      !order_paths.empty() && opts.limit >= 0 && pred != nullptr &&
      !TriviallyTrue(pred) && coll.count() > 0) {
    const SecondaryIndex* order_idx = OrderWalkIndex(coll, order_paths);
    if (order_idx != nullptr) {
      const double n = static_cast<double>(coll.count());
      bool est_exact = true;
      double pred_rows = EstimatePredicateRows(
          coll, pred, opts.debug_exact_count_planning, &entries_counted,
          &est_exact);
      // The incumbent's driver estimate is a second upper bound on the
      // predicate's rows (an index-driven scan is a superset of the
      // result), and a tighter one when a compound index binds
      // components the per-leaf estimator treats as unindexed — e.g.
      // `name` in And(type, name) under a (type,name) index. Without
      // this clamp such predicates look unselective, the walk looks
      // short, and the switch fires into a walk that actually visits
      // 1/true-selectivity entries per emitted row.
      if (plan.access != AccessPath::kCollScan) {
        if (static_cast<double>(plan.estimated_rows) < pred_rows) {
          pred_rows = static_cast<double>(plan.estimated_rows);
          est_exact = est_exact && plan.est_exact;
        }
      }
      pred_rows = std::min(std::max(pred_rows, 0.0), n);
      const double sel = std::max(pred_rows / n, 1e-9);
      const double walk_entries =
          std::min(n, static_cast<double>(opts.limit) / sel);
      // Every walked entry fetches + re-checks its document; the
      // incumbent pays a fetch per estimated row (plus an entry step
      // when index-driven) and sorts, which the TOPK heap keeps cheap
      // enough to ignore at this granularity.
      const double walk_cost = walk_entries * (kEntryCost + kDocCost);
      const double cur_cost =
          plan.access == AccessPath::kCollScan
              ? n * kDocCost
              : static_cast<double>(plan.estimated_rows) *
                    (kEntryCost + kDocCost);
      if (walk_cost * 2 < cur_cost) {
        QueryPlan walk;
        walk.access = AccessPath::kIndexRange;
        walk.node = pred;
        walk.estimated_rows = static_cast<int64_t>(std::llround(pred_rows));
        walk.est_exact = est_exact;
        walk.index = order_idx;
        walk.residual = true;
        walk.order_covered = true;
        plan = std::move(walk);
      }
    }
  }
  plan.order_by = opts.order_by;
  plan.order_desc = opts.order_desc;
  plan.limit = opts.limit;
  if (plan.access == AccessPath::kCollScan || plan.access == AccessPath::kUnion ||
      plan.access == AccessPath::kTextIndex) {
    plan.order_covered = false;
  }
  if (order_paths.empty()) plan.order_covered = false;
  if (opts.stats != nullptr) {
    opts.stats->planning_ns += std::chrono::duration_cast<std::chrono::nanoseconds>(
                                   std::chrono::steady_clock::now() - t0)
                                   .count();
    opts.stats->plan_entries_counted += entries_counted;
    opts.stats->estimated_rows = plan.estimated_rows;
    opts.stats->estimate_exact = plan.est_exact ? 1 : 0;
  }
  return plan;
}

QueryPlan PlanFind(const Collection& coll, const PredicatePtr& pred,
                   const FindOptions& opts) {
  return PlanFind(coll.GetView(), pred, opts);
}

// ---- execution ---------------------------------------------------------

namespace {

using storage::CompositeKey;
using storage::IndexKey;

const Status kBadCheckpoint = Status::InvalidArgument(
    "resume token does not match this query's operator tree");

/// Reads an integer checkpoint field.
bool CkptInt(const DocValue& ckpt, size_t i, int64_t* out) {
  const DocValue* f = CheckpointField(ckpt, i);
  if (f == nullptr || !f->is_int()) return false;
  *out = f->int_value();
  return true;
}

/// Reads an id-watermark checkpoint of shape [tag, last_id].
Result<DocId> CkptWatermark(const DocValue& ckpt, const char* tag) {
  int64_t id;
  if (!CheckpointHasTag(ckpt, tag) || !CkptInt(ckpt, 0, &id) || id < 0) {
    return kBadCheckpoint;
  }
  return static_cast<DocId>(id);
}

/// The IXSCAN run grouping for `plan`: how many leading components
/// define a run, whether the scan walks backwards, and which component
/// carries each order path's key (for merge branches; empty when no
/// order applies or the order is not covered by this scan).
struct IxScanShape {
  size_t run_len = 0;
  bool scan_desc = false;
  std::vector<size_t> order_components;  // one component per order path
};

IxScanShape ShapeOf(const QueryPlan& plan) {
  IxScanShape shape;
  const size_t m = plan.eq_values.size();
  shape.run_len = m;
  if (plan.order_covered && plan.index != nullptr &&
      !plan.order_by.empty()) {
    const std::vector<std::string>& paths = plan.index->field_paths();
    // Runs group on the equality-bound components plus every order
    // path riding a consecutively scanned component — see IxScanCursor.
    size_t next = m;
    for (const std::string& op : SplitOrderPaths(plan.order_by)) {
      size_t comp = std::string::npos;
      for (size_t i = 0; i < m && i < paths.size(); ++i) {
        if (paths[i] == op) {
          comp = i;
          break;
        }
      }
      if (comp == std::string::npos && next < paths.size() &&
          paths[next] == op) {
        comp = next++;
      }
      if (comp == std::string::npos) {  // not actually covered
        shape.order_components.clear();
        return shape;
      }
      shape.order_components.push_back(comp);
    }
    shape.run_len = next;
    shape.scan_desc = next > m && plan.order_desc;
  }
  return shape;
}

/// Builds an IXSCAN cursor for `plan`, optionally resumed at an "IX"
/// checkpoint or an explicit (prefix, id) position. `view` must be the
/// view whose version owns `plan.index`.
Result<std::unique_ptr<IxScanCursor>> BuildIxScan(
    const CollectionView& view, const QueryPlan& plan,
    const IxScanShape& shape, ExecStats* stats, const DocValue* ckpt,
    const CompositeKey* seek_prefix = nullptr, DocId seek_id = 0) {
  const SecondaryIndex* idx = plan.index;
  if (idx == nullptr) {
    return Status::Internal("IXSCAN plan without an index");
  }
  SecondaryIndex::Scan scan = idx->ScanPrefix(
      plan.eq_values, plan.has_range ? &plan.range_lo : nullptr,
      plan.has_range ? &plan.range_hi : nullptr, shape.scan_desc);
  if (seek_prefix != nullptr) {
    return std::make_unique<IxScanCursor>(view, scan, shape.run_len, stats,
                                          *seek_prefix, seek_id);
  }
  if (ckpt != nullptr) {
    if (!CheckpointHasTag(*ckpt, "IX")) return kBadCheckpoint;
    const DocValue* prefix = CheckpointField(*ckpt, 0);
    int64_t id;
    if (prefix == nullptr || !CkptInt(*ckpt, 1, &id) || id < 0) {
      return kBadCheckpoint;
    }
    if (!prefix->is_null()) {  // null prefix = nothing emitted yet
      if (!prefix->is_array() ||
          prefix->array_items().size() != shape.run_len) {
        return kBadCheckpoint;
      }
      std::vector<IndexKey> parts;
      parts.reserve(shape.run_len);
      for (const DocValue& part : prefix->array_items()) {
        parts.push_back(IndexKey::FromValue(part));
      }
      return std::make_unique<IxScanCursor>(view, scan, shape.run_len, stats,
                                            CompositeKey(std::move(parts)),
                                            static_cast<DocId>(id));
    }
  }
  return std::make_unique<IxScanCursor>(view, scan, shape.run_len, stats);
}

/// Postings intersection for a TEXT access: smallest list first, all
/// lists sorted ascending by id (so the result is too).
Result<CursorPtr> BuildTextCursor(const QueryPlan& plan,
                                  const FindOptions& opts, ExecStats* stats,
                                  DocId after_id) {
  const Predicate& driver = *plan.driver;
  if (opts.text_index == nullptr) {
    return Status::Internal("TEXT plan without a text index");
  }
  std::vector<std::vector<DocId>> lists;
  lists.reserve(driver.tokens().size());
  for (const auto& tok : driver.tokens()) {
    lists.push_back(opts.text_index->Postings(tok));
    if (stats != nullptr) {
      stats->index_entries_examined +=
          static_cast<int64_t>(lists.back().size());
    }
    if (lists.back().empty()) {  // conjunction fails
      return CursorPtr(std::make_unique<ReplayCursor>(std::vector<DocId>{},
                                                      "V", after_id));
    }
  }
  std::sort(lists.begin(), lists.end(),
            [](const std::vector<DocId>& a, const std::vector<DocId>& b) {
              return a.size() < b.size();
            });
  std::vector<DocId> ids = std::move(lists[0]);
  for (size_t i = 1; i < lists.size() && !ids.empty(); ++i) {
    std::vector<DocId> next;
    std::set_intersection(ids.begin(), ids.end(), lists[i].begin(),
                          lists[i].end(), std::back_inserter(next));
    ids.swap(next);
  }
  return CursorPtr(
      std::make_unique<ReplayCursor>(std::move(ids), "V", after_id));
}

/// Builds one MERGE_UNION branch positioned strictly after the merged
/// stream's last emitted (composite order key, id). The order
/// positions are walked in significance order: scanned components pin
/// to the resume key's parts (they are consecutive after the equality
/// prefix, so the pins extend the seek prefix), and the first
/// equality-bound position whose constant differs from the resume key
/// decides in merge order — "before" means every entry tying the
/// pinned prefix so far is already consumed (skip that whole group),
/// "after" means none of it is (open at the group's start; earlier
/// groups were consumed at an earlier scanned position). When every
/// position ties, the exact (prefix, id) watermark applies.
Result<std::unique_ptr<IxScanCursor>> BuildResumedMergeBranch(
    const CollectionView& view, const QueryPlan& branch,
    const IxScanShape& shape, ExecStats* stats, const CompositeKey& last_key,
    DocId last_id) {
  const size_t m = branch.eq_values.size();
  if (last_key.width() != shape.order_components.size()) {
    return kBadCheckpoint;
  }
  std::vector<IndexKey> parts;
  parts.reserve(shape.run_len);
  for (const DocValue& v : branch.eq_values) {
    parts.push_back(IndexKey::FromValue(v));
  }
  for (size_t j = 0; j < shape.order_components.size(); ++j) {
    const size_t c = shape.order_components[j];
    if (c >= m) {  // scanned component, consecutive from m
      parts.push_back(last_key.part(j));
      continue;
    }
    const IndexKey& k_b = parts[c];
    if (k_b == last_key.part(j)) continue;
    // "Before" is judged in MERGE order (branch.order_desc) — an
    // eq-bound component holds one constant regardless of scan
    // direction, so shape.scan_desc would misjudge it and drop (or
    // replay) the whole group on a descending resume.
    const bool before = branch.order_desc ? (last_key.part(j) < k_b)
                                          : (k_b < last_key.part(j));
    CompositeKey prefix(std::move(parts));
    return BuildIxScan(view, branch, shape, stats, nullptr, &prefix,
                       before ? std::numeric_limits<DocId>::max()
                              : static_cast<DocId>(0));
  }
  CompositeKey prefix(std::move(parts));
  return BuildIxScan(view, branch, shape, stats, nullptr, &prefix, last_id);
}

/// Builds the MERGE_UNION cursor, resumed at an "MU" checkpoint when
/// given.
Result<CursorPtr> BuildMergeUnionCursor(const CollectionView& coll,
                                        const QueryPlan& plan,
                                        ExecStats* stats,
                                        const DocValue* ckpt) {
  bool resumed = false;
  CompositeKey last_key;
  DocId last_id = 0;
  if (ckpt != nullptr) {
    if (!CheckpointHasTag(*ckpt, "MU")) return kBadCheckpoint;
    const DocValue* emitted = CheckpointField(*ckpt, 0);
    const DocValue* key = CheckpointField(*ckpt, 1);
    int64_t id;
    if (emitted == nullptr || !emitted->is_bool() || key == nullptr ||
        !CkptInt(*ckpt, 2, &id) || id < 0) {
      return kBadCheckpoint;
    }
    if (emitted->bool_value()) {
      if (!key->is_array()) return kBadCheckpoint;
      std::vector<IndexKey> key_parts;
      key_parts.reserve(key->array_items().size());
      for (const DocValue& part : key->array_items()) {
        key_parts.push_back(IndexKey::FromValue(part));
      }
      resumed = true;
      last_key = CompositeKey(std::move(key_parts));
      last_id = static_cast<DocId>(id);
    }
  }
  std::vector<MergeBranch> branches;
  branches.reserve(plan.branches.size());
  for (const QueryPlan& branch : plan.branches) {
    IxScanShape shape = ShapeOf(branch);
    if (shape.order_components.empty()) {
      return Status::Internal("MERGE_UNION branch without an order key");
    }
    std::unique_ptr<IxScanCursor> scan;
    if (resumed) {
      DT_ASSIGN_OR_RETURN(scan, BuildResumedMergeBranch(coll, branch, shape,
                                                        stats, last_key,
                                                        last_id));
    } else {
      DT_ASSIGN_OR_RETURN(scan,
                          BuildIxScan(coll, branch, shape, stats, nullptr));
    }
    MergeBranch mb;
    mb.scan = scan.get();
    mb.order_components = shape.order_components;
    mb.cursor = std::move(scan);
    if (branch.residual) {
      mb.cursor = std::make_unique<FilterCursor>(coll, std::move(mb.cursor),
                                                 branch.node, stats);
    }
    branches.push_back(std::move(mb));
  }
  if (resumed) {
    return CursorPtr(std::make_unique<MergeUnionCursor>(
        std::move(branches), plan.order_desc, last_key, last_id));
  }
  return CursorPtr(
      std::make_unique<MergeUnionCursor>(std::move(branches),
                                         plan.order_desc));
}

/// Builds the access-path cursor for `plan` (no pipeline operators),
/// resumed at `ckpt` when given.
Result<CursorPtr> BuildAccessCursor(const CollectionView& coll,
                                    const QueryPlan& plan,
                                    const FindOptions& opts,
                                    ExecStats* stats,
                                    const DocValue* ckpt) {
  switch (plan.access) {
    case AccessPath::kCollScan: {
      DocId after_id = 0;
      if (ckpt != nullptr) {
        DT_ASSIGN_OR_RETURN(after_id, CkptWatermark(*ckpt, "CS"));
      }
      const int threads = opts.pool != nullptr
                              ? opts.pool->num_threads()
                              : ResolveNumThreads(opts.num_threads);
      if (threads > 1 && coll.count() >= 2) {
        return CollScanCursor::Parallel(coll, plan.node, opts.num_threads,
                                        opts.pool, stats, after_id);
      }
      return CursorPtr(std::make_unique<CollScanCursor>(coll, plan.node,
                                                        stats, after_id));
    }
    case AccessPath::kIndexEq:
    case AccessPath::kIndexRange: {
      DT_ASSIGN_OR_RETURN(
          std::unique_ptr<IxScanCursor> scan,
          BuildIxScan(coll, plan, ShapeOf(plan), stats, ckpt));
      return CursorPtr(std::move(scan));
    }
    case AccessPath::kTextIndex: {
      DocId after_id = 0;
      if (ckpt != nullptr) {
        DT_ASSIGN_OR_RETURN(after_id, CkptWatermark(*ckpt, "V"));
      }
      return BuildTextCursor(plan, opts, stats, after_id);
    }
    case AccessPath::kUnion: {
      DocId after_id = 0;
      if (ckpt != nullptr) {
        DT_ASSIGN_OR_RETURN(after_id, CkptWatermark(*ckpt, "U"));
      }
      std::vector<CursorPtr> branches;
      branches.reserve(plan.branches.size());
      for (const QueryPlan& branch : plan.branches) {
        DT_ASSIGN_OR_RETURN(
            CursorPtr cur, BuildAccessCursor(coll, branch, opts, stats,
                                             nullptr));
        if (branch.residual) {
          cur = std::make_unique<FilterCursor>(coll, std::move(cur),
                                               branch.node, stats);
        }
        branches.push_back(std::move(cur));
      }
      return CursorPtr(
          std::make_unique<UnionCursor>(std::move(branches), after_id));
    }
    case AccessPath::kMergeUnion:
      return BuildMergeUnionCursor(coll, plan, stats, ckpt);
  }
  return Status::Internal("unknown access path");
}

/// Builds the full operator tree: access path, residual FILTER, then
/// SORT / TOPK / LIMIT as the decoration demands. `ckpt` (may be null)
/// is the checkpoint tree a prior page saved off the same plan; the
/// walk mirrors `SaveCheckpoint`'s nesting.
Result<CursorPtr> BuildCursor(const CollectionView& coll,
                              const QueryPlan& plan, const FindOptions& opts,
                              ExecStats* stats, const DocValue* ckpt) {
  const bool blocking_order =
      !plan.order_by.empty() && !plan.order_covered;
  if (blocking_order) {
    // SORT/TOPK own the position (emitted count; they re-materialize
    // on resume — blocking operators have no cheaper checkpoint), so
    // the subtree below them always opens fresh.
    int64_t skip = 0;
    const char* tag = plan.limit >= 0 ? "TOPK" : "SORT";
    if (ckpt != nullptr) {
      if (!CheckpointHasTag(*ckpt, tag) || !CkptInt(*ckpt, 0, &skip) ||
          skip < 0) {
        return kBadCheckpoint;
      }
    }
    DT_ASSIGN_OR_RETURN(CursorPtr cur,
                        BuildAccessCursor(coll, plan, opts, stats, nullptr));
    if (plan.residual && plan.access != AccessPath::kCollScan) {
      cur = std::make_unique<FilterCursor>(coll, std::move(cur), plan.node,
                                           stats);
    }
    if (plan.limit >= 0) {
      return CursorPtr(std::make_unique<TopKCursor>(
          coll, std::move(cur), plan.order_by, plan.order_desc, plan.limit,
          stats, skip));
    }
    return CursorPtr(std::make_unique<SortCursor>(
        coll, std::move(cur), plan.order_by, plan.order_desc, stats, skip));
  }
  const DocValue* inner_ckpt = ckpt;
  int64_t remaining = plan.limit;
  if (plan.limit >= 0 && ckpt != nullptr) {
    if (!CheckpointHasTag(*ckpt, "LIM") || !CkptInt(*ckpt, 0, &remaining) ||
        remaining < 0 || remaining > plan.limit) {
      return kBadCheckpoint;
    }
    inner_ckpt = CheckpointField(*ckpt, 1);
    if (inner_ckpt == nullptr) return kBadCheckpoint;
  }
  DT_ASSIGN_OR_RETURN(
      CursorPtr cur, BuildAccessCursor(coll, plan, opts, stats, inner_ckpt));
  if (plan.residual && plan.access != AccessPath::kCollScan) {
    cur = std::make_unique<FilterCursor>(coll, std::move(cur), plan.node,
                                         stats);
  }
  if (plan.limit >= 0) {
    cur = std::make_unique<LimitCursor>(std::move(cur), remaining);
  }
  return cur;
}

/// The resume-safety fingerprint: the collection identity plus the
/// canonical plan rendering (access path, index bounds, order, limit,
/// estimates) plus the predicate tree. Identical state re-plans to an
/// identical fingerprint; any drift in what the token's position means
/// — including handing a token minted on one collection to another
/// whose epoch coincidentally matches — rejects the token.
uint64_t PlanFingerprint(const CollectionView& coll, const QueryPlan& plan,
                         const PredicatePtr& pred) {
  std::string s = coll.ns();
  s += '\x1f';
  s += plan.ToString();
  s += '\x1f';
  s += pred != nullptr ? pred->ToString() : "";
  return Fnv1a64(s);
}

void NoteScan(const CollectionView& coll, const QueryPlan& plan) {
  if (plan.access == AccessPath::kCollScan) {
    coll.NoteCollScan();
  } else {
    coll.NoteIndexScan();
  }
}

/// The shared plan-validate-open core of FindPage/FindFold: resolves
/// the execution view (the caller's view, or — on resume — the exact
/// retained version the token was minted against), plans `pred`
/// against it, validates the token (incarnation, version reachability,
/// plan fingerprint) and returns the root cursor positioned
/// accordingly. Resets `opts.stats`, copies the plan to `*plan_out`,
/// the fingerprint to `*fingerprint_out` and the execution view to
/// `*exec_view_out` (so the caller mints tokens against the version
/// that actually executed).
Result<CursorPtr> OpenFind(const CollectionView& view,
                           const PredicatePtr& pred, const FindOptions& opts,
                           QueryPlan* plan_out, uint64_t* fingerprint_out,
                           CollectionView* exec_view_out) {
  if (pred == nullptr) {
    return Status::InvalidArgument("Find requires a predicate");
  }
  if (opts.stats != nullptr) *opts.stats = ExecStats{};
  CollectionView exec_view = view;
  DocValue ckpt;
  if (!opts.resume_token.empty()) {
    uint64_t token_fp, token_inc, token_vid;
    DT_RETURN_NOT_OK(DecodePageToken(opts.resume_token, &token_fp,
                                     &token_inc, &token_vid, &ckpt));
    if (token_inc != view.incarnation()) {
      return Status::InvalidArgument(
          "stale resume token: it was issued against a different "
          "incarnation of " +
          view.ns());
    }
    // Resolve the exact storage version the token was minted against:
    // the caller's current version, or an older one the collection
    // retained when the token was issued. Reclaimed versions reject.
    DT_ASSIGN_OR_RETURN(exec_view, view.At(token_vid));
    QueryPlan plan = PlanFind(exec_view, pred, opts);
    if (token_fp != PlanFingerprint(exec_view, plan, pred)) {
      return Status::InvalidArgument(
          "resume token does not match this query's plan");
    }
    DT_ASSIGN_OR_RETURN(CursorPtr root, BuildCursor(exec_view, plan, opts,
                                                    opts.stats, &ckpt));
    *plan_out = std::move(plan);
    *fingerprint_out = token_fp;
    *exec_view_out = std::move(exec_view);
    return root;
  }
  QueryPlan plan = PlanFind(exec_view, pred, opts);
  const uint64_t fingerprint = PlanFingerprint(exec_view, plan, pred);
  DT_ASSIGN_OR_RETURN(CursorPtr root, BuildCursor(exec_view, plan, opts,
                                                  opts.stats, nullptr));
  *plan_out = std::move(plan);
  *fingerprint_out = fingerprint;
  *exec_view_out = std::move(exec_view);
  return root;
}

}  // namespace

Result<FindResult> FindPage(const CollectionView& view,
                            const PredicatePtr& pred,
                            const FindOptions& opts) {
  if (opts.page_size == 0 || opts.page_size < -1) {
    return Status::InvalidArgument(
        "page_size must be positive (or -1 for unpaged)");
  }
  QueryPlan plan;
  uint64_t fingerprint;
  CollectionView exec_view = view;
  DT_ASSIGN_OR_RETURN(
      CursorPtr root,
      OpenFind(view, pred, opts, &plan, &fingerprint, &exec_view));
  FindResult out;
  if (opts.page_size < 0) {
    DT_RETURN_NOT_OK(DrainCursor(root.get(), opts.stats, &out.ids));
  } else {
    DocId id;
    while (static_cast<int64_t>(out.ids.size()) < opts.page_size &&
           root->Next(&id)) {
      out.ids.push_back(id);
    }
    DT_RETURN_NOT_OK(root->status());
    if (static_cast<int64_t>(out.ids.size()) == opts.page_size) {
      // Snapshot the position, then probe once: a token is only minted
      // when another id actually exists, so clients never chase an
      // empty trailing page.
      DocValue position = root->SaveCheckpoint();
      DocId probe;
      const bool more = root->Next(&probe);
      DT_RETURN_NOT_OK(root->status());
      if (more) {
        // The token pins the exact version this page executed against:
        // retain it so the next page resumes on identical data no
        // matter what writers publish in between.
        exec_view.RetainForResume();
        out.next_token =
            EncodePageToken(fingerprint, exec_view.incarnation(),
                            exec_view.version_id(), position);
      }
    }
    if (opts.stats != nullptr) {
      opts.stats->docs_returned += static_cast<int64_t>(out.ids.size());
    }
  }
  NoteScan(view, plan);
  return out;
}

Result<FindResult> FindPage(const Collection& coll, const PredicatePtr& pred,
                            const FindOptions& opts) {
  return FindPage(coll.GetView(), pred, opts);
}

Result<std::vector<DocId>> Find(const CollectionView& view,
                                const PredicatePtr& pred,
                                const FindOptions& opts) {
  DT_ASSIGN_OR_RETURN(FindResult page, FindPage(view, pred, opts));
  return std::move(page.ids);
}

Result<std::vector<DocId>> Find(const Collection& coll,
                                const PredicatePtr& pred,
                                const FindOptions& opts) {
  return Find(coll.GetView(), pred, opts);
}

Status FindFold(const CollectionView& view, const PredicatePtr& pred,
                const FindOptions& opts,
                const std::function<void(DocId)>& fn) {
  FindOptions fold_opts = opts;  // pagination is a FindPage concern
  fold_opts.page_size = -1;
  fold_opts.resume_token.clear();
  QueryPlan plan;
  uint64_t fingerprint;
  CollectionView exec_view = view;
  DT_ASSIGN_OR_RETURN(
      CursorPtr root,
      OpenFind(view, pred, fold_opts, &plan, &fingerprint, &exec_view));
  DocId id;
  int64_t returned = 0;
  while (root->Next(&id)) {
    fn(id);
    ++returned;
  }
  DT_RETURN_NOT_OK(root->status());
  if (fold_opts.stats != nullptr) fold_opts.stats->docs_returned += returned;
  NoteScan(view, plan);
  return Status::OK();
}

Status FindFold(const Collection& coll, const PredicatePtr& pred,
                const FindOptions& opts,
                const std::function<void(DocId)>& fn) {
  return FindFold(coll.GetView(), pred, opts, fn);
}

// ---- rendering ---------------------------------------------------------

namespace {

std::string RenderDocValue(const DocValue& v) {
  return v.is_string() ? "\"" + v.string_value() + "\"" : v.ToJson();
}

// ---- lenient field readers for RenderPlan ------------------------------
// The renderer accepts documents from the wire; a missing or mistyped
// field degrades to a placeholder instead of crashing.

std::string PlanStr(const DocValue& plan, const char* key) {
  const DocValue* v = plan.is_object() ? plan.Find(key) : nullptr;
  return v != nullptr && v->is_string() ? v->string_value() : std::string();
}

int64_t PlanInt(const DocValue& plan, const char* key, int64_t fallback) {
  const DocValue* v = plan.is_object() ? plan.Find(key) : nullptr;
  return v != nullptr && v->is_int() ? v->int_value() : fallback;
}

bool PlanBool(const DocValue& plan, const char* key) {
  const DocValue* v = plan.is_object() ? plan.Find(key) : nullptr;
  return v != nullptr && v->is_bool() && v->bool_value();
}

const storage::DocArray* PlanArray(const DocValue& plan, const char* key) {
  const DocValue* v = plan.is_object() ? plan.Find(key) : nullptr;
  return v != nullptr && v->is_array() ? &v->array_items() : nullptr;
}

/// Renders a serialized predicate field: absent/null falls back to
/// `fallback` ("TRUE" for match-all slots), undecodable to "?".
std::string PlanPredStr(const DocValue& plan, const char* key,
                        const char* fallback) {
  const DocValue* v = plan.is_object() ? plan.Find(key) : nullptr;
  if (v == nullptr || v->is_null()) return fallback;
  Result<PredicatePtr> pred = Predicate::FromDocValue(*v);
  return pred.ok() ? (*pred)->ToString() : "?";
}

}  // namespace

DocValue QueryPlan::ToDocValue() const {
  DocValue out = DocValue::Object();
  out.Add("access", DocValue::Str(AccessPathName(access)));
  out.Add("pred", node != nullptr ? node->ToDocValue() : DocValue::Null());
  out.Add("driver",
          driver != nullptr ? driver->ToDocValue() : DocValue::Null());
  out.Add("est", DocValue::Int(estimated_rows));
  out.Add("est_exact", DocValue::Bool(est_exact));
  out.Add("residual", DocValue::Bool(residual));
  DocValue paths = DocValue::Array();
  if (index != nullptr) {
    for (const auto& p : index->field_paths()) paths.Push(DocValue::Str(p));
  }
  out.Add("paths", std::move(paths));
  DocValue eq = DocValue::Array();
  for (const auto& v : eq_values) eq.Push(v);
  out.Add("eq", std::move(eq));
  if (has_range) {
    DocValue range = DocValue::Array();
    range.Push(range_lo);
    range.Push(range_hi);
    out.Add("range", std::move(range));
  } else {
    out.Add("range", DocValue::Null());
  }
  out.Add("order_by", DocValue::Str(order_by));
  out.Add("order_desc", DocValue::Bool(order_desc));
  out.Add("limit", DocValue::Int(limit));
  out.Add("order_covered", DocValue::Bool(order_covered));
  DocValue branch_docs = DocValue::Array();
  for (const auto& b : branches) branch_docs.Push(b.ToDocValue());
  out.Add("branches", std::move(branch_docs));
  return out;
}

std::string QueryPlan::ToString() const { return RenderPlan(ToDocValue()); }

std::string RenderPlan(const DocValue& plan) {
  const std::string access = PlanStr(plan, "access");
  const std::string est_num = std::to_string(PlanInt(plan, "est", 0));
  // Estimate provenance: only an explicit `est_exact: false` renders
  // as a histogram estimate, so plans from peers that predate the
  // field read as exact counts (which they were).
  const DocValue* ee = plan.is_object() ? plan.Find("est_exact") : nullptr;
  const bool est_exact = ee == nullptr || !ee->is_bool() || ee->bool_value();
  const std::string est =
      est_exact ? est_num + " (exact)" : "~" + est_num + " (hist)";
  const std::string order_by = PlanStr(plan, "order_by");
  const bool order_desc = PlanBool(plan, "order_desc");
  std::string out = access.empty() ? "?" : access;
  if (access == "COLLSCAN") {
    // A full scan's cardinality is the doc count — trivially exact, so
    // no provenance suffix.
    out += " { " + PlanPredStr(plan, "pred", "TRUE") + " } docs=" + est_num;
  } else if (access == "UNION" || access == "MERGE_UNION") {
    out += " [ ";
    // Each branch renders recursively — per-branch access, bounds
    // and `est=` (and, inside MERGE_UNION, the order annotation).
    if (const storage::DocArray* branches = PlanArray(plan, "branches")) {
      for (size_t i = 0; i < branches->size(); ++i) {
        if (i > 0) out += " , ";
        out += RenderPlan((*branches)[i]);
      }
    }
    out += " ]";
    if (access == "MERGE_UNION" && !order_by.empty()) {
      out += " order=" + order_by + (order_desc ? " desc" : "");
    }
    out += " est=" + est;
  } else if (access == "TEXT") {
    out += " { " + PlanPredStr(plan, "driver", "?") + " } est=" + est;
  } else if (access == "IXSCAN") {
    static const storage::DocArray kEmpty;
    const storage::DocArray* paths_arr = PlanArray(plan, "paths");
    const storage::DocArray& paths = paths_arr ? *paths_arr : kEmpty;
    const storage::DocArray* eq_arr = PlanArray(plan, "eq");
    const storage::DocArray& eq = eq_arr ? *eq_arr : kEmpty;
    const storage::DocArray* range = PlanArray(plan, "range");
    const bool has_range = range != nullptr && range->size() == 2;
    auto path_at = [&paths](size_t i) {
      return paths[i].is_string() ? paths[i].string_value() : std::string("?");
    };
    const size_t m = eq.size();
    size_t shown = m + (has_range ? 1 : 0);
    if (shown == 0) shown = std::min<size_t>(1, paths.size());
    out += "(";
    for (size_t i = 0; i < shown && i < paths.size(); ++i) {
      if (i > 0) out += ",";
      out += path_at(i);
    }
    out += ") { ";
    if (shown == 0 || paths.empty()) {
      out += "all";
    } else {
      for (size_t i = 0; i < m && i < paths.size(); ++i) {
        if (i > 0) out += ", ";
        out += path_at(i) + " == " + RenderDocValue(eq[i]);
      }
      if (has_range && m < paths.size()) {
        if (m > 0) out += ", ";
        out += path_at(m) + " in [" + RenderDocValue((*range)[0]) + ", " +
               RenderDocValue((*range)[1]) + "]";
      }
      if (m == 0 && !has_range) out += "all";
    }
    out += " }";
    if (PlanBool(plan, "order_covered") && !order_by.empty()) {
      out += " order=" + order_by + (order_desc ? " desc" : "");
    }
    out += " est=" + est;
  }
  if (PlanBool(plan, "residual") && access != "COLLSCAN") {
    // The residual's own output cardinality is unknown without
    // histograms; `est=` reports the rows entering the filter (the
    // driver estimate), the bound that matters for fetch cost.
    out += " -> FILTER { " + PlanPredStr(plan, "pred", "TRUE") +
           " } est=" + est;
  }
  const int64_t limit = PlanInt(plan, "limit", -1);
  bool limit_pending = limit >= 0;
  if (!order_by.empty() && !PlanBool(plan, "order_covered")) {
    if (limit_pending) {
      out += " -> TOPK(" + order_by + (order_desc ? " desc" : "") +
             ", k=" + std::to_string(limit) + ")";
      limit_pending = false;
    } else {
      out += " -> SORT(" + order_by + (order_desc ? " desc" : "") + ")";
    }
  }
  if (limit_pending) out += " -> LIMIT(" + std::to_string(limit) + ")";
  return out;
}

std::string ExplainFind(const CollectionView& view, const PredicatePtr& pred,
                        const FindOptions& opts) {
  QueryPlan plan = PlanFind(view, pred, opts);
  std::string out = plan.ToString();
  if (!opts.resume_token.empty()) {
    // Render where the resumed execution would restart — or why the
    // token would be rejected.
    uint64_t token_fp = 0, token_inc = 0, token_vid = 0;
    DocValue ckpt;
    if (!DecodePageToken(opts.resume_token, &token_fp, &token_inc,
                         &token_vid, &ckpt)
             .ok()) {
      out += " resume=INVALID";
    } else if (token_inc != view.incarnation()) {
      out += " resume=STALE(incarnation mismatch)";
    } else {
      Result<CollectionView> resolved = view.At(token_vid);
      if (!resolved.ok()) {
        out += " resume=STALE(version " + std::to_string(token_vid) +
               " reclaimed)";
      } else {
        const CollectionView& exec_view = *resolved;
        QueryPlan exec_plan = PlanFind(exec_view, pred, opts);
        if (token_fp != PlanFingerprint(exec_view, exec_plan, pred)) {
          out += " resume=PLAN_MISMATCH";
        } else if (exec_view.version_id() != view.version_id()) {
          out += " resume=RETAINED " + ckpt.ToJson();
        } else {
          out += " resume=" + ckpt.ToJson();
        }
      }
    }
  }
  return out;
}

std::string ExplainFind(const Collection& coll, const PredicatePtr& pred,
                        const FindOptions& opts) {
  return ExplainFind(coll.GetView(), pred, opts);
}

}  // namespace dt::query
