#include "query/planner.h"

#include <algorithm>
#include <limits>
#include <utility>

#include "common/thread_pool.h"

namespace dt::query {

using storage::Collection;
using storage::DocId;
using storage::DocValue;
using storage::SecondaryIndex;

const char* AccessPathName(AccessPath access) {
  switch (access) {
    case AccessPath::kIndexEq:
    case AccessPath::kIndexRange:
      return "IXSCAN";
    case AccessPath::kTextIndex:
      return "TEXT";
    case AccessPath::kUnion:
      return "UNION";
    case AccessPath::kCollScan:
      return "COLLSCAN";
  }
  return "?";
}

namespace {

/// Probes whether `p` can drive an index access on its own, and at
/// what estimated cardinality. Only leaf predicates drive scans; And
/// nodes pick one of their children through this probe.
bool ProbeDriver(const Collection& coll, const FindOptions& opts,
                 const PredicatePtr& p, AccessPath* access, int64_t* est) {
  switch (p->kind()) {
    case PredicateKind::kEq: {
      const SecondaryIndex* idx = coll.IndexOn(p->path());
      if (idx == nullptr) return false;
      *access = AccessPath::kIndexEq;
      *est = idx->CountEqual(p->value());
      return true;
    }
    case PredicateKind::kRange: {
      const SecondaryIndex* idx = coll.IndexOn(p->path());
      if (idx == nullptr) return false;
      *access = AccessPath::kIndexRange;
      *est = idx->CountRange(p->lo(), p->hi());
      return true;
    }
    case PredicateKind::kTextContains: {
      if (opts.text_index == nullptr || p->tokens().empty()) return false;
      if (opts.text_index->field_path() != p->path()) return false;
      // Conjunctive: the rarest term bounds the result size.
      int64_t best = std::numeric_limits<int64_t>::max();
      for (const auto& tok : p->tokens()) {
        best = std::min(best, opts.text_index->DocFrequency(tok));
      }
      *access = AccessPath::kTextIndex;
      *est = best;
      return true;
    }
    default:
      return false;
  }
}

QueryPlan CollScanPlan(const Collection& coll, const PredicatePtr& pred) {
  QueryPlan plan;
  plan.access = AccessPath::kCollScan;
  plan.node = pred;
  plan.estimated_rows = coll.count();
  return plan;
}

}  // namespace

QueryPlan PlanFind(const Collection& coll, const PredicatePtr& pred,
                   const FindOptions& opts) {
  if (pred == nullptr || !opts.use_indexes) return CollScanPlan(coll, pred);

  AccessPath access;
  int64_t est;
  // Leaf predicates drive their own scan, exactly (no residual).
  if (ProbeDriver(coll, opts, pred, &access, &est)) {
    QueryPlan plan;
    plan.access = access;
    plan.node = pred;
    plan.driver = pred;
    plan.estimated_rows = est;
    return plan;
  }

  if (pred->kind() == PredicateKind::kAnd) {
    // Cost-aware driver choice: the most selective indexable child
    // drives; the full conjunction re-checks as a residual filter.
    QueryPlan best;
    bool found = false;
    for (const auto& child : pred->children()) {
      if (!ProbeDriver(coll, opts, child, &access, &est)) continue;
      if (!found || est < best.estimated_rows) {
        best.access = access;
        best.driver = child;
        best.estimated_rows = est;
        found = true;
      }
    }
    // A residual scan that visits as many rows as the collection holds
    // saves nothing over the straight scan it complicates.
    if (found && best.estimated_rows < coll.count()) {
      best.node = pred;
      best.residual = true;
      return best;
    }
    return CollScanPlan(coll, pred);
  }

  if (pred->kind() == PredicateKind::kOr) {
    // Union only when every branch is index-routable on its own; one
    // non-routable branch means one full scan answers the whole Or.
    QueryPlan plan;
    plan.access = AccessPath::kUnion;
    plan.node = pred;
    plan.estimated_rows = 0;
    for (const auto& child : pred->children()) {
      QueryPlan branch = PlanFind(coll, child, opts);
      if (branch.access == AccessPath::kCollScan) {
        return CollScanPlan(coll, pred);
      }
      plan.estimated_rows += branch.estimated_rows;
      plan.branches.push_back(std::move(branch));
    }
    if (plan.estimated_rows < coll.count() || plan.branches.empty()) {
      return plan;
    }
    return CollScanPlan(coll, pred);
  }

  return CollScanPlan(coll, pred);
}

namespace {

/// Full scan of `coll`, keeping ids whose documents match `pred` (null
/// = every id). Chunked over a thread pool when `num_threads` resolves
/// past 1; chunk boundaries and in-order concatenation keep the output
/// byte-identical to the serial scan.
Status ExecuteCollScan(const Collection& coll, const PredicatePtr& pred,
                       int num_threads, std::vector<DocId>* out) {
  const int threads = ResolveNumThreads(num_threads);
  if (threads <= 1 || coll.count() < 2) {
    // Serial: filter inside the iteration, no staging vector.
    coll.ForEach([&](DocId id, const DocValue& doc) {
      if (pred == nullptr || pred->Matches(doc)) out->push_back(id);
    });
    return Status::OK();
  }
  // The chunked loop needs random access; stage (id, doc) pointers.
  std::vector<std::pair<DocId, const DocValue*>> docs;
  docs.reserve(static_cast<size_t>(coll.count()));
  coll.ForEach([&](DocId id, const DocValue& doc) {
    docs.emplace_back(id, &doc);
  });
  ThreadPool pool(threads);
  const size_t num_chunks = static_cast<size_t>(pool.num_threads()) * 4;
  std::vector<std::vector<DocId>> parts(num_chunks);
  DT_RETURN_NOT_OK(pool.ParallelForChunks(
      0, docs.size(), num_chunks,
      [&](size_t chunk, size_t begin, size_t end) {
        std::vector<DocId>& part = parts[chunk];
        for (size_t i = begin; i < end; ++i) {
          if (pred == nullptr || pred->Matches(*docs[i].second)) {
            part.push_back(docs[i].first);
          }
        }
        return Status::OK();
      }));
  for (const auto& part : parts) {
    out->insert(out->end(), part.begin(), part.end());
  }
  return Status::OK();
}

Status ExecutePlan(const Collection& coll, const QueryPlan& plan,
                   const FindOptions& opts, std::vector<DocId>* out);

/// Runs the driving index access of a kIndexEq/kIndexRange/kTextIndex
/// plan and applies the residual filter when the driver
/// over-approximates.
Status ExecuteDriver(const Collection& coll, const QueryPlan& plan,
                     const FindOptions& opts, std::vector<DocId>* out) {
  const Predicate& driver = *plan.driver;
  std::vector<DocId> ids;
  switch (plan.access) {
    case AccessPath::kIndexEq:
    case AccessPath::kIndexRange: {
      const SecondaryIndex* idx = coll.IndexOn(driver.path());
      if (idx == nullptr) {
        return Status::Internal("plan references a dropped index on " +
                                driver.path());
      }
      auto collect = [&ids](const storage::IndexKey&, DocId id) {
        ids.push_back(id);
        return true;
      };
      if (plan.access == AccessPath::kIndexEq) {
        idx->VisitEqual(driver.value(), collect);
      } else {
        idx->VisitRange(driver.lo(), driver.hi(), collect);
      }
      // Key-ordered entries are not id-ordered; the contract is
      // ascending ids.
      std::sort(ids.begin(), ids.end());
      break;
    }
    case AccessPath::kTextIndex: {
      std::vector<std::vector<DocId>> lists;
      lists.reserve(driver.tokens().size());
      for (const auto& tok : driver.tokens()) {
        lists.push_back(opts.text_index->Postings(tok));
        if (lists.back().empty()) return Status::OK();  // conjunction fails
      }
      std::sort(lists.begin(), lists.end(),
                [](const std::vector<DocId>& a, const std::vector<DocId>& b) {
                  return a.size() < b.size();
                });
      ids = std::move(lists[0]);
      for (size_t i = 1; i < lists.size() && !ids.empty(); ++i) {
        std::vector<DocId> next;
        std::set_intersection(ids.begin(), ids.end(), lists[i].begin(),
                              lists[i].end(), std::back_inserter(next));
        ids.swap(next);
      }
      break;
    }
    default:
      return Status::Internal("ExecuteDriver on a non-driver plan");
  }
  if (!plan.residual) {
    out->insert(out->end(), ids.begin(), ids.end());
    return Status::OK();
  }
  for (DocId id : ids) {
    const DocValue* doc = coll.Get(id);
    if (doc != nullptr && plan.node->Matches(*doc)) out->push_back(id);
  }
  return Status::OK();
}

Status ExecutePlan(const Collection& coll, const QueryPlan& plan,
                   const FindOptions& opts, std::vector<DocId>* out) {
  switch (plan.access) {
    case AccessPath::kCollScan:
      return ExecuteCollScan(coll, plan.node, opts.num_threads, out);
    case AccessPath::kUnion: {
      std::vector<DocId> merged;
      for (const auto& branch : plan.branches) {
        DT_RETURN_NOT_OK(ExecutePlan(coll, branch, opts, &merged));
      }
      std::sort(merged.begin(), merged.end());
      merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
      out->insert(out->end(), merged.begin(), merged.end());
      return Status::OK();
    }
    default:
      return ExecuteDriver(coll, plan, opts, out);
  }
}

}  // namespace

Result<std::vector<DocId>> Find(const Collection& coll,
                                const PredicatePtr& pred,
                                const FindOptions& opts) {
  if (pred == nullptr) {
    return Status::InvalidArgument("Find requires a predicate");
  }
  QueryPlan plan = PlanFind(coll, pred, opts);
  std::vector<DocId> out;
  DT_RETURN_NOT_OK(ExecutePlan(coll, plan, opts, &out));
  if (plan.access == AccessPath::kCollScan) {
    coll.NoteCollScan();
  } else {
    coll.NoteIndexScan();
  }
  if (opts.limit >= 0 && static_cast<int64_t>(out.size()) > opts.limit) {
    out.resize(static_cast<size_t>(opts.limit));
  }
  return out;
}

std::string QueryPlan::ToString() const {
  std::string out = AccessPathName(access);
  switch (access) {
    case AccessPath::kCollScan:
      out += " { " + (node != nullptr ? node->ToString() : "TRUE") +
             " } docs=" + std::to_string(estimated_rows);
      break;
    case AccessPath::kUnion: {
      out += " [ ";
      for (size_t i = 0; i < branches.size(); ++i) {
        if (i > 0) out += " , ";
        out += branches[i].ToString();
      }
      out += " ] est=" + std::to_string(estimated_rows);
      break;
    }
    default:
      out += " { " + driver->ToString() +
             " } est=" + std::to_string(estimated_rows);
      if (residual) out += " | residual " + node->ToString();
      break;
  }
  return out;
}

std::string ExplainFind(const Collection& coll, const PredicatePtr& pred,
                        const FindOptions& opts) {
  return PlanFind(coll, pred, opts).ToString();
}

}  // namespace dt::query
