#include "query/executor.h"

#include <utility>

#include "common/thread_pool.h"

namespace dt::query {

using storage::CollectionView;
using storage::CompositeKey;
using storage::DocId;
using storage::DocValue;
using storage::IndexKey;

DocValue ExecStats::ToDocValue() const {
  DocValue out = DocValue::Object();
  out.Add("index_entries_examined", DocValue::Int(index_entries_examined));
  out.Add("docs_examined", DocValue::Int(docs_examined));
  out.Add("docs_returned", DocValue::Int(docs_returned));
  out.Add("planning_ns", DocValue::Int(planning_ns));
  out.Add("plan_entries_counted", DocValue::Int(plan_entries_counted));
  out.Add("estimated_rows", DocValue::Int(estimated_rows));
  out.Add("estimate_exact", DocValue::Int(estimate_exact));
  return out;
}

Result<ExecStats> ExecStats::FromDocValue(const DocValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("ExecStats wants an object");
  }
  ExecStats out;
  struct Field {
    const char* key;
    int64_t* dst;
  } fields[] = {
      {"index_entries_examined", &out.index_entries_examined},
      {"docs_examined", &out.docs_examined},
      {"docs_returned", &out.docs_returned},
      {"planning_ns", &out.planning_ns},
      {"plan_entries_counted", &out.plan_entries_counted},
      {"estimated_rows", &out.estimated_rows},
      {"estimate_exact", &out.estimate_exact},
  };
  for (const Field& f : fields) {
    const DocValue* fv = v.Find(f.key);
    if (fv == nullptr || !fv->is_int()) {
      return Status::InvalidArgument(std::string("ExecStats field ") + f.key +
                                     " must be an int");
    }
    *f.dst = fv->int_value();
  }
  return out;
}

Status DrainCursor(Cursor* cursor, ExecStats* stats,
                   std::vector<DocId>* out) {
  DocId id;
  while (cursor->Next(&id)) out->push_back(id);
  DT_RETURN_NOT_OK(cursor->status());
  if (stats != nullptr) {
    stats->docs_returned += static_cast<int64_t>(out->size());
  }
  return Status::OK();
}

std::vector<std::string> SplitOrderPaths(const std::string& order_by) {
  std::vector<std::string> paths;
  size_t at = 0;
  while (at <= order_by.size()) {
    size_t comma = order_by.find(',', at);
    if (comma == std::string::npos) comma = order_by.size();
    if (comma > at) paths.push_back(order_by.substr(at, comma - at));
    at = comma + 1;
  }
  return paths;
}

// ---- checkpoint helpers ------------------------------------------------

DocValue MakeCheckpoint(const char* tag, std::vector<DocValue> fields) {
  DocValue out = DocValue::Array();
  out.Push(DocValue::Str(tag));
  for (DocValue& f : fields) out.Push(std::move(f));
  return out;
}

bool CheckpointHasTag(const DocValue& ckpt, const char* tag) {
  if (!ckpt.is_array() || ckpt.array_items().empty()) return false;
  const DocValue& head = ckpt.array_items().front();
  return head.is_string() && head.string_value() == tag;
}

const DocValue* CheckpointField(const DocValue& ckpt, size_t i) {
  if (!ckpt.is_array() || ckpt.array_items().size() <= i + 1) return nullptr;
  return &ckpt.array_items()[i + 1];
}

// ---- IxScanCursor ------------------------------------------------------

namespace {

/// First `n` components of `key` as their own key.
CompositeKey TruncateKey(const CompositeKey& key, size_t n) {
  n = std::min(n, key.width());
  std::vector<IndexKey> parts(key.parts().begin(),
                              key.parts().begin() + static_cast<long>(n));
  return CompositeKey(std::move(parts));
}

/// The (order key, id) comparison every ordering operator shares —
/// order keys are composite (one component per `order_by` path);
/// `descending` flips the key comparison only — ties stay ascending by
/// id, the deterministic contract the differential harness pins.
struct OrderBetter {
  bool descending;
  bool operator()(const std::pair<CompositeKey, DocId>& a,
                  const std::pair<CompositeKey, DocId>& b) const {
    if (a.first < b.first) return !descending;
    if (b.first < a.first) return descending;
    return a.second < b.second;
  }
};

/// The document's composite order key: one component per order path,
/// missing fields and non-indexable values as the null key.
CompositeKey OrderKeyOf(const DocValue* doc,
                        const std::vector<std::string>& paths) {
  std::vector<IndexKey> parts;
  parts.reserve(paths.size());
  for (const std::string& path : paths) {
    const DocValue* v = doc == nullptr ? nullptr : doc->FindPath(path);
    parts.push_back(v == nullptr ? IndexKey() : IndexKey::FromValue(*v));
  }
  return CompositeKey(std::move(parts));
}

}  // namespace

IxScanCursor::IxScanCursor(CollectionView view,
                           storage::SecondaryIndex::Scan scan,
                           size_t run_prefix_len, ExecStats* stats)
    : view_(std::move(view)),
      scan_(scan),
      run_prefix_len_(run_prefix_len),
      stats_(stats) {}

IxScanCursor::IxScanCursor(CollectionView view,
                           storage::SecondaryIndex::Scan scan,
                           size_t run_prefix_len, ExecStats* stats,
                           const CompositeKey& resume_prefix,
                           DocId resume_id)
    : view_(std::move(view)),
      scan_(scan),
      run_prefix_len_(run_prefix_len),
      stats_(stats),
      run_prefix_key_(resume_prefix),
      emitted_(true),
      last_id_(resume_id) {
  scan_.SeekAfter(resume_prefix, resume_id);
}

bool IxScanCursor::FillRun() {
  run_.clear();
  run_at_ = 0;
  const CompositeKey* key;
  DocId id;
  if (!pending_valid_) {
    if (!scan_.Next(&key, &id)) return false;
    if (stats_ != nullptr) ++stats_->index_entries_examined;
    pending_key_ = *key;
    pending_id_ = id;
  }
  CompositeKey run_key = std::move(pending_key_);
  run_.push_back(pending_id_);
  pending_valid_ = false;
  while (scan_.Next(&key, &id)) {
    if (stats_ != nullptr) ++stats_->index_entries_examined;
    if (!run_key.PrefixEquals(*key, run_prefix_len_)) {
      // First entry of the next run: park it for the next fill.
      pending_key_ = *key;
      pending_id_ = id;
      pending_valid_ = true;
      break;
    }
    run_.push_back(id);
  }
  run_prefix_key_ = TruncateKey(run_key, run_prefix_len_);
  // Ids inside a run tie on every component that orders the output, so
  // the contract says ascending id.
  std::sort(run_.begin(), run_.end());
  return true;
}

bool IxScanCursor::Next(DocId* id) {
  while (run_at_ >= run_.size()) {
    if (!FillRun()) return false;
  }
  *id = run_[run_at_++];
  emitted_ = true;
  last_id_ = *id;
  return true;
}

DocValue IxScanCursor::SaveCheckpoint() const {
  if (!emitted_) {
    return MakeCheckpoint("IX", {DocValue::Null(), DocValue::Int(0)});
  }
  DocValue prefix = DocValue::Array();
  for (const IndexKey& part : run_prefix_key_.parts()) {
    prefix.Push(part.ToDocValue());
  }
  return MakeCheckpoint(
      "IX", {std::move(prefix), DocValue::Int(static_cast<int64_t>(last_id_))});
}

// ---- CollScanCursor ----------------------------------------------------

CollScanCursor::CollScanCursor(const CollectionView& view, PredicatePtr pred,
                               ExecStats* stats, DocId after_id)
    : docs_(view.ScanDocs()),
      pred_(std::move(pred)),
      stats_(stats),
      last_id_(after_id) {
  if (after_id > 0) docs_.SeekAfter(after_id);
}

bool CollScanCursor::Next(DocId* id) {
  const DocValue* doc;
  while (docs_.Next(id, &doc)) {
    if (stats_ != nullptr) ++stats_->docs_examined;
    if (pred_ == nullptr || pred_->Matches(*doc)) {
      last_id_ = *id;
      return true;
    }
  }
  return false;
}

DocValue CollScanCursor::SaveCheckpoint() const {
  return MakeCheckpoint("CS",
                        {DocValue::Int(static_cast<int64_t>(last_id_))});
}

Result<CursorPtr> CollScanCursor::Parallel(const CollectionView& view,
                                           const PredicatePtr& pred,
                                           int num_threads, ThreadPool* pool,
                                           ExecStats* stats, DocId after_id) {
  // The chunked loop needs random access; stage (id, doc) pointers —
  // they point into the view's immutable version, which the caller
  // keeps alive across this call.
  std::vector<std::pair<DocId, const DocValue*>> docs;
  docs.reserve(static_cast<size_t>(view.count()));
  view.ForEach([&](DocId id, const DocValue& doc) {
    if (id > after_id) docs.emplace_back(id, &doc);
  });
  if (stats != nullptr) {
    stats->docs_examined += static_cast<int64_t>(docs.size());
  }
  std::unique_ptr<ThreadPool> transient;
  if (pool == nullptr) {
    transient = std::make_unique<ThreadPool>(ResolveNumThreads(num_threads));
    pool = transient.get();
  }
  const size_t num_chunks = static_cast<size_t>(pool->num_threads()) * 4;
  std::vector<std::vector<DocId>> parts(num_chunks);
  DT_RETURN_NOT_OK(pool->ParallelForChunks(
      0, docs.size(), num_chunks,
      [&](size_t chunk, size_t begin, size_t end) {
        std::vector<DocId>& part = parts[chunk];
        for (size_t i = begin; i < end; ++i) {
          if (pred == nullptr || pred->Matches(*docs[i].second)) {
            part.push_back(docs[i].first);
          }
        }
        return Status::OK();
      }));
  std::vector<DocId> ids;
  // In-order concatenation keeps the output byte-identical to the
  // serial scan for every thread count.
  for (const auto& part : parts) {
    ids.insert(ids.end(), part.begin(), part.end());
  }
  // Tagged "CS" so serial and parallel executions mint interchangeable
  // resume positions.
  return CursorPtr(
      std::make_unique<ReplayCursor>(std::move(ids), "CS", after_id));
}

// ---- FilterCursor ------------------------------------------------------

FilterCursor::FilterCursor(CollectionView view, CursorPtr child,
                           PredicatePtr pred, ExecStats* stats)
    : view_(std::move(view)),
      child_(std::move(child)),
      pred_(std::move(pred)),
      stats_(stats) {}

bool FilterCursor::Next(DocId* id) {
  while (child_->Next(id)) {
    const DocValue* doc = view_.Get(*id);
    if (doc == nullptr) continue;  // not live in this version: no match
    if (stats_ != nullptr) ++stats_->docs_examined;
    if (pred_ == nullptr || pred_->Matches(*doc)) return true;
  }
  return false;
}

// ---- UnionCursor -------------------------------------------------------

UnionCursor::UnionCursor(std::vector<CursorPtr> children, DocId after_id)
    : children_(std::move(children)),
      heads_(children_.size(), 0),
      head_valid_(children_.size(), false),
      emitted_(after_id > 0),
      last_id_(after_id) {}

void UnionCursor::Refill(size_t c) {
  DocId id;
  // Children emit strictly ascending ids, so one pull suffices past
  // the priming phase; on resume the watermark drop loops.
  while (children_[c]->Next(&id)) {
    if (emitted_ && id <= last_id_) continue;  // consumed before resume
    heads_[c] = id;
    head_valid_[c] = true;
    return;
  }
  head_valid_[c] = false;
  if (!children_[c]->status().ok()) failed_ = true;
}

bool UnionCursor::Next(DocId* id) {
  if (!primed_) {
    primed_ = true;
    for (size_t c = 0; c < children_.size(); ++c) Refill(c);
  }
  while (!failed_) {
    size_t best = children_.size();
    for (size_t c = 0; c < children_.size(); ++c) {
      if (!head_valid_[c]) continue;
      if (best == children_.size() || heads_[c] < heads_[best]) best = c;
    }
    if (best == children_.size()) return false;  // all dry
    DocId v = heads_[best];
    Refill(best);
    if (emitted_ && v == last_id_) continue;  // duplicate across branches
    emitted_ = true;
    last_id_ = v;
    *id = v;
    return true;
  }
  return false;
}

Status UnionCursor::status() const {
  for (const CursorPtr& child : children_) {
    DT_RETURN_NOT_OK(child->status());
  }
  return Status::OK();
}

DocValue UnionCursor::SaveCheckpoint() const {
  return MakeCheckpoint("U", {DocValue::Int(static_cast<int64_t>(last_id_))});
}

// ---- MergeUnionCursor --------------------------------------------------

MergeUnionCursor::MergeUnionCursor(std::vector<MergeBranch> branches,
                                   bool descending)
    : branches_(std::move(branches)),
      heads_(branches_.size()),
      descending_(descending) {}

MergeUnionCursor::MergeUnionCursor(std::vector<MergeBranch> branches,
                                   bool descending, CompositeKey resume_key,
                                   DocId resume_id)
    : branches_(std::move(branches)),
      heads_(branches_.size()),
      descending_(descending),
      emitted_(true),
      last_key_(std::move(resume_key)),
      last_id_(resume_id) {}

void MergeUnionCursor::Refill(size_t b) {
  DocId id;
  if (branches_[b].cursor->Next(&id)) {
    std::vector<IndexKey> parts;
    parts.reserve(branches_[b].order_components.size());
    for (size_t component : branches_[b].order_components) {
      parts.push_back(branches_[b].scan->RunKeyPart(component));
    }
    heads_[b].key = CompositeKey(std::move(parts));
    heads_[b].id = id;
    heads_[b].valid = true;
  } else {
    heads_[b].valid = false;
    if (!branches_[b].cursor->status().ok()) failed_ = true;
  }
}

bool MergeUnionCursor::Next(DocId* id) {
  if (!primed_) {
    primed_ = true;
    for (size_t b = 0; b < branches_.size(); ++b) Refill(b);
  }
  const OrderBetter better{descending_};
  while (!failed_) {
    size_t best = branches_.size();
    for (size_t b = 0; b < branches_.size(); ++b) {
      if (!heads_[b].valid) continue;
      if (best == branches_.size() ||
          better({heads_[b].key, heads_[b].id},
                 {heads_[best].key, heads_[best].id})) {
        best = b;
      }
    }
    if (best == branches_.size()) return false;  // all branches dry
    Head head = heads_[best];
    Refill(best);
    // Equal ids across branches carry equal keys (the key is a
    // function of the document), so duplicates surface back to back.
    if (emitted_ && head.id == last_id_ && head.key == last_key_) continue;
    emitted_ = true;
    last_key_ = head.key;
    last_id_ = head.id;
    *id = head.id;
    return true;
  }
  return false;
}

Status MergeUnionCursor::status() const {
  for (const MergeBranch& b : branches_) {
    DT_RETURN_NOT_OK(b.cursor->status());
  }
  return Status::OK();
}

DocValue MergeUnionCursor::SaveCheckpoint() const {
  // One component per order path (the shape the resume path rebuilds).
  DocValue key = DocValue::Array();
  for (const IndexKey& part : last_key_.parts()) {
    key.Push(part.ToDocValue());
  }
  return MakeCheckpoint(
      "MU", {DocValue::Bool(emitted_), std::move(key),
             DocValue::Int(static_cast<int64_t>(last_id_))});
}

// ---- SortCursor --------------------------------------------------------

SortCursor::SortCursor(CollectionView view, CursorPtr child,
                       std::string order_by, bool descending,
                       ExecStats* stats, int64_t skip)
    : view_(std::move(view)),
      child_(std::move(child)),
      order_paths_(SplitOrderPaths(order_by)),
      descending_(descending),
      stats_(stats),
      skip_(skip) {}

void SortCursor::Materialize() {
  std::vector<std::pair<CompositeKey, DocId>> keyed;
  DocId id;
  while (child_->Next(&id)) {
    if (order_paths_.empty()) {
      ids_.push_back(id);
      continue;
    }
    if (stats_ != nullptr) ++stats_->docs_examined;
    keyed.emplace_back(OrderKeyOf(view_.Get(id), order_paths_), id);
  }
  if (order_paths_.empty()) {
    std::sort(ids_.begin(), ids_.end());
    return;
  }
  std::sort(keyed.begin(), keyed.end(), OrderBetter{descending_});
  ids_.reserve(keyed.size());
  for (auto& [key, kid] : keyed) ids_.push_back(kid);
}

bool SortCursor::Next(DocId* id) {
  if (!sorted_) {
    sorted_ = true;
    Materialize();
    if (!child_->status().ok()) return false;
    at_ = std::min(static_cast<size_t>(skip_), ids_.size());
  }
  if (at_ >= ids_.size()) return false;
  *id = ids_[at_++];
  return true;
}

DocValue SortCursor::SaveCheckpoint() const {
  // The count of emitted ids: the sort's total order is deterministic,
  // so re-materializing and skipping reproduces the stream exactly.
  const int64_t emitted = sorted_ ? static_cast<int64_t>(at_) : skip_;
  return MakeCheckpoint("SORT", {DocValue::Int(emitted)});
}

// ---- TopKCursor --------------------------------------------------------

TopKCursor::TopKCursor(CollectionView view, CursorPtr child,
                       std::string order_by, bool descending, int64_t k,
                       ExecStats* stats, int64_t skip)
    : view_(std::move(view)),
      child_(std::move(child)),
      order_paths_(SplitOrderPaths(order_by)),
      descending_(descending),
      k_(k),
      stats_(stats),
      skip_(skip) {}

void TopKCursor::Materialize() {
  BoundedTopK<std::pair<CompositeKey, DocId>, OrderBetter> top(
      k_, OrderBetter{descending_});
  DocId id;
  while (child_->Next(&id)) {
    if (stats_ != nullptr) ++stats_->docs_examined;
    top.Offer({OrderKeyOf(view_.Get(id), order_paths_), id});
  }
  std::vector<std::pair<CompositeKey, DocId>> best = top.TakeSorted();
  ids_.reserve(best.size());
  for (auto& [key, kid] : best) ids_.push_back(kid);
}

bool TopKCursor::Next(DocId* id) {
  if (!selected_) {
    selected_ = true;
    Materialize();
    if (!child_->status().ok()) return false;
    at_ = std::min(static_cast<size_t>(skip_), ids_.size());
  }
  if (at_ >= ids_.size()) return false;
  *id = ids_[at_++];
  return true;
}

DocValue TopKCursor::SaveCheckpoint() const {
  const int64_t emitted = selected_ ? static_cast<int64_t>(at_) : skip_;
  return MakeCheckpoint("TOPK", {DocValue::Int(emitted)});
}

}  // namespace dt::query
