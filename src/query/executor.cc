#include "query/executor.h"

#include <utility>

#include "common/thread_pool.h"

namespace dt::query {

using storage::Collection;
using storage::CompositeKey;
using storage::DocId;
using storage::DocValue;
using storage::IndexKey;

Status DrainCursor(Cursor* cursor, ExecStats* stats,
                   std::vector<DocId>* out) {
  DocId id;
  while (cursor->Next(&id)) out->push_back(id);
  DT_RETURN_NOT_OK(cursor->status());
  if (stats != nullptr) {
    stats->docs_returned += static_cast<int64_t>(out->size());
  }
  return Status::OK();
}

// ---- IxScanCursor ------------------------------------------------------

namespace {

/// Equality on the first `n` key components (clamped to the key width).
bool SamePrefix(const CompositeKey& a, const CompositeKey& b, size_t n) {
  n = std::min({n, a.width(), b.width()});
  for (size_t i = 0; i < n; ++i) {
    if (!(a.part(i) == b.part(i))) return false;
  }
  return true;
}

/// The (order key, id) comparison every ordering operator shares:
/// `descending` flips the key comparison only — ties stay ascending by
/// id, the deterministic contract the differential harness pins.
struct OrderBetter {
  bool descending;
  bool operator()(const std::pair<IndexKey, DocId>& a,
                  const std::pair<IndexKey, DocId>& b) const {
    if (a.first < b.first) return !descending;
    if (b.first < a.first) return descending;
    return a.second < b.second;
  }
};

IndexKey OrderKeyOf(const DocValue* doc, const std::string& path) {
  if (doc == nullptr) return IndexKey();
  const DocValue* v = doc->FindPath(path);
  return v == nullptr ? IndexKey() : IndexKey::FromValue(*v);
}

}  // namespace

IxScanCursor::IxScanCursor(storage::SecondaryIndex::Scan scan,
                           size_t run_prefix_len, ExecStats* stats)
    : scan_(scan), run_prefix_len_(run_prefix_len), stats_(stats) {}

bool IxScanCursor::FillRun() {
  run_.clear();
  run_at_ = 0;
  const CompositeKey* key;
  DocId id;
  if (!pending_valid_) {
    if (!scan_.Next(&key, &id)) return false;
    if (stats_ != nullptr) ++stats_->index_entries_examined;
    pending_key_ = *key;
    pending_id_ = id;
  }
  CompositeKey run_key = std::move(pending_key_);
  run_.push_back(pending_id_);
  pending_valid_ = false;
  while (scan_.Next(&key, &id)) {
    if (stats_ != nullptr) ++stats_->index_entries_examined;
    if (!SamePrefix(run_key, *key, run_prefix_len_)) {
      // First entry of the next run: park it for the next fill.
      pending_key_ = *key;
      pending_id_ = id;
      pending_valid_ = true;
      break;
    }
    run_.push_back(id);
  }
  // Ids inside a run tie on every component that orders the output, so
  // the contract says ascending id.
  std::sort(run_.begin(), run_.end());
  return true;
}

bool IxScanCursor::Next(DocId* id) {
  while (run_at_ >= run_.size()) {
    if (!FillRun()) return false;
  }
  *id = run_[run_at_++];
  return true;
}

// ---- CollScanCursor ----------------------------------------------------

CollScanCursor::CollScanCursor(const Collection& coll, PredicatePtr pred,
                               ExecStats* stats)
    : docs_(coll.ScanDocs()), pred_(std::move(pred)), stats_(stats) {}

bool CollScanCursor::Next(DocId* id) {
  const DocValue* doc;
  while (docs_.Next(id, &doc)) {
    if (stats_ != nullptr) ++stats_->docs_examined;
    if (pred_ == nullptr || pred_->Matches(*doc)) return true;
  }
  return false;
}

Result<CursorPtr> CollScanCursor::Parallel(const Collection& coll,
                                           const PredicatePtr& pred,
                                           int num_threads, ThreadPool* pool,
                                           ExecStats* stats) {
  // The chunked loop needs random access; stage (id, doc) pointers.
  std::vector<std::pair<DocId, const DocValue*>> docs;
  docs.reserve(static_cast<size_t>(coll.count()));
  coll.ForEach([&](DocId id, const DocValue& doc) {
    docs.emplace_back(id, &doc);
  });
  if (stats != nullptr) {
    stats->docs_examined += static_cast<int64_t>(docs.size());
  }
  std::unique_ptr<ThreadPool> transient;
  if (pool == nullptr) {
    transient = std::make_unique<ThreadPool>(ResolveNumThreads(num_threads));
    pool = transient.get();
  }
  const size_t num_chunks = static_cast<size_t>(pool->num_threads()) * 4;
  std::vector<std::vector<DocId>> parts(num_chunks);
  DT_RETURN_NOT_OK(pool->ParallelForChunks(
      0, docs.size(), num_chunks,
      [&](size_t chunk, size_t begin, size_t end) {
        std::vector<DocId>& part = parts[chunk];
        for (size_t i = begin; i < end; ++i) {
          if (pred == nullptr || pred->Matches(*docs[i].second)) {
            part.push_back(docs[i].first);
          }
        }
        return Status::OK();
      }));
  std::vector<DocId> ids;
  // In-order concatenation keeps the output byte-identical to the
  // serial scan for every thread count.
  for (const auto& part : parts) {
    ids.insert(ids.end(), part.begin(), part.end());
  }
  return CursorPtr(std::make_unique<VectorCursor>(std::move(ids)));
}

// ---- FilterCursor ------------------------------------------------------

FilterCursor::FilterCursor(const Collection& coll, CursorPtr child,
                           PredicatePtr pred, ExecStats* stats)
    : coll_(coll),
      child_(std::move(child)),
      pred_(std::move(pred)),
      stats_(stats) {}

bool FilterCursor::Next(DocId* id) {
  while (child_->Next(id)) {
    const DocValue* doc = coll_.Get(*id);
    if (doc == nullptr) continue;  // concurrently removed: not a match
    if (stats_ != nullptr) ++stats_->docs_examined;
    if (pred_ == nullptr || pred_->Matches(*doc)) return true;
  }
  return false;
}

// ---- UnionCursor -------------------------------------------------------

bool UnionCursor::Next(DocId* id) {
  if (!merged_) {
    merged_ = true;
    for (const CursorPtr& child : children_) {
      DocId cid;
      while (child->Next(&cid)) ids_.push_back(cid);
      if (!child->status().ok()) return false;
    }
    std::sort(ids_.begin(), ids_.end());
    ids_.erase(std::unique(ids_.begin(), ids_.end()), ids_.end());
  }
  if (at_ >= ids_.size()) return false;
  *id = ids_[at_++];
  return true;
}

Status UnionCursor::status() const {
  for (const CursorPtr& child : children_) {
    DT_RETURN_NOT_OK(child->status());
  }
  return Status::OK();
}

// ---- SortCursor --------------------------------------------------------

SortCursor::SortCursor(const Collection& coll, CursorPtr child,
                       std::string order_by, bool descending,
                       ExecStats* stats)
    : coll_(coll),
      child_(std::move(child)),
      order_by_(std::move(order_by)),
      descending_(descending),
      stats_(stats) {}

void SortCursor::Materialize() {
  std::vector<std::pair<IndexKey, DocId>> keyed;
  DocId id;
  while (child_->Next(&id)) {
    if (order_by_.empty()) {
      ids_.push_back(id);
      continue;
    }
    if (stats_ != nullptr) ++stats_->docs_examined;
    keyed.emplace_back(OrderKeyOf(coll_.Get(id), order_by_), id);
  }
  if (order_by_.empty()) {
    std::sort(ids_.begin(), ids_.end());
    return;
  }
  std::sort(keyed.begin(), keyed.end(), OrderBetter{descending_});
  ids_.reserve(keyed.size());
  for (const auto& [key, kid] : keyed) ids_.push_back(kid);
}

bool SortCursor::Next(DocId* id) {
  if (!sorted_) {
    sorted_ = true;
    Materialize();
    if (!child_->status().ok()) return false;
  }
  if (at_ >= ids_.size()) return false;
  *id = ids_[at_++];
  return true;
}

// ---- TopKCursor --------------------------------------------------------

TopKCursor::TopKCursor(const Collection& coll, CursorPtr child,
                       std::string order_by, bool descending, int64_t k,
                       ExecStats* stats)
    : coll_(coll),
      child_(std::move(child)),
      order_by_(std::move(order_by)),
      descending_(descending),
      k_(k),
      stats_(stats) {}

void TopKCursor::Materialize() {
  BoundedTopK<std::pair<IndexKey, DocId>, OrderBetter> top(
      k_, OrderBetter{descending_});
  DocId id;
  while (child_->Next(&id)) {
    if (stats_ != nullptr) ++stats_->docs_examined;
    top.Offer({OrderKeyOf(coll_.Get(id), order_by_), id});
  }
  std::vector<std::pair<IndexKey, DocId>> best = top.TakeSorted();
  ids_.reserve(best.size());
  for (const auto& [key, kid] : best) ids_.push_back(kid);
}

bool TopKCursor::Next(DocId* id) {
  if (!selected_) {
    selected_ = true;
    Materialize();
    if (!child_->status().ok()) return false;
  }
  if (at_ >= ids_.size()) return false;
  *id = ids_[at_++];
  return true;
}

}  // namespace dt::query
