#include "query/request.h"

namespace dt::query {

using storage::DocValue;

const char* QueryOpName(QueryOp op) {
  switch (op) {
    case QueryOp::kFind:
      return "find";
    case QueryOp::kFindPage:
      return "find_page";
    case QueryOp::kExplain:
      return "explain";
    case QueryOp::kCount:
      return "count";
    case QueryOp::kTopK:
      return "top_k";
    case QueryOp::kTopDiscussed:
      return "top_discussed";
    case QueryOp::kIngest:
      return "ingest";
  }
  return "?";
}

Result<QueryOp> QueryOpFromName(const std::string& name) {
  for (QueryOp op :
       {QueryOp::kFind, QueryOp::kFindPage, QueryOp::kExplain, QueryOp::kCount,
        QueryOp::kTopK, QueryOp::kTopDiscussed, QueryOp::kIngest}) {
    if (name == QueryOpName(op)) return op;
  }
  return Status::InvalidArgument("unknown query op: " + name);
}

namespace {

// ---- strict typed field readers ----------------------------------------
// Absent fields keep the caller's default; present-but-mistyped fields
// are errors, so a remote typo fails loudly instead of silently running
// a different query.

Status ReadStr(const DocValue& obj, const char* key, std::string* dst) {
  const DocValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_string()) {
    return Status::InvalidArgument(std::string(key) + " must be a string");
  }
  *dst = v->string_value();
  return Status::OK();
}

Status ReadInt(const DocValue& obj, const char* key, int64_t* dst) {
  const DocValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_int()) {
    return Status::InvalidArgument(std::string(key) + " must be an int");
  }
  *dst = v->int_value();
  return Status::OK();
}

Status ReadBool(const DocValue& obj, const char* key, bool* dst) {
  const DocValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_bool()) {
    return Status::InvalidArgument(std::string(key) + " must be a bool");
  }
  *dst = v->bool_value();
  return Status::OK();
}

}  // namespace

DocValue QueryRequest::ToDocValue() const {
  DocValue out = DocValue::Object();
  out.Add("op", DocValue::Str(QueryOpName(op)));
  out.Add("collection", DocValue::Str(collection));
  out.Add("pred",
          predicate != nullptr ? predicate->ToDocValue() : DocValue::Null());
  out.Add("limit", DocValue::Int(limit));
  out.Add("order_by", DocValue::Str(order_by));
  out.Add("order_desc", DocValue::Bool(order_desc));
  out.Add("page_size", DocValue::Int(page_size));
  out.Add("resume_token", DocValue::Str(resume_token));
  out.Add("use_indexes", DocValue::Bool(use_indexes));
  out.Add("num_threads", DocValue::Int(num_threads));
  out.Add("group_path", DocValue::Str(group_path));
  out.Add("k", DocValue::Int(k));
  out.Add("entity_type", DocValue::Str(entity_type));
  out.Add("award_winning_only", DocValue::Bool(award_winning_only));
  DocValue records = DocValue::Array();
  for (const dedup::DedupRecord& rec : ingest_records) {
    records.Push(dedup::DedupRecordToDoc(rec));
  }
  out.Add("ingest_records", std::move(records));
  return out;
}

Result<QueryRequest> QueryRequest::FromDocValue(const DocValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("QueryRequest wants an object");
  }
  QueryRequest out;
  const DocValue* op = v.Find("op");
  if (op == nullptr || !op->is_string()) {
    return Status::InvalidArgument("QueryRequest.op must be a string");
  }
  DT_ASSIGN_OR_RETURN(out.op, QueryOpFromName(op->string_value()));
  DT_RETURN_NOT_OK(ReadStr(v, "collection", &out.collection));
  const DocValue* pred = v.Find("pred");
  if (pred != nullptr && !pred->is_null()) {
    DT_ASSIGN_OR_RETURN(out.predicate, Predicate::FromDocValue(*pred));
  }
  DT_RETURN_NOT_OK(ReadInt(v, "limit", &out.limit));
  DT_RETURN_NOT_OK(ReadStr(v, "order_by", &out.order_by));
  DT_RETURN_NOT_OK(ReadBool(v, "order_desc", &out.order_desc));
  DT_RETURN_NOT_OK(ReadInt(v, "page_size", &out.page_size));
  DT_RETURN_NOT_OK(ReadStr(v, "resume_token", &out.resume_token));
  DT_RETURN_NOT_OK(ReadBool(v, "use_indexes", &out.use_indexes));
  DT_RETURN_NOT_OK(ReadInt(v, "num_threads", &out.num_threads));
  DT_RETURN_NOT_OK(ReadStr(v, "group_path", &out.group_path));
  DT_RETURN_NOT_OK(ReadInt(v, "k", &out.k));
  DT_RETURN_NOT_OK(ReadStr(v, "entity_type", &out.entity_type));
  DT_RETURN_NOT_OK(ReadBool(v, "award_winning_only", &out.award_winning_only));
  if (const DocValue* records = v.Find("ingest_records")) {
    if (!records->is_array()) {
      return Status::InvalidArgument("ingest_records must be an array");
    }
    out.ingest_records.reserve(records->array_items().size());
    for (const DocValue& rec : records->array_items()) {
      DT_ASSIGN_OR_RETURN(dedup::DedupRecord decoded,
                          dedup::DedupRecordFromDoc(rec));
      out.ingest_records.push_back(std::move(decoded));
    }
  }
  return out;
}

DocValue QueryResponse::ToDocValue() const {
  DocValue out = DocValue::Object();
  DocValue id_arr = DocValue::Array();
  for (storage::DocId id : ids) {
    id_arr.Push(DocValue::Int(static_cast<int64_t>(id)));
  }
  out.Add("ids", std::move(id_arr));
  out.Add("next_token", DocValue::Str(next_token));
  DocValue group_arr = DocValue::Array();
  for (const CountRow& row : groups) {
    DocValue g = DocValue::Object();
    g.Add("key", DocValue::Str(row.key));
    g.Add("count", DocValue::Int(row.count));
    group_arr.Push(std::move(g));
  }
  out.Add("groups", std::move(group_arr));
  out.Add("explain", DocValue::Str(explain));
  out.Add("plan", plan);
  out.Add("stats", stats.ToDocValue());
  out.Add("ingested", DocValue::Int(ingested));
  out.Add("ingest_upserted", DocValue::Int(ingest_clusters_upserted));
  out.Add("ingest_removed", DocValue::Int(ingest_clusters_removed));
  return out;
}

Result<QueryResponse> QueryResponse::FromDocValue(const DocValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("QueryResponse wants an object");
  }
  QueryResponse out;
  if (const DocValue* ids = v.Find("ids")) {
    if (!ids->is_array()) {
      return Status::InvalidArgument("QueryResponse.ids must be an array");
    }
    out.ids.reserve(ids->array_items().size());
    for (const DocValue& id : ids->array_items()) {
      if (!id.is_int() || id.int_value() < 0) {
        return Status::InvalidArgument("ids must be non-negative ints");
      }
      out.ids.push_back(static_cast<storage::DocId>(id.int_value()));
    }
  }
  DT_RETURN_NOT_OK(ReadStr(v, "next_token", &out.next_token));
  if (const DocValue* groups = v.Find("groups")) {
    if (!groups->is_array()) {
      return Status::InvalidArgument("QueryResponse.groups must be an array");
    }
    out.groups.reserve(groups->array_items().size());
    for (const DocValue& g : groups->array_items()) {
      CountRow row;
      if (!g.is_object()) {
        return Status::InvalidArgument("group rows must be objects");
      }
      DT_RETURN_NOT_OK(ReadStr(g, "key", &row.key));
      DT_RETURN_NOT_OK(ReadInt(g, "count", &row.count));
      out.groups.push_back(std::move(row));
    }
  }
  DT_RETURN_NOT_OK(ReadStr(v, "explain", &out.explain));
  if (const DocValue* plan = v.Find("plan")) out.plan = *plan;
  if (const DocValue* stats = v.Find("stats")) {
    DT_ASSIGN_OR_RETURN(out.stats, ExecStats::FromDocValue(*stats));
  }
  DT_RETURN_NOT_OK(ReadInt(v, "ingested", &out.ingested));
  DT_RETURN_NOT_OK(ReadInt(v, "ingest_upserted",
                           &out.ingest_clusters_upserted));
  DT_RETURN_NOT_OK(ReadInt(v, "ingest_removed",
                           &out.ingest_clusters_removed));
  return out;
}

}  // namespace dt::query
