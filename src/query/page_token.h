/// \file page_token.h
/// \brief Opaque page tokens for resumable query cursors.
///
/// A token seals three things: the **plan fingerprint** (predicate,
/// chosen index bounds, order, limit — hashed from the planner's
/// canonical rendering), the collection's **mutation epoch**, and the
/// operator tree's **checkpoint** (executor.h). `FindPage` re-plans on
/// resume and rejects the token with `kInvalidArgument` unless both
/// the fingerprint and the epoch still match — a resumed query can
/// therefore never silently skip or duplicate documents because an
/// index appeared, the predicate changed, or the collection mutated
/// between pages. The byte string is opaque to clients and sealed
/// with a checksum: any truncation or byte flip is detected and
/// rejected rather than decoded into a wrong position.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/docvalue.h"

namespace dt::query {

/// Seals (fingerprint, epoch, checkpoint) into an opaque token.
std::string EncodePageToken(uint64_t fingerprint, uint64_t epoch,
                            const storage::DocValue& checkpoint);

/// Opens a token produced by `EncodePageToken`. Returns
/// `kInvalidArgument` for malformed, truncated or tampered bytes; the
/// caller still has to verify fingerprint and epoch against the
/// freshly planned query.
Status DecodePageToken(std::string_view token, uint64_t* fingerprint,
                       uint64_t* epoch, storage::DocValue* checkpoint);

}  // namespace dt::query
