/// \file page_token.h
/// \brief Opaque page tokens for resumable query cursors.
///
/// A token seals four things: the **plan fingerprint** (predicate,
/// chosen index bounds, order, limit — hashed from the planner's
/// canonical rendering), the collection's **incarnation** (a random
/// lineage id minted when the collection is first created and carried
/// across snapshots), the **version id** of the immutable storage
/// version the page executed against, and the operator tree's
/// **checkpoint** (executor.h). `FindPage` re-plans on resume and
/// rejects the token with `kInvalidArgument` unless the fingerprint
/// and incarnation match and the version is still reachable — either
/// the currently published version or one the collection has retained
/// for resumption. A resumed query therefore never silently skips or
/// duplicates documents: it continues against the *exact* version it
/// started on, or fails cleanly once that version has been reclaimed.
/// The byte string is opaque to clients and sealed with a checksum:
/// any truncation or byte flip is detected and rejected rather than
/// decoded into a wrong position.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "storage/docvalue.h"

namespace dt::query {

/// Seals (fingerprint, incarnation, version_id, checkpoint) into an
/// opaque token.
std::string EncodePageToken(uint64_t fingerprint, uint64_t incarnation,
                            uint64_t version_id,
                            const storage::DocValue& checkpoint);

/// Opens a token produced by `EncodePageToken`. Returns
/// `kInvalidArgument` for malformed, truncated or tampered bytes; the
/// caller still has to verify fingerprint, incarnation and version
/// reachability against the freshly planned query.
Status DecodePageToken(std::string_view token, uint64_t* fingerprint,
                       uint64_t* incarnation, uint64_t* version_id,
                       storage::DocValue* checkpoint);

}  // namespace dt::query
