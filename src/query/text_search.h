/// \file text_search.h
/// \brief Keyword search over text fragments (how the §V user "queries
/// the WEBINSTANCE dataset" before knowing any entity names).
///
/// A classic in-memory inverted index: lower-cased word tokens map to
/// postings with term frequencies; queries are conjunctive keyword
/// sets ranked by TF-IDF with length normalization.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "storage/collection.h"

namespace dt::query {

/// \brief One search hit.
struct SearchHit {
  storage::DocId doc_id = 0;
  double score = 0;
};

/// \brief TF-IDF ranked inverted index over one string field of a
/// document collection.
class InvertedIndex {
 public:
  /// \param field_path the dotted path holding the indexed text
  ///        ("text" for dt.instance).
  explicit InvertedIndex(std::string field_path = "text")
      : field_path_(std::move(field_path)) {}

  /// Indexes (or re-indexes) one document's text. Postings stay
  /// sorted by doc id for any id order (appends take the O(1) tail
  /// path; out-of-order ids — entity upserts under streaming ingest —
  /// insert in position).
  void Add(storage::DocId id, std::string_view text);

  /// Removes one document's contribution, given the exact text it was
  /// added with (the entity-side append-delta path keeps the old text
  /// at hand when upserting). Unknown id/text pairs are a no-op.
  void Remove(storage::DocId id, std::string_view text);

  /// Builds the index over an entire collection (documents lacking the
  /// field are skipped). Returns the number of documents indexed.
  int64_t Build(const storage::Collection& coll);

  /// \brief Conjunctive keyword search: documents containing *all*
  /// query tokens, ranked by summed TF-IDF / sqrt(doc length), top `k`.
  std::vector<SearchHit> Search(std::string_view keywords, int k = 10) const;

  /// Documents containing the token (unranked, ascending id).
  std::vector<storage::DocId> Postings(std::string_view token) const;

  /// Number of documents containing the token (0 for unknown tokens).
  /// The planner's selectivity estimate for TextContains predicates.
  int64_t DocFrequency(std::string_view token) const;

  const std::string& field_path() const { return field_path_; }
  int64_t num_documents() const { return num_docs_; }
  int64_t num_terms() const { return static_cast<int64_t>(postings_.size()); }

 private:
  struct Posting {
    storage::DocId doc_id;
    int32_t term_frequency;
  };

  std::string field_path_;
  std::unordered_map<std::string, std::vector<Posting>> postings_;
  std::unordered_map<storage::DocId, int32_t> doc_length_;
  int64_t num_docs_ = 0;
};

}  // namespace dt::query
