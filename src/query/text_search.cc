#include "query/text_search.h"

#include <algorithm>
#include <cmath>

#include "common/strutil.h"

namespace dt::query {

void InvertedIndex::Add(storage::DocId id, std::string_view text) {
  std::vector<std::string> tokens = WordTokens(text);
  if (doc_length_.count(id) == 0) {
    ++num_docs_;
  }
  doc_length_[id] += static_cast<int32_t>(tokens.size());
  std::unordered_map<std::string, int32_t> tf;
  for (const auto& t : tokens) ++tf[t];
  for (const auto& [term, freq] : tf) {
    auto& plist = postings_[term];
    // The common case is append in ingest order (monotonic ids), which
    // the back-check keeps O(1); out-of-order ids (entity upserts
    // under streaming ingest) insert in position so postings stay
    // sorted. Re-adding the same doc merges frequencies.
    if (!plist.empty() && plist.back().doc_id < id) {
      plist.push_back({id, freq});
      continue;
    }
    auto it = std::lower_bound(
        plist.begin(), plist.end(), id,
        [](const Posting& p, storage::DocId want) { return p.doc_id < want; });
    if (it != plist.end() && it->doc_id == id) {
      it->term_frequency += freq;
    } else {
      plist.insert(it, {id, freq});
    }
  }
}

void InvertedIndex::Remove(storage::DocId id, std::string_view text) {
  std::vector<std::string> tokens = WordTokens(text);
  auto len_it = doc_length_.find(id);
  if (len_it == doc_length_.end()) return;
  std::unordered_map<std::string, int32_t> tf;
  for (const auto& t : tokens) ++tf[t];
  for (const auto& [term, freq] : tf) {
    auto pit = postings_.find(term);
    if (pit == postings_.end()) continue;
    auto& plist = pit->second;
    auto it = std::lower_bound(
        plist.begin(), plist.end(), id,
        [](const Posting& p, storage::DocId want) { return p.doc_id < want; });
    if (it == plist.end() || it->doc_id != id) continue;
    it->term_frequency -= freq;
    if (it->term_frequency <= 0) plist.erase(it);
    if (plist.empty()) postings_.erase(pit);
  }
  len_it->second -= static_cast<int32_t>(tokens.size());
  if (len_it->second <= 0) {
    doc_length_.erase(len_it);
    --num_docs_;
  }
}

int64_t InvertedIndex::Build(const storage::Collection& coll) {
  int64_t indexed = 0;
  coll.ForEach([&](storage::DocId id, const storage::DocValue& doc) {
    const storage::DocValue* field = doc.FindPath(field_path_);
    if (field == nullptr || !field->is_string()) return;
    Add(id, field->string_value());
    ++indexed;
  });
  return indexed;
}

int64_t InvertedIndex::DocFrequency(std::string_view token) const {
  auto it = postings_.find(ToLower(token));
  return it == postings_.end() ? 0 : static_cast<int64_t>(it->second.size());
}

std::vector<storage::DocId> InvertedIndex::Postings(
    std::string_view token) const {
  std::vector<storage::DocId> out;
  auto it = postings_.find(ToLower(token));
  if (it == postings_.end()) return out;
  out.reserve(it->second.size());
  for (const auto& p : it->second) out.push_back(p.doc_id);
  return out;
}

std::vector<SearchHit> InvertedIndex::Search(std::string_view keywords,
                                             int k) const {
  std::vector<std::string> terms = WordTokens(keywords);
  if (terms.empty() || num_docs_ == 0) return {};
  // Dedup query terms.
  std::sort(terms.begin(), terms.end());
  terms.erase(std::unique(terms.begin(), terms.end()), terms.end());

  // Conjunctive: start from the rarest term's postings and intersect.
  std::vector<const std::vector<Posting>*> lists;
  for (const auto& term : terms) {
    auto it = postings_.find(term);
    if (it == postings_.end()) return {};  // some term matches nothing
    lists.push_back(&it->second);
  }
  std::sort(lists.begin(), lists.end(),
            [](const std::vector<Posting>* a, const std::vector<Posting>* b) {
              return a->size() < b->size();
            });

  std::unordered_map<storage::DocId, double> scores;
  for (const auto& p : *lists[0]) scores.emplace(p.doc_id, 0.0);
  for (const auto* plist : lists) {
    double idf = std::log(
        (num_docs_ + 1.0) / (static_cast<double>(plist->size()) + 1.0)) + 1.0;
    std::unordered_map<storage::DocId, double> next;
    for (const auto& p : *plist) {
      auto it = scores.find(p.doc_id);
      if (it == scores.end()) continue;
      next.emplace(p.doc_id, it->second + p.term_frequency * idf);
    }
    scores.swap(next);
    if (scores.empty()) return {};
  }

  std::vector<SearchHit> hits;
  hits.reserve(scores.size());
  for (const auto& [id, score] : scores) {
    double len = std::max<int32_t>(doc_length_.at(id), 1);
    hits.push_back({id, score / std::sqrt(len)});
  }
  std::sort(hits.begin(), hits.end(), [](const SearchHit& a,
                                         const SearchHit& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.doc_id < b.doc_id;
  });
  if (static_cast<int>(hits.size()) > k) hits.resize(k);
  return hits;
}

}  // namespace dt::query
