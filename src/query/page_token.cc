#include "query/page_token.h"

#include <cstring>

#include "common/hash.h"
#include "common/thread_pool.h"
#include "storage/codec.h"

namespace dt::query {

using storage::DocValue;

namespace {

/// Version salt: folded into the seal so tokens from a prior or future
/// format revision fail the checksum instead of misparsing. "DTPT1"
/// tokens carried a (fingerprint, epoch, checkpoint) triple; "DTPT2"
/// carries the lineage quadruple below.
constexpr std::string_view kTokenSalt = "DTPT2";

uint64_t Seal(std::string_view payload) {
  return HashCombine(Fnv1a64(kTokenSalt), Fnv1a64(payload));
}

}  // namespace

std::string EncodePageToken(uint64_t fingerprint, uint64_t incarnation,
                            uint64_t version_id, const DocValue& checkpoint) {
  DocValue payload = DocValue::Array();
  payload.Push(DocValue::Int(static_cast<int64_t>(fingerprint)));
  payload.Push(DocValue::Int(static_cast<int64_t>(incarnation)));
  payload.Push(DocValue::Int(static_cast<int64_t>(version_id)));
  payload.Push(checkpoint);
  std::string bytes;
  // Encoding an in-memory value cannot fail (no IO, bounded depth).
  RethrowIfError(storage::EncodeDocValue(payload, &bytes));
  uint64_t seal = Seal(bytes);
  char tail[8];
  for (int i = 0; i < 8; ++i) {
    tail[i] = static_cast<char>((seal >> (8 * i)) & 0xff);
  }
  bytes.append(tail, 8);
  return bytes;
}

Status DecodePageToken(std::string_view token, uint64_t* fingerprint,
                       uint64_t* incarnation, uint64_t* version_id,
                       DocValue* checkpoint) {
  const Status invalid =
      Status::InvalidArgument("malformed resume token (truncated or tampered)");
  if (token.size() < 9) return invalid;
  std::string_view payload = token.substr(0, token.size() - 8);
  uint64_t seal = 0;
  for (int i = 0; i < 8; ++i) {
    seal |= static_cast<uint64_t>(
                static_cast<unsigned char>(token[payload.size() + i]))
            << (8 * i);
  }
  if (seal != Seal(payload)) return invalid;
  DocValue decoded;
  if (!storage::DecodeDocValue(payload, &decoded).ok()) return invalid;
  if (!decoded.is_array() || decoded.array_items().size() != 4) {
    return invalid;
  }
  const DocValue& fp = decoded.array_items()[0];
  const DocValue& inc = decoded.array_items()[1];
  const DocValue& vid = decoded.array_items()[2];
  if (!fp.is_int() || !inc.is_int() || !vid.is_int()) return invalid;
  *fingerprint = static_cast<uint64_t>(fp.int_value());
  *incarnation = static_cast<uint64_t>(inc.int_value());
  *version_id = static_cast<uint64_t>(vid.int_value());
  *checkpoint = decoded.array_items()[3];
  return Status::OK();
}

}  // namespace dt::query
