/// \file request.h
/// \brief The unified serializable query surface: one request/response
/// pair that every facade query entry point (`Find`, `FindPage`,
/// `Explain`, `CountByField`, `TopKByCount`, `TopDiscussed`) marshals
/// through.
///
/// `QueryRequest`/`QueryResponse` encode to/from `DocValue`, so the
/// wire protocol (src/server/) ships exactly what the in-process API
/// accepts: a request captured off the wire replays byte-identically
/// through `DataTamer::Execute`. Only the *serializable* execution
/// knobs ride here — process-local `FindOptions` members (the borrowed
/// thread pool, the text index pointer, the stats out-param) are
/// resolved by the executing facade, never marshalled.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "dedup/record.h"
#include "query/planner.h"
#include "query/predicate.h"
#include "query/query.h"
#include "storage/docvalue.h"

namespace dt::query {

/// Which query operation a request invokes.
enum class QueryOp : uint8_t {
  kFind = 0,          ///< matching ids (one-shot; pagination token dropped)
  kFindPage = 1,      ///< one resumable page: ids + continuation token
  kExplain = 2,       ///< render the plan without executing
  kCount = 3,         ///< group-by-count of `group_path` values
  kTopK = 4,          ///< first `k` groups by descending count
  kTopDiscussed = 5,  ///< the Table IV demo query over dt.entity
  kIngest = 6,        ///< streaming consolidation: ingest dedup records
};

/// Stable wire name of an op ("find", "find_page", ...).
const char* QueryOpName(QueryOp op);

/// Inverse of `QueryOpName`; kInvalidArgument on an unknown name.
Result<QueryOp> QueryOpFromName(const std::string& name);

/// \brief One serializable query: the op, its target collection, the
/// predicate tree and the execution knobs that travel over the wire.
///
/// Field relevance by op: `collection`+`predicate`+ordering/limit/
/// paging fields drive kFind/kFindPage/kExplain; `group_path` (+`k`)
/// drive kCount/kTopK; `entity_type`/`k`/`award_winning_only` drive
/// kTopDiscussed (which always targets the entity collection).
/// Irrelevant fields are ignored by `DataTamer::Execute`.
struct QueryRequest {
  QueryOp op = QueryOp::kFind;
  /// Store collection name ("instance", "entity", ...).
  std::string collection;
  /// Filter; null = match all (rejected for ops that require one
  /// exactly where the underlying entry point rejects it).
  PredicatePtr predicate;

  // ---- serializable FindOptions subset ----
  int64_t limit = -1;
  std::string order_by;
  bool order_desc = false;
  int64_t page_size = -1;
  /// Opaque continuation token from a prior kFindPage response.
  std::string resume_token;
  bool use_indexes = true;
  /// Scan parallelism request; the executing facade resolves it
  /// against its own pool exactly like the legacy entry points.
  int64_t num_threads = 1;

  // ---- aggregation ops ----
  /// Dotted path grouped by kCount/kTopK.
  std::string group_path;
  /// Result bound for kTopK/kTopDiscussed.
  int64_t k = 10;
  /// kTopDiscussed: entity type filter and the award restriction.
  std::string entity_type;
  bool award_winning_only = false;

  // ---- streaming ingest (kIngest) ----
  /// Records to absorb into the streaming consolidator. Executed only
  /// by `DataTamer::ExecuteMutable` (the const `Execute` rejects the
  /// op — reads never mutate).
  std::vector<dedup::DedupRecord> ingest_records;

  /// Canonical object encoding: every field, fixed order, so
  /// encode -> decode -> encode is byte-identical under the codec.
  storage::DocValue ToDocValue() const;

  /// Strict decode: kInvalidArgument on a non-object, an unknown op,
  /// or any mistyped field. Absent fields keep their defaults and
  /// unknown fields are ignored (forward compatibility).
  static Result<QueryRequest> FromDocValue(const storage::DocValue& v);
};

/// \brief The serializable result of `DataTamer::Execute`. Which
/// members are populated follows the op: `ids`(+`next_token`) for
/// kFind/kFindPage, `groups` for the aggregations, `explain`+`plan`
/// for kExplain. `stats` always reports what the execution touched
/// (kExplain, which plans without executing, reports only the
/// planning-side fields: `planning_ns`, `plan_entries_counted` and the
/// estimate provenance).
struct QueryResponse {
  std::vector<storage::DocId> ids;
  /// kFindPage: opaque continuation token, empty when exhausted.
  std::string next_token;
  /// kCount/kTopK/kTopDiscussed group rows.
  std::vector<CountRow> groups;
  /// kExplain: the human rendering (`RenderPlan` of `plan`, plus the
  /// resume decoration when a token was supplied).
  std::string explain;
  /// kExplain: the machine-readable plan (`QueryPlan::ToDocValue`);
  /// null for every other op.
  storage::DocValue plan;
  ExecStats stats;
  /// kIngest: records absorbed and the fused-entity docs the ingest
  /// upserted/removed through the normal mutation path.
  int64_t ingested = 0;
  int64_t ingest_clusters_upserted = 0;
  int64_t ingest_clusters_removed = 0;

  /// Canonical object encoding (fixed field order, see QueryRequest).
  storage::DocValue ToDocValue() const;

  /// Strict decode; kInvalidArgument on shape errors.
  static Result<QueryResponse> FromDocValue(const storage::DocValue& v);
};

}  // namespace dt::query
