/// \file executor.h
/// \brief Pull-based operator cursors — the execution half of the query
/// layer (the planner chooses the tree, these run it).
///
/// A plan executes as a tree of `Cursor`s, each pulling document ids
/// from its child on demand:
///
///   IxScanCursor    ordered (key, id) stream off a `SecondaryIndex`
///                   scan, run-buffered so ties come back in ascending
///                   id order.
///   CollScanCursor  full collection scan with the predicate applied
///                   inline (serial pull; the parallel form
///                   materializes once on the thread pool and replays).
///   FilterCursor    residual predicate re-check on fetched documents.
///   UnionCursor     deduplicated ascending-id merge of branch cursors.
///   SortCursor      materialize + sort by (order key, id).
///   LimitCursor     stop pulling after k ids.
///   TopKCursor      fused sort+limit: bounded k-element heap instead
///                   of sorting everything.
///
/// Pull composition is what makes sort/limit push-down work: a
/// `LimitCursor` over an order-covering `IxScanCursor` stops the index
/// walk after ~k entries instead of scanning, materializing and
/// sorting the whole result set. `ExecStats` counts what an execution
/// actually touched, which the push-down tests assert on.

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "storage/collection.h"

namespace dt {
class ThreadPool;
}

namespace dt::query {

/// Counters filled in during one `Find` execution — what the chosen
/// plan actually touched (the observable half of push-down: an indexed
/// order-by + limit-10 query examines ~10 index entries, not the
/// collection).
struct ExecStats {
  /// Index entries pulled from secondary-index scans.
  int64_t index_entries_examined = 0;
  /// Documents fetched (scan bodies, residual filters, sort-key
  /// extraction).
  int64_t docs_examined = 0;
  /// Ids the root cursor produced.
  int64_t docs_returned = 0;
};

/// \brief One operator of an executing plan: pulls document ids.
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// Pulls the next id; false at end of stream (or on error — check
  /// `status()` after exhaustion).
  virtual bool Next(storage::DocId* id) = 0;

  /// First error the cursor (or a child) hit; OK while healthy.
  virtual Status status() const { return Status::OK(); }
};

using CursorPtr = std::unique_ptr<Cursor>;

/// Drains `cursor` into `out`, propagating its terminal status and
/// counting returned ids into `stats` (may be null).
Status DrainCursor(Cursor* cursor, ExecStats* stats,
                   std::vector<storage::DocId>* out);

/// \brief Ordered secondary-index scan.
///
/// Emits ids in index-key order (or reversed), with *runs* — maximal
/// groups of consecutive entries equal on the first `run_prefix_len`
/// key components — internally sorted by ascending id. That yields the
/// two contracts the planner needs from one operator:
///
///   run_prefix_len == number of equality-bound components: the whole
///   scan is one run, so ids stream out globally ascending (the
///   unordered `Find` contract) with no separate sort node;
///
///   run_prefix_len == equality components + 1: runs group by the
///   order-by component, so ids stream out ordered by that component
///   with ties ascending — the push-down contract.
class IxScanCursor : public Cursor {
 public:
  IxScanCursor(storage::SecondaryIndex::Scan scan, size_t run_prefix_len,
               ExecStats* stats);

  bool Next(storage::DocId* id) override;

 private:
  /// Refills `run_` with the next run; false when the scan is dry.
  bool FillRun();

  storage::SecondaryIndex::Scan scan_;
  size_t run_prefix_len_;
  ExecStats* stats_;
  bool pending_valid_ = false;  // one-entry lookahead across run edges
  storage::CompositeKey pending_key_;
  storage::DocId pending_id_ = 0;
  std::vector<storage::DocId> run_;
  size_t run_at_ = 0;
};

/// \brief Full collection scan with the predicate applied inline.
///
/// The serial form pulls documents lazily (a downstream limit stops
/// the scan early); `Parallel` chunks the scan over a thread pool,
/// materializes the thread-count-independent result once and replays
/// it.
class CollScanCursor : public Cursor {
 public:
  /// Serial pull over `coll`; `pred` may be null (match everything).
  CollScanCursor(const storage::Collection& coll, PredicatePtr pred,
                 ExecStats* stats);

  /// Parallel scan: materializes matching ids on `pool` (or a
  /// transient pool of `num_threads` when `pool` is null) and returns
  /// a cursor replaying them. Output is identical to the serial form
  /// for every thread count.
  static Result<CursorPtr> Parallel(const storage::Collection& coll,
                                    const PredicatePtr& pred, int num_threads,
                                    ThreadPool* pool, ExecStats* stats);

  bool Next(storage::DocId* id) override;

 private:
  storage::Collection::DocCursor docs_;
  PredicatePtr pred_;
  ExecStats* stats_;
};

/// \brief Replays a pre-materialized id vector (parallel scans, text
/// postings intersections).
class VectorCursor : public Cursor {
 public:
  explicit VectorCursor(std::vector<storage::DocId> ids)
      : ids_(std::move(ids)) {}

  bool Next(storage::DocId* id) override {
    if (at_ >= ids_.size()) return false;
    *id = ids_[at_++];
    return true;
  }

 private:
  std::vector<storage::DocId> ids_;
  size_t at_ = 0;
};

/// \brief Residual filter: re-checks the full predicate on each
/// document the child produces.
class FilterCursor : public Cursor {
 public:
  FilterCursor(const storage::Collection& coll, CursorPtr child,
               PredicatePtr pred, ExecStats* stats);

  bool Next(storage::DocId* id) override;
  Status status() const override { return child_->status(); }

 private:
  const storage::Collection& coll_;
  CursorPtr child_;
  PredicatePtr pred_;
  ExecStats* stats_;
};

/// \brief Deduplicated ascending-id union of branch cursors
/// (materializes the branches on first pull).
class UnionCursor : public Cursor {
 public:
  explicit UnionCursor(std::vector<CursorPtr> children)
      : children_(std::move(children)) {}

  bool Next(storage::DocId* id) override;
  Status status() const override;

 private:
  std::vector<CursorPtr> children_;
  bool merged_ = false;
  std::vector<storage::DocId> ids_;
  size_t at_ = 0;
};

/// \brief Materialize-then-sort by (order key, id): the fallback when
/// no index covers the requested order. Missing fields sort as the
/// null key (first ascending); `descending` flips the key comparison
/// only — ties stay ascending by id.
class SortCursor : public Cursor {
 public:
  SortCursor(const storage::Collection& coll, CursorPtr child,
             std::string order_by, bool descending, ExecStats* stats);

  bool Next(storage::DocId* id) override;
  Status status() const override { return child_->status(); }

 private:
  void Materialize();

  const storage::Collection& coll_;
  CursorPtr child_;
  std::string order_by_;
  bool descending_;
  ExecStats* stats_;
  bool sorted_ = false;
  std::vector<storage::DocId> ids_;
  size_t at_ = 0;
};

/// \brief Stops pulling from the child after `limit` ids — and, pulled
/// lazily itself, stops the upstream scan with it.
class LimitCursor : public Cursor {
 public:
  LimitCursor(CursorPtr child, int64_t limit)
      : child_(std::move(child)), remaining_(limit) {}

  bool Next(storage::DocId* id) override {
    if (remaining_ <= 0) return false;
    if (!child_->Next(id)) {
      remaining_ = 0;
      return false;
    }
    --remaining_;
    return true;
  }
  Status status() const override { return child_->status(); }

 private:
  CursorPtr child_;
  int64_t remaining_;
};

/// \brief Bounded top-k selector: keeps the best `k` items under
/// `better` (a strict "comes before" ordering) in a k-element heap
/// whose front is the worst kept item — O(n log k) instead of sorting
/// everything. Shared by `TopKCursor` and the group-count aggregation
/// in query.cc.
template <typename T, typename Better>
class BoundedTopK {
 public:
  BoundedTopK(int64_t k, Better better) : k_(k), better_(better) {}

  void Offer(T item) {
    if (k_ <= 0) return;
    if (static_cast<int64_t>(heap_.size()) < k_) {
      heap_.push_back(std::move(item));
      std::push_heap(heap_.begin(), heap_.end(), better_);
    } else if (better_(item, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), better_);
      heap_.back() = std::move(item);
      std::push_heap(heap_.begin(), heap_.end(), better_);
    }
  }

  /// The kept items, best first. Leaves the selector empty.
  std::vector<T> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), better_);
    return std::move(heap_);
  }

 private:
  int64_t k_;
  Better better_;
  std::vector<T> heap_;
};

/// \brief Fused sort+limit: a bounded k-element heap over the child's
/// (order key, id) stream, then the k best in order. Same ordering
/// contract as `SortCursor`.
class TopKCursor : public Cursor {
 public:
  TopKCursor(const storage::Collection& coll, CursorPtr child,
             std::string order_by, bool descending, int64_t k,
             ExecStats* stats);

  bool Next(storage::DocId* id) override;
  Status status() const override { return child_->status(); }

 private:
  void Materialize();

  const storage::Collection& coll_;
  CursorPtr child_;
  std::string order_by_;
  bool descending_;
  int64_t k_;
  ExecStats* stats_;
  bool selected_ = false;
  std::vector<storage::DocId> ids_;
  size_t at_ = 0;
};

}  // namespace dt::query
