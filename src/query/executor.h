/// \file executor.h
/// \brief Pull-based operator cursors — the execution half of the query
/// layer (the planner chooses the tree, these run it).
///
/// A plan executes as a tree of `Cursor`s, each pulling document ids
/// from its child on demand:
///
///   IxScanCursor       ordered (key, id) stream off a `SecondaryIndex`
///                      scan, run-buffered so ties come back in
///                      ascending id order.
///   CollScanCursor     full collection scan with the predicate applied
///                      inline (serial pull; the parallel form
///                      materializes once on the thread pool and
///                      replays).
///   FilterCursor       residual predicate re-check on fetched docs.
///   UnionCursor        deduplicated ascending-id streaming merge of
///                      branch cursors.
///   MergeUnionCursor   ordered k-way merge of order-covering index
///                      branches: (order key, id-asc) heap order, so an
///                      `Or` + `order_by` executes SORT-free.
///   SortCursor         materialize + sort by (order key, id).
///   LimitCursor        stop pulling after k ids.
///   TopKCursor         fused sort+limit: bounded k-element heap
///                      instead of sorting everything.
///
/// Pull composition is what makes sort/limit push-down work: a
/// `LimitCursor` over an order-covering `IxScanCursor` stops the index
/// walk after ~limit entries instead of scanning, materializing and
/// sorting the whole result set. `ExecStats` counts what an execution
/// actually touched, which the push-down tests assert on.
///
/// Every operator is **checkpointable**: `SaveCheckpoint()` captures
/// the position strictly after the last id the operator produced as a
/// small tagged `DocValue`, and each cursor offers a resume
/// construction path that reopens at a saved position (streaming
/// operators seek — `SecondaryIndex::Scan::SeekAfter`,
/// `DocCursor::SeekAfter`, id watermarks; blocking operators
/// re-materialize and skip). The planner serializes the checkpoint
/// tree into the opaque page token behind `FindPage`.
///
/// Every cursor that touches storage holds the `CollectionView` it
/// reads through by value: the view pins an immutable storage version,
/// so a cursor tree stays valid — and yields one consistent snapshot —
/// no matter what writers do (or even if the `Collection` itself is
/// destroyed) while the tree is executing.

#pragma once

#include <algorithm>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "query/predicate.h"
#include "storage/collection.h"

namespace dt {
class ThreadPool;
}

namespace dt::query {

/// Counters filled in during one `Find` execution — what the chosen
/// plan actually touched (the observable half of push-down: an indexed
/// order-by + limit-10 query examines ~10 index entries, not the
/// collection; resuming page 2 examines ~page_size entries, not the
/// consumed offset).
struct ExecStats {
  /// Index entries pulled from secondary-index scans.
  int64_t index_entries_examined = 0;
  /// Documents fetched (scan bodies, residual filters, sort-key
  /// extraction).
  int64_t docs_examined = 0;
  /// Ids the root cursor produced.
  int64_t docs_returned = 0;
  /// Wall time `PlanFind` spent choosing the plan. With incremental
  /// index statistics this is O(1) in hit count — the planner walks at
  /// most `SecondaryIndex::kExactCountThreshold + 1` entries per
  /// candidate, never O(hits).
  int64_t planning_ns = 0;
  /// Index entries the planner's bounded exact-count walks examined
  /// across every candidate it costed (the observable half of O(1)
  /// planning: bounded by candidates * (threshold + 1), independent of
  /// hit count).
  int64_t plan_entries_counted = 0;
  /// The chosen plan's driver cardinality estimate. Compare against
  /// `docs_returned` (for unlimited queries) for the
  /// estimate-vs-actual error the plan-quality harness bounds.
  int64_t estimated_rows = 0;
  /// 1 when every cardinality in the chosen plan came from an exact
  /// bounded count, 0 when a histogram/sketch estimate was involved
  /// (`est=~N (hist)` in Explain).
  int64_t estimate_exact = 1;

  /// Structured form for the wire (`QueryResponse`): a flat object of
  /// the counters. `FromDocValue(ToDocValue())` round-trips.
  storage::DocValue ToDocValue() const;
  /// Rejects anything but an object of int counters (kInvalidArgument).
  static Result<ExecStats> FromDocValue(const storage::DocValue& v);
};

/// Splits a comma-separated `order_by` into its component paths
/// ("type,name" -> {"type", "name"}). Field paths cannot contain ','
/// (`Collection::CreateIndex` rejects it), so the separator is
/// unambiguous; empty segments are dropped. Empty input -> empty.
std::vector<std::string> SplitOrderPaths(const std::string& order_by);

/// \brief One operator of an executing plan: pulls document ids.
class Cursor {
 public:
  virtual ~Cursor() = default;

  /// Pulls the next id; false at end of stream (or on error — check
  /// `status()` after exhaustion).
  virtual bool Next(storage::DocId* id) = 0;

  /// First error the cursor (or a child) hit; OK while healthy.
  virtual Status status() const { return Status::OK(); }

  /// \brief This operator's resume position as a tagged `DocValue`
  /// array: reopening at it continues the stream strictly after the
  /// last id `Next` returned, byte-identically to never having
  /// stopped. Valid only against the same plan over the same storage
  /// version (the page token layer enforces both: tokens pin the
  /// version they were minted against).
  virtual storage::DocValue SaveCheckpoint() const = 0;
};

using CursorPtr = std::unique_ptr<Cursor>;

/// Drains `cursor` into `out`, propagating its terminal status and
/// counting returned ids into `stats` (may be null).
Status DrainCursor(Cursor* cursor, ExecStats* stats,
                   std::vector<storage::DocId>* out);

// ---- checkpoint helpers (shared by executor.cc and planner.cc) ----

/// Builds a tagged checkpoint array: [tag, fields...].
storage::DocValue MakeCheckpoint(const char* tag,
                                 std::vector<storage::DocValue> fields);

/// True when `ckpt` is an array whose first element is the string
/// `tag`.
bool CheckpointHasTag(const storage::DocValue& ckpt, const char* tag);

/// Field `i` (0 = the element after the tag), or nullptr.
const storage::DocValue* CheckpointField(const storage::DocValue& ckpt,
                                         size_t i);

/// \brief Ordered secondary-index scan.
///
/// Emits ids in index-key order (or reversed), with *runs* — maximal
/// groups of consecutive entries equal on the first `run_prefix_len`
/// key components — internally sorted by ascending id. That yields the
/// two contracts the planner needs from one operator:
///
///   run_prefix_len == number of equality-bound components: the whole
///   scan is one run, so ids stream out globally ascending (the
///   unordered `Find` contract) with no separate sort node;
///
///   run_prefix_len == equality components + 1: runs group by the
///   order-by component, so ids stream out ordered by that component
///   with ties ascending — the push-down contract.
///
/// Checkpoint: the current run's key prefix plus the last emitted id.
/// Resume seeks the underlying scan to the start of that run
/// (`Scan::SeekAfter`), which suppresses the already-consumed ids, so
/// a resumed scan re-examines at most one run — O(page) for ordered
/// queries — instead of re-walking the consumed offset.
class IxScanCursor : public Cursor {
 public:
  /// `view` must be the view owning the index behind `scan` (the
  /// cursor keeps it pinned for its own lifetime).
  IxScanCursor(storage::CollectionView view,
               storage::SecondaryIndex::Scan scan, size_t run_prefix_len,
               ExecStats* stats);

  /// Resume form: reopens strictly after the position a prior
  /// `SaveCheckpoint` captured (`resume_prefix` must have
  /// `run_prefix_len` components drawn from this scan's bounds).
  IxScanCursor(storage::CollectionView view,
               storage::SecondaryIndex::Scan scan, size_t run_prefix_len,
               ExecStats* stats, const storage::CompositeKey& resume_prefix,
               storage::DocId resume_id);

  bool Next(storage::DocId* id) override;
  storage::DocValue SaveCheckpoint() const override;

  /// Key component `component` of the run that produced the last
  /// emitted id (`component < run_prefix_len`). How `MergeUnionCursor`
  /// reads branch order keys without fetching documents.
  const storage::IndexKey& RunKeyPart(size_t component) const {
    return run_prefix_key_.part(component);
  }

 private:
  /// Refills `run_` with the next run; false when the scan is dry.
  bool FillRun();

  storage::CollectionView view_;  // keeps the scanned index alive
  storage::SecondaryIndex::Scan scan_;
  size_t run_prefix_len_;
  ExecStats* stats_;
  bool pending_valid_ = false;  // one-entry lookahead across run edges
  storage::CompositeKey pending_key_;
  storage::DocId pending_id_ = 0;
  std::vector<storage::DocId> run_;
  size_t run_at_ = 0;
  // Checkpoint state: the current run's `run_prefix_len_`-component
  // key prefix and the last id handed out.
  storage::CompositeKey run_prefix_key_;
  bool emitted_ = false;
  storage::DocId last_id_ = 0;
};

/// \brief Full collection scan with the predicate applied inline.
///
/// The serial form pulls documents lazily (a downstream limit stops
/// the scan early); `Parallel` chunks the scan over a thread pool,
/// materializes the thread-count-independent result once and replays
/// it. Both checkpoint by last-emitted-id watermark (tag "CS"), so a
/// token minted by either form resumes under the other with identical
/// output: the serial resume seeks `DocCursor::SeekAfter(id)`, the
/// parallel resume drops ids at or below the watermark while
/// materializing.
class CollScanCursor : public Cursor {
 public:
  /// Serial pull over `view`'s version; `pred` may be null (match
  /// everything). `after_id` > 0 resumes strictly after that document
  /// id.
  CollScanCursor(const storage::CollectionView& view, PredicatePtr pred,
                 ExecStats* stats, storage::DocId after_id = 0);

  /// Parallel scan: materializes matching ids > `after_id` on `pool`
  /// (or a transient pool of `num_threads` when `pool` is null) and
  /// returns a cursor replaying them. Output is identical to the
  /// serial form for every thread count.
  static Result<CursorPtr> Parallel(const storage::CollectionView& view,
                                    const PredicatePtr& pred, int num_threads,
                                    ThreadPool* pool, ExecStats* stats,
                                    storage::DocId after_id = 0);

  bool Next(storage::DocId* id) override;
  storage::DocValue SaveCheckpoint() const override;

 private:
  storage::DocCursor docs_;  // co-owns the scanned version
  PredicatePtr pred_;
  ExecStats* stats_;
  storage::DocId last_id_ = 0;
};

/// \brief Replays a pre-materialized ascending unique id vector
/// (parallel scans, text postings intersections), checkpointing by id
/// watermark under the caller's tag ("CS" for parallel collection
/// scans so serial and parallel tokens interchange, "V" for text).
class ReplayCursor : public Cursor {
 public:
  ReplayCursor(std::vector<storage::DocId> ids, const char* tag,
               storage::DocId after_id = 0)
      : ids_(std::move(ids)), tag_(tag), last_id_(after_id) {
    at_ = static_cast<size_t>(
        std::upper_bound(ids_.begin(), ids_.end(), after_id) - ids_.begin());
  }

  bool Next(storage::DocId* id) override {
    if (at_ >= ids_.size()) return false;
    *id = ids_[at_++];
    last_id_ = *id;
    return true;
  }

  storage::DocValue SaveCheckpoint() const override {
    return MakeCheckpoint(
        tag_, {storage::DocValue::Int(static_cast<int64_t>(last_id_))});
  }

 private:
  std::vector<storage::DocId> ids_;
  size_t at_ = 0;
  const char* tag_;
  storage::DocId last_id_;
};

/// \brief Residual filter: re-checks the full predicate on each
/// document the child produces. Positionally transparent — the
/// checkpoint is the child's.
class FilterCursor : public Cursor {
 public:
  FilterCursor(storage::CollectionView view, CursorPtr child,
               PredicatePtr pred, ExecStats* stats);

  bool Next(storage::DocId* id) override;
  Status status() const override { return child_->status(); }
  storage::DocValue SaveCheckpoint() const override {
    return child_->SaveCheckpoint();
  }

 private:
  storage::CollectionView view_;
  CursorPtr child_;
  PredicatePtr pred_;
  ExecStats* stats_;
};

/// \brief Deduplicated ascending-id streaming merge of branch cursors.
///
/// Every unordered access cursor emits strictly ascending ids, so the
/// union is a k-way min-merge with adjacent-duplicate suppression — no
/// materialization, and a downstream limit stops the branch scans
/// early. Checkpoint: the last emitted id; resume reopens the branches
/// and discards ids at or below the watermark.
class UnionCursor : public Cursor {
 public:
  explicit UnionCursor(std::vector<CursorPtr> children,
                       storage::DocId after_id = 0);

  bool Next(storage::DocId* id) override;
  Status status() const override;
  storage::DocValue SaveCheckpoint() const override;

 private:
  /// Loads the next id > the watermark from child `c` into `heads_`.
  void Refill(size_t c);

  std::vector<CursorPtr> children_;
  std::vector<storage::DocId> heads_;
  std::vector<bool> head_valid_;
  bool primed_ = false;
  bool failed_ = false;
  bool emitted_ = false;
  storage::DocId last_id_ = 0;
};

/// \brief One branch of an ordered union merge: the (possibly
/// filter-wrapped) branch cursor plus the `IxScanCursor` it pulls
/// from, which supplies each emitted id's order key straight off the
/// index run — no document fetch.
struct MergeBranch {
  CursorPtr cursor;
  /// Borrowed from inside `cursor`; outlives the merge with it.
  IxScanCursor* scan = nullptr;
  /// Index key component holding each order-by path's value for this
  /// branch, in order-path order (one entry per `order_by` component —
  /// multi-field orders read a composite merge key off the run).
  std::vector<size_t> order_components;
};

/// \brief Ordered k-way merge of order-covering index branches — the
/// SORT-free execution of `Or` + `order_by`: each branch streams in
/// (order key, id-asc) order, the merge emits the minimum (maximum
/// when descending) across branches with ascending-id tie break and
/// duplicate suppression. Checkpoint: the last emitted (order key,
/// id); resume positions each branch strictly after it (the planner
/// derives per-branch seek targets), so page 2 of an ordered `Or`
/// costs O(page), not O(offset).
class MergeUnionCursor : public Cursor {
 public:
  MergeUnionCursor(std::vector<MergeBranch> branches, bool descending);

  /// Resume form: branches must already be positioned strictly after
  /// (`resume_key`, `resume_id`) in merge order. `resume_key` carries
  /// one component per order-by path.
  MergeUnionCursor(std::vector<MergeBranch> branches, bool descending,
                   storage::CompositeKey resume_key,
                   storage::DocId resume_id);

  bool Next(storage::DocId* id) override;
  Status status() const override;
  storage::DocValue SaveCheckpoint() const override;

 private:
  struct Head {
    storage::CompositeKey key;
    storage::DocId id = 0;
    bool valid = false;
  };

  void Refill(size_t b);

  std::vector<MergeBranch> branches_;
  std::vector<Head> heads_;
  bool descending_;
  bool primed_ = false;
  bool failed_ = false;
  bool emitted_ = false;
  storage::CompositeKey last_key_;
  storage::DocId last_id_ = 0;
};

/// \brief Materialize-then-sort by (order key, id): the fallback when
/// no index covers the requested order. Missing fields sort as the
/// null key (first ascending); `descending` flips the key comparison
/// only — ties stay ascending by id. Checkpoint: the count of emitted
/// ids; resume re-materializes (blocking operators have no cheaper
/// position) and skips — the deterministic total order makes the
/// stitched pages byte-identical.
class SortCursor : public Cursor {
 public:
  SortCursor(storage::CollectionView view, CursorPtr child,
             std::string order_by, bool descending, ExecStats* stats,
             int64_t skip = 0);

  bool Next(storage::DocId* id) override;
  Status status() const override { return child_->status(); }
  storage::DocValue SaveCheckpoint() const override;

 private:
  void Materialize();

  storage::CollectionView view_;
  CursorPtr child_;
  std::vector<std::string> order_paths_;  // comma-split `order_by`
  bool descending_;
  ExecStats* stats_;
  int64_t skip_;
  bool sorted_ = false;
  std::vector<storage::DocId> ids_;
  size_t at_ = 0;
};

/// \brief Stops pulling from the child after `limit` ids — and, pulled
/// lazily itself, stops the upstream scan with it. Checkpoint: the
/// remaining budget plus the child's checkpoint, so a limit spans
/// pages.
class LimitCursor : public Cursor {
 public:
  LimitCursor(CursorPtr child, int64_t limit)
      : child_(std::move(child)), remaining_(limit) {}

  bool Next(storage::DocId* id) override {
    if (remaining_ <= 0) return false;
    if (!child_->Next(id)) {
      remaining_ = 0;
      return false;
    }
    --remaining_;
    return true;
  }
  Status status() const override { return child_->status(); }
  storage::DocValue SaveCheckpoint() const override {
    return MakeCheckpoint("LIM", {storage::DocValue::Int(remaining_),
                                  child_->SaveCheckpoint()});
  }

 private:
  CursorPtr child_;
  int64_t remaining_;
};

/// \brief Bounded top-k selector: keeps the best `k` items under
/// `better` (a strict "comes before" ordering) in a k-element heap
/// whose front is the worst kept item — O(n log k) instead of sorting
/// everything. Shared by `TopKCursor` and the group-count aggregation
/// in query.cc.
template <typename T, typename Better>
class BoundedTopK {
 public:
  BoundedTopK(int64_t k, Better better) : k_(k), better_(better) {}

  void Offer(T item) {
    if (k_ <= 0) return;
    if (static_cast<int64_t>(heap_.size()) < k_) {
      heap_.push_back(std::move(item));
      std::push_heap(heap_.begin(), heap_.end(), better_);
    } else if (better_(item, heap_.front())) {
      std::pop_heap(heap_.begin(), heap_.end(), better_);
      heap_.back() = std::move(item);
      std::push_heap(heap_.begin(), heap_.end(), better_);
    }
  }

  /// The kept items, best first. Leaves the selector empty.
  std::vector<T> TakeSorted() {
    std::sort(heap_.begin(), heap_.end(), better_);
    return std::move(heap_);
  }

 private:
  int64_t k_;
  Better better_;
  std::vector<T> heap_;
};

/// \brief Fused sort+limit: a bounded k-element heap over the child's
/// (order key, id) stream, then the k best in order. Same ordering and
/// checkpoint contract as `SortCursor` (resume re-selects and skips).
class TopKCursor : public Cursor {
 public:
  TopKCursor(storage::CollectionView view, CursorPtr child,
             std::string order_by, bool descending, int64_t k,
             ExecStats* stats, int64_t skip = 0);

  bool Next(storage::DocId* id) override;
  Status status() const override { return child_->status(); }
  storage::DocValue SaveCheckpoint() const override;

 private:
  void Materialize();

  storage::CollectionView view_;
  CursorPtr child_;
  std::vector<std::string> order_paths_;  // comma-split `order_by`
  bool descending_;
  int64_t k_;
  ExecStats* stats_;
  int64_t skip_;
  bool selected_ = false;
  std::vector<storage::DocId> ids_;
  size_t at_ = 0;
};

}  // namespace dt::query
