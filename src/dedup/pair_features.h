/// \file pair_features.h
/// \brief Similarity features for a candidate record pair.
///
/// The features feed both the rule-based scorer (weighted blend) and
/// the ML classifier (sparse vector) so the ablation bench can compare
/// the two on identical evidence.

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "dedup/record.h"
#include "ml/features.h"

namespace dt::dedup {

/// \brief Dense pairwise similarity signals in [0,1].
struct PairSignals {
  double name_levenshtein = 0;
  double name_jaro_winkler = 0;
  double name_token_jaccard = 0;
  double name_qgram_jaccard = 0;
  double shared_field_agreement = 0;  ///< fraction of shared fields equal
  double shared_field_count = 0;      ///< min(#shared fields / 5, 1)
  double same_type = 0;

  /// Rule-based match score: weighted blend used when no trained
  /// classifier is available (the bootstrap phase).
  double RuleScore() const;
};

/// Computes all dense signals for a pair.
PairSignals ComputePairSignals(const DedupRecord& a, const DedupRecord& b);

/// \brief Computes signals for every candidate pair, on `pool` when
/// non-null (the scoring hot path of consolidation).
///
/// `out[k]` always corresponds to `pairs[k]` — each parallel chunk
/// writes its own index range, so the result is identical to the
/// serial run for any thread count.
Status ComputeAllPairSignals(const std::vector<DedupRecord>& records,
                             const std::vector<std::pair<size_t, size_t>>& pairs,
                             ThreadPool* pool, std::vector<PairSignals>* out);

/// \brief Converts dense signals to a sparse ML feature vector with
/// bucketized magnitudes (ids allocated in `dict`).
ml::FeatureVector PairSignalsToFeatures(const PairSignals& signals,
                                        ml::FeatureDictionary* dict,
                                        bool add_features);

}  // namespace dt::dedup
