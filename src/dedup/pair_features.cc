#include "dedup/pair_features.h"

#include <algorithm>

#include "common/strutil.h"

namespace dt::dedup {

double PairSignals::RuleScore() const {
  if (same_type == 0) return 0.0;
  double name_evidence =
      std::max({name_levenshtein, name_jaro_winkler * 0.95,
                name_token_jaccard, name_qgram_jaccard});
  // Records with no overlapping fields (e.g. a text-derived record vs a
  // structured one) can only be judged by name.
  if (shared_field_count == 0) return 0.95 * name_evidence;
  // Field agreement refines the name evidence rather than replacing it:
  // two records named identically but disagreeing on every shared field
  // should score below the match threshold.
  return 0.7 * name_evidence +
         0.2 * shared_field_agreement +
         0.1 * shared_field_count;
}

PairSignals ComputePairSignals(const DedupRecord& a, const DedupRecord& b) {
  PairSignals s;
  s.same_type = (a.entity_type == b.entity_type) ? 1.0 : 0.0;
  const std::string na = ToLower(a.DisplayName());
  const std::string nb = ToLower(b.DisplayName());
  s.name_levenshtein = LevenshteinSimilarity(na, nb);
  s.name_jaro_winkler = JaroWinklerSimilarity(na, nb);
  s.name_token_jaccard = JaccardSimilarity(WordTokens(na), WordTokens(nb));
  s.name_qgram_jaccard = QGramJaccard(na, nb, 2);

  int shared = 0, agree = 0;
  for (const auto& [k, va] : a.fields) {
    if (k == "name") continue;
    auto it = b.fields.find(k);
    if (it == b.fields.end()) continue;
    ++shared;
    if (ToLower(Trim(va)) == ToLower(Trim(it->second))) ++agree;
  }
  s.shared_field_agreement = shared == 0 ? 0.0
                                         : static_cast<double>(agree) / shared;
  s.shared_field_count = std::min(1.0, shared / 5.0);
  return s;
}

Status ComputeAllPairSignals(
    const std::vector<DedupRecord>& records,
    const std::vector<std::pair<size_t, size_t>>& pairs, ThreadPool* pool,
    std::vector<PairSignals>* out) {
  out->assign(pairs.size(), PairSignals{});
  auto compute = [&](size_t k) -> Status {
    const auto& [i, j] = pairs[k];
    if (i >= records.size() || j >= records.size()) {
      return Status::OutOfRange("candidate pair (" + std::to_string(i) + "," +
                                std::to_string(j) + ") exceeds " +
                                std::to_string(records.size()) + " records");
    }
    (*out)[k] = ComputePairSignals(records[i], records[j]);
    return Status::OK();
  };
  if (pool != nullptr) return pool->ParallelFor(0, pairs.size(), compute);
  for (size_t k = 0; k < pairs.size(); ++k) DT_RETURN_NOT_OK(compute(k));
  return Status::OK();
}

namespace {
// Bucketize a [0,1] signal into one-hot features at 0.1 resolution so
// linear models can learn non-linear response curves.
void EmitBuckets(const char* name, double v, ml::FeatureDictionary* dict,
                 bool add, ml::FeatureVector* out) {
  int bucket = static_cast<int>(std::min(0.999, std::max(0.0, v)) * 10);
  std::string feat = std::string(name) + ":" + std::to_string(bucket);
  int id = dict->IdOf(feat, add);
  if (id >= 0) (*out)[id] = 1.0;
  // Also a raw-magnitude feature for smooth response.
  int raw_id = dict->IdOf(std::string(name) + ":raw", add);
  if (raw_id >= 0) (*out)[raw_id] = v;
}
}  // namespace

ml::FeatureVector PairSignalsToFeatures(const PairSignals& s,
                                        ml::FeatureDictionary* dict,
                                        bool add_features) {
  ml::FeatureVector out;
  EmitBuckets("lev", s.name_levenshtein, dict, add_features, &out);
  EmitBuckets("jw", s.name_jaro_winkler, dict, add_features, &out);
  EmitBuckets("tokjac", s.name_token_jaccard, dict, add_features, &out);
  EmitBuckets("qgram", s.name_qgram_jaccard, dict, add_features, &out);
  EmitBuckets("agree", s.shared_field_agreement, dict, add_features, &out);
  EmitBuckets("nshared", s.shared_field_count, dict, add_features, &out);
  EmitBuckets("sametype", s.same_type, dict, add_features, &out);
  return out;
}

}  // namespace dt::dedup
