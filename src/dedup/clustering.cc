#include "dedup/clustering.h"

#include <algorithm>
#include <map>

namespace dt::dedup {

UnionFind::UnionFind(size_t n)
    : parent_(n), rank_(n, 0), num_sets_(n) {
  for (size_t i = 0; i < n; ++i) parent_[i] = i;
}

size_t UnionFind::Find(size_t x) {
  while (parent_[x] != x) {
    parent_[x] = parent_[parent_[x]];  // path halving
    x = parent_[x];
  }
  return x;
}

bool UnionFind::Union(size_t a, size_t b) {
  size_t ra = Find(a), rb = Find(b);
  if (ra == rb) return false;
  if (rank_[ra] < rank_[rb]) std::swap(ra, rb);
  parent_[rb] = ra;
  if (rank_[ra] == rank_[rb]) ++rank_[ra];
  --num_sets_;
  return true;
}

size_t UnionFind::Add() {
  parent_.push_back(parent_.size());
  rank_.push_back(0);
  ++num_sets_;
  return parent_.size() - 1;
}

std::vector<std::vector<size_t>> UnionFind::Groups() {
  std::map<size_t, std::vector<size_t>> by_root;
  for (size_t i = 0; i < parent_.size(); ++i) {
    by_root[Find(i)].push_back(i);
  }
  std::vector<std::vector<size_t>> out;
  out.reserve(by_root.size());
  // Map keys iterate ascending; each member list is built ascending, so
  // groups come out ordered by smallest member.
  std::map<size_t, std::vector<size_t>> by_min;
  for (auto& [root, members] : by_root) {
    size_t mn = members.front();
    by_min.emplace(mn, std::move(members));
  }
  for (auto& [_, members] : by_min) out.push_back(std::move(members));
  return out;
}

std::vector<std::vector<size_t>> ClusterPairs(
    size_t n, const std::vector<std::pair<size_t, size_t>>& matched_pairs) {
  UnionFind uf(n);
  for (const auto& [a, b] : matched_pairs) {
    if (a < n && b < n) uf.Union(a, b);
  }
  return uf.Groups();
}

}  // namespace dt::dedup
