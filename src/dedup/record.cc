#include "dedup/record.h"

namespace dt::dedup {

using storage::DocValue;

const std::string& DedupRecord::DisplayName() const {
  static const std::string kEmpty;
  auto it = fields.find("name");
  if (it != fields.end()) return it->second;
  if (!fields.empty()) return fields.begin()->second;
  return kEmpty;
}

namespace {

Status ReadStr(const DocValue& obj, const char* key, std::string* dst) {
  const DocValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_string()) {
    return Status::InvalidArgument(std::string(key) + " must be a string");
  }
  *dst = v->string_value();
  return Status::OK();
}

Status ReadInt(const DocValue& obj, const char* key, int64_t* dst) {
  const DocValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_int()) {
    return Status::InvalidArgument(std::string(key) + " must be an int");
  }
  *dst = v->int_value();
  return Status::OK();
}

Status ReadFields(const DocValue& obj, const char* key,
                  std::map<std::string, std::string>* dst) {
  const DocValue* v = obj.Find(key);
  if (v == nullptr) return Status::OK();
  if (!v->is_object()) {
    return Status::InvalidArgument(std::string(key) + " must be an object");
  }
  for (const auto& [field, value] : v->fields()) {
    if (!value.is_string()) {
      return Status::InvalidArgument(std::string(key) +
                                     " values must be strings");
    }
    (*dst)[field] = value.string_value();
  }
  return Status::OK();
}

}  // namespace

DocValue DedupRecordToDoc(const DedupRecord& record) {
  DocValue out = DocValue::Object();
  out.Add("rid", DocValue::Int(record.id));
  out.Add("entity_type", DocValue::Str(record.entity_type));
  DocValue fields = DocValue::Object();
  // std::map iterates in sorted key order: deterministic encoding.
  for (const auto& [field, value] : record.fields) {
    fields.Add(field, DocValue::Str(value));
  }
  out.Add("fields", std::move(fields));
  out.Add("source_id", DocValue::Str(record.source_id));
  out.Add("trust_priority", DocValue::Int(record.trust_priority));
  out.Add("ingest_seq", DocValue::Int(record.ingest_seq));
  return out;
}

Result<DedupRecord> DedupRecordFromDoc(const DocValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("DedupRecord wants an object");
  }
  DedupRecord out;
  DT_RETURN_NOT_OK(ReadInt(v, "rid", &out.id));
  DT_RETURN_NOT_OK(ReadStr(v, "entity_type", &out.entity_type));
  DT_RETURN_NOT_OK(ReadFields(v, "fields", &out.fields));
  DT_RETURN_NOT_OK(ReadStr(v, "source_id", &out.source_id));
  int64_t trust = out.trust_priority;
  DT_RETURN_NOT_OK(ReadInt(v, "trust_priority", &trust));
  out.trust_priority = static_cast<int>(trust);
  DT_RETURN_NOT_OK(ReadInt(v, "ingest_seq", &out.ingest_seq));
  return out;
}

DocValue CompositeEntityToDoc(const CompositeEntity& entity) {
  DocValue out = DocValue::Object();
  out.Add("cluster_id", DocValue::Int(entity.cluster_id));
  out.Add("entity_type", DocValue::Str(entity.entity_type));
  DocValue fields = DocValue::Object();
  for (const auto& [field, value] : entity.fields) {
    fields.Add(field, DocValue::Str(value));
  }
  out.Add("fields", std::move(fields));
  DocValue members = DocValue::Array();
  for (int64_t id : entity.member_record_ids) members.Push(DocValue::Int(id));
  out.Add("member_record_ids", std::move(members));
  DocValue sources = DocValue::Array();
  for (const std::string& s : entity.contributing_sources) {
    sources.Push(DocValue::Str(s));
  }
  out.Add("contributing_sources", std::move(sources));
  return out;
}

Result<CompositeEntity> CompositeEntityFromDoc(const DocValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("CompositeEntity wants an object");
  }
  CompositeEntity out;
  DT_RETURN_NOT_OK(ReadInt(v, "cluster_id", &out.cluster_id));
  DT_RETURN_NOT_OK(ReadStr(v, "entity_type", &out.entity_type));
  DT_RETURN_NOT_OK(ReadFields(v, "fields", &out.fields));
  if (const DocValue* members = v.Find("member_record_ids")) {
    if (!members->is_array()) {
      return Status::InvalidArgument("member_record_ids must be an array");
    }
    for (const DocValue& id : members->array_items()) {
      if (!id.is_int()) {
        return Status::InvalidArgument("member_record_ids must hold ints");
      }
      out.member_record_ids.push_back(id.int_value());
    }
  }
  if (const DocValue* sources = v.Find("contributing_sources")) {
    if (!sources->is_array()) {
      return Status::InvalidArgument("contributing_sources must be an array");
    }
    for (const DocValue& s : sources->array_items()) {
      if (!s.is_string()) {
        return Status::InvalidArgument("contributing_sources must hold "
                                       "strings");
      }
      out.contributing_sources.push_back(s.string_value());
    }
  }
  return out;
}

}  // namespace dt::dedup
