#include "dedup/record.h"

namespace dt::dedup {

const std::string& DedupRecord::DisplayName() const {
  static const std::string kEmpty;
  auto it = fields.find("name");
  if (it != fields.end()) return it->second;
  if (!fields.empty()) return fields.begin()->second;
  return kEmpty;
}

}  // namespace dt::dedup
