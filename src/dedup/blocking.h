/// \file blocking.h
/// \brief Candidate-pair generation for entity consolidation at scale.
///
/// Comparing all record pairs is quadratic — a non-starter at the
/// 173M-entity scale of Table II. Blocking buckets records by cheap
/// keys (name tokens, q-grams, type-scoped) and only pairs records
/// sharing a bucket. The scalability ablation bench measures the
/// pairs-considered reduction this buys.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/thread_pool.h"
#include "dedup/record.h"

namespace dt::dedup {

/// Blocking configuration.
struct BlockingOptions {
  /// Emit one key per lower-cased name token.
  bool token_keys = true;
  /// Emit keys for character q-grams of the name (catches typos that
  /// break token equality); 0 = off.
  int qgram_size = 0;
  /// Prefix key length on the normalized name; 0 = off.
  int prefix_len = 0;
  /// Blocks larger than this are skipped entirely (stop-word tokens
  /// like "the" would otherwise regenerate the quadratic blowup).
  int max_block_size = 256;
};

/// \brief Generates blocking keys for one record (type-scoped).
std::vector<std::string> BlockingKeys(const DedupRecord& record,
                                      const BlockingOptions& opts);

/// \brief Statistics of one candidate-generation run.
struct BlockingStats {
  int64_t num_records = 0;
  int64_t num_blocks = 0;
  int64_t oversize_blocks_skipped = 0;
  int64_t candidate_pairs = 0;
  /// candidate_pairs / all-pairs count (quality of the reduction).
  double reduction_ratio = 0;
};

/// \brief Produces deduplicated candidate pairs (i < j index pairs into
/// `records`) from shared blocking keys, sorted ascending.
///
/// When `pool` is non-null, key generation runs in parallel over the
/// records and pair generation shards by blocking key (hash-partitioned
/// so every key lands in exactly one shard), with per-shard results
/// merged in shard order. Output and stats are byte-identical to the
/// serial (`pool == nullptr`) run for any thread count.
std::vector<std::pair<size_t, size_t>> GenerateCandidatePairs(
    const std::vector<DedupRecord>& records, const BlockingOptions& opts,
    BlockingStats* stats = nullptr, ThreadPool* pool = nullptr);

/// \brief All pairs of same-type records (the no-blocking baseline the
/// ablation bench compares against).
std::vector<std::pair<size_t, size_t>> AllPairs(
    const std::vector<DedupRecord>& records);

}  // namespace dt::dedup
