#include "dedup/blocking.h"

#include <algorithm>
#include <set>

#include "common/strutil.h"

namespace dt::dedup {

std::vector<std::string> BlockingKeys(const DedupRecord& record,
                                      const BlockingOptions& opts) {
  std::vector<std::string> keys;
  const std::string& name = record.DisplayName();
  std::string norm = Join(WordTokens(name), " ");
  std::string type_prefix = record.entity_type + "|";
  if (opts.token_keys) {
    for (const auto& tok : WordTokens(name)) {
      keys.push_back(type_prefix + "t:" + tok);
    }
  }
  if (opts.qgram_size > 0) {
    for (const auto& g : QGrams(norm, opts.qgram_size)) {
      keys.push_back(type_prefix + "q:" + g);
    }
  }
  if (opts.prefix_len > 0 && !norm.empty()) {
    keys.push_back(type_prefix + "p:" +
                   norm.substr(0, static_cast<size_t>(opts.prefix_len)));
  }
  // Dedup keys (q-grams repeat).
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

std::vector<std::pair<size_t, size_t>> GenerateCandidatePairs(
    const std::vector<DedupRecord>& records, const BlockingOptions& opts,
    BlockingStats* stats) {
  std::unordered_map<std::string, std::vector<size_t>> blocks;
  for (size_t i = 0; i < records.size(); ++i) {
    for (const auto& key : BlockingKeys(records[i], opts)) {
      blocks[key].push_back(i);
    }
  }
  std::set<std::pair<size_t, size_t>> pairs;
  int64_t skipped = 0;
  for (const auto& [key, members] : blocks) {
    if (static_cast<int>(members.size()) > opts.max_block_size) {
      ++skipped;
      continue;
    }
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        size_t i = std::min(members[a], members[b]);
        size_t j = std::max(members[a], members[b]);
        if (i != j) pairs.insert({i, j});
      }
    }
  }
  std::vector<std::pair<size_t, size_t>> out(pairs.begin(), pairs.end());
  if (stats != nullptr) {
    stats->num_records = static_cast<int64_t>(records.size());
    stats->num_blocks = static_cast<int64_t>(blocks.size());
    stats->oversize_blocks_skipped = skipped;
    stats->candidate_pairs = static_cast<int64_t>(out.size());
    double all = static_cast<double>(records.size()) *
                 (static_cast<double>(records.size()) - 1) / 2.0;
    stats->reduction_ratio = all > 0 ? out.size() / all : 0.0;
  }
  return out;
}

std::vector<std::pair<size_t, size_t>> AllPairs(
    const std::vector<DedupRecord>& records) {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t i = 0; i < records.size(); ++i) {
    for (size_t j = i + 1; j < records.size(); ++j) {
      if (records[i].entity_type == records[j].entity_type) {
        out.emplace_back(i, j);
      }
    }
  }
  return out;
}

}  // namespace dt::dedup
