#include "dedup/blocking.h"

#include <algorithm>
#include <functional>
#include <unordered_map>

#include "common/strutil.h"

namespace dt::dedup {

std::vector<std::string> BlockingKeys(const DedupRecord& record,
                                      const BlockingOptions& opts) {
  std::vector<std::string> keys;
  const std::string& name = record.DisplayName();
  std::string norm = Join(WordTokens(name), " ");
  std::string type_prefix = record.entity_type + "|";
  if (opts.token_keys) {
    for (const auto& tok : WordTokens(name)) {
      keys.push_back(type_prefix + "t:" + tok);
    }
  }
  if (opts.qgram_size > 0) {
    for (const auto& g : QGrams(norm, opts.qgram_size)) {
      keys.push_back(type_prefix + "q:" + g);
    }
  }
  if (opts.prefix_len > 0 && !norm.empty()) {
    keys.push_back(type_prefix + "p:" +
                   norm.substr(0, static_cast<size_t>(opts.prefix_len)));
  }
  // Dedup keys (q-grams repeat).
  std::sort(keys.begin(), keys.end());
  keys.erase(std::unique(keys.begin(), keys.end()), keys.end());
  return keys;
}

namespace {

/// Pair output + stats of one blocking-key shard.
struct ShardResult {
  std::vector<std::pair<size_t, size_t>> pairs;  // sorted, deduped
  int64_t num_blocks = 0;
  int64_t oversize_skipped = 0;
};

/// Expands a block map into the sorted deduped pairs + stats of one
/// shard.
ShardResult ExpandBlocks(
    std::unordered_map<std::string, std::vector<size_t>> blocks,
    const BlockingOptions& opts) {
  ShardResult out;
  out.num_blocks = static_cast<int64_t>(blocks.size());
  for (const auto& [key, members] : blocks) {
    if (static_cast<int>(members.size()) > opts.max_block_size) {
      ++out.oversize_skipped;
      continue;
    }
    for (size_t a = 0; a < members.size(); ++a) {
      for (size_t b = a + 1; b < members.size(); ++b) {
        size_t i = std::min(members[a], members[b]);
        size_t j = std::max(members[a], members[b]);
        if (i != j) out.pairs.emplace_back(i, j);
      }
    }
  }
  std::sort(out.pairs.begin(), out.pairs.end());
  out.pairs.erase(std::unique(out.pairs.begin(), out.pairs.end()),
                  out.pairs.end());
  return out;
}

}  // namespace

std::vector<std::pair<size_t, size_t>> GenerateCandidatePairs(
    const std::vector<DedupRecord>& records, const BlockingOptions& opts,
    BlockingStats* stats, ThreadPool* pool) {
  const size_t num_shards =
      pool != nullptr ? static_cast<size_t>(pool->num_threads()) : 1;
  std::vector<ShardResult> shards(num_shards);
  if (num_shards > 1) {
    // Phase 1: per-record key generation (string-heavy, embarrassingly
    // parallel), bucketed by destination shard as keys are produced so
    // each key is hashed for routing exactly once and phase 2 touches
    // only its own shard's keys. Buckets land in chunk-indexed slots.
    // A body failure rethrows so partial key sets can't silently
    // shrink the output.
    const size_t num_chunks = num_shards * 4;
    // buckets[chunk][shard] -> (record index, key) routed there.
    std::vector<std::vector<std::vector<std::pair<size_t, std::string>>>>
        buckets(num_chunks);
    RethrowIfError(pool->ParallelForChunks(
        0, records.size(), num_chunks,
        [&](size_t chunk, size_t lo, size_t hi) {
          auto& local = buckets[chunk];
          local.resize(num_shards);
          std::hash<std::string> hasher;
          for (size_t i = lo; i < hi; ++i) {
            for (auto& key : BlockingKeys(records[i], opts)) {
              size_t shard = hasher(key) % num_shards;
              local[shard].emplace_back(i, std::move(key));
            }
          }
          return Status::OK();
        }));
    // Phase 2: per shard, assemble the block map from that shard's
    // buckets (chunk order keeps member lists ascending by record
    // index, matching the serial build) and expand pairs. Every key
    // lands in exactly one shard, so summed stats are
    // shard-count-invariant.
    RethrowIfError(pool->ParallelForChunks(
        0, num_shards, num_shards, [&](size_t shard, size_t, size_t) {
          std::unordered_map<std::string, std::vector<size_t>> blocks;
          for (auto& chunk_buckets : buckets) {
            if (shard >= chunk_buckets.size()) continue;  // empty chunk
            for (auto& [i, key] : chunk_buckets[shard]) {
              blocks[std::move(key)].push_back(i);
            }
          }
          shards[shard] = ExpandBlocks(std::move(blocks), opts);
          return Status::OK();
        }));
  } else {
    // Serial: stream keys straight into the block map, no per-record
    // key materialization.
    std::unordered_map<std::string, std::vector<size_t>> blocks;
    for (size_t i = 0; i < records.size(); ++i) {
      for (auto& key : BlockingKeys(records[i], opts)) {
        blocks[std::move(key)].push_back(i);
      }
    }
    shards[0] = ExpandBlocks(std::move(blocks), opts);
  }

  // Phase 3: deterministic merge. The same pair can surface from keys
  // in different shards, so dedup globally; the final sorted order is
  // independent of shard count and scheduling.
  std::vector<std::pair<size_t, size_t>> out;
  int64_t num_blocks = 0, skipped = 0;
  if (num_shards == 1) {
    out = std::move(shards[0].pairs);  // already sorted and deduped
    num_blocks = shards[0].num_blocks;
    skipped = shards[0].oversize_skipped;
  } else {
    size_t total = 0;
    for (const auto& s : shards) total += s.pairs.size();
    out.reserve(total);
    for (const auto& s : shards) {
      out.insert(out.end(), s.pairs.begin(), s.pairs.end());
      num_blocks += s.num_blocks;
      skipped += s.oversize_skipped;
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
  }

  if (stats != nullptr) {
    stats->num_records = static_cast<int64_t>(records.size());
    stats->num_blocks = num_blocks;
    stats->oversize_blocks_skipped = skipped;
    stats->candidate_pairs = static_cast<int64_t>(out.size());
    double all = static_cast<double>(records.size()) *
                 (static_cast<double>(records.size()) - 1) / 2.0;
    stats->reduction_ratio = all > 0 ? out.size() / all : 0.0;
  }
  return out;
}

std::vector<std::pair<size_t, size_t>> AllPairs(
    const std::vector<DedupRecord>& records) {
  std::vector<std::pair<size_t, size_t>> out;
  for (size_t i = 0; i < records.size(); ++i) {
    for (size_t j = i + 1; j < records.size(); ++j) {
      if (records[i].entity_type == records[j].entity_type) {
        out.emplace_back(i, j);
      }
    }
  }
  return out;
}

}  // namespace dt::dedup
