/// \file streaming.h
/// \brief Incremental (streaming) entity consolidation: absorb one
/// `DedupRecord` at a time at O(candidate-neighborhood) cost instead
/// of re-running the whole batch pipeline per arrival.
///
/// The consolidator keeps the blocking layer resident as a persistent
/// key -> member-list candidate map, scores each arriving record only
/// against the records it shares a live block with (through the exact
/// `ScoreCandidatePairs` path batch `Consolidate` uses), and folds the
/// resulting matches into a growable union-find. The headline
/// invariant, asserted by the parity differential suite:
///
///   after ANY interleaving of `Ingest` calls, `Entities()` is
///   byte-identical to a from-scratch `Consolidate` over the same
///   final corpus in arrival order.
///
/// The one subtlety is oversize-block retirement. Batch blocking skips
/// blocks larger than `max_block_size` entirely, so a block's pairs
/// must stop counting the moment it crosses the cap. Streaming handles
/// this by *retiring* the block permanently (member lists only ever
/// grow, so a dead block can never come back) and retracting every
/// previously matched pair whose only support was the dying block; a
/// retraction splits clusters, which is the rare slow path that
/// rebuilds the union-find from the surviving match set.
///
/// Cluster identity across ingests uses *stable keys* (the smallest
/// corpus index in a cluster) rather than the dense batch cluster ids,
/// which renumber on every merge; dense ids are assigned only when
/// `Entities()` materializes the full set, restoring batch order.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "dedup/consolidation.h"

namespace dt::dedup {

/// Running counters of one streaming consolidator.
struct StreamingStats {
  int64_t records_ingested = 0;
  /// Candidate pairs scored so far (including a `Seed` bulk load).
  int64_t pairs_scored = 0;
  /// Currently live matched pairs (retractions subtract).
  int64_t pairs_matched = 0;
  int64_t candidates_generated = 0;
  int64_t max_candidates_per_record = 0;
  int64_t live_blocks = 0;
  /// Blocks that crossed max_block_size and stopped supplying
  /// candidates (permanently, matching batch blocking's skip).
  int64_t retired_blocks = 0;
  /// Matches erased because their only supporting block died.
  int64_t retracted_matches = 0;
  /// Union-find rebuilds forced by retractions (the rare slow path).
  int64_t rebuilds = 0;
};

/// \brief Grow-only consolidation state with per-record ingest.
///
/// Not thread-safe; parallelism lives *inside* one call (candidate
/// scoring chunks on the supplied pool). Like the batch engine, the
/// output is byte-identical for every thread count.
class StreamingConsolidator {
 public:
  /// What one ingest changed, keyed by stable cluster keys.
  struct IngestDelta {
    /// Corpus index assigned to the ingested record.
    size_t record_index = 0;
    /// Cluster keys whose composite must be (re)materialized,
    /// ascending. Always contains the new record's cluster.
    std::vector<size_t> upserted;
    /// Cluster keys that no longer exist (absorbed by a merge or
    /// renamed by a split), ascending.
    std::vector<size_t> removed;
    int64_t pairs_scored = 0;
    int64_t pairs_matched = 0;
  };

  explicit StreamingConsolidator(ConsolidationOptions opts);

  /// \brief Ingests one record: updates the candidate map, scores the
  /// record against its blocking neighbors only, merges clusters (and
  /// retracts matches orphaned by a block retirement). `pool` wins
  /// over `options().pool` when non-null.
  Result<IngestDelta> Ingest(DedupRecord record, ThreadPool* pool = nullptr);

  /// \brief Bulk-loads `records` through the batch blocking + scoring
  /// pipeline. The resulting state is identical to ingesting them one
  /// at a time in order (block death is permanent and member lists
  /// grow monotonically, so the final-state criterion "total members >
  /// cap" coincides with the sequential one). Requires an empty
  /// consolidator; this is the recovery path that restores resident
  /// state from a persisted record log.
  Status Seed(std::vector<DedupRecord> records, ThreadPool* pool = nullptr);

  /// \brief Materializes the full entity set: clusters ordered by
  /// smallest member with dense cluster ids in that order —
  /// byte-identical to `Consolidate(records(), options())`.
  Result<std::vector<CompositeEntity>> Entities(
      ThreadPool* pool = nullptr) const;

  /// Composite entity of one cluster; `cluster_id` carries the stable
  /// key (not the dense batch id). Default-constructed result when the
  /// key does not name a current cluster.
  CompositeEntity EntityOf(size_t cluster_key) const;

  /// Sorted member corpus indexes of the cluster with `cluster_key`
  /// (empty when the key names no current cluster).
  std::vector<size_t> ClusterMembers(size_t cluster_key) const;

  /// All stable cluster keys, ascending.
  std::vector<size_t> ClusterKeys() const;

  const std::vector<DedupRecord>& records() const { return records_; }
  const ConsolidationOptions& options() const { return opts_; }
  const StreamingStats& stats() const { return stats_; }
  size_t num_clusters() const { return members_of_root_.size(); }

 private:
  struct Block {
    /// Ascending corpus indexes; cleared once dead.
    std::vector<size_t> members;
    /// Crossed max_block_size. Permanent: batch blocking would skip
    /// this block for every suffix corpus too.
    bool dead = false;
  };

  static uint64_t PairKey(size_t a, size_t b) {
    return (static_cast<uint64_t>(a) << 32) | static_cast<uint64_t>(b);
  }

  /// True when records `a` and `b` still co-occur in some live block
  /// (i.e. batch blocking over the current corpus would emit the
  /// pair).
  bool SharesLiveBlock(size_t a, size_t b) const;

  /// Fast-path union: merges the clusters of `a` and `b`, folding the
  /// sorted member lists together.
  void MergeClusterPair(size_t a, size_t b);

  /// Slow path after retractions: rebuilds the union-find and the
  /// member map from the surviving match set.
  void RebuildClusters();

  ConsolidationOptions opts_;
  std::vector<DedupRecord> records_;
  std::vector<std::vector<std::string>> keys_of_record_;
  std::unordered_map<std::string, Block> blocks_;
  /// Live matched pairs, keyed (a<<32)|b with a < b.
  std::unordered_set<uint64_t> matches_;
  /// Find is path-compressing (mutating); const accessors still answer
  /// pure queries, hence mutable.
  mutable UnionFind uf_{0};
  /// Current root -> sorted member corpus indexes. The cluster's
  /// stable key is the front of its member list.
  std::unordered_map<size_t, std::vector<size_t>> members_of_root_;
  StreamingStats stats_;
};

}  // namespace dt::dedup
