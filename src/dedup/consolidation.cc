#include "dedup/consolidation.h"

#include <algorithm>
#include <map>
#include <set>

namespace dt::dedup {

const char* MergePolicyName(MergePolicy p) {
  switch (p) {
    case MergePolicy::kSourcePriority:
      return "source-priority";
    case MergePolicy::kMajority:
      return "majority";
    case MergePolicy::kLongest:
      return "longest";
    case MergePolicy::kMostRecent:
      return "most-recent";
  }
  return "?";
}

CompositeEntity MergeCluster(const std::vector<DedupRecord>& records,
                             const std::vector<size_t>& member_indexes,
                             int64_t cluster_id, MergePolicy policy) {
  CompositeEntity out;
  out.cluster_id = cluster_id;
  if (!member_indexes.empty()) {
    out.entity_type = records[member_indexes[0]].entity_type;
  }
  std::set<std::string> sources;
  // field -> candidate (value, trust, seq) list
  std::map<std::string, std::vector<const DedupRecord*>> contributors;
  for (size_t idx : member_indexes) {
    const DedupRecord& r = records[idx];
    out.member_record_ids.push_back(r.id);
    sources.insert(r.source_id);
    for (const auto& [field, value] : r.fields) {
      if (value.empty()) continue;
      contributors[field].push_back(&r);
    }
  }
  out.contributing_sources.assign(sources.begin(), sources.end());

  for (const auto& [field, recs] : contributors) {
    const std::string* best = nullptr;
    // Owns the winning value in the majority case, whose vote map dies
    // at the end of its case block (a pointer into it would dangle).
    std::string majority_value;
    switch (policy) {
      case MergePolicy::kSourcePriority: {
        const DedupRecord* winner = nullptr;
        for (const DedupRecord* r : recs) {
          if (winner == nullptr ||
              r->trust_priority > winner->trust_priority ||
              (r->trust_priority == winner->trust_priority &&
               r->ingest_seq > winner->ingest_seq)) {
            winner = r;
          }
        }
        best = &winner->fields.at(field);
        break;
      }
      case MergePolicy::kMajority: {
        std::map<std::string, std::pair<int, int>> votes;  // value -> (n, max_trust)
        for (const DedupRecord* r : recs) {
          auto& v = votes[r->fields.at(field)];
          ++v.first;
          v.second = std::max(v.second, r->trust_priority);
        }
        std::pair<int, int> best_vote{-1, -1};
        for (const auto& [value, vote] : votes) {
          if (vote > best_vote) {
            best_vote = vote;
            majority_value = value;
          }
        }
        if (best_vote.first >= 0) best = &majority_value;
        break;
      }
      case MergePolicy::kLongest: {
        for (const DedupRecord* r : recs) {
          const std::string& v = r->fields.at(field);
          if (best == nullptr || v.size() > best->size()) best = &v;
        }
        break;
      }
      case MergePolicy::kMostRecent: {
        const DedupRecord* winner = nullptr;
        for (const DedupRecord* r : recs) {
          if (winner == nullptr || r->ingest_seq > winner->ingest_seq) {
            winner = r;
          }
        }
        best = &winner->fields.at(field);
        break;
      }
    }
    if (best != nullptr) out.fields[field] = *best;
  }
  return out;
}

Status ScoreCandidatePairs(
    const std::vector<DedupRecord>& records,
    const std::vector<std::pair<size_t, size_t>>& candidates,
    const ConsolidationOptions& opts, ThreadPool* pool,
    std::vector<std::pair<size_t, size_t>>* matches) {
  if (opts.fs_scorer == nullptr && opts.classifier != nullptr &&
      opts.feature_dict == nullptr) {
    return Status::InvalidArgument(
        "consolidation with a classifier requires the feature dictionary "
        "it was trained with");
  }
  if (opts.fs_scorer != nullptr && !opts.fs_scorer->fitted()) {
    return Status::InvalidArgument(
        "consolidation with a Fellegi-Sunter scorer requires a fitted one");
  }
  const int num_threads = pool != nullptr ? pool->num_threads() : 1;

  if (opts.fs_scorer != nullptr) {
    // Decision-theoretic path: materialize the signals once, batch-
    // classify on the pool, keep the kMatch region. Both helpers are
    // index-aligned and thread-count-invariant.
    std::vector<PairSignals> signals;
    DT_RETURN_NOT_OK(
        ComputeAllPairSignals(records, candidates, pool, &signals));
    std::vector<LinkageDecision> decisions =
        opts.fs_scorer->DecideAll(signals, pool);
    for (size_t k = 0; k < candidates.size(); ++k) {
      if (signals[k].same_type == 0) continue;
      if (decisions[k] == LinkageDecision::kMatch) {
        matches->push_back(candidates[k]);
      }
    }
    return Status::OK();
  }

  // Compute signals and score candidates in contiguous chunks; each
  // chunk appends to its own slot and slots concatenate in chunk
  // order, so the match list (and therefore the clustering) is
  // identical to the serial run. Signals stream through each chunk —
  // never materialized for the whole candidate set. Inference-time
  // featurization and PredictProb are read-only on the
  // dictionary/model, so workers share them without locks.
  auto score_range = [&](size_t lo, size_t hi,
                         std::vector<std::pair<size_t, size_t>>* out) {
    for (size_t k = lo; k < hi; ++k) {
      const PairSignals s =
          ComputePairSignals(records[candidates[k].first],
                             records[candidates[k].second]);
      if (s.same_type == 0) continue;
      double score;
      if (opts.classifier != nullptr) {
        ml::FeatureVector fv = PairSignalsToFeatures(
            s, opts.feature_dict, /*add_features=*/false);
        score = opts.classifier->PredictProb(fv);
      } else {
        score = s.RuleScore();
      }
      if (score >= opts.match_threshold) out->push_back(candidates[k]);
    }
  };
  if (pool != nullptr) {
    const size_t num_chunks = static_cast<size_t>(num_threads) * 4;
    std::vector<std::vector<std::pair<size_t, size_t>>> chunk_matches(
        num_chunks);
    DT_RETURN_NOT_OK(pool->ParallelForChunks(
        0, candidates.size(), num_chunks,
        [&](size_t chunk, size_t lo, size_t hi) -> Status {
          score_range(lo, hi, &chunk_matches[chunk]);
          return Status::OK();
        }));
    for (const auto& cm : chunk_matches) {
      matches->insert(matches->end(), cm.begin(), cm.end());
    }
  } else {
    score_range(0, candidates.size(), matches);
  }
  return Status::OK();
}

Result<std::vector<CompositeEntity>> Consolidate(
    const std::vector<DedupRecord>& records, const ConsolidationOptions& opts,
    ConsolidationStats* stats) {
  // One pool for the whole run (the caller's when provided);
  // num_threads == 1 without a caller pool stays fully serial.
  ThreadPool* pool = opts.pool;
  std::unique_ptr<ThreadPool> owned_pool;
  if (pool == nullptr && opts.num_threads != 1) {
    const int resolved = ResolveNumThreads(opts.num_threads);
    if (resolved > 1) {
      owned_pool = std::make_unique<ThreadPool>(resolved);
      pool = owned_pool.get();
    }
  }

  BlockingStats bstats;
  auto candidates =
      GenerateCandidatePairs(records, opts.blocking, &bstats, pool);

  std::vector<std::pair<size_t, size_t>> matches;
  DT_RETURN_NOT_OK(
      ScoreCandidatePairs(records, candidates, opts, pool, &matches));

  auto groups = ClusterPairs(records.size(), matches);
  // Cluster merges are independent; group order (and with it
  // cluster_id assignment) comes from ClusterPairs, which is already
  // deterministic.
  std::vector<CompositeEntity> out(groups.size());
  int64_t merged_records = 0;
  auto merge_group = [&](size_t g) {
    out[g] = MergeCluster(records, groups[g], static_cast<int64_t>(g),
                          opts.merge_policy);
  };
  if (pool != nullptr) {
    DT_RETURN_NOT_OK(pool->ParallelFor(0, groups.size(),
                                       [&](size_t g) -> Status {
                                         merge_group(g);
                                         return Status::OK();
                                       }));
  } else {
    for (size_t g = 0; g < groups.size(); ++g) merge_group(g);
  }
  for (const auto& group : groups) {
    if (group.size() > 1) merged_records += static_cast<int64_t>(group.size());
  }
  if (stats != nullptr) {
    stats->blocking = bstats;
    stats->pairs_scored = static_cast<int64_t>(candidates.size());
    stats->pairs_matched = static_cast<int64_t>(matches.size());
    stats->clusters = static_cast<int64_t>(out.size());
    stats->merged_records = merged_records;
  }
  return out;
}

}  // namespace dt::dedup
