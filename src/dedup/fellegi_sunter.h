/// \file fellegi_sunter.h
/// \brief Fellegi-Sunter probabilistic record-linkage scorer — an
/// alternative to the ML classifier for pair matching (the classic
/// decision-theoretic model; DESIGN.md extension feature).
///
/// Each comparison field contributes a log-likelihood ratio
/// log(m_i / u_i) on agreement and log((1-m_i)/(1-u_i)) on
/// disagreement, where m_i = P(agree | match) and u_i =
/// P(agree | non-match). Parameters are estimated from labeled pairs
/// (supervised; the original EM fitting is unnecessary when the
/// expert-sourcing loop provides labels). Two thresholds split pairs
/// into match / possible-match (routed to experts) / non-match.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_pool.h"
#include "dedup/pair_features.h"
#include "dedup/record.h"

namespace dt::dedup {

/// Decision regions of the Fellegi-Sunter model.
enum class LinkageDecision {
  kNonMatch = 0,
  kPossibleMatch = 1,  ///< goes to clerical review / expert sourcing
  kMatch = 2,
};

const char* LinkageDecisionName(LinkageDecision d);

/// \brief Supervised Fellegi-Sunter scorer over the dense pair signals.
///
/// Signals are dichotomized at per-field agreement cutoffs; m/u
/// probabilities are estimated with add-one smoothing from labeled
/// pairs.
class FellegiSunterScorer {
 public:
  /// Comparison fields = the PairSignals members used. Cutoff: a signal
  /// >= cutoff counts as agreement.
  struct FieldSpec {
    std::string name;
    double cutoff = 0.8;
  };

  FellegiSunterScorer();

  /// Estimates m/u from labeled pairs. Fails when either class is
  /// absent.
  Status Fit(const std::vector<std::pair<PairSignals, int>>& labeled);

  /// Total log-likelihood-ratio weight of a pair (higher = more likely
  /// a match). Requires Fit.
  double Weight(const PairSignals& signals) const;

  /// Classifies with the configured thresholds.
  LinkageDecision Decide(const PairSignals& signals) const;

  /// \brief Classifies a batch of pairs, on `pool` when non-null.
  /// `result[k]` corresponds to `signals[k]` for any thread count
  /// (scoring is read-only on the fitted parameters, so the pool
  /// workers share the scorer without synchronization).
  std::vector<LinkageDecision> DecideAll(const std::vector<PairSignals>& signals,
                                         ThreadPool* pool = nullptr) const;

  /// Decision thresholds on the total weight (upper for kMatch, lower
  /// for kNonMatch; between = kPossibleMatch).
  void SetThresholds(double lower, double upper) {
    lower_threshold_ = lower;
    upper_threshold_ = upper;
  }
  double lower_threshold() const { return lower_threshold_; }
  double upper_threshold() const { return upper_threshold_; }

  /// Chooses thresholds from labeled data: upper = smallest weight with
  /// empirical match-precision >= `target_precision` above it; lower =
  /// largest weight with non-match purity >= `target_precision` below.
  Status CalibrateThresholds(
      const std::vector<std::pair<PairSignals, int>>& labeled,
      double target_precision = 0.95);

  bool fitted() const { return fitted_; }
  int num_fields() const { return static_cast<int>(fields_.size()); }

  /// Per-field agreement/disagreement weights (for explainability).
  std::string Explain(const PairSignals& signals) const;

 private:
  std::vector<double> SignalValues(const PairSignals& s) const;

  std::vector<FieldSpec> fields_;
  std::vector<double> agree_weight_;     // log(m/u)
  std::vector<double> disagree_weight_;  // log((1-m)/(1-u))
  double lower_threshold_ = 0;
  double upper_threshold_ = 3;
  bool fitted_ = false;
};

}  // namespace dt::dedup
