/// \file consolidation.h
/// \brief The entity-consolidation engine (Fig. 1's "entity
/// consolidation" box): block → match → cluster → merge into composite
/// entity records.

#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "dedup/blocking.h"
#include "dedup/clustering.h"
#include "dedup/fellegi_sunter.h"
#include "dedup/pair_features.h"
#include "dedup/record.h"
#include "ml/classifier.h"

namespace dt::dedup {

/// How conflicting field values merge inside a cluster.
enum class MergePolicy {
  /// Value from the highest trust_priority source wins; ties broken by
  /// recency (highest ingest_seq).
  kSourcePriority = 0,
  /// Most frequent value wins; ties by source priority.
  kMajority = 1,
  /// Longest value wins (useful for free-text enrichment fields).
  kLongest = 2,
  /// Most recently ingested wins.
  kMostRecent = 3,
};

const char* MergePolicyName(MergePolicy p);

/// Consolidation configuration.
struct ConsolidationOptions {
  BlockingOptions blocking;
  /// Pairs scoring >= this are matches.
  double match_threshold = 0.80;
  MergePolicy merge_policy = MergePolicy::kSourcePriority;
  /// When set, the ML classifier scores pairs instead of the rule
  /// blend; its probability compares against match_threshold.
  const ml::Classifier* classifier = nullptr;
  /// Dictionary the classifier was trained with (required with
  /// classifier; inference-time features use add=false).
  ml::FeatureDictionary* feature_dict = nullptr;
  /// When set (must be fitted), the Fellegi-Sunter scorer decides
  /// pairs instead of the classifier / rule blend: only kMatch
  /// decisions merge (kPossibleMatch is clerical-review territory,
  /// never an automatic merge). Takes precedence over `classifier`.
  const FellegiSunterScorer* fs_scorer = nullptr;
  /// Threads for candidate generation, pair scoring and cluster
  /// merging: 1 = serial, <= 0 = all hardware threads. The clusters
  /// produced are byte-identical for every value.
  int num_threads = 1;
  /// Externally owned pool to run on (must outlive the call). When
  /// null and num_threads > 1, each Consolidate call creates its own
  /// pool; callers consolidating repeatedly should share one here to
  /// skip the per-call thread spawn/join.
  ThreadPool* pool = nullptr;
};

/// Outcome statistics of one consolidation run.
struct ConsolidationStats {
  BlockingStats blocking;
  int64_t pairs_scored = 0;
  int64_t pairs_matched = 0;
  int64_t clusters = 0;
  int64_t merged_records = 0;  ///< records in non-singleton clusters
};

/// \brief Runs entity consolidation over `records`.
///
/// Returns one composite entity per cluster (singletons included).
/// Fails with InvalidArgument when a classifier is configured without
/// a feature dictionary.
Result<std::vector<CompositeEntity>> Consolidate(
    const std::vector<DedupRecord>& records, const ConsolidationOptions& opts,
    ConsolidationStats* stats = nullptr);

/// \brief Scores `candidates` (i < j index pairs into `records`) with
/// the configured decision procedure — Fellegi-Sunter scorer, ML
/// classifier or the rule blend, in that precedence — and appends the
/// matching pairs to `matches` in candidate order, byte-identical for
/// any `pool`. This is the one scoring path shared by batch
/// `Consolidate` and the streaming consolidator, so incremental ingest
/// can never drift from the batch decision boundary.
Status ScoreCandidatePairs(
    const std::vector<DedupRecord>& records,
    const std::vector<std::pair<size_t, size_t>>& candidates,
    const ConsolidationOptions& opts, ThreadPool* pool,
    std::vector<std::pair<size_t, size_t>>* matches);

/// \brief Merges one cluster of records into a composite entity using
/// `policy` (exposed for tests and for the query layer's on-the-fly
/// fusion).
CompositeEntity MergeCluster(const std::vector<DedupRecord>& records,
                             const std::vector<size_t>& member_indexes,
                             int64_t cluster_id, MergePolicy policy);

}  // namespace dt::dedup
