#include "dedup/fellegi_sunter.h"

#include <algorithm>
#include <cmath>

#include "common/strutil.h"

namespace dt::dedup {

const char* LinkageDecisionName(LinkageDecision d) {
  switch (d) {
    case LinkageDecision::kNonMatch:
      return "non-match";
    case LinkageDecision::kPossibleMatch:
      return "possible-match";
    case LinkageDecision::kMatch:
      return "match";
  }
  return "?";
}

FellegiSunterScorer::FellegiSunterScorer() {
  fields_ = {
      {"name_levenshtein", 0.80}, {"name_jaro_winkler", 0.88},
      {"name_token_jaccard", 0.60}, {"name_qgram_jaccard", 0.50},
      {"field_agreement", 0.60},
  };
}

std::vector<double> FellegiSunterScorer::SignalValues(
    const PairSignals& s) const {
  return {s.name_levenshtein, s.name_jaro_winkler, s.name_token_jaccard,
          s.name_qgram_jaccard, s.shared_field_agreement};
}

Status FellegiSunterScorer::Fit(
    const std::vector<std::pair<PairSignals, int>>& labeled) {
  int64_t matches = 0, nonmatches = 0;
  std::vector<int64_t> agree_m(fields_.size(), 0), agree_u(fields_.size(), 0);
  for (const auto& [signals, label] : labeled) {
    if (label != 0 && label != 1) {
      return Status::InvalidArgument("labels must be 0/1");
    }
    auto values = SignalValues(signals);
    (label == 1 ? matches : nonmatches) += 1;
    for (size_t f = 0; f < fields_.size(); ++f) {
      if (values[f] >= fields_[f].cutoff) {
        (label == 1 ? agree_m[f] : agree_u[f]) += 1;
      }
    }
  }
  if (matches == 0 || nonmatches == 0) {
    return Status::InvalidArgument(
        "Fellegi-Sunter needs both matched and non-matched pairs "
        "(matches=" + std::to_string(matches) +
        ", nonmatches=" + std::to_string(nonmatches) + ")");
  }
  agree_weight_.assign(fields_.size(), 0);
  disagree_weight_.assign(fields_.size(), 0);
  for (size_t f = 0; f < fields_.size(); ++f) {
    // Add-one smoothing keeps weights finite for perfectly separating
    // fields.
    double m = (agree_m[f] + 1.0) / (matches + 2.0);
    double u = (agree_u[f] + 1.0) / (nonmatches + 2.0);
    agree_weight_[f] = std::log(m / u);
    disagree_weight_[f] = std::log((1.0 - m) / (1.0 - u));
  }
  fitted_ = true;
  return Status::OK();
}

double FellegiSunterScorer::Weight(const PairSignals& signals) const {
  if (!fitted_) return 0;
  if (signals.same_type == 0) return -1e9;
  auto values = SignalValues(signals);
  double w = 0;
  for (size_t f = 0; f < fields_.size(); ++f) {
    w += values[f] >= fields_[f].cutoff ? agree_weight_[f]
                                        : disagree_weight_[f];
  }
  return w;
}

LinkageDecision FellegiSunterScorer::Decide(const PairSignals& signals) const {
  double w = Weight(signals);
  if (w >= upper_threshold_) return LinkageDecision::kMatch;
  if (w <= lower_threshold_) return LinkageDecision::kNonMatch;
  return LinkageDecision::kPossibleMatch;
}

std::vector<LinkageDecision> FellegiSunterScorer::DecideAll(
    const std::vector<PairSignals>& signals, ThreadPool* pool) const {
  std::vector<LinkageDecision> out(signals.size(), LinkageDecision::kNonMatch);
  if (pool != nullptr) {
    // Rethrow loop failures: silently returning the kNonMatch
    // pre-fill would misclassify real matches.
    RethrowIfError(pool->ParallelFor(0, signals.size(), [&](size_t k) -> Status {
      out[k] = Decide(signals[k]);
      return Status::OK();
    }));
  } else {
    for (size_t k = 0; k < signals.size(); ++k) out[k] = Decide(signals[k]);
  }
  return out;
}

Status FellegiSunterScorer::CalibrateThresholds(
    const std::vector<std::pair<PairSignals, int>>& labeled,
    double target_precision) {
  if (!fitted_) {
    return Status::InvalidArgument("call Fit before CalibrateThresholds");
  }
  if (labeled.empty()) {
    return Status::InvalidArgument("no calibration pairs");
  }
  std::vector<std::pair<double, int>> scored;
  scored.reserve(labeled.size());
  for (const auto& [signals, label] : labeled) {
    scored.emplace_back(Weight(signals), label);
  }
  std::sort(scored.begin(), scored.end());

  // Upper threshold: walk tie groups from the top, keeping precision
  // above target. Weights are discrete (binary field agreements), so a
  // threshold is only meaningful at a group boundary — it admits every
  // pair sharing the weight.
  int64_t tp = 0, fp = 0;
  double upper = scored.back().first + 1e-9;
  {
    size_t i = scored.size();
    while (i > 0) {
      double w = scored[i - 1].first;
      size_t j = i;
      while (j > 0 && scored[j - 1].first == w) {
        (scored[j - 1].second == 1 ? tp : fp) += 1;
        --j;
      }
      double precision = static_cast<double>(tp) / (tp + fp);
      if (precision >= target_precision) {
        upper = w;
        i = j;
      } else {
        break;
      }
    }
  }
  // Lower threshold: walk tie groups from the bottom, keeping
  // non-match purity.
  int64_t tn = 0, fn = 0;
  double lower = scored.front().first - 1e-9;
  {
    size_t i = 0;
    while (i < scored.size()) {
      double w = scored[i].first;
      size_t j = i;
      while (j < scored.size() && scored[j].first == w) {
        (scored[j].second == 0 ? tn : fn) += 1;
        ++j;
      }
      double purity = static_cast<double>(tn) / (tn + fn);
      if (purity >= target_precision) {
        lower = w;
        i = j;
      } else {
        break;
      }
    }
  }
  if (lower > upper) lower = upper;
  lower_threshold_ = lower;
  upper_threshold_ = upper;
  return Status::OK();
}

std::string FellegiSunterScorer::Explain(const PairSignals& signals) const {
  auto values = SignalValues(signals);
  std::string out;
  double total = 0;
  for (size_t f = 0; f < fields_.size(); ++f) {
    bool agree = values[f] >= fields_[f].cutoff;
    double w = fitted_ ? (agree ? agree_weight_[f] : disagree_weight_[f]) : 0;
    total += w;
    if (!out.empty()) out += " ";
    out += fields_[f].name + (agree ? "+" : "-") + FormatDouble(w, 2);
  }
  out += " => " + FormatDouble(total, 2) + " (" +
         LinkageDecisionName(Decide(signals)) + ")";
  return out;
}

}  // namespace dt::dedup
