/// \file record.h
/// \brief The record model entity consolidation operates on.
///
/// Consolidation sees flat records from any origin (flattened parser
/// output, ingested tables) as a bag of string fields plus provenance.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "storage/docvalue.h"

namespace dt::dedup {

/// \brief One record headed into entity consolidation.
struct DedupRecord {
  int64_t id = 0;
  /// Entity type ("Movie", "Person", ...); records of different types
  /// never match.
  std::string entity_type;
  /// Attribute name -> value (string domain; the consolidation engine
  /// is type-agnostic by design, like the paper's).
  std::map<std::string, std::string> fields;
  std::string source_id;
  /// Merge priority of the source (higher wins on conflicts).
  int trust_priority = 0;
  /// Ingest sequence (newer wins under recency policy).
  int64_t ingest_seq = 0;

  /// The primary name field used for blocking/matching: "name" if
  /// present, else the first field, else "".
  const std::string& DisplayName() const;
};

/// \brief A consolidated composite entity (output of clustering+merge).
struct CompositeEntity {
  int64_t cluster_id = 0;
  std::string entity_type;
  std::map<std::string, std::string> fields;
  std::vector<int64_t> member_record_ids;
  std::vector<std::string> contributing_sources;
};

// ---- DocValue codecs (the streaming-ingest persistence format) ------
// Canonical fixed-order object encodings, so encode -> decode ->
// encode is byte-identical under the storage codec. The record codec
// is what the facade's ingest path appends to the dt.dedup_record log
// and what `QueryRequest`'s ingest op carries over the wire.

storage::DocValue DedupRecordToDoc(const DedupRecord& record);

/// Strict decode: kInvalidArgument on a non-object or any mistyped
/// field; absent fields keep their defaults.
Result<DedupRecord> DedupRecordFromDoc(const storage::DocValue& v);

storage::DocValue CompositeEntityToDoc(const CompositeEntity& entity);

Result<CompositeEntity> CompositeEntityFromDoc(const storage::DocValue& v);

}  // namespace dt::dedup
