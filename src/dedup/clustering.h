/// \file clustering.h
/// \brief Union-find clustering of matched pairs into entity clusters.

#pragma once

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace dt::dedup {

/// \brief Disjoint-set forest with union by rank and path compression.
class UnionFind {
 public:
  explicit UnionFind(size_t n);

  /// Representative of `x`'s set.
  size_t Find(size_t x);

  /// Merges the sets of `a` and `b`; returns true if they were distinct.
  bool Union(size_t a, size_t b);

  /// Appends one fresh singleton element (the streaming consolidator
  /// grows the forest one record at a time); returns its index.
  size_t Add();

  /// True when `a` and `b` share a set.
  bool Connected(size_t a, size_t b) { return Find(a) == Find(b); }

  size_t num_sets() const { return num_sets_; }
  size_t size() const { return parent_.size(); }

  /// Members grouped by set, each group sorted, groups ordered by their
  /// smallest member (deterministic output for tests and benches).
  std::vector<std::vector<size_t>> Groups();

 private:
  std::vector<size_t> parent_;
  std::vector<uint8_t> rank_;
  size_t num_sets_;
};

/// \brief Clusters `n` records from matched index pairs. Returns groups
/// as produced by `UnionFind::Groups` (singletons included).
std::vector<std::vector<size_t>> ClusterPairs(
    size_t n, const std::vector<std::pair<size_t, size_t>>& matched_pairs);

}  // namespace dt::dedup
