#include "dedup/streaming.h"

#include <algorithm>

namespace dt::dedup {

StreamingConsolidator::StreamingConsolidator(ConsolidationOptions opts)
    : opts_(std::move(opts)) {}

bool StreamingConsolidator::SharesLiveBlock(size_t a, size_t b) const {
  for (const std::string& key : keys_of_record_[a]) {
    auto it = blocks_.find(key);
    if (it == blocks_.end() || it->second.dead) continue;
    const std::vector<size_t>& m = it->second.members;
    if (std::binary_search(m.begin(), m.end(), b)) return true;
  }
  return false;
}

void StreamingConsolidator::MergeClusterPair(size_t a, size_t b) {
  size_t ra = uf_.Find(a), rb = uf_.Find(b);
  if (ra == rb) return;
  uf_.Union(ra, rb);
  size_t winner = uf_.Find(ra);
  size_t loser = winner == ra ? rb : ra;
  std::vector<size_t>& into = members_of_root_[winner];
  std::vector<size_t>& from = members_of_root_[loser];
  std::vector<size_t> merged;
  merged.reserve(into.size() + from.size());
  std::merge(into.begin(), into.end(), from.begin(), from.end(),
             std::back_inserter(merged));
  into = std::move(merged);
  members_of_root_.erase(loser);
}

void StreamingConsolidator::RebuildClusters() {
  const size_t n = records_.size();
  uf_ = UnionFind(n);
  for (uint64_t key : matches_) {
    uf_.Union(static_cast<size_t>(key >> 32),
              static_cast<size_t>(key & 0xffffffffu));
  }
  members_of_root_.clear();
  // Ascending corpus order keeps every member list sorted.
  for (size_t i = 0; i < n; ++i) members_of_root_[uf_.Find(i)].push_back(i);
  ++stats_.rebuilds;
}

Result<StreamingConsolidator::IngestDelta> StreamingConsolidator::Ingest(
    DedupRecord record, ThreadPool* pool) {
  if (pool == nullptr) pool = opts_.pool;
  const size_t n = records_.size();
  records_.push_back(std::move(record));
  keys_of_record_.push_back(BlockingKeys(records_.back(), opts_.blocking));
  uf_.Add();
  members_of_root_.emplace(n, std::vector<size_t>{n});

  IngestDelta delta;
  delta.record_index = n;

  // ---- Candidate generation + persistent block maintenance. ----
  std::vector<size_t> candidates;
  std::vector<std::vector<size_t>> retired;
  for (const std::string& key : keys_of_record_[n]) {
    auto [it, created] = blocks_.try_emplace(key);
    if (created) ++stats_.live_blocks;
    Block& block = it->second;
    if (block.dead) continue;
    if (static_cast<int>(block.members.size()) >=
        opts_.blocking.max_block_size) {
      // Adding this record would push the block past the cap. Batch
      // blocking skips such a block entirely, so from this corpus on
      // it supplies no candidates — retire it for good and queue its
      // members for match retraction below.
      block.dead = true;
      --stats_.live_blocks;
      ++stats_.retired_blocks;
      retired.push_back(std::move(block.members));
      block.members.clear();
      block.members.shrink_to_fit();
      continue;
    }
    candidates.insert(candidates.end(), block.members.begin(),
                      block.members.end());
    block.members.push_back(n);
  }
  std::sort(candidates.begin(), candidates.end());
  candidates.erase(std::unique(candidates.begin(), candidates.end()),
                   candidates.end());

  // ---- Score only the candidate neighborhood. ----
  std::vector<std::pair<size_t, size_t>> pairs;
  pairs.reserve(candidates.size());
  for (size_t m : candidates) pairs.emplace_back(m, n);
  std::vector<std::pair<size_t, size_t>> new_matches;
  DT_RETURN_NOT_OK(ScoreCandidatePairs(records_, pairs, opts_, pool,
                                       &new_matches));
  ++stats_.records_ingested;
  stats_.pairs_scored += static_cast<int64_t>(pairs.size());
  stats_.candidates_generated += static_cast<int64_t>(candidates.size());
  stats_.max_candidates_per_record =
      std::max(stats_.max_candidates_per_record,
               static_cast<int64_t>(candidates.size()));
  delta.pairs_scored = static_cast<int64_t>(pairs.size());
  delta.pairs_matched = static_cast<int64_t>(new_matches.size());

  // ---- Retract matches orphaned by block retirement. ----
  // A matched pair stays matched only while some live block still
  // contains both endpoints (exactly the batch criterion). Only pairs
  // inside a dying block can lose that property.
  bool retracted_any = false;
  for (const std::vector<size_t>& members : retired) {
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        auto it = matches_.find(PairKey(members[i], members[j]));
        if (it == matches_.end()) continue;
        if (SharesLiveBlock(members[i], members[j])) continue;
        matches_.erase(it);
        ++stats_.retracted_matches;
        retracted_any = true;
      }
    }
  }

  if (retracted_any) {
    // Slow path: splits are possible, so rebuild connectivity from the
    // surviving matches and diff the whole cluster map. Rare — it
    // needs a block to cross max_block_size *and* orphan a match.
    std::unordered_map<size_t, std::vector<size_t>> before;
    before.reserve(members_of_root_.size());
    for (auto& [root, members] : members_of_root_) {
      // n's transient singleton is not pre-existing state: leaving it
      // out guarantees n's final cluster always diffs as changed, so
      // the delta upserts it even when n stays a singleton.
      if (members.front() == n) continue;
      before.emplace(members.front(), std::move(members));
    }
    for (const auto& [a, b] : new_matches) matches_.insert(PairKey(a, b));
    RebuildClusters();
    for (const auto& [root, members] : members_of_root_) {
      auto it = before.find(members.front());
      if (it == before.end() || it->second != members) {
        delta.upserted.push_back(members.front());
      }
    }
    for (const auto& [key, members] : before) {
      bool still = false;
      auto mit = members_of_root_.find(uf_.Find(key));
      if (mit != members_of_root_.end() && mit->second.front() == key) {
        still = true;
      }
      if (!still) delta.removed.push_back(key);
    }
  } else {
    // Fast path: every new match touches the fresh record n, so all
    // affected clusters collapse into the one containing n. Upserted =
    // that single cluster; removed = the pre-merge keys it absorbed.
    std::vector<size_t> before_keys;
    before_keys.push_back(n);  // the new singleton's key
    for (const auto& [a, b] : new_matches) {
      matches_.insert(PairKey(a, b));
      before_keys.push_back(members_of_root_.at(uf_.Find(a)).front());
      MergeClusterPair(a, b);
    }
    std::sort(before_keys.begin(), before_keys.end());
    before_keys.erase(std::unique(before_keys.begin(), before_keys.end()),
                      before_keys.end());
    const size_t final_key = members_of_root_.at(uf_.Find(n)).front();
    delta.upserted.push_back(final_key);
    for (size_t key : before_keys) {
      if (key != final_key) delta.removed.push_back(key);
    }
  }
  std::sort(delta.upserted.begin(), delta.upserted.end());
  std::sort(delta.removed.begin(), delta.removed.end());
  stats_.pairs_matched = static_cast<int64_t>(matches_.size());
  return delta;
}

Status StreamingConsolidator::Seed(std::vector<DedupRecord> records,
                                   ThreadPool* pool) {
  if (!records_.empty()) {
    return Status::InvalidArgument("Seed requires an empty consolidator");
  }
  if (pool == nullptr) pool = opts_.pool;
  records_ = std::move(records);
  const size_t n = records_.size();
  keys_of_record_.assign(n, {});
  if (pool != nullptr) {
    DT_RETURN_NOT_OK(pool->ParallelFor(0, n, [&](size_t i) -> Status {
      keys_of_record_[i] = BlockingKeys(records_[i], opts_.blocking);
      return Status::OK();
    }));
  } else {
    for (size_t i = 0; i < n; ++i) {
      keys_of_record_[i] = BlockingKeys(records_[i], opts_.blocking);
    }
  }
  for (size_t i = 0; i < n; ++i) {
    for (const std::string& key : keys_of_record_[i]) {
      blocks_[key].members.push_back(i);
    }
  }
  for (auto& [key, block] : blocks_) {
    if (static_cast<int>(block.members.size()) >
        opts_.blocking.max_block_size) {
      block.dead = true;
      block.members.clear();
      block.members.shrink_to_fit();
      ++stats_.retired_blocks;
    } else {
      ++stats_.live_blocks;
    }
  }

  // Candidates + scoring through the exact batch path.
  BlockingStats bstats;
  auto candidates =
      GenerateCandidatePairs(records_, opts_.blocking, &bstats, pool);
  std::vector<std::pair<size_t, size_t>> matched;
  DT_RETURN_NOT_OK(
      ScoreCandidatePairs(records_, candidates, opts_, pool, &matched));
  uf_ = UnionFind(n);
  matches_.reserve(matched.size());
  for (const auto& [a, b] : matched) {
    matches_.insert(PairKey(a, b));
    uf_.Union(a, b);
  }
  members_of_root_.clear();
  for (size_t i = 0; i < n; ++i) members_of_root_[uf_.Find(i)].push_back(i);
  stats_.records_ingested = static_cast<int64_t>(n);
  stats_.pairs_scored = static_cast<int64_t>(candidates.size());
  stats_.candidates_generated = static_cast<int64_t>(candidates.size());
  stats_.pairs_matched = static_cast<int64_t>(matches_.size());
  return Status::OK();
}

Result<std::vector<CompositeEntity>> StreamingConsolidator::Entities(
    ThreadPool* pool) const {
  if (pool == nullptr) pool = opts_.pool;
  std::vector<const std::vector<size_t>*> groups;
  groups.reserve(members_of_root_.size());
  for (const auto& [root, members] : members_of_root_) {
    groups.push_back(&members);
  }
  // Batch `ClusterPairs` orders groups by smallest member and assigns
  // dense cluster ids in that order; reproduce it exactly.
  std::sort(groups.begin(), groups.end(),
            [](const std::vector<size_t>* a, const std::vector<size_t>* b) {
              return a->front() < b->front();
            });
  std::vector<CompositeEntity> out(groups.size());
  auto merge_group = [&](size_t g) {
    out[g] = MergeCluster(records_, *groups[g], static_cast<int64_t>(g),
                          opts_.merge_policy);
  };
  if (pool != nullptr) {
    DT_RETURN_NOT_OK(
        pool->ParallelFor(0, groups.size(), [&](size_t g) -> Status {
          merge_group(g);
          return Status::OK();
        }));
  } else {
    for (size_t g = 0; g < groups.size(); ++g) merge_group(g);
  }
  return out;
}

CompositeEntity StreamingConsolidator::EntityOf(size_t cluster_key) const {
  if (cluster_key >= records_.size()) return {};
  auto it = members_of_root_.find(uf_.Find(cluster_key));
  if (it == members_of_root_.end() || it->second.front() != cluster_key) {
    return {};
  }
  return MergeCluster(records_, it->second,
                      static_cast<int64_t>(cluster_key), opts_.merge_policy);
}

std::vector<size_t> StreamingConsolidator::ClusterMembers(
    size_t cluster_key) const {
  if (cluster_key >= records_.size()) return {};
  auto it = members_of_root_.find(uf_.Find(cluster_key));
  if (it == members_of_root_.end() || it->second.front() != cluster_key) {
    return {};
  }
  return it->second;
}

std::vector<size_t> StreamingConsolidator::ClusterKeys() const {
  std::vector<size_t> keys;
  keys.reserve(members_of_root_.size());
  for (const auto& [root, members] : members_of_root_) {
    keys.push_back(members.front());
  }
  std::sort(keys.begin(), keys.end());
  return keys;
}

}  // namespace dt::dedup
