/// \file flatten.h
/// \brief Conversion of hierarchical documents into flat records.
///
/// The paper: "By flattening here we mean the process of converting
/// hierarchical data into flat records before processing by DATA
/// TAMER." Scalars map to dotted-path attributes; arrays either join
/// into delimited strings (scalar arrays) or explode into one record
/// per element (object arrays, i.e. an unnest).

#pragma once

#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "relational/table.h"
#include "storage/docvalue.h"

namespace dt::ingest {

/// A flat record: ordered (attribute path, scalar value) pairs.
using FlatRecord = std::vector<std::pair<std::string, relational::Value>>;

/// Flattening behaviour knobs.
struct FlattenOptions {
  /// Separator used when a scalar array is joined into one string.
  std::string array_join_separator = " | ";
  /// When true, an array of objects produces one record per element
  /// (cross product across multiple such arrays); when false the array
  /// elements are flattened in place with numeric path segments.
  bool explode_object_arrays = true;
  /// Safety valve on the cross-product explosion.
  int max_records_per_document = 4096;
};

/// \brief Flattens one hierarchical document into >= 1 flat records.
///
/// Fails with InvalidArgument for non-object inputs and
/// CapacityExceeded when the explode cross-product exceeds
/// `max_records_per_document`.
Result<std::vector<FlatRecord>> FlattenDocument(const storage::DocValue& doc,
                                                const FlattenOptions& opts = {});

/// \brief Flattens a batch of documents into a relational table.
///
/// The schema is the union of all attribute paths encountered, in first-
/// seen order; records missing an attribute get Null. All columns land
/// as their natural scalar types when every occurrence agrees,
/// otherwise as strings.
Result<relational::Table> FlattenToTable(
    const std::string& table_name,
    const std::vector<storage::DocValue>& docs,
    const FlattenOptions& opts = {});

}  // namespace dt::ingest
