/// \file csv.h
/// \brief RFC-4180-style CSV parsing into string cells or typed tables.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace dt::ingest {

/// Parsing options.
struct CsvOptions {
  char delimiter = ',';
  /// First row is a header with attribute names.
  bool has_header = true;
  /// Infer int/double/bool column types from the data; otherwise all
  /// columns are strings.
  bool infer_types = true;
};

/// \brief Parses CSV text into rows of string cells.
///
/// Supports quoted fields with embedded delimiters/newlines and "" as an
/// escaped quote. Rejects unterminated quotes and stray quotes inside
/// unquoted fields with a Corruption status.
Result<std::vector<std::vector<std::string>>> ParseCsv(
    std::string_view text, const CsvOptions& opts = {});

/// \brief Parses CSV text into a typed table named `table_name`.
///
/// With `has_header` false, attributes are named col0..colN-1. Rows
/// with a cell count different from the header are rejected.
Result<relational::Table> CsvToTable(const std::string& table_name,
                                     std::string_view text,
                                     const CsvOptions& opts = {});

/// Renders a table back to CSV (used by examples and round-trip tests).
std::string TableToCsv(const relational::Table& table, char delimiter = ',');

}  // namespace dt::ingest
