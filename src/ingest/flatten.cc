#include "ingest/flatten.h"

#include <map>
#include <unordered_map>

#include "common/strutil.h"

namespace dt::ingest {

namespace {

using relational::Value;
using storage::DocType;
using storage::DocValue;

Value ScalarToValue(const DocValue& v) {
  switch (v.type()) {
    case DocType::kNull:
      return Value::Null();
    case DocType::kBool:
      return Value::Bool(v.bool_value());
    case DocType::kInt64:
      return Value::Int(v.int_value());
    case DocType::kDouble:
      return Value::Double(v.double_value());
    case DocType::kString:
      return Value::Str(v.string_value());
    default:
      return Value::Null();
  }
}

bool IsScalar(const DocValue& v) { return !v.is_array() && !v.is_object(); }

bool AllScalars(const DocValue& arr) {
  for (const auto& item : arr.array_items()) {
    if (!IsScalar(item)) return false;
  }
  return true;
}

std::string JoinScalarArray(const DocValue& arr, const std::string& sep) {
  std::vector<std::string> parts;
  parts.reserve(arr.array_items().size());
  for (const auto& item : arr.array_items()) {
    parts.push_back(ScalarToValue(item).ToString());
  }
  return Join(parts, sep);
}

// Recursive worker: produces the cross product of exploded object
// arrays. `prefix` is the dotted path so far.
Status FlattenInto(const DocValue& doc, const std::string& prefix,
                   const FlattenOptions& opts,
                   std::vector<FlatRecord>* records) {
  for (const auto& [key, val] : doc.fields()) {
    std::string path = prefix.empty() ? key : prefix + "." + key;
    if (IsScalar(val)) {
      for (auto& rec : *records) rec.emplace_back(path, ScalarToValue(val));
    } else if (val.is_object()) {
      DT_RETURN_NOT_OK(FlattenInto(val, path, opts, records));
    } else {  // array
      if (val.array_items().empty()) continue;
      if (AllScalars(val)) {
        Value joined =
            Value::Str(JoinScalarArray(val, opts.array_join_separator));
        for (auto& rec : *records) rec.emplace_back(path, joined);
      } else if (opts.explode_object_arrays) {
        // Unnest: every existing record fans out per array element.
        size_t fanout = val.array_items().size();
        if (records->size() * fanout >
            static_cast<size_t>(opts.max_records_per_document)) {
          return Status::CapacityExceeded(
              "flattening explosion exceeds max_records_per_document at " +
              path);
        }
        std::vector<FlatRecord> expanded;
        expanded.reserve(records->size() * fanout);
        for (const auto& item : val.array_items()) {
          std::vector<FlatRecord> branch = *records;  // copy current state
          if (item.is_object()) {
            DT_RETURN_NOT_OK(FlattenInto(item, path, opts, &branch));
          } else if (item.is_array()) {
            // Nested arrays flatten positionally under the same path.
            for (auto& rec : branch) {
              rec.emplace_back(
                  path, Value::Str(item.ToJson()));
            }
          } else {
            for (auto& rec : branch) {
              rec.emplace_back(path, ScalarToValue(item));
            }
          }
          for (auto& rec : branch) expanded.push_back(std::move(rec));
        }
        *records = std::move(expanded);
      } else {
        // In-place: positional path segments.
        int idx = 0;
        for (const auto& item : val.array_items()) {
          std::string ipath = path + "." + std::to_string(idx++);
          if (item.is_object()) {
            DT_RETURN_NOT_OK(FlattenInto(item, ipath, opts, records));
          } else if (IsScalar(item)) {
            for (auto& rec : *records) {
              rec.emplace_back(ipath, ScalarToValue(item));
            }
          } else {
            for (auto& rec : *records) {
              rec.emplace_back(ipath, Value::Str(item.ToJson()));
            }
          }
        }
      }
    }
  }
  return Status::OK();
}

}  // namespace

Result<std::vector<FlatRecord>> FlattenDocument(const storage::DocValue& doc,
                                                const FlattenOptions& opts) {
  if (!doc.is_object()) {
    return Status::InvalidArgument("can only flatten object documents, got " +
                                   std::string(DocTypeName(doc.type())));
  }
  std::vector<FlatRecord> records(1);
  DT_RETURN_NOT_OK(FlattenInto(doc, "", opts, &records));
  return records;
}

Result<relational::Table> FlattenToTable(
    const std::string& table_name, const std::vector<storage::DocValue>& docs,
    const FlattenOptions& opts) {
  // First pass: flatten everything, collect attribute paths in
  // first-seen order and their observed value types.
  std::vector<FlatRecord> all_records;
  std::vector<std::string> paths;
  std::unordered_map<std::string, int> path_index;
  std::unordered_map<std::string, relational::ValueType> path_type;
  std::unordered_map<std::string, bool> type_conflict;

  for (const auto& doc : docs) {
    DT_ASSIGN_OR_RETURN(auto records, FlattenDocument(doc, opts));
    for (auto& rec : records) {
      for (const auto& [path, value] : rec) {
        if (path_index.emplace(path, static_cast<int>(paths.size())).second) {
          paths.push_back(path);
          path_type[path] = value.type();
        } else if (!value.is_null()) {
          auto& t = path_type[path];
          if (t == relational::ValueType::kNull) {
            t = value.type();
          } else if (t != value.type()) {
            // int widens to double; anything else conflicts to string
            bool numeric_widen =
                (t == relational::ValueType::kInt &&
                 value.type() == relational::ValueType::kDouble) ||
                (t == relational::ValueType::kDouble &&
                 value.type() == relational::ValueType::kInt);
            if (numeric_widen) {
              t = relational::ValueType::kDouble;
            } else {
              type_conflict[path] = true;
            }
          }
        }
      }
      all_records.push_back(std::move(rec));
    }
  }

  relational::Schema schema;
  for (const auto& p : paths) {
    relational::ValueType t = type_conflict[p] ? relational::ValueType::kString
                                               : path_type[p];
    if (t == relational::ValueType::kNull) t = relational::ValueType::kString;
    DT_RETURN_NOT_OK(schema.AddAttribute({p, t}));
  }

  relational::Table table(table_name, schema);
  for (const auto& rec : all_records) {
    relational::Row row(paths.size());
    for (const auto& [path, value] : rec) {
      int idx = path_index[path];
      if (type_conflict[path] && !value.is_null()) {
        row[idx] = relational::Value::Str(value.ToString());
      } else {
        row[idx] = value;
      }
    }
    DT_RETURN_NOT_OK(table.Append(std::move(row)));
  }
  return table;
}

}  // namespace dt::ingest
