#include "ingest/csv.h"

#include "ingest/type_infer.h"

namespace dt::ingest {

Result<std::vector<std::vector<std::string>>> ParseCsv(std::string_view text,
                                                       const CsvOptions& opts) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string cell;
  bool in_quotes = false;
  bool cell_was_quoted = false;
  bool at_cell_start = true;
  size_t i = 0;
  const size_t n = text.size();

  auto end_cell = [&] {
    row.push_back(std::move(cell));
    cell.clear();
    at_cell_start = true;
    cell_was_quoted = false;
  };
  auto end_row = [&] {
    end_cell();
    rows.push_back(std::move(row));
    row.clear();
  };

  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          cell.push_back('"');
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      cell.push_back(c);
      ++i;
      continue;
    }
    if (c == '"') {
      if (!at_cell_start) {
        return Status::Corruption("stray quote at offset " + std::to_string(i));
      }
      in_quotes = true;
      cell_was_quoted = true;
      at_cell_start = false;
      ++i;
      continue;
    }
    if (c == opts.delimiter) {
      end_cell();
      ++i;
      continue;
    }
    if (c == '\r') {
      // swallow, handle \r\n and bare \r as row ends via following \n or not
      if (i + 1 < n && text[i + 1] == '\n') {
        ++i;
        continue;
      }
      end_row();
      ++i;
      continue;
    }
    if (c == '\n') {
      end_row();
      ++i;
      continue;
    }
    if (cell_was_quoted) {
      return Status::Corruption("data after closing quote at offset " +
                                std::to_string(i));
    }
    cell.push_back(c);
    at_cell_start = false;
    ++i;
  }
  if (in_quotes) {
    return Status::Corruption("unterminated quoted field");
  }
  // Trailing row without final newline.
  if (!cell.empty() || !row.empty() || !at_cell_start || cell_was_quoted) {
    end_row();
  }
  return rows;
}

Result<relational::Table> CsvToTable(const std::string& table_name,
                                     std::string_view text,
                                     const CsvOptions& opts) {
  DT_ASSIGN_OR_RETURN(auto rows, ParseCsv(text, opts));
  if (rows.empty()) {
    return Status::InvalidArgument("empty CSV input for table " + table_name);
  }
  std::vector<std::string> header;
  size_t first_data = 0;
  if (opts.has_header) {
    header = rows[0];
    first_data = 1;
  } else {
    for (size_t c = 0; c < rows[0].size(); ++c) {
      header.push_back("col" + std::to_string(c));
    }
  }

  const size_t ncols = header.size();
  // Column-wise type inference over the data rows.
  std::vector<relational::ValueType> types(ncols,
                                           relational::ValueType::kString);
  if (opts.infer_types) {
    for (size_t c = 0; c < ncols; ++c) {
      std::vector<std::string_view> col;
      col.reserve(rows.size() - first_data);
      for (size_t r = first_data; r < rows.size(); ++r) {
        if (c < rows[r].size()) col.push_back(rows[r][c]);
      }
      types[c] = InferColumnType(col);
    }
  }

  relational::Schema schema;
  for (size_t c = 0; c < ncols; ++c) {
    DT_RETURN_NOT_OK(schema.AddAttribute({header[c], types[c]}));
  }
  relational::Table table(table_name, std::move(schema));
  for (size_t r = first_data; r < rows.size(); ++r) {
    if (rows[r].size() != ncols) {
      return Status::Corruption(
          "row " + std::to_string(r) + " has " +
          std::to_string(rows[r].size()) + " cells, expected " +
          std::to_string(ncols) + " in table " + table_name);
    }
    relational::Row row;
    row.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      row.push_back(ParseValueAs(rows[r][c], types[c]));
    }
    DT_RETURN_NOT_OK(table.Append(std::move(row)));
  }
  return table;
}

namespace {
std::string EscapeCell(const std::string& s, char delim) {
  bool needs_quote = s.find(delim) != std::string::npos ||
                     s.find('"') != std::string::npos ||
                     s.find('\n') != std::string::npos ||
                     s.find('\r') != std::string::npos;
  if (!needs_quote) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}
}  // namespace

std::string TableToCsv(const relational::Table& table, char delimiter) {
  std::string out;
  const auto& attrs = table.schema().attributes();
  for (size_t c = 0; c < attrs.size(); ++c) {
    if (c > 0) out.push_back(delimiter);
    out += EscapeCell(attrs[c].name, delimiter);
  }
  out.push_back('\n');
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    const auto& row = table.row(r);
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out.push_back(delimiter);
      out += EscapeCell(row[c].ToString(), delimiter);
    }
    out.push_back('\n');
  }
  return out;
}

}  // namespace dt::ingest
