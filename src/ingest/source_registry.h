/// \file source_registry.h
/// \brief Provenance registry for ingested data sources.
///
/// Every dataset entering the system (structured table, semi-structured
/// feed, text corpus) is registered here; downstream modules carry the
/// source id so consolidation can apply per-source merge priorities and
/// the UI can explain where a fused value came from.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace dt::ingest {

/// Broad class of a data source (Fig. 1's three input arrows).
enum class SourceKind {
  kStructured = 0,      ///< CSV / relational exports (FTABLES)
  kSemiStructured = 1,  ///< JSON / hierarchical feeds
  kText = 2,            ///< raw text corpora (WEBINSTANCE input)
};

const char* SourceKindName(SourceKind k);

/// \brief Descriptor of a registered source.
struct DataSource {
  std::string id;    ///< unique, e.g. "ftables/broadway_shows_03"
  std::string name;  ///< human-readable
  SourceKind kind = SourceKind::kStructured;
  /// Priority used by consolidation when merging conflicting values;
  /// higher wins (structured curated sources usually outrank text).
  int trust_priority = 0;
  int64_t records_ingested = 0;
};

/// \brief Registry of all ingested sources.
class SourceRegistry {
 public:
  /// Registers a source; AlreadyExists on id clash.
  Status Register(DataSource source);

  /// Looks a source up by id.
  Result<DataSource> Get(const std::string& id) const;

  /// Adds to the ingested-record counter of `id`.
  Status RecordIngest(const std::string& id, int64_t count);

  /// All sources, ordered by id.
  std::vector<DataSource> All() const;

  int64_t num_sources() const { return static_cast<int64_t>(sources_.size()); }

 private:
  std::map<std::string, DataSource> sources_;
};

}  // namespace dt::ingest
