/// \file json.h
/// \brief JSON parsing into the hierarchical `storage::DocValue` model.
///
/// This is the entry point for semi-structured sources (the output of
/// a domain-specific parser, exported crawls, API feeds).

#pragma once

#include <string_view>

#include "common/status.h"
#include "storage/docvalue.h"

namespace dt::ingest {

/// \brief Parses one JSON value (object, array, or scalar).
///
/// Integers without fraction/exponent parse to Int; other numbers to
/// Double. Supports \uXXXX escapes (encoded as UTF-8; surrogate pairs
/// are combined). Trailing non-whitespace input is a Corruption error.
Result<storage::DocValue> ParseJson(std::string_view text);

/// \brief Parses newline-delimited JSON (one document per line; blank
/// lines skipped).
Result<std::vector<storage::DocValue>> ParseJsonLines(std::string_view text);

}  // namespace dt::ingest
