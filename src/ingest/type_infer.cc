#include "ingest/type_infer.h"

#include <cctype>

#include "common/strutil.h"

namespace dt::ingest {

relational::ValueType InferColumnType(
    const std::vector<std::string_view>& cells) {
  bool saw_any = false;
  bool all_int = true, all_num = true, all_bool = true;
  for (auto cell : cells) {
    std::string_view t = TrimView(cell);
    if (t.empty()) continue;
    saw_any = true;
    int64_t i;
    double d;
    bool is_int = ParseInt64(t, &i);
    bool is_num = is_int || ParseDouble(t, &d);
    std::string lower = ToLower(t);
    bool is_bool = (lower == "true" || lower == "false");
    all_int = all_int && is_int;
    all_num = all_num && is_num;
    all_bool = all_bool && is_bool;
  }
  if (!saw_any) return relational::ValueType::kString;
  if (all_bool) return relational::ValueType::kBool;
  if (all_int) return relational::ValueType::kInt;
  if (all_num) return relational::ValueType::kDouble;
  return relational::ValueType::kString;
}

relational::Value ParseValueAs(std::string_view cell,
                               relational::ValueType type) {
  std::string_view t = TrimView(cell);
  if (t.empty()) return relational::Value::Null();
  switch (type) {
    case relational::ValueType::kBool: {
      std::string lower = ToLower(t);
      if (lower == "true") return relational::Value::Bool(true);
      if (lower == "false") return relational::Value::Bool(false);
      break;
    }
    case relational::ValueType::kInt: {
      int64_t i;
      if (ParseInt64(t, &i)) return relational::Value::Int(i);
      break;
    }
    case relational::ValueType::kDouble: {
      double d;
      if (ParseDouble(t, &d)) return relational::Value::Double(d);
      break;
    }
    default:
      break;
  }
  return relational::Value::Str(std::string(t));
}

const char* SemanticTypeName(SemanticType t) {
  switch (t) {
    case SemanticType::kUnknown:
      return "unknown";
    case SemanticType::kInteger:
      return "integer";
    case SemanticType::kDecimal:
      return "decimal";
    case SemanticType::kCurrency:
      return "currency";
    case SemanticType::kDate:
      return "date";
    case SemanticType::kTime:
      return "time";
    case SemanticType::kPhone:
      return "phone";
    case SemanticType::kUrl:
      return "url";
    case SemanticType::kZipCode:
      return "zipcode";
    case SemanticType::kPercentage:
      return "percentage";
    case SemanticType::kFreeText:
      return "freetext";
    case SemanticType::kShortString:
      return "shortstring";
  }
  return "?";
}

namespace {

bool IsDigitByte(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}

bool LooksLikeDate(std::string_view s) {
  // m/d/yyyy or mm/dd/yyyy or yyyy-mm-dd or "Mar 4, 2013"-ish
  int digits = 0, seps = 0;
  char sep = 0;
  for (char c : s) {
    if (IsDigitByte(c)) {
      ++digits;
    } else if (c == '/' || c == '-' || c == '.') {
      if (sep == 0) sep = c;
      if (c == sep) ++seps;
    }
  }
  if (seps == 2 && digits >= 4 && digits <= 8 && s.size() <= 10) return true;
  // Month-name form.
  static const char* kMonths[] = {"jan", "feb", "mar", "apr", "may", "jun",
                                  "jul", "aug", "sep", "oct", "nov", "dec"};
  std::string lower = ToLower(s);
  for (const char* m : kMonths) {
    if (lower.rfind(m, 0) == 0 && digits >= 1 && digits <= 6) return true;
  }
  return false;
}

bool LooksLikeTime(std::string_view s) {
  std::string lower = ToLower(Trim(s));
  if (lower.empty()) return false;
  // "7pm", "7 pm", "19:30", "7:30pm"
  bool has_ampm = EndsWith(lower, "am") || EndsWith(lower, "pm");
  std::string_view core = lower;
  if (has_ampm) core = TrimView(core.substr(0, core.size() - 2));
  if (core.empty()) return false;
  int colons = 0;
  for (char c : core) {
    if (c == ':') {
      ++colons;
    } else if (!IsDigitByte(c)) {
      return false;
    }
  }
  if (colons > 2) return false;
  if (colons == 0 && !has_ampm) return false;  // bare number is not a time
  return core.size() <= 8;
}

bool LooksLikeCurrency(std::string_view s) {
  std::string t = Trim(s);
  if (t.empty()) return false;
  bool has_symbol = t[0] == '$' || StartsWith(t, "\xe2\x82\xac") /* € */ ||
                    StartsWith(t, "\xc2\xa3") /* £ */;
  std::string lower = ToLower(t);
  bool has_code = EndsWith(lower, "usd") || EndsWith(lower, "eur") ||
                  EndsWith(lower, "gbp") || EndsWith(lower, "dollars") ||
                  EndsWith(lower, "euros");
  if (!has_symbol && !has_code) return false;
  // There must be a number somewhere.
  for (char c : t) {
    if (IsDigitByte(c)) return true;
  }
  return false;
}

bool LooksLikePhone(std::string_view s) {
  int digits = 0;
  for (char c : s) {
    if (IsDigitByte(c)) {
      ++digits;
    } else if (c != '(' && c != ')' && c != '-' && c != ' ' && c != '+' &&
               c != '.') {
      return false;
    }
  }
  return digits >= 7 && digits <= 15;
}

bool LooksLikeUrl(std::string_view s) {
  std::string lower = ToLower(TrimView(s));
  return StartsWith(lower, "http://") || StartsWith(lower, "https://") ||
         StartsWith(lower, "www.");
}

bool LooksLikePercentage(std::string_view s) {
  std::string t = Trim(s);
  if (t.size() < 2 || t.back() != '%') return false;
  double d;
  return ParseDouble(std::string_view(t).substr(0, t.size() - 1), &d);
}

}  // namespace

SemanticType DetectSemanticType(std::string_view raw) {
  std::string_view s = TrimView(raw);
  if (s.empty()) return SemanticType::kUnknown;
  if (LooksLikeUrl(s)) return SemanticType::kUrl;
  if (LooksLikeCurrency(s)) return SemanticType::kCurrency;
  if (LooksLikePercentage(s)) return SemanticType::kPercentage;
  int64_t i;
  if (ParseInt64(s, &i)) {
    if (s.size() == 5 && IsDigits(s)) return SemanticType::kZipCode;
    return SemanticType::kInteger;
  }
  double d;
  if (ParseDouble(s, &d)) return SemanticType::kDecimal;
  if (LooksLikeDate(s)) return SemanticType::kDate;
  if (LooksLikeTime(s)) return SemanticType::kTime;
  if (LooksLikePhone(s)) return SemanticType::kPhone;
  size_t tokens = WordTokens(s).size();
  return tokens > 5 ? SemanticType::kFreeText : SemanticType::kShortString;
}

SemanticType DetectColumnSemanticType(const std::vector<std::string>& cells) {
  int counts[12] = {0};
  int non_empty = 0;
  size_t total_tokens = 0;
  for (const auto& c : cells) {
    SemanticType t = DetectSemanticType(c);
    if (t == SemanticType::kUnknown) continue;
    ++non_empty;
    ++counts[static_cast<int>(t)];
    total_tokens += WordTokens(c).size();
  }
  if (non_empty == 0) return SemanticType::kUnknown;
  int best = 0;
  for (int t = 1; t < 12; ++t) {
    if (counts[t] > counts[best]) best = t;
  }
  if (counts[best] * 2 > non_empty &&
      static_cast<SemanticType>(best) != SemanticType::kShortString &&
      static_cast<SemanticType>(best) != SemanticType::kFreeText) {
    return static_cast<SemanticType>(best);
  }
  double avg_tokens = static_cast<double>(total_tokens) / non_empty;
  return avg_tokens > 5.0 ? SemanticType::kFreeText
                          : SemanticType::kShortString;
}

}  // namespace dt::ingest
