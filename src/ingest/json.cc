#include "ingest/json.h"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "common/strutil.h"

namespace dt::ingest {

namespace {

using storage::DocValue;

class JsonParser {
 public:
  explicit JsonParser(std::string_view text) : text_(text) {}

  Result<DocValue> Parse() {
    SkipWs();
    DT_ASSIGN_OR_RETURN(DocValue v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON value");
    }
    return v;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::Corruption("JSON parse error at offset " +
                              std::to_string(pos_) + ": " + msg);
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<DocValue> ParseValue() {
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{':
        return ParseObject();
      case '[':
        return ParseArray();
      case '"': {
        DT_ASSIGN_OR_RETURN(std::string s, ParseString());
        return DocValue::Str(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return DocValue::Bool(true);
        }
        return Err("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return DocValue::Bool(false);
        }
        return Err("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return DocValue::Null();
        }
        return Err("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<DocValue> ParseObject() {
    ++pos_;  // '{'
    DocValue obj = DocValue::Object();
    SkipWs();
    if (Consume('}')) return obj;
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected string key");
      }
      DT_ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      SkipWs();
      DT_ASSIGN_OR_RETURN(DocValue val, ParseValue());
      obj.Add(std::move(key), std::move(val));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return obj;
      return Err("expected ',' or '}'");
    }
  }

  Result<DocValue> ParseArray() {
    ++pos_;  // '['
    DocValue arr = DocValue::Array();
    SkipWs();
    if (Consume(']')) return arr;
    while (true) {
      SkipWs();
      DT_ASSIGN_OR_RETURN(DocValue val, ParseValue());
      arr.Push(std::move(val));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return arr;
      return Err("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // opening quote
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return out;
      }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= text_.size()) return Err("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"':
            out.push_back('"');
            break;
          case '\\':
            out.push_back('\\');
            break;
          case '/':
            out.push_back('/');
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            DT_ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            // Combine surrogate pairs.
            if (cp >= 0xD800 && cp <= 0xDBFF && pos_ + 1 < text_.size() &&
                text_[pos_] == '\\' && text_[pos_ + 1] == 'u') {
              pos_ += 2;
              DT_ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
              if (lo >= 0xDC00 && lo <= 0xDFFF) {
                cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
              }
            }
            AppendUtf8(cp, &out);
            break;
          }
          default:
            return Err("unknown escape");
        }
        continue;
      }
      out.push_back(c);
      ++pos_;
    }
    return Err("unterminated string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Err("bad \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9')
        v += c - '0';
      else if (c >= 'a' && c <= 'f')
        v += c - 'a' + 10;
      else if (c >= 'A' && c <= 'F')
        v += c - 'A' + 10;
      else
        return Err("bad hex digit");
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<DocValue> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    bool has_digits = false;
    while (pos_ < text_.size() &&
           std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
      has_digits = true;
    }
    bool is_double = false;
    if (Consume('.')) {
      is_double = true;
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
        has_digits = true;
      }
    }
    if (pos_ < text_.size() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_double = true;
      ++pos_;
      if (pos_ < text_.size() && (text_[pos_] == '+' || text_[pos_] == '-')) {
        ++pos_;
      }
      while (pos_ < text_.size() &&
             std::isdigit(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      }
    }
    if (!has_digits) return Err("invalid number");
    std::string_view tok = text_.substr(start, pos_ - start);
    if (!is_double) {
      int64_t i;
      if (ParseInt64(tok, &i)) return DocValue::Int(i);
    }
    double d;
    if (ParseDouble(tok, &d)) return DocValue::Double(d);
    return Err("invalid number");
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<storage::DocValue> ParseJson(std::string_view text) {
  return JsonParser(text).Parse();
}

Result<std::vector<storage::DocValue>> ParseJsonLines(std::string_view text) {
  std::vector<storage::DocValue> out;
  size_t start = 0;
  while (start <= text.size()) {
    size_t nl = text.find('\n', start);
    std::string_view line = (nl == std::string_view::npos)
                                ? text.substr(start)
                                : text.substr(start, nl - start);
    if (!TrimView(line).empty()) {
      DT_ASSIGN_OR_RETURN(storage::DocValue v, ParseJson(line));
      out.push_back(std::move(v));
    }
    if (nl == std::string_view::npos) break;
    start = nl + 1;
  }
  return out;
}

}  // namespace dt::ingest
