/// \file type_infer.h
/// \brief Storage-type and semantic-type inference over string columns.
///
/// Storage types drive the relational landing zone; semantic types
/// (currency, date, phone, URL, ...) feed both the value-based schema
/// matcher and the cleaning/transformation engine.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "relational/value.h"

namespace dt::ingest {

/// \brief Infers the narrowest storage type covering every non-empty
/// cell: all ints -> kInt; ints+doubles -> kDouble; "true"/"false" ->
/// kBool; anything else -> kString. All-empty columns are kString.
relational::ValueType InferColumnType(
    const std::vector<std::string_view>& cells);

/// Parses a single cell as `type`, falling back to string (never fails;
/// empty cells become Null).
relational::Value ParseValueAs(std::string_view cell,
                               relational::ValueType type);

/// \brief Domain-level interpretation of a string column.
enum class SemanticType {
  kUnknown = 0,
  kInteger,      ///< digits, possibly signed
  kDecimal,      ///< decimal number
  kCurrency,     ///< "$27", "27 USD", "€35.50"
  kDate,         ///< "3/4/2013", "2013-03-04", "Mar 4, 2013"
  kTime,         ///< "7pm", "19:30"
  kPhone,        ///< "(212) 239-6200"
  kUrl,          ///< "http://..."
  kZipCode,      ///< 5-digit US zip
  kPercentage,   ///< "93%"
  kFreeText,     ///< long prose (avg > 5 tokens)
  kShortString,  ///< everything else
};

const char* SemanticTypeName(SemanticType t);

/// Classifies a single string.
SemanticType DetectSemanticType(std::string_view s);

/// Majority-vote classification of a column (ignoring empties); returns
/// kUnknown for an all-empty column. A type wins with >50% of non-empty
/// cells, otherwise kShortString/kFreeText based on average token count.
SemanticType DetectColumnSemanticType(const std::vector<std::string>& cells);

}  // namespace dt::ingest
