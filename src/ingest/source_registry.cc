#include "ingest/source_registry.h"

namespace dt::ingest {

const char* SourceKindName(SourceKind k) {
  switch (k) {
    case SourceKind::kStructured:
      return "structured";
    case SourceKind::kSemiStructured:
      return "semi-structured";
    case SourceKind::kText:
      return "text";
  }
  return "?";
}

Status SourceRegistry::Register(DataSource source) {
  if (sources_.count(source.id) > 0) {
    return Status::AlreadyExists("source " + source.id +
                                 " already registered");
  }
  sources_.emplace(source.id, std::move(source));
  return Status::OK();
}

Result<DataSource> SourceRegistry::Get(const std::string& id) const {
  auto it = sources_.find(id);
  if (it == sources_.end()) {
    return Status::NotFound("source " + id + " not registered");
  }
  return it->second;
}

Status SourceRegistry::RecordIngest(const std::string& id, int64_t count) {
  auto it = sources_.find(id);
  if (it == sources_.end()) {
    return Status::NotFound("source " + id + " not registered");
  }
  it->second.records_ingested += count;
  return Status::OK();
}

std::vector<DataSource> SourceRegistry::All() const {
  std::vector<DataSource> out;
  out.reserve(sources_.size());
  for (const auto& [_, s] : sources_) out.push_back(s);
  return out;
}

}  // namespace dt::ingest
