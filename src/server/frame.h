/// \file frame.h
/// \brief The "DTW1" wire frame: how query documents travel over a
/// socket.
///
/// Every message is one frame:
///
///   offset  size  field
///        0     4  magic     "DTW1" (0x31575444 little-endian)
///        4     2  version   kFrameVersion
///        6     2  flags     reserved, must be zero
///        8     4  payload_len  bytes of payload that follow the header
///       12     8  checksum  FNV-1a over the payload, seeded per
///                           protocol version (HashCombine of the
///                           "DTW1v<n>" salt hash and the payload hash)
///       20     …  payload   one `DocValue` in storage-codec encoding
///
/// The payload reuses `storage::EncodeDocValue` — the same versioned,
/// bounds-checked, never-crash "DTB1" discipline snapshots use — so
/// frame decoding inherits its corruption guarantees. `TryDecodeFrame`
/// is incremental: a prefix of a valid frame reports "need more bytes"
/// (OK with `*frame_size == 0`), while a bad magic/version/flags, an
/// oversized declared length (rejected from the header alone, before
/// the payload even arrives), a checksum mismatch, or a malformed
/// payload is `kCorruption` — malicious bytes never crash and never
/// stall a session waiting for data that can't redeem them.
///
/// On top of the raw frame sit the two envelope documents of the RPC
/// protocol: requests `{id, req}` and responses `{id, code, message,
/// resp}`, with `id` matching pipelined responses (which may arrive
/// out of order) back to their requests.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "common/status.h"
#include "query/request.h"
#include "storage/docvalue.h"

namespace dt::server {

/// "DTW1" little-endian.
inline constexpr uint32_t kFrameMagic = 0x31575444u;
/// Bumped when the frame layout changes; decoders reject mismatches.
inline constexpr uint16_t kFrameVersion = 1;
/// Bytes before the payload: magic + version + flags + len + checksum.
inline constexpr size_t kFrameHeaderSize = 4 + 2 + 2 + 4 + 8;
/// Default cap on one frame's payload; per-session configurable.
inline constexpr size_t kDefaultMaxFrameSize = 16u << 20;

/// \brief Checksum of `payload` as stored in the frame header: the
/// protocol-version salt hash combined with the payload's FNV-1a, so a
/// frame of one protocol version never verifies as another's.
uint64_t FrameChecksum(std::string_view payload);

/// \brief Appends one complete frame carrying `payload` to `*out`.
/// `kOutOfRange` when the encoded payload would exceed
/// `max_frame_size` (the encoder refuses to build frames every decoder
/// rejects); payload encoding errors pass through.
Status EncodeFrame(const storage::DocValue& payload, size_t max_frame_size,
                   std::string* out);

/// \brief Incremental decode of the frame at the front of `buf`.
///
///   * complete frame: OK, `*payload` filled, `*frame_size` = bytes
///     consumed (header + payload) — the caller drops that prefix.
///   * prefix of a possibly-valid frame: OK with `*frame_size == 0` —
///     read more bytes and retry.
///   * anything else: `kCorruption` — the stream is beyond recovery
///     (framing is lost), close the session.
Status TryDecodeFrame(std::string_view buf, size_t max_frame_size,
                      storage::DocValue* payload, size_t* frame_size);

// ---- RPC envelopes -----------------------------------------------------

/// One request as carried by a frame: `{id, req}`.
struct RequestEnvelope {
  /// Caller-chosen correlation id echoed on the response.
  uint64_t id = 0;
  query::QueryRequest request;
};

/// One response as carried by a frame: `{id, code, message, resp}`.
/// `resp` is present exactly when `status` is OK.
struct ResponseEnvelope {
  uint64_t id = 0;
  Status status;
  query::QueryResponse response;
};

storage::DocValue EncodeRequestEnvelope(const RequestEnvelope& env);
Result<RequestEnvelope> DecodeRequestEnvelope(const storage::DocValue& v);

storage::DocValue EncodeResponseEnvelope(const ResponseEnvelope& env);
Result<ResponseEnvelope> DecodeResponseEnvelope(const storage::DocValue& v);

}  // namespace dt::server
