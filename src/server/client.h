/// \file client.h
/// \brief `DtClient` — blocking TCP client for the DTW1 RPC protocol.
///
/// One client owns one connection. `Call` is the simple path:
/// send one request, wait for its response. Pipelining is explicit:
/// `Send` queues any number of requests without waiting and `Receive`
/// pulls responses as they arrive; responses may come back out of
/// order, so `Call` stashes non-matching ids and hands them to later
/// `Receive`/`Call` calls instead of dropping them.
///
/// A client is NOT thread-safe; give each thread its own connection
/// (sessions are cheap and stateless — continuation tokens travel in
/// responses, so any connection can resume any stream).

#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "common/status.h"
#include "server/frame.h"

namespace dt::server {

struct ClientOptions {
  /// Per-frame payload cap (mirror of the server's).
  size_t max_frame_size = kDefaultMaxFrameSize;
};

class DtClient {
 public:
  /// Connects to `host:port` (IPv4 literal host, e.g. "127.0.0.1").
  static Result<std::unique_ptr<DtClient>> Connect(const std::string& host,
                                                   uint16_t port,
                                                   ClientOptions opts = {});

  ~DtClient();
  DtClient(const DtClient&) = delete;
  DtClient& operator=(const DtClient&) = delete;

  /// \brief Pipelined send: frames the request, writes it, returns the
  /// correlation id without waiting for the response.
  Result<uint64_t> Send(const query::QueryRequest& req);

  /// \brief Next response off the wire (or from the out-of-order
  /// stash). Blocks until a full frame arrives; errors on connection
  /// loss or a corrupt/oversized frame.
  Result<ResponseEnvelope> Receive();

  /// \brief `Send` + wait for exactly that request's response.
  /// Responses for other pipelined ids arriving first are stashed, not
  /// lost. The outer `Result` is transport failure; the returned
  /// envelope's `status` is the server's verdict, surfaced here as the
  /// error when non-OK.
  Result<query::QueryResponse> Call(const query::QueryRequest& req);

  void Close();

 private:
  explicit DtClient(int fd, ClientOptions opts);

  /// Blocks until a response arrives: the one with `want_id` when
  /// `match_id` (others are stashed), else the next in arrival order
  /// (stash served first).
  Result<ResponseEnvelope> ReceiveInternal(uint64_t want_id, bool match_id);

  int fd_ = -1;
  ClientOptions opts_;
  uint64_t next_id_ = 1;
  std::string inbuf_;
  /// Out-of-order responses parked for their `Receive`/`Call`.
  std::map<uint64_t, ResponseEnvelope> stashed_;
};

}  // namespace dt::server
