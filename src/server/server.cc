#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "fusion/data_tamer.h"

namespace dt::server {

namespace {

int64_t NowMs() {
  return std::chrono::duration_cast<std::chrono::milliseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::IOError(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::OK();
}

/// One connection. The event loop owns `fd`, `inbuf` and the idle/
/// close bookkeeping; workers only touch the locked outbox and the
/// atomics, holding the session alive through the shared_ptr they
/// captured at admission.
struct Session {
  explicit Session(int fd_in) : fd(fd_in) {}
  const int fd;
  std::string inbuf;
  int64_t last_active_ms = 0;
  /// Framing lost (corrupt frame): answer, flush, then close.
  bool close_after_flush = false;
  std::atomic<int> inflight{0};
  bool closed = false;  // guarded by out_mu
  std::mutex out_mu;
  std::string outbox;  // guarded by out_mu
};

using SessionPtr = std::shared_ptr<Session>;

}  // namespace

struct DtServer::Impl {
  const fusion::DataTamer* tamer;
  /// Non-null only for the read-write constructor: the same facade,
  /// mutably — what kIngest executes through.
  fusion::DataTamer* mutable_tamer = nullptr;
  ServerOptions opts;

  int listen_fd = -1;
  int wake_r = -1, wake_w = -1;
  std::thread loop_thread;
  std::unique_ptr<ThreadPool> pool;
  std::atomic<bool> running{false};
  bool stopped = false;

  /// Admitted (queued or executing) requests — the admission bound.
  std::atomic<size_t> pending{0};
  /// Serializes facade access: the const query surface is documented
  /// not thread-safe, so workers take turns executing while the
  /// network side keeps overlapping reads, writes and decoding.
  std::mutex tamer_mu;

  std::unordered_map<int, SessionPtr> sessions;  // loop thread only

  std::atomic<uint64_t> sessions_accepted{0};
  std::atomic<uint64_t> sessions_rejected{0};
  std::atomic<uint64_t> requests_executed{0};
  std::atomic<uint64_t> requests_rejected{0};
  std::atomic<uint64_t> corrupt_frames{0};
  std::atomic<uint64_t> idle_closes{0};
  std::atomic<uint64_t> peer_disconnects{0};
  std::atomic<uint64_t> planner_plans{0};
  std::atomic<uint64_t> planner_planning_ns{0};
  std::atomic<uint64_t> planner_entries_counted{0};
  std::atomic<uint64_t> planner_estimate_plans{0};
  std::atomic<uint64_t> ingest_requests{0};
  std::atomic<uint64_t> ingest_records{0};
  std::atomic<uint64_t> ingest_clusters_upserted{0};
  std::atomic<uint64_t> ingest_clusters_removed{0};

  void Wake() {
    char b = 1;
    // A full pipe already guarantees a pending wakeup.
    (void)!write(wake_w, &b, 1);
  }

  void QueueResponse(const SessionPtr& s, const ResponseEnvelope& env) {
    std::string frame;
    Status st = EncodeFrame(EncodeResponseEnvelope(env), opts.max_frame_size,
                            &frame);
    if (!st.ok()) {
      // The result didn't fit a frame; the tiny error envelope always
      // will.
      ResponseEnvelope err;
      err.id = env.id;
      err.status = Status::OutOfRange("response exceeds max frame size");
      frame.clear();
      EncodeFrame(EncodeResponseEnvelope(err), opts.max_frame_size, &frame)
          .ok();
    }
    {
      std::lock_guard<std::mutex> lock(s->out_mu);
      if (!s->closed) s->outbox += frame;
    }
    Wake();
  }

  /// Answers `id` with a failure without touching admission counters.
  void QueueError(const SessionPtr& s, uint64_t id, Status st) {
    ResponseEnvelope env;
    env.id = id;
    env.status = std::move(st);
    QueueResponse(s, env);
  }

  void ExecuteTask(const SessionPtr& s, const RequestEnvelope& env) {
    if (opts.debug_execution_delay_ms > 0) {
      std::this_thread::sleep_for(
          std::chrono::milliseconds(opts.debug_execution_delay_ms));
    }
    ResponseEnvelope out;
    out.id = env.id;
    if (running.load()) {
      std::lock_guard<std::mutex> lock(tamer_mu);
      const bool is_ingest = env.request.op == query::QueryOp::kIngest;
      Result<query::QueryResponse> r =
          is_ingest && mutable_tamer == nullptr
              ? Result<query::QueryResponse>(Status::InvalidArgument(
                    "server is read-only: ingest rejected"))
              : (is_ingest ? mutable_tamer->ExecuteMutable(env.request)
                           : tamer->Execute(env.request));
      if (r.ok()) {
        if (is_ingest) {
          ingest_requests.fetch_add(1);
          ingest_records.fetch_add(static_cast<uint64_t>(r->ingested));
          ingest_clusters_upserted.fetch_add(
              static_cast<uint64_t>(r->ingest_clusters_upserted));
          ingest_clusters_removed.fetch_add(
              static_cast<uint64_t>(r->ingest_clusters_removed));
        }
        // A request that planned something reports nonzero planning
        // time; ops that never touch the planner (inserts, stats)
        // leave the whole block untouched.
        if (r->stats.planning_ns > 0) {
          planner_plans.fetch_add(1);
          planner_planning_ns.fetch_add(
              static_cast<uint64_t>(r->stats.planning_ns));
          planner_entries_counted.fetch_add(
              static_cast<uint64_t>(r->stats.plan_entries_counted));
          if (r->stats.estimate_exact == 0) planner_estimate_plans.fetch_add(1);
        }
        out.response = std::move(*r);
      } else {
        out.status = r.status();
      }
    } else {
      out.status = Status::Unavailable("server shutting down");
    }
    requests_executed.fetch_add(1);
    QueueResponse(s, out);
    s->inflight.fetch_sub(1);
    pending.fetch_sub(1);
  }

  void HandleFrame(const SessionPtr& s, const storage::DocValue& payload) {
    Result<RequestEnvelope> env = DecodeRequestEnvelope(payload);
    if (!env.ok()) {
      // Frame boundaries are intact, so the session survives a bad
      // envelope — the peer just gets the shape error back.
      QueueError(s, 0, env.status());
      return;
    }
    if (s->inflight.load() >= opts.max_inflight_per_session) {
      requests_rejected.fetch_add(1);
      QueueError(s, env->id, Status::Unavailable("session pipeline full"));
      return;
    }
    // Admission control: a full execution queue answers kUnavailable
    // instead of buffering without bound (or silently dropping).
    size_t cur = pending.load();
    do {
      if (cur >= opts.max_pending_requests) {
        requests_rejected.fetch_add(1);
        QueueError(s, env->id, Status::Unavailable("overloaded"));
        return;
      }
    } while (!pending.compare_exchange_weak(cur, cur + 1));
    s->inflight.fetch_add(1);
    RequestEnvelope req = std::move(*env);
    SessionPtr sp = s;
    pool->Schedule([this, sp, req]() { ExecuteTask(sp, req); });
  }

  void ParseFrames(const SessionPtr& s) {
    while (true) {
      storage::DocValue payload;
      size_t consumed = 0;
      Status st =
          TryDecodeFrame(s->inbuf, opts.max_frame_size, &payload, &consumed);
      if (!st.ok()) {
        // Framing is lost; answer once, flush, close.
        corrupt_frames.fetch_add(1);
        s->inbuf.clear();
        QueueError(s, 0, st);
        s->close_after_flush = true;
        return;
      }
      if (consumed == 0) return;  // need more bytes
      s->inbuf.erase(0, consumed);
      HandleFrame(s, payload);
    }
  }

  void CloseSession(const SessionPtr& s) {
    {
      std::lock_guard<std::mutex> lock(s->out_mu);
      s->closed = true;
      s->outbox.clear();
    }
    shutdown(s->fd, SHUT_RDWR);
    close(s->fd);
    sessions.erase(s->fd);
  }

  /// How a session's read side ended this poll round.
  enum class ReadOutcome {
    kOk,     ///< still open (drained to EAGAIN)
    kEof,    ///< clean close: drain owed responses, then close
    kError,  ///< transport is dead (ECONNRESET, ...): close now
  };

  /// Reads until EAGAIN and parses complete frames. A clean EOF keeps
  /// the session draining (workers may still owe responses); a fatal
  /// transport error reports kError so the loop tears the session
  /// down immediately — nothing sent to a reset connection arrives,
  /// and a draining zombie would pin its slot until idle reaping.
  ReadOutcome ReadSession(const SessionPtr& s) {
    char buf[64 * 1024];
    while (true) {
      ssize_t n = recv(s->fd, buf, sizeof buf, 0);
      // Capture errno before anything (NowMs, parsing) can clobber it.
      const int err = n < 0 ? errno : 0;
      if (n > 0) {
        s->inbuf.append(buf, static_cast<size_t>(n));
        s->last_active_ms = NowMs();
        continue;
      }
      if (n == 0) return ReadOutcome::kEof;  // peer closed cleanly
      if (err == EAGAIN || err == EWOULDBLOCK) break;
      if (err == EINTR) continue;
      return ReadOutcome::kError;  // ECONNRESET, ETIMEDOUT, ...
    }
    ParseFrames(s);
    return ReadOutcome::kOk;
  }

  /// Flushes as much buffered output as the socket accepts; false when
  /// the session should close now (fatal write error, or fully drained
  /// after the read side ended).
  bool FlushSession(const SessionPtr& s) {
    std::string chunk;
    {
      std::lock_guard<std::mutex> lock(s->out_mu);
      chunk.swap(s->outbox);
    }
    size_t off = 0;
    while (off < chunk.size()) {
      ssize_t n =
          send(s->fd, chunk.data() + off, chunk.size() - off, MSG_NOSIGNAL);
      const int err = n < 0 ? errno : 0;
      if (n > 0) {
        off += static_cast<size_t>(n);
        s->last_active_ms = NowMs();
        continue;
      }
      // A 0-byte send sets no errno; checking one here would read a
      // stale value and misclassify the socket. Treat it like a full
      // buffer and retry on the next POLLOUT.
      if (n == 0 || err == EAGAIN || err == EWOULDBLOCK) break;
      if (err == EINTR) continue;
      // EPIPE / ECONNRESET / ...: the peer is gone and the remaining
      // output is undeliverable — close now instead of draining.
      peer_disconnects.fetch_add(1);
      return false;
    }
    bool has_output = false;
    if (off < chunk.size()) {
      // Unwritten remainder goes back to the front; workers only ever
      // append.
      std::lock_guard<std::mutex> lock(s->out_mu);
      s->outbox.insert(0, chunk, off, std::string::npos);
      has_output = true;
    } else {
      std::lock_guard<std::mutex> lock(s->out_mu);
      has_output = !s->outbox.empty();
    }
    return !(s->close_after_flush && !has_output && s->inflight.load() == 0);
  }

  void Accept() {
    while (true) {
      int fd = accept(listen_fd, nullptr, nullptr);
      if (fd < 0) {
        if (errno == EINTR) continue;
        break;  // EAGAIN and transient errors alike: retry next wake
      }
      if (static_cast<int>(sessions.size()) >= opts.max_sessions) {
        sessions_rejected.fetch_add(1);
        close(fd);
        continue;
      }
      if (!SetNonBlocking(fd).ok()) {
        close(fd);
        continue;
      }
      auto s = std::make_shared<Session>(fd);
      s->last_active_ms = NowMs();
      sessions.emplace(fd, std::move(s));
      sessions_accepted.fetch_add(1);
    }
  }

  void Loop() {
    std::vector<pollfd> fds;
    std::vector<SessionPtr> polled;
    std::vector<SessionPtr> snapshot;
    while (running.load()) {
      fds.clear();
      polled.clear();
      fds.push_back({listen_fd, POLLIN, 0});
      fds.push_back({wake_r, POLLIN, 0});
      for (auto& [fd, s] : sessions) {
        // A draining session (read side done, workers still owe
        // responses) is left out of the poll set entirely — the wake
        // pipe fires when its output arrives, so no EOF busy-spin.
        short events = 0;
        if (!s->close_after_flush) events |= POLLIN;
        {
          std::lock_guard<std::mutex> lock(s->out_mu);
          if (!s->outbox.empty()) events |= POLLOUT;
        }
        if (events == 0) continue;
        fds.push_back({fd, events, 0});
        polled.push_back(s);
      }
      int rc = poll(fds.data(), static_cast<nfds_t>(fds.size()), 200);
      if (rc < 0 && errno != EINTR) break;

      if (fds[1].revents & POLLIN) {
        char drain[256];
        while (read(wake_r, drain, sizeof drain) > 0) {
        }
      }
      if (fds[0].revents & (POLLIN | POLLERR)) Accept();

      for (size_t i = 0; i < polled.size(); ++i) {
        const SessionPtr& s = polled[i];
        if (sessions.count(s->fd) == 0) continue;
        short re = fds[i + 2].revents;
        if ((re & (POLLIN | POLLHUP | POLLERR)) && !s->close_after_flush) {
          switch (ReadSession(s)) {
            case ReadOutcome::kOk:
              break;
            case ReadOutcome::kEof:
              s->close_after_flush = true;
              break;
            case ReadOutcome::kError:
              peer_disconnects.fetch_add(1);
              CloseSession(s);
              break;
          }
        }
      }

      // Maintenance pass over every session: flush whatever output is
      // pending (a worker may have finished between poll() calls),
      // close what finished draining, reap the idle.
      snapshot.clear();
      for (auto& [fd, s] : sessions) snapshot.push_back(s);
      const int64_t now = NowMs();
      for (const SessionPtr& s : snapshot) {
        if (sessions.count(s->fd) == 0) continue;
        if (!FlushSession(s)) {
          CloseSession(s);
          continue;
        }
        if (opts.idle_timeout_ms > 0 && !s->close_after_flush &&
            s->inflight.load() == 0 &&
            now - s->last_active_ms > opts.idle_timeout_ms) {
          bool quiet;
          {
            std::lock_guard<std::mutex> lock(s->out_mu);
            quiet = s->outbox.empty();
          }
          if (quiet) {
            idle_closes.fetch_add(1);
            CloseSession(s);
          }
        }
      }
    }
    std::vector<SessionPtr> all;
    for (auto& [fd, s] : sessions) all.push_back(s);
    for (const auto& s : all) CloseSession(s);
    close(listen_fd);
    listen_fd = -1;
  }
};

DtServer::DtServer(const fusion::DataTamer* tamer, ServerOptions opts)
    : impl_(std::make_unique<Impl>()) {
  impl_->tamer = tamer;
  impl_->opts = std::move(opts);
}

DtServer::DtServer(fusion::DataTamer* tamer, ServerOptions opts)
    : DtServer(static_cast<const fusion::DataTamer*>(tamer),
               std::move(opts)) {
  impl_->mutable_tamer = tamer;
}

DtServer::~DtServer() { Stop(); }

Status DtServer::Start() {
  Impl& im = *impl_;
  if (im.stopped || im.running.load()) {
    return Status::InvalidArgument("server already started");
  }
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(im.opts.port);
  if (inet_pton(AF_INET, im.opts.bind_address.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad bind address (IPv4 literal "
                                   "expected): " +
                                   im.opts.bind_address);
  }
  if (bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st = Status::IOError(std::string("bind: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  if (listen(fd, 128) < 0) {
    Status st = Status::IOError(std::string("listen: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  socklen_t addr_len = sizeof addr;
  if (getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &addr_len) < 0) {
    Status st =
        Status::IOError(std::string("getsockname: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  port_ = ntohs(addr.sin_port);
  Status st = SetNonBlocking(fd);
  if (!st.ok()) {
    close(fd);
    return st;
  }
  int pipefd[2];
  if (pipe(pipefd) < 0) {
    close(fd);
    return Status::IOError(std::string("pipe: ") + std::strerror(errno));
  }
  SetNonBlocking(pipefd[0]).ok();
  SetNonBlocking(pipefd[1]).ok();
  im.listen_fd = fd;
  im.wake_r = pipefd[0];
  im.wake_w = pipefd[1];
  // ThreadPool counts the (non-participating) caller, so +1 yields
  // `num_workers` spawned queue workers.
  im.pool = std::make_unique<ThreadPool>(std::max(1, im.opts.num_workers) + 1);
  im.running.store(true);
  im.loop_thread = std::thread([&im] { im.Loop(); });
  return Status::OK();
}

void DtServer::Stop() {
  Impl& im = *impl_;
  if (im.stopped) return;
  im.stopped = true;
  im.running.store(false);
  im.Wake();
  if (im.loop_thread.joinable()) im.loop_thread.join();
  // ThreadPool's destructor runs queued tasks to completion; their
  // responses land in closed sessions' (cleared) outboxes and their
  // wakeups hit the still-open pipe, both harmless.
  im.pool.reset();
  if (im.wake_r >= 0) close(im.wake_r);
  if (im.wake_w >= 0) close(im.wake_w);
  im.wake_r = im.wake_w = -1;
  // Every request acknowledged over the wire must be on disk before
  // the process can exit (group/async modes may hold a synced-behind
  // tail). Workers are joined, so this cannot race an append.
  if (im.tamer != nullptr) {
    Status st = im.tamer->FlushDurability();
    if (!st.ok()) {
      DT_LOG(Error) << "WAL flush on server stop failed: " << st.ToString();
    }
  }
}

ServerStats DtServer::stats() const {
  const Impl& im = *impl_;
  ServerStats out;
  out.sessions_accepted = im.sessions_accepted.load();
  out.sessions_rejected = im.sessions_rejected.load();
  out.requests_executed = im.requests_executed.load();
  out.requests_rejected = im.requests_rejected.load();
  out.corrupt_frames = im.corrupt_frames.load();
  out.idle_closes = im.idle_closes.load();
  out.peer_disconnects = im.peer_disconnects.load();
  out.planner_stats_plans = im.planner_plans.load();
  out.planner_stats_planning_ns = im.planner_planning_ns.load();
  out.planner_stats_entries_counted = im.planner_entries_counted.load();
  out.planner_stats_estimate_plans = im.planner_estimate_plans.load();
  out.ingest_requests = im.ingest_requests.load();
  out.ingest_records = im.ingest_records.load();
  out.ingest_clusters_upserted = im.ingest_clusters_upserted.load();
  out.ingest_clusters_removed = im.ingest_clusters_removed.load();
  if (im.tamer != nullptr) out.durability = im.tamer->durability_stats();
  return out;
}

}  // namespace dt::server
