#include "server/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dt::server {

DtClient::DtClient(int fd, ClientOptions opts) : fd_(fd), opts_(opts) {}

DtClient::~DtClient() { Close(); }

void DtClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<DtClient>> DtClient::Connect(const std::string& host,
                                                    uint16_t port,
                                                    ClientOptions opts) {
  int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof addr);
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad host (IPv4 literal expected): " +
                                   host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    Status st =
        Status::IOError(std::string("connect: ") + std::strerror(errno));
    close(fd);
    return st;
  }
  return std::unique_ptr<DtClient>(new DtClient(fd, opts));
}

Result<uint64_t> DtClient::Send(const query::QueryRequest& req) {
  if (fd_ < 0) return Status::IOError("client closed");
  RequestEnvelope env;
  env.id = next_id_++;
  env.request = req;
  std::string frame;
  DT_RETURN_NOT_OK(
      EncodeFrame(EncodeRequestEnvelope(env), opts_.max_frame_size, &frame));
  size_t off = 0;
  while (off < frame.size()) {
    ssize_t n = send(fd_, frame.data() + off, frame.size() - off, MSG_NOSIGNAL);
    if (n > 0) {
      off += static_cast<size_t>(n);
      continue;
    }
    if (errno == EINTR) continue;
    Status st = Status::IOError(std::string("send: ") + std::strerror(errno));
    Close();
    return st;
  }
  return env.id;
}

Result<ResponseEnvelope> DtClient::ReceiveInternal(uint64_t want_id,
                                                   bool match_id) {
  if (match_id) {
    auto it = stashed_.find(want_id);
    if (it != stashed_.end()) {
      ResponseEnvelope env = std::move(it->second);
      stashed_.erase(it);
      return env;
    }
  } else if (!stashed_.empty()) {
    auto it = stashed_.begin();
    ResponseEnvelope env = std::move(it->second);
    stashed_.erase(it);
    return env;
  }
  if (fd_ < 0) return Status::IOError("client closed");
  while (true) {
    storage::DocValue payload;
    size_t consumed = 0;
    DT_RETURN_NOT_OK(
        TryDecodeFrame(inbuf_, opts_.max_frame_size, &payload, &consumed));
    if (consumed > 0) {
      inbuf_.erase(0, consumed);
      DT_ASSIGN_OR_RETURN(ResponseEnvelope env,
                          DecodeResponseEnvelope(payload));
      if (!match_id || env.id == want_id) return env;
      stashed_.emplace(env.id, std::move(env));
      continue;
    }
    char buf[64 * 1024];
    ssize_t n = recv(fd_, buf, sizeof buf, 0);
    if (n > 0) {
      inbuf_.append(buf, static_cast<size_t>(n));
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    Status st = n == 0 ? Status::IOError("connection closed by server")
                       : Status::IOError(std::string("recv: ") +
                                         std::strerror(errno));
    Close();
    return st;
  }
}

Result<ResponseEnvelope> DtClient::Receive() {
  return ReceiveInternal(0, /*match_id=*/false);
}

Result<query::QueryResponse> DtClient::Call(const query::QueryRequest& req) {
  DT_ASSIGN_OR_RETURN(uint64_t id, Send(req));
  DT_ASSIGN_OR_RETURN(ResponseEnvelope env,
                      ReceiveInternal(id, /*match_id=*/true));
  if (!env.status.ok()) return env.status;
  return std::move(env.response);
}

}  // namespace dt::server
