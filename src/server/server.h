/// \file server.h
/// \brief `DtServer` — the network serving layer: a poll()-based
/// socket server speaking the DTW1 frame protocol over TCP, executing
/// `QueryRequest`s against a `DataTamer` facade.
///
/// Architecture:
///
///   * One event-loop thread owns every socket: it accepts
///     connections, reads bytes into per-session buffers, splits
///     frames, and flushes per-session outboxes. No worker ever
///     touches a file descriptor.
///   * A fixed worker pool (the repo's `ThreadPool`) executes
///     requests. Facade access is serialized behind one mutex — the
///     facade's const query surface is documented not thread-safe —
///     so concurrency buys pipelining and overlap of network and
///     execution, not parallel execution of one facade.
///   * Workers hand finished responses back through the session's
///     locked outbox and wake the loop via a self-pipe.
///
/// Sessions are stateless between requests: pagination state rides in
/// `FindPage` continuation tokens inside responses, and the storage
/// layer's epoch-pinned version semantics reject stale tokens cleanly
/// across server restarts (a new process is a new collection
/// incarnation). Clients may pipeline: many requests can be in flight
/// per connection, responses match by envelope id and may return out
/// of order.
///
/// Overload never drops silently. Admission control answers with
/// `kUnavailable` ("overloaded" when the global execution queue is
/// full, "session pipeline full" past the per-session in-flight cap);
/// a corrupt frame gets a final `kCorruption` response before the
/// session closes (framing is unrecoverable); idle sessions past the
/// timeout are closed.

#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>

#include "common/status.h"
#include "server/frame.h"
#include "storage/recovery.h"

namespace dt::fusion {
class DataTamer;
}

namespace dt::server {

struct ServerOptions {
  /// IPv4 listen address; loopback by default (the in-process demo
  /// and test topology).
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back via `DtServer::port()`.
  uint16_t port = 0;
  /// Request-execution worker threads.
  int num_workers = 2;
  /// Per-frame payload cap, both directions.
  size_t max_frame_size = kDefaultMaxFrameSize;
  /// Per-session pipelining cap: requests admitted but not yet
  /// answered. Excess requests are answered kUnavailable.
  int max_inflight_per_session = 64;
  /// Global bound on queued-but-not-executing requests (admission
  /// control): a full queue answers kUnavailable "overloaded".
  size_t max_pending_requests = 256;
  /// Sessions with no traffic and nothing in flight for this long are
  /// closed. <= 0 disables.
  int idle_timeout_ms = 60000;
  /// Concurrent session cap; excess connections are closed on accept.
  int max_sessions = 256;
  /// Test hook: artificial per-request execution delay. Lets the
  /// overload test fill the admission queue deterministically.
  int debug_execution_delay_ms = 0;
};

/// Monotonic counters since `Start` (snapshot; see `DtServer::stats`).
struct ServerStats {
  uint64_t sessions_accepted = 0;
  uint64_t sessions_rejected = 0;  ///< over max_sessions
  uint64_t requests_executed = 0;
  uint64_t requests_rejected = 0;  ///< kUnavailable admissions
  uint64_t corrupt_frames = 0;
  uint64_t idle_closes = 0;
  /// Sessions torn down on a fatal transport error (ECONNRESET /
  /// EPIPE / ...): the peer vanished mid-conversation, as opposed to
  /// the clean-EOF drain path.
  uint64_t peer_disconnects = 0;
  /// Query-planner aggregates over every executed request that planned
  /// something (Find / FindPage / Explain / Count / TopK): total plans,
  /// time spent planning, index entries the planner's bounded exact
  /// counting walked, and how many plans priced at least one candidate
  /// off the histogram/sketch statistics instead of exact counts.
  uint64_t planner_stats_plans = 0;
  uint64_t planner_stats_planning_ns = 0;
  uint64_t planner_stats_entries_counted = 0;
  uint64_t planner_stats_estimate_plans = 0;
  /// Streaming-ingest aggregates over executed kIngest requests (only
  /// a read-write server — constructed over a mutable facade — ever
  /// counts these; a read-only server rejects the op).
  uint64_t ingest_requests = 0;
  uint64_t ingest_records = 0;
  uint64_t ingest_clusters_upserted = 0;
  uint64_t ingest_clusters_removed = 0;
  /// The facade's durability counters (`enabled` false when serving
  /// an in-memory facade).
  storage::DurabilityStats durability;
};

/// \brief The serving endpoint. Construct over a facade (borrowed; must
/// outlive the server), `Start()`, connect `DtClient`s, `Stop()`.
class DtServer {
 public:
  /// Read-only serving: every op except kIngest (which is answered
  /// kInvalidArgument — reads never mutate).
  explicit DtServer(const fusion::DataTamer* tamer, ServerOptions opts = {});

  /// Read-write serving over a mutable facade: kIngest routes through
  /// `DataTamer::ExecuteMutable` (still serialized behind the facade
  /// mutex alongside the read ops, so ingest interleaves with — never
  /// races — concurrent queries).
  explicit DtServer(fusion::DataTamer* tamer, ServerOptions opts = {});

  ~DtServer();

  DtServer(const DtServer&) = delete;
  DtServer& operator=(const DtServer&) = delete;

  /// Binds, listens and launches the event loop + workers. Errors on
  /// socket failures (address in use, ...). Start after Stop is not
  /// supported; construct a fresh server.
  Status Start();

  /// Drains nothing: closes the listener and every session, joins all
  /// threads, then flushes the facade's write-ahead log so every
  /// acknowledged mutation is on disk before the process can exit.
  /// Idempotent.
  void Stop();

  /// The bound port (resolves option port 0); valid after `Start`.
  uint16_t port() const { return port_; }

  /// Counter snapshot (safe to call while serving).
  ServerStats stats() const;

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
  uint16_t port_ = 0;
};

}  // namespace dt::server
