#include "server/frame.h"

#include "common/hash.h"
#include "storage/codec.h"

namespace dt::server {

using storage::BinaryReader;
using storage::BinaryWriter;
using storage::DocValue;

uint64_t FrameChecksum(std::string_view payload) {
  return HashCombine(Fnv1a64("DTW1v1"), Fnv1a64(payload));
}

Status EncodeFrame(const DocValue& payload, size_t max_frame_size,
                   std::string* out) {
  std::string body;
  DT_RETURN_NOT_OK(storage::EncodeDocValue(payload, &body));
  if (body.size() > max_frame_size) {
    return Status::OutOfRange("frame payload " + std::to_string(body.size()) +
                              " bytes exceeds max frame size " +
                              std::to_string(max_frame_size));
  }
  BinaryWriter w(out);
  w.PutU32(kFrameMagic);
  w.PutU16(kFrameVersion);
  w.PutU16(0);  // flags: reserved
  w.PutU32(static_cast<uint32_t>(body.size()));
  w.PutU64(FrameChecksum(body));
  out->append(body);
  return Status::OK();
}

Status TryDecodeFrame(std::string_view buf, size_t max_frame_size,
                      DocValue* payload, size_t* frame_size) {
  *frame_size = 0;
  // Validate whatever header prefix has arrived: a wrong byte is
  // corruption *now*, not after the peer trickles in the rest.
  {
    // Each field is validated only once it has fully arrived; a
    // partially-arrived field is "need more bytes", never a misread
    // of the bytes that did arrive.
    BinaryReader r(buf.substr(0, std::min(buf.size(), kFrameHeaderSize)));
    uint32_t magic = 0;
    if (r.remaining() < sizeof(uint32_t)) return Status::OK();  // need more
    DT_RETURN_NOT_OK(r.ReadU32(&magic));
    if (magic != kFrameMagic) {
      return Status::Corruption("bad frame magic");
    }
    uint16_t version = 0;
    if (r.remaining() < sizeof(uint16_t)) return Status::OK();  // need more
    DT_RETURN_NOT_OK(r.ReadU16(&version));
    if (version != kFrameVersion) {
      return Status::Corruption("unsupported frame version " +
                                std::to_string(version));
    }
    uint16_t flags = 0;
    if (r.remaining() < sizeof(uint16_t)) return Status::OK();  // need more
    DT_RETURN_NOT_OK(r.ReadU16(&flags));
    if (flags != 0) {
      return Status::Corruption("nonzero reserved frame flags");
    }
    if (r.remaining() >= sizeof(uint32_t)) {
      uint32_t len = 0;
      DT_RETURN_NOT_OK(r.ReadU32(&len));
      // The oversize check needs only the length field: a hostile
      // 4GB declaration is rejected here instead of buffering toward
      // it.
      if (len > max_frame_size) {
        return Status::Corruption("frame payload length " +
                                  std::to_string(len) +
                                  " exceeds max frame size " +
                                  std::to_string(max_frame_size));
      }
    }
  }
  if (buf.size() < kFrameHeaderSize) return Status::OK();  // need more

  BinaryReader r(buf);
  uint32_t magic = 0;
  uint16_t version = 0, flags = 0;
  uint32_t len = 0;
  uint64_t checksum = 0;
  DT_RETURN_NOT_OK(r.ReadU32(&magic));
  DT_RETURN_NOT_OK(r.ReadU16(&version));
  DT_RETURN_NOT_OK(r.ReadU16(&flags));
  DT_RETURN_NOT_OK(r.ReadU32(&len));
  DT_RETURN_NOT_OK(r.ReadU64(&checksum));
  if (buf.size() < kFrameHeaderSize + len) return Status::OK();  // need more

  std::string_view body = buf.substr(kFrameHeaderSize, len);
  if (FrameChecksum(body) != checksum) {
    return Status::Corruption("frame checksum mismatch");
  }
  DT_RETURN_NOT_OK(storage::DecodeDocValue(body, payload));
  *frame_size = kFrameHeaderSize + len;
  return Status::OK();
}

// ---- RPC envelopes -----------------------------------------------------

DocValue EncodeRequestEnvelope(const RequestEnvelope& env) {
  DocValue out = DocValue::Object();
  out.Add("id", DocValue::Int(static_cast<int64_t>(env.id)));
  out.Add("req", env.request.ToDocValue());
  return out;
}

Result<RequestEnvelope> DecodeRequestEnvelope(const DocValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("request envelope wants an object");
  }
  RequestEnvelope env;
  const DocValue* id = v.Find("id");
  if (id == nullptr || !id->is_int()) {
    return Status::InvalidArgument("request envelope id must be an int");
  }
  env.id = static_cast<uint64_t>(id->int_value());
  const DocValue* req = v.Find("req");
  if (req == nullptr) {
    return Status::InvalidArgument("request envelope missing req");
  }
  DT_ASSIGN_OR_RETURN(env.request, query::QueryRequest::FromDocValue(*req));
  return env;
}

DocValue EncodeResponseEnvelope(const ResponseEnvelope& env) {
  DocValue out = DocValue::Object();
  out.Add("id", DocValue::Int(static_cast<int64_t>(env.id)));
  out.Add("code", DocValue::Int(static_cast<int64_t>(env.status.code())));
  out.Add("message", DocValue::Str(env.status.message()));
  out.Add("resp", env.status.ok() ? env.response.ToDocValue()
                                  : DocValue::Null());
  return out;
}

Result<ResponseEnvelope> DecodeResponseEnvelope(const DocValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("response envelope wants an object");
  }
  ResponseEnvelope env;
  const DocValue* id = v.Find("id");
  if (id == nullptr || !id->is_int()) {
    return Status::InvalidArgument("response envelope id must be an int");
  }
  env.id = static_cast<uint64_t>(id->int_value());
  const DocValue* code = v.Find("code");
  if (code == nullptr || !code->is_int() || code->int_value() < 0 ||
      code->int_value() > static_cast<int64_t>(StatusCode::kUnavailable)) {
    return Status::InvalidArgument("response envelope code out of range");
  }
  std::string message;
  const DocValue* msg = v.Find("message");
  if (msg != nullptr) {
    if (!msg->is_string()) {
      return Status::InvalidArgument("response envelope message not a string");
    }
    message = msg->string_value();
  }
  StatusCode sc = static_cast<StatusCode>(code->int_value());
  const DocValue* resp = v.Find("resp");
  if (sc != StatusCode::kOk) {
    if (resp != nullptr && !resp->is_null()) {
      return Status::InvalidArgument("error response envelope carries a resp");
    }
    env.status = Status(sc, std::move(message));
    return env;
  }
  if (resp == nullptr || resp->is_null()) {
    return Status::InvalidArgument("OK response envelope missing resp");
  }
  DT_ASSIGN_OR_RETURN(env.response, query::QueryResponse::FromDocValue(*resp));
  return env;
}

}  // namespace dt::server
