/// \file rng.h
/// \brief Deterministic pseudo-random number generation.
///
/// Every generator and benchmark in the repository takes an explicit
/// seed so that experiment tables regenerate byte-identically. The
/// engine is xoshiro256** seeded via SplitMix64.

#pragma once

#include <cmath>
#include <cstdint>
#include <vector>

namespace dt {

/// \brief Deterministic RNG with convenience samplers.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42) { Seed(seed); }

  /// Re-seeds the engine (SplitMix64 expansion of `seed`).
  void Seed(uint64_t seed) {
    uint64_t x = seed;
    for (auto& si : s_) {
      x += 0x9E3779B97f4A7C15ULL;
      uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
      si = z ^ (z >> 31);
    }
  }

  /// Next raw 64-bit value.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n) { return Next() % n; }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(Uniform(static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  /// Uniform double in [lo, hi).
  double UniformDouble(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Bernoulli draw with success probability `p`.
  bool Bernoulli(double p) { return NextDouble() < p; }

  /// Standard normal via Box-Muller.
  double Gaussian(double mean = 0.0, double stddev = 1.0) {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
    return mean + stddev * z;
  }

  /// Uniformly picks one element of a non-empty vector.
  template <typename T>
  const T& Pick(const std::vector<T>& v) {
    return v[Uniform(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      std::swap((*v)[i - 1], (*v)[Uniform(i)]);
    }
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
  uint64_t s_[4];
};

/// \brief Zipfian sampler over ranks [0, n) with exponent `theta`.
///
/// Precomputes the harmonic normalizer once; each draw is O(log n) via
/// binary search over the CDF. Used for entity-popularity skew (the
/// "most discussed" distribution behind Table IV).
class ZipfSampler {
 public:
  ZipfSampler(size_t n, double theta) : cdf_(n) {
    double sum = 0;
    for (size_t i = 0; i < n; ++i) {
      sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
      cdf_[i] = sum;
    }
    for (auto& c : cdf_) c /= sum;
  }

  /// Draws a rank in [0, n); rank 0 is the most popular.
  size_t Sample(Rng* rng) const {
    double u = rng->NextDouble();
    size_t lo = 0, hi = cdf_.size();
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u)
        lo = mid + 1;
      else
        hi = mid;
    }
    return lo < cdf_.size() ? lo : cdf_.size() - 1;
  }

  size_t size() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace dt
