#include "common/strutil.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dt {

namespace {

inline bool IsSpaceByte(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}
inline char LowerByte(char c) {
  return static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
}
inline bool IsAlnumByte(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}
inline bool IsDigitByte(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}
inline bool IsUpperByte(char c) {
  return std::isupper(static_cast<unsigned char>(c)) != 0;
}

}  // namespace

std::string ToLower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](char c) { return LowerByte(c); });
  return out;
}

std::string ToUpper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(), [](char c) {
    return static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  });
  return out;
}

std::string_view TrimView(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && IsSpaceByte(s[b])) ++b;
  while (e > b && IsSpaceByte(s[e - 1])) --e;
  return s.substr(b, e - b);
}

std::string Trim(std::string_view s) { return std::string(TrimView(s)); }

std::vector<std::string> Split(std::string_view s, char delim) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == delim) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::vector<std::string> SplitWhitespace(std::string_view s) {
  std::vector<std::string> out;
  size_t i = 0;
  while (i < s.size()) {
    while (i < s.size() && IsSpaceByte(s[i])) ++i;
    size_t start = i;
    while (i < s.size() && !IsSpaceByte(s[i])) ++i;
    if (i > start) out.emplace_back(s.substr(start, i - start));
  }
  return out;
}

std::string Join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool EndsWith(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() &&
         s.substr(s.size() - suffix.size()) == suffix;
}

bool IsDigits(std::string_view s) {
  if (s.empty()) return false;
  return std::all_of(s.begin(), s.end(), [](char c) { return IsDigitByte(c); });
}

std::string NormalizeWhitespace(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  bool in_space = true;  // drop leading whitespace
  for (char c : s) {
    if (IsSpaceByte(c)) {
      if (!in_space) out.push_back(' ');
      in_space = true;
    } else {
      out.push_back(c);
      in_space = false;
    }
  }
  while (!out.empty() && out.back() == ' ') out.pop_back();
  return out;
}

std::vector<std::string> NameTokens(std::string_view name) {
  std::vector<std::string> out;
  std::string cur;
  auto flush = [&] {
    if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  };
  for (size_t i = 0; i < name.size(); ++i) {
    char c = name[i];
    if (!IsAlnumByte(c)) {
      flush();
      continue;
    }
    if (IsUpperByte(c) && !cur.empty() && !IsUpperByte(name[i - 1])) {
      // camelCase hump: "showName" -> show | Name
      flush();
    } else if (IsUpperByte(c) && !cur.empty() && i + 1 < name.size() &&
               IsUpperByte(name[i - 1]) && std::islower(static_cast<unsigned char>(name[i + 1]))) {
      // acronym boundary: "URLName" -> URL | Name
      flush();
    } else if (IsDigitByte(c) != (!cur.empty() && IsDigitByte(cur.back()))) {
      // letter<->digit boundary
      if (!cur.empty()) flush();
    }
    cur.push_back(LowerByte(c));
  }
  flush();
  return out;
}

std::vector<std::string> WordTokens(std::string_view text) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : text) {
    if (IsAlnumByte(c)) {
      cur.push_back(LowerByte(c));
    } else if (!cur.empty()) {
      out.push_back(cur);
      cur.clear();
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

std::vector<std::string> QGrams(std::string_view s, int q) {
  std::vector<std::string> out;
  if (q <= 0) return out;
  std::string padded(q - 1, '#');
  padded += ToLower(s);
  padded.append(q - 1, '#');
  if (static_cast<int>(padded.size()) < q) return out;
  out.reserve(padded.size() - q + 1);
  for (size_t i = 0; i + q <= padded.size(); ++i) {
    out.push_back(padded.substr(i, q));
  }
  return out;
}

int LevenshteinDistance(std::string_view a, std::string_view b) {
  if (a.size() > b.size()) std::swap(a, b);
  const size_t n = a.size(), m = b.size();
  if (n == 0) return static_cast<int>(m);
  std::vector<int> row(n + 1);
  for (size_t i = 0; i <= n; ++i) row[i] = static_cast<int>(i);
  for (size_t j = 1; j <= m; ++j) {
    int prev_diag = row[0];
    row[0] = static_cast<int>(j);
    for (size_t i = 1; i <= n; ++i) {
      int tmp = row[i];
      int cost = (a[i - 1] == b[j - 1]) ? 0 : 1;
      row[i] = std::min({row[i] + 1, row[i - 1] + 1, prev_diag + cost});
      prev_diag = tmp;
    }
  }
  return row[n];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t mx = std::max(a.size(), b.size());
  if (mx == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(mx);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  const size_t la = a.size(), lb = b.size();
  if (la == 0 && lb == 0) return 1.0;
  if (la == 0 || lb == 0) return 0.0;
  const int window =
      std::max(0, static_cast<int>(std::max(la, lb)) / 2 - 1);
  std::vector<bool> a_match(la, false), b_match(lb, false);
  int matches = 0;
  for (size_t i = 0; i < la; ++i) {
    size_t lo = (static_cast<int>(i) - window > 0) ? i - window : 0;
    size_t hi = std::min(lb, i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_match[j] && a[i] == b[j]) {
        a_match[i] = b_match[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // transpositions
  int t = 0;
  size_t k = 0;
  for (size_t i = 0; i < la; ++i) {
    if (!a_match[i]) continue;
    while (!b_match[k]) ++k;
    if (a[i] != b[k]) ++t;
    ++k;
  }
  double m = matches;
  return (m / la + m / lb + (m - t / 2.0) / m) / 3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  int prefix = 0;
  for (size_t i = 0; i < std::min({a.size(), b.size(), size_t{4}}); ++i) {
    if (a[i] == b[i])
      ++prefix;
    else
      break;
  }
  return jaro + prefix * 0.1 * (1.0 - jaro);
}

double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa(a.begin(), a.end());
  std::unordered_set<std::string> sb(b.begin(), b.end());
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t denom = sa.size() + sb.size();
  return denom == 0 ? 1.0 : 2.0 * inter / static_cast<double>(denom);
}

double QGramJaccard(std::string_view a, std::string_view b, int q) {
  return JaccardSimilarity(QGrams(a, q), QGrams(b, q));
}

double TokenCosine(const std::vector<std::string>& a,
                   const std::vector<std::string>& b) {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_map<std::string, int> fa, fb;
  for (const auto& t : a) ++fa[t];
  for (const auto& t : b) ++fb[t];
  double dot = 0, na = 0, nb = 0;
  for (const auto& [t, c] : fa) {
    na += static_cast<double>(c) * c;
    auto it = fb.find(t);
    if (it != fb.end()) dot += static_cast<double>(c) * it->second;
  }
  for (const auto& [t, c] : fb) nb += static_cast<double>(c) * c;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

int LongestCommonSubstring(std::string_view a, std::string_view b) {
  if (a.empty() || b.empty()) return 0;
  std::vector<int> prev(b.size() + 1, 0), cur(b.size() + 1, 0);
  int best = 0;
  for (size_t i = 1; i <= a.size(); ++i) {
    for (size_t j = 1; j <= b.size(); ++j) {
      cur[j] = (a[i - 1] == b[j - 1]) ? prev[j - 1] + 1 : 0;
      best = std::max(best, cur[j]);
    }
    std::swap(prev, cur);
  }
  return best;
}

bool ParseInt64(std::string_view s, int64_t* out) {
  s = TrimView(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool ParseDouble(std::string_view s, double* out) {
  s = TrimView(s);
  if (s.empty()) return false;
  std::string buf(s);
  char* end = nullptr;
  errno = 0;
  double v = std::strtod(buf.c_str(), &end);
  if (errno != 0 || end != buf.c_str() + buf.size()) return false;
  *out = v;
  return true;
}

std::string FormatDouble(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
  std::string s(buf);
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

std::string WithThousandsSep(int64_t v) {
  bool neg = v < 0;
  std::string digits = std::to_string(neg ? -v : v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count > 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (neg) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace dt
