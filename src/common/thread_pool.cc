#include "common/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <stdexcept>

namespace dt {

namespace {
/// Set while the current thread is executing loop chunks; a nested
/// ParallelFor sees it and runs inline instead of scheduling onto a
/// pool whose workers may all be blocked in the outer loop.
thread_local bool t_in_parallel_loop = false;
}  // namespace

void RethrowIfError(const Status& st) {
  if (!st.ok()) throw std::runtime_error(st.ToString());
}

int ResolveNumThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Shared state of one ParallelForChunks call. Workers claim chunk
/// indexes from `next` until exhausted; the issuing thread waits for
/// `active` helpers to drain before reading `first_error`.
struct ThreadPool::LoopState {
  size_t begin = 0;
  size_t end = 0;
  size_t num_chunks = 0;
  const std::function<Status(size_t, size_t, size_t)>* body = nullptr;

  std::atomic<size_t> next{0};
  std::mutex mu;
  std::condition_variable done_cv;
  int active = 0;  ///< helper tasks still inside RunLoop
  /// Error from the lowest-indexed failing chunk (deterministic pick
  /// when several chunks fail under different schedules).
  size_t first_error_chunk = 0;
  Status first_error;

  void Record(size_t chunk, Status st) {
    std::lock_guard<std::mutex> lock(mu);
    if (first_error.ok() || chunk < first_error_chunk) {
      first_error_chunk = chunk;
      first_error = std::move(st);
    }
  }
};

ThreadPool::ThreadPool(int num_threads) {
  int total = ResolveNumThreads(num_threads);
  workers_.reserve(static_cast<size_t>(total - 1));
  for (int i = 0; i < total - 1; ++i) {
    workers_.emplace_back([this] { WorkerMain(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutting_down_ = true;
  }
  work_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::Schedule(std::function<void()> fn) {
  if (workers_.empty()) {
    // No spawned workers: run inline so tasks still make progress.
    fn();
    return;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(fn));
  }
  work_cv_.notify_one();
}

void ThreadPool::WorkerMain() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return shutting_down_ || !queue_.empty(); });
      if (queue_.empty()) return;  // shutting down and drained
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunLoop(LoopState* state) {
  bool was_nested = t_in_parallel_loop;
  t_in_parallel_loop = true;
  const size_t n = state->end - state->begin;
  for (;;) {
    size_t chunk = state->next.fetch_add(1, std::memory_order_relaxed);
    if (chunk >= state->num_chunks) break;
    // Uniform partition: chunk c covers [c*n/k, (c+1)*n/k) — depends
    // only on (n, k), which is what makes parallel output reproducible.
    size_t lo = state->begin + chunk * n / state->num_chunks;
    size_t hi = state->begin + (chunk + 1) * n / state->num_chunks;
    if (lo >= hi) continue;
    Status st;
    try {
      st = (*state->body)(chunk, lo, hi);
    } catch (const std::exception& e) {
      st = Status::Internal(std::string("uncaught exception in parallel "
                                        "loop body: ") +
                            e.what());
    } catch (...) {
      st = Status::Internal("uncaught non-std exception in parallel loop "
                            "body");
    }
    if (!st.ok()) state->Record(chunk, std::move(st));
  }
  t_in_parallel_loop = was_nested;
}

Status ThreadPool::ParallelForChunks(
    size_t begin, size_t end, size_t num_chunks,
    const std::function<Status(size_t, size_t, size_t)>& body) {
  if (begin >= end) return Status::OK();
  num_chunks = std::max<size_t>(1, std::min(num_chunks, end - begin));

  LoopState state;
  state.begin = begin;
  state.end = end;
  state.num_chunks = num_chunks;
  state.body = &body;

  // Nested call (or single-threaded pool): the calling worker drains
  // every chunk inline; scheduling helpers could deadlock a busy pool.
  if (t_in_parallel_loop || workers_.empty() || num_chunks == 1) {
    RunLoop(&state);
    return state.first_error;
  }

  size_t helpers = std::min(workers_.size(), num_chunks - 1);
  {
    std::lock_guard<std::mutex> lock(state.mu);
    state.active = static_cast<int>(helpers);
  }
  for (size_t i = 0; i < helpers; ++i) {
    Schedule([&state] {
      RunLoop(&state);
      std::lock_guard<std::mutex> lock(state.mu);
      if (--state.active == 0) state.done_cv.notify_one();
    });
  }
  RunLoop(&state);
  std::unique_lock<std::mutex> lock(state.mu);
  state.done_cv.wait(lock, [&state] { return state.active == 0; });
  return state.first_error;
}

Status ThreadPool::ParallelFor(size_t begin, size_t end,
                               const std::function<Status(size_t)>& body) {
  // 4 chunks per thread: enough slack for dynamic load balance without
  // drowning small loops in claim overhead.
  size_t chunks = static_cast<size_t>(num_threads()) * 4;
  return ParallelForChunks(begin, end, chunks,
                           [&body](size_t, size_t lo, size_t hi) -> Status {
                             for (size_t i = lo; i < hi; ++i) {
                               DT_RETURN_NOT_OK(body(i));
                             }
                             return Status::OK();
                           });
}

}  // namespace dt
