/// \file thread_pool.h
/// \brief Fixed-size worker pool and data-parallel loops for the hot
/// paths (candidate generation, pair scoring).
///
/// Design constraints, in order:
///   1. Determinism first: `ParallelFor` hands out *index ranges*, so
///      callers write results into pre-sized slots and merge them in
///      index order — parallel output is byte-identical to serial.
///   2. Errors cross thread boundaries as `Status`, never as
///      exceptions (consistent with common/status.h): a body that
///      throws or returns non-OK surfaces as the loop's first error.
///   3. Nested `ParallelFor` is safe: a loop issued from inside a pool
///      worker runs inline on that worker instead of scheduling (which
///      could deadlock a fully-busy pool).
///
/// The calling thread always participates as a worker, so a pool built
/// with `num_threads = 1` spawns no threads at all and the loops
/// degrade to plain serial execution.

#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "common/status.h"

namespace dt {

/// \brief A fixed-size pool of worker threads.
class ThreadPool {
 public:
  /// Creates a pool whose loops use `num_threads` total threads: the
  /// caller plus `num_threads - 1` spawned workers. Values < 1 (and a
  /// special 0 meaning "auto") clamp to the hardware concurrency.
  explicit ThreadPool(int num_threads);

  /// Joins all workers. Pending scheduled tasks run to completion.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads a loop runs on (spawned workers + the caller).
  int num_threads() const { return static_cast<int>(workers_.size()) + 1; }

  /// Enqueues a standalone task. Exceptions escaping `fn` terminate
  /// (prefer the Status-returning loops below for fallible work).
  void Schedule(std::function<void()> fn);

  /// \brief Runs `body(chunk, chunk_begin, chunk_end)` for `num_chunks`
  /// contiguous chunks of `[begin, end)`, distributed dynamically over
  /// the pool plus the calling thread.
  ///
  /// Chunk boundaries depend only on `(begin, end, num_chunks)`, never
  /// on thread scheduling. Returns the first non-OK status (by chunk
  /// index) once every chunk has finished; a thrown exception is
  /// converted to `Status::Internal` with the exception message. Safe
  /// to call from inside another loop's body (runs inline).
  Status ParallelForChunks(
      size_t begin, size_t end, size_t num_chunks,
      const std::function<Status(size_t chunk, size_t chunk_begin,
                                 size_t chunk_end)>& body);

  /// \brief Runs `body(i)` for every i in `[begin, end)` with automatic
  /// chunking (4 chunks per thread for load balance). Same error and
  /// nesting semantics as `ParallelForChunks`.
  Status ParallelFor(size_t begin, size_t end,
                     const std::function<Status(size_t)>& body);

 private:
  struct LoopState;

  void WorkerMain();
  /// Claims and runs chunks of `state` until exhausted.
  static void RunLoop(LoopState* state);

  std::vector<std::thread> workers_;
  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::function<void()>> queue_;
  bool shutting_down_ = false;
};

/// Resolves a `num_threads` option value: <= 0 means "auto" (hardware
/// concurrency), otherwise the value itself, min 1.
int ResolveNumThreads(int num_threads);

/// Rethrows a loop failure as an exception. For callers with
/// infallible signatures (vector-returning APIs) whose serial path
/// propagates exceptions: dropping the pool's Status there would
/// silently return partial results instead.
void RethrowIfError(const Status& st);

}  // namespace dt
