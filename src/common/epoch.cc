#include "common/epoch.h"

namespace dt {

void EpochManager::Pin(uint64_t epoch) {
  std::lock_guard<std::mutex> lock(mu_);
  ++pins_[epoch];
}

void EpochManager::Unpin(uint64_t epoch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = pins_.find(epoch);
    if (it == pins_.end()) return;  // unmatched unpin: tolerate, don't corrupt
    if (--it->second <= 0) pins_.erase(it);
  }
  Reclaim();
}

uint64_t EpochManager::MinPinned() const {
  std::lock_guard<std::mutex> lock(mu_);
  return MinPinnedLocked();
}

uint64_t EpochManager::MinPinnedLocked() const {
  return pins_.empty() ? UINT64_MAX : pins_.begin()->first;
}

void EpochManager::Retire(uint64_t epoch, std::function<void()> reclaim) {
  std::lock_guard<std::mutex> lock(mu_);
  retired_.emplace_back(epoch, std::move(reclaim));
}

size_t EpochManager::Reclaim() {
  std::vector<std::function<void()>> runnable;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const uint64_t min_pinned = MinPinnedLocked();
    auto keep = retired_.begin();
    for (auto it = retired_.begin(); it != retired_.end(); ++it) {
      if (it->first < min_pinned) {
        runnable.push_back(std::move(it->second));
      } else {
        if (keep != it) *keep = std::move(*it);
        ++keep;
      }
    }
    retired_.erase(keep, retired_.end());
  }
  for (auto& fn : runnable) fn();
  return runnable.size();
}

size_t EpochManager::retired_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return retired_.size();
}

size_t EpochManager::pinned_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t n = 0;
  for (const auto& [epoch, count] : pins_) {
    n += static_cast<size_t>(count);
  }
  return n;
}

}  // namespace dt
