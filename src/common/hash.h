/// \file hash.h
/// \brief Hashing helpers shared across modules (blocking keys, shard
/// routing, document ids).

#pragma once

#include <cstdint>
#include <string_view>

namespace dt {

/// FNV-1a 64-bit hash of a byte string.
inline uint64_t Fnv1a64(std::string_view s) {
  uint64_t h = 1469598103934665603ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

/// Finalizing mix (MurmurHash3 fmix64) — decorrelates integer keys.
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Combines two hashes (boost::hash_combine style, 64-bit).
inline uint64_t HashCombine(uint64_t a, uint64_t b) {
  return a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4));
}

}  // namespace dt
