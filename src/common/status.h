/// \file status.h
/// \brief Error model for the Data Tamer library.
///
/// Following the Arrow/RocksDB idiom, library code returns a `Status`
/// (or a `Result<T>` when a value is produced) instead of throwing
/// exceptions across module boundaries.

#pragma once

#include <cassert>
#include <memory>
#include <string>
#include <utility>
#include <variant>

namespace dt {

/// \brief Machine-readable category of a failure.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kAlreadyExists = 3,
  kOutOfRange = 4,
  kIOError = 5,
  kCorruption = 6,
  kNotImplemented = 7,
  kCapacityExceeded = 8,
  kInternal = 9,
  kUnavailable = 10,
};

/// \brief Returns a human-readable name for a status code ("OK",
/// "Invalid argument", ...).
const char* StatusCodeToString(StatusCode code);

/// \brief Outcome of an operation: a code plus an optional message.
///
/// `Status::OK()` is represented with a null state pointer so the success
/// path costs one pointer compare and no allocation.
class Status {
 public:
  /// Constructs a success status.
  Status() = default;

  /// Constructs a status with the given code and message. A `kOk` code
  /// must not carry a message; use `Status::OK()`.
  Status(StatusCode code, std::string msg) {
    assert(code != StatusCode::kOk);
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }

  Status(const Status& other) { CopyFrom(other); }
  Status& operator=(const Status& other) {
    if (this != &other) CopyFrom(other);
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Success.
  static Status OK() { return Status(); }

  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  static Status NotImplemented(std::string msg) {
    return Status(StatusCode::kNotImplemented, std::move(msg));
  }
  static Status CapacityExceeded(std::string msg) {
    return Status(StatusCode::kCapacityExceeded, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  /// Transient overload/shutdown rejection: the request was not
  /// executed and a retry later may succeed (the server's admission
  /// control answers with this instead of silently dropping).
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const { return ok() ? StatusCode::kOk : state_->code; }
  /// Message attached at construction; empty for OK.
  const std::string& message() const {
    static const std::string kEmpty;
    return ok() ? kEmpty : state_->msg;
  }

  bool IsInvalidArgument() const { return code() == StatusCode::kInvalidArgument; }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const { return code() == StatusCode::kAlreadyExists; }
  bool IsOutOfRange() const { return code() == StatusCode::kOutOfRange; }
  bool IsIOError() const { return code() == StatusCode::kIOError; }
  bool IsCorruption() const { return code() == StatusCode::kCorruption; }
  bool IsNotImplemented() const { return code() == StatusCode::kNotImplemented; }
  bool IsCapacityExceeded() const { return code() == StatusCode::kCapacityExceeded; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }

  /// "OK" or "<code name>: <message>".
  std::string ToString() const;

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };

  void CopyFrom(const Status& other) {
    state_ = other.state_ ? std::make_unique<State>(*other.state_) : nullptr;
  }

  std::unique_ptr<State> state_;  // null == OK
};

/// \brief Either a value of type `T` or a non-OK `Status`.
///
/// Mirrors `arrow::Result`: construct from a value for success, from a
/// failed `Status` for errors.
template <typename T>
class Result {
 public:
  /// Implicit from a value: success.
  Result(T value) : var_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit from a failed status: error. Aborts if the status is OK,
  /// since an OK Result must carry a value.
  Result(Status status) : var_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(var_).ok());
  }

  bool ok() const { return std::holds_alternative<T>(var_); }

  /// The failure status, or OK when a value is held.
  Status status() const {
    return ok() ? Status::OK() : std::get<Status>(var_);
  }

  /// The held value; must only be called when `ok()`.
  const T& ValueOrDie() const& {
    assert(ok());
    return std::get<T>(var_);
  }
  T& ValueOrDie() & {
    assert(ok());
    return std::get<T>(var_);
  }
  T ValueOrDie() && {
    assert(ok());
    return std::move(std::get<T>(var_));
  }

  /// The held value, or `fallback` on error.
  T ValueOr(T fallback) const {
    return ok() ? std::get<T>(var_) : std::move(fallback);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

 private:
  std::variant<T, Status> var_;
};

/// Propagates a non-OK status out of the current function.
#define DT_RETURN_NOT_OK(expr)                  \
  do {                                          \
    ::dt::Status _st = (expr);                  \
    if (!_st.ok()) return _st;                  \
  } while (0)

/// Assigns the value of a `Result<T>` expression to `lhs`, propagating a
/// non-OK status out of the current function.
#define DT_ASSIGN_OR_RETURN_IMPL(tmp, lhs, rexpr) \
  auto tmp = (rexpr);                             \
  if (!tmp.ok()) return tmp.status();             \
  lhs = std::move(tmp).ValueOrDie();

#define DT_ASSIGN_OR_RETURN_CONCAT_(x, y) x##y
#define DT_ASSIGN_OR_RETURN_CONCAT(x, y) DT_ASSIGN_OR_RETURN_CONCAT_(x, y)

#define DT_ASSIGN_OR_RETURN(lhs, rexpr) \
  DT_ASSIGN_OR_RETURN_IMPL(             \
      DT_ASSIGN_OR_RETURN_CONCAT(_dt_result_, __LINE__), lhs, rexpr)

}  // namespace dt
