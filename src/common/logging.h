/// \file logging.h
/// \brief Minimal leveled logging to stderr.
///
/// The library itself logs sparingly (benchmark harnesses print their
/// own tables to stdout); logging exists mainly for pipeline progress
/// at kInfo and diagnostics at kDebug.

#pragma once

#include <iostream>
#include <sstream>
#include <string>

namespace dt {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global minimum level; messages below it are discarded.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line) : level_(level) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level) << " " << base << ":" << line << "] ";
  }

  ~LogMessage() {
    if (level_ >= GetLogLevel()) {
      stream_ << "\n";
      std::cerr << stream_.str();
    }
  }

  std::ostream& stream() { return stream_; }

 private:
  static const char* LevelName(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug:
        return "DEBUG";
      case LogLevel::kInfo:
        return "INFO";
      case LogLevel::kWarning:
        return "WARN";
      case LogLevel::kError:
        return "ERROR";
    }
    return "?";
  }

  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define DT_LOG(level)                                                         \
  ::dt::internal::LogMessage(::dt::LogLevel::k##level, __FILE__, __LINE__)    \
      .stream()

}  // namespace dt
