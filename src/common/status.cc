#include "common/status.h"

namespace dt {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "Invalid argument";
    case StatusCode::kNotFound:
      return "Not found";
    case StatusCode::kAlreadyExists:
      return "Already exists";
    case StatusCode::kOutOfRange:
      return "Out of range";
    case StatusCode::kIOError:
      return "IO error";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kNotImplemented:
      return "Not implemented";
    case StatusCode::kCapacityExceeded:
      return "Capacity exceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(state_->code);
  if (!state_->msg.empty()) {
    out += ": ";
    out += state_->msg;
  }
  return out;
}

}  // namespace dt
