/// \file strutil.h
/// \brief String manipulation and similarity primitives.
///
/// These are the shared building blocks for attribute-name matching,
/// value-based matching, blocking keys and text tokenization. All
/// functions are pure and allocation-conscious; similarity functions
/// return values in [0, 1] where 1 means identical.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace dt {

/// Lower-cases ASCII characters; leaves other bytes untouched.
std::string ToLower(std::string_view s);

/// Upper-cases ASCII characters; leaves other bytes untouched.
std::string ToUpper(std::string_view s);

/// Removes leading and trailing ASCII whitespace.
std::string_view TrimView(std::string_view s);
std::string Trim(std::string_view s);

/// Splits on a single-character delimiter. Empty fields are preserved:
/// "a,,b" -> {"a", "", "b"}.
std::vector<std::string> Split(std::string_view s, char delim);

/// Splits on any ASCII whitespace run; no empty fields are produced.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// True if every character is an ASCII digit (and the string is non-empty).
bool IsDigits(std::string_view s);

/// Collapses whitespace runs to single spaces and trims; "a \t b" -> "a b".
std::string NormalizeWhitespace(std::string_view s);

/// \brief Splits an attribute or entity name into lower-case word tokens.
///
/// Understands snake_case, kebab-case, dotted.paths, spaces and
/// CamelCase humps: "ShowName", "show_name" and "show-name" all yield
/// {"show", "name"}. Digit runs form their own tokens.
std::vector<std::string> NameTokens(std::string_view name);

/// \brief Lower-cased word tokens of free text (letters+digits runs);
/// punctuation is a separator. "It's 9pm!" -> {"it", "s", "9pm"}.
std::vector<std::string> WordTokens(std::string_view text);

/// \brief Character q-grams of the lower-cased input, padded with `q-1`
/// leading/trailing '#' marks so boundaries are represented.
/// QGrams("ab", 2) -> {"#a", "ab", "b#"}.
std::vector<std::string> QGrams(std::string_view s, int q);

/// \brief Levenshtein edit distance (unit costs).
int LevenshteinDistance(std::string_view a, std::string_view b);

/// \brief Edit distance normalized to [0,1]: 1 - dist / max(len). Both
/// strings empty -> 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// \brief Jaro similarity in [0,1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// \brief Jaro-Winkler similarity with standard prefix scaling (p=0.1,
/// max prefix 4).
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// \brief Jaccard similarity |A∩B| / |A∪B| of two token multisets'
/// underlying sets. Both empty -> 1.
double JaccardSimilarity(const std::vector<std::string>& a,
                         const std::vector<std::string>& b);

/// \brief Dice coefficient 2|A∩B| / (|A|+|B|) over sets. Both empty -> 1.
double DiceSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

/// \brief Jaccard over character q-grams of both strings.
double QGramJaccard(std::string_view a, std::string_view b, int q);

/// \brief Cosine similarity of term-frequency vectors of two token lists.
double TokenCosine(const std::vector<std::string>& a,
                   const std::vector<std::string>& b);

/// \brief Longest common substring length.
int LongestCommonSubstring(std::string_view a, std::string_view b);

/// Parses a string as int64; returns false on any non-numeric content.
bool ParseInt64(std::string_view s, int64_t* out);

/// Parses a string as double; returns false on any non-numeric content.
bool ParseDouble(std::string_view s, double* out);

/// Formats a double with up to `precision` significant decimal digits,
/// trimming trailing zeros ("2.5", "27", "0.125").
std::string FormatDouble(double v, int precision = 6);

/// Formats an integer with thousands separators: 17731744 -> "17,731,744".
std::string WithThousandsSep(int64_t v);

}  // namespace dt
