/// \file epoch.h
/// \brief FASTER-style epoch protection for versioned shared state.
///
/// Readers `Pin` the epoch of the version they are about to traverse
/// and `Unpin` it when done; writers `Retire` superseded versions with
/// a reclamation closure that must not run until every reader that
/// could still reach the version has drained. `Reclaim` runs the
/// closures whose epoch has fallen below the minimum pinned epoch.
///
/// The manager does not own the protected objects — lifetimes are
/// carried by `shared_ptr` elsewhere; what it defers is *logical*
/// reclamation (eviction from a retained-version set, which is what
/// decides whether a resume token is still serviceable), so a slow
/// reader can never have the version window it started in collapse
/// underneath its page stream.
///
/// Locking: an internal mutex guards the pin table and the retired
/// list. `Reclaim` collects eligible closures under the lock but runs
/// them after releasing it, so a closure may itself take locks that
/// are held while calling `Pin`/`MinPinned` (the storage layer holds
/// its version mutex around both) without inverting lock order.

#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <utility>
#include <vector>

namespace dt {

/// \brief Pin table + deferred-reclamation queue. Thread-safe.
class EpochManager {
 public:
  /// Marks a reader active at `epoch`. Pins are counted: the same
  /// epoch may be pinned by any number of readers.
  void Pin(uint64_t epoch);

  /// Releases one pin at `epoch` and runs any reclamations that the
  /// departure made eligible. Must pair with a prior `Pin(epoch)`.
  void Unpin(uint64_t epoch);

  /// Smallest currently pinned epoch, or UINT64_MAX when no reader is
  /// pinned (everything retired is then reclaimable).
  uint64_t MinPinned() const;

  /// Queues `reclaim` to run once no pin at or below `epoch` remains.
  /// Never runs the closure synchronously — callers may hold locks the
  /// closure needs; eligible closures run on the next `Unpin` or
  /// explicit `Reclaim`.
  void Retire(uint64_t epoch, std::function<void()> reclaim);

  /// Runs every queued reclamation whose epoch is below `MinPinned()`;
  /// returns how many ran. Closures execute outside the internal lock,
  /// on the calling thread.
  size_t Reclaim();

  /// Queued (not yet run) reclamations — test/introspection hook.
  size_t retired_count() const;

  /// Live pin count across all epochs — test/introspection hook.
  size_t pinned_count() const;

 private:
  uint64_t MinPinnedLocked() const;

  mutable std::mutex mu_;
  /// epoch -> outstanding pin count (erased at zero, so begin() is the
  /// minimum).
  std::map<uint64_t, int64_t> pins_;
  std::vector<std::pair<uint64_t, std::function<void()>>> retired_;
};

}  // namespace dt
