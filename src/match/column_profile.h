/// \file column_profile.h
/// \brief Statistical fingerprint of a column's contents.
///
/// Value-based matching compares columns by what they *contain*, not
/// what they are called: storage type, semantic type, token
/// distribution, numeric moments, distinct-value overlap. Profiles are
/// mergeable so the global schema can keep one running profile per
/// global attribute as sources integrate.

#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ingest/type_infer.h"
#include "relational/value.h"

namespace dt::match {

/// \brief Aggregated description of one column.
class ColumnProfile {
 public:
  /// Builds a profile from column values (nulls are counted but
  /// otherwise ignored).
  static ColumnProfile Build(const std::vector<relational::Value>& values);

  /// Merges another profile into this one (running global profile).
  void Merge(const ColumnProfile& other);

  int64_t count() const { return count_; }
  int64_t non_null() const { return non_null_; }
  /// Approximate distinct count (exact up to the sample cap).
  int64_t distinct() const { return static_cast<int64_t>(values_seen_.size()); }
  double null_fraction() const {
    return count_ == 0 ? 0.0
                       : static_cast<double>(count_ - non_null_) / count_;
  }

  relational::ValueType dominant_type() const { return dominant_type_; }
  ingest::SemanticType semantic_type() const { return semantic_type_; }

  bool has_numeric_stats() const { return numeric_n_ > 0; }
  double mean() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

  double avg_string_len() const;

  /// Term-frequency map over word tokens of string values.
  const std::unordered_map<std::string, int64_t>& token_tf() const {
    return token_tf_;
  }

  /// Distinct-value overlap |A∩B| / |A∪B| over the retained value sets.
  double ValueOverlap(const ColumnProfile& other) const;

  /// Cosine similarity of the token tf vectors.
  double TokenCosine(const ColumnProfile& other) const;

  /// Similarity of numeric ranges/moments in [0,1]; 0 when either side
  /// has no numeric content.
  double NumericAffinity(const ColumnProfile& other) const;

 private:
  static constexpr size_t kMaxRetainedValues = 512;

  void Observe(const relational::Value& v);
  void FinalizeTypes(const std::vector<std::string>& strings);

  int64_t count_ = 0;
  int64_t non_null_ = 0;
  int64_t type_counts_[5] = {0, 0, 0, 0, 0};
  relational::ValueType dominant_type_ = relational::ValueType::kString;
  ingest::SemanticType semantic_type_ = ingest::SemanticType::kUnknown;

  // Numeric moments.
  int64_t numeric_n_ = 0;
  double sum_ = 0, sum_sq_ = 0;
  double min_ = 0, max_ = 0;

  // Strings.
  int64_t string_n_ = 0;
  int64_t total_string_len_ = 0;
  std::unordered_map<std::string, int64_t> token_tf_;

  // Distinct-value sample (normalized lower-case strings).
  std::unordered_map<std::string, int64_t> values_seen_;
};

}  // namespace dt::match
