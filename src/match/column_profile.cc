#include "match/column_profile.h"

#include <algorithm>
#include <cmath>

#include "common/strutil.h"

namespace dt::match {

using relational::Value;
using relational::ValueType;

void ColumnProfile::Observe(const Value& v) {
  ++count_;
  if (v.is_null()) return;
  ++non_null_;
  ++type_counts_[static_cast<int>(v.type())];
  if (v.is_number()) {
    double d = v.as_double();
    if (numeric_n_ == 0) {
      min_ = max_ = d;
    } else {
      min_ = std::min(min_, d);
      max_ = std::max(max_, d);
    }
    ++numeric_n_;
    sum_ += d;
    sum_sq_ += d * d;
  }
  std::string s = v.ToString();
  if (v.is_string()) {
    ++string_n_;
    total_string_len_ += static_cast<int64_t>(s.size());
    for (const auto& tok : WordTokens(s)) ++token_tf_[tok];
  }
  if (values_seen_.size() < kMaxRetainedValues ||
      values_seen_.count(ToLower(s)) > 0) {
    ++values_seen_[ToLower(s)];
  }
}

ColumnProfile ColumnProfile::Build(const std::vector<Value>& values) {
  ColumnProfile p;
  std::vector<std::string> strings;
  for (const auto& v : values) {
    p.Observe(v);
    if (!v.is_null()) strings.push_back(v.ToString());
  }
  p.FinalizeTypes(strings);
  return p;
}

void ColumnProfile::FinalizeTypes(const std::vector<std::string>& strings) {
  // Dominant storage type by majority of non-null observations.
  int best = static_cast<int>(ValueType::kString);
  int64_t best_n = -1;
  for (int t = 1; t < 5; ++t) {  // skip kNull
    if (type_counts_[t] > best_n) {
      best_n = type_counts_[t];
      best = t;
    }
  }
  dominant_type_ = non_null_ == 0 ? ValueType::kString
                                  : static_cast<ValueType>(best);
  semantic_type_ = ingest::DetectColumnSemanticType(strings);
}

void ColumnProfile::Merge(const ColumnProfile& other) {
  count_ += other.count_;
  non_null_ += other.non_null_;
  for (int t = 0; t < 5; ++t) type_counts_[t] += other.type_counts_[t];
  if (other.numeric_n_ > 0) {
    if (numeric_n_ == 0) {
      min_ = other.min_;
      max_ = other.max_;
    } else {
      min_ = std::min(min_, other.min_);
      max_ = std::max(max_, other.max_);
    }
    numeric_n_ += other.numeric_n_;
    sum_ += other.sum_;
    sum_sq_ += other.sum_sq_;
  }
  string_n_ += other.string_n_;
  total_string_len_ += other.total_string_len_;
  for (const auto& [tok, n] : other.token_tf_) token_tf_[tok] += n;
  for (const auto& [val, n] : other.values_seen_) {
    if (values_seen_.size() < kMaxRetainedValues ||
        values_seen_.count(val) > 0) {
      values_seen_[val] += n;
    }
  }
  // Recompute dominant type from merged counts.
  int best = static_cast<int>(ValueType::kString);
  int64_t best_n = -1;
  for (int t = 1; t < 5; ++t) {
    if (type_counts_[t] > best_n) {
      best_n = type_counts_[t];
      best = t;
    }
  }
  if (non_null_ > 0) dominant_type_ = static_cast<ValueType>(best);
  // Semantic type: keep ours unless we had none.
  if (semantic_type_ == ingest::SemanticType::kUnknown) {
    semantic_type_ = other.semantic_type_;
  }
}

double ColumnProfile::mean() const {
  return numeric_n_ == 0 ? 0.0 : sum_ / static_cast<double>(numeric_n_);
}

double ColumnProfile::stddev() const {
  if (numeric_n_ == 0) return 0.0;
  double m = mean();
  double var = sum_sq_ / static_cast<double>(numeric_n_) - m * m;
  return var <= 0 ? 0.0 : std::sqrt(var);
}

double ColumnProfile::avg_string_len() const {
  return string_n_ == 0
             ? 0.0
             : static_cast<double>(total_string_len_) / string_n_;
}

double ColumnProfile::ValueOverlap(const ColumnProfile& other) const {
  if (values_seen_.empty() && other.values_seen_.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& [v, _] : values_seen_) inter += other.values_seen_.count(v);
  size_t uni = values_seen_.size() + other.values_seen_.size() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double ColumnProfile::TokenCosine(const ColumnProfile& other) const {
  if (token_tf_.empty() || other.token_tf_.empty()) return 0.0;
  double dot = 0, na = 0, nb = 0;
  for (const auto& [tok, n] : token_tf_) {
    na += static_cast<double>(n) * n;
    auto it = other.token_tf_.find(tok);
    if (it != other.token_tf_.end()) {
      dot += static_cast<double>(n) * it->second;
    }
  }
  for (const auto& [tok, n] : other.token_tf_) {
    nb += static_cast<double>(n) * n;
  }
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

double ColumnProfile::NumericAffinity(const ColumnProfile& other) const {
  if (numeric_n_ == 0 || other.numeric_n_ == 0) return 0.0;
  // Range overlap.
  double lo = std::max(min_, other.min_);
  double hi = std::min(max_, other.max_);
  double span = std::max(max_, other.max_) - std::min(min_, other.min_);
  double range_overlap =
      span <= 0 ? 1.0 : std::max(0.0, (hi - lo)) / span;
  // Mean proximity relative to the pooled spread.
  double spread = std::max({stddev(), other.stddev(), 1e-9});
  double mean_prox = std::exp(-std::fabs(mean() - other.mean()) / (2 * spread));
  return 0.5 * range_overlap + 0.5 * mean_prox;
}

}  // namespace dt::match
