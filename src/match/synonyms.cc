#include "match/synonyms.h"

#include <algorithm>
#include <unordered_set>

#include "common/strutil.h"

namespace dt::match {

void SynonymDictionary::AddGroup(const std::vector<std::string>& group) {
  if (group.empty()) return;
  // Find an existing group id among the words, else make a new one.
  int gid = -1;
  for (const auto& w : group) {
    auto it = group_of_.find(ToLower(w));
    if (it != group_of_.end()) {
      gid = it->second;
      break;
    }
  }
  if (gid < 0) {
    gid = static_cast<int>(representative_.size());
    representative_.push_back(ToLower(group[0]));
  }
  for (const auto& w : group) {
    std::string lw = ToLower(w);
    auto it = group_of_.find(lw);
    if (it != group_of_.end() && it->second != gid) {
      // Merge: move everything from the old group into gid.
      int old = it->second;
      for (auto& [tok, g] : group_of_) {
        if (g == old) g = gid;
      }
    }
    group_of_[lw] = gid;
  }
}

int SynonymDictionary::GroupOf(const std::string& token) const {
  auto it = group_of_.find(token);
  return it == group_of_.end() ? -1 : it->second;
}

bool SynonymDictionary::AreSynonyms(std::string_view a,
                                    std::string_view b) const {
  std::string la = ToLower(a), lb = ToLower(b);
  if (la == lb) return true;
  int ga = GroupOf(la), gb = GroupOf(lb);
  return ga >= 0 && ga == gb;
}

std::string SynonymDictionary::Canonicalize(std::string_view token) const {
  std::string lt = ToLower(token);
  int g = GroupOf(lt);
  return g < 0 ? lt : representative_[g];
}

double SynonymDictionary::SynonymJaccard(
    const std::vector<std::string>& a, const std::vector<std::string>& b) const {
  if (a.empty() && b.empty()) return 1.0;
  std::unordered_set<std::string> sa, sb;
  for (const auto& t : a) sa.insert(Canonicalize(t));
  for (const auto& t : b) sb.insert(Canonicalize(t));
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t uni = sa.size() + sb.size() - inter;
  return uni == 0 ? 1.0 : static_cast<double>(inter) / static_cast<double>(uni);
}

double SynonymDictionary::SynonymOverlap(
    const std::vector<std::string>& a, const std::vector<std::string>& b) const {
  if (a.empty() && b.empty()) return 1.0;
  if (a.empty() || b.empty()) return 0.0;
  std::unordered_set<std::string> sa, sb;
  for (const auto& t : a) sa.insert(Canonicalize(t));
  for (const auto& t : b) sb.insert(Canonicalize(t));
  size_t inter = 0;
  for (const auto& t : sa) inter += sb.count(t);
  size_t mn = std::min(sa.size(), sb.size());
  return mn == 0 ? 0.0 : static_cast<double>(inter) / static_cast<double>(mn);
}

SynonymDictionary SynonymDictionary::Default() {
  SynonymDictionary d;
  // Pricing.
  d.AddGroup({"price", "cost", "fee", "fare", "rate"});
  d.AddGroup({"cheapest", "lowest", "min", "minimum", "best"});
  d.AddGroup({"discount", "deal", "offer", "promo", "promotion"});
  // Venues.
  d.AddGroup({"theater", "theatre", "venue", "playhouse", "hall"});
  d.AddGroup({"address", "addr", "location", "loc", "street"});
  d.AddGroup({"city", "town", "municipality"});
  d.AddGroup({"state", "province", "region"});
  // Shows.
  d.AddGroup({"show", "production", "musical", "play"});
  d.AddGroup({"schedule", "times", "showtimes", "curtain", "performance",
              "performances"});
  d.AddGroup({"name", "title", "label"});
  d.AddGroup({"movie", "film", "picture"});
  // Dates.
  d.AddGroup({"date", "day", "when"});
  d.AddGroup({"first", "opening", "premiere", "start", "begin", "begins"});
  d.AddGroup({"last", "closing", "end", "final"});
  // Contact / misc enterprise vocabulary.
  d.AddGroup({"phone", "tel", "telephone", "contact"});
  d.AddGroup({"url", "link", "website", "web", "site", "homepage"});
  d.AddGroup({"description", "desc", "summary", "text", "feed", "body"});
  d.AddGroup({"seats", "capacity", "size"});
  d.AddGroup({"company", "organization", "org", "firm", "employer"});
  d.AddGroup({"person", "people", "individual"});
  d.AddGroup({"id", "identifier", "key", "code"});
  d.AddGroup({"quantity", "qty", "count", "num", "number"});
  return d;
}

}  // namespace dt::match
