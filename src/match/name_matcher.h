/// \file name_matcher.h
/// \brief Attribute-name similarity signals.
///
/// Combines string metrics (edit distance, Jaro-Winkler, q-grams) with
/// token-level signals (name-token Jaccard, synonym Jaccard) into one
/// heuristic name score in [0, 1] — the per-pair numbers the Data Tamer
/// UI shows next to each suggested matching target (Figs. 2 and 3).

#pragma once

#include <string>
#include <string_view>

#include "match/synonyms.h"

namespace dt::match {

/// \brief Per-signal breakdown of a name comparison (for explainable
/// suggestions in the review UI).
struct NameMatchSignals {
  double exact = 0;           ///< 1 if case-insensitive equal
  double levenshtein = 0;     ///< normalized edit similarity
  double jaro_winkler = 0;
  double qgram_jaccard = 0;   ///< 2-gram Jaccard
  double token_jaccard = 0;   ///< NameTokens set Jaccard
  double synonym_jaccard = 0; ///< token Jaccard under synonym classes
  double synonym_overlap = 0; ///< containment coefficient under synonyms

  /// Blended name score: exact match short-circuits to 1; otherwise the
  /// max of (synonym-aware token evidence) and (character evidence),
  /// which keeps "price"/"cheapest_price" and "theatre"/"theater" both
  /// high without either signal washing the other out.
  double Combined() const;
};

/// Computes all signals for a pair of attribute names. `synonyms` may
/// be null (synonym_jaccard then equals token_jaccard).
NameMatchSignals ComputeNameSignals(std::string_view a, std::string_view b,
                                    const SynonymDictionary* synonyms);

/// Shorthand for ComputeNameSignals(...).Combined().
double NameSimilarity(std::string_view a, std::string_view b,
                      const SynonymDictionary* synonyms);

}  // namespace dt::match
