/// \file global_schema.h
/// \brief Bottom-up global integrated schema (Figs. 2 and 3).
///
/// The global schema starts empty and grows as sources arrive: each
/// incoming attribute is matched against every current global
/// attribute; scores above the acceptance threshold map automatically,
/// scores in the review band go to expert sourcing, and attributes with
/// no counterpart are added to the global schema (the "add to global
/// schema / ignore" alert of Fig. 2).

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "ingest/type_infer.h"
#include "match/composite_matcher.h"
#include "relational/table.h"

namespace dt::match {

/// \brief One attribute of the global integrated schema.
struct GlobalAttribute {
  std::string name;
  relational::ValueType type = relational::ValueType::kString;
  ColumnProfile profile;
  /// (source table, source attribute) pairs merged into this attribute.
  std::vector<std::pair<std::string, std::string>> provenance;
};

/// \brief A ranked suggestion for a source attribute.
struct MatchSuggestion {
  int global_index = -1;
  double score = 0;
  MatchScore detail;
};

/// Routing decision for one source attribute.
enum class MatchDecision {
  kAutoAccept = 0,   ///< top score >= accept threshold
  kNeedsReview = 1,  ///< top score in [review, accept)
  kNewAttribute = 2, ///< no suggestion above the review threshold
};

const char* MatchDecisionName(MatchDecision d);

/// \brief Match outcome for one source attribute.
struct AttributeMatchResult {
  std::string source_attr;
  std::vector<MatchSuggestion> suggestions;  ///< descending by score
  MatchDecision decision = MatchDecision::kNewAttribute;

  /// Convenience: best suggestion score (0 when none).
  double top_score() const {
    return suggestions.empty() ? 0.0 : suggestions[0].score;
  }
};

/// Thresholds and knobs. The paper: "The user can pick the acceptance
/// threshold by looking at the quality of matches."
struct GlobalSchemaOptions {
  double accept_threshold = 0.70;
  double review_threshold = 0.45;
  int max_suggestions = 5;
  MatcherWeights weights;
};

/// Per-source integration statistics (drives the Fig. 2 curve of human
/// effort vs. source index).
struct IntegrationReport {
  std::string source_name;
  int auto_accepted = 0;
  int sent_to_review = 0;
  int new_attributes = 0;
  /// Review outcomes applied when integrating (from experts).
  int review_mapped = 0;
  int review_added = 0;
};

/// \brief The global schema and its bottom-up construction operations.
class GlobalSchema {
 public:
  explicit GlobalSchema(GlobalSchemaOptions opts = {},
                        const SynonymDictionary* synonyms = nullptr);

  /// Matches every attribute of `table` against the current global
  /// schema without mutating it (pure suggestion pass — what the UI
  /// shows before the user clicks).
  std::vector<AttributeMatchResult> MatchTable(
      const relational::Table& table) const;

  /// Resolution of one reviewed attribute: map to an existing global
  /// attribute (global_index >= 0) or create a new one (-1).
  struct ReviewResolution {
    int global_index = -1;
  };

  /// \brief Integrates a table using the given match results.
  ///
  /// Auto-accepts merge immediately; kNeedsReview attributes consult
  /// `review_resolutions` (attr name -> resolution) and fall back to
  /// creating a new attribute when absent (conservative default);
  /// kNewAttribute attributes are appended. On success appends a report
  /// to `reports()` and returns the per-source-attribute mapping to
  /// global indexes.
  Result<std::map<std::string, int>> IntegrateTable(
      const relational::Table& table,
      const std::vector<AttributeMatchResult>& results,
      const std::map<std::string, ReviewResolution>& review_resolutions = {});

  /// One-call convenience: MatchTable + IntegrateTable with no expert.
  Result<std::map<std::string, int>> IntegrateTableAuto(
      const relational::Table& table);

  int num_attributes() const { return static_cast<int>(attrs_.size()); }
  const GlobalAttribute& attribute(int i) const { return attrs_[i]; }
  const std::vector<GlobalAttribute>& attributes() const { return attrs_; }

  /// Index of the global attribute named `name` (exact), or -1.
  int IndexOf(const std::string& name) const;

  /// Global index an ingested (source table, attr) pair maps to, or -1.
  int MappingOf(const std::string& source_table,
                const std::string& source_attr) const;

  const std::vector<IntegrationReport>& reports() const { return reports_; }

  const GlobalSchemaOptions& options() const { return opts_; }
  void set_accept_threshold(double t) { opts_.accept_threshold = t; }
  void set_review_threshold(double t) { opts_.review_threshold = t; }

 private:
  int AddAttribute(const std::string& name, relational::ValueType type,
                   ColumnProfile profile, const std::string& source_table,
                   const std::string& source_attr);
  void MergeInto(int global_index, const ColumnProfile& profile,
                 const std::string& source_table,
                 const std::string& source_attr);

  GlobalSchemaOptions opts_;
  const SynonymDictionary* synonyms_;
  CompositeMatcher matcher_;
  std::vector<GlobalAttribute> attrs_;
  // (source_table, source_attr) -> global index
  std::map<std::pair<std::string, std::string>, int> mapping_;
  std::vector<IntegrationReport> reports_;
};

}  // namespace dt::match
