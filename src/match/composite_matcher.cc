#include "match/composite_matcher.h"

#include <algorithm>

#include "common/strutil.h"

namespace dt::match {

std::string MatchScore::Explain() const {
  std::string out = "name=" + FormatDouble(name_score, 2);
  if (name_signals.synonym_jaccard > name_signals.token_jaccard) {
    out += " (syn=" + FormatDouble(name_signals.synonym_jaccard, 2) + ")";
  }
  out += " value=" + FormatDouble(value_score, 2);
  out += " sem=" + FormatDouble(semantic_score, 2);
  out += " -> " + FormatDouble(total, 2);
  return out;
}

MatchScore CompositeMatcher::Score(const AttributeCandidate& source,
                                   const AttributeCandidate& target) const {
  MatchScore s;
  s.name_signals = ComputeNameSignals(source.name, target.name, synonyms_);
  s.name_score = s.name_signals.Combined();

  const bool have_profiles =
      source.profile != nullptr && target.profile != nullptr &&
      source.profile->non_null() > 0 && target.profile->non_null() > 0;

  if (have_profiles) {
    const ColumnProfile& a = *source.profile;
    const ColumnProfile& b = *target.profile;
    // Value evidence: the strongest of token distribution, shared
    // values, and numeric shape (different channels dominate for
    // different column kinds).
    s.value_score = std::max(
        {a.TokenCosine(b), a.ValueOverlap(b), a.NumericAffinity(b)});
    // Semantic agreement: full credit for equal semantic types, half
    // credit for agreeing storage type only.
    if (a.semantic_type() == b.semantic_type() &&
        a.semantic_type() != ingest::SemanticType::kUnknown) {
      s.semantic_score = 1.0;
    } else if (a.dominant_type() == b.dominant_type()) {
      s.semantic_score = 0.5;
    }
    double wsum = weights_.name + weights_.value + weights_.semantic;
    s.total = (weights_.name * s.name_score + weights_.value * s.value_score +
               weights_.semantic * s.semantic_score) /
              wsum;
    // A perfect name match should not be dragged below acceptance by
    // weak value evidence alone (e.g. disjoint value sets for the same
    // attribute across sources).
    if (s.name_signals.exact >= 1.0) s.total = std::max(s.total, 0.9);
  } else {
    s.total = s.name_score;
  }
  return s;
}

}  // namespace dt::match
