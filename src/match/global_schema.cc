#include "match/global_schema.h"

#include <algorithm>

namespace dt::match {

const char* MatchDecisionName(MatchDecision d) {
  switch (d) {
    case MatchDecision::kAutoAccept:
      return "auto-accept";
    case MatchDecision::kNeedsReview:
      return "needs-review";
    case MatchDecision::kNewAttribute:
      return "new-attribute";
  }
  return "?";
}

GlobalSchema::GlobalSchema(GlobalSchemaOptions opts,
                           const SynonymDictionary* synonyms)
    : opts_(opts),
      synonyms_(synonyms),
      matcher_(synonyms, opts.weights) {}

std::vector<AttributeMatchResult> GlobalSchema::MatchTable(
    const relational::Table& table) const {
  std::vector<AttributeMatchResult> out;
  const auto& schema = table.schema();
  for (const auto& attr : schema.attributes()) {
    AttributeMatchResult res;
    res.source_attr = attr.name;
    ColumnProfile src_profile = ColumnProfile::Build(table.Column(attr.name));
    AttributeCandidate src{attr.name, &src_profile};

    for (int g = 0; g < num_attributes(); ++g) {
      AttributeCandidate tgt{attrs_[g].name, &attrs_[g].profile};
      MatchScore score = matcher_.Score(src, tgt);
      if (score.total >= opts_.review_threshold) {
        MatchSuggestion sug;
        sug.global_index = g;
        sug.score = score.total;
        sug.detail = score;
        res.suggestions.push_back(std::move(sug));
      }
    }
    std::sort(res.suggestions.begin(), res.suggestions.end(),
              [](const MatchSuggestion& a, const MatchSuggestion& b) {
                if (a.score != b.score) return a.score > b.score;
                return a.global_index < b.global_index;
              });
    if (static_cast<int>(res.suggestions.size()) > opts_.max_suggestions) {
      res.suggestions.resize(opts_.max_suggestions);
    }
    if (res.suggestions.empty()) {
      res.decision = MatchDecision::kNewAttribute;
    } else if (res.suggestions[0].score >= opts_.accept_threshold) {
      res.decision = MatchDecision::kAutoAccept;
    } else {
      res.decision = MatchDecision::kNeedsReview;
    }
    out.push_back(std::move(res));
  }
  return out;
}

int GlobalSchema::AddAttribute(const std::string& name,
                               relational::ValueType type,
                               ColumnProfile profile,
                               const std::string& source_table,
                               const std::string& source_attr) {
  // Global attribute names must be unique; suffix on clash (two
  // distinct source attributes may share a name but fail to match on
  // content — both deserve to exist).
  std::string unique = name;
  int suffix = 2;
  while (IndexOf(unique) >= 0) {
    unique = name + "_" + std::to_string(suffix++);
  }
  GlobalAttribute attr;
  attr.name = unique;
  attr.type = type;
  attr.profile = std::move(profile);
  attr.provenance.emplace_back(source_table, source_attr);
  attrs_.push_back(std::move(attr));
  int idx = num_attributes() - 1;
  mapping_[{source_table, source_attr}] = idx;
  return idx;
}

void GlobalSchema::MergeInto(int global_index, const ColumnProfile& profile,
                             const std::string& source_table,
                             const std::string& source_attr) {
  attrs_[global_index].profile.Merge(profile);
  attrs_[global_index].provenance.emplace_back(source_table, source_attr);
  mapping_[{source_table, source_attr}] = global_index;
}

Result<std::map<std::string, int>> GlobalSchema::IntegrateTable(
    const relational::Table& table,
    const std::vector<AttributeMatchResult>& results,
    const std::map<std::string, ReviewResolution>& review_resolutions) {
  // Validate the result set covers the table's schema.
  if (results.size() != static_cast<size_t>(table.schema().num_attributes())) {
    return Status::InvalidArgument(
        "match results cover " + std::to_string(results.size()) +
        " attributes but table " + table.name() + " has " +
        std::to_string(table.schema().num_attributes()));
  }
  IntegrationReport report;
  report.source_name = table.name();
  std::map<std::string, int> mapping;

  for (const auto& res : results) {
    if (!table.schema().Contains(res.source_attr)) {
      return Status::InvalidArgument("match result for unknown attribute " +
                                     res.source_attr);
    }
    ColumnProfile profile =
        ColumnProfile::Build(table.Column(res.source_attr));
    auto type = table.schema()
                    .attribute(*table.schema().IndexOf(res.source_attr))
                    .type;
    switch (res.decision) {
      case MatchDecision::kAutoAccept: {
        int g = res.suggestions[0].global_index;
        if (g < 0 || g >= num_attributes()) {
          return Status::OutOfRange("suggestion index out of range");
        }
        MergeInto(g, profile, table.name(), res.source_attr);
        mapping[res.source_attr] = g;
        ++report.auto_accepted;
        break;
      }
      case MatchDecision::kNeedsReview: {
        ++report.sent_to_review;
        auto it = review_resolutions.find(res.source_attr);
        if (it != review_resolutions.end() && it->second.global_index >= 0) {
          if (it->second.global_index >= num_attributes()) {
            return Status::OutOfRange("review resolution index out of range");
          }
          MergeInto(it->second.global_index, profile, table.name(),
                    res.source_attr);
          mapping[res.source_attr] = it->second.global_index;
          ++report.review_mapped;
        } else {
          // Conservative default: keep as a distinct global attribute.
          int g = AddAttribute(res.source_attr, type, std::move(profile),
                               table.name(), res.source_attr);
          mapping[res.source_attr] = g;
          ++report.review_added;
        }
        break;
      }
      case MatchDecision::kNewAttribute: {
        int g = AddAttribute(res.source_attr, type, std::move(profile),
                             table.name(), res.source_attr);
        mapping[res.source_attr] = g;
        ++report.new_attributes;
        break;
      }
    }
  }
  reports_.push_back(report);
  return mapping;
}

Result<std::map<std::string, int>> GlobalSchema::IntegrateTableAuto(
    const relational::Table& table) {
  return IntegrateTable(table, MatchTable(table));
}

int GlobalSchema::IndexOf(const std::string& name) const {
  for (int i = 0; i < num_attributes(); ++i) {
    if (attrs_[i].name == name) return i;
  }
  return -1;
}

int GlobalSchema::MappingOf(const std::string& source_table,
                            const std::string& source_attr) const {
  auto it = mapping_.find({source_table, source_attr});
  return it == mapping_.end() ? -1 : it->second;
}

}  // namespace dt::match
