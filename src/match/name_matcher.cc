#include "match/name_matcher.h"

#include <algorithm>

#include "common/strutil.h"

namespace dt::match {

double NameMatchSignals::Combined() const {
  if (exact >= 1.0) return 1.0;
  // Token-level evidence, upgraded by synonyms; containment counts at a
  // discount ("title" covers the name token of "show_name" but not the
  // whole attribute).
  double token_evidence = std::max(
      {token_jaccard, synonym_jaccard, 0.85 * synonym_overlap});
  // Character-level evidence.
  double char_evidence =
      std::max({levenshtein, jaro_winkler * 0.95, qgram_jaccard});
  // Partial containment ("price" vs "cheapest_price") shows up as
  // token_jaccard 0.5; blend rather than max so both kinds of evidence
  // help, then cap below exact-match.
  double blended = 0.6 * std::max(token_evidence, char_evidence) +
                   0.4 * (0.5 * (token_evidence + char_evidence));
  return std::min(blended, 0.99);
}

NameMatchSignals ComputeNameSignals(std::string_view a, std::string_view b,
                                    const SynonymDictionary* synonyms) {
  NameMatchSignals s;
  std::string la = ToLower(a), lb = ToLower(b);
  s.exact = (la == lb) ? 1.0 : 0.0;
  s.levenshtein = LevenshteinSimilarity(la, lb);
  s.jaro_winkler = JaroWinklerSimilarity(la, lb);
  s.qgram_jaccard = QGramJaccard(a, b, 2);
  auto ta = NameTokens(a), tb = NameTokens(b);
  s.token_jaccard = JaccardSimilarity(ta, tb);
  if (synonyms != nullptr) {
    s.synonym_jaccard = synonyms->SynonymJaccard(ta, tb);
    s.synonym_overlap = synonyms->SynonymOverlap(ta, tb);
  } else {
    s.synonym_jaccard = s.token_jaccard;
    SynonymDictionary empty;
    s.synonym_overlap = empty.SynonymOverlap(ta, tb);
  }
  return s;
}

double NameSimilarity(std::string_view a, std::string_view b,
                      const SynonymDictionary* synonyms) {
  return ComputeNameSignals(a, b, synonyms).Combined();
}

}  // namespace dt::match
