/// \file threshold_tuner.h
/// \brief Auto-tuning of the schema-matching acceptance threshold from
/// expert feedback (the paper: "the user can pick the acceptance
/// threshold by looking at the quality of matches" — this module picks
/// it for them from the review outcomes the expert loop accumulates).
///
/// Every resolved review task yields an observation (machine score,
/// was-the-top-suggestion-correct). The tuner selects the smallest
/// acceptance threshold whose empirical precision above it meets the
/// curator's target, shrinking the review band — and thus human
/// effort — as evidence accumulates (the Fig. 2 saturation story).

#pragma once

#include <cstdint>
#include <vector>

#include "common/status.h"

namespace dt::match {

/// \brief One resolved review outcome.
struct ThresholdObservation {
  double machine_score = 0;  ///< top suggestion's composite score
  bool top_was_correct = false;
};

/// \brief Accumulates observations and recommends thresholds.
class ThresholdTuner {
 public:
  /// \param target_precision minimum acceptable fraction of correct
  ///        auto-accepts above the recommended threshold.
  /// \param min_observations observations required before recommending
  ///        (below it, RecommendAcceptThreshold returns the fallback).
  explicit ThresholdTuner(double target_precision = 0.95,
                          int64_t min_observations = 20)
      : target_precision_(target_precision),
        min_observations_(min_observations) {}

  void Observe(double machine_score, bool top_was_correct) {
    observations_.push_back({machine_score, top_was_correct});
  }
  void Observe(const ThresholdObservation& obs) {
    observations_.push_back(obs);
  }

  int64_t num_observations() const {
    return static_cast<int64_t>(observations_.size());
  }

  /// \brief Smallest threshold T such that the empirical precision of
  /// observations with score >= T is >= target. Returns `fallback`
  /// until enough observations exist or when no threshold achieves the
  /// target.
  double RecommendAcceptThreshold(double fallback) const;

  /// Empirical precision of auto-accepting at threshold `t` (1.0 when
  /// nothing scores above `t`).
  double PrecisionAt(double t) const;

  /// Fraction of observations at or above `t` (the auto-accept rate —
  /// what the threshold saves in human effort).
  double CoverageAt(double t) const;

 private:
  double target_precision_;
  int64_t min_observations_;
  std::vector<ThresholdObservation> observations_;
};

}  // namespace dt::match
