/// \file composite_matcher.h
/// \brief Weighted combination of name and value evidence for one
/// (source attribute, global attribute) pair.

#pragma once

#include <string>

#include "match/column_profile.h"
#include "match/name_matcher.h"
#include "match/synonyms.h"

namespace dt::match {

/// Relative weights of the evidence channels (normalized at use).
struct MatcherWeights {
  double name = 0.55;
  double value = 0.30;
  double semantic = 0.15;
};

/// \brief Full score breakdown for a candidate pair, shown to the user
/// in the suggestion drop-down (Figs. 2/3) and handed to experts with
/// review tasks.
struct MatchScore {
  double total = 0;
  NameMatchSignals name_signals;
  double name_score = 0;
  double value_score = 0;
  double semantic_score = 0;

  /// One-line explanation, e.g.
  /// "name=0.82 (syn=1.00) value=0.41 sem=1.00 -> 0.74".
  std::string Explain() const;
};

/// \brief One side of a match: an attribute with its content profile.
struct AttributeCandidate {
  std::string name;
  const ColumnProfile* profile = nullptr;  // may be null (name-only match)
};

/// \brief Scores (source, target) attribute pairs.
class CompositeMatcher {
 public:
  explicit CompositeMatcher(const SynonymDictionary* synonyms,
                            MatcherWeights weights = {})
      : synonyms_(synonyms), weights_(weights) {}

  /// Scores the pair. When either profile is missing, the value and
  /// semantic channels drop out and their weight redistributes onto the
  /// name channel (so name-only matching still yields full-range
  /// scores, matching the early bootstrap stage of Fig. 2).
  MatchScore Score(const AttributeCandidate& source,
                   const AttributeCandidate& target) const;

  const MatcherWeights& weights() const { return weights_; }
  void set_weights(MatcherWeights w) { weights_ = w; }

 private:
  const SynonymDictionary* synonyms_;
  MatcherWeights weights_;
};

}  // namespace dt::match
