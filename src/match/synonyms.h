/// \file synonyms.h
/// \brief Token-level synonym dictionary for attribute-name matching.
///
/// Data Tamer's schema matcher understands that "price" and "cost"
/// name the same concept even though no string metric says so. The
/// dictionary groups tokens into synonym classes; matching happens on
/// the class representative. The default dictionary covers the
/// vocabulary of the paper's Broadway/fusion demo plus common
/// enterprise attribute tokens; callers extend it per domain (and the
/// expert-sourcing loop can add entries at runtime).

#pragma once

#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dt::match {

/// \brief Union of synonym groups over lower-case tokens.
class SynonymDictionary {
 public:
  /// Registers all words in `group` as mutual synonyms. A word already
  /// in another group merges the two groups (union semantics).
  void AddGroup(const std::vector<std::string>& group);

  /// True when the lower-cased tokens are in the same group (every
  /// token is trivially a synonym of itself).
  bool AreSynonyms(std::string_view a, std::string_view b) const;

  /// Canonical representative of the token's group (the token itself
  /// when unregistered).
  std::string Canonicalize(std::string_view token) const;

  /// Jaccard similarity of two token sets where tokens compare via
  /// their synonym classes.
  double SynonymJaccard(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) const;

  /// Overlap coefficient |A∩B| / min(|A|,|B|) under synonym classes —
  /// containment-aware, so "title" fully covers "show_name"'s name
  /// token even though the Jaccard is only 0.5.
  double SynonymOverlap(const std::vector<std::string>& a,
                        const std::vector<std::string>& b) const;

  int64_t num_tokens() const { return static_cast<int64_t>(group_of_.size()); }

  /// The built-in dictionary used by the paper's demo scenario
  /// (schedule/performance, theater/venue, price/cost, ...).
  static SynonymDictionary Default();

 private:
  int GroupOf(const std::string& token) const;

  std::unordered_map<std::string, int> group_of_;
  std::vector<std::string> representative_;  // per group id
};

}  // namespace dt::match
