#include "match/threshold_tuner.h"

#include <algorithm>

namespace dt::match {

double ThresholdTuner::PrecisionAt(double t) const {
  int64_t above = 0, correct = 0;
  for (const auto& obs : observations_) {
    if (obs.machine_score >= t) {
      ++above;
      if (obs.top_was_correct) ++correct;
    }
  }
  return above == 0 ? 1.0 : static_cast<double>(correct) / above;
}

double ThresholdTuner::CoverageAt(double t) const {
  if (observations_.empty()) return 0.0;
  int64_t above = 0;
  for (const auto& obs : observations_) {
    if (obs.machine_score >= t) ++above;
  }
  return static_cast<double>(above) / observations_.size();
}

double ThresholdTuner::RecommendAcceptThreshold(double fallback) const {
  if (num_observations() < min_observations_) return fallback;
  // Sort scores descending; sweep the cut downward, tracking precision.
  std::vector<ThresholdObservation> sorted = observations_;
  std::sort(sorted.begin(), sorted.end(),
            [](const ThresholdObservation& a, const ThresholdObservation& b) {
              return a.machine_score > b.machine_score;
            });
  int64_t correct = 0;
  double best = fallback;
  bool found = false;
  size_t i = 0;
  while (i < sorted.size()) {
    // Consume the whole tie group: a threshold at this score accepts
    // every observation in it, so precision is only evaluable at group
    // boundaries.
    double score = sorted[i].machine_score;
    size_t j = i;
    while (j < sorted.size() && sorted[j].machine_score == score) {
      if (sorted[j].top_was_correct) ++correct;
      ++j;
    }
    double precision = static_cast<double>(correct) / j;
    if (precision >= target_precision_) {
      best = score;
      found = true;
    }
    i = j;
  }
  return found ? best : fallback;
}

}  // namespace dt::match
