#include "fusion/data_tamer.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "common/strutil.h"
#include "ingest/flatten.h"
#include "ingest/json.h"
#include "ingest/type_infer.h"
#include "match/name_matcher.h"

namespace dt::fusion {

using relational::Table;
using relational::Value;
using storage::DocValue;

DataTamer::DataTamer(DataTamerOptions opts)
    : opts_(opts),
      synonyms_(std::make_unique<match::SynonymDictionary>(
          match::SynonymDictionary::Default())),
      global_schema_(std::make_unique<match::GlobalSchema>(
          opts.schema_options, synonyms_.get())),
      store_("dt"),
      transforms_(clean::TransformRegistry::Builtins(opts.eur_usd_rate)) {
  // The facade-level thread knob is the default for the consolidation
  // engine and the snapshot codec; explicit per-subsystem values win.
  if (opts_.num_threads != 1 && opts_.consolidation_options.num_threads == 1) {
    opts_.consolidation_options.num_threads = opts_.num_threads;
  }
  if (opts_.num_threads != 1 && opts_.snapshot_options.num_threads == 1) {
    opts_.snapshot_options.num_threads = opts_.num_threads;
  }
  instance_ =
      store_.CreateCollection("instance", opts_.collection_options)
          .ValueOrDie();
  entity_ =
      store_.CreateCollection("entity", opts_.collection_options).ValueOrDie();
}

DataTamer::~DataTamer() = default;

Result<std::unique_ptr<DataTamer>> DataTamer::Open(DataTamerOptions opts) {
  auto dt = std::make_unique<DataTamer>(opts);
  const storage::DurabilityOptions& dopts = dt->opts_.durability;
  if (dopts.dir.empty() || dopts.durability == storage::Durability::kNone) {
    return dt;  // durability disabled: plain in-memory facade
  }
  std::unique_ptr<storage::DocumentStore> recovered;
  DT_ASSIGN_OR_RETURN(dt->wal_manager_,
                      storage::WalManager::Open(dopts, "dt", &recovered));
  if (recovered != nullptr) {
    dt->ReplaceStore(std::move(*recovered));
  }
  DT_RETURN_NOT_OK(dt->wal_manager_->Attach(&dt->store_));
  return dt;
}

void DataTamer::ReplaceStore(storage::DocumentStore store) {
  store_ = std::move(store);
  // The standard collections can be missing from recovered state (a
  // crash before their create records reached disk under kAsync);
  // recreate them so the facade invariant holds.
  instance_ = store_.GetOrCreateCollection("instance",
                                           opts_.collection_options);
  entity_ = store_.GetOrCreateCollection("entity", opts_.collection_options);
  // Only the document store is persisted: the structured side resets
  // to empty so the facade reflects exactly the replaced store
  // (re-ingest structured sources afterwards).
  catalog_ = relational::Catalog();
  registry_ = ingest::SourceRegistry();
  global_schema_ = std::make_unique<match::GlobalSchema>(opts_.schema_options,
                                                         synonyms_.get());
  ingest_seq_ = 0;
  stats_ = PipelineStats{};
  stats_.fragments_ingested = instance_->count();
  stats_.entities_extracted = entity_->count();
  // Drop the lazy full-text index; the next SearchFragments rebuilds
  // it over the replaced fragments.
  fragment_index_ = query::InvertedIndex("text");
  fragments_indexed_ = 0;
  fragment_index_epoch_ = 0;
  fragment_index_next_id_ = 0;
  // Streaming-ingest state is derived from the store too: drop it and
  // let the next ingest/search re-seed from the replaced record log.
  record_coll_ = nullptr;
  fused_coll_ = nullptr;
  streaming_.reset();
  cluster_doc_.clear();
  ingest_stats_ = IngestStats{};
  fused_index_ = query::InvertedIndex("text");
  fused_index_epoch_ = 0;
}

Status DataTamer::Checkpoint() {
  if (wal_manager_ == nullptr) return Status::OK();
  return wal_manager_->Checkpoint();
}

Status DataTamer::FlushDurability() const {
  if (wal_manager_ == nullptr) return Status::OK();
  return wal_manager_->Flush();
}

Status DataTamer::durability_health() const {
  if (wal_manager_ == nullptr) return Status::OK();
  return wal_manager_->health();
}

storage::DurabilityStats DataTamer::durability_stats() const {
  if (wal_manager_ == nullptr) return storage::DurabilityStats{};
  return wal_manager_->stats();
}

void DataTamer::SetGazetteer(const textparse::Gazetteer* gazetteer) {
  gazetteer_ = gazetteer;
  parser_ = std::make_unique<textparse::DomainParser>(gazetteer_);
}

Result<storage::DocId> DataTamer::IngestTextFragment(std::string_view text,
                                                     const std::string& feed,
                                                     int64_t timestamp) {
  if (parser_ == nullptr) {
    return Status::InvalidArgument(
        "no gazetteer installed; call SetGazetteer first");
  }
  textparse::ParsedFragment frag = parser_->Parse(text, feed, timestamp);
  DocValue instance_doc = textparse::DomainParser::ToInstanceDoc(frag);
  storage::DocId instance_id = instance_->Insert(std::move(instance_doc));
  for (auto& entity_doc : textparse::DomainParser::ToEntityDocs(
           frag, static_cast<int64_t>(instance_id))) {
    entity_->Insert(std::move(entity_doc));
    ++stats_.entities_extracted;
  }
  ++stats_.fragments_ingested;
  return instance_id;
}

Status DataTamer::CreateStandardIndexes() {
  // dt.instance keeps only the default _id index (Table I: nindexes=1).
  // dt.entity gets 7 user indexes + _id = 8 (Table II: nindexes=8).
  for (const char* path : {"type", "name", "surface", "confidence",
                           "instance_id", "award_winning", "source"}) {
    DT_RETURN_NOT_OK(entity_->CreateIndex(path));
  }
  return Status::OK();
}

Table DataTamer::ApplyIngestTransforms(Table table) {
  // Per-column semantic detection drives the normalizing transforms:
  // money converges on "$..." USD renderings, dates on m/d/yyyy.
  std::vector<std::string> attrs;
  for (const auto& a : table.schema().attributes()) attrs.push_back(a.name);
  for (const auto& attr : attrs) {
    std::vector<std::string> cells;
    for (const auto& v : table.Column(attr)) {
      if (!v.is_null()) cells.push_back(v.ToString());
    }
    auto semantic = ingest::DetectColumnSemanticType(cells);
    const char* transform = nullptr;
    if (semantic == ingest::SemanticType::kCurrency) transform = "eur_to_usd";
    if (semantic == ingest::SemanticType::kDate) transform = "us_date";
    if (semantic == ingest::SemanticType::kPhone) {
      transform = "normalize_phone";
    }
    if (transform == nullptr) continue;
    auto fn = transforms_.Get(transform);
    if (!fn.ok()) continue;
    auto transformed = clean::ApplyTransform(table, attr, *fn);
    if (transformed.ok()) table = std::move(transformed).ValueOrDie();
  }
  return table;
}

Result<match::IntegrationReport> DataTamer::IngestStructuredTable(
    Table table, const ReviewResolver& resolver) {
  if (table.source_id().empty()) {
    table.set_source_id("structured/" + std::to_string(stats_.structured_tables));
  }
  // Clean.
  if (opts_.clean_structured_sources) {
    clean::CleaningReport report;
    DT_ASSIGN_OR_RETURN(table,
                        clean::CleanTable(table, opts_.cleaning_options,
                                          &report));
    stats_.cleaning.cells_examined += report.cells_examined;
    stats_.cleaning.nulls_canonicalized += report.nulls_canonicalized;
    stats_.cleaning.whitespace_fixed += report.whitespace_fixed;
    stats_.cleaning.numeric_repaired += report.numeric_repaired;
    stats_.cleaning.outliers_flagged += report.outliers_flagged;
    stats_.cleaning.outliers_dropped += report.outliers_dropped;
  }
  // Transform.
  if (opts_.auto_transform) {
    table = ApplyIngestTransforms(std::move(table));
  }
  // Register provenance.
  ingest::DataSource source;
  source.id = table.source_id();
  source.name = table.name();
  source.kind = ingest::SourceKind::kStructured;
  // Earlier sources outrank later ones at merge time: the first source
  // is the curated reference that seeded the global schema, and the
  // curator vets sources in the order they are onboarded.
  source.trust_priority = std::max(
      opts_.text_trust + 1,
      opts_.structured_trust - static_cast<int>(stats_.structured_tables));
  source.records_ingested = table.num_rows();
  Status reg = registry_.Register(source);
  if (!reg.ok() && !reg.IsAlreadyExists()) return reg;

  // Schema integration.
  auto results = global_schema_->MatchTable(table);
  std::map<std::string, match::GlobalSchema::ReviewResolution> resolutions;
  if (resolver != nullptr) {
    for (const auto& res : results) {
      if (res.decision == match::MatchDecision::kNeedsReview) {
        resolutions[res.source_attr] = {resolver(res, *global_schema_)};
      }
    }
  }
  DT_ASSIGN_OR_RETURN(auto mapping,
                      global_schema_->IntegrateTable(table, results,
                                                     resolutions));
  (void)mapping;
  stats_.structured_rows += table.num_rows();
  ++stats_.structured_tables;
  DT_RETURN_NOT_OK(catalog_.AddTable(std::move(table)).status());
  return global_schema_->reports().back();
}

Result<match::IntegrationReport> DataTamer::IngestSemiStructuredSource(
    const std::string& source_name,
    const std::vector<storage::DocValue>& documents,
    const ReviewResolver& resolver) {
  DT_ASSIGN_OR_RETURN(relational::Table table,
                      ingest::FlattenToTable(source_name, documents));
  table.set_source_id("semistructured/" + source_name);
  // Register under the semi-structured kind before the structured
  // pipeline sees it (which would otherwise register it as structured).
  ingest::DataSource source;
  source.id = table.source_id();
  source.name = source_name;
  source.kind = ingest::SourceKind::kSemiStructured;
  source.trust_priority = std::max(
      opts_.text_trust + 1,
      opts_.structured_trust - static_cast<int>(stats_.structured_tables));
  source.records_ingested = table.num_rows();
  DT_RETURN_NOT_OK(registry_.Register(source));
  return IngestStructuredTable(std::move(table), resolver);
}

Result<match::IntegrationReport> DataTamer::IngestJsonLines(
    const std::string& source_name, std::string_view json_lines,
    const ReviewResolver& resolver) {
  DT_ASSIGN_OR_RETURN(auto docs, ingest::ParseJsonLines(json_lines));
  return IngestSemiStructuredSource(source_name, docs, resolver);
}

std::vector<query::CountRow> DataTamer::TopDiscussed(
    const std::string& entity_type, int k, bool award_winning_only) const {
  query::QueryRequest req;
  req.op = query::QueryOp::kTopDiscussed;
  req.entity_type = entity_type;
  req.k = k;
  req.award_winning_only = award_winning_only;
  Result<query::QueryResponse> resp = Execute(req);
  if (!resp.ok()) return {};
  return std::move(resp->groups);
}

ThreadPool* DataTamer::WorkerPool() const {
  // Guarded lazy init. The facade as a whole is NOT thread-safe (see
  // the class comment) — this lock only keeps the worst failure mode
  // of misuse at bay: two racing queries must not construct two pools
  // into the unique_ptr, destroying one mid-ParallelFor.
  std::lock_guard<std::mutex> lock(worker_pool_mu_);
  if (worker_pool_ == nullptr) {
    int n = ResolveNumThreads(opts_.num_threads);
    if (n <= 1) return nullptr;
    worker_pool_ = std::make_unique<ThreadPool>(n);
  }
  return worker_pool_.get();
}

/// The cached pool serves a request for `want` threads only when it is
/// exactly that wide — a caller asking for any other count keeps its
/// own transient pool (a set pool wins over num_threads, so attaching
/// a mismatched one would silently override the request in either
/// direction).
bool DataTamer::PoolServes(int want) const {
  return want > 1 && want == ResolveNumThreads(opts_.num_threads);
}

storage::SnapshotOptions DataTamer::ResolveSnapshotOptions() const {
  storage::SnapshotOptions opts = opts_.snapshot_options;
  if (opts.pool == nullptr && PoolServes(ResolveNumThreads(opts.num_threads))) {
    opts.pool = WorkerPool();
  }
  return opts;
}

dedup::ConsolidationOptions DataTamer::ResolveConsolidationOptions() const {
  dedup::ConsolidationOptions opts = opts_.consolidation_options;
  // Batch and streaming consolidation ride the facade's one cached
  // pool instead of spawning a private pool per call.
  if (opts.pool == nullptr && PoolServes(ResolveNumThreads(opts.num_threads))) {
    opts.pool = WorkerPool();
  }
  return opts;
}

query::FindOptions DataTamer::ResolveFindOptions(
    const std::string& collection, query::FindOptions opts) const {
  if (opts_.num_threads != 1 && opts.num_threads == 1) {
    opts.num_threads = opts_.num_threads;
  }
  // Parallel scans ride the facade's one cached pool instead of
  // constructing a fresh ThreadPool per query.
  if (opts.pool == nullptr && PoolServes(ResolveNumThreads(opts.num_threads))) {
    opts.pool = WorkerPool();
  }
  if (opts.text_index == nullptr && collection == "instance") {
    RefreshFragmentIndex();
    opts.text_index = &fragment_index_;
  }
  return opts;
}

namespace {

/// The serializable projection of a legacy (collection, pred, opts)
/// call — what the thin wrappers hand to `ExecuteInternal`.
query::QueryRequest MakeFindRequest(query::QueryOp op,
                                    const std::string& collection,
                                    const query::PredicatePtr& pred,
                                    const query::FindOptions& opts) {
  query::QueryRequest req;
  req.op = op;
  req.collection = collection;
  req.predicate = pred;
  req.limit = opts.limit;
  req.order_by = opts.order_by;
  req.order_desc = opts.order_desc;
  req.page_size = opts.page_size;
  req.resume_token = opts.resume_token;
  req.use_indexes = opts.use_indexes;
  req.num_threads = opts.num_threads;
  return req;
}

}  // namespace

Result<query::QueryResponse> DataTamer::Execute(
    const query::QueryRequest& req) const {
  return ExecuteInternal(req, query::FindOptions{});
}

Result<query::QueryResponse> DataTamer::ExecuteInternal(
    const query::QueryRequest& req, query::FindOptions opts) const {
  if (req.op == query::QueryOp::kIngest) {
    // Reads never mutate: the const surface rejects the mutating op
    // instead of silently executing it (read-only servers rely on
    // this).
    return Status::InvalidArgument(
        "ingest is a mutating op; route it through ExecuteMutable");
  }
  // The request's serializable knobs overlay the base options; the
  // process-local members (pool, text index, stats out-param) stay
  // whatever the wrapper supplied and resolve below exactly as the
  // legacy entry points did.
  opts.limit = req.limit;
  opts.order_by = req.order_by;
  opts.order_desc = req.order_desc;
  opts.page_size = req.page_size;
  opts.resume_token = req.resume_token;
  opts.use_indexes = req.use_indexes;
  opts.num_threads = static_cast<int>(req.num_threads);
  query::ExecStats exec_stats;
  query::ExecStats* caller_stats = opts.stats;
  opts.stats = &exec_stats;

  const std::string coll_name = req.op == query::QueryOp::kTopDiscussed
                                    ? std::string("entity")
                                    : req.collection;
  DT_ASSIGN_OR_RETURN(const storage::Collection* coll,
                      store_.GetCollection(coll_name));
  opts = ResolveFindOptions(coll_name, std::move(opts));

  query::QueryResponse resp;
  switch (req.op) {
    case query::QueryOp::kFind: {
      // Reads go through an explicit version handle: the whole
      // execution sees one immutable storage version however the
      // collection mutates.
      DT_ASSIGN_OR_RETURN(resp.ids,
                          query::Find(coll->GetView(), req.predicate, opts));
      break;
    }
    case query::QueryOp::kFindPage: {
      DT_ASSIGN_OR_RETURN(
          query::FindResult page,
          query::FindPage(coll->GetView(), req.predicate, opts));
      resp.ids = std::move(page.ids);
      resp.next_token = std::move(page.next_token);
      break;
    }
    case query::QueryOp::kExplain: {
      storage::CollectionView view = coll->GetView();
      resp.explain = query::ExplainFind(view, req.predicate, opts);
      // The second planning pass only reifies the structured form; it
      // must not double-count into the planning stats.
      query::FindOptions no_stats = opts;
      no_stats.stats = nullptr;
      resp.plan = query::PlanFind(view, req.predicate, no_stats).ToDocValue();
      break;
    }
    case query::QueryOp::kCount:
      resp.groups = query::CountByField(*coll, req.group_path, req.predicate,
                                        opts);
      break;
    case query::QueryOp::kTopK:
      resp.groups = query::TopKByCount(*coll, req.group_path,
                                       static_cast<int>(req.k), req.predicate,
                                       opts);
      break;
    case query::QueryOp::kTopDiscussed: {
      query::PredicatePtr pred =
          query::Predicate::Eq("type", DocValue::Str(req.entity_type));
      if (req.award_winning_only) {
        pred = query::Predicate::And(
            {std::move(pred),
             query::Predicate::Eq("award_winning", DocValue::Str("true"))});
      }
      // Rides the shared bounded top-k machinery (see executor.h's
      // TopKCursor / BoundedTopK) over the planner-routed group counts.
      resp.groups = query::TopKByCount(*coll, "name", static_cast<int>(req.k),
                                       pred, opts);
      break;
    }
    case query::QueryOp::kIngest:
      break;  // rejected above
  }
  resp.stats = exec_stats;
  if (caller_stats != nullptr) *caller_stats = exec_stats;
  return resp;
}

Result<std::vector<storage::DocId>> DataTamer::Find(
    const std::string& collection, const query::PredicatePtr& pred,
    query::FindOptions opts) const {
  query::QueryRequest req =
      MakeFindRequest(query::QueryOp::kFind, collection, pred, opts);
  DT_ASSIGN_OR_RETURN(query::QueryResponse resp,
                      ExecuteInternal(req, std::move(opts)));
  return std::move(resp.ids);
}

Result<query::FindResult> DataTamer::FindPage(
    const std::string& collection, const query::PredicatePtr& pred,
    query::FindOptions opts) const {
  query::QueryRequest req =
      MakeFindRequest(query::QueryOp::kFindPage, collection, pred, opts);
  DT_ASSIGN_OR_RETURN(query::QueryResponse resp,
                      ExecuteInternal(req, std::move(opts)));
  return query::FindResult{std::move(resp.ids), std::move(resp.next_token)};
}

Result<std::string> DataTamer::Explain(const std::string& collection,
                                       const query::PredicatePtr& pred,
                                       query::FindOptions opts) const {
  query::QueryRequest req =
      MakeFindRequest(query::QueryOp::kExplain, collection, pred, opts);
  DT_ASSIGN_OR_RETURN(query::QueryResponse resp,
                      ExecuteInternal(req, std::move(opts)));
  return std::move(resp.explain);
}

namespace {
std::string NormalizeName(std::string_view s) {
  return ToLower(NormalizeWhitespace(s));
}

/// The global attribute carrying the entity-name concept: among the
/// candidates similar to "name", prefer the one integrating the most
/// sources (the founding bottom-up name attribute), not a stray
/// single-source attribute that happens to be called "name".
int NameConceptIndex(const match::GlobalSchema& schema,
                     const match::SynonymDictionary* synonyms) {
  int best = -1;
  size_t best_provenance = 0;
  for (int g = 0; g < schema.num_attributes(); ++g) {
    double s =
        match::NameSimilarity(schema.attribute(g).name, "name", synonyms);
    if (s < 0.5) continue;
    size_t prov = schema.attribute(g).provenance.size();
    if (best < 0 || prov > best_provenance) {
      best = g;
      best_provenance = prov;
    }
  }
  return best;
}
}  // namespace

std::vector<dedup::DedupRecord> DataTamer::CollectRecords(
    const std::string& entity_type, const std::string& name) const {
  std::vector<dedup::DedupRecord> records;
  const std::string want = NormalizeName(name);
  int64_t next_id = 1;

  // ---- Text side: one record per distinct canonical entity name. ----
  struct TextEntity {
    std::set<int64_t> instance_ids;
    std::string canonical;
  };
  std::unordered_map<std::string, TextEntity> by_name;
  // The type restriction routes through the planner, so after
  // CreateStandardIndexes this walk is an index scan over exactly the
  // entities of `entity_type`, not a full collection pass. The name
  // comparison stays in code: it matches on the *normalized* form,
  // which no index key carries.
  auto type_ids =
      query::Find(*entity_, query::Predicate::Eq("type",
                                                 DocValue::Str(entity_type)),
                  ResolveFindOptions("entity", {}));
  RethrowIfError(type_ids.status());  // scan bodies cannot fail short of OOM
  for (storage::DocId id : *type_ids) {
    const DocValue* doc = entity_->Get(id);
    if (doc == nullptr) continue;
    const DocValue* ename = doc->Find("name");
    if (ename == nullptr || !ename->is_string()) continue;
    std::string norm = NormalizeName(ename->string_value());
    if (!want.empty() && norm != want) continue;
    auto& te = by_name[norm];
    te.canonical = ename->string_value();
    const DocValue* iid = doc->Find("instance_id");
    if (iid != nullptr && iid->is_int()) {
      te.instance_ids.insert(iid->int_value());
    }
  }
  for (auto& [norm, te] : by_name) {
    dedup::DedupRecord rec;
    rec.id = next_id++;
    rec.entity_type = entity_type;
    rec.source_id = "webtext";
    rec.trust_priority = opts_.text_trust;
    rec.ingest_seq = ingest_seq_;
    rec.fields["name"] = te.canonical;
    // TEXT_FEED: concatenated fragments mentioning the entity (cap 3).
    std::string feed;
    int taken = 0;
    for (int64_t iid : te.instance_ids) {
      const DocValue* inst = instance_->Get(static_cast<storage::DocId>(iid));
      if (inst == nullptr) continue;
      const DocValue* text = inst->Find("text");
      if (text == nullptr || !text->is_string()) continue;
      if (!feed.empty()) feed += " ... ";
      feed += text->string_value();
      if (++taken >= 3) break;
    }
    if (!feed.empty()) rec.fields["TEXT_FEED"] = feed;
    records.push_back(std::move(rec));
  }

  // ---- Structured side: one record per row naming the entity. ----
  int gname = NameConceptIndex(*global_schema_, synonyms_.get());
  if (gname >= 0) {
    int64_t seq = 0;
    for (const auto& table_name : catalog_.TableNames()) {
      const Table* table = catalog_.GetTable(table_name).ValueOrDie();
      ++seq;
      // Locate this table's source attribute for the name concept and
      // the global mapping of every attribute.
      int name_col = -1;
      std::vector<int> global_of(table->schema().num_attributes(), -1);
      for (int c = 0; c < table->schema().num_attributes(); ++c) {
        int g = global_schema_->MappingOf(
            table->name(), table->schema().attribute(c).name);
        global_of[c] = g;
        if (g == gname) name_col = c;
      }
      if (name_col < 0) continue;
      int trust = opts_.structured_trust;
      auto src = registry_.Get(table->source_id());
      if (src.ok()) trust = src->trust_priority;
      for (int64_t r = 0; r < table->num_rows(); ++r) {
        const Value& nv = table->row(r)[name_col];
        if (nv.is_null()) continue;
        std::string norm = NormalizeName(nv.ToString());
        if (want.empty() ? norm.empty() : norm != want) continue;
        dedup::DedupRecord rec;
        rec.id = next_id++;
        rec.entity_type = entity_type;
        rec.source_id = table->source_id();
        rec.trust_priority = trust;
        rec.ingest_seq = seq;
        rec.fields["name"] = nv.ToString();
        for (int c = 0; c < table->schema().num_attributes(); ++c) {
          if (global_of[c] < 0) continue;
          const Value& v = table->row(r)[c];
          if (v.is_null()) continue;
          rec.fields[global_schema_->attribute(global_of[c]).name] =
              v.ToString();
        }
        records.push_back(std::move(rec));
      }
    }
  }
  return records;
}

Status DataTamer::SaveSnapshot(const std::string& path) const {
  return storage::SaveSnapshot(store_, path, ResolveSnapshotOptions());
}

Status DataTamer::LoadSnapshot(const std::string& path) {
  DT_ASSIGN_OR_RETURN(std::unique_ptr<storage::DocumentStore> loaded,
                      storage::LoadSnapshot(path, ResolveSnapshotOptions()));
  // Validate before committing so a bad file leaves the facade usable.
  for (const char* required : {"instance", "entity"}) {
    if (!loaded->GetCollection(required).ok()) {
      return Status::Corruption(std::string("snapshot misses the ") +
                                required + " collection");
    }
  }
  // A durable facade must unhook its WAL observers from the dying
  // collections first, and re-baseline afterwards: the loaded snapshot
  // may rewind a lineage the log is ahead of, so the checkpoint below
  // makes the loaded state THE durable state (and prunes stale
  // segments that would otherwise replay over it).
  if (wal_manager_ != nullptr) wal_manager_->DetachAll();
  ReplaceStore(std::move(*loaded));
  if (wal_manager_ != nullptr) {
    DT_RETURN_NOT_OK(wal_manager_->Attach(&store_));
    DT_RETURN_NOT_OK(wal_manager_->Checkpoint());
  }
  return Status::OK();
}

void DataTamer::RefreshFragmentIndex() const {
  // Staleness is judged by the collection's mutation epoch, not the
  // doc count: count-neutral churn (remove one + append one) and
  // in-place updates must invalidate too. One view supplies epoch,
  // count, scan and next_id, so the watermark bookkeeping can never
  // mix state from two different storage versions.
  storage::CollectionView view = instance_->GetView();
  const uint64_t epoch = view.mutation_epoch();
  if (epoch == fragment_index_epoch_) return;
  const int64_t total = view.count();
  const uint64_t delta = epoch - fragment_index_epoch_;
  // The common case is pure append (fragments only ever arrive
  // through IngestTextFragment, with monotonically growing ids):
  // exactly one mutation per fresh doc past the watermark, and the
  // pre-watermark population intact. Then the new fragments apply as
  // Add deltas instead of rebuilding the whole index.
  std::vector<std::pair<storage::DocId, const storage::DocValue*>> fresh;
  auto cursor = view.ScanDocs();
  if (fragment_index_next_id_ > 0) {
    cursor.SeekAfter(fragment_index_next_id_ - 1);
  }
  storage::DocId id;
  const storage::DocValue* doc;
  while (cursor.Next(&id, &doc)) fresh.emplace_back(id, doc);
  const bool pure_append =
      delta == fresh.size() &&
      fragments_indexed_ + static_cast<int64_t>(fresh.size()) == total;
  if (pure_append) {
    for (const auto& [fid, fdoc] : fresh) {
      // Extract via the index's own field path, exactly as Build does.
      const storage::DocValue* text =
          fdoc->FindPath(fragment_index_.field_path());
      if (text != nullptr && text->is_string()) {
        fragment_index_.Add(fid, text->string_value());
      }
    }
  } else {
    // Removal, update or mixed churn: postings may reference dead or
    // rewritten documents, so fall back to a full rebuild.
    fragment_index_ = query::InvertedIndex("text");
    (void)fragment_index_.Build(*instance_);
  }
  fragments_indexed_ = total;
  fragment_index_epoch_ = epoch;
  fragment_index_next_id_ = view.next_id();
}

std::vector<query::SearchHit> DataTamer::SearchFragments(
    std::string_view keywords, int k) const {
  RefreshFragmentIndex();
  return fragment_index_.Search(keywords, k);
}

Result<std::vector<dedup::CompositeEntity>> DataTamer::ConsolidateAll(
    const std::string& entity_type, dedup::ConsolidationStats* stats) const {
  auto records = CollectRecords(entity_type, "");
  return dedup::Consolidate(records, ResolveConsolidationOptions(), stats);
}

// ---- Continuous ingest (streaming consolidation) -----------------------

namespace {

/// Deterministic searchable rendering of a composite entity: its field
/// values in field-name order (includes the name). What dt.fused's
/// "text" carries and the entity index tokenizes.
std::string FusedText(const dedup::CompositeEntity& entity) {
  std::string text;
  for (const auto& [field, value] : entity.fields) {
    if (value.empty()) continue;
    if (!text.empty()) text += ' ';
    text += value;
  }
  return text;
}

}  // namespace

DocValue DataTamer::FusedEntityDoc(size_t cluster_key) const {
  dedup::CompositeEntity entity = streaming_->EntityOf(cluster_key);
  DocValue doc = dedup::CompositeEntityToDoc(entity);
  doc.Add("text", DocValue::Str(FusedText(entity)));
  return doc;
}

Status DataTamer::EnsureStreaming() {
  if (streaming_ != nullptr) return Status::OK();
  const bool had_records = store_.GetCollection("dedup_record").ok();
  const bool had_fused = store_.GetCollection("fused").ok();
  record_coll_ =
      store_.GetOrCreateCollection("dedup_record", opts_.collection_options);
  fused_coll_ = store_.GetOrCreateCollection("fused", opts_.collection_options);
  if (wal_manager_ != nullptr && (!had_records || !had_fused)) {
    // Collections created after Attach are invisible to the WAL
    // observers; re-attaching enrolls the new lineages (a fresh
    // collection costs one create-collection record). Safe here: the
    // facade is documented externally serialized.
    DT_RETURN_NOT_OK(wal_manager_->Attach(&store_));
  }
  streaming_ = std::make_unique<dedup::StreamingConsolidator>(
      ResolveConsolidationOptions());
  // Rebuild the resident state from the persisted record log (ascending
  // id = original arrival order), the durable source of truth.
  std::vector<dedup::DedupRecord> persisted;
  persisted.reserve(static_cast<size_t>(record_coll_->count()));
  Status decode = Status::OK();
  record_coll_->ForEach([&](storage::DocId, const DocValue& doc) {
    if (!decode.ok()) return;
    Result<dedup::DedupRecord> rec = dedup::DedupRecordFromDoc(doc);
    if (!rec.ok()) {
      decode = rec.status();
      return;
    }
    ingest_seq_ = std::max(ingest_seq_, rec->ingest_seq);
    persisted.push_back(std::move(*rec));
  });
  DT_RETURN_NOT_OK(decode);
  if (!persisted.empty()) {
    DT_RETURN_NOT_OK(streaming_->Seed(std::move(persisted)));
    ingest_stats_.seeded_records =
        static_cast<int64_t>(streaming_->records().size());
  }
  return ReconcileFusedDocs();
}

Status DataTamer::ReconcileFusedDocs() {
  // Expected fused state, derived from the record log.
  std::map<size_t, DocValue> expected;
  for (size_t key : streaming_->ClusterKeys()) {
    expected.emplace(key, FusedEntityDoc(key));
  }
  // Walk the persisted fused docs: adopt matching ones, queue
  // divergent ones for repair and orphans for removal. A crash can
  // land between the record append and the fused upsert; replay then
  // reproduces only the logged prefix, and the log wins.
  cluster_doc_.clear();
  std::vector<storage::DocId> drop;
  std::vector<std::pair<storage::DocId, size_t>> repair;
  fused_coll_->ForEach([&](storage::DocId id, const DocValue& doc) {
    const DocValue* key_field = doc.Find("cluster_id");
    if (key_field == nullptr || !key_field->is_int() ||
        key_field->int_value() < 0) {
      drop.push_back(id);
      return;
    }
    const size_t key = static_cast<size_t>(key_field->int_value());
    auto it = expected.find(key);
    if (it == expected.end() || cluster_doc_.count(key) > 0) {
      drop.push_back(id);
      return;
    }
    cluster_doc_[key] = id;
    if (!doc.Equals(it->second)) repair.emplace_back(id, key);
  });
  for (storage::DocId id : drop) {
    DT_RETURN_NOT_OK(fused_coll_->Remove(id));
  }
  for (const auto& [id, key] : repair) {
    DT_RETURN_NOT_OK(fused_coll_->Update(id, expected.at(key)));
  }
  for (const auto& [key, doc] : expected) {
    if (cluster_doc_.count(key) > 0) continue;
    cluster_doc_[key] = fused_coll_->Insert(doc);
  }
  // Index over the reconciled docs.
  fused_index_ = query::InvertedIndex("text");
  (void)fused_index_.Build(*fused_coll_);
  fused_index_epoch_ = fused_coll_->mutation_epoch();
  return Status::OK();
}

Status DataTamer::ApplyClusterDelta(
    const dedup::StreamingConsolidator::IngestDelta& delta) {
  for (size_t key : delta.removed) {
    auto it = cluster_doc_.find(key);
    // Keys the engine merged away within a single ingest (e.g. the new
    // record's transient singleton) never had a doc; skip them.
    if (it == cluster_doc_.end()) continue;
    if (const DocValue* old = fused_coll_->Get(it->second)) {
      if (const DocValue* text = old->Find("text")) {
        if (text->is_string()) {
          fused_index_.Remove(it->second, text->string_value());
        }
      }
    }
    DT_RETURN_NOT_OK(fused_coll_->Remove(it->second));
    cluster_doc_.erase(it);
    ++ingest_stats_.clusters_removed;
  }
  for (size_t key : delta.upserted) {
    DocValue doc = FusedEntityDoc(key);
    const DocValue* new_text = doc.Find("text");
    auto it = cluster_doc_.find(key);
    if (it != cluster_doc_.end()) {
      if (const DocValue* old = fused_coll_->Get(it->second)) {
        if (const DocValue* text = old->Find("text")) {
          if (text->is_string()) {
            fused_index_.Remove(it->second, text->string_value());
          }
        }
      }
      if (new_text != nullptr && new_text->is_string()) {
        fused_index_.Add(it->second, new_text->string_value());
      }
      DT_RETURN_NOT_OK(fused_coll_->Update(it->second, std::move(doc)));
    } else {
      // Index after Insert so the posting carries the assigned id.
      std::string text_copy;
      if (new_text != nullptr && new_text->is_string()) {
        text_copy = new_text->string_value();
      }
      storage::DocId id = fused_coll_->Insert(std::move(doc));
      cluster_doc_[key] = id;
      fused_index_.Add(id, text_copy);
    }
    ++ingest_stats_.clusters_upserted;
  }
  fused_index_epoch_ = fused_coll_->mutation_epoch();
  return Status::OK();
}

Result<IngestResult> DataTamer::IngestRecords(
    std::vector<dedup::DedupRecord> records) {
  DT_RETURN_NOT_OK(EnsureStreaming());
  IngestResult out;
  for (dedup::DedupRecord& rec : records) {
    if (rec.ingest_seq == 0) rec.ingest_seq = ++ingest_seq_;
    // The record log append commits first: it is the durable source of
    // truth the fused upsert below (and any crash recovery) derives
    // from.
    record_coll_->Insert(dedup::DedupRecordToDoc(rec));
    DT_ASSIGN_OR_RETURN(dedup::StreamingConsolidator::IngestDelta delta,
                        streaming_->Ingest(std::move(rec)));
    DT_RETURN_NOT_OK(ApplyClusterDelta(delta));
    ++out.ingested;
    out.clusters_upserted += static_cast<int64_t>(delta.upserted.size());
    out.clusters_removed += static_cast<int64_t>(delta.removed.size());
  }
  ingest_stats_.records_ingested += out.ingested;
  const dedup::StreamingStats& ss = streaming_->stats();
  ingest_stats_.pairs_scored = ss.pairs_scored;
  ingest_stats_.candidates_generated = ss.candidates_generated;
  ingest_stats_.retracted_matches = ss.retracted_matches;
  ingest_stats_.rebuilds = ss.rebuilds;
  ingest_stats_.resident_clusters =
      static_cast<int64_t>(streaming_->num_clusters());
  return out;
}

Result<IngestResult> DataTamer::IngestRecord(dedup::DedupRecord record) {
  std::vector<dedup::DedupRecord> one;
  one.push_back(std::move(record));
  return IngestRecords(std::move(one));
}

Result<query::QueryResponse> DataTamer::ExecuteMutable(
    const query::QueryRequest& req) {
  if (req.op != query::QueryOp::kIngest) return Execute(req);
  DT_ASSIGN_OR_RETURN(IngestResult r, IngestRecords(req.ingest_records));
  query::QueryResponse resp;
  resp.ingested = r.ingested;
  resp.ingest_clusters_upserted = r.clusters_upserted;
  resp.ingest_clusters_removed = r.clusters_removed;
  return resp;
}

std::vector<query::SearchHit> DataTamer::SearchEntities(
    std::string_view keywords, int k) const {
  Result<const storage::Collection*> coll = store_.GetCollection("fused");
  if (!coll.ok()) return {};  // nothing ingested yet
  // The ingest path maintains the index eagerly; a mismatched epoch
  // means dt.fused mutated out of band (snapshot surgery, direct
  // writes), so fall back to a rebuild.
  const uint64_t epoch = (*coll)->mutation_epoch();
  if (epoch != fused_index_epoch_) {
    fused_index_ = query::InvertedIndex("text");
    (void)fused_index_.Build(**coll);
    fused_index_epoch_ = epoch;
  }
  return fused_index_.Search(keywords, k);
}

Result<std::vector<dedup::CompositeEntity>> DataTamer::IngestedEntities() {
  DT_RETURN_NOT_OK(EnsureStreaming());
  return streaming_->Entities();
}

Result<Table> DataTamer::QueryEntity(const std::string& entity_type,
                                     const std::string& name,
                                     bool include_structured) const {
  std::vector<dedup::DedupRecord> records = CollectRecords(entity_type, name);
  if (!include_structured) {
    records.erase(std::remove_if(records.begin(), records.end(),
                                 [](const dedup::DedupRecord& r) {
                                   return r.source_id != "webtext";
                                 }),
                  records.end());
  }
  if (records.empty()) {
    return Status::NotFound("no data for " + entity_type + " '" + name + "'");
  }
  // All collected records describe the same normalized name; merge them
  // into one composite directly.
  std::vector<size_t> all(records.size());
  for (size_t i = 0; i < all.size(); ++i) all[i] = i;
  dedup::CompositeEntity composite = dedup::MergeCluster(
      records, all, 0, opts_.consolidation_options.merge_policy);

  // Render as (ATTRIBUTE, VALUE) rows: name concept first (labelled by
  // the global name attribute when one exists), then global attributes
  // in schema order, then the text-pipeline TEXT_FEED.
  std::string name_label = "NAME";
  std::set<std::string> emitted = {"name"};
  relational::Schema schema(
      {{"ATTRIBUTE", relational::ValueType::kString},
       {"VALUE", relational::ValueType::kString}});
  Table out("query_" + name, schema);
  // Find the global name-attribute label.
  int gname = NameConceptIndex(*global_schema_, synonyms_.get());
  if (gname >= 0) name_label = global_schema_->attribute(gname).name;
  auto it_name = composite.fields.find("name");
  std::string display =
      it_name != composite.fields.end() ? it_name->second : name;
  DT_RETURN_NOT_OK(out.Append(
      {Value::Str(name_label), Value::Str(display)}));
  emitted.insert(name_label);
  for (int g = 0; g < global_schema_->num_attributes(); ++g) {
    const std::string& attr = global_schema_->attribute(g).name;
    auto it = composite.fields.find(attr);
    if (it == composite.fields.end() || emitted.count(attr) > 0) continue;
    DT_RETURN_NOT_OK(out.Append({Value::Str(attr), Value::Str(it->second)}));
    emitted.insert(attr);
  }
  for (const auto& [field, value] : composite.fields) {
    if (emitted.count(field) > 0) continue;
    DT_RETURN_NOT_OK(out.Append({Value::Str(field), Value::Str(value)}));
  }
  return out;
}

}  // namespace dt::fusion
