/// \file data_tamer.h
/// \brief The extended Data Tamer facade — Fig. 1 end to end.
///
/// Owns the storage substrates (document store for text-derived data,
/// relational catalog for structured sources), the bottom-up global
/// schema, the cleaning/transformation engines and the consolidation
/// pipeline, and exposes the demo's query surface (top-discussed,
/// entity lookup pre/post fusion).

#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "clean/cleaning.h"
#include "clean/transforms.h"
#include "common/status.h"
#include "common/thread_pool.h"
#include "dedup/consolidation.h"
#include "dedup/streaming.h"
#include "ingest/source_registry.h"
#include "match/global_schema.h"
#include "match/synonyms.h"
#include "query/query.h"
#include "query/request.h"
#include "query/text_search.h"
#include "relational/catalog.h"
#include "storage/document_store.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "textparse/domain_parser.h"

namespace dt::fusion {

/// Facade configuration.
struct DataTamerOptions {
  /// Storage options for dt.instance / dt.entity (benches scale the
  /// extent sizes with the corpus).
  storage::CollectionOptions collection_options;
  match::GlobalSchemaOptions schema_options;
  clean::CleaningOptions cleaning_options;
  dedup::ConsolidationOptions consolidation_options;
  /// Run the cleaner on structured sources at ingest.
  bool clean_structured_sources = true;
  /// Apply built-in normalizing transforms (currency -> USD, dates ->
  /// m/d/yyyy-preserving ISO) to recognized columns at ingest.
  bool auto_transform = true;
  /// Merge priority of structured vs text-derived records.
  int structured_trust = 10;
  int text_trust = 1;
  /// EUR->USD rate for the currency transform.
  double eur_usd_rate = 1.30;
  /// Worker threads for the consolidation hot path (candidate
  /// generation, pair scoring, cluster merging): 1 = serial, <= 0 =
  /// all hardware threads. Propagates into
  /// `consolidation_options.num_threads` unless that was itself set
  /// away from its default. Output is identical for every value.
  int num_threads = 1;
  /// Chunking/parallelism for `SaveSnapshot`/`LoadSnapshot`. Its
  /// `num_threads` inherits the facade-level knob above unless set
  /// away from its default.
  storage::SnapshotOptions snapshot_options;
  /// Crash-safe durability (WAL + incremental checkpoints). Only
  /// honored by `DataTamer::Open`: set `durability.dir` to a
  /// directory and every committed mutation is write-ahead logged
  /// per `durability.durability`; `Open` replays that state back.
  /// The plain constructor ignores this (in-memory facade).
  storage::DurabilityOptions durability;
};

/// Decides a reviewed attribute: return the chosen global attribute
/// index, or -1 to create a new attribute. Wired to the expert-sourcing
/// loop by the caller (the facade stays oracle-free).
using ReviewResolver = std::function<int(
    const match::AttributeMatchResult&, const match::GlobalSchema&)>;

/// Counters of the continuous-ingest path (streaming consolidation).
/// The engine-level totals mirror `dedup::StreamingStats` (including a
/// recovery `Seed`'s bulk scoring); the cluster upsert/remove counts
/// are what the facade pushed through the fused collection's normal
/// mutation path (WAL, snapshots and index stats ride along).
struct IngestStats {
  int64_t records_ingested = 0;
  int64_t pairs_scored = 0;
  int64_t candidates_generated = 0;
  int64_t clusters_upserted = 0;
  int64_t clusters_removed = 0;
  int64_t retracted_matches = 0;
  int64_t rebuilds = 0;
  int64_t resident_clusters = 0;
  /// Records restored into the resident state from the persisted
  /// dt.dedup_record log (recovery / first use after a snapshot load).
  int64_t seeded_records = 0;
};

/// What one `IngestRecord(s)` call changed.
struct IngestResult {
  int64_t ingested = 0;
  int64_t clusters_upserted = 0;
  int64_t clusters_removed = 0;
};

/// Running counts of what the pipeline has processed.
struct PipelineStats {
  int64_t fragments_ingested = 0;
  int64_t entities_extracted = 0;
  int64_t structured_tables = 0;
  int64_t structured_rows = 0;
  clean::CleaningReport cleaning;
};

/// \brief The end-to-end system.
///
/// Not thread-safe, including the const query surface: `Find` /
/// `SearchFragments` lazily (re)build the fragment text index and the
/// worker pool, and executions bump the collections' observational
/// scan counters. Serialize access externally to share one facade
/// across threads (parallelism *inside* one call is what
/// `DataTamerOptions::num_threads` provides).
class DataTamer {
 public:
  explicit DataTamer(DataTamerOptions opts = {});

  /// \brief Opens a durable facade: recovers the state under
  /// `opts.durability.dir` (checkpoints + WAL replay — see
  /// storage/recovery.h) when one exists, and attaches the write-ahead
  /// log so every committed mutation is durable per
  /// `opts.durability.durability`. With durability disabled (empty dir
  /// or mode kNone) this degrades to the plain in-memory constructor.
  static Result<std::unique_ptr<DataTamer>> Open(DataTamerOptions opts);

  /// Detaches and flushes the write-ahead log (durable facades).
  ~DataTamer();

  // ---- Text pipeline (unstructured arrow of Fig. 1) ----

  /// Installs the domain parser's dictionary (must outlive the facade).
  void SetGazetteer(const textparse::Gazetteer* gazetteer);

  /// \brief Parses one text fragment and stores it: the fragment into
  /// dt.instance, its mentions into dt.entity. Returns the instance id.
  /// Fails unless a gazetteer is installed.
  Result<storage::DocId> IngestTextFragment(std::string_view text,
                                            const std::string& feed,
                                            int64_t timestamp);

  /// Creates the production index set: dt.instance on source (1 user
  /// index), dt.entity on type, name, surface, confidence, instance_id,
  /// award_winning, source (7 user indexes + _id = 8 as in Table II).
  Status CreateStandardIndexes();

  // ---- Structured pipeline ----

  /// \brief Cleans, transforms, registers and schema-integrates a
  /// structured source (one FTABLES table). Review-band attributes go
  /// through `resolver` when provided, else conservatively become new
  /// global attributes. Returns the integration report.
  Result<match::IntegrationReport> IngestStructuredTable(
      relational::Table table, const ReviewResolver& resolver = nullptr);

  // ---- Semi-structured pipeline (the third arrow of Fig. 1) ----

  /// \brief Ingests hierarchical documents: flattens them into a table
  /// named `source_name` (object arrays unnest; see ingest::Flatten)
  /// and routes it through the structured pipeline (clean, transform,
  /// schema-match, register).
  Result<match::IntegrationReport> IngestSemiStructuredSource(
      const std::string& source_name,
      const std::vector<storage::DocValue>& documents,
      const ReviewResolver& resolver = nullptr);

  /// Convenience overload: parses newline-delimited JSON first.
  Result<match::IntegrationReport> IngestJsonLines(
      const std::string& source_name, std::string_view json_lines,
      const ReviewResolver& resolver = nullptr);

  // ---- Continuous ingest (streaming consolidation) ----

  /// \brief Absorbs one dedup record into the live entity set at
  /// O(blocking-candidate-neighborhood) cost: the record is appended
  /// to the persistent dt.dedup_record log (the durable source of
  /// truth), scored only against its blocking neighbors, and exactly
  /// the affected composite entities are re-merged and upserted into
  /// dt.fused through the normal mutation path — WAL, snapshots,
  /// page-token staleness and index stats all ride along. The fused
  /// entity set stays byte-identical (up to dense cluster-id
  /// renumbering) to a from-scratch batch `Consolidate` over the full
  /// record log. A zero `ingest_seq` is assigned from the facade's
  /// monotonic counter.
  Result<IngestResult> IngestRecord(dedup::DedupRecord record);

  /// Ingests a batch in order (same semantics per record). On mid-
  /// batch failure the records already applied stay applied — the
  /// persisted log is the source of truth and reopening reconciles
  /// dt.fused against it.
  Result<IngestResult> IngestRecords(std::vector<dedup::DedupRecord> records);

  /// \brief `Execute` plus the mutating ops: routes kIngest through
  /// `IngestRecords` and delegates every read op to `Execute`. This is
  /// what a read-write `DtServer` serves.
  Result<query::QueryResponse> ExecuteMutable(const query::QueryRequest& req);

  /// \brief Keyword search over the *fused* composite entities
  /// maintained by streaming ingest (conjunctive TF-IDF like
  /// `SearchFragments`, over each entity's synthesized text). The
  /// entity-side index is maintained as add/remove deltas by the
  /// ingest path itself — no rebuild per query.
  std::vector<query::SearchHit> SearchEntities(std::string_view keywords,
                                               int k = 10) const;

  /// \brief The full entity set of the streaming consolidator, dense
  /// cluster ids in batch order — byte-identical to
  /// `Consolidate` over the persisted record log. (Non-const: first
  /// use after recovery seeds the resident state from the log.)
  Result<std::vector<dedup::CompositeEntity>> IngestedEntities();

  const IngestStats& ingest_stats() const { return ingest_stats_; }

  // ---- Fusion queries (the demo of §V) ----

  /// \brief The unified query entry point: dispatches a serializable
  /// `QueryRequest` (kFind / kFindPage / kExplain / kCount / kTopK /
  /// kTopDiscussed) and returns the serializable response. This is
  /// what the RPC server executes — a request decoded off the wire
  /// runs byte-identically to the in-process call — and every legacy
  /// query signature below is now a thin wrapper over it.
  Result<query::QueryResponse> Execute(const query::QueryRequest& req) const;

  /// \brief Table IV: top-k most discussed entities of `entity_type`
  /// in the web text, optionally restricted to award winners. Routed
  /// through the query planner: after `CreateStandardIndexes` the type
  /// predicate drives an index scan instead of a collection scan.
  std::vector<query::CountRow> TopDiscussed(const std::string& entity_type,
                                            int k,
                                            bool award_winning_only) const;

  /// \brief Structured predicate query against a collection of the
  /// store ("instance", "entity", ...): ids of exactly the documents
  /// matching `pred` — in `opts.order_by` order with `opts.limit`
  /// honored inside execution (ascending ids when unordered) — routed
  /// through the cost-aware planner (secondary indexes including
  /// compound ones, sort/limit push-down, the full-text index for
  /// TextContains on instance text, parallel scan fallback).
  /// `opts.num_threads` inherits the facade-level knob unless set away
  /// from its default; parallel scans ride the facade's one cached
  /// thread pool; `opts.text_index` is wired to the fragment index
  /// automatically for the instance collection.
  Result<std::vector<storage::DocId>> Find(const std::string& collection,
                                           const query::PredicatePtr& pred,
                                           query::FindOptions opts = {}) const;

  /// \brief Resumable page of `Find`: at most `opts.page_size` ids plus
  /// the opaque token that continues the stream
  /// (`FindResult::next_token`, empty when exhausted). Pass the token
  /// back via `opts.resume_token` to fetch the next page; stitched
  /// pages are byte-identical to the one-shot `Find`. Tokens are
  /// rejected with `kInvalidArgument` when tampered with, when the
  /// collection mutated since they were minted, or when the query
  /// (predicate, order, limit, index set) no longer plans identically.
  Result<query::FindResult> FindPage(const std::string& collection,
                                     const query::PredicatePtr& pred,
                                     query::FindOptions opts = {}) const;

  /// \brief The access path `Find` would take, rendered for humans
  /// (e.g. `IXSCAN { name == "Matilda" } est=12`). Pair with the
  /// `indexScans`/`collScans` counters in `Collection::Stats()` to see
  /// what the planner actually did.
  Result<std::string> Explain(const std::string& collection,
                              const query::PredicatePtr& pred,
                              query::FindOptions opts = {}) const;

  /// \brief Point query on the fused data: all information known about
  /// the named entity, as a two-column (ATTRIBUTE, VALUE) table.
  ///
  /// With `include_structured` false the result only reflects the web
  /// text (Table V); with true it consolidates text-derived and
  /// structured records into an enriched composite (Table VI).
  Result<relational::Table> QueryEntity(const std::string& entity_type,
                                        const std::string& name,
                                        bool include_structured) const;

  /// \brief Keyword search over the ingested text fragments (how the
  /// §V user explores WEBINSTANCE before knowing entity names).
  /// Conjunctive TF-IDF ranking; the inverted index is built lazily and
  /// refreshed when new fragments have arrived since the last search.
  std::vector<query::SearchHit> SearchFragments(std::string_view keywords,
                                                int k = 10) const;

  /// \brief Consolidates all structured rows plus text entities of
  /// `entity_type` into composite entities (the full entity-
  /// consolidation pass, used by benches and examples). Parallel runs
  /// ride the facade's one shared worker pool, not a per-call pool.
  Result<std::vector<dedup::CompositeEntity>> ConsolidateAll(
      const std::string& entity_type,
      dedup::ConsolidationStats* stats = nullptr) const;

  // ---- Snapshot persistence (the storage layer's cold-start path) ----

  /// \brief Persists the document store (dt.instance, dt.entity and
  /// any other collections) to `path` as one binary snapshot file.
  /// Uses `options().snapshot_options`; save -> load -> save is
  /// byte-identical.
  Status SaveSnapshot(const std::string& path) const;

  /// \brief Replaces the document store with the snapshot at `path`:
  /// documents, ids and secondary indexes come back as saved, and
  /// `TopDiscussed`/`QueryEntity`/`SearchFragments` serve the loaded
  /// data unchanged. The relational catalog, source registry and
  /// global schema are NOT part of the snapshot; they reset to empty
  /// so the facade reflects exactly the loaded store (re-ingest
  /// structured sources after loading). On error the facade is left
  /// untouched.
  Status LoadSnapshot(const std::string& path);

  // ---- Durability (crash safety; only live after `Open`) ----

  /// Folds the WAL into incremental per-collection checkpoints (only
  /// dirty collections are re-encoded). No-op success when the facade
  /// is not durable.
  Status Checkpoint();

  /// Forces every acknowledged mutation onto disk regardless of the
  /// durability mode (how kAsync callers bound their loss window).
  /// Const: flushing writes no facade state (the server calls this on
  /// its borrowed const facade at shutdown).
  Status FlushDurability() const;

  /// First WAL I/O failure, sticky; OK while healthy or not durable.
  Status durability_health() const;

  /// WAL/checkpoint/recovery counters (`enabled` false when the
  /// facade is in-memory).
  storage::DurabilityStats durability_stats() const;

  bool durable() const { return wal_manager_ != nullptr; }

  storage::Collection* instance_collection() { return instance_; }
  const storage::Collection* instance_collection() const { return instance_; }
  storage::Collection* entity_collection() { return entity_; }
  const storage::Collection* entity_collection() const { return entity_; }
  relational::Catalog& catalog() { return catalog_; }
  const relational::Catalog& catalog() const { return catalog_; }
  match::GlobalSchema& global_schema() { return *global_schema_; }
  const match::GlobalSchema& global_schema() const { return *global_schema_; }
  ingest::SourceRegistry& registry() { return registry_; }
  const PipelineStats& stats() const { return stats_; }
  const DataTamerOptions& options() const { return opts_; }

 private:
  /// Builds dedup records for `entity_type` whose name matches `name`
  /// (empty name = all) from both text and structured sides.
  std::vector<dedup::DedupRecord> CollectRecords(
      const std::string& entity_type, const std::string& name) const;

  /// Brings the lazy fragment text index up to date: fragments that
  /// arrived since the last refresh are applied as Add deltas
  /// (appends are the common case — ids grow monotonically), and only
  /// removals (or a snapshot replacing the store) force a full
  /// rebuild.
  void RefreshFragmentIndex() const;

  /// \brief The facade's one lazily-constructed worker pool (sized by
  /// `options().num_threads`), shared by parallel query scans and
  /// snapshot encode/decode instead of constructing a pool per call.
  /// Null when the facade runs single-threaded.
  ThreadPool* WorkerPool() const;

  /// True when the cached pool can serve a `want`-thread request.
  bool PoolServes(int want) const;

  /// `options().snapshot_options` with the cached pool attached.
  storage::SnapshotOptions ResolveSnapshotOptions() const;

  /// `options().consolidation_options` with the cached pool attached
  /// (the batch and streaming engines both run on the facade's one
  /// shared pool instead of constructing a pool per call).
  dedup::ConsolidationOptions ResolveConsolidationOptions() const;

  // ---- streaming-ingest internals ----

  /// Lazily creates the dt.dedup_record / dt.fused collections (re-
  /// attaching the WAL when durable so the new lineages are logged),
  /// seeds the resident consolidator from the persisted record log,
  /// and reconciles dt.fused against it (heals a crash that landed
  /// between the record append and the fused upsert).
  Status EnsureStreaming();

  /// Applies one ingest delta to dt.fused: removed cluster keys drop
  /// their docs, upserted keys re-merge and insert/update, and the
  /// entity text index tracks every mutation as add/remove deltas.
  Status ApplyClusterDelta(
      const dedup::StreamingConsolidator::IngestDelta& delta);

  /// Rebuilds the cluster-key -> DocId map and the entity text index
  /// from the consolidator + the persisted fused docs, repairing any
  /// divergence (the record log wins).
  Status ReconcileFusedDocs();

  /// The fused doc for one cluster: the composite entity encoding plus
  /// the synthesized "text" field the entity index serves.
  storage::DocValue FusedEntityDoc(size_t cluster_key) const;

  /// Installs `store` as the facade's document store (recovery and
  /// snapshot-load share this): recreates missing standard
  /// collections, re-resolves the cached pointers and resets every
  /// piece of derived state to reflect exactly the replaced store.
  void ReplaceStore(storage::DocumentStore store);

  /// Shared Find/Explain option normalization: facade thread-knob
  /// inheritance and fragment-index wiring for the instance
  /// collection. Keeps the rendered plan and the execution in
  /// lockstep.
  query::FindOptions ResolveFindOptions(const std::string& collection,
                                        query::FindOptions opts) const;

  /// `Execute` with a caller-supplied base `FindOptions`: the legacy
  /// wrappers route their options object through so process-local
  /// members a request cannot carry (the `stats` out-param, an
  /// explicitly wired text index or pool) keep working. The request's
  /// serializable knobs overlay the base before resolution.
  Result<query::QueryResponse> ExecuteInternal(const query::QueryRequest& req,
                                               query::FindOptions opts) const;

  relational::Table ApplyIngestTransforms(relational::Table table);

  DataTamerOptions opts_;
  std::unique_ptr<match::SynonymDictionary> synonyms_;
  std::unique_ptr<match::GlobalSchema> global_schema_;
  storage::DocumentStore store_;
  storage::Collection* instance_ = nullptr;
  storage::Collection* entity_ = nullptr;
  relational::Catalog catalog_;
  ingest::SourceRegistry registry_;
  clean::TransformRegistry transforms_;
  const textparse::Gazetteer* gazetteer_ = nullptr;
  std::unique_ptr<textparse::DomainParser> parser_;
  PipelineStats stats_;
  int64_t ingest_seq_ = 0;
  // ---- streaming-ingest state (see EnsureStreaming) ----
  // The consolidator's resident corpus mirrors the persisted
  // dt.dedup_record log in ascending-id order; cluster_doc_ maps each
  // stable cluster key to its dt.fused doc. All rebuilt lazily from
  // the store after recovery or a snapshot load.
  storage::Collection* record_coll_ = nullptr;
  storage::Collection* fused_coll_ = nullptr;
  std::unique_ptr<dedup::StreamingConsolidator> streaming_;
  std::map<size_t, storage::DocId> cluster_doc_;
  IngestStats ingest_stats_;
  // Entity-side text index: maintained eagerly as add/remove deltas by
  // ApplyClusterDelta; the epoch detects out-of-band fused mutations
  // (then SearchEntities falls back to a rebuild).
  mutable query::InvertedIndex fused_index_{"text"};
  mutable uint64_t fused_index_epoch_ = 0;
  // Lazily built full-text index over dt.instance (see SearchFragments
  // and RefreshFragmentIndex): the doc count and mutation epoch it
  // reflects plus the id watermark separating indexed fragments from
  // append deltas.
  mutable query::InvertedIndex fragment_index_{"text"};
  mutable int64_t fragments_indexed_ = 0;
  mutable uint64_t fragment_index_epoch_ = 0;
  mutable storage::DocId fragment_index_next_id_ = 0;
  // One pool for every parallel scan/snapshot this facade runs (see
  // WorkerPool); constructed on first use, never per operation. The
  // mutex guards the lazy init against concurrent const queries.
  mutable std::mutex worker_pool_mu_;
  mutable std::unique_ptr<ThreadPool> worker_pool_;
  // Declared after store_ so destruction detaches the WAL observers
  // (and flushes the log) while the collections are still alive.
  std::unique_ptr<storage::WalManager> wal_manager_;
};

}  // namespace dt::fusion
