/// \file tokenizer.h
/// \brief Offset-preserving tokenization and sentence splitting for the
/// domain parser.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace dt::textparse {

/// Lexical class of a token.
enum class TokenKind : uint8_t {
  kWord = 0,
  kNumber = 1,
  kPunct = 2,
};

/// \brief One token with its source offset (so extracted mentions can
/// point back into the fragment).
struct Token {
  std::string text;   ///< original surface form
  size_t offset = 0;  ///< byte offset in the input
  TokenKind kind = TokenKind::kWord;

  /// True if the first character is an ASCII capital.
  bool IsCapitalized() const;
};

/// \brief Tokenizes text into words, numbers, and single-char punct
/// tokens. Words keep internal apostrophes ("O'Brien") and hyphens
/// stay separate tokens. URLs survive as single word tokens when they
/// start with http:// https:// or www.
std::vector<Token> Tokenize(std::string_view text);

/// \brief One sentence as an offset range [begin, end) into the input.
struct SentenceSpan {
  size_t begin = 0;
  size_t end = 0;
};

/// \brief Splits on '.', '!', '?' followed by whitespace + capital (or
/// end of input), protecting common abbreviations ("Mr.", "St.", "Inc.")
/// and decimal points.
std::vector<SentenceSpan> SplitSentences(std::string_view text);

}  // namespace dt::textparse
