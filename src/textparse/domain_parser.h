/// \file domain_parser.h
/// \brief The domain-specific parser of Fig. 1 (the user-defined module
/// supplied by a web aggregator such as Recorded Future).
///
/// Consumes a raw text fragment and produces hierarchical
/// semi-structured output: the fragment itself (a WEBINSTANCE record)
/// plus the typed entity mentions found in it (WEBENTITIES records).
/// Extraction combines greedy gazetteer matching with rule heuristics
/// for URLs, quoted titles, and capitalized-name sequences.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "storage/docvalue.h"
#include "textparse/entity_types.h"
#include "textparse/gazetteer.h"
#include "textparse/tokenizer.h"

namespace dt::textparse {

/// \brief One extracted entity mention.
struct EntityMention {
  EntityType type = EntityType::kPerson;
  std::string canonical;  ///< dictionary canonical name (or surface form)
  std::string surface;    ///< text as it appeared
  size_t offset = 0;      ///< byte offset of the mention in the fragment
  double confidence = 1.0;
  /// Attributes inherited from the dictionary entry (e.g. award_winning).
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// \brief Parser output for one fragment.
struct ParsedFragment {
  std::string text;
  std::string source;  ///< feed name ("newsfeed", "twitter", "blog", ...)
  int64_t timestamp = 0;
  std::vector<EntityMention> mentions;
};

/// Heuristic toggles (all on by default; ablation benches switch them).
struct DomainParserOptions {
  bool enable_gazetteer = true;
  bool enable_url_detection = true;
  /// Quoted capitalized phrases become Movie candidates ("Matilda").
  bool enable_quoted_title_detection = true;
  /// Runs of >= 2 capitalized words become Person candidates.
  bool enable_person_heuristic = true;
  double heuristic_confidence = 0.6;
};

/// \brief Rule/gazetteer entity extractor.
class DomainParser {
 public:
  /// The gazetteer must outlive the parser.
  explicit DomainParser(const Gazetteer* gazetteer,
                        DomainParserOptions opts = {});

  /// Extracts all mentions from `text`.
  ParsedFragment Parse(std::string_view text, std::string source = "",
                       int64_t timestamp = 0) const;

  /// Hierarchical WEBINSTANCE document:
  /// {text, source, timestamp, entities: [{type, name, offset}, ...]}.
  static storage::DocValue ToInstanceDoc(const ParsedFragment& fragment);

  /// One hierarchical WEBENTITIES document per mention:
  /// {type, name, surface, confidence, instance_id, <attrs...>}.
  static std::vector<storage::DocValue> ToEntityDocs(
      const ParsedFragment& fragment, int64_t instance_id);

 private:
  const Gazetteer* gazetteer_;
  DomainParserOptions opts_;
};

}  // namespace dt::textparse
