/// \file gazetteer.h
/// \brief Phrase dictionary backing the domain parser.
///
/// Maps surface phrases (case-insensitive, multi-word) to typed
/// canonical entities, with greedy longest-match lookup over a token
/// stream. The generator registers its vocabulary here so the parser
/// extracts the mentions it planted — the same closed-world contract a
/// commercial domain parser has with its curated dictionaries.

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "textparse/entity_types.h"
#include "textparse/tokenizer.h"

namespace dt::textparse {

/// \brief One dictionary entry.
struct GazetteerEntry {
  std::string phrase;     ///< surface form, e.g. "The Walking Dead"
  EntityType type = EntityType::kPerson;
  std::string canonical;  ///< canonical name; defaults to `phrase`
  /// Free-form attributes attached to the entity (e.g. award_winning).
  std::vector<std::pair<std::string, std::string>> attrs;
};

/// \brief Longest-match phrase dictionary.
class Gazetteer {
 public:
  /// Adds an entry; later duplicates of the same (phrase, type) replace
  /// earlier ones. Empty phrases are ignored.
  void Add(GazetteerEntry entry);

  /// Convenience: adds a phrase with type and optional canonical name.
  void Add(std::string phrase, EntityType type, std::string canonical = "");

  /// \brief Longest match starting at token `start`.
  ///
  /// Compares lower-cased token sequences against dictionary phrases
  /// (up to the longest phrase registered). Returns the matched entry
  /// and sets `*tokens_consumed`; nullopt when nothing matches.
  std::optional<GazetteerEntry> LongestMatch(const std::vector<Token>& tokens,
                                             size_t start,
                                             size_t* tokens_consumed) const;

  /// Entry for an exact phrase (case-insensitive), or nullopt.
  std::optional<GazetteerEntry> Lookup(std::string_view phrase) const;

  int64_t size() const { return static_cast<int64_t>(entries_.size()); }
  size_t max_phrase_tokens() const { return max_phrase_tokens_; }

  /// All registered entries (unspecified order).
  std::vector<GazetteerEntry> Entries() const;

 private:
  static std::string NormalizePhrase(std::string_view phrase);

  // key: normalized phrase
  std::unordered_map<std::string, GazetteerEntry> entries_;
  size_t max_phrase_tokens_ = 0;
};

}  // namespace dt::textparse
