/// \file entity_types.h
/// \brief The entity-type taxonomy of the WEBENTITIES dataset (Table III).

#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace dt::textparse {

/// Entity types reported in Table III of the paper, in the table's
/// descending-count order.
enum class EntityType : uint8_t {
  kPerson = 0,
  kOrgEntity,
  kGeoEntity,
  kUrl,
  kIndustryTerm,
  kPosition,
  kCompany,
  kProduct,
  kOrganization,
  kFacility,
  kCity,
  kMedicalCondition,
  kTechnology,
  kMovie,
  kProvinceOrState,
  kNumEntityTypes,  // sentinel
};

inline constexpr int kNumEntityTypes =
    static_cast<int>(EntityType::kNumEntityTypes);

/// Type name as printed in Table III ("Person", "OrgEntity", ...).
const char* EntityTypeName(EntityType t);

/// Inverse of EntityTypeName; nullopt for unknown names.
std::optional<EntityType> EntityTypeFromName(std::string_view name);

/// All types in Table III order.
std::vector<EntityType> AllEntityTypes();

/// Entity counts from Table III of the paper (same order as the enum).
/// Used by the generator to reproduce the published type skew and by
/// the Table III bench to print the paper-vs-measured comparison.
int64_t PaperEntityTypeCount(EntityType t);

}  // namespace dt::textparse
