#include "textparse/tokenizer.h"

#include <cctype>

#include "common/strutil.h"

namespace dt::textparse {

namespace {
inline bool IsWordByte(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0;
}
inline bool IsDigitByte(char c) {
  return std::isdigit(static_cast<unsigned char>(c)) != 0;
}
inline bool IsSpaceByte(char c) {
  return std::isspace(static_cast<unsigned char>(c)) != 0;
}

// True if a URL starts at position i; sets *len to its extent.
bool MatchUrl(std::string_view text, size_t i, size_t* len) {
  auto rest = text.substr(i);
  std::string lower = ToLower(rest.substr(0, 8));
  size_t start_len = 0;
  if (StartsWith(lower, "http://")) start_len = 7;
  else if (StartsWith(lower, "https://")) start_len = 8;
  else if (StartsWith(lower, "www.")) start_len = 4;
  if (start_len == 0) return false;
  size_t j = start_len;
  while (j < rest.size() && !IsSpaceByte(rest[j]) && rest[j] != '"' &&
         rest[j] != ')' && rest[j] != '>' && rest[j] != ',') {
    ++j;
  }
  // Trailing sentence punctuation is not part of the URL.
  while (j > start_len && (rest[j - 1] == '.' || rest[j - 1] == '!' ||
                           rest[j - 1] == '?' || rest[j - 1] == ';')) {
    --j;
  }
  if (j <= start_len) return false;
  *len = j;
  return true;
}
}  // namespace

bool Token::IsCapitalized() const {
  return !text.empty() && std::isupper(static_cast<unsigned char>(text[0]));
}

std::vector<Token> Tokenize(std::string_view text) {
  std::vector<Token> out;
  size_t i = 0;
  while (i < text.size()) {
    char c = text[i];
    if (IsSpaceByte(c)) {
      ++i;
      continue;
    }
    size_t url_len = 0;
    if ((c == 'h' || c == 'H' || c == 'w' || c == 'W') &&
        MatchUrl(text, i, &url_len)) {
      out.push_back({std::string(text.substr(i, url_len)), i, TokenKind::kWord});
      i += url_len;
      continue;
    }
    if (IsWordByte(c)) {
      size_t start = i;
      bool all_digits = true;
      bool has_digits = false;
      while (i < text.size()) {
        char d = text[i];
        if (IsWordByte(d)) {
          all_digits = all_digits && IsDigitByte(d);
          has_digits = has_digits || IsDigitByte(d);
          ++i;
          continue;
        }
        // Keep internal apostrophes ("O'Brien") and number separators
        // ("659,391", "3.5") inside one token.
        if (d == '\'' && i + 1 < text.size() && IsWordByte(text[i + 1]) &&
            !all_digits) {
          i += 2;
          all_digits = false;
          continue;
        }
        if ((d == ',' || d == '.') && has_digits && all_digits &&
            i + 1 < text.size() && IsDigitByte(text[i + 1])) {
          i += 2;
          continue;
        }
        break;
      }
      std::string tok(text.substr(start, i - start));
      TokenKind kind = TokenKind::kWord;
      if (!tok.empty() && IsDigitByte(tok[0]) && all_digits) {
        kind = TokenKind::kNumber;
      }
      out.push_back({std::move(tok), start, kind});
      continue;
    }
    out.push_back({std::string(1, c), i, TokenKind::kPunct});
    ++i;
  }
  return out;
}

std::vector<SentenceSpan> SplitSentences(std::string_view text) {
  static const char* kAbbrev[] = {"mr", "mrs", "ms", "dr",  "st", "inc",
                                  "co", "corp", "vs", "jr", "sr", "prof",
                                  "gen", "rep", "sen", "etc", "e.g", "i.e"};
  std::vector<SentenceSpan> out;
  size_t start = 0;
  for (size_t i = 0; i < text.size(); ++i) {
    char c = text[i];
    if (c != '.' && c != '!' && c != '?') continue;
    if (c == '.') {
      // Decimal point?
      if (i > 0 && std::isdigit(static_cast<unsigned char>(text[i - 1])) &&
          i + 1 < text.size() &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        continue;
      }
      // Abbreviation?
      size_t wb = i;
      while (wb > start && std::isalpha(static_cast<unsigned char>(text[wb - 1]))) {
        --wb;
      }
      std::string word = ToLower(text.substr(wb, i - wb));
      bool is_abbrev = false;
      for (const char* a : kAbbrev) {
        if (word == a) {
          is_abbrev = true;
          break;
        }
      }
      if (is_abbrev) continue;
    }
    // Sentence boundary requires end of text or whitespace next.
    size_t j = i + 1;
    while (j < text.size() && (text[j] == '"' || text[j] == '\'' ||
                               text[j] == ')' || text[j] == '.')) {
      ++j;
    }
    if (j < text.size() && !std::isspace(static_cast<unsigned char>(text[j]))) {
      continue;
    }
    out.push_back({start, j});
    while (j < text.size() && std::isspace(static_cast<unsigned char>(text[j]))) {
      ++j;
    }
    start = j;
    i = j > 0 ? j - 1 : 0;
  }
  if (start < text.size()) {
    // Trailing sentence without terminal punctuation.
    size_t end = text.size();
    while (end > start &&
           std::isspace(static_cast<unsigned char>(text[end - 1]))) {
      --end;
    }
    if (end > start) out.push_back({start, end});
  }
  return out;
}

}  // namespace dt::textparse
