#include "textparse/entity_types.h"

namespace dt::textparse {

namespace {
struct TypeInfo {
  const char* name;
  int64_t paper_count;
};

// Names and counts exactly as printed in Table III.
constexpr TypeInfo kTypeInfo[kNumEntityTypes] = {
    {"Person", 38867351},
    {"OrgEntity", 33529169},
    {"GeoEntity", 11964810},
    {"URL", 11194592},
    {"IndustryTerm", 9101781},
    {"Position", 8938934},
    {"Company", 8846692},
    {"Product", 8800019},
    {"Organization", 6301459},
    {"Facility", 4081458},
    {"City", 3621317},
    {"MedicalCondition", 1313487},
    {"Technology", 940349},
    {"Movie", 260230},
    {"ProvinceOrState", 223243},
};
}  // namespace

const char* EntityTypeName(EntityType t) {
  int i = static_cast<int>(t);
  if (i < 0 || i >= kNumEntityTypes) return "?";
  return kTypeInfo[i].name;
}

std::optional<EntityType> EntityTypeFromName(std::string_view name) {
  for (int i = 0; i < kNumEntityTypes; ++i) {
    if (name == kTypeInfo[i].name) return static_cast<EntityType>(i);
  }
  return std::nullopt;
}

std::vector<EntityType> AllEntityTypes() {
  std::vector<EntityType> out;
  out.reserve(kNumEntityTypes);
  for (int i = 0; i < kNumEntityTypes; ++i) {
    out.push_back(static_cast<EntityType>(i));
  }
  return out;
}

int64_t PaperEntityTypeCount(EntityType t) {
  int i = static_cast<int>(t);
  if (i < 0 || i >= kNumEntityTypes) return 0;
  return kTypeInfo[i].paper_count;
}

}  // namespace dt::textparse
