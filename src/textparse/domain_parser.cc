#include "textparse/domain_parser.h"

#include <unordered_set>

#include "common/strutil.h"

namespace dt::textparse {

DomainParser::DomainParser(const Gazetteer* gazetteer,
                           DomainParserOptions opts)
    : gazetteer_(gazetteer), opts_(opts) {}

namespace {

bool IsUrlToken(const Token& tok) {
  if (tok.kind != TokenKind::kWord) return false;
  std::string lower = ToLower(tok.text);
  return StartsWith(lower, "http://") || StartsWith(lower, "https://") ||
         StartsWith(lower, "www.");
}

// Words that start sentences often capitalize without being names.
bool IsStopWord(const std::string& lower) {
  static const std::unordered_set<std::string> kStop = {
      "the", "a",  "an", "and", "or",  "but", "in", "on",  "at",  "to",
      "of",  "is", "it", "he",  "she", "we",  "i",  "you", "they"};
  return kStop.count(lower) > 0;
}

}  // namespace

ParsedFragment DomainParser::Parse(std::string_view text, std::string source,
                                   int64_t timestamp) const {
  ParsedFragment out;
  out.text = std::string(text);
  out.source = std::move(source);
  out.timestamp = timestamp;

  std::vector<Token> tokens = Tokenize(text);
  size_t i = 0;
  while (i < tokens.size()) {
    // 1. Gazetteer longest match (highest precedence).
    if (opts_.enable_gazetteer && gazetteer_ != nullptr) {
      size_t consumed = 0;
      auto hit = gazetteer_->LongestMatch(tokens, i, &consumed);
      if (hit.has_value()) {
        EntityMention m;
        m.type = hit->type;
        m.canonical = hit->canonical;
        m.offset = tokens[i].offset;
        const Token& last = tokens[i + consumed - 1];
        m.surface = std::string(
            text.substr(m.offset, last.offset + last.text.size() - m.offset));
        m.confidence = 1.0;
        m.attrs = hit->attrs;
        out.mentions.push_back(std::move(m));
        i += consumed;
        continue;
      }
    }
    // 2. URLs.
    if (opts_.enable_url_detection && IsUrlToken(tokens[i])) {
      EntityMention m;
      m.type = EntityType::kUrl;
      m.canonical = ToLower(tokens[i].text);
      m.surface = tokens[i].text;
      m.offset = tokens[i].offset;
      m.confidence = 1.0;
      out.mentions.push_back(std::move(m));
      ++i;
      continue;
    }
    // 3. Quoted capitalized phrase => Movie/Show title candidate.
    if (opts_.enable_quoted_title_detection &&
        tokens[i].kind == TokenKind::kPunct && tokens[i].text == "\"") {
      size_t j = i + 1;
      bool any_cap = false;
      while (j < tokens.size() && j - i <= 8 &&
             tokens[j].kind != TokenKind::kPunct) {
        any_cap = any_cap || tokens[j].IsCapitalized();
        ++j;
      }
      if (any_cap && j > i + 1 && j < tokens.size() &&
          tokens[j].text == "\"") {
        const Token& first = tokens[i + 1];
        const Token& last = tokens[j - 1];
        EntityMention m;
        m.type = EntityType::kMovie;
        m.offset = first.offset;
        m.surface = std::string(text.substr(
            first.offset, last.offset + last.text.size() - first.offset));
        m.canonical = m.surface;
        m.confidence = opts_.heuristic_confidence;
        out.mentions.push_back(std::move(m));
        i = j + 1;
        continue;
      }
    }
    // 4. Capitalized-run person heuristic.
    if (opts_.enable_person_heuristic && tokens[i].kind == TokenKind::kWord &&
        tokens[i].IsCapitalized() && !IsStopWord(ToLower(tokens[i].text))) {
      size_t j = i;
      while (j < tokens.size() && tokens[j].kind == TokenKind::kWord &&
             tokens[j].IsCapitalized() &&
             !IsStopWord(ToLower(tokens[j].text))) {
        ++j;
      }
      if (j - i >= 2 && j - i <= 4) {
        const Token& last = tokens[j - 1];
        EntityMention m;
        m.type = EntityType::kPerson;
        m.offset = tokens[i].offset;
        m.surface = std::string(text.substr(
            m.offset, last.offset + last.text.size() - m.offset));
        m.canonical = m.surface;
        m.confidence = opts_.heuristic_confidence;
        out.mentions.push_back(std::move(m));
        i = j;
        continue;
      }
    }
    ++i;
  }
  return out;
}

storage::DocValue DomainParser::ToInstanceDoc(const ParsedFragment& fragment) {
  using storage::DocValue;
  DocValue entities = DocValue::Array();
  for (const auto& m : fragment.mentions) {
    DocValue e = DocValue::Object();
    e.Add("type", DocValue::Str(EntityTypeName(m.type)));
    e.Add("name", DocValue::Str(m.canonical));
    e.Add("offset", DocValue::Int(static_cast<int64_t>(m.offset)));
    entities.Push(std::move(e));
  }
  DocValue doc = DocValue::Object();
  doc.Add("text", DocValue::Str(fragment.text));
  doc.Add("source", DocValue::Str(fragment.source));
  doc.Add("timestamp", DocValue::Int(fragment.timestamp));
  doc.Add("entities", std::move(entities));
  return doc;
}

std::vector<storage::DocValue> DomainParser::ToEntityDocs(
    const ParsedFragment& fragment, int64_t instance_id) {
  using storage::DocValue;
  std::vector<DocValue> out;
  out.reserve(fragment.mentions.size());
  for (const auto& m : fragment.mentions) {
    DocValue doc = DocValue::Object();
    doc.Add("type", DocValue::Str(EntityTypeName(m.type)));
    doc.Add("name", DocValue::Str(m.canonical));
    doc.Add("surface", DocValue::Str(m.surface));
    doc.Add("confidence", DocValue::Double(m.confidence));
    doc.Add("instance_id", DocValue::Int(instance_id));
    for (const auto& [k, v] : m.attrs) {
      doc.Add(k, DocValue::Str(v));
    }
    out.push_back(std::move(doc));
  }
  return out;
}

}  // namespace dt::textparse
