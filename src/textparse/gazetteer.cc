#include "textparse/gazetteer.h"

#include "common/strutil.h"

namespace dt::textparse {

std::string Gazetteer::NormalizePhrase(std::string_view phrase) {
  return Join(WordTokens(phrase), " ");
}

void Gazetteer::Add(GazetteerEntry entry) {
  if (entry.phrase.empty()) return;
  if (entry.canonical.empty()) entry.canonical = entry.phrase;
  std::string key = NormalizePhrase(entry.phrase);
  if (key.empty()) return;
  size_t ntok = WordTokens(entry.phrase).size();
  max_phrase_tokens_ = std::max(max_phrase_tokens_, ntok);
  entries_[key] = std::move(entry);
}

void Gazetteer::Add(std::string phrase, EntityType type,
                    std::string canonical) {
  GazetteerEntry e;
  e.phrase = std::move(phrase);
  e.type = type;
  e.canonical = std::move(canonical);
  Add(std::move(e));
}

std::optional<GazetteerEntry> Gazetteer::LongestMatch(
    const std::vector<Token>& tokens, size_t start,
    size_t* tokens_consumed) const {
  if (start >= tokens.size()) return std::nullopt;
  // Build the candidate key incrementally, longest first by extending
  // then remembering the last hit.
  std::string key;
  std::optional<GazetteerEntry> best;
  size_t best_len = 0;
  size_t limit = std::min(tokens.size() - start, max_phrase_tokens_);
  for (size_t len = 1; len <= limit; ++len) {
    const Token& tok = tokens[start + len - 1];
    if (tok.kind == TokenKind::kPunct) break;  // phrases don't cross punct
    if (!key.empty()) key.push_back(' ');
    key += ToLower(tok.text);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      best = it->second;
      best_len = len;
    }
  }
  if (best.has_value()) {
    *tokens_consumed = best_len;
    return best;
  }
  return std::nullopt;
}

std::optional<GazetteerEntry> Gazetteer::Lookup(std::string_view phrase) const {
  auto it = entries_.find(NormalizePhrase(phrase));
  if (it == entries_.end()) return std::nullopt;
  return it->second;
}

std::vector<GazetteerEntry> Gazetteer::Entries() const {
  std::vector<GazetteerEntry> out;
  out.reserve(entries_.size());
  for (const auto& [_, e] : entries_) out.push_back(e);
  return out;
}

}  // namespace dt::textparse
