/// \file table.h
/// \brief In-memory row-store tables — the RDBMS landing zone of Fig. 1.

#pragma once

#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/schema.h"
#include "relational/value.h"

namespace dt::relational {

/// One record.
using Row = std::vector<Value>;

/// \brief A named table: schema + rows + source provenance.
class Table {
 public:
  Table(std::string name, Schema schema)
      : name_(std::move(name)), schema_(std::move(schema)) {}

  const std::string& name() const { return name_; }
  const Schema& schema() const { return schema_; }

  /// Identifier of the data source this table was ingested from (set by
  /// the ingest layer; empty for derived tables).
  const std::string& source_id() const { return source_id_; }
  void set_source_id(std::string id) { source_id_ = std::move(id); }

  /// Appends a row; fails with InvalidArgument on arity mismatch.
  Status Append(Row row);

  int64_t num_rows() const { return static_cast<int64_t>(rows_.size()); }
  const Row& row(int64_t i) const { return rows_[i]; }
  const std::vector<Row>& rows() const { return rows_; }

  /// Value at (row, attribute-name); Null for unknown attribute.
  const Value& at(int64_t row, std::string_view attr) const;

  /// All values in the named column (empty for unknown attribute).
  std::vector<Value> Column(std::string_view attr) const;

  /// Rows passing `pred`, as a derived table with the same schema.
  Table Filter(const std::function<bool(const Row&)>& pred) const;

  /// Pretty-prints up to `max_rows` rows with a header (for examples
  /// and demo output).
  std::string ToString(int64_t max_rows = 20) const;

 private:
  std::string name_;
  Schema schema_;
  std::string source_id_;
  std::vector<Row> rows_;
};

}  // namespace dt::relational
