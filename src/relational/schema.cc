#include "relational/schema.h"

namespace dt::relational {

Schema::Schema(std::vector<Attribute> attrs) {
  for (auto& a : attrs) {
    // Constructor form asserts well-formed input; duplicate names keep
    // the first occurrence, matching SQL SELECT semantics.
    if (by_name_.count(a.name) == 0) {
      by_name_.emplace(a.name, static_cast<int>(attrs_.size()));
      attrs_.push_back(std::move(a));
    }
  }
}

Status Schema::AddAttribute(Attribute attr) {
  if (by_name_.count(attr.name) > 0) {
    return Status::AlreadyExists("attribute " + attr.name +
                                 " already in schema");
  }
  by_name_.emplace(attr.name, static_cast<int>(attrs_.size()));
  attrs_.push_back(std::move(attr));
  return Status::OK();
}

std::optional<int> Schema::IndexOf(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

std::string Schema::ToString() const {
  std::string out;
  for (size_t i = 0; i < attrs_.size(); ++i) {
    if (i > 0) out += ", ";
    out += attrs_[i].name;
    out += ":";
    out += ValueTypeName(attrs_[i].type);
  }
  return out;
}

}  // namespace dt::relational
