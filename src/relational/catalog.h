/// \file catalog.h
/// \brief Named registry of relational tables.

#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace dt::relational {

/// \brief Owns tables by name; the structured half of the landing zone.
class Catalog {
 public:
  /// Registers a table; AlreadyExists on a name clash.
  Result<Table*> AddTable(Table table);

  /// Returns the named table, or NotFound.
  Result<Table*> GetTable(const std::string& name);
  Result<const Table*> GetTable(const std::string& name) const;

  /// Removes the named table, or NotFound.
  Status DropTable(const std::string& name);

  /// Sorted table names.
  std::vector<std::string> TableNames() const;

  int64_t num_tables() const { return static_cast<int64_t>(tables_.size()); }

 private:
  std::map<std::string, std::unique_ptr<Table>> tables_;
};

}  // namespace dt::relational
