/// \file schema.h
/// \brief Relational schemas: ordered attribute lists with types.

#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "relational/value.h"

namespace dt::relational {

/// \brief One column of a table.
struct Attribute {
  std::string name;
  ValueType type = ValueType::kString;

  bool operator==(const Attribute& other) const {
    return name == other.name && type == other.type;
  }
};

/// \brief An ordered list of attributes with O(1) lookup by name.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Attribute> attrs);

  /// Appends an attribute; fails with AlreadyExists on duplicate names.
  Status AddAttribute(Attribute attr);

  /// Index of the attribute named `name`, or nullopt.
  std::optional<int> IndexOf(std::string_view name) const;

  bool Contains(std::string_view name) const {
    return IndexOf(name).has_value();
  }

  const Attribute& attribute(int i) const { return attrs_[i]; }
  const std::vector<Attribute>& attributes() const { return attrs_; }
  int num_attributes() const { return static_cast<int>(attrs_.size()); }

  /// "name:type, name:type, ..." rendering for logs and tests.
  std::string ToString() const;

 private:
  std::vector<Attribute> attrs_;
  std::unordered_map<std::string, int> by_name_;
};

}  // namespace dt::relational
