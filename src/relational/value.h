/// \file value.h
/// \brief Typed scalar values for the internal RDBMS landing zone.
///
/// Flattened records land here after ingest (Fig. 1 "data ingest" into
/// the internal RDBMS). Values are deliberately scalar — hierarchy is
/// eliminated by `ingest::Flattener` before records reach a table.

#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace dt::relational {

/// Storage type of a relational value.
enum class ValueType : uint8_t {
  kNull = 0,
  kBool = 1,
  kInt = 2,
  kDouble = 3,
  kString = 4,
};

const char* ValueTypeName(ValueType t);

/// \brief A nullable scalar.
class Value {
 public:
  Value() : type_(ValueType::kNull) {}

  static Value Null() { return Value(); }
  static Value Bool(bool b) {
    Value v;
    v.type_ = ValueType::kBool;
    v.bool_ = b;
    return v;
  }
  static Value Int(int64_t i) {
    Value v;
    v.type_ = ValueType::kInt;
    v.int_ = i;
    return v;
  }
  static Value Double(double d) {
    Value v;
    v.type_ = ValueType::kDouble;
    v.double_ = d;
    return v;
  }
  static Value Str(std::string s) {
    Value v;
    v.type_ = ValueType::kString;
    v.str_ = std::move(s);
    return v;
  }

  ValueType type() const { return type_; }
  bool is_null() const { return type_ == ValueType::kNull; }
  bool is_bool() const { return type_ == ValueType::kBool; }
  bool is_int() const { return type_ == ValueType::kInt; }
  bool is_double() const { return type_ == ValueType::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type_ == ValueType::kString; }

  bool bool_value() const { return bool_; }
  int64_t int_value() const { return int_; }
  double double_value() const { return double_; }
  const std::string& string_value() const { return str_; }

  /// Numeric content as double (0 for non-numeric).
  double as_double() const;

  /// Lossless textual rendering ("" for null).
  std::string ToString() const;

  /// Structural equality; int/double compare numerically (Int(2) ==
  /// Double(2.0)) because ingested sources disagree on numeric types.
  bool Equals(const Value& other) const;

  /// Three-way ordering: null < bool < numeric < string; numerics
  /// compare across int/double.
  int Compare(const Value& other) const;

 private:
  ValueType type_;
  bool bool_ = false;
  int64_t int_ = 0;
  double double_ = 0;
  std::string str_;
};

}  // namespace dt::relational
