#include "relational/table.h"

#include <algorithm>

namespace dt::relational {

Status Table::Append(Row row) {
  if (static_cast<int>(row.size()) != schema_.num_attributes()) {
    return Status::InvalidArgument(
        "row arity " + std::to_string(row.size()) + " does not match schema " +
        std::to_string(schema_.num_attributes()) + " in table " + name_);
  }
  rows_.push_back(std::move(row));
  return Status::OK();
}

const Value& Table::at(int64_t row, std::string_view attr) const {
  static const Value kNull;
  auto idx = schema_.IndexOf(attr);
  if (!idx.has_value()) return kNull;
  return rows_[row][*idx];
}

std::vector<Value> Table::Column(std::string_view attr) const {
  std::vector<Value> out;
  auto idx = schema_.IndexOf(attr);
  if (!idx.has_value()) return out;
  out.reserve(rows_.size());
  for (const auto& r : rows_) out.push_back(r[*idx]);
  return out;
}

Table Table::Filter(const std::function<bool(const Row&)>& pred) const {
  Table out(name_ + "_filtered", schema_);
  out.set_source_id(source_id_);
  for (const auto& r : rows_) {
    if (pred(r)) out.rows_.push_back(r);
  }
  return out;
}

std::string Table::ToString(int64_t max_rows) const {
  // Compute column widths over the shown prefix.
  std::vector<std::string> header;
  for (const auto& a : schema_.attributes()) header.push_back(a.name);
  int64_t shown = std::min<int64_t>(max_rows, num_rows());
  std::vector<size_t> width(header.size());
  for (size_t c = 0; c < header.size(); ++c) width[c] = header[c].size();
  std::vector<std::vector<std::string>> cells(shown);
  for (int64_t r = 0; r < shown; ++r) {
    cells[r].reserve(header.size());
    for (size_t c = 0; c < header.size(); ++c) {
      std::string s = rows_[r][c].ToString();
      if (s.size() > 40) s = s.substr(0, 37) + "...";
      width[c] = std::max(width[c], s.size());
      cells[r].push_back(std::move(s));
    }
  }
  auto rule = [&] {
    std::string s = "+";
    for (size_t c = 0; c < header.size(); ++c) {
      s += std::string(width[c] + 2, '-') + "+";
    }
    return s + "\n";
  };
  auto line = [&](const std::vector<std::string>& vals) {
    std::string s = "|";
    for (size_t c = 0; c < header.size(); ++c) {
      s += " " + vals[c] + std::string(width[c] - vals[c].size(), ' ') + " |";
    }
    return s + "\n";
  };
  std::string out = name_ + " (" + std::to_string(num_rows()) + " rows)\n";
  out += rule() + line(header) + rule();
  for (int64_t r = 0; r < shown; ++r) out += line(cells[r]);
  out += rule();
  if (shown < num_rows()) {
    out += "... " + std::to_string(num_rows() - shown) + " more rows\n";
  }
  return out;
}

}  // namespace dt::relational
