#include "relational/catalog.h"

namespace dt::relational {

Result<Table*> Catalog::AddTable(Table table) {
  const std::string name = table.name();
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("table " + name + " already in catalog");
  }
  auto owned = std::make_unique<Table>(std::move(table));
  Table* ptr = owned.get();
  tables_.emplace(name, std::move(owned));
  return ptr;
}

Result<Table*> Catalog::GetTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not in catalog");
  }
  return it->second.get();
}

Result<const Table*> Catalog::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not in catalog");
  }
  return static_cast<const Table*>(it->second.get());
}

Status Catalog::DropTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("table " + name + " not in catalog");
  }
  tables_.erase(it);
  return Status::OK();
}

std::vector<std::string> Catalog::TableNames() const {
  std::vector<std::string> out;
  out.reserve(tables_.size());
  for (const auto& [name, _] : tables_) out.push_back(name);
  return out;
}

}  // namespace dt::relational
