#include "relational/value.h"

#include "common/strutil.h"

namespace dt::relational {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "null";
    case ValueType::kBool:
      return "bool";
    case ValueType::kInt:
      return "int";
    case ValueType::kDouble:
      return "double";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

double Value::as_double() const {
  switch (type_) {
    case ValueType::kInt:
      return static_cast<double>(int_);
    case ValueType::kDouble:
      return double_;
    case ValueType::kBool:
      return bool_ ? 1.0 : 0.0;
    default:
      return 0.0;
  }
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNull:
      return "";
    case ValueType::kBool:
      return bool_ ? "true" : "false";
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kDouble:
      return FormatDouble(double_, 10);
    case ValueType::kString:
      return str_;
  }
  return "";
}

bool Value::Equals(const Value& other) const {
  if (is_number() && other.is_number()) {
    return as_double() == other.as_double();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case ValueType::kNull:
      return true;
    case ValueType::kBool:
      return bool_ == other.bool_;
    case ValueType::kString:
      return str_ == other.str_;
    default:
      return true;  // numeric handled above
  }
}

namespace {
int TypeRank(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return 0;
    case ValueType::kBool:
      return 1;
    case ValueType::kInt:
    case ValueType::kDouble:
      return 2;
    case ValueType::kString:
      return 3;
  }
  return 4;
}
}  // namespace

int Value::Compare(const Value& other) const {
  int ra = TypeRank(type_), rb = TypeRank(other.type_);
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (ra) {
    case 0:
      return 0;
    case 1:
      return (bool_ == other.bool_) ? 0 : (bool_ < other.bool_ ? -1 : 1);
    case 2: {
      double a = as_double(), b = other.as_double();
      return a == b ? 0 : (a < b ? -1 : 1);
    }
    default:
      return str_.compare(other.str_) < 0   ? -1
             : str_.compare(other.str_) > 0 ? 1
                                            : 0;
  }
}

}  // namespace dt::relational
