#include "datagen/ftables_gen.h"

#include <algorithm>

#include "common/strutil.h"
#include "datagen/vocab.h"

namespace dt::datagen {

using relational::Row;
using relational::Schema;
using relational::Table;
using relational::Value;
using relational::ValueType;

const char* const kConceptShowName = "SHOW_NAME";
const char* const kConceptTheater = "THEATER";
const char* const kConceptPerformance = "PERFORMANCE";
const char* const kConceptCheapestPrice = "CHEAPEST_PRICE";
const char* const kConceptFullPrice = "FULL_PRICE";
const char* const kConceptDiscount = "DISCOUNT";
const char* const kConceptFirst = "FIRST";
const char* const kConceptLast = "LAST";
const char* const kConceptPhone = "PHONE";
const char* const kConceptUrl = "URL";
const char* const kConceptCity = "CITY";
const char* const kConceptSeats = "SEATS";
const char* const kConceptRuntime = "RUNTIME";

std::vector<std::string> FusionTablesGenerator::Concepts() {
  return {kConceptShowName, kConceptTheater,  kConceptPerformance,
          kConceptCheapestPrice, kConceptFullPrice, kConceptDiscount,
          kConceptFirst,    kConceptLast,     kConceptPhone,
          kConceptUrl,      kConceptCity,     kConceptSeats,
          kConceptRuntime};
}

const std::vector<std::string>& FusionTablesGenerator::VariantsOf(
    const std::string& concept_name) {
  static const std::map<std::string, std::vector<std::string>> kVariants = {
      {kConceptShowName,
       {"show_name", "show", "title", "production", "showTitle", "name"}},
      {kConceptTheater,
       {"theater", "theatre", "venue", "playhouse", "theater_name"}},
      {kConceptPerformance,
       {"performance", "schedule", "showtimes", "performance_times",
        "curtain_times"}},
      {kConceptCheapestPrice,
       {"cheapest_price", "lowest_price", "min_price", "best_price",
        "price_from"}},
      {kConceptFullPrice,
       {"full_price", "regular_price", "ticket_price", "price", "cost"}},
      {kConceptDiscount,
       {"discount", "discount_pct", "savings", "promo_pct"}},
      {kConceptFirst,
       {"first", "first_performance", "opening", "opening_date",
        "previews_begin"}},
      {kConceptLast, {"last", "closing", "closing_date", "final_performance"}},
      {kConceptPhone, {"phone", "tel", "box_office_phone", "contact"}},
      {kConceptUrl, {"url", "website", "tickets_url", "link"}},
      {kConceptCity, {"city", "town", "market"}},
      {kConceptSeats, {"seats", "capacity", "house_size"}},
      {kConceptRuntime, {"runtime", "running_time", "length_min", "duration"}},
  };
  static const std::vector<std::string> kEmpty;
  auto it = kVariants.find(concept_name);
  return it == kVariants.end() ? kEmpty : it->second;
}

FusionTablesGenerator::FusionTablesGenerator(FTablesGenOptions opts)
    : opts_(opts) {
  BuildShows();
}

void FusionTablesGenerator::BuildShows() {
  Rng rng(opts_.seed ^ 0x5710c0ffeeULL);
  std::vector<std::string> titles = PaperTop10Titles();
  for (const auto& t : ExtraTitles()) titles.push_back(t);
  const auto& theaters = TheaterEntries();
  static const char* kSchedules[] = {
      "Tues at 7pm Wed at 8pm Thurs at 7pm Fri-Sat at 8pm Wed, Sat at 2pm "
      "Sun at 3pm",
      "Tue-Sat at 8pm Sat-Sun at 2pm",
      "Mon Wed-Sat at 7:30pm Sat at 2pm Sun at 3pm",
      "Wed-Sun at 8pm Sun at 2pm",
      "Tue Thu at 7pm Fri-Sat at 8pm Sun at 3pm",
  };
  for (size_t i = 0; i < titles.size(); ++i) {
    ShowRecord show;
    show.title = titles[i];
    auto parts = Split(theaters[i % theaters.size()], '|');
    show.theater = parts[0] + " " + parts[1];
    show.performance = kSchedules[i % 5];
    show.cheapest_price = static_cast<double>(rng.UniformInt(22, 59));
    show.full_price =
        show.cheapest_price + static_cast<double>(rng.UniformInt(40, 140));
    show.discount_pct = static_cast<int>(rng.UniformInt(10, 55));
    show.first_date = std::to_string(rng.UniformInt(1, 12)) + "/" +
                      std::to_string(rng.UniformInt(1, 28)) + "/2013";
    show.last_date = std::to_string(rng.UniformInt(1, 12)) + "/" +
                     std::to_string(rng.UniformInt(1, 28)) + "/2014";
    show.phone = "(212) " + std::to_string(rng.UniformInt(200, 999)) + "-" +
                 std::to_string(rng.UniformInt(1000, 9999));
    show.url = rng.Pick(UrlPool());
    show.city = "New York";
    show.seats = static_cast<int>(rng.UniformInt(500, 1950));
    show.runtime_min = static_cast<int>(rng.UniformInt(90, 185));
    shows_.push_back(std::move(show));
  }
  // Matilda carries the exact Table VI values.
  for (auto& show : shows_) {
    if (show.title == "Matilda") {
      show.theater = "Shubert 225 W. 44th St between 7th and 8th";
      show.performance =
          "Tues at 7pm Wed at 8pm Thurs at 7pm Fri-Sat at 8pm Wed, Sat at "
          "2pm Sun at 3pm";
      show.cheapest_price = 27.0;
      show.first_date = "3/4/2013";
    }
  }
}

std::string FusionTablesGenerator::RenderValue(const std::string& concept_name,
                                               const ShowRecord& show,
                                               int style, Rng* rng) const {
  if (concept_name == kConceptShowName) return show.title;
  if (concept_name == kConceptTheater) return show.theater;
  if (concept_name == kConceptPerformance) return show.performance;
  if (concept_name == kConceptCheapestPrice || concept_name == kConceptFullPrice) {
    double usd = concept_name == kConceptCheapestPrice ? show.cheapest_price
                                                  : show.full_price;
    switch (style % 4) {
      case 0:
        return "$" + FormatDouble(usd, 2);
      case 1:
        return FormatDouble(usd, 2);
      case 2:
        return FormatDouble(usd, 2) + " USD";
      default:
        // Euro-quoting source (exercises the eur_to_usd transform);
        // 1 USD ~ 0.77 EUR in the demo's era.
        return "\xe2\x82\xac" + FormatDouble(usd * 0.77, 2);
    }
  }
  if (concept_name == kConceptDiscount) {
    return std::to_string(show.discount_pct) + "%";
  }
  if (concept_name == kConceptFirst || concept_name == kConceptLast) {
    const std::string& mdy =
        concept_name == kConceptFirst ? show.first_date : show.last_date;
    if (style % 3 == 0) return mdy;
    auto parts = Split(mdy, '/');
    int m = std::stoi(parts[0]), d = std::stoi(parts[1]);
    int y = std::stoi(parts[2]);
    if (style % 3 == 1) {
      char buf[16];
      std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", y, m, d);
      return buf;
    }
    static const char* kMonths[] = {"Jan", "Feb", "Mar", "Apr", "May", "Jun",
                                    "Jul", "Aug", "Sep", "Oct", "Nov", "Dec"};
    return std::string(kMonths[m - 1]) + " " + std::to_string(d) + ", " +
           std::to_string(y);
  }
  if (concept_name == kConceptPhone) {
    if (style % 2 == 0) return show.phone;
    std::string digits;
    for (char c : show.phone) {
      if (c >= '0' && c <= '9') digits.push_back(c);
    }
    return digits;
  }
  if (concept_name == kConceptUrl) return show.url;
  if (concept_name == kConceptCity) return show.city;
  if (concept_name == kConceptSeats) return std::to_string(show.seats);
  if (concept_name == kConceptRuntime) {
    return style % 2 == 0 ? std::to_string(show.runtime_min)
                          : std::to_string(show.runtime_min) + " min";
  }
  (void)rng;
  return "";
}

std::vector<GeneratedSource> FusionTablesGenerator::Generate() {
  Rng rng(opts_.seed);
  std::vector<GeneratedSource> out;
  std::vector<std::string> concepts = Concepts();

  for (int s = 0; s < opts_.num_sources; ++s) {
    // Attribute selection: SHOW_NAME always; a random subset of the
    // rest. Source 0 is the canonical reference source: every concept_name,
    // canonical order (it seeds the bottom-up global schema).
    std::vector<std::string> chosen = {kConceptShowName};
    std::vector<std::string> rest(concepts.begin() + 1, concepts.end());
    if (s == 0) {
      for (const auto& c : rest) chosen.push_back(c);
    } else {
      rng.Shuffle(&rest);
      int max_attrs =
          std::min<int>(opts_.max_attrs, static_cast<int>(concepts.size()));
      int nattrs = static_cast<int>(rng.UniformInt(
          opts_.min_attrs, std::max(opts_.min_attrs, max_attrs)));
      for (int a = 0; a < nattrs - 1 && a < static_cast<int>(rest.size());
           ++a) {
        chosen.push_back(rest[a]);
      }
    }

    // Attribute naming: source 0 is canonical; others sample variants.
    std::map<std::string, std::string> attr_of_concept;
    GeneratedSource gen;
    Schema schema;
    for (const auto& concept_name : chosen) {
      std::string attr_name;
      if (s == 0) {
        attr_name = concept_name;
      } else {
        const auto& variants = VariantsOf(concept_name);
        attr_name = variants.empty() ? ToLower(concept_name)
                                     : variants[rng.Uniform(variants.size())];
      }
      attr_of_concept[concept_name] = attr_name;
      gen.attr_concept[attr_name] = concept_name;
      (void)schema.AddAttribute({attr_name, ValueType::kString});
    }

    // Row coverage: contiguous-ish random subset of the show list.
    int max_rows = std::min<int>(opts_.max_rows,
                                 static_cast<int>(shows_.size()));
    int nrows = static_cast<int>(rng.UniformInt(
        opts_.min_rows, std::max(opts_.min_rows, max_rows)));
    std::vector<size_t> show_idx(shows_.size());
    for (size_t i = 0; i < show_idx.size(); ++i) show_idx[i] = i;
    rng.Shuffle(&show_idx);
    show_idx.resize(static_cast<size_t>(nrows));
    // Source 0 always covers Matilda (index 4 in the title list) so the
    // demo's fused query has its structured half.
    if (s == 0) {
      bool has_matilda = false;
      for (size_t idx : show_idx) {
        if (shows_[idx].title == "Matilda") has_matilda = true;
      }
      if (!has_matilda) {
        for (size_t i = 0; i < shows_.size(); ++i) {
          if (shows_[i].title == "Matilda") {
            show_idx[0] = i;
            break;
          }
        }
      }
    }
    std::sort(show_idx.begin(), show_idx.end());

    int value_style = s;  // per-source formatting convention
    Table table("ftables_" + (s < 10 ? "0" + std::to_string(s)
                                     : std::to_string(s)),
                schema);
    table.set_source_id("ftables/" + std::to_string(s));
    for (size_t idx : show_idx) {
      Row row;
      row.reserve(chosen.size());
      for (const auto& concept_name : chosen) {
        std::string v = RenderValue(concept_name, shows_[idx], value_style, &rng);
        // Dirt: null markers and whitespace damage.
        if (rng.Bernoulli(opts_.dirty_rate)) {
          switch (rng.Uniform(3)) {
            case 0:
              v = "N/A";
              break;
            case 1:
              v = "  " + v + " ";
              break;
            default:
              v = "";
              break;
          }
        }
        row.push_back(v.empty() ? Value::Null() : Value::Str(v));
      }
      (void)table.Append(std::move(row));
    }
    gen.table = std::move(table);
    out.push_back(std::move(gen));
  }
  return out;
}

}  // namespace dt::datagen
