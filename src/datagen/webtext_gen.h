/// \file webtext_gen.h
/// \brief Synthetic WEBINSTANCE corpus generator (the Recorded Future
/// crawl substitute).
///
/// Generates news/blog/tweet-register fragments whose planted entity
/// mentions follow the type skew of Table III, with Zipf-distributed
/// title popularity whose rank order embeds the paper's Table IV
/// top-10 list, controllable near-duplicate injection (ground truth
/// for the dedup classifier) and a guaranteed "Matilda" grosses
/// fragment that reproduces the TEXT_FEED of Tables V/VI.

#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "textparse/entity_types.h"
#include "textparse/gazetteer.h"

namespace dt::datagen {

/// Generator knobs.
struct WebTextGenOptions {
  int64_t num_fragments = 10000;
  uint64_t seed = 42;
  /// Title popularity skew (rank 0 = most discussed).
  double zipf_theta = 1.1;
  /// Fraction of fragments that are near-duplicates of earlier ones.
  double duplicate_rate = 0.08;
  /// Probability a sentence uses a rich multi-entity template instead
  /// of a type-steered micro template. Rich templates skew toward
  /// movie/show mentions (the demo's domain); the micro templates are
  /// what keep the aggregate type distribution on Table III's skew, so
  /// this stays small by default.
  double rich_template_rate = 0.12;
  /// Sentences per fragment: 1 + Uniform(max_extra_sentences+1). The
  /// default targets the paper's ~9.8 extracted entities per instance
  /// (Table II count / Table I count); web articles mention many
  /// entities each.
  int max_extra_sentences = 14;
};

/// \brief One generated fragment with its planted ground truth.
struct GeneratedFragment {
  std::string text;
  std::string feed;  ///< "newsfeed" | "blog" | "twitter"
  int64_t timestamp = 0;
  /// Entities planted in the text (type, canonical name).
  std::vector<std::pair<textparse::EntityType, std::string>> truth_mentions;
  /// Index of the fragment this near-duplicates, or -1.
  int64_t duplicate_of = -1;
};

/// \brief Deterministic corpus generator.
class WebTextGenerator {
 public:
  explicit WebTextGenerator(WebTextGenOptions opts = {});

  /// All movie/show titles, most popular first (the first ten are the
  /// paper's Table IV list).
  const std::vector<std::string>& titles() const { return titles_; }

  /// True for the award-winning titles (exactly the paper's ten).
  bool IsAwardWinning(const std::string& title) const;

  /// \brief Gazetteer covering every entity the generator can plant —
  /// the dictionary handed to the domain parser (the closed-world
  /// contract described in DESIGN.md).
  textparse::Gazetteer BuildGazetteer() const;

  /// Generates the corpus. Deterministic in the options' seed; calling
  /// again regenerates the identical corpus.
  std::vector<GeneratedFragment> Generate();

 private:
  std::string FillTemplate(const std::string& tmpl, Rng* rng,
                           GeneratedFragment* frag);
  std::string MicroSentence(textparse::EntityType type, Rng* rng,
                            GeneratedFragment* frag);
  std::string PickTitle(Rng* rng);
  GeneratedFragment MakeDuplicate(const GeneratedFragment& original,
                                  Rng* rng);

  WebTextGenOptions opts_;
  std::vector<std::string> titles_;
  std::vector<std::string> persons_;
  std::vector<std::string> theater_names_;  // name only (no address)
  ZipfSampler title_zipf_;
  // Type steering state: planted counts vs Table III targets.
  double target_share_[textparse::kNumEntityTypes];
  int64_t planted_[textparse::kNumEntityTypes];
  int64_t total_planted_ = 0;
};

}  // namespace dt::datagen
