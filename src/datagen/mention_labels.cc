#include "datagen/mention_labels.h"

#include <cctype>

#include "common/rng.h"
#include "common/strutil.h"
#include "datagen/vocab.h"

namespace dt::datagen {

namespace {

const std::vector<std::string>& GarbagePhrases() {
  // What capitalized-run heuristics actually pick up from web text.
  static const std::vector<std::string> kGarbage = {
      "Breaking News",      "Read More",          "Click Here",
      "Sign Up",            "Full Story",         "Editors Note",
      "Last Updated",       "Photo Credit",       "Related Articles",
      "Terms Of Service",   "Privacy Policy",     "All Rights Reserved",
      "Next Page",          "Top Stories",        "Live Blog",
      "Subscribe Now",      "Share This",         "Sponsored Content",
      "Monday Morning",     "Tuesday Evening",    "Late Thursday",
      "Early Friday",       "This Week",          "Next Season",
      "Opening Night Buzz", "Box Office Report",  "Critics Corner",
      "Weekend Roundup",    "The Next Day",       "First Look",
      "Exclusive Interview", "Press Release",     "Media Advisory",
      "Hot Takes",          "Must See",           "Dont Miss",
  };
  return kGarbage;
}

const std::vector<std::string>& PositiveContexts() {
  static const std::vector<std::string> kContexts = {
      "tickets for {} sold out within the hour",
      "the producers of {} announced an extension",
      "critics praised {} after the premiere",
      "audiences lined up to see {} downtown",
      "a revival of {} is planned for the fall",
      "{} posted record grosses this week",
      "the board appointed {} to lead the search",
      "analysts at {} raised their estimates",
      "shares of {} rallied after earnings",
      "{} spoke with reporters backstage",
  };
  return kContexts;
}

const std::vector<std::string>& GarbageContexts() {
  static const std::vector<std::string> kContexts = {
      "{} : our latest coverage of the theater season",
      "{} - subscribe for unlimited access",
      "{} | the best of this week's reviews",
      "tap {} to continue reading the article",
      "{} follow us for updates and alerts",
      "advertisement {} scroll to continue",
      "{} copyright the syndicate press office",
      "see {} for showtimes near you",
  };
  return kContexts;
}

const std::vector<std::string>& NeutralContexts() {
  // Contexts either class can appear in — forces the classifier to use
  // surface-form evidence, not context alone.
  static const std::vector<std::string> kContexts = {
      "{} appeared near the top of the page",
      "readers clicked through to {} yesterday",
      "the section on {} ran this week",
      "{} was mentioned twice in the roundup",
      "editors placed {} above the fold",
      "the item about {} drew comments",
  };
  return kContexts;
}

std::string Embed(const std::string& tmpl, const std::string& surface) {
  std::string out;
  size_t pos = tmpl.find("{}");
  if (pos == std::string::npos) return tmpl + " " + surface;
  out = tmpl.substr(0, pos) + surface + tmpl.substr(pos + 2);
  return out;
}

}  // namespace

std::vector<clean::LabeledMention> GenerateMentionLabels(
    const MentionLabelOptions& opts) {
  Rng rng(opts.seed ^ 0xC1EA4ULL);
  // Positive surface pool: every entity class the vocabulary offers.
  std::vector<std::string> positives = PaperTop10Titles();
  for (const auto& x : ExtraTitles()) positives.push_back(x);
  for (const auto& x : Companies()) positives.push_back(x);
  for (const auto& x : Facilities()) positives.push_back(x);
  for (const auto& x : Organizations()) positives.push_back(x);
  const auto& fn = FirstNames();
  const auto& ln = LastNames();
  for (size_t i = 0; i < 200; ++i) {
    positives.push_back(fn[i % fn.size()] + " " +
                        ln[(i * 13) % ln.size()]);
  }

  std::vector<clean::LabeledMention> out;
  out.reserve(static_cast<size_t>(opts.num_mentions));
  while (static_cast<int64_t>(out.size()) < opts.num_mentions) {
    clean::LabeledMention m;
    // Half the contexts are class-neutral so surface evidence matters;
    // the rest lean toward (but do not determine) the true class.
    bool neutral = rng.Bernoulli(0.5);
    if (rng.Bernoulli(opts.positive_rate)) {
      m.surface = rng.Pick(positives);
      const auto& pool = neutral ? NeutralContexts()
                                 : (rng.Bernoulli(0.85) ? PositiveContexts()
                                                        : GarbageContexts());
      m.context = Embed(rng.Pick(pool), m.surface);
      m.label = 1;
    } else {
      if (rng.Bernoulli(0.4)) {
        // Overextended/partial extraction: an entity token glued to a
        // generic headline word — the hard negatives a capitalized-run
        // heuristic really produces ("Chicago Weekend", "Matilda
        // Tonight").
        static const char* kGlue[] = {"Weekend", "Tonight", "Update",
                                      "Insider", "Review",  "Preview",
                                      "Recap",   "Watch"};
        auto tokens = WordTokens(rng.Pick(positives));
        std::string head = tokens.empty() ? "Show" : tokens[0];
        head[0] = static_cast<char>(
            std::toupper(static_cast<unsigned char>(head[0])));
        m.surface = head + " " + kGlue[rng.Uniform(8)];
      } else {
        m.surface = rng.Pick(GarbagePhrases());
      }
      const auto& pool = neutral ? NeutralContexts()
                                 : (rng.Bernoulli(0.85) ? GarbageContexts()
                                                        : PositiveContexts());
      m.context = Embed(rng.Pick(pool), m.surface);
      m.label = 0;
    }
    out.push_back(std::move(m));
  }
  return out;
}

}  // namespace dt::datagen
