/// \file ftables_gen.h
/// \brief FTABLES generator — the 20 Google-Fusion-Tables Broadway
/// sources of the paper (schedules, theater locations, discounts;
/// 5-20 attributes and 10-100 rows each).
///
/// Sources share an underlying master show list but disagree on
/// attribute naming (synonym variants), value formats (currencies,
/// date styles) and coverage — exactly the heterogeneity the schema
/// matcher must overcome in Figs. 2/3. Ground truth maps every source
/// attribute to its canonical concept_name so the benches can score the
/// matcher. Matilda's master record carries the exact values of
/// Table VI.

#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/rng.h"
#include "relational/table.h"

namespace dt::datagen {

/// Canonical concept_name names (uppercase, the paper's demo convention).
/// Source 0 uses these verbatim; later sources use synonym variants.
extern const char* const kConceptShowName;       // "SHOW_NAME"
extern const char* const kConceptTheater;        // "THEATER"
extern const char* const kConceptPerformance;    // "PERFORMANCE"
extern const char* const kConceptCheapestPrice;  // "CHEAPEST_PRICE"
extern const char* const kConceptFullPrice;      // "FULL_PRICE"
extern const char* const kConceptDiscount;       // "DISCOUNT"
extern const char* const kConceptFirst;          // "FIRST"
extern const char* const kConceptLast;           // "LAST"
extern const char* const kConceptPhone;          // "PHONE"
extern const char* const kConceptUrl;            // "URL"
extern const char* const kConceptCity;           // "CITY"
extern const char* const kConceptSeats;          // "SEATS"
extern const char* const kConceptRuntime;        // "RUNTIME"

/// \brief Master data for one Broadway show.
struct ShowRecord {
  std::string title;
  std::string theater;      ///< "Shubert 225 W. 44th St between 7th and 8th"
  std::string performance;  ///< "Tues at 7pm Wed at 8pm ..."
  double cheapest_price = 0;  ///< USD
  double full_price = 0;      ///< USD
  int discount_pct = 0;
  std::string first_date;  ///< m/d/yyyy
  std::string last_date;
  std::string phone;
  std::string url;
  std::string city;
  int seats = 0;
  int runtime_min = 0;
};

/// Generator knobs (defaults mirror the paper's description).
struct FTablesGenOptions {
  int num_sources = 20;
  uint64_t seed = 42;
  int min_rows = 10;
  int max_rows = 100;
  int min_attrs = 5;
  int max_attrs = 20;  // capped by available concepts
  /// Fraction of cells damaged (null markers, stray whitespace).
  double dirty_rate = 0.04;
};

/// \brief One generated structured source with its ground truth.
struct GeneratedSource {
  relational::Table table{"", relational::Schema()};
  /// source attribute name -> canonical concept_name name
  std::map<std::string, std::string> attr_concept;
};

/// \brief Deterministic FTABLES generator.
class FusionTablesGenerator {
 public:
  explicit FusionTablesGenerator(FTablesGenOptions opts = {});

  /// The master show list (Matilda first, with Table VI's exact values).
  const std::vector<ShowRecord>& shows() const { return shows_; }

  /// All canonical concept_name names, SHOW_NAME first.
  static std::vector<std::string> Concepts();

  /// Synonym variants of a concept_name used by non-canonical sources.
  static const std::vector<std::string>& VariantsOf(
      const std::string& concept_name);

  /// Generates the sources. Deterministic in the seed; table names are
  /// "ftables_00".."ftables_NN" and source ids "ftables/NN".
  std::vector<GeneratedSource> Generate();

 private:
  void BuildShows();
  std::string RenderValue(const std::string& concept_name, const ShowRecord& show,
                          int style, Rng* rng) const;

  FTablesGenOptions opts_;
  std::vector<ShowRecord> shows_;
};

}  // namespace dt::datagen
