#include "datagen/vocab.h"

namespace dt::datagen {

const std::vector<std::string>& PaperTop10Titles() {
  static const std::vector<std::string> kTitles = {
      "The Walking Dead", "Written",        "Mean Streets",
      "Goodfellas",       "Matilda",        "The Wolverine",
      "Trees Lounge",     "Raging Bull",    "Berkeley in the Sixties",
      "Never Should Have",
  };
  return kTitles;
}

const std::vector<std::string>& ExtraTitles() {
  static const std::vector<std::string> kTitles = {
      "Wicked", "Chicago", "The Lion King", "Phantom of the Opera",
      "Les Miserables", "The Book of Mormon", "Kinky Boots", "Pippin",
      "Annie", "Cinderella", "Newsies", "Once", "Jersey Boys",
      "Rock of Ages", "Mamma Mia", "Spider Turn Off the Dark",
      "Lucky Guy", "The Nance", "Motown", "Vanya and Sonia",
      "The Assembled Parties", "Orphans", "The Big Knife", "Macbeth",
      "The Testament of Mary", "Jekyll and Hyde", "Breakfast at Tiffanys",
      "Cat on a Hot Tin Roof", "The Heiress", "Glengarry Glen Ross",
      "Dead Accounts", "The Anarchist", "Golden Boy", "Picnic",
      "The Other Place", "Ann", "Grace", "An Enemy of the People",
      "The Performers", "Scandalous", "Elf", "Bring It On",
      "A Christmas Story", "War Horse", "Peter and the Starcatcher",
      "End of the Rainbow", "Ghost the Musical", "Leap of Faith",
      "Nice Work If You Can Get It", "Evita", "Godspell",
  };
  return kTitles;
}

const std::vector<std::string>& TheaterEntries() {
  static const std::vector<std::string> kTheaters = {
      "Shubert|225 W. 44th St between 7th and 8th",
      "Gershwin|222 W. 51st St between Broadway and 8th",
      "Majestic|245 W. 44th St between 7th and 8th",
      "Ambassador|219 W. 49th St between Broadway and 8th",
      "Imperial|249 W. 45th St between 7th and 8th",
      "Richard Rodgers|226 W. 46th St between Broadway and 8th",
      "Al Hirschfeld|302 W. 45th St between 8th and 9th",
      "Minskoff|200 W. 45th St at Broadway",
      "Lunt-Fontanne|205 W. 46th St between Broadway and 8th",
      "Nederlander|208 W. 41st St between 7th and 8th",
      "Palace|1564 Broadway at 47th",
      "Winter Garden|1634 Broadway between 50th and 51st",
      "Eugene O'Neill|230 W. 49th St between Broadway and 8th",
      "Booth|222 W. 45th St between Broadway and 8th",
      "Broadhurst|235 W. 44th St between 7th and 8th",
      "Ethel Barrymore|243 W. 47th St between Broadway and 8th",
      "Longacre|220 W. 48th St between Broadway and 8th",
      "Lyceum|149 W. 45th St between 6th and 7th",
      "Music Box|239 W. 45th St between Broadway and 8th",
      "New Amsterdam|214 W. 42nd St between 7th and 8th",
  };
  return kTheaters;
}

const std::vector<std::string>& FirstNames() {
  static const std::vector<std::string> kNames = {
      "James",   "Mary",    "Robert",  "Patricia", "John",    "Jennifer",
      "Michael", "Linda",   "David",   "Elizabeth", "William", "Barbara",
      "Richard", "Susan",   "Joseph",  "Jessica",  "Thomas",  "Sarah",
      "Charles", "Karen",   "Daniel",  "Lisa",     "Matthew", "Nancy",
      "Anthony", "Betty",   "Mark",    "Margaret", "Donald",  "Sandra",
      "Steven",  "Ashley",  "Paul",    "Kimberly", "Andrew",  "Emily",
      "Joshua",  "Donna",   "Kenneth", "Michelle",
  };
  return kNames;
}

const std::vector<std::string>& LastNames() {
  static const std::vector<std::string> kNames = {
      "Smith",    "Johnson",  "Williams", "Brown",    "Jones",
      "Garcia",   "Miller",   "Davis",    "Rodriguez", "Martinez",
      "Hernandez", "Lopez",   "Gonzalez", "Wilson",   "Anderson",
      "Thomas",   "Taylor",   "Moore",    "Jackson",  "Martin",
      "Lee",      "Perez",    "Thompson", "White",    "Harris",
      "Sanchez",  "Clark",    "Ramirez",  "Lewis",    "Robinson",
      "Walker",   "Young",    "Allen",    "King",     "Wright",
      "Scott",    "Torres",   "Nguyen",   "Hill",     "Flores",
  };
  return kNames;
}

const std::vector<std::string>& Companies() {
  static const std::vector<std::string> kCompanies = {
      "Acme Analytics",     "Recorded Future",    "Vertica Systems",
      "Stonebridge Media",  "Harborview Capital", "BlueRiver Software",
      "Northgate Pharma",   "Summit Logistics",   "Ironwood Energy",
      "Clearpath Networks", "Silverline Studios", "Redwood Robotics",
      "Atlas Semiconductor", "Crestview Insurance", "Beacon Biotech",
      "Quarry Data Systems", "Lakeshore Airlines", "Pinnacle Foods",
      "Granite Telecom",    "Seaboard Shipping",  "Copperfield Bank",
      "Meridian Health",    "Falcon Aerospace",   "Willow Creek Farms",
      "Starlight Pictures", "Hudson Publishing",  "Everest Outfitters",
      "Cobalt Motors",      "Amber Materials",    "Lighthouse Security",
  };
  return kCompanies;
}

const std::vector<std::string>& Cities() {
  static const std::vector<std::string> kCities = {
      "New York", "Los Angeles", "Chicago",  "Houston",   "Phoenix",
      "Boston",   "Seattle",     "Denver",   "Atlanta",   "Miami",
      "Dallas",   "Portland",    "Detroit",  "Baltimore", "Cleveland",
      "Austin",   "Nashville",   "Memphis",  "Oakland",   "Pittsburgh",
      "Cambridge", "Berkeley",   "San Jose", "Tucson",    "Omaha",
  };
  return kCities;
}

const std::vector<std::string>& OrgEntities() {
  static const std::vector<std::string> kOrgs = {
      "City Council",        "Board of Trade",     "Chamber of Commerce",
      "Planning Commission", "Transit Authority",  "School Board",
      "Port Authority",      "Housing Department", "Election Commission",
      "Parks Department",    "Budget Office",      "Water District",
      "Arts Council",        "Labor Union Local",  "Merchants Association",
      "Zoning Board",        "Finance Committee",  "Ethics Panel",
      "Tourism Bureau",      "Safety Commission",
  };
  return kOrgs;
}

const std::vector<std::string>& GeoEntities() {
  static const std::vector<std::string> kGeo = {
      "Hudson River",     "Lake Michigan",   "Rocky Mountains",
      "Mississippi River", "Gulf Coast",     "Pacific Northwest",
      "Great Plains",     "Appalachian Trail", "Death Valley",
      "Chesapeake Bay",   "Mojave Desert",   "Cascade Range",
      "Everglades",       "Grand Canyon",    "Puget Sound",
      "Long Island",      "Cape Cod",        "Sierra Nevada",
  };
  return kGeo;
}

const std::vector<std::string>& IndustryTerms() {
  static const std::vector<std::string> kTerms = {
      "cloud computing",  "data integration", "supply chain",
      "renewable energy", "mobile payments",  "social media",
      "machine learning", "digital advertising", "e-commerce",
      "cybersecurity",    "big data",         "crowdsourcing",
      "venture capital",  "quantitative easing", "box office",
      "streaming video",  "ticket sales",     "subscription model",
  };
  return kTerms;
}

const std::vector<std::string>& Positions() {
  static const std::vector<std::string> kPositions = {
      "chief executive",  "managing director", "lead producer",
      "stage manager",    "artistic director", "chief analyst",
      "press secretary",  "head of research",  "casting director",
      "general manager",  "music director",    "choreographer",
      "senior engineer",  "marketing director", "box office manager",
  };
  return kPositions;
}

const std::vector<std::string>& Products() {
  static const std::vector<std::string> kProducts = {
      "TicketFinder",   "ShowPass",     "StageLight Pro",
      "CurtainCall App", "SceneBuilder", "EncorePlayer",
      "BroadwayGuide",  "SeatMapper",   "PlaybillReader",
      "AudioCue",       "LightBoard X", "PropTracker",
      "CastBook",       "RehearsalHub", "MatineePlanner",
  };
  return kProducts;
}

const std::vector<std::string>& Organizations() {
  static const std::vector<std::string> kOrgs = {
      "Actors Equity",          "Dramatists Guild",
      "Stage Directors Society", "Broadway League",
      "Theater Wing",           "Drama Critics Circle",
      "Musicians Federation",   "Scenic Artists Guild",
      "Press Agents Association", "Ushers Benevolent Society",
      "Playwrights Collective", "Producers Alliance",
  };
  return kOrgs;
}

const std::vector<std::string>& Facilities() {
  static const std::vector<std::string> kFacilities = {
      "Lincoln Center",     "Carnegie Hall",     "Radio City",
      "Madison Square Garden", "Kennedy Center", "City Opera House",
      "Grand Ballroom",     "Civic Auditorium",  "Riverside Arena",
      "Harborside Pavilion", "Memorial Stadium", "Convention Center",
  };
  return kFacilities;
}

const std::vector<std::string>& MedicalConditions() {
  static const std::vector<std::string> kConditions = {
      "influenza",     "diabetes",     "hypertension", "asthma",
      "migraine",      "pneumonia",    "arthritis",    "insomnia",
      "laryngitis",    "tendonitis",
  };
  return kConditions;
}

const std::vector<std::string>& Technologies() {
  static const std::vector<std::string> kTech = {
      "LED lighting",     "projection mapping", "wireless microphones",
      "motion capture",   "3D printing",        "facial recognition",
      "noise cancellation", "holographic display", "haptic feedback",
      "speech synthesis",
  };
  return kTech;
}

const std::vector<std::string>& ProvincesOrStates() {
  static const std::vector<std::string> kStates = {
      "California", "Texas",    "Florida",      "Illinois", "Pennsylvania",
      "Ohio",       "Georgia",  "Michigan",     "Ontario",  "Quebec",
      "Washington", "Colorado", "Massachusetts", "Arizona", "Oregon",
  };
  return kStates;
}

const std::vector<std::string>& UrlPool() {
  static const std::vector<std::string> kUrls = {
      "http://broadwayworld.example.com/reviews",
      "http://playbill.example.com/news",
      "http://nytheater.example.org/listings",
      "http://telecharge.example.com/tickets",
      "http://ticketmaster.example.com/broadway",
      "http://theatermania.example.com/discounts",
      "www.stagegrade.example.com",
      "www.didhelikeit.example.com",
      "http://variety.example.com/legit",
      "http://deadline.example.com/broadway",
  };
  return kUrls;
}

const std::vector<std::string>& NewsTemplates() {
  static const std::vector<std::string> kTemplates = {
      "{title} which began previews on Tuesday, grossed {gross}, or {pct} "
      "percent of the maximum at the {theater}.",
      "And {title} an award-winning import from London, grossed {gross}, or "
      "{pct} percent of the maximum.",
      "{person}, {position} at {company}, said {title} could extend its run "
      "in {city}.",
      "The {org} announced that {title} will open at the {theater} this "
      "spring.",
      "{company} shares rose after its {industry} unit signed a deal with "
      "the {facility}.",
      "{person} was named {position} of {company}, the {city} firm behind "
      "{product}.",
      "Box office tracking by {company} shows {title} leading {industry} "
      "revenue this week.",
      "{title} producers credited {tech} for the show's effects, per "
      "{url}.",
      "Officials in {state} said the {org} will review {industry} rules "
      "near the {geo}.",
      "After weeks of previews in {city}, {title} officially opened at the "
      "{theater} with {person} attending.",
  };
  return kTemplates;
}

const std::vector<std::string>& BlogTemplates() {
  static const std::vector<std::string> kTemplates = {
      "Saw {title} at the {theater} last night and {person} was brilliant "
      "as ever.",
      "My review of {title} is up at {url} - tldr it deserves every award.",
      "Is {title} worth full price? Grabbed seats via {product} and have "
      "no regrets.",
      "Rumor: {company} is backing a {city} transfer of {title} next "
      "season.",
      "{person} talked about battling {condition} during the {title} run. "
      "Respect.",
      "The {tech} used in {title} is unreal - best stagecraft since "
      "{city}.",
      "Comparing {title} to the {facility} staging: the {theater} version "
      "wins.",
      "{position} {person} of the {org} called {title} the season's "
      "high point.",
  };
  return kTemplates;
}

const std::vector<std::string>& TweetTemplates() {
  static const std::vector<std::string> kTemplates = {
      "{title} tonight!!! {url}",
      "just met {person} outside the {theater} after {title} omg",
      "{title} grossed {gross} this week?? huge",
      "rush tickets for {title} via {product} worked, see you in {city}",
      "{company} needs to bring {title} to {city} already",
      "{person} leaving {company} to be {position}?? wild",
      "the {geo} views from the {facility} before {title} - perfect "
      "night",
      "{title} + {tech} = the future of theater, fight me",
  };
  return kTemplates;
}

const std::vector<std::string>& FeedNames() {
  static const std::vector<std::string> kFeeds = {"newsfeed", "blog",
                                                  "twitter"};
  return kFeeds;
}

}  // namespace dt::datagen
