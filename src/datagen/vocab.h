/// \file vocab.h
/// \brief Curated vocabulary backing the synthetic data generators.
///
/// The WEBINSTANCE substitute needs entity names of every Table III
/// type plus sentence templates in news/blog/tweet registers. The
/// lists are fixed (not random strings) so the corpus reads like the
/// web text the paper ingests and the gazetteer-based parser has a
/// realistic dictionary. The movie/show list embeds the paper's
/// Table IV titles with their popularity ranks so the top-k query
/// reproduces the published list.

#pragma once

#include <string>
#include <vector>

#include "textparse/entity_types.h"

namespace dt::datagen {

/// Names of the ten titles in Table IV, most discussed first.
const std::vector<std::string>& PaperTop10Titles();

/// Additional movie/Broadway titles beyond the paper's ten.
const std::vector<std::string>& ExtraTitles();

/// Broadway theaters with street addresses ("Shubert|225 W. 44th St
/// between 7th and 8th" — pipe-separated name|address).
const std::vector<std::string>& TheaterEntries();

const std::vector<std::string>& FirstNames();
const std::vector<std::string>& LastNames();
const std::vector<std::string>& Companies();
const std::vector<std::string>& Cities();
const std::vector<std::string>& OrgEntities();
const std::vector<std::string>& GeoEntities();
const std::vector<std::string>& IndustryTerms();
const std::vector<std::string>& Positions();
const std::vector<std::string>& Products();
const std::vector<std::string>& Organizations();
const std::vector<std::string>& Facilities();
const std::vector<std::string>& MedicalConditions();
const std::vector<std::string>& Technologies();
const std::vector<std::string>& ProvincesOrStates();
const std::vector<std::string>& UrlPool();

/// Sentence templates per feed register. Placeholders:
///   {title} {person} {company} {city} {theater} {gross} {pct} {url}
///   {industry} {position} {product} {org} {facility} {condition}
///   {tech} {geo} {state}
const std::vector<std::string>& NewsTemplates();
const std::vector<std::string>& BlogTemplates();
const std::vector<std::string>& TweetTemplates();

/// Feed names ("newsfeed", "blog", "twitter").
const std::vector<std::string>& FeedNames();

}  // namespace dt::datagen
