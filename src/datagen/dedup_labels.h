/// \file dedup_labels.h
/// \brief Labeled duplicate-pair generator for the §IV classifier
/// experiment ("89/90% precision/recall by 10-fold crossvalidation on
/// several different types of entities").
///
/// Positives pair an entity name with a dirty variant of itself (typos,
/// dropped tokens, abbreviations, decorations — the corruption modes of
/// real web text); negatives pair distinct entities of the same type,
/// biased toward *hard* negatives sharing a token so the classifier
/// cannot win on trivial signals.

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "dedup/record.h"
#include "textparse/entity_types.h"

namespace dt::datagen {

/// \brief One labeled record pair.
struct LabeledPair {
  dedup::DedupRecord a;
  dedup::DedupRecord b;
  int label = 0;  ///< 1 = same real-world entity
};

/// Generator knobs.
struct DedupLabelOptions {
  int64_t num_pairs = 4000;
  uint64_t seed = 42;
  /// Fraction of positive (duplicate) pairs.
  double positive_rate = 0.5;
  /// Fraction of negatives forced to share a name token (hard cases).
  double hard_negative_rate = 0.5;
  /// Typos applied per positive variant (1..n).
  int max_corruptions = 2;
};

/// \brief Applies one random corruption (typo, case damage, token drop,
/// decoration, abbreviation) to a name. Exposed for the robustness
/// tests of the pair-feature module.
std::string CorruptName(const std::string& name, Rng* rng);

/// \brief Generates labeled pairs for the given entity type drawing
/// names from the generator vocabulary for that type.
std::vector<LabeledPair> GenerateLabeledPairs(textparse::EntityType type,
                                              const DedupLabelOptions& opts);

}  // namespace dt::datagen
