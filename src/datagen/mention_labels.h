/// \file mention_labels.h
/// \brief Labeled mention generator for the data-cleaning classifier.
///
/// Positives are real entity mentions (drawn from the generator
/// vocabulary) embedded in realistic sentence contexts. Negatives are
/// the false positives a capitalized-run heuristic actually produces:
/// sentence-initial word pairs ("Breaking News"), headline fragments,
/// boilerplate phrases, day/month pairs — each embedded in contexts
/// where they occur.

#pragma once

#include <cstdint>
#include <vector>

#include "clean/mention_cleaner.h"

namespace dt::datagen {

/// Generator knobs.
struct MentionLabelOptions {
  int64_t num_mentions = 4000;
  uint64_t seed = 42;
  double positive_rate = 0.5;
};

/// Generates labeled (surface, context, label) triples.
std::vector<clean::LabeledMention> GenerateMentionLabels(
    const MentionLabelOptions& opts);

}  // namespace dt::datagen
