#include "datagen/webtext_gen.h"

#include <algorithm>

#include "common/strutil.h"
#include "datagen/vocab.h"

namespace dt::datagen {

using textparse::EntityType;

WebTextGenerator::WebTextGenerator(WebTextGenOptions opts)
    : opts_(opts),
      title_zipf_(PaperTop10Titles().size() + ExtraTitles().size(),
                  opts.zipf_theta) {
  titles_ = PaperTop10Titles();
  for (const auto& t : ExtraTitles()) titles_.push_back(t);
  // A deterministic pool of person names (first x last, strided to mix).
  const auto& fn = FirstNames();
  const auto& ln = LastNames();
  for (size_t i = 0; i < 300; ++i) {
    persons_.push_back(fn[i % fn.size()] + " " +
                       ln[(i * 7 + i / fn.size()) % ln.size()]);
  }
  for (const auto& entry : TheaterEntries()) {
    theater_names_.push_back(Split(entry, '|')[0]);
  }
  double total = 0;
  for (int t = 0; t < textparse::kNumEntityTypes; ++t) {
    total += static_cast<double>(
        textparse::PaperEntityTypeCount(static_cast<EntityType>(t)));
  }
  for (int t = 0; t < textparse::kNumEntityTypes; ++t) {
    target_share_[t] =
        static_cast<double>(
            textparse::PaperEntityTypeCount(static_cast<EntityType>(t))) /
        total;
    planted_[t] = 0;
  }
}

bool WebTextGenerator::IsAwardWinning(const std::string& title) const {
  const auto& top = PaperTop10Titles();
  return std::find(top.begin(), top.end(), title) != top.end();
}

textparse::Gazetteer WebTextGenerator::BuildGazetteer() const {
  textparse::Gazetteer g;
  for (const auto& t : titles_) {
    textparse::GazetteerEntry e;
    e.phrase = t;
    e.type = EntityType::kMovie;
    if (IsAwardWinning(t)) e.attrs = {{"award_winning", "true"}};
    g.Add(std::move(e));
  }
  for (const auto& p : persons_) g.Add(p, EntityType::kPerson);
  for (const auto& t : theater_names_) g.Add(t, EntityType::kFacility);
  for (const auto& c : Companies()) g.Add(c, EntityType::kCompany);
  for (const auto& c : Cities()) g.Add(c, EntityType::kCity);
  for (const auto& o : OrgEntities()) g.Add(o, EntityType::kOrgEntity);
  for (const auto& x : GeoEntities()) g.Add(x, EntityType::kGeoEntity);
  for (const auto& x : IndustryTerms()) g.Add(x, EntityType::kIndustryTerm);
  for (const auto& x : Positions()) g.Add(x, EntityType::kPosition);
  for (const auto& x : Products()) g.Add(x, EntityType::kProduct);
  for (const auto& x : Organizations()) g.Add(x, EntityType::kOrganization);
  for (const auto& x : Facilities()) g.Add(x, EntityType::kFacility);
  for (const auto& x : MedicalConditions()) {
    g.Add(x, EntityType::kMedicalCondition);
  }
  for (const auto& x : Technologies()) g.Add(x, EntityType::kTechnology);
  for (const auto& x : ProvincesOrStates()) {
    g.Add(x, EntityType::kProvinceOrState);
  }
  return g;
}

std::string WebTextGenerator::PickTitle(Rng* rng) {
  return titles_[title_zipf_.Sample(rng)];
}

namespace {
std::string RandomGross(Rng* rng) {
  // 6-7 digit gross with thousands separators, newspaper style.
  int64_t v = rng->UniformInt(150000, 1900000);
  return WithThousandsSep(v);
}
}  // namespace

std::string WebTextGenerator::FillTemplate(const std::string& tmpl, Rng* rng,
                                           GeneratedFragment* frag) {
  std::string out;
  out.reserve(tmpl.size() + 32);
  size_t i = 0;
  auto plant = [&](EntityType type, const std::string& name) {
    frag->truth_mentions.emplace_back(type, name);
    ++planted_[static_cast<int>(type)];
    ++total_planted_;
    out += name;
  };
  while (i < tmpl.size()) {
    if (tmpl[i] != '{') {
      out.push_back(tmpl[i++]);
      continue;
    }
    size_t close = tmpl.find('}', i);
    if (close == std::string::npos) {
      out.push_back(tmpl[i++]);
      continue;
    }
    std::string key = tmpl.substr(i + 1, close - i - 1);
    i = close + 1;
    if (key == "title") {
      plant(EntityType::kMovie, PickTitle(rng));
    } else if (key == "person") {
      plant(EntityType::kPerson, rng->Pick(persons_));
    } else if (key == "company") {
      plant(EntityType::kCompany, rng->Pick(Companies()));
    } else if (key == "city") {
      plant(EntityType::kCity, rng->Pick(Cities()));
    } else if (key == "theater") {
      plant(EntityType::kFacility, rng->Pick(theater_names_));
    } else if (key == "facility") {
      plant(EntityType::kFacility, rng->Pick(Facilities()));
    } else if (key == "url") {
      plant(EntityType::kUrl, rng->Pick(UrlPool()));
    } else if (key == "industry") {
      plant(EntityType::kIndustryTerm, rng->Pick(IndustryTerms()));
    } else if (key == "position") {
      plant(EntityType::kPosition, rng->Pick(Positions()));
    } else if (key == "product") {
      plant(EntityType::kProduct, rng->Pick(Products()));
    } else if (key == "org") {
      plant(EntityType::kOrganization, rng->Pick(Organizations()));
    } else if (key == "organization") {
      plant(EntityType::kOrganization, rng->Pick(Organizations()));
    } else if (key == "orgentity") {
      plant(EntityType::kOrgEntity, rng->Pick(OrgEntities()));
    } else if (key == "condition") {
      plant(EntityType::kMedicalCondition, rng->Pick(MedicalConditions()));
    } else if (key == "tech") {
      plant(EntityType::kTechnology, rng->Pick(Technologies()));
    } else if (key == "geo") {
      plant(EntityType::kGeoEntity, rng->Pick(GeoEntities()));
    } else if (key == "state") {
      plant(EntityType::kProvinceOrState, rng->Pick(ProvincesOrStates()));
    } else if (key == "gross") {
      out += RandomGross(rng);
    } else if (key == "pct") {
      out += std::to_string(rng->UniformInt(45, 99));
    } else {
      out += key;  // unknown placeholder passes through literally
    }
  }
  return out;
}

std::string WebTextGenerator::MicroSentence(EntityType type, Rng* rng,
                                            GeneratedFragment* frag) {
  switch (type) {
    case EntityType::kPerson:
      return FillTemplate(rng->Bernoulli(0.5)
                              ? "{person} declined to comment."
                              : "{person} drew applause at the curtain.",
                          rng, frag);
    case EntityType::kOrgEntity:
      return FillTemplate("The {orgentity} met again on Monday.", rng, frag);
    case EntityType::kGeoEntity:
      return FillTemplate("Crowds gathered along the {geo}.", rng, frag);
    case EntityType::kUrl:
      return FillTemplate("Full details at {url}.", rng, frag);
    case EntityType::kIndustryTerm:
      return FillTemplate("Analysts cited {industry} growth again.", rng,
                          frag);
    case EntityType::kPosition:
      return FillTemplate("The {position} resigned abruptly.", rng, frag);
    case EntityType::kCompany:
      return FillTemplate("{company} posted strong quarterly results.", rng,
                          frag);
    case EntityType::kProduct:
      return FillTemplate("{product} shipped a major update.", rng, frag);
    case EntityType::kOrganization:
      return FillTemplate("The {organization} endorsed the plan.", rng, frag);
    case EntityType::kFacility:
      return FillTemplate("The gala was held at {facility}.", rng, frag);
    case EntityType::kCity:
      return FillTemplate("The tour stops next in {city}.", rng, frag);
    case EntityType::kMedicalCondition:
      return FillTemplate("Doctors warned about {condition} this season.",
                          rng, frag);
    case EntityType::kTechnology:
      return FillTemplate("Engineers praised the {tech} rig.", rng, frag);
    case EntityType::kMovie:
      return FillTemplate("{title} drew another full house.", rng, frag);
    case EntityType::kProvinceOrState:
      return FillTemplate("Lawmakers in {state} debated the measure.", rng,
                          frag);
    default:
      return "";
  }
}

GeneratedFragment WebTextGenerator::MakeDuplicate(
    const GeneratedFragment& original, Rng* rng) {
  GeneratedFragment dup = original;
  // Near-duplicate perturbations that leave entity surfaces intact:
  // prepend a retweet-ish marker, tweak numbers, or append a tail.
  switch (rng->Uniform(3)) {
    case 0:
      dup.text = "RT: " + dup.text;
      break;
    case 1: {
      // Change digits (different gross, same story).
      for (auto& c : dup.text) {
        if (c >= '1' && c <= '8' && rng->Bernoulli(0.5)) {
          c = static_cast<char>(c + 1);
        }
      }
      break;
    }
    default:
      dup.text += " (via syndication)";
      break;
  }
  dup.feed = rng->Pick(FeedNames());
  return dup;
}

std::vector<GeneratedFragment> WebTextGenerator::Generate() {
  Rng rng(opts_.seed);
  for (int t = 0; t < textparse::kNumEntityTypes; ++t) planted_[t] = 0;
  total_planted_ = 0;

  std::vector<GeneratedFragment> out;
  out.reserve(static_cast<size_t>(opts_.num_fragments));
  int64_t base_ts = 1362000000;  // around March 2013, the demo's era

  // Fragment 0 is the guaranteed Matilda grosses story of Tables V/VI.
  {
    GeneratedFragment frag;
    frag.feed = "newsfeed";
    frag.timestamp = base_ts;
    frag.text =
        "..which began previews on Tuesday, grossed 659,391, or...And "
        "Matilda an award-winning import from London, grossed 960,998, or "
        "93 percent of the maximum.";
    frag.truth_mentions.emplace_back(EntityType::kMovie, "Matilda");
    ++planted_[static_cast<int>(EntityType::kMovie)];
    ++total_planted_;
    out.push_back(std::move(frag));
  }

  auto most_lagging_type = [&]() -> EntityType {
    int best = 0;
    double best_deficit = -1e18;
    for (int t = 0; t < textparse::kNumEntityTypes; ++t) {
      double expected = target_share_[t] * (total_planted_ + 1);
      double deficit = expected - static_cast<double>(planted_[t]);
      if (deficit > best_deficit) {
        best_deficit = deficit;
        best = t;
      }
    }
    return static_cast<EntityType>(best);
  };

  while (static_cast<int64_t>(out.size()) < opts_.num_fragments) {
    // Near-duplicate of an earlier fragment?
    if (out.size() > 4 && rng.Bernoulli(opts_.duplicate_rate)) {
      size_t src = rng.Uniform(out.size());
      GeneratedFragment dup = MakeDuplicate(out[src], &rng);
      dup.duplicate_of = out[src].duplicate_of >= 0
                             ? out[src].duplicate_of
                             : static_cast<int64_t>(src);
      dup.timestamp = base_ts + static_cast<int64_t>(out.size()) * 37;
      // Count the duplicate's mentions toward the plant totals (the
      // parser will extract them again).
      for (const auto& [type, _] : dup.truth_mentions) {
        ++planted_[static_cast<int>(type)];
        ++total_planted_;
      }
      out.push_back(std::move(dup));
      continue;
    }
    GeneratedFragment frag;
    frag.feed = rng.Pick(FeedNames());
    frag.timestamp = base_ts + static_cast<int64_t>(out.size()) * 37;
    int sentences = 1 + static_cast<int>(rng.Uniform(
                            static_cast<uint64_t>(opts_.max_extra_sentences + 1)));
    std::string text;
    for (int s = 0; s < sentences; ++s) {
      std::string sentence;
      if (rng.Bernoulli(opts_.rich_template_rate)) {
        const std::vector<std::string>* pool = &NewsTemplates();
        if (frag.feed == "blog") pool = &BlogTemplates();
        if (frag.feed == "twitter") pool = &TweetTemplates();
        sentence = FillTemplate(rng.Pick(*pool), &rng, &frag);
      } else {
        sentence = MicroSentence(most_lagging_type(), &rng, &frag);
      }
      if (!text.empty()) text += " ";
      text += sentence;
    }
    frag.text = std::move(text);
    out.push_back(std::move(frag));
  }
  return out;
}

}  // namespace dt::datagen
