#include "datagen/dedup_labels.h"

#include <algorithm>

#include "common/strutil.h"
#include "datagen/vocab.h"

namespace dt::datagen {

using dedup::DedupRecord;
using textparse::EntityType;

namespace {

std::vector<std::string> NamePoolFor(EntityType type) {
  switch (type) {
    case EntityType::kPerson: {
      std::vector<std::string> out;
      const auto& fn = FirstNames();
      const auto& ln = LastNames();
      for (size_t i = 0; i < 400; ++i) {
        out.push_back(fn[i % fn.size()] + " " +
                      ln[(i * 11 + i / fn.size()) % ln.size()]);
      }
      return out;
    }
    case EntityType::kCompany:
      return Companies();
    case EntityType::kMovie: {
      std::vector<std::string> out = PaperTop10Titles();
      for (const auto& t : ExtraTitles()) out.push_back(t);
      return out;
    }
    case EntityType::kCity:
      return Cities();
    case EntityType::kFacility:
      return Facilities();
    case EntityType::kOrganization:
      return Organizations();
    case EntityType::kProduct:
      return Products();
    default: {
      // Fall back to a mixed pool for types without a large vocabulary.
      std::vector<std::string> out = Companies();
      for (const auto& x : Organizations()) out.push_back(x);
      for (const auto& x : Facilities()) out.push_back(x);
      return out;
    }
  }
}

}  // namespace

std::string CorruptName(const std::string& name, Rng* rng) {
  std::string s = name;
  if (s.empty()) return s;
  switch (rng->Uniform(6)) {
    case 0: {  // swap two adjacent characters
      if (s.size() >= 2) {
        size_t i = rng->Uniform(s.size() - 1);
        std::swap(s[i], s[i + 1]);
      }
      break;
    }
    case 1: {  // drop a character
      size_t i = rng->Uniform(s.size());
      s.erase(i, 1);
      break;
    }
    case 2: {  // duplicate a character
      size_t i = rng->Uniform(s.size());
      s.insert(i, 1, s[i]);
      break;
    }
    case 3: {  // case damage
      s = rng->Bernoulli(0.5) ? ToLower(s) : ToUpper(s);
      break;
    }
    case 4: {  // decoration
      static const char* kDecor[] = {"The ", " Inc", " LLC", " (NY)", " Co"};
      const char* d = kDecor[rng->Uniform(5)];
      if (d[0] == ' ') {
        s += d;
      } else {
        s = std::string(d) + s;
      }
      break;
    }
    default: {  // token drop or initialization
      auto tokens = SplitWhitespace(s);
      if (tokens.size() >= 2) {
        if (rng->Bernoulli(0.5)) {
          // Abbreviate the first token ("Michael Smith" -> "M. Smith").
          tokens[0] = tokens[0].substr(0, 1) + ".";
        } else {
          tokens.erase(tokens.begin() +
                       static_cast<long>(rng->Uniform(tokens.size())));
        }
        s = Join(tokens, " ");
      } else {
        size_t i = rng->Uniform(s.size());
        s.erase(i, 1);
      }
      break;
    }
  }
  return s.empty() ? name : s;
}

std::vector<LabeledPair> GenerateLabeledPairs(EntityType type,
                                              const DedupLabelOptions& opts) {
  Rng rng(opts.seed ^ (static_cast<uint64_t>(type) * 0x9e3779b9ULL));
  std::vector<std::string> pool = NamePoolFor(type);
  const char* type_name = textparse::EntityTypeName(type);

  // Token index for hard negatives.
  std::unordered_map<std::string, std::vector<size_t>> by_token;
  for (size_t i = 0; i < pool.size(); ++i) {
    for (const auto& tok : WordTokens(pool[i])) {
      by_token[tok].push_back(i);
    }
  }

  auto make_record = [&](int64_t id, const std::string& name) {
    DedupRecord r;
    r.id = id;
    r.entity_type = type_name;
    r.fields["name"] = name;
    r.source_id = "webtext";
    return r;
  };

  std::vector<LabeledPair> out;
  out.reserve(static_cast<size_t>(opts.num_pairs));
  int64_t next_id = 1;
  while (static_cast<int64_t>(out.size()) < opts.num_pairs) {
    LabeledPair pair;
    if (rng.Bernoulli(opts.positive_rate)) {
      // Positive: name vs corrupted variant.
      const std::string& name = rng.Pick(pool);
      std::string variant = name;
      int n = 1 + static_cast<int>(rng.Uniform(
                      static_cast<uint64_t>(opts.max_corruptions)));
      for (int c = 0; c < n; ++c) variant = CorruptName(variant, &rng);
      pair.a = make_record(next_id++, name);
      pair.b = make_record(next_id++, variant);
      pair.label = 1;
    } else {
      // Negative: two distinct entities, often sharing a token.
      size_t i = rng.Uniform(pool.size());
      size_t j = i;
      if (rng.Bernoulli(opts.hard_negative_rate)) {
        // Try to find a distinct entity sharing a token with pool[i].
        auto tokens = WordTokens(pool[i]);
        for (int attempt = 0; attempt < 8 && j == i; ++attempt) {
          const auto& candidates = by_token[rng.Pick(tokens)];
          size_t cand = candidates[rng.Uniform(candidates.size())];
          if (cand != i) j = cand;
        }
      }
      while (j == i) j = rng.Uniform(pool.size());
      pair.a = make_record(next_id++, pool[i]);
      pair.b = make_record(next_id++, pool[j]);
      pair.label = 0;
    }
    out.push_back(std::move(pair));
  }
  return out;
}

}  // namespace dt::datagen
