/// \file expert.h
/// \brief Expert sourcing — Data Tamer's "unique expert-sourcing
/// mechanism for obtaining human guidance".
///
/// Low-confidence decisions (schema matches in the review band, dedup
/// pairs near the threshold) become review tasks. A pool of simulated
/// domain experts — oracles with configurable accuracy and cost,
/// standing in for the humans of the production deployment — votes on
/// tasks; answers aggregate by accuracy-weighted majority. The Fig. 2
/// bench uses this loop to measure human effort as the global schema
/// saturates.

#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"

namespace dt::expert {

/// \brief One unit of work for a human reviewer.
struct ReviewTask {
  int64_t id = 0;
  /// Task family: "schema-match", "dedup-pair", "cleaning".
  std::string kind;
  /// What is being reviewed (attribute name, record pair, ...).
  std::string subject;
  /// Candidate answers the reviewer chooses among. By convention the
  /// last option is the rejection ("none of the above" / "new
  /// attribute" / "not a duplicate").
  std::vector<std::string> options;
  /// The machine's confidence in its top suggestion; the queue serves
  /// least-confident first (they benefit most from a human).
  double machine_confidence = 0;
};

/// \brief Priority queue of pending review tasks.
class TaskQueue {
 public:
  /// Enqueues a task, assigning and returning its id.
  int64_t Enqueue(ReviewTask task);

  /// Pops the least-confident pending task; nullopt when empty.
  std::optional<ReviewTask> Dequeue();

  size_t pending() const { return tasks_.size(); }
  int64_t total_enqueued() const { return next_id_ - 1; }

 private:
  std::vector<ReviewTask> tasks_;  // heap by -machine_confidence
  int64_t next_id_ = 1;
};

/// \brief A simulated domain expert.
struct ExpertProfile {
  std::string name;
  /// Probability of choosing the true option.
  double accuracy = 0.9;
  /// Cost charged per answered task (abstract units).
  double cost_per_task = 1.0;
};

/// \brief Oracle expert: answers correctly with probability `accuracy`,
/// otherwise uniformly picks a wrong option.
class SimulatedExpert {
 public:
  explicit SimulatedExpert(ExpertProfile profile)
      : profile_(std::move(profile)) {}

  const ExpertProfile& profile() const { return profile_; }

  /// Chooses an option index for `task` given the hidden ground truth.
  /// `truth_option` must index into task.options.
  int Answer(const ReviewTask& task, int truth_option, Rng* rng) const;

 private:
  ExpertProfile profile_;
};

/// \brief Outcome of aggregating expert votes on one task.
struct AggregatedAnswer {
  int option = -1;       ///< winning option index
  double confidence = 0; ///< winning accuracy-weighted vote share
  int votes = 0;         ///< number of experts consulted
  double cost = 0;       ///< total cost charged
};

/// \brief A pool of experts with vote aggregation.
class ExpertPool {
 public:
  void AddExpert(ExpertProfile profile);

  int num_experts() const { return static_cast<int>(experts_.size()); }

  /// \brief Asks `num_voters` experts (round-robin over the pool) to
  /// answer, aggregating by accuracy-weighted majority.
  ///
  /// Fails when the pool is empty, the task has no options, or
  /// `truth_option` is out of range.
  Result<AggregatedAnswer> Resolve(const ReviewTask& task, int truth_option,
                                   int num_voters, Rng* rng);

  /// Running totals across all Resolve calls.
  double total_cost() const { return total_cost_; }
  int64_t tasks_resolved() const { return tasks_resolved_; }
  int64_t correct_resolutions() const { return correct_; }

 private:
  std::vector<SimulatedExpert> experts_;
  size_t next_expert_ = 0;
  double total_cost_ = 0;
  int64_t tasks_resolved_ = 0;
  int64_t correct_ = 0;
};

}  // namespace dt::expert
