#include "expert/expert.h"

#include <algorithm>

namespace dt::expert {

namespace {
// Min-heap on machine_confidence: least confident at the top.
bool HeapCmp(const ReviewTask& a, const ReviewTask& b) {
  if (a.machine_confidence != b.machine_confidence) {
    return a.machine_confidence > b.machine_confidence;
  }
  return a.id > b.id;  // FIFO within equal confidence
}
}  // namespace

int64_t TaskQueue::Enqueue(ReviewTask task) {
  task.id = next_id_++;
  tasks_.push_back(std::move(task));
  std::push_heap(tasks_.begin(), tasks_.end(), HeapCmp);
  return tasks_.back().id;
}

std::optional<ReviewTask> TaskQueue::Dequeue() {
  if (tasks_.empty()) return std::nullopt;
  std::pop_heap(tasks_.begin(), tasks_.end(), HeapCmp);
  ReviewTask task = std::move(tasks_.back());
  tasks_.pop_back();
  return task;
}

int SimulatedExpert::Answer(const ReviewTask& task, int truth_option,
                            Rng* rng) const {
  const int n = static_cast<int>(task.options.size());
  if (n <= 1) return 0;
  if (rng->Bernoulli(profile_.accuracy)) return truth_option;
  // Uniform over the wrong options.
  int wrong = static_cast<int>(rng->Uniform(static_cast<uint64_t>(n - 1)));
  return wrong >= truth_option ? wrong + 1 : wrong;
}

void ExpertPool::AddExpert(ExpertProfile profile) {
  experts_.emplace_back(std::move(profile));
}

Result<AggregatedAnswer> ExpertPool::Resolve(const ReviewTask& task,
                                             int truth_option, int num_voters,
                                             Rng* rng) {
  if (experts_.empty()) {
    return Status::InvalidArgument("expert pool is empty");
  }
  if (task.options.empty()) {
    return Status::InvalidArgument("task " + std::to_string(task.id) +
                                   " has no options");
  }
  if (truth_option < 0 ||
      truth_option >= static_cast<int>(task.options.size())) {
    return Status::OutOfRange("truth option out of range");
  }
  if (num_voters < 1) {
    return Status::InvalidArgument("num_voters must be >= 1");
  }

  std::vector<double> weight(task.options.size(), 0.0);
  double total_weight = 0;
  AggregatedAnswer agg;
  for (int v = 0; v < num_voters; ++v) {
    const SimulatedExpert& expert = experts_[next_expert_];
    next_expert_ = (next_expert_ + 1) % experts_.size();
    int choice = expert.Answer(task, truth_option, rng);
    weight[choice] += expert.profile().accuracy;
    total_weight += expert.profile().accuracy;
    agg.cost += expert.profile().cost_per_task;
    ++agg.votes;
  }
  int best = 0;
  for (size_t i = 1; i < weight.size(); ++i) {
    if (weight[i] > weight[best]) best = static_cast<int>(i);
  }
  agg.option = best;
  agg.confidence = total_weight > 0 ? weight[best] / total_weight : 0;
  total_cost_ += agg.cost;
  ++tasks_resolved_;
  if (best == truth_option) ++correct_;
  return agg;
}

}  // namespace dt::expert
