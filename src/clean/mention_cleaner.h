/// \file mention_cleaner.h
/// \brief ML-based cleaning of extracted entity mentions — the second
/// half of the paper's §IV claim: the web-text classifier is "used …
/// for deduplication and *data cleaning*".
///
/// The domain parser's heuristics (capitalized runs, quoted titles)
/// extract junk alongside real entities: sentence-initial word pairs,
/// headline fragments, boilerplate. The cleaner classifies each
/// mention from its surface form and the text window around it and
/// drops the garbage before it pollutes WEBENTITIES.

#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "ml/classifier.h"
#include "ml/features.h"
#include "textparse/domain_parser.h"

namespace dt::clean {

/// \brief A labeled mention for training the cleaner.
struct LabeledMention {
  std::string surface;   ///< the mention text
  std::string context;   ///< surrounding fragment text
  int label = 0;         ///< 1 = real entity, 0 = garbage extraction
};

/// Cleaner configuration.
struct MentionCleanerOptions {
  /// Mentions scoring below this probability of being real are dropped.
  double keep_threshold = 0.5;
  /// Gazetteer-confirmed mentions (confidence >= this) bypass the
  /// classifier; the cleaner only judges heuristic extractions.
  double trusted_confidence = 0.99;
  /// Bytes of context taken on each side of the mention.
  int context_window = 48;
};

/// \brief Binary classifier over mention surface + context features.
class MentionCleaner {
 public:
  explicit MentionCleaner(MentionCleanerOptions opts = {});

  /// Trains on labeled mentions. Fails when a class is missing.
  Status Train(const std::vector<LabeledMention>& mentions);

  /// P(real entity) for one mention given its context.
  double ScoreMention(std::string_view surface,
                      std::string_view context) const;

  /// \brief Filters a parsed fragment in place: heuristic mentions
  /// scoring below the keep threshold are removed. Returns the number
  /// of mentions dropped. No-op (0) before Train.
  int FilterFragment(textparse::ParsedFragment* fragment) const;

  bool trained() const { return trained_; }
  const MentionCleanerOptions& options() const { return opts_; }

 private:
  ml::FeatureVector Featurize(std::string_view surface,
                              std::string_view context, bool add) const;

  MentionCleanerOptions opts_;
  mutable ml::FeatureDictionary dict_;
  ml::NaiveBayesClassifier model_;
  bool trained_ = false;
};

}  // namespace dt::clean
