#include "clean/mention_cleaner.h"

#include <algorithm>
#include <cctype>

#include "common/strutil.h"

namespace dt::clean {

MentionCleaner::MentionCleaner(MentionCleanerOptions opts) : opts_(opts) {}

ml::FeatureVector MentionCleaner::Featurize(std::string_view surface,
                                            std::string_view context,
                                            bool add) const {
  ml::FeatureVector out;
  auto bump = [&](const std::string& name, double v = 1.0) {
    int id = dict_.IdOf(name, add);
    if (id >= 0) out[id] += v;
  };
  // Surface shape features.
  auto tokens = WordTokens(surface);
  bump("s:ntok=" + std::to_string(std::min<size_t>(tokens.size(), 6)));
  int caps = 0, digits = 0;
  for (char c : surface) {
    if (std::isupper(static_cast<unsigned char>(c))) ++caps;
    if (std::isdigit(static_cast<unsigned char>(c))) ++digits;
  }
  bump("s:caps=" + std::to_string(std::min(caps, 8)));
  if (digits > 0) bump("s:has_digits");
  for (const auto& t : tokens) bump("st:" + t);
  // Character trigrams of the surface (suffix morphology: -ville,
  // -berg, Inc, common-word shapes).
  for (const auto& g : QGrams(surface, 3)) bump("sq:" + g, 0.5);
  // Context words (bag; the words around real entities differ from the
  // words around headline fragments).
  for (const auto& t : WordTokens(context)) bump("c:" + t, 0.5);
  return out;
}

Status MentionCleaner::Train(const std::vector<LabeledMention>& mentions) {
  std::vector<ml::Example> examples;
  examples.reserve(mentions.size());
  for (const auto& m : mentions) {
    ml::Example ex;
    ex.features = Featurize(m.surface, m.context, /*add=*/true);
    ex.label = m.label;
    examples.push_back(std::move(ex));
  }
  DT_RETURN_NOT_OK(model_.Train(examples));
  trained_ = true;
  return Status::OK();
}

double MentionCleaner::ScoreMention(std::string_view surface,
                                    std::string_view context) const {
  if (!trained_) return 1.0;  // keep everything before training
  return model_.PredictProb(Featurize(surface, context, /*add=*/false));
}

int MentionCleaner::FilterFragment(
    textparse::ParsedFragment* fragment) const {
  if (!trained_) return 0;
  const std::string& text = fragment->text;
  auto& mentions = fragment->mentions;
  int dropped = 0;
  auto keep = [&](const textparse::EntityMention& m) {
    if (m.confidence >= opts_.trusted_confidence) return true;
    size_t lo = m.offset > static_cast<size_t>(opts_.context_window)
                    ? m.offset - opts_.context_window
                    : 0;
    size_t hi = std::min(text.size(),
                         m.offset + m.surface.size() +
                             static_cast<size_t>(opts_.context_window));
    std::string_view context =
        std::string_view(text).substr(lo, hi - lo);
    return ScoreMention(m.surface, context) >= opts_.keep_threshold;
  };
  auto it = std::remove_if(
      mentions.begin(), mentions.end(),
      [&](const textparse::EntityMention& m) { return !keep(m); });
  dropped = static_cast<int>(mentions.end() - it);
  mentions.erase(it, mentions.end());
  return dropped;
}

}  // namespace dt::clean
