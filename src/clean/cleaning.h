/// \file cleaning.h
/// \brief Data-cleaning module (Fig. 1: "data cleaning (to correct
/// erroneous data)").
///
/// Cleans a table in three passes: (1) null canonicalization — the
/// dozen spellings of "unknown" become real nulls; (2) format repair —
/// whitespace/case normalization and re-typing of numeric strings
/// stranded in string columns; (3) outlier flagging on numeric columns
/// via robust z-scores (median/MAD), since text-derived data is far
/// dirtier than curated structured sources (§II).

#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"

namespace dt::clean {

/// Cleaning knobs.
struct CleaningOptions {
  /// Strings (case-insensitive, trimmed) treated as null markers.
  std::vector<std::string> null_markers = {"", "n/a", "na", "null", "none",
                                           "-", "--", "unknown", "?"};
  bool normalize_whitespace = true;
  /// Re-type numeric strings in string columns when the whole column
  /// (post-cleaning) is numeric.
  bool repair_numeric_strings = true;
  /// Robust z-score threshold for outlier flagging; <= 0 disables.
  double outlier_zscore = 4.0;
  /// When true outliers are nulled out; when false only counted.
  bool drop_outliers = false;
};

/// What the cleaner did (the audit trail a curator reviews).
struct CleaningReport {
  int64_t cells_examined = 0;
  int64_t nulls_canonicalized = 0;
  int64_t whitespace_fixed = 0;
  int64_t numeric_repaired = 0;
  int64_t outliers_flagged = 0;
  int64_t outliers_dropped = 0;

  std::string ToString() const;
};

/// \brief Cleans `table`, returning a new table (and the report via
/// `*report` when provided).
Result<relational::Table> CleanTable(const relational::Table& table,
                                     const CleaningOptions& opts = {},
                                     CleaningReport* report = nullptr);

/// \brief Robust z-scores of a numeric vector via median/MAD (values
/// aligned with input; nulls yield 0). Exposed for tests and the
/// outlier ablation.
std::vector<double> RobustZScores(const std::vector<double>& values);

}  // namespace dt::clean
