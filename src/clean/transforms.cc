#include "clean/transforms.h"

#include <cctype>
#include <cmath>

#include "common/strutil.h"

namespace dt::clean {

using relational::Value;

std::optional<Money> ParseMoney(std::string_view raw) {
  std::string s = Trim(raw);
  if (s.empty()) return std::nullopt;
  std::string currency;
  if (s[0] == '$') {
    currency = "USD";
    s = Trim(s.substr(1));
  } else if (StartsWith(s, "\xe2\x82\xac")) {  // €
    currency = "EUR";
    s = Trim(s.substr(3));
  } else if (StartsWith(s, "\xc2\xa3")) {  // £
    currency = "GBP";
    s = Trim(s.substr(2));
  } else {
    std::string lower = ToLower(s);
    auto strip_suffix = [&](std::string_view suf, const char* code) {
      if (EndsWith(lower, suf)) {
        currency = code;
        s = Trim(s.substr(0, s.size() - suf.size()));
        return true;
      }
      return false;
    };
    bool matched = strip_suffix("usd", "USD") || strip_suffix("eur", "EUR") ||
                   strip_suffix("gbp", "GBP") ||
                   strip_suffix("dollars", "USD") ||
                   strip_suffix("euros", "EUR") || strip_suffix("euro", "EUR");
    if (!matched) return std::nullopt;
  }
  // Strip thousands separators.
  std::string digits;
  for (char c : s) {
    if (c != ',') digits.push_back(c);
  }
  double amount;
  if (!ParseDouble(digits, &amount)) return std::nullopt;
  return Money{amount, currency};
}

std::string FormatUsd(double amount) {
  double rounded = std::round(amount * 100.0) / 100.0;
  if (rounded == std::floor(rounded)) {
    return "$" + std::to_string(static_cast<int64_t>(rounded));
  }
  return "$" + FormatDouble(rounded, 2);
}

namespace {
int MonthFromName(std::string_view name) {
  static const char* kMonths[] = {"jan", "feb", "mar", "apr", "may", "jun",
                                  "jul", "aug", "sep", "oct", "nov", "dec"};
  std::string lower = ToLower(name);
  for (int m = 0; m < 12; ++m) {
    if (StartsWith(lower, kMonths[m])) return m + 1;
  }
  return 0;
}

bool ValidDate(int y, int m, int d) {
  if (y < 1000 || y > 3000 || m < 1 || m > 12 || d < 1) return false;
  static const int kDays[] = {31, 29, 31, 30, 31, 30, 31, 31, 30, 31, 30, 31};
  return d <= kDays[m - 1];
}
}  // namespace

std::optional<CivilDate> ParseDate(std::string_view raw) {
  std::string s = Trim(raw);
  if (s.empty()) return std::nullopt;
  // yyyy-mm-dd
  {
    auto parts = Split(s, '-');
    if (parts.size() == 3 && parts[0].size() == 4) {
      int64_t y, m, d;
      if (ParseInt64(parts[0], &y) && ParseInt64(parts[1], &m) &&
          ParseInt64(parts[2], &d) && ValidDate(static_cast<int>(y),
                                                static_cast<int>(m),
                                                static_cast<int>(d))) {
        return CivilDate{static_cast<int>(y), static_cast<int>(m),
                         static_cast<int>(d)};
      }
    }
  }
  // m/d/yyyy
  {
    auto parts = Split(s, '/');
    if (parts.size() == 3) {
      int64_t m, d, y;
      if (ParseInt64(parts[0], &m) && ParseInt64(parts[1], &d) &&
          ParseInt64(parts[2], &y) && ValidDate(static_cast<int>(y),
                                                static_cast<int>(m),
                                                static_cast<int>(d))) {
        return CivilDate{static_cast<int>(y), static_cast<int>(m),
                         static_cast<int>(d)};
      }
    }
  }
  // "Mar 4, 2013" / "March 4 2013"
  {
    auto tokens = WordTokens(s);
    if (tokens.size() == 3) {
      int m = MonthFromName(tokens[0]);
      int64_t d, y;
      if (m > 0 && ParseInt64(tokens[1], &d) && ParseInt64(tokens[2], &y) &&
          ValidDate(static_cast<int>(y), m, static_cast<int>(d))) {
        return CivilDate{static_cast<int>(y), m, static_cast<int>(d)};
      }
    }
  }
  return std::nullopt;
}

std::string FormatIsoDate(const CivilDate& d) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "%04d-%02d-%02d", d.year, d.month, d.day);
  return buf;
}

Status TransformRegistry::Register(const std::string& name, TransformFn fn) {
  if (transforms_.count(name) > 0) {
    return Status::AlreadyExists("transform " + name + " already registered");
  }
  transforms_.emplace(name, std::move(fn));
  return Status::OK();
}

Result<TransformFn> TransformRegistry::Get(const std::string& name) const {
  auto it = transforms_.find(name);
  if (it == transforms_.end()) {
    return Status::NotFound("transform " + name + " not registered");
  }
  return it->second;
}

std::vector<std::string> TransformRegistry::Names() const {
  std::vector<std::string> out;
  out.reserve(transforms_.size());
  for (const auto& [name, _] : transforms_) out.push_back(name);
  return out;
}

TransformRegistry TransformRegistry::Builtins(double eur_usd_rate) {
  TransformRegistry reg;
  (void)reg.Register("eur_to_usd", [eur_usd_rate](const Value& v) -> Result<Value> {
    if (v.is_number()) {
      return Value::Str(FormatUsd(v.as_double() * eur_usd_rate));
    }
    if (v.is_string()) {
      auto money = ParseMoney(v.string_value());
      if (!money.has_value()) {
        return Status::InvalidArgument("not a monetary value: " +
                                       v.string_value());
      }
      double usd = money->currency == "EUR"
                       ? money->amount * eur_usd_rate
                       : money->amount;  // already USD (or treated as such)
      return Value::Str(FormatUsd(usd));
    }
    return Status::InvalidArgument("eur_to_usd expects number or string");
  });
  (void)reg.Register("normalize_date", [](const Value& v) -> Result<Value> {
    if (!v.is_string()) {
      return Status::InvalidArgument("normalize_date expects a string");
    }
    auto d = ParseDate(v.string_value());
    if (!d.has_value()) {
      return Status::InvalidArgument("unparseable date: " + v.string_value());
    }
    return Value::Str(FormatIsoDate(*d));
  });
  (void)reg.Register("us_date", [](const Value& v) -> Result<Value> {
    if (!v.is_string()) {
      return Status::InvalidArgument("us_date expects a string");
    }
    auto d = ParseDate(v.string_value());
    if (!d.has_value()) {
      return Status::InvalidArgument("unparseable date: " + v.string_value());
    }
    return Value::Str(std::to_string(d->month) + "/" + std::to_string(d->day) +
                      "/" + std::to_string(d->year));
  });
  (void)reg.Register("normalize_phone", [](const Value& v) -> Result<Value> {
    if (!v.is_string()) {
      return Status::InvalidArgument("normalize_phone expects a string");
    }
    std::string digits;
    for (char c : v.string_value()) {
      if (std::isdigit(static_cast<unsigned char>(c))) digits.push_back(c);
    }
    if (digits.size() == 11 && digits[0] == '1') digits = digits.substr(1);
    if (digits.size() != 10) {
      return Status::InvalidArgument("not a 10-digit phone: " +
                                     v.string_value());
    }
    return Value::Str("(" + digits.substr(0, 3) + ") " + digits.substr(3, 3) +
                      "-" + digits.substr(6));
  });
  (void)reg.Register("trim", [](const Value& v) -> Result<Value> {
    if (!v.is_string()) return v;
    return Value::Str(NormalizeWhitespace(v.string_value()));
  });
  (void)reg.Register("lower", [](const Value& v) -> Result<Value> {
    if (!v.is_string()) return v;
    return Value::Str(ToLower(v.string_value()));
  });
  (void)reg.Register("upper", [](const Value& v) -> Result<Value> {
    if (!v.is_string()) return v;
    return Value::Str(ToUpper(v.string_value()));
  });
  (void)reg.Register("parse_number", [](const Value& v) -> Result<Value> {
    if (v.is_number()) return v;
    if (v.is_string()) {
      double d;
      if (ParseDouble(v.string_value(), &d)) return Value::Double(d);
    }
    return Status::InvalidArgument("not numeric");
  });
  return reg;
}

Result<relational::Table> ApplyTransform(const relational::Table& table,
                                         const std::string& attr,
                                         const TransformFn& fn,
                                         int64_t* skipped) {
  auto idx = table.schema().IndexOf(attr);
  if (!idx.has_value()) {
    return Status::NotFound("attribute " + attr + " not in table " +
                            table.name());
  }
  // Transformed columns may change type; rebuild the schema attribute
  // as string when the original was not (string is the universal
  // carrier for normalized renderings).
  relational::Schema schema;
  for (const auto& a : table.schema().attributes()) {
    relational::Attribute na = a;
    if (a.name == attr) na.type = relational::ValueType::kString;
    DT_RETURN_NOT_OK(schema.AddAttribute(na));
  }
  relational::Table out(table.name(), schema);
  out.set_source_id(table.source_id());
  int64_t skip_count = 0;
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    relational::Row row = table.row(r);
    Value& cell = row[*idx];
    if (!cell.is_null()) {
      auto transformed = fn(cell);
      if (transformed.ok()) {
        cell = std::move(transformed).ValueOrDie();
      } else {
        ++skip_count;
      }
    }
    DT_RETURN_NOT_OK(out.Append(std::move(row)));
  }
  if (skipped != nullptr) *skipped = skip_count;
  return out;
}

}  // namespace dt::clean
