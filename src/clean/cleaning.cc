#include "clean/cleaning.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "common/strutil.h"

namespace dt::clean {

using relational::Row;
using relational::Value;
using relational::ValueType;

std::string CleaningReport::ToString() const {
  return "examined=" + std::to_string(cells_examined) +
         " nulls=" + std::to_string(nulls_canonicalized) +
         " ws_fixed=" + std::to_string(whitespace_fixed) +
         " retyped=" + std::to_string(numeric_repaired) +
         " outliers=" + std::to_string(outliers_flagged) +
         " dropped=" + std::to_string(outliers_dropped);
}

std::vector<double> RobustZScores(const std::vector<double>& values) {
  std::vector<double> out(values.size(), 0.0);
  if (values.empty()) return out;
  std::vector<double> sorted = values;
  std::sort(sorted.begin(), sorted.end());
  double median = sorted[sorted.size() / 2];
  std::vector<double> devs;
  devs.reserve(values.size());
  for (double v : values) devs.push_back(std::fabs(v - median));
  std::sort(devs.begin(), devs.end());
  double mad = devs[devs.size() / 2];
  // 1.4826 scales MAD to the stddev of a normal distribution.
  double scale = 1.4826 * mad;
  if (scale < 1e-12) {
    // Over half the values are identical; fall back to stddev.
    double sum = 0, sq = 0;
    for (double v : values) {
      sum += v;
      sq += v * v;
    }
    double mean = sum / values.size();
    double var = sq / values.size() - mean * mean;
    scale = var > 0 ? std::sqrt(var) : 0;
    if (scale < 1e-12) return out;  // constant column: no outliers
    for (size_t i = 0; i < values.size(); ++i) {
      out[i] = (values[i] - mean) / scale;
    }
    return out;
  }
  for (size_t i = 0; i < values.size(); ++i) {
    out[i] = (values[i] - median) / scale;
  }
  return out;
}

Result<relational::Table> CleanTable(const relational::Table& table,
                                     const CleaningOptions& opts,
                                     CleaningReport* report) {
  CleaningReport rep;
  std::unordered_set<std::string> null_markers;
  for (const auto& m : opts.null_markers) null_markers.insert(ToLower(m));

  const auto& schema = table.schema();
  const int ncols = schema.num_attributes();

  // Pass 1+2: per-cell cleaning into a working copy.
  std::vector<Row> rows;
  rows.reserve(table.num_rows());
  for (int64_t r = 0; r < table.num_rows(); ++r) {
    Row row = table.row(r);
    for (int c = 0; c < ncols; ++c) {
      Value& cell = row[c];
      ++rep.cells_examined;
      if (cell.is_null()) continue;
      if (cell.is_string()) {
        std::string s = cell.string_value();
        if (opts.normalize_whitespace) {
          std::string fixed = NormalizeWhitespace(s);
          if (fixed != s) {
            ++rep.whitespace_fixed;
            s = fixed;
          }
        }
        if (null_markers.count(ToLower(s)) > 0) {
          cell = Value::Null();
          ++rep.nulls_canonicalized;
          continue;
        }
        if (s != cell.string_value()) cell = Value::Str(s);
      }
    }
    rows.push_back(std::move(row));
  }

  // Pass 2b: column re-typing — a string column whose every non-null
  // cell parses numerically becomes numeric.
  std::vector<ValueType> out_types;
  for (int c = 0; c < ncols; ++c) out_types.push_back(schema.attribute(c).type);
  if (opts.repair_numeric_strings) {
    for (int c = 0; c < ncols; ++c) {
      if (schema.attribute(c).type != ValueType::kString) continue;
      bool all_numeric = true, all_int = true, any = false;
      for (const auto& row : rows) {
        const Value& cell = row[c];
        if (cell.is_null()) continue;
        any = true;
        int64_t i;
        double d;
        if (ParseInt64(cell.string_value(), &i)) continue;
        all_int = false;
        if (!ParseDouble(cell.string_value(), &d)) {
          all_numeric = false;
          break;
        }
      }
      if (any && all_numeric) {
        out_types[c] = all_int ? ValueType::kInt : ValueType::kDouble;
        for (auto& row : rows) {
          Value& cell = row[c];
          if (cell.is_null()) continue;
          if (all_int) {
            int64_t i = 0;
            (void)ParseInt64(cell.string_value(), &i);
            cell = Value::Int(i);
          } else {
            double d = 0;
            (void)ParseDouble(cell.string_value(), &d);
            cell = Value::Double(d);
          }
          ++rep.numeric_repaired;
        }
      }
    }
  }

  // Pass 3: outlier flagging on numeric columns.
  if (opts.outlier_zscore > 0) {
    for (int c = 0; c < ncols; ++c) {
      if (out_types[c] != ValueType::kInt &&
          out_types[c] != ValueType::kDouble) {
        continue;
      }
      std::vector<double> vals;
      std::vector<size_t> positions;
      for (size_t r = 0; r < rows.size(); ++r) {
        const Value& cell = rows[r][c];
        if (cell.is_number()) {
          vals.push_back(cell.as_double());
          positions.push_back(r);
        }
      }
      if (vals.size() < 8) continue;  // too few points to call outliers
      auto z = RobustZScores(vals);
      for (size_t k = 0; k < z.size(); ++k) {
        if (std::fabs(z[k]) > opts.outlier_zscore) {
          ++rep.outliers_flagged;
          if (opts.drop_outliers) {
            rows[positions[k]][c] = Value::Null();
            ++rep.outliers_dropped;
          }
        }
      }
    }
  }

  relational::Schema out_schema;
  for (int c = 0; c < ncols; ++c) {
    DT_RETURN_NOT_OK(
        out_schema.AddAttribute({schema.attribute(c).name, out_types[c]}));
  }
  relational::Table out(table.name(), out_schema);
  out.set_source_id(table.source_id());
  for (auto& row : rows) {
    DT_RETURN_NOT_OK(out.Append(std::move(row)));
  }
  if (report != nullptr) *report = rep;
  return out;
}

}  // namespace dt::clean
