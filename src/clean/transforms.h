/// \file transforms.h
/// \brief The data-transformation engine of Fig. 1 ("for example to
/// translate euros into dollars").
///
/// Transforms are named, typed value->value functions kept in a
/// registry; pipelines apply them to whole columns. Built-ins cover the
/// paper's demo domain: currency conversion, date/time/phone
/// normalization, case and whitespace repair.

#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "relational/table.h"
#include "relational/value.h"

namespace dt::clean {

/// \brief A parsed monetary amount.
struct Money {
  double amount = 0;
  std::string currency;  ///< ISO code: "USD", "EUR", "GBP"
};

/// Parses "$27", "€35.50", "27 USD", "35.50 euros"; nullopt otherwise.
std::optional<Money> ParseMoney(std::string_view s);

/// Renders as "$27" / "$35.50" (USD convention of Table VI).
std::string FormatUsd(double amount);

/// \brief A calendar date.
struct CivilDate {
  int year = 0, month = 0, day = 0;
  bool operator==(const CivilDate& o) const {
    return year == o.year && month == o.month && day == o.day;
  }
};

/// Parses "3/4/2013" (m/d/yyyy), "2013-03-04", "Mar 4, 2013",
/// "March 4 2013"; validates month/day ranges; nullopt otherwise.
std::optional<CivilDate> ParseDate(std::string_view s);

/// Renders ISO "2013-03-04".
std::string FormatIsoDate(const CivilDate& d);

/// A transformation takes a value and produces a value (or an error
/// explaining why the input is untransformable).
using TransformFn = std::function<Result<relational::Value>(
    const relational::Value&)>;

/// \brief Named registry of transformations.
class TransformRegistry {
 public:
  /// Registers `fn` under `name`; AlreadyExists on clash.
  Status Register(const std::string& name, TransformFn fn);

  /// Looks up a transform; NotFound when unregistered.
  Result<TransformFn> Get(const std::string& name) const;

  /// Sorted names of all registered transforms.
  std::vector<std::string> Names() const;

  /// \brief Registry preloaded with the built-ins:
  ///   "eur_to_usd"    — Money or number treated as EUR -> "$..." string
  ///   "normalize_date"— any supported date format -> ISO string
  ///   "us_date"       — any supported date format -> "m/d/yyyy"
  ///   "normalize_phone"— digits-only phone -> "(ddd) ddd-dddd"
  ///   "trim"          — whitespace normalization
  ///   "lower", "upper"— case folding
  ///   "parse_number"  — numeric string -> Double value
  /// \param eur_usd_rate EUR->USD conversion rate.
  static TransformRegistry Builtins(double eur_usd_rate = 1.30);

 private:
  std::map<std::string, TransformFn> transforms_;
};

/// Applies a transform to every non-null value of `attr`, returning a
/// new table (the source is immutable provenance, per the curation
/// model). Values the transform rejects pass through unchanged and are
/// counted in `*skipped` when provided.
Result<relational::Table> ApplyTransform(const relational::Table& table,
                                         const std::string& attr,
                                         const TransformFn& fn,
                                         int64_t* skipped = nullptr);

}  // namespace dt::clean
