#include "match/synonyms.h"

#include <gtest/gtest.h>

namespace dt::match {
namespace {

TEST(SynonymsTest, BasicGroup) {
  SynonymDictionary d;
  d.AddGroup({"price", "cost", "fee"});
  EXPECT_TRUE(d.AreSynonyms("price", "cost"));
  EXPECT_TRUE(d.AreSynonyms("COST", "Fee"));
  EXPECT_FALSE(d.AreSynonyms("price", "name"));
}

TEST(SynonymsTest, SelfSynonymAlways) {
  SynonymDictionary d;
  EXPECT_TRUE(d.AreSynonyms("anything", "anything"));
  EXPECT_TRUE(d.AreSynonyms("X", "x"));
}

TEST(SynonymsTest, GroupMergeOnSharedWord) {
  SynonymDictionary d;
  d.AddGroup({"price", "cost"});
  d.AddGroup({"cost", "fare"});
  EXPECT_TRUE(d.AreSynonyms("price", "fare"));
}

TEST(SynonymsTest, CanonicalizeStable) {
  SynonymDictionary d;
  d.AddGroup({"theater", "theatre", "venue"});
  EXPECT_EQ(d.Canonicalize("theatre"), d.Canonicalize("venue"));
  EXPECT_EQ(d.Canonicalize("unregistered"), "unregistered");
}

TEST(SynonymsTest, SynonymJaccard) {
  SynonymDictionary d;
  d.AddGroup({"show", "performance"});
  d.AddGroup({"name", "title"});
  double s = d.SynonymJaccard({"show", "name"}, {"performance", "title"});
  EXPECT_DOUBLE_EQ(s, 1.0);
  EXPECT_DOUBLE_EQ(d.SynonymJaccard({}, {}), 1.0);
  EXPECT_DOUBLE_EQ(d.SynonymJaccard({"a"}, {"b"}), 0.0);
}

TEST(SynonymsTest, DefaultCoversDemoVocabulary) {
  SynonymDictionary d = SynonymDictionary::Default();
  EXPECT_TRUE(d.AreSynonyms("theater", "theatre"));
  EXPECT_TRUE(d.AreSynonyms("theater", "venue"));
  EXPECT_TRUE(d.AreSynonyms("price", "cost"));
  EXPECT_TRUE(d.AreSynonyms("show", "production"));
  EXPECT_TRUE(d.AreSynonyms("performance", "showtimes"));
  EXPECT_TRUE(d.AreSynonyms("first", "opening"));
  EXPECT_TRUE(d.AreSynonyms("name", "title"));
  EXPECT_TRUE(d.AreSynonyms("phone", "tel"));
  EXPECT_TRUE(d.AreSynonyms("url", "website"));
  EXPECT_FALSE(d.AreSynonyms("price", "theater"));
}

TEST(SynonymsTest, EmptyGroupIgnored) {
  SynonymDictionary d;
  d.AddGroup({});
  EXPECT_EQ(d.num_tokens(), 0);
}

}  // namespace
}  // namespace dt::match
