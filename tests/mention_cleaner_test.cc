#include "clean/mention_cleaner.h"

#include <gtest/gtest.h>

#include "datagen/mention_labels.h"
#include "ml/evaluation.h"

namespace dt::clean {
namespace {

std::vector<LabeledMention> Data(int64_t n, uint64_t seed) {
  datagen::MentionLabelOptions opts;
  opts.num_mentions = n;
  opts.seed = seed;
  return datagen::GenerateMentionLabels(opts);
}

TEST(MentionCleanerTest, UntrainedKeepsEverything) {
  MentionCleaner cleaner;
  EXPECT_FALSE(cleaner.trained());
  EXPECT_DOUBLE_EQ(cleaner.ScoreMention("Breaking News", "anything"), 1.0);
  textparse::ParsedFragment frag;
  frag.text = "Breaking News tonight";
  textparse::EntityMention m;
  m.surface = "Breaking News";
  m.confidence = 0.6;
  frag.mentions.push_back(m);
  EXPECT_EQ(cleaner.FilterFragment(&frag), 0);
  EXPECT_EQ(frag.mentions.size(), 1u);
}

TEST(MentionCleanerTest, TrainRequiresBothClasses) {
  MentionCleaner cleaner;
  EXPECT_TRUE(cleaner.Train({}).IsInvalidArgument());
  std::vector<LabeledMention> only_pos = {{"Matilda", "saw Matilda", 1}};
  EXPECT_TRUE(cleaner.Train(only_pos).IsInvalidArgument());
}

TEST(MentionCleanerTest, SeparatesRealFromGarbage) {
  auto train = Data(3000, 1);
  auto test = Data(1000, 2);
  MentionCleaner cleaner;
  ASSERT_TRUE(cleaner.Train(train).ok());
  ml::BinaryMetrics m;
  for (const auto& lm : test) {
    int pred = cleaner.ScoreMention(lm.surface, lm.context) >= 0.5 ? 1 : 0;
    if (pred == 1 && lm.label == 1) ++m.tp;
    if (pred == 1 && lm.label == 0) ++m.fp;
    if (pred == 0 && lm.label == 0) ++m.tn;
    if (pred == 0 && lm.label == 1) ++m.fn;
  }
  EXPECT_GT(m.precision(), 0.85) << m.ToString();
  EXPECT_GT(m.recall(), 0.85) << m.ToString();
}

TEST(MentionCleanerTest, FilterDropsGarbageKeepsEntities) {
  MentionCleaner cleaner;
  ASSERT_TRUE(cleaner.Train(Data(3000, 3)).ok());
  textparse::ParsedFragment frag;
  frag.text =
      "Breaking News tickets for Matilda sold out within the hour "
      "Subscribe Now";
  auto add = [&](const char* surface, size_t offset, double conf) {
    textparse::EntityMention m;
    m.surface = surface;
    m.canonical = surface;
    m.offset = offset;
    m.confidence = conf;
    frag.mentions.push_back(m);
  };
  add("Breaking News", 0, 0.6);   // heuristic garbage
  add("Matilda", 26, 0.6);        // heuristic but real
  add("Subscribe Now", 60, 0.6);  // heuristic garbage
  int dropped = cleaner.FilterFragment(&frag);
  EXPECT_EQ(dropped, 2);
  ASSERT_EQ(frag.mentions.size(), 1u);
  EXPECT_EQ(frag.mentions[0].surface, "Matilda");
}

TEST(MentionCleanerTest, TrustedMentionsBypassClassifier) {
  MentionCleaner cleaner;
  ASSERT_TRUE(cleaner.Train(Data(2000, 5)).ok());
  textparse::ParsedFragment frag;
  frag.text = "Breaking News everywhere";
  textparse::EntityMention m;
  m.surface = "Breaking News";
  m.offset = 0;
  m.confidence = 1.0;  // gazetteer hit: trusted
  frag.mentions.push_back(m);
  EXPECT_EQ(cleaner.FilterFragment(&frag), 0);
  EXPECT_EQ(frag.mentions.size(), 1u);
}

TEST(MentionCleanerTest, ThresholdControlsAggressiveness) {
  auto train = Data(2000, 7);
  MentionCleanerOptions lax;
  lax.keep_threshold = 0.01;
  MentionCleanerOptions strict;
  strict.keep_threshold = 0.99;
  MentionCleaner lax_cleaner(lax), strict_cleaner(strict);
  ASSERT_TRUE(lax_cleaner.Train(train).ok());
  ASSERT_TRUE(strict_cleaner.Train(train).ok());
  auto make_frag = [] {
    textparse::ParsedFragment frag;
    frag.text = "the producers of Goodfellas announced an extension";
    textparse::EntityMention m;
    m.surface = "Goodfellas";
    m.offset = 17;
    m.confidence = 0.6;
    frag.mentions.push_back(m);
    return frag;
  };
  auto f1 = make_frag();
  EXPECT_EQ(lax_cleaner.FilterFragment(&f1), 0);
  // A 0.99 threshold is aggressive; real-but-uncertain mentions may go.
  auto f2 = make_frag();
  int dropped = strict_cleaner.FilterFragment(&f2);
  EXPECT_GE(dropped, 0);  // must not crash; may drop
}

TEST(MentionLabelsTest, GeneratorBalancedAndDeterministic) {
  auto a = Data(800, 9);
  auto b = Data(800, 9);
  ASSERT_EQ(a.size(), 800u);
  int64_t pos = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].surface, b[i].surface);
    EXPECT_EQ(a[i].label, b[i].label);
    EXPECT_FALSE(a[i].surface.empty());
    EXPECT_NE(a[i].context.find(a[i].surface), std::string::npos);
    if (a[i].label == 1) ++pos;
  }
  EXPECT_NEAR(pos / 800.0, 0.5, 0.07);
}

}  // namespace
}  // namespace dt::clean
